package vasched_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"vasched"
)

// TestEveryExperimentResultJSONRoundTrips runs every registered experiment
// at quick scale and checks its typed result survives a JSON round trip
// losslessly: marshal → unmarshal into a fresh value of the same concrete
// type → re-marshal must reproduce the original bytes. This is what lets
// cmd/vaschedd serve results over HTTP without a bespoke wire format, and
// it guards against unexported fields silently dropping data (the
// stats.Histogram custom marshaller exists for exactly that reason).
func TestEveryExperimentResultJSONRoundTrips(t *testing.T) {
	for _, id := range vasched.ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := vasched.RunExperimentResult(id, vasched.ScaleQuick)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			rt := reflect.New(reflect.TypeOf(res).Elem()).Interface()
			if err := json.Unmarshal(blob, rt); err != nil {
				t.Fatal(err)
			}
			blob2, err := json.Marshal(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("round trip not lossless:\nfirst:  %s\nsecond: %s", blob, blob2)
			}
		})
	}
}
