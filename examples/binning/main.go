// Binning: a manufacturing-side study. Generate a batch of dies from the
// same process, characterise each one, and bin them by their slowest core
// (the frequency the whole chip would have to ship at in a UniFreq world)
// versus their fastest core — the spread the paper's Figure 4 quantifies
// and variation-aware scheduling monetises.
package main

import (
	"fmt"
	"log"
	"sort"

	"vasched"
)

func main() {
	const dies = 30

	type bin struct {
		die              int
		slowGHz, fastGHz float64
		leakMin, leakMax float64
	}
	var bins []bin

	for die := 0; die < dies; die++ {
		opt := vasched.DefaultOptions()
		opt.DieIndex = die
		opt.GridSize = 128 // coarser maps are plenty for binning statistics
		plat, err := vasched.NewPlatform(opt)
		if err != nil {
			log.Fatal(err)
		}
		b := bin{die: die, slowGHz: 1e18, leakMin: 1e18}
		for core := 0; core < plat.NumCores(); core++ {
			f := plat.CoreFmaxGHz(core)
			l := plat.CoreStaticPowerW(core)
			if f < b.slowGHz {
				b.slowGHz = f
			}
			if f > b.fastGHz {
				b.fastGHz = f
			}
			if l < b.leakMin {
				b.leakMin = l
			}
			if l > b.leakMax {
				b.leakMax = l
			}
		}
		bins = append(bins, b)
	}

	sort.Slice(bins, func(i, j int) bool { return bins[i].slowGHz > bins[j].slowGHz })
	fmt.Printf("%d dies sorted by shippable (slowest-core) frequency:\n", dies)
	fmt.Printf("%-6s %10s %10s %8s %14s\n", "die", "slow(GHz)", "fast(GHz)", "spread", "leak min..max")
	for _, b := range bins {
		fmt.Printf("%-6d %10.2f %10.2f %7.0f%% %7.1f..%.1f W\n",
			b.die, b.slowGHz, b.fastGHz, (b.fastGHz/b.slowGHz-1)*100, b.leakMin, b.leakMax)
	}

	best, worst := bins[0], bins[len(bins)-1]
	fmt.Printf("\nbinning value: the best die ships %.0f%% faster than the worst in a\n",
		(best.slowGHz/worst.slowGHz-1)*100)
	fmt.Println("UniFreq world; per-core frequency domains (NUniFreq) recover the")
	fmt.Printf("fast cores on every die — up to %.0f%% headroom on the worst die alone.\n",
		(worst.fastGHz/worst.slowGHz-1)*100)
}
