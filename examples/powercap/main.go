// Powercap: a data-centre-style study. A fully loaded 20-core CMP is
// driven through a sweep of chip power caps (the paper's Figure 12
// scenario) and the four algorithm combinations from the paper's Table 1
// are compared: how much throughput does each policy recover at every cap,
// and what does that do to ED^2?
package main

import (
	"fmt"
	"log"

	"vasched"
)

type combo struct {
	label     string
	scheduler string
	manager   string
}

func main() {
	plat, err := vasched.NewPlatform(vasched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// One full-occupancy workload: every SPEC app once, plus repeats.
	apps := vasched.SPECApps()
	for len(apps) < plat.NumCores() {
		apps = append(apps, apps[len(apps)%14])
	}
	apps = apps[:plat.NumCores()]

	combos := []combo{
		{"Random+Foxton*", vasched.SchedRandom, vasched.ManagerFoxton},
		{"VarF&AppIPC+Foxton*", vasched.SchedVarFAppIPC, vasched.ManagerFoxton},
		{"VarF&AppIPC+LinOpt", vasched.SchedVarFAppIPC, vasched.ManagerLinOpt},
		{"VarF&AppIPC+SAnn", vasched.SchedVarFAppIPC, vasched.ManagerSAnn},
	}

	for _, cap := range []float64{50, 65, 80, 95} {
		fmt.Printf("==== power cap %.0f W ====\n", cap)
		var baseMIPS, baseED2 float64
		for i, cb := range combos {
			sys, err := plat.NewSystem(vasched.SystemConfig{
				Scheduler: cb.scheduler,
				Mode:      vasched.ModeDVFS,
				Manager:   cb.manager,
				PTargetW:  cap,
			})
			if err != nil {
				log.Fatal(err)
			}
			st, err := sys.Run(apps, 100)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				baseMIPS, baseED2 = st.MIPS, st.EDSquared
			}
			fmt.Printf("%-22s %8.0f MIPS (%+5.1f%%)   P=%5.1f W   ED^2 %+6.1f%%\n",
				cb.label, st.MIPS, (st.MIPS/baseMIPS-1)*100,
				st.AvgPowerW, (st.EDSquared/baseED2-1)*100)
		}
		fmt.Println()
	}
}
