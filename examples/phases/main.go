// Phases: why LinOpt runs every 10 ms (the paper's Figure 14 intuition).
// Applications move through program phases with different IPC and power;
// a power manager that re-solves rarely either wastes budget or overshoots
// it as the workload drifts. This example runs the same phase-heavy
// workload with a 10 ms and a 500 ms LinOpt interval and compares
// throughput and power-tracking quality.
package main

import (
	"fmt"
	"log"

	"vasched"
)

func main() {
	plat, err := vasched.NewPlatform(vasched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A workload dominated by phase-heavy applications (bzip2, gzip, art,
	// swim, applu, mcf all alternate high/low-activity phases).
	apps := []string{"bzip2", "gzip", "art", "swim", "applu", "mcf", "equake", "parser",
		"bzip2", "gzip", "art", "swim", "applu", "mcf", "equake", "parser"}

	for _, intervalMS := range []float64{500, 100, 10} {
		sys, err := plat.NewSystem(vasched.SystemConfig{
			Scheduler:      vasched.SchedVarFAppIPC,
			Mode:           vasched.ModeDVFS,
			Manager:        vasched.ManagerLinOpt,
			PTargetW:       60,
			DVFSIntervalMS: intervalMS,
			OSIntervalMS:   2000, // keep the thread map fixed; isolate DVFS
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sys.Run(apps, 1500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LinOpt every %5.0f ms:  %8.0f MIPS   power %5.1f W (target 60)   |deviation| %5.2f%%\n",
			intervalMS, st.MIPS, st.AvgPowerW, st.PowerDeviationPct)
	}
	fmt.Println("\nshorter intervals track phase changes: power hugs the target and")
	fmt.Println("the budget freed by low-activity phases is immediately re-spent.")
}
