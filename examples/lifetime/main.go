// Lifetime: the wearout consequences of scheduling policy (the paper's
// Section 8 future-work items 1 and 2, runnable through the public API).
// A CMP's lifetime is set by its fastest-aging core; aging accelerates
// exponentially with temperature and with supply voltage. This example
// runs the same 12-thread workload under three policies — Random,
// VarP&AppP (static power-aware pinning), and TempAware (migrating hot
// threads onto currently-cool cores) — with thermal inertia modelled, and
// compares throughput, peak temperature, and the worst core's aging rate.
package main

import (
	"fmt"
	"log"

	"vasched"
)

func main() {
	plat, err := vasched.NewPlatform(vasched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	apps := []string{"vortex", "applu", "crafty", "bzip2", "gap", "gzip",
		"parser", "mgrid", "twolf", "swim", "art", "equake"}

	fmt.Println("12 threads, NUniFreq, 500 ms with thermal inertia (100 ms warmup excluded):")
	fmt.Printf("%-12s %10s %10s %10s %14s\n", "policy", "MIPS", "power(W)", "maxT(C)", "worst aging")
	for _, policy := range []string{vasched.SchedRandom, vasched.SchedVarPAppP, vasched.SchedTempAware} {
		sys, err := plat.NewSystem(vasched.SystemConfig{
			Scheduler:        policy,
			Mode:             vasched.ModeNUniFreq,
			OSIntervalMS:     20, // re-map (and hence migrate) every 20 ms
			TransientThermal: true,
			WarmupMS:         100,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sys.Run(apps, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.0f %10.1f %10.1f %13.2fx\n",
			policy, st.MIPS, st.AvgPowerW, st.MaxTempC, st.WearoutMax)
	}
	fmt.Println("\nTempAware keeps moving the heat: no core stays hot long enough to")
	fmt.Println("age fast, so the lifetime-limiting core ages slower at essentially")
	fmt.Println("no throughput cost. Static pinning (VarP&AppP) saves power but parks")
	fmt.Println("the hottest threads on the same cores for the whole run.")
}
