// Quickstart: build one variation-affected 20-core die, run an 8-thread
// SPEC mix under a 40 W budget with variation-aware scheduling and LinOpt
// power management, and print what happened.
package main

import (
	"fmt"
	"log"

	"vasched"
)

func main() {
	// A Platform is one manufactured die: because of process variation its
	// cores differ in maximum frequency and leakage.
	plat, err := vasched.NewPlatform(vasched.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-core characterisation (variation makes them differ):")
	for core := 0; core < plat.NumCores(); core++ {
		fmt.Printf("  C%-2d  Fmax %.2f GHz   static %.2f W\n",
			core+1, plat.CoreFmaxGHz(core), plat.CoreStaticPowerW(core))
	}

	// VarF&AppIPC scheduling + LinOpt DVFS at a 40 W chip budget.
	sys, err := plat.NewSystem(vasched.SystemConfig{
		Scheduler: vasched.SchedVarFAppIPC,
		Mode:      vasched.ModeDVFS,
		Manager:   vasched.ManagerLinOpt,
		PTargetW:  40,
		PCoreMaxW: 8, // per-core cap; 8 threads may each use a fair share
	})
	if err != nil {
		log.Fatal(err)
	}

	apps := []string{"bzip2", "mcf", "vortex", "swim", "crafty", "art", "gap", "twolf"}
	stats, err := sys.Run(apps, 200) // 200 ms of simulated time
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n8 threads for %.0f ms under a 40 W budget with %s+%s:\n",
		stats.DurationMS, vasched.SchedVarFAppIPC, vasched.ManagerLinOpt)
	fmt.Printf("  throughput        %8.0f MIPS (weighted %.2f)\n", stats.MIPS, stats.WeightedThroughput)
	fmt.Printf("  power             %8.1f W (dyn %.1f + static %.1f)\n",
		stats.AvgPowerW, stats.DynPowerW, stats.StaticPowerW)
	fmt.Printf("  deviation from target %5.2f%%\n", stats.PowerDeviationPct)
	fmt.Printf("  mean frequency    %8.2f GHz, hottest block %.1f C\n",
		stats.AvgFrequencyGHz, stats.MaxTempC)
	for i, app := range apps {
		fmt.Printf("  %-8s ran %7.0f M instructions\n", app, stats.InstructionsM[i])
	}
}
