package sched

import (
	"testing"

	"vasched/internal/stats"
)

func TestTempAwareByName(t *testing.T) {
	p, err := New(NameTempAware)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != NameTempAware {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestTempAwareMapsHotThreadToCoolCore(t *testing.T) {
	cores := []CoreInfo{
		{ID: 0, StaticPowerW: 2, FmaxHz: 3.5e9, TempC: 95}, // hottest
		{ID: 1, StaticPowerW: 2, FmaxHz: 3.5e9, TempC: 60}, // coolest
		{ID: 2, StaticPowerW: 2, FmaxHz: 3.5e9, TempC: 75},
	}
	threads := []ThreadInfo{
		{ID: 0, DynPowerW: 4.4, IPC: 1.2}, // hottest thread
		{ID: 1, DynPowerW: 1.5, IPC: 0.1},
		{ID: 2, DynPowerW: 2.8, IPC: 0.7},
	}
	a, err := (TempAwarePolicy{}).Assign(cores, threads, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 {
		t.Fatalf("hottest thread on core %d, want coolest core 1 (%v)", a[0], a)
	}
	if a[1] != 0 {
		t.Fatalf("coolest thread on core %d, want hottest core 0 (%v)", a[1], a)
	}
}

func TestTempAwareColdChipFallsBackToStaticPower(t *testing.T) {
	// All temps equal (cold chip): ties break on static power, recovering
	// VarP&AppP behaviour.
	cores := []CoreInfo{
		{ID: 0, StaticPowerW: 3.0, TempC: 45},
		{ID: 1, StaticPowerW: 1.0, TempC: 45},
		{ID: 2, StaticPowerW: 2.0, TempC: 45},
	}
	threads := []ThreadInfo{
		{ID: 0, DynPowerW: 4.0},
		{ID: 1, DynPowerW: 1.0},
	}
	a, err := (TempAwarePolicy{}).Assign(cores, threads, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 {
		t.Fatalf("hot thread on core %d, want least-leaky core 1 (%v)", a[0], a)
	}
}

func TestTempAwareSubsetUsesCoolestCores(t *testing.T) {
	cores := []CoreInfo{
		{ID: 0, TempC: 90}, {ID: 1, TempC: 50}, {ID: 2, TempC: 70}, {ID: 3, TempC: 60},
	}
	threads := []ThreadInfo{{ID: 0, DynPowerW: 2}, {ID: 1, DynPowerW: 3}}
	a, err := (TempAwarePolicy{}).Assign(cores, threads, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{a[0]: true, a[1]: true}
	if !used[1] || !used[3] {
		t.Fatalf("TempAware used cores %v, want the two coolest {1,3}", a)
	}
}

func TestTempAwareValidation(t *testing.T) {
	if _, err := (TempAwarePolicy{}).Assign(nil, []ThreadInfo{{}}, stats.NewRNG(1)); err == nil {
		t.Fatal("more threads than cores accepted")
	}
}
