package sched

import (
	"testing"
	"testing/quick"

	"vasched/internal/stats"
)

func testCores() []CoreInfo {
	// Core 0: slow and leaky. Core 1: fast and frugal. Core 2: middling.
	// Core 3: fastest but leakiest.
	return []CoreInfo{
		{ID: 0, StaticPowerW: 3.0, FmaxHz: 3.0e9},
		{ID: 1, StaticPowerW: 1.0, FmaxHz: 3.8e9},
		{ID: 2, StaticPowerW: 2.0, FmaxHz: 3.5e9},
		{ID: 3, StaticPowerW: 4.0, FmaxHz: 4.0e9},
	}
}

func testThreads(n int) []ThreadInfo {
	all := []ThreadInfo{
		{ID: 0, DynPowerW: 4.4, IPC: 1.2},
		{ID: 1, DynPowerW: 1.5, IPC: 0.1},
		{ID: 2, DynPowerW: 2.8, IPC: 0.7},
		{ID: 3, DynPowerW: 3.7, IPC: 1.1},
	}
	return all[:n]
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{NameRandom, NameVarP, NameVarPAppP, NameVarF, NameVarFAppIPC} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := New("Oracle"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllPoliciesProduceValidAssignments(t *testing.T) {
	for _, name := range []string{NameRandom, NameVarP, NameVarPAppP, NameVarF, NameVarFAppIPC} {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n <= 4; n++ {
			a, err := p.Assign(testCores(), testThreads(n), stats.NewRNG(1))
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if len(a) != n {
				t.Fatalf("%s n=%d: assignment length %d", name, n, len(a))
			}
			if err := a.Validate(4); err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
		}
	}
}

func TestVarPSelectsLowestPowerCores(t *testing.T) {
	p := VarPPolicy{}
	a, err := p.Assign(testCores(), testThreads(2), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// Two threads must land on cores 1 and 2 (static 1.0 and 2.0).
	used := map[int]bool{a[0]: true, a[1]: true}
	if !used[1] || !used[2] {
		t.Fatalf("VarP used cores %v, want {1,2}", a)
	}
}

func TestVarPAppPPairsHighPowerThreadWithLowPowerCore(t *testing.T) {
	p := VarPAppPPolicy{}
	a, err := p.Assign(testCores(), testThreads(4), stats.NewRNG(0))
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 (4.4 W, hottest) must go to core 1 (least leaky); thread 1
	// (1.5 W, coolest) to core 3 (leakiest).
	if a[0] != 1 {
		t.Fatalf("hottest thread on core %d, want 1 (assignment %v)", a[0], a)
	}
	if a[1] != 3 {
		t.Fatalf("coolest thread on core %d, want 3 (assignment %v)", a[1], a)
	}
}

func TestVarFSelectsFastestCores(t *testing.T) {
	p := VarFPolicy{}
	a, err := p.Assign(testCores(), testThreads(2), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{a[0]: true, a[1]: true}
	if !used[3] || !used[1] {
		t.Fatalf("VarF used cores %v, want {3,1}", a)
	}
}

func TestVarFAppIPCPairsHighIPCWithFastCore(t *testing.T) {
	p := VarFAppIPCPolicy{}
	a, err := p.Assign(testCores(), testThreads(4), stats.NewRNG(0))
	if err != nil {
		t.Fatal(err)
	}
	// Thread 0 (IPC 1.2) -> core 3 (4.0 GHz); thread 1 (IPC 0.1) -> core 0
	// (3.0 GHz, slowest).
	if a[0] != 3 {
		t.Fatalf("highest-IPC thread on core %d, want 3 (%v)", a[0], a)
	}
	if a[1] != 0 {
		t.Fatalf("lowest-IPC thread on core %d, want 0 (%v)", a[1], a)
	}
}

func TestRandomCoversAllCoresEventually(t *testing.T) {
	p := RandomPolicy{}
	rng := stats.NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		a, err := p.Assign(testCores(), testThreads(1), rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[a[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random policy only used cores %v", seen)
	}
}

func TestDeterministicPoliciesIgnoreRNG(t *testing.T) {
	for _, name := range []string{NameVarPAppP, NameVarFAppIPC} {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Assign(testCores(), testThreads(3), stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Assign(testCores(), testThreads(3), stats.NewRNG(999))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s depends on RNG", name)
			}
		}
	}
}

func TestSizeErrors(t *testing.T) {
	p := RandomPolicy{}
	if _, err := p.Assign(testCores(), nil, stats.NewRNG(1)); err == nil {
		t.Fatal("empty thread set accepted")
	}
	if _, err := p.Assign(testCores()[:1], testThreads(2), stats.NewRNG(1)); err == nil {
		t.Fatal("more threads than cores accepted")
	}
}

func TestAssignmentValidate(t *testing.T) {
	if err := (Assignment{0, 1}).Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := (Assignment{0, 0}).Validate(2); err == nil {
		t.Fatal("duplicate core accepted")
	}
	if err := (Assignment{5}).Validate(2); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if err := (Assignment{-1}).Validate(2); err == nil {
		t.Fatal("negative core accepted")
	}
}

// Property: every policy returns a valid injective assignment for random
// core/thread populations of any feasible size.
func TestPoliciesValidAssignmentProperty(t *testing.T) {
	policies := []Policy{RandomPolicy{}, VarPPolicy{}, VarPAppPPolicy{},
		VarFPolicy{}, VarFAppIPCPolicy{}, TempAwarePolicy{}}
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		nc := 1 + rng.Intn(20)
		nt := 1 + rng.Intn(nc)
		cores := make([]CoreInfo, nc)
		for i := range cores {
			cores[i] = CoreInfo{
				ID:           i,
				StaticPowerW: 0.5 + rng.Float64()*3,
				FmaxHz:       (2 + rng.Float64()*2) * 1e9,
				TempC:        45 + rng.Float64()*50,
			}
		}
		threads := make([]ThreadInfo, nt)
		for i := range threads {
			threads[i] = ThreadInfo{ID: i, DynPowerW: 1 + rng.Float64()*3, IPC: 0.1 + rng.Float64()}
		}
		for _, p := range policies {
			a, err := p.Assign(cores, threads, rng)
			if err != nil {
				return false
			}
			if len(a) != nt || a.Validate(nc) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
