package sched

import "vasched/internal/stats"

// TempAwarePolicy implements the paper's first future-work extension:
// scheduling with "the additional goal of keeping the temperature of the
// CMP as uniform as possible" (Section 8). The highest-dynamic-power
// threads are mapped onto the currently coolest cores, so each OS interval
// migrates heat producers away from hot spots. Because leakage grows
// exponentially with temperature, evening out the thermal map also saves
// power — the same intuition as VarP&AppP, but driven by live sensor
// temperatures instead of static manufacturer data.
type TempAwarePolicy struct{}

// Name implements Policy.
func (TempAwarePolicy) Name() string { return NameTempAware }

// Assign implements Policy.
func (TempAwarePolicy) Assign(cores []CoreInfo, threads []ThreadInfo, _ *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	// Coolest cores first; cold-chip ties fall back to the static power
	// ranking (the block below is stable, so secondary order is the input
	// order after this pre-sort).
	pre := topCoresBy(cores, len(cores), func(c CoreInfo) float64 { return c.StaticPowerW }, true)
	top := topCoresBy(pre, len(threads), func(c CoreInfo) float64 { return c.TempC }, true)
	powers := make([]float64, len(threads))
	for i, th := range threads {
		powers[i] = th.DynPowerW
	}
	order := stats.RankDescending(powers)
	out := make(Assignment, len(threads))
	for rank, t := range order {
		out[t] = top[rank].ID
	}
	return out, nil
}
