// Package sched implements the paper's variation-aware application
// scheduling algorithms (Table 1):
//
//   - Random:      threads on cores uniformly at random (the baseline)
//   - VarP:        threads randomly on the N lowest-static-power cores
//   - VarP&AppP:   highest-dynamic-power threads on lowest-static-power cores
//   - VarF:        threads randomly on the N highest-frequency cores
//   - VarF&AppIPC: highest-IPC threads on highest-frequency cores
//
// Schedulers consume only the profile information the paper's Table 3
// grants them: per-core static power and maximum frequency from the
// manufacturer, and per-thread dynamic power and IPC measured on one
// (arbitrary) core each.
package sched

import (
	"fmt"

	"vasched/internal/stats"
)

// CoreInfo is the manufacturer-profiled description of one core.
type CoreInfo struct {
	// ID is the core index on the die.
	ID int
	// StaticPowerW is the static power at the maximum voltage (the VarP
	// ranking key).
	StaticPowerW float64
	// FmaxHz is the maximum frequency at the maximum voltage (the VarF
	// ranking key).
	FmaxHz float64
	// TempC is the core's current temperature from the on-chip sensors
	// (the TempAware ranking key). Zero means "not measured yet"; the
	// TempAware policy then behaves like VarP&AppP on a cold chip.
	TempC float64
}

// ThreadInfo is the runtime-profiled description of one thread.
type ThreadInfo struct {
	// ID is the thread index in the workload.
	ID int
	// DynPowerW is the thread's dynamic power measured on one core and
	// scaled to reference conditions (the VarP&AppP ranking key).
	DynPowerW float64
	// IPC is the thread's IPC measured on one core (the VarF&AppIPC
	// ranking key).
	IPC float64
}

// Assignment maps thread index -> core ID. Threads not present run nowhere
// (there are never more threads than cores in the paper's experiments).
type Assignment []int

// Validate checks that the assignment is a well-formed injection into the
// core set.
func (a Assignment) Validate(numCores int) error {
	seen := make(map[int]bool, len(a))
	for t, c := range a {
		if c < 0 || c >= numCores {
			return fmt.Errorf("sched: thread %d assigned to invalid core %d", t, c)
		}
		if seen[c] {
			return fmt.Errorf("sched: core %d assigned twice", c)
		}
		seen[c] = true
	}
	return nil
}

// Algorithm names used across the experiment harness.
const (
	NameRandom     = "Random"
	NameVarP       = "VarP"
	NameVarPAppP   = "VarP&AppP"
	NameVarF       = "VarF"
	NameVarFAppIPC = "VarF&AppIPC"
	// NameTempAware is this repository's implementation of the paper's
	// first future-work extension: temperature-aware mapping that keeps
	// the die as thermally uniform as possible.
	NameTempAware = "TempAware"
)

// Policy is a scheduling algorithm.
type Policy interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Assign maps each thread to a distinct core.
	Assign(cores []CoreInfo, threads []ThreadInfo, rng *stats.RNG) (Assignment, error)
}

// New returns the policy with the given paper name.
func New(name string) (Policy, error) {
	switch name {
	case NameRandom:
		return RandomPolicy{}, nil
	case NameVarP:
		return VarPPolicy{}, nil
	case NameVarPAppP:
		return VarPAppPPolicy{}, nil
	case NameVarF:
		return VarFPolicy{}, nil
	case NameVarFAppIPC:
		return VarFAppIPCPolicy{}, nil
	case NameTempAware:
		return TempAwarePolicy{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

func checkSizes(cores []CoreInfo, threads []ThreadInfo) error {
	if len(threads) == 0 {
		return fmt.Errorf("sched: no threads to schedule")
	}
	if len(threads) > len(cores) {
		return fmt.Errorf("sched: %d threads exceed %d cores", len(threads), len(cores))
	}
	return nil
}

// RandomPolicy maps threads to cores uniformly at random (baseline).
type RandomPolicy struct{}

// Name implements Policy.
func (RandomPolicy) Name() string { return NameRandom }

// Assign implements Policy.
func (RandomPolicy) Assign(cores []CoreInfo, threads []ThreadInfo, rng *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	perm := rng.Perm(len(cores))
	out := make(Assignment, len(threads))
	for t := range threads {
		out[t] = cores[perm[t]].ID
	}
	return out, nil
}

// topCoresBy returns the first n cores of the ranking induced by key
// (smallest first if ascending, largest first otherwise).
func topCoresBy(cores []CoreInfo, n int, key func(CoreInfo) float64, ascending bool) []CoreInfo {
	vals := make([]float64, len(cores))
	for i, c := range cores {
		vals[i] = key(c)
	}
	var order []int
	if ascending {
		order = stats.RankAscending(vals)
	} else {
		order = stats.RankDescending(vals)
	}
	out := make([]CoreInfo, n)
	for i := 0; i < n; i++ {
		out[i] = cores[order[i]]
	}
	return out
}

// VarPPolicy maps threads randomly onto the lowest-static-power cores.
type VarPPolicy struct{}

// Name implements Policy.
func (VarPPolicy) Name() string { return NameVarP }

// Assign implements Policy.
func (VarPPolicy) Assign(cores []CoreInfo, threads []ThreadInfo, rng *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	top := topCoresBy(cores, len(threads), func(c CoreInfo) float64 { return c.StaticPowerW }, true)
	perm := rng.Perm(len(top))
	out := make(Assignment, len(threads))
	for t := range threads {
		out[t] = top[perm[t]].ID
	}
	return out, nil
}

// VarPAppPPolicy maps the highest-dynamic-power threads onto the
// lowest-static-power cores, evening out per-core power.
type VarPAppPPolicy struct{}

// Name implements Policy.
func (VarPAppPPolicy) Name() string { return NameVarPAppP }

// Assign implements Policy.
func (VarPAppPPolicy) Assign(cores []CoreInfo, threads []ThreadInfo, _ *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	top := topCoresBy(cores, len(threads), func(c CoreInfo) float64 { return c.StaticPowerW }, true)
	powers := make([]float64, len(threads))
	for i, th := range threads {
		powers[i] = th.DynPowerW
	}
	order := stats.RankDescending(powers)
	out := make(Assignment, len(threads))
	for rank, t := range order {
		out[t] = top[rank].ID
	}
	return out, nil
}

// VarFPolicy maps threads randomly onto the highest-frequency cores.
type VarFPolicy struct{}

// Name implements Policy.
func (VarFPolicy) Name() string { return NameVarF }

// Assign implements Policy.
func (VarFPolicy) Assign(cores []CoreInfo, threads []ThreadInfo, rng *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	top := topCoresBy(cores, len(threads), func(c CoreInfo) float64 { return c.FmaxHz }, false)
	perm := rng.Perm(len(top))
	out := make(Assignment, len(threads))
	for t := range threads {
		out[t] = top[perm[t]].ID
	}
	return out, nil
}

// VarFAppIPCPolicy maps the highest-IPC threads onto the highest-frequency
// cores (low-IPC threads are usually memory-bound and benefit less from
// frequency).
type VarFAppIPCPolicy struct{}

// Name implements Policy.
func (VarFAppIPCPolicy) Name() string { return NameVarFAppIPC }

// Assign implements Policy.
func (VarFAppIPCPolicy) Assign(cores []CoreInfo, threads []ThreadInfo, _ *stats.RNG) (Assignment, error) {
	if err := checkSizes(cores, threads); err != nil {
		return nil, err
	}
	top := topCoresBy(cores, len(threads), func(c CoreInfo) float64 { return c.FmaxHz }, false)
	ipcs := make([]float64, len(threads))
	for i, th := range threads {
		ipcs[i] = th.IPC
	}
	order := stats.RankDescending(ipcs)
	out := make(Assignment, len(threads))
	for rank, t := range order {
		out[t] = top[rank].ID
	}
	return out, nil
}
