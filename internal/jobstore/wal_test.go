package jobstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vasched/internal/tenant"
)

// bigSpec pads submissions so a few of them cross small segment
// limits.
func bigSpec(i int) Spec {
	return Spec{
		Tenant:     "tenant-" + strings.Repeat("x", 64),
		Lane:       tenant.LaneBatch,
		Experiment: "experiment-" + strings.Repeat("y", 64),
		Scale:      "quick",
		Workers:    i,
	}
}

// TestSegmentRotation forces tiny segments and checks the log spans
// multiple files, every record survives replay, and the writer
// continues on the last segment.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 512, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := s.Submit(bigSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}

	re, err := Open(Options{Dir: dir, SegmentBytes: 512, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("replayed %d jobs, want %d", re.Len(), n)
	}
	if st := re.Stats(); st.Segments != len(segs) || st.Records != n {
		t.Fatalf("stats = %+v", st)
	}
	// Appends continue without disturbing the replayed tail.
	if j, err := re.Submit(bigSpec(99)); err != nil || j.ID != n+1 {
		t.Fatalf("post-rotation submit = %+v, %v", j, err)
	}
}

// TestTornTailRecovered truncates the final segment mid-record — the
// crash-during-append signature — and checks replay drops exactly the
// torn frame, truncates the file, and keeps everything before it.
func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(bigSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	defer re.Close()
	st := re.Stats()
	if re.Len() != 2 || st.Records != 2 || st.TornBytes == 0 {
		t.Fatalf("len=%d stats=%+v", re.Len(), st)
	}
	if !st.CrashRecovered {
		t.Fatal("torn tail not flagged as crash recovery")
	}
	// The torn bytes are gone from disk: a further append and replay
	// yields a clean log.
	if _, err := re.Submit(bigSpec(9)); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 3 || re2.Stats().TornBytes != 0 {
		t.Fatalf("after repair: len=%d stats=%+v", re2.Len(), re2.Stats())
	}
}

// TestCorruptionFailsLoudly flips one byte mid-log: replay must fail
// with ErrCorrupt and name the offending file, never load a partial
// state.
func TestCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(bigSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := segPath(dir, 1)
	data, _ := os.ReadFile(seg)
	data[len(data)/3] ^= 0x40 // inside an early record, not the tail
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(Options{Dir: dir, Now: testClock()})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt log opened: %v", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(seg)) {
		t.Fatalf("error does not name the segment: %v", err)
	}
}

// TestTornMiddleSegmentFails: truncation anywhere but the final
// segment is corruption, not crash residue.
func TestTornMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 512, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(bigSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need rotation for this test, got %d segments", len(segs))
	}
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Now: testClock()}); err == nil {
		t.Fatal("torn non-final segment opened")
	}
}

// TestAlienFileRejected: unexpected wal-*.log names fail fast instead
// of being silently skipped or misordered.
func TestAlienFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-junk.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Now: testClock()}); err == nil {
		t.Fatal("alien wal file accepted")
	}
}

// TestRecordRoundTrip pins the canonical encoding for every record
// kind, including empty and maximal-ish field mixes.
func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Kind: KindSubmit, ID: 1, Unix: 12345, Tenant: "acme", Lane: tenant.LaneControl, Experiment: "fig4", Scale: "quick", Workers: 8},
		{Kind: KindSubmit, ID: 2, Unix: 12346, Tenant: "acme", Lane: tenant.LaneBatch, Experiment: "ext-adapt", Scale: "default", Params: []byte(`{"metric":"tput","exact":true}`)},
		{Kind: KindClaim, ID: 1, Epoch: 3, Coord: "pod-1", Unix: -1},
		{Kind: KindComplete, ID: 1, Epoch: 3, Coord: "pod-1", Status: statusCodeDone, Rendered: []byte("report"), Result: []byte(`{"a":1}`)},
		{Kind: KindComplete, ID: 2, Epoch: 3, Coord: "pod-1", Status: statusCodeFailed, Error: "boom"},
		{Kind: KindEpoch, Epoch: 9, Coord: "pod-2"},
		{Kind: KindShutdown, Epoch: 9, Coord: "pod-2", Unix: 1 << 60},
	}
	for _, r := range recs {
		enc := EncodeRecord(r)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if !bytes.Equal(EncodeRecord(got), enc) {
			t.Fatalf("non-canonical round trip for %+v", r)
		}
	}
}

// TestRecordDecodeRejects pins the loud-failure contract at the codec
// level: truncation, bit flips, bad magic, and oversized length fields
// all error.
func TestRecordDecodeRejects(t *testing.T) {
	good := EncodeRecord(&Record{Kind: KindSubmit, ID: 7, Tenant: "t", Experiment: "fig4", Scale: "quick"})
	// Every strict prefix fails.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeRecord(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Any single-bit flip fails.
	for i := 0; i < len(good); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 1 << bit
			if _, err := DecodeRecord(bad); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	// Trailing garbage fails.
	if _, err := DecodeRecord(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A huge declared payload length fails before allocating.
	huge := append([]byte(nil), recMagic[:]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodeRecord(huge); err == nil {
		t.Fatal("huge payload length accepted")
	}
}

// TestFsyncOption just exercises the fsync path end to end.
func TestFsyncOption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: true, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(bigSpec(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("len = %d", re.Len())
	}
}

// testClockAt anchors determinism checks: two stores opened over the
// same log see identical timestamps because times come from the log,
// not the clock.
func TestReplayTimesComeFromLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir, Now: testClock()})
	j, _ := s.Submit(bigSpec(1))
	s.Close()
	re, _ := Open(Options{Dir: dir, Now: func() time.Time { return time.Unix(0, 0) }})
	defer re.Close()
	g, _ := re.Get(j.ID)
	if !g.Submitted.Equal(j.Submitted) {
		t.Fatalf("replayed Submitted %v != original %v", g.Submitted, j.Submitted)
	}
}
