package jobstore

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"vasched/internal/tenant"
)

// Status is a job's lifecycle state as served by the API.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

func statusCode(s Status) uint8 {
	switch s {
	case StatusDone:
		return statusCodeDone
	case StatusFailed:
		return statusCodeFailed
	case StatusCancelled:
		return statusCodeCancelled
	}
	return 0
}

func codeStatus(c uint8) Status {
	switch c {
	case statusCodeDone:
		return StatusDone
	case statusCodeFailed:
		return StatusFailed
	case statusCodeCancelled:
		return StatusCancelled
	}
	return ""
}

// Spec is a job submission.
type Spec struct {
	Tenant     string
	Lane       tenant.Lane
	Experiment string
	Scale      string
	Workers    int
	// Params carries experiment-specific options as opaque JSON (e.g.
	// the adaptive-sampling config for ext-adapt); empty for plain runs.
	// It is persisted with the submit record so replay re-runs the job
	// with the options it was submitted with.
	Params []byte
}

// Job is one job's full state. Store methods return copies; mutating a
// returned Job has no effect on the store.
type Job struct {
	ID         uint64
	Tenant     string
	Lane       tenant.Lane
	Experiment string
	Scale      string
	Workers    int
	Params     []byte

	Status    Status
	Error     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Rendered  string
	Result    []byte // result JSON, replayable across restarts

	// Coord and Epoch identify the claim lease; zero when unclaimed.
	Coord string
	Epoch uint64
	// Requeues counts how many times the job was returned to the queue
	// by recovery (crash replay, clean-restart replay, or drain).
	Requeues int
}

// Errors returned by the mutating Store methods.
var (
	// ErrStaleEpoch fences a write from a superseded coordinator: the
	// caller's epoch is no longer the store's current epoch (or the job
	// was re-claimed under a newer one).
	ErrStaleEpoch = errors.New("jobstore: stale epoch")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobstore: no such job")
	// ErrBadState reports a transition the state machine forbids (e.g.
	// claiming a terminal job).
	ErrBadState = errors.New("jobstore: invalid state transition")
)

// Options configures Open.
type Options struct {
	// Dir is the data directory holding the WAL segments. Empty runs
	// the store purely in memory (no durability) — the mode the test
	// suite and -data-dir-less vaschedd use.
	Dir string
	// SegmentBytes rotates WAL segments at this size (default 4 MiB).
	SegmentBytes int64
	// Fsync syncs the segment file after every append. Off by default:
	// a SIGKILL'd process loses nothing either way (the page cache
	// survives it); only a machine crash does.
	Fsync bool
	// Now overrides the clock (tests); default time.Now.
	Now func() time.Time
}

// ReplayStats describes what boot-time replay found.
type ReplayStats struct {
	// Segments and Records are the log size replayed.
	Segments int
	Records  int
	// Requeued is how many claimed-but-uncompleted jobs were returned
	// to the queue.
	Requeued int
	// TornBytes is the size of a torn tail frame truncated from the
	// final segment (crash mid-append).
	TornBytes int64
	// CrashRecovered is true when a non-empty log did not end with a
	// clean-shutdown record: the previous coordinator died rather than
	// drained.
	CrashRecovered bool
}

// Store is the durable job table: an in-memory map materialised from
// the WAL at Open, with every mutation appended to the log before it
// is applied. All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	wal    *wal // nil in memory-only mode
	now    func() time.Time
	jobs   map[uint64]*Job
	nextID uint64
	epoch  uint64
	stats  ReplayStats
}

// Open replays the WAL under opts.Dir (creating the directory if
// needed) and returns the materialised store. Claimed-but-uncompleted
// jobs are re-queued: after a crash that is recovery, after a clean
// shutdown it re-queues work that was deliberately left for the next
// lifetime (see ReplayStats.CrashRecovered for which happened).
func Open(opts Options) (*Store, error) {
	s := &Store{
		now:    opts.Now,
		jobs:   make(map[uint64]*Job),
		nextID: 1,
	}
	if s.now == nil {
		s.now = time.Now
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	res, err := replaySegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	lastKind := Kind(0)
	for _, rec := range res.records {
		if err := s.apply(rec); err != nil {
			return nil, err
		}
		lastKind = rec.Kind
	}
	s.stats = ReplayStats{
		Segments:       res.segments,
		Records:        len(res.records),
		TornBytes:      res.tornBytes,
		CrashRecovered: len(res.records) > 0 && lastKind != KindShutdown,
	}
	// Recovery: a claim without a completion means the owning
	// coordinator is gone — the job goes back to the queue.
	for _, j := range s.jobs {
		if j.Status == StatusRunning {
			j.Status = StatusQueued
			j.Coord, j.Epoch, j.Started = "", 0, time.Time{}
			j.Requeues++
			s.stats.Requeued++
		}
	}
	s.wal, err = openWAL(opts.Dir, res.lastSeq, opts.SegmentBytes, opts.Fsync)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// apply folds one replayed record into the in-memory state. It is
// strict: a log whose records do not form a legal state-machine
// history is corrupt, and replay fails loudly rather than guessing.
func (s *Store) apply(rec *Record) error {
	switch rec.Kind {
	case KindSubmit:
		if _, ok := s.jobs[rec.ID]; ok {
			return corruptf("duplicate submit for job %d", rec.ID)
		}
		if rec.ID < s.nextID {
			return corruptf("submit for job %d regresses below next ID %d", rec.ID, s.nextID)
		}
		s.jobs[rec.ID] = &Job{
			ID:         rec.ID,
			Tenant:     rec.Tenant,
			Lane:       rec.Lane,
			Experiment: rec.Experiment,
			Scale:      rec.Scale,
			Workers:    int(rec.Workers),
			Params:     rec.Params,
			Status:     StatusQueued,
			Submitted:  time.Unix(0, rec.Unix),
		}
		s.nextID = rec.ID + 1
	case KindClaim:
		j, ok := s.jobs[rec.ID]
		if !ok {
			return corruptf("claim for unknown job %d", rec.ID)
		}
		if j.Status.Terminal() {
			return corruptf("claim for terminal job %d", rec.ID)
		}
		j.Status = StatusRunning
		j.Coord, j.Epoch = rec.Coord, rec.Epoch
		j.Started = time.Unix(0, rec.Unix)
	case KindComplete:
		j, ok := s.jobs[rec.ID]
		if !ok {
			return corruptf("completion for unknown job %d", rec.ID)
		}
		if j.Status.Terminal() {
			return corruptf("completion for terminal job %d", rec.ID)
		}
		st := codeStatus(rec.Status)
		if st == "" {
			return corruptf("completion for job %d with status code %d", rec.ID, rec.Status)
		}
		j.Status = st
		j.Error = rec.Error
		j.Rendered = string(rec.Rendered)
		j.Result = rec.Result
		j.Finished = time.Unix(0, rec.Unix)
	case KindEpoch:
		if rec.Epoch <= s.epoch {
			return corruptf("epoch %d does not advance past %d", rec.Epoch, s.epoch)
		}
		s.epoch = rec.Epoch
	case KindShutdown:
		// Only meaningful as the log's final record; nothing to fold.
	default:
		return corruptf("unknown record kind %d", rec.Kind)
	}
	return nil
}

// appendLocked encodes and appends a record; memory-only stores skip
// the disk write. Callers hold s.mu and apply the mutation only after
// a nil return, preserving the WAL-before-state invariant.
func (s *Store) appendLocked(rec *Record) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.append(EncodeRecord(rec))
}

// Stats returns what Open's replay found.
func (s *Store) Stats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Epoch returns the current (highest acquired) epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// AcquireEpoch grants the coordinator a new, strictly increasing epoch
// and records it. From this point every write carrying an older epoch
// is fenced with ErrStaleEpoch.
func (s *Store) AcquireEpoch(coord string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.epoch + 1
	rec := &Record{Kind: KindEpoch, Epoch: epoch, Coord: coord, Unix: s.now().UnixNano()}
	if err := s.appendLocked(rec); err != nil {
		return 0, err
	}
	s.epoch = epoch
	return epoch, nil
}

// Submit appends and creates a queued job, assigning the next ID.
// IDs are monotonic across coordinator lifetimes: replay restores the
// high-water mark, so a restart can never reissue an old ID.
func (s *Store) Submit(spec Spec) (Job, error) {
	if !spec.Lane.Valid() {
		return Job{}, fmt.Errorf("jobstore: invalid lane %d", spec.Lane)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	rec := &Record{
		Kind:       KindSubmit,
		ID:         s.nextID,
		Unix:       now.UnixNano(),
		Tenant:     spec.Tenant,
		Lane:       spec.Lane,
		Experiment: spec.Experiment,
		Scale:      spec.Scale,
		Workers:    uint32(spec.Workers),
		Params:     spec.Params,
	}
	if err := s.appendLocked(rec); err != nil {
		return Job{}, err
	}
	j := &Job{
		ID:         rec.ID,
		Tenant:     spec.Tenant,
		Lane:       spec.Lane,
		Experiment: spec.Experiment,
		Scale:      spec.Scale,
		Workers:    spec.Workers,
		Params:     spec.Params,
		Status:     StatusQueued,
		Submitted:  now,
	}
	s.jobs[j.ID] = j
	s.nextID++
	return *j, nil
}

// Claim leases a job to (coord, epoch) and marks it running. The epoch
// must be current; a queued job is always claimable, and a running job
// is claimable only when its lease belongs to an older epoch (lease
// takeover from a superseded coordinator).
func (s *Store) Claim(id uint64, coord string, epoch uint64) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return Job{}, fmt.Errorf("%w: claim with epoch %d, current %d", ErrStaleEpoch, epoch, s.epoch)
	}
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	switch {
	case j.Status == StatusQueued:
	case j.Status == StatusRunning && j.Epoch < epoch:
		// Takeover: the previous claimant's epoch has been fenced.
	default:
		return Job{}, fmt.Errorf("%w: claim of %s job %d", ErrBadState, j.Status, id)
	}
	now := s.now()
	rec := &Record{Kind: KindClaim, ID: id, Epoch: epoch, Coord: coord, Unix: now.UnixNano()}
	if err := s.appendLocked(rec); err != nil {
		return Job{}, err
	}
	j.Status = StatusRunning
	j.Coord, j.Epoch = coord, epoch
	j.Started = now
	return *j, nil
}

// Complete moves a running job to a terminal state. It is the fencing
// point: the write is rejected unless the caller's epoch is both the
// store's current epoch and the epoch the job is currently leased
// under — a coordinator that lost its lease cannot overwrite the
// re-claimed job's outcome.
func (s *Store) Complete(id uint64, coord string, epoch uint64, st Status, errMsg, rendered string, result []byte) error {
	if !st.Terminal() {
		return fmt.Errorf("jobstore: Complete with non-terminal status %q", st)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return fmt.Errorf("%w: completion with epoch %d, current %d", ErrStaleEpoch, epoch, s.epoch)
	}
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if j.Status != StatusRunning {
		return fmt.Errorf("%w: completion of %s job %d", ErrBadState, j.Status, id)
	}
	if j.Epoch != epoch {
		return fmt.Errorf("%w: job %d leased under epoch %d, completion under %d", ErrStaleEpoch, id, j.Epoch, epoch)
	}
	now := s.now()
	rec := &Record{
		Kind:     KindComplete,
		ID:       id,
		Epoch:    epoch,
		Coord:    coord,
		Unix:     now.UnixNano(),
		Status:   statusCode(st),
		Error:    errMsg,
		Rendered: []byte(rendered),
		Result:   result,
	}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	j.Status = st
	j.Error = errMsg
	j.Rendered = rendered
	j.Result = result
	j.Finished = now
	return nil
}

// Cancel terminates a still-queued job (running jobs are cancelled
// through their context and complete as cancelled via Complete).
func (s *Store) Cancel(id uint64, coord string, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return fmt.Errorf("%w: cancel with epoch %d, current %d", ErrStaleEpoch, epoch, s.epoch)
	}
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if j.Status != StatusQueued {
		return fmt.Errorf("%w: cancel of %s job %d", ErrBadState, j.Status, id)
	}
	now := s.now()
	rec := &Record{
		Kind:   KindComplete,
		ID:     id,
		Epoch:  epoch,
		Coord:  coord,
		Unix:   now.UnixNano(),
		Status: statusCodeCancelled,
		Error:  "cancelled before start",
	}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	j.Status = StatusCancelled
	j.Error = rec.Error
	j.Finished = now
	return nil
}

// Requeue returns a running job to the queued state in memory only —
// the drain path: the claim stays in the log uncompleted, so the next
// lifetime's replay re-queues it identically, and the live view agrees
// with what that replay will reconstruct.
func (s *Store) Requeue(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.Status != StatusRunning {
		return
	}
	j.Status = StatusQueued
	j.Coord, j.Epoch, j.Started = "", 0, time.Time{}
	j.Requeues++
}

// MarkShutdown appends the clean-shutdown record. It is epoch-fenced
// like every other write.
func (s *Store) MarkShutdown(coord string, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return fmt.Errorf("%w: shutdown with epoch %d, current %d", ErrStaleEpoch, epoch, s.epoch)
	}
	return s.appendLocked(&Record{Kind: KindShutdown, Epoch: epoch, Coord: coord, Unix: s.now().UnixNano()})
}

// Get returns a job snapshot.
func (s *Store) Get(id uint64) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns job snapshots sorted by descending ID (newest first —
// the documented, deterministic order). after > 0 restricts to IDs
// strictly below it (the pagination cursor); limit > 0 caps the page
// size.
func (s *Store) List(after uint64, limit int) []Job {
	s.mu.Lock()
	ids := make([]uint64, 0, len(s.jobs))
	for id := range s.jobs {
		if after > 0 && id >= after {
			continue
		}
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, k int) bool { return ids[i] > ids[k] })
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Job, 0, len(ids))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

// Reclaimable returns, in ascending ID order, the jobs a coordinator
// holding the given epoch should enqueue for execution: everything
// queued, plus running jobs whose lease belongs to an older (fenced)
// epoch.
func (s *Store) Reclaimable(epoch uint64) []Job {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.Status == StatusQueued || (j.Status == StatusRunning && j.Epoch < epoch) {
			out = append(out, *j)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Len returns the number of jobs in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Close releases the WAL file handle. The store stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
