package jobstore

import (
	"fmt"
	"testing"
	"time"

	"vasched/internal/tenant"
)

func benchSpec(i int) Spec {
	return Spec{
		Tenant:     "bench-tenant",
		Lane:       tenant.Lane(i % tenant.NumLanes),
		Experiment: "ext-cluster",
		Scale:      "quick",
		Workers:    4,
	}
}

// BenchmarkWALAppend measures the submit hot path: encode + append
// (+rotation) of one WAL record, no fsync.
func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Now: time.Now})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(benchSpec(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsync is the durable variant: one fsync per
// record, the worst-case submit latency floor.
func BenchmarkWALAppendFsync(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: true, Now: time.Now})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(benchSpec(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures boot-time recovery of a 2000-job log with a
// full lifecycle per job (submit + claim + complete).
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, Now: time.Now})
	if err != nil {
		b.Fatal(err)
	}
	epoch, _ := s.AcquireEpoch("bench")
	const jobs = 2000
	for i := 0; i < jobs; i++ {
		j, err := s.Submit(benchSpec(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Claim(j.ID, "bench", epoch); err != nil {
			b.Fatal(err)
		}
		result := []byte(fmt.Sprintf(`{"Checksum":"%032x"}`, i))
		if err := s.Complete(j.ID, "bench", epoch, StatusDone, "", "rendered report", result); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(Options{Dir: dir, Now: time.Now})
		if err != nil {
			b.Fatal(err)
		}
		if re.Len() != jobs {
			b.Fatalf("replayed %d jobs", re.Len())
		}
		re.Close()
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
