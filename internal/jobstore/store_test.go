package jobstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vasched/internal/tenant"
)

// testClock is a deterministic, strictly advancing clock.
func testClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submit(t *testing.T, s *Store, exp string) Job {
	t.Helper()
	j, err := s.Submit(Spec{Tenant: "t", Lane: tenant.LaneInteractive, Experiment: exp, Scale: "quick", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestParamsSurviveReplay: a submission's experiment-specific options
// blob is part of the submit record, so a restarted coordinator re-runs
// the job with the exact options it was submitted with.
func TestParamsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	params := []byte(`{"metric":"power-ratio","rel_ci":0.01}`)
	j, err := s.Submit(Spec{Tenant: "t", Lane: tenant.LaneBatch, Experiment: "ext-adapt", Scale: "quick", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if string(j.Params) != string(params) {
		t.Fatalf("submit params = %q", j.Params)
	}
	s.Close()
	re := mustOpen(t, dir)
	got, ok := re.Get(j.ID)
	if !ok {
		t.Fatal("job lost on replay")
	}
	if string(got.Params) != string(params) {
		t.Fatalf("replayed params = %q, want %q", got.Params, params)
	}
}

// TestLifecycleAndReplay drives the full submit→claim→complete state
// machine, restarts the store, and checks the replayed state — IDs,
// statuses, results — matches byte for byte.
func TestLifecycleAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	epoch, err := s.AcquireEpoch("pod-a")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first epoch = %d", epoch)
	}

	j1 := submit(t, s, "fig4")
	j2 := submit(t, s, "table5")
	if j1.ID != 1 || j2.ID != 2 {
		t.Fatalf("ids = %d, %d", j1.ID, j2.ID)
	}
	if _, err := s.Claim(j1.ID, "pod-a", epoch); err != nil {
		t.Fatal(err)
	}
	result := []byte(`{"Checksum":"abc","Rows":3}`)
	if err := s.Complete(j1.ID, "pod-a", epoch, StatusDone, "", "Figure 4 report", result); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(j2.ID, "pod-a", epoch); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkShutdown("pod-a", epoch); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := mustOpen(t, dir)
	st := re.Stats()
	if st.CrashRecovered {
		t.Fatal("clean shutdown replayed as crash recovery")
	}
	// epoch + submit + submit + claim + complete + cancel + shutdown.
	if st.Records != 7 {
		t.Fatalf("records = %d", st.Records)
	}
	g1, ok := re.Get(1)
	if !ok || g1.Status != StatusDone || g1.Rendered != "Figure 4 report" || string(g1.Result) != string(result) {
		t.Fatalf("replayed job 1 = %+v", g1)
	}
	if g1.Coord != "pod-a" || g1.Epoch != 1 {
		t.Fatalf("replayed lease = %q/%d", g1.Coord, g1.Epoch)
	}
	g2, _ := re.Get(2)
	if g2.Status != StatusCancelled {
		t.Fatalf("replayed job 2 status = %s", g2.Status)
	}
	// Monotonic IDs across lifetimes: the next submit continues, never
	// collides.
	j3 := submit(t, re, "fig6")
	if j3.ID != 3 {
		t.Fatalf("post-restart id = %d, want 3", j3.ID)
	}
	if re.Epoch() != 1 {
		t.Fatalf("replayed epoch = %d", re.Epoch())
	}
}

// TestCrashRecoveryRequeues simulates a coordinator crash: claimed
// jobs lose their lease on replay and return to the queue, and the
// stats flag the restart as crash recovery.
func TestCrashRecoveryRequeues(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	epoch, _ := s.AcquireEpoch("pod-a")
	j1 := submit(t, s, "fig4")
	j2 := submit(t, s, "fig6")
	if _, err := s.Claim(j1.ID, "pod-a", epoch); err != nil {
		t.Fatal(err)
	}
	s.Close() // no MarkShutdown: this is the crash

	re := mustOpen(t, dir)
	st := re.Stats()
	if !st.CrashRecovered || st.Requeued != 1 {
		t.Fatalf("stats = %+v", st)
	}
	g1, _ := re.Get(j1.ID)
	if g1.Status != StatusQueued || g1.Requeues != 1 || g1.Coord != "" || g1.Epoch != 0 {
		t.Fatalf("recovered job = %+v", g1)
	}
	g2, _ := re.Get(j2.ID)
	if g2.Status != StatusQueued || g2.Requeues != 0 {
		t.Fatalf("queued job = %+v", g2)
	}
	recl := re.Reclaimable(re.Epoch() + 1)
	if len(recl) != 2 || recl[0].ID != j1.ID || recl[1].ID != j2.ID {
		t.Fatalf("reclaimable = %+v", recl)
	}
}

// TestEpochFencing is the two-coordinators-one-log acceptance test:
// pod-b supersedes pod-a, pod-a's in-flight writes are rejected, and
// pod-b takes over the lease and completes the job.
func TestEpochFencing(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	e1, _ := s.AcquireEpoch("pod-a")
	j := submit(t, s, "fig4")
	if _, err := s.Claim(j.ID, "pod-a", e1); err != nil {
		t.Fatal(err)
	}

	// pod-b attaches to the same log and acquires the next epoch.
	e2, _ := s.AcquireEpoch("pod-b")
	if e2 != e1+1 {
		t.Fatalf("epochs = %d, %d", e1, e2)
	}

	// Every stale-epoch write is fenced.
	if err := s.Complete(j.ID, "pod-a", e1, StatusDone, "", "stale", nil); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale complete = %v", err)
	}
	if _, err := s.Claim(j.ID, "pod-a", e1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale claim = %v", err)
	}
	if err := s.Cancel(j.ID, "pod-a", e1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale cancel = %v", err)
	}
	if err := s.MarkShutdown("pod-a", e1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale shutdown = %v", err)
	}

	// pod-b sees the stale-leased job as reclaimable and takes it over.
	recl := s.Reclaimable(e2)
	if len(recl) != 1 || recl[0].ID != j.ID {
		t.Fatalf("reclaimable = %+v", recl)
	}
	if _, err := s.Claim(j.ID, "pod-b", e2); err != nil {
		t.Fatalf("takeover claim: %v", err)
	}
	// pod-a still cannot write, even though the job is "its".
	if err := s.Complete(j.ID, "pod-a", e1, StatusDone, "", "stale", nil); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("post-takeover stale complete = %v", err)
	}
	if err := s.Complete(j.ID, "pod-b", e2, StatusDone, "", "ok", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	g, _ := s.Get(j.ID)
	if g.Status != StatusDone || g.Coord != "pod-b" || g.Rendered != "ok" {
		t.Fatalf("final job = %+v", g)
	}
	// A second claim of a terminal job is a state error, not a fence.
	if _, err := s.Claim(j.ID, "pod-b", e2); !errors.Is(err, ErrBadState) {
		t.Fatalf("claim of done job = %v", err)
	}
}

// TestStateMachineRejections pins the transitions the store forbids.
func TestStateMachineRejections(t *testing.T) {
	s := mustOpen(t, "")
	e, _ := s.AcquireEpoch("pod")
	j := submit(t, s, "fig4")

	if err := s.Complete(j.ID, "pod", e, StatusDone, "", "", nil); !errors.Is(err, ErrBadState) {
		t.Fatalf("complete of queued job = %v", err)
	}
	if err := s.Complete(j.ID, "pod", e, StatusQueued, "", "", nil); err == nil {
		t.Fatal("complete with non-terminal status accepted")
	}
	if _, err := s.Claim(99, "pod", e); !errors.Is(err, ErrNotFound) {
		t.Fatalf("claim of unknown job = %v", err)
	}
	if _, err := s.Claim(j.ID, "pod", e); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Claim(j.ID, "pod", e); !errors.Is(err, ErrBadState) {
		t.Fatalf("same-epoch double claim = %v", err)
	}
	if err := s.Cancel(j.ID, "pod", e); !errors.Is(err, ErrBadState) {
		t.Fatalf("cancel of running job = %v", err)
	}
	if _, err := s.Submit(Spec{Tenant: "t", Lane: tenant.Lane(9)}); err == nil {
		t.Fatal("submit with invalid lane accepted")
	}
}

// TestRequeueMirrorsReplay checks the drain path: an in-memory Requeue
// of a running job leaves the live view exactly where the next
// lifetime's replay will land.
func TestRequeueMirrorsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	e, _ := s.AcquireEpoch("pod")
	j := submit(t, s, "fig4")
	if _, err := s.Claim(j.ID, "pod", e); err != nil {
		t.Fatal(err)
	}
	s.Requeue(j.ID)
	live, _ := s.Get(j.ID)
	if err := s.MarkShutdown("pod", e); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := mustOpen(t, dir)
	if re.Stats().CrashRecovered {
		t.Fatal("drained shutdown replayed as crash")
	}
	replayed, _ := re.Get(j.ID)
	if live.Status != replayed.Status || live.Requeues != replayed.Requeues {
		t.Fatalf("live %+v vs replayed %+v", live, replayed)
	}
	if replayed.Status != StatusQueued || replayed.Requeues != 1 {
		t.Fatalf("replayed = %+v", replayed)
	}
}

// TestListPagination pins the documented order (descending ID) and the
// limit/after cursor semantics.
func TestListPagination(t *testing.T) {
	s := mustOpen(t, "")
	for i := 0; i < 5; i++ {
		submit(t, s, fmt.Sprintf("exp-%d", i))
	}
	all := s.List(0, 0)
	if len(all) != 5 || all[0].ID != 5 || all[4].ID != 1 {
		t.Fatalf("List(0,0) ids = %v", ids(all))
	}
	page1 := s.List(0, 2)
	if len(page1) != 2 || page1[0].ID != 5 || page1[1].ID != 4 {
		t.Fatalf("page1 ids = %v", ids(page1))
	}
	page2 := s.List(page1[len(page1)-1].ID, 2)
	if len(page2) != 2 || page2[0].ID != 3 || page2[1].ID != 2 {
		t.Fatalf("page2 ids = %v", ids(page2))
	}
	page3 := s.List(page2[len(page2)-1].ID, 2)
	if len(page3) != 1 || page3[0].ID != 1 {
		t.Fatalf("page3 ids = %v", ids(page3))
	}
	if got := s.List(1, 2); len(got) != 0 {
		t.Fatalf("List(1,2) = %v", ids(got))
	}
}

func ids(jobs []Job) []uint64 {
	out := make([]uint64, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// TestMemoryOnlyStore checks Dir:"" runs the whole state machine with
// no files.
func TestMemoryOnlyStore(t *testing.T) {
	s := mustOpen(t, "")
	e, _ := s.AcquireEpoch("pod")
	j := submit(t, s, "fig4")
	if _, err := s.Claim(j.ID, "pod", e); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(j.ID, "pod", e, StatusDone, "", "r", nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
