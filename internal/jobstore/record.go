// Package jobstore is the durable job layer of the vaschedd platform:
// an append-only, checksummed write-ahead log with segment rotation and
// boot-time replay, plus a Store API (submit / claim / complete /
// cancel) with lease/epoch fencing so multiple stateless coordinators
// can replay the same log and share one worker fleet.
//
// Wire format (this file): every WAL record is one self-contained frame
//
//	magic "vjl2" | u32 payload length | payload | FNV-64a checksum
//
// where the checksum covers everything before it (the same integrity
// idiom as internal/cluster's shard codec). Payloads have a canonical
// encoding — DecodeRecord(EncodeRecord(r)) round-trips byte-for-byte —
// which is what makes the checksum meaningful end to end and what
// FuzzWALRecord verifies. Decoders never trust length fields: every
// allocation is bounded by the buffer, truncation is reported as
// ErrTorn (recoverable only at the tail of the final segment), and any
// other malformation is ErrCorrupt, which fails replay loudly rather
// than loading garbage.
package jobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"vasched/internal/tenant"
)

// recMagic tags every WAL frame; the trailing digit is the format
// version and bumps on any incompatible change. v2 added the submit
// Params blob (experiment-specific options, e.g. adaptive sampling).
var recMagic = [4]byte{'v', 'j', 'l', '2'}

// Decode limits. They bound allocation on malformed input; all are far
// above anything the service writes (experiment names are short, and
// rendered reports / result JSON are small documents).
const (
	maxNameLen    = 1 << 10 // tenant / lane / experiment / scale / coordinator strings
	maxErrLen     = 1 << 16 // error messages
	maxBlobLen    = 1 << 26 // rendered report or result JSON
	maxPayloadLen = 1 << 27 // whole record payload
	checksumLen   = 8
	headerLen     = 4 + 4 // magic + payload length
)

// ErrCorrupt is returned for any malformed record — bad magic, length
// fields that overrun the payload, out-of-range enums, trailing bytes,
// or an integrity-checksum mismatch. Replay treats it as fatal: a log
// that fails its checksums is surfaced to the operator, never loaded
// partially.
var ErrCorrupt = errors.New("jobstore: corrupt record")

// ErrTorn is returned when a buffer ends mid-frame. It is the
// signature of a crash during append, and is recoverable only at the
// tail of the final segment (the torn frame is dropped and truncated);
// anywhere else it is corruption.
var ErrTorn = errors.New("jobstore: torn record")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Kind discriminates WAL record types.
type Kind uint8

const (
	// KindSubmit creates a job in the queued state.
	KindSubmit Kind = 1
	// KindClaim moves a queued job to running under (coord, epoch).
	KindClaim Kind = 2
	// KindComplete moves a running job (or, for cancels of queued
	// jobs, a queued one) to a terminal state, carrying the rendered
	// report and result JSON.
	KindComplete Kind = 3
	// KindEpoch records a coordinator acquiring a new, strictly
	// increasing epoch; all older epochs are fenced from that point.
	KindEpoch Kind = 4
	// KindShutdown marks a clean coordinator shutdown, so replay can
	// distinguish crash recovery from a clean restart.
	KindShutdown Kind = 5

	kindMax = KindShutdown
)

// Record is one WAL entry. All kinds share the struct; fields unused
// by a kind are zero and still round-trip canonically.
type Record struct {
	Kind  Kind
	ID    uint64 // job ID (submit / claim / complete)
	Epoch uint64 // claim / complete / epoch / shutdown
	Unix  int64  // event time, Unix nanoseconds

	Coord      string // claim / complete / epoch / shutdown
	Tenant     string // submit
	Lane       tenant.Lane
	Experiment string // submit
	Scale      string // submit
	Workers    uint32 // submit
	Params     []byte // submit: experiment-specific options JSON (may be empty)

	Status   uint8  // complete: one of the status* codes below
	Error    string // complete (failed / cancelled)
	Rendered []byte // complete: rendered report
	Result   []byte // complete: result JSON
}

// Status codes carried by KindComplete records.
const (
	statusCodeDone      = 1
	statusCodeFailed    = 2
	statusCodeCancelled = 3
)

// EncodeRecord serialises one record as a framed, checksummed WAL
// entry.
func EncodeRecord(r *Record) []byte {
	payload := make([]byte, 0, 64+len(r.Coord)+len(r.Tenant)+len(r.Experiment)+
		len(r.Scale)+len(r.Params)+len(r.Error)+len(r.Rendered)+len(r.Result))
	payload = append(payload, byte(r.Kind))
	payload = binary.LittleEndian.AppendUint64(payload, r.ID)
	payload = binary.LittleEndian.AppendUint64(payload, r.Epoch)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(r.Unix))
	payload = appendString(payload, r.Coord)
	payload = appendString(payload, r.Tenant)
	payload = append(payload, byte(r.Lane))
	payload = appendString(payload, r.Experiment)
	payload = appendString(payload, r.Scale)
	payload = binary.LittleEndian.AppendUint32(payload, r.Workers)
	payload = appendBlob(payload, r.Params)
	payload = append(payload, r.Status)
	payload = appendString(payload, r.Error)
	payload = appendBlob(payload, r.Rendered)
	payload = appendBlob(payload, r.Result)

	buf := make([]byte, 0, headerLen+len(payload)+checksumLen)
	buf = append(buf, recMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf)
}

// ReadRecord parses the frame at the start of buf, returning the
// record and the number of bytes consumed. A buffer ending mid-frame
// returns ErrTorn; any other malformation returns ErrCorrupt.
func ReadRecord(buf []byte) (*Record, int, error) {
	if len(buf) < headerLen {
		return nil, 0, ErrTorn
	}
	var magic [4]byte
	copy(magic[:], buf)
	if magic != recMagic {
		return nil, 0, corruptf("bad magic %q", magic[:])
	}
	plen := int(binary.LittleEndian.Uint32(buf[4:]))
	if plen > maxPayloadLen {
		return nil, 0, corruptf("payload length %d", plen)
	}
	total := headerLen + plen + checksumLen
	if len(buf) < total {
		return nil, 0, ErrTorn
	}
	h := fnv.New64a()
	h.Write(buf[:headerLen+plen])
	if string(h.Sum(nil)) != string(buf[headerLen+plen:total]) {
		return nil, 0, corruptf("checksum mismatch")
	}
	r, err := decodePayload(buf[headerLen : headerLen+plen])
	if err != nil {
		return nil, 0, err
	}
	return r, total, nil
}

// DecodeRecord parses exactly one frame spanning the whole buffer; it
// is the fuzz entry point.
func DecodeRecord(buf []byte) (*Record, error) {
	r, n, err := ReadRecord(buf)
	if err != nil {
		// A short buffer is malformed input here, not a resumable read.
		if errors.Is(err, ErrTorn) {
			return nil, corruptf("truncated frame (%d bytes)", len(buf))
		}
		return nil, err
	}
	if n != len(buf) {
		return nil, corruptf("%d trailing bytes", len(buf)-n)
	}
	return r, nil
}

func decodePayload(buf []byte) (*Record, error) {
	d := decoder{buf: buf}
	r := &Record{}
	r.Kind = Kind(d.u8())
	r.ID = d.u64()
	r.Epoch = d.u64()
	r.Unix = int64(d.u64())
	r.Coord = d.str(maxNameLen)
	r.Tenant = d.str(maxNameLen)
	r.Lane = tenant.Lane(d.u8())
	r.Experiment = d.str(maxNameLen)
	r.Scale = d.str(maxNameLen)
	r.Workers = d.u32()
	r.Params = d.blob()
	r.Status = d.u8()
	r.Error = d.str(maxErrLen)
	r.Rendered = d.blob()
	r.Result = d.blob()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, corruptf("%d trailing payload bytes", len(d.buf)-d.off)
	}
	if r.Kind == 0 || r.Kind > kindMax {
		return nil, corruptf("unknown record kind %d", r.Kind)
	}
	if !r.Lane.Valid() {
		return nil, corruptf("invalid lane %d", r.Lane)
	}
	if r.Status > statusCodeCancelled {
		return nil, corruptf("invalid status code %d", r.Status)
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendBlob(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// decoder is a bounds-checked cursor: the first overrun latches err and
// every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = corruptf("payload truncated at offset %d (want %d of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *decoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *decoder) str(max int) string {
	n := int(binary.LittleEndian.Uint16(d.take2()))
	if n > max {
		if d.err == nil {
			d.err = corruptf("string length %d (max %d)", n, max)
		}
		return ""
	}
	return string(d.take(n))
}

func (d *decoder) take2() []byte {
	if b := d.take(2); b != nil {
		return b
	}
	return []byte{0, 0}
}

func (d *decoder) blob() []byte {
	n := int(d.u32())
	if n > maxBlobLen {
		if d.err == nil {
			d.err = corruptf("blob length %d (max %d)", n, maxBlobLen)
		}
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
