package jobstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Segment files are named wal-00000001.log, wal-00000002.log, … in the
// data directory; lexical order is append order.
const segPattern = "wal-%08d.log"

// defaultSegmentBytes rotates segments at 4 MiB — small enough that a
// long-lived log is many files (rotation is exercised in normal use),
// large enough that a busy coordinator is not churning file handles.
const defaultSegmentBytes = 4 << 20

// wal is the append side of the log: one open segment file, rotated by
// size. It is not concurrency-safe; Store serialises access under its
// own mutex.
type wal struct {
	dir      string
	segBytes int64
	fsync    bool
	seq      int // sequence number of the open segment
	f        *os.File
	size     int64
}

// segPath returns the path of segment n.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, n))
}

// listSegments returns the data directory's segment paths in append
// order.
func listSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches) // zero-padded sequence numbers: lexical = temporal
	return matches, nil
}

// segSeq parses a segment path's sequence number.
func segSeq(path string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(filepath.Base(path), segPattern, &n); err != nil {
		return 0, fmt.Errorf("jobstore: alien file %q in data dir: %w", path, err)
	}
	return n, nil
}

// openWAL opens the append side on the given segment sequence number,
// creating the file if needed and appending to it otherwise.
func openWAL(dir string, seq int, segBytes int64, fsync bool) (*wal, error) {
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	w := &wal{dir: dir, segBytes: segBytes, fsync: fsync, seq: seq}
	if err := w.openSeg(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *wal) openSeg() error {
	f, err := os.OpenFile(segPath(w.dir, w.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, st.Size()
	return nil
}

// append writes one encoded frame, rotating to a new segment first if
// the current one is at its size limit.
func (w *wal) append(frame []byte) error {
	if w.size > 0 && w.size+int64(len(frame)) > w.segBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seq++
	return w.openSeg()
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// replayResult is what replaySegments hands the Store: the applied
// records plus recovery facts.
type replayResult struct {
	records  []*Record
	segments int
	// lastSeq is the sequence number replay ended on (the segment the
	// writer should continue appending to); 1 when the log is empty.
	lastSeq int
	// tornBytes is the size of a torn frame dropped (and truncated)
	// from the tail of the final segment — the signature of a crash
	// mid-append.
	tornBytes int64
}

// replaySegments reads every segment in order. A frame that ends
// mid-buffer is tolerated only at the tail of the final segment, where
// it is the expected residue of a crash during append: the torn bytes
// are truncated away so the writer can continue cleanly. Anywhere else
// — and for any checksum or structural failure — replay fails loudly
// with the offending file and offset; a corrupt log is an operator
// problem, not something to load partially.
func replaySegments(dir string) (*replayResult, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &replayResult{segments: len(segs), lastSeq: 1}
	for i, path := range segs {
		seq, err := segSeq(path)
		if err != nil {
			return nil, err
		}
		res.lastSeq = seq
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		off := 0
		for off < len(data) {
			rec, n, err := ReadRecord(data[off:])
			if errors.Is(err, ErrTorn) {
				if i != len(segs)-1 {
					return nil, fmt.Errorf("jobstore: %s: torn record at offset %d in non-final segment", path, off)
				}
				res.tornBytes = int64(len(data) - off)
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, fmt.Errorf("jobstore: truncating torn tail of %s: %w", path, err)
				}
				break
			}
			if err != nil {
				return nil, fmt.Errorf("jobstore: %s: offset %d: %w", path, off, err)
			}
			res.records = append(res.records, rec)
			off += n
		}
	}
	return res, nil
}
