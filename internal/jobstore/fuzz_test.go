package jobstore

import (
	"bytes"
	"testing"

	"vasched/internal/tenant"
)

// FuzzWALRecord fuzzes the WAL record decoder. Properties under test:
//
//  1. No input panics or over-allocates (every length field is bounded
//     by the buffer before allocation).
//  2. Any accepted input re-encodes to the exact input bytes — the
//     format has a canonical encoding, which is what makes the FNV
//     integrity checksum meaningful end to end.
//  3. Truncating an accepted input or flipping any of its bits makes
//     it rejected: a damaged record can only fail replay loudly, never
//     load as garbage.
//
// The committed corpus under testdata/fuzz/FuzzWALRecord seeds one
// valid frame per record kind plus classic breakages; `make fuzzseed`
// runs the target for 10s in CI and the nightly workflow for 5m.
func FuzzWALRecord(f *testing.F) {
	f.Add(EncodeRecord(&Record{Kind: KindSubmit, ID: 1, Unix: 1700000000, Tenant: "acme",
		Lane: tenant.LaneInteractive, Experiment: "fig4", Scale: "quick", Workers: 4}))
	f.Add(EncodeRecord(&Record{Kind: KindSubmit, ID: 2, Unix: 1700000001, Tenant: "acme",
		Lane: tenant.LaneBatch, Experiment: "ext-adapt", Scale: "quick",
		Params: []byte(`{"metric":"power-ratio","rel_ci":0.02}`)}))
	f.Add(EncodeRecord(&Record{Kind: KindClaim, ID: 1, Epoch: 2, Coord: "pod-1", Unix: 1}))
	f.Add(EncodeRecord(&Record{Kind: KindComplete, ID: 1, Epoch: 2, Coord: "pod-1",
		Status: statusCodeDone, Rendered: []byte("Figure 4"), Result: []byte(`{"ok":true}`)}))
	f.Add(EncodeRecord(&Record{Kind: KindEpoch, Epoch: 7, Coord: "pod-2"}))
	f.Add(EncodeRecord(&Record{Kind: KindShutdown, Epoch: 7, Coord: "pod-2"}))
	f.Add([]byte{})
	f.Add([]byte("vjl1")) // previous format version: magic now rejected
	f.Add([]byte("vjl2"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		re := EncodeRecord(r)
		if !bytes.Equal(re, data) {
			t.Fatalf("record is not canonical:\n in: %x\nout: %x", data, re)
		}
		// A valid record must reject every truncation and any single
		// byte-level corruption (spot-check a few positions to keep the
		// fuzz loop fast).
		if _, err := DecodeRecord(data[:len(data)-1]); err == nil {
			t.Fatal("truncated record accepted")
		}
		for _, i := range []int{0, len(data) / 2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x01
			if _, err := DecodeRecord(bad); err == nil {
				t.Fatalf("bit flip at %d accepted", i)
			}
		}
	})
}
