package thermal

import (
	"math"
	"testing"

	"vasched/internal/floorplan"
)

func benchModel(b *testing.B) (*Model, []float64) {
	b.Helper()
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	for i, blk := range fp.Blocks {
		p[i] = 70 * blk.R.Area()
	}
	return m, p
}

// BenchmarkSolve is one steady-state solve on the 20-core floorplan — the
// kernel inside every leakage-temperature fixed-point iteration.
func BenchmarkSolve(b *testing.B) {
	m, p := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixedPoint is the full leakage-temperature loop a chip
// evaluation pays once per monitor sample.
func BenchmarkFixedPoint(b *testing.B) {
	m, p := benchModel(b)
	leak := make([]float64, m.n)
	leakFn := func(temps []float64) []float64 {
		for i, tc := range temps {
			leak[i] = 0.05 * math.Pow(2, (tc-45)/40)
		}
		return leak
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := m.FixedPoint(p, leakFn, 0.01, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientStep is the per-sample cost of the inertia-modelling
// timeline (core.Config.TransientThermal).
func BenchmarkTransientStep(b *testing.B) {
	m, p := benchModel(b)
	tr, err := m.NewTransient(1)
	if err != nil {
		b.Fatal(err)
	}
	temps := make([]float64, m.n)
	for i := range temps {
		temps[i] = m.Config().AmbientC
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := tr.Step(p, temps)
		if err != nil {
			b.Fatal(err)
		}
		copy(temps, out)
	}
}

// BenchmarkSolveScratch is BenchmarkSolve through the zero-allocation
// scratch API — the form the chip evaluator actually runs.
func BenchmarkSolveScratch(b *testing.B) {
	m, p := benchModel(b)
	dst := make([]float64, m.n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SolveInto(dst, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixedPointScratch is BenchmarkFixedPoint with reused scratch.
func BenchmarkFixedPointScratch(b *testing.B) {
	m, p := benchModel(b)
	sc := m.NewFixedPointScratch()
	leak := make([]float64, m.n)
	leakFn := func(temps []float64) []float64 {
		for i, tc := range temps {
			leak[i] = 0.05 * math.Pow(2, (tc-45)/40)
		}
		return leak
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := m.FixedPointWith(sc, p, leakFn, 0.01, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientStepScratch is BenchmarkTransientStep with
// caller-provided buffers.
func BenchmarkTransientStepScratch(b *testing.B) {
	m, p := benchModel(b)
	tr, err := m.NewTransient(1)
	if err != nil {
		b.Fatal(err)
	}
	temps := make([]float64, m.n)
	for i := range temps {
		temps[i] = m.Config().AmbientC
	}
	dst := make([]float64, m.n)
	rhs := make([]float64, m.n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.StepInto(dst, rhs, p, temps); err != nil {
			b.Fatal(err)
		}
		copy(temps, dst)
	}
}
