package thermal

import (
	"math"
	"testing"

	"vasched/internal/floorplan"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(floorplan.New20CoreCMP(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestZeroPowerIsAmbient(t *testing.T) {
	m := newTestModel(t)
	temps, err := m.Solve(make([]float64, len(floorplan.New20CoreCMP().Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range temps {
		if math.Abs(tc-m.Config().AmbientC) > 1e-9 {
			t.Fatalf("block %d at %v C with no power", i, tc)
		}
	}
}

func TestUniformPowerPlausibleRange(t *testing.T) {
	m := newTestModel(t)
	fp := floorplan.New20CoreCMP()
	p := make([]float64, len(fp.Blocks))
	// ~90 W spread uniformly by area.
	for i, b := range fp.Blocks {
		p[i] = 90 * b.R.Area()
	}
	temps, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	maxT := m.MaxTemp(temps)
	if maxT < 60 || maxT > 110 {
		t.Fatalf("full-chip 90 W peak temp = %v C, outside plausible range", maxT)
	}
}

func TestHotSpotLocality(t *testing.T) {
	// Power a single core; its blocks must be hotter than a far-away core.
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		if b.Core == 0 {
			p[i] = 1.0 // 6 W total in core 0
		}
	}
	temps, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.CoreMeanTemp(temps, 0)
	cold := m.CoreMeanTemp(temps, 19)
	if hot <= cold+1 {
		t.Fatalf("heated core %v C not hotter than idle distant core %v C", hot, cold)
	}
}

func TestLateralSpreading(t *testing.T) {
	// A neighbour of the heated core must be warmer than a distant core.
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		if b.Core == 0 {
			p[i] = 1.0
		}
	}
	temps, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	neighbour := m.CoreMeanTemp(temps, 1) // core 1 is adjacent to core 0
	distant := m.CoreMeanTemp(temps, 19)
	if neighbour <= distant {
		t.Fatalf("no lateral spreading: neighbour %v C vs distant %v C", neighbour, distant)
	}
}

func TestEnergyBalance(t *testing.T) {
	// In steady state, total input power equals heat leaving vertically:
	// sum(gVert_i * dT_i) == sum(P_i).
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	total := 0.0
	for i, b := range fp.Blocks {
		p[i] = 50 * b.R.Area()
		total += p[i]
	}
	temps, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	out := 0.0
	for i := range temps {
		out += m.gVert[i] * (temps[i] - m.Config().AmbientC)
	}
	if math.Abs(out-total) > 1e-6*total {
		t.Fatalf("energy not conserved: in %v W, out %v W", total, out)
	}
}

func TestFixedPointConvergence(t *testing.T) {
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dyn := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		dyn[i] = 60 * b.R.Area()
	}
	// Leakage that doubles every 40 C above ambient — representative
	// exponential coupling.
	leakFn := func(temps []float64) []float64 {
		leak := make([]float64, len(temps))
		for i, tc := range temps {
			leak[i] = 0.05 * math.Pow(2, (tc-45)/40)
		}
		return leak
	}
	temps, leak, iters, err := m.FixedPoint(dyn, leakFn, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= 100 {
		t.Fatalf("fixed point did not converge in %d iterations", iters)
	}
	// Self-consistency: re-solving with the returned leakage reproduces
	// the returned temperatures.
	total := make([]float64, len(dyn))
	for i := range total {
		total[i] = dyn[i] + leak[i]
	}
	check, err := m.Solve(total)
	if err != nil {
		t.Fatal(err)
	}
	for i := range temps {
		if math.Abs(check[i]-temps[i]) > 0.1 {
			t.Fatalf("fixed point inconsistent at block %d: %v vs %v", i, check[i], temps[i])
		}
	}
}

func TestFixedPointValidation(t *testing.T) {
	m := newTestModel(t)
	if _, _, _, err := m.FixedPoint([]float64{1, 2}, nil, 0.01, 10); err == nil {
		t.Fatal("wrong-size power vector accepted")
	}
	fp := floorplan.New20CoreCMP()
	dyn := make([]float64, len(fp.Blocks))
	badLeak := func([]float64) []float64 { return []float64{1} }
	if _, _, _, err := m.FixedPoint(dyn, badLeak, 0.01, 10); err == nil {
		t.Fatal("wrong-size leakage vector accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	m := newTestModel(t)
	if _, err := m.Solve([]float64{1}); err == nil {
		t.Fatal("wrong-size power vector accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VerticalConductance = 0
	if _, err := New(floorplan.New20CoreCMP(), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMaxTempClamp(t *testing.T) {
	m := newTestModel(t)
	fp := floorplan.New20CoreCMP()
	p := make([]float64, len(fp.Blocks))
	for i := range p {
		p[i] = 100 // absurd 12 kW chip
	}
	temps, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxTemp(temps) > m.Config().MaxTempC {
		t.Fatal("clamp not applied")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		p[i] = 80 * b.R.Area()
	}
	steady, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(1)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, len(fp.Blocks))
	for i := range temps {
		temps[i] = m.Config().AmbientC
	}
	// March long enough to pass several thermal time constants.
	for step := 0; step < 2000; step++ {
		temps, err = tr.Step(p, temps)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range temps {
		if math.Abs(temps[i]-steady[i]) > 0.5 {
			t.Fatalf("block %d transient %v C vs steady %v C", i, temps[i], steady[i])
		}
	}
}

func TestTransientInertia(t *testing.T) {
	// One step after a power jump must move temperatures only part of the
	// way to steady state — that lag is the whole point of the model.
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		if b.Core == 0 {
			p[i] = 1.5
		}
	}
	steady, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(1)
	if err != nil {
		t.Fatal(err)
	}
	cold := make([]float64, len(fp.Blocks))
	for i := range cold {
		cold[i] = m.Config().AmbientC
	}
	after, err := tr.Step(p, cold)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.CoreMeanTemp(steady, 0) - m.Config().AmbientC
	oneStep := m.CoreMeanTemp(after, 0) - m.Config().AmbientC
	if oneStep <= 0 {
		t.Fatal("no heating after one step")
	}
	if oneStep > 0.6*hot {
		t.Fatalf("1 ms step covered %v of the %v K rise; no inertia", oneStep, hot)
	}
	if tr.StepMS() != 1 {
		t.Fatalf("StepMS = %v", tr.StepMS())
	}
}

func TestTransientValidation(t *testing.T) {
	m := newTestModel(t)
	if _, err := m.NewTransient(0); err == nil {
		t.Fatal("zero step accepted")
	}
	tr, err := m.NewTransient(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step([]float64{1}, []float64{2}); err == nil {
		t.Fatal("wrong-size step accepted")
	}
}
