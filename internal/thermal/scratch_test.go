package thermal

import (
	"math"
	"testing"

	"vasched/internal/floorplan"
	"vasched/internal/stats"
)

// TestSolveIntoMatchesSolve locks the scratch API to the allocating one:
// reusing one destination buffer across many solves must give bit-for-bit
// the same temperatures as a fresh Solve, and every reused-scratch solve
// must still satisfy the steady-state energy balance to < 1e-9 relative.
func TestSolveIntoMatchesSolve(t *testing.T) {
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	dst := make([]float64, m.n)
	p := make([]float64, m.n)
	for trial := 0; trial < 50; trial++ {
		total := 0.0
		for i, b := range fp.Blocks {
			p[i] = (20 + 60*rng.Float64()) * b.R.Area()
			total += p[i]
		}
		want, err := m.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SolveInto(dst, p); err != nil {
			t.Fatal(err)
		}
		out := 0.0
		for i, tc := range dst {
			if tc != want[i] {
				t.Fatalf("trial %d block %d: SolveInto %v != Solve %v", trial, i, tc, want[i])
			}
			out += m.gVert[i] * (tc - m.cfg.AmbientC)
		}
		if rel := math.Abs(out-total) / total; rel > 1e-9 {
			t.Fatalf("trial %d: energy balance residual %v with reused scratch", trial, rel)
		}
	}
}

// TestFixedPointWithMatchesFixedPoint verifies the leakage fixed point is
// bit-for-bit unchanged when run with reused scratch.
func TestFixedPointWithMatchesFixedPoint(t *testing.T) {
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	sc := m.NewFixedPointScratch()
	leakBuf := make([]float64, m.n)
	leakFn := func(temps []float64) []float64 {
		for i, tc := range temps {
			leakBuf[i] = 0.05 * math.Pow(2, (tc-45)/40)
		}
		return leakBuf
	}
	p := make([]float64, m.n)
	for trial := 0; trial < 20; trial++ {
		for i, b := range fp.Blocks {
			p[i] = (10 + 70*rng.Float64()) * b.R.Area()
		}
		wantT, _, wantIt, err := m.FixedPoint(p, leakFn, 0.01, 60)
		if err != nil {
			t.Fatal(err)
		}
		gotT, _, gotIt, err := m.FixedPointWith(sc, p, leakFn, 0.01, 60)
		if err != nil {
			t.Fatal(err)
		}
		if gotIt != wantIt {
			t.Fatalf("trial %d: %d iterations with scratch, %d without", trial, gotIt, wantIt)
		}
		for i := range wantT {
			if gotT[i] != wantT[i] {
				t.Fatalf("trial %d block %d: FixedPointWith %v != FixedPoint %v", trial, i, gotT[i], wantT[i])
			}
		}
	}
}

// TestStepIntoMatchesStep verifies the transient stepper is bit-for-bit
// unchanged when run with caller-provided buffers.
func TestStepIntoMatchesStep(t *testing.T) {
	fp := floorplan.New20CoreCMP()
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(13)
	p := make([]float64, m.n)
	prev := make([]float64, m.n)
	for i := range prev {
		prev[i] = m.cfg.AmbientC
	}
	dst := make([]float64, m.n)
	rhs := make([]float64, m.n)
	for step := 0; step < 30; step++ {
		for i, b := range fp.Blocks {
			p[i] = (5 + 80*rng.Float64()) * b.R.Area()
		}
		want, err := tr.Step(p, prev)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.StepInto(dst, rhs, p, prev); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("step %d block %d: StepInto %v != Step %v", step, i, dst[i], want[i])
			}
		}
		copy(prev, want)
	}
}
