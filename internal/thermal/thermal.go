// Package thermal implements a HotSpot-style steady-state block-level
// thermal model. Each floorplan block is a node in a thermal resistance
// network: a vertical conductance carries heat through the package to the
// ambient, and lateral conductances couple blocks that share an edge.
// Steady-state temperatures solve G*T = P. The package also implements the
// Su et al. leakage-temperature fixed point: leakage depends exponentially
// on temperature and temperature depends on total power, so the two are
// iterated to convergence.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"vasched/internal/floorplan"
	"vasched/internal/linsolve"
)

// Config holds the thermal calibration.
type Config struct {
	// AmbientC is the heatsink/ambient temperature in Celsius.
	AmbientC float64
	// VerticalConductance is the conductance from a block to ambient per
	// mm^2 of block area, in W/(K*mm^2). It lumps die, spreader, sink and
	// convection.
	VerticalConductance float64
	// LateralConductance is the conductance between adjacent blocks per
	// mm of shared edge per mm of center distance, in W*mm/(K*mm) - i.e.
	// multiplied by edge length and divided by center distance.
	LateralConductance float64
	// MaxTempC clamps solutions (thermal throttling would engage far
	// before this in a real system; the clamp keeps the leakage fixed
	// point from diverging under absurd power inputs).
	MaxTempC float64
}

// DefaultConfig returns a calibration that puts a fully loaded nominal
// 20-core die around the paper's observed ~95 C peak.
func DefaultConfig() Config {
	return Config{
		AmbientC:            45,
		VerticalConductance: 0.013,
		LateralConductance:  0.08,
		MaxTempC:            150,
	}
}

// Model is the assembled RC network for one floorplan.
type Model struct {
	cfg    Config
	fp     *floorplan.Floorplan
	n      int
	lu     *linsolve.LU
	gVert  []float64 // per-block vertical conductance, W/K
	blocks []floorplan.Block
}

// New builds the conductance matrix for fp and factors it once; Solve then
// costs one pair of triangular substitutions per call.
func New(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if cfg.VerticalConductance <= 0 || cfg.LateralConductance < 0 {
		return nil, fmt.Errorf("thermal: invalid conductances %+v", cfg)
	}
	n := len(fp.Blocks)
	if n == 0 {
		return nil, errors.New("thermal: empty floorplan")
	}
	edge := fp.DieEdgeMM()
	g := make([]float64, n*n)
	gVert := make([]float64, n)
	for i, bi := range fp.Blocks {
		areaMM2 := bi.R.Area() * edge * edge
		gv := cfg.VerticalConductance * areaMM2
		gVert[i] = gv
		g[i*n+i] += gv
		for j := i + 1; j < n; j++ {
			bj := fp.Blocks[j]
			shared := bi.R.SharedEdge(bj.R)
			if shared <= 0 {
				continue
			}
			cxi, cyi := (bi.R.X0+bi.R.X1)/2, (bi.R.Y0+bi.R.Y1)/2
			cxj, cyj := (bj.R.X0+bj.R.X1)/2, (bj.R.Y0+bj.R.Y1)/2
			distMM := math.Hypot(cxi-cxj, cyi-cyj) * edge
			if distMM <= 0 {
				continue
			}
			gl := cfg.LateralConductance * (shared * edge) / distMM
			g[i*n+i] += gl
			g[j*n+j] += gl
			g[i*n+j] -= gl
			g[j*n+i] -= gl
		}
	}
	lu, err := linsolve.Factor(g, n)
	if err != nil {
		return nil, fmt.Errorf("thermal: factoring conductance matrix: %w", err)
	}
	return &Model{cfg: cfg, fp: fp, n: n, lu: lu, gVert: gVert, blocks: fp.Blocks}, nil
}

// Config returns the model's calibration.
func (m *Model) Config() Config { return m.cfg }

// SolveInto computes the steady-state block temperatures in Celsius for
// the given per-block power in watts into the caller-provided dst, which
// must not alias powerW. It is the zero-allocation form of Solve.
func (m *Model) SolveInto(dst, powerW []float64) error {
	if len(powerW) != m.n {
		return fmt.Errorf("thermal: power vector has %d entries, want %d", len(powerW), m.n)
	}
	if err := m.lu.SolveInto(dst, powerW); err != nil {
		return err
	}
	for i, d := range dst {
		tc := m.cfg.AmbientC + d
		if tc > m.cfg.MaxTempC {
			tc = m.cfg.MaxTempC
		}
		if tc < m.cfg.AmbientC {
			tc = m.cfg.AmbientC
		}
		dst[i] = tc
	}
	return nil
}

// Solve returns the steady-state block temperatures in Celsius for the
// given per-block power in watts.
func (m *Model) Solve(powerW []float64) ([]float64, error) {
	t := make([]float64, m.n)
	if err := m.SolveInto(t, powerW); err != nil {
		return nil, err
	}
	return t, nil
}

// FixedPoint iterates the leakage-temperature loop: dynPowerW is the
// temperature-independent per-block power; leakage(temps) returns the
// per-block leakage at the given block temperatures. Iteration continues
// until the largest block-temperature change falls below tolC (damped to
// guarantee convergence) or maxIter is reached.
//
// It returns the converged temperatures, the per-block leakage at those
// temperatures, and the number of iterations used.
func (m *Model) FixedPoint(dynPowerW []float64, leakage func(tempsC []float64) []float64, tolC float64, maxIter int) ([]float64, []float64, int, error) {
	return m.FixedPointWith(nil, dynPowerW, leakage, tolC, maxIter)
}

// FixedPointScratch holds the iteration buffers of FixedPointWith so the
// inner DVFS loop can run the leakage fixed point without allocating. A
// scratch must not be used by two fixed points concurrently.
type FixedPointScratch struct {
	temps, total, next []float64
}

// NewFixedPointScratch returns a scratch sized for m.
func (m *Model) NewFixedPointScratch() *FixedPointScratch {
	return &FixedPointScratch{
		temps: make([]float64, m.n),
		total: make([]float64, m.n),
		next:  make([]float64, m.n),
	}
}

// FixedPointWith is FixedPoint with caller-provided scratch. The returned
// temperature slice aliases sc.temps and is only valid until the scratch's
// next use; callers that retain it must copy. A nil sc allocates fresh
// buffers, making it equivalent to FixedPoint.
func (m *Model) FixedPointWith(sc *FixedPointScratch, dynPowerW []float64, leakage func(tempsC []float64) []float64, tolC float64, maxIter int) ([]float64, []float64, int, error) {
	if len(dynPowerW) != m.n {
		return nil, nil, 0, fmt.Errorf("thermal: power vector has %d entries, want %d", len(dynPowerW), m.n)
	}
	if tolC <= 0 {
		tolC = 0.01
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if sc == nil {
		sc = m.NewFixedPointScratch()
	}
	temps, total, next := sc.temps, sc.total, sc.next
	for i := range temps {
		temps[i] = m.cfg.AmbientC + 20 // warm start
	}
	var leak []float64
	const damping = 0.7
	for iter := 1; iter <= maxIter; iter++ {
		leak = leakage(temps)
		if len(leak) != m.n {
			return nil, nil, iter, fmt.Errorf("thermal: leakage returned %d entries, want %d", len(leak), m.n)
		}
		for i := range total {
			total[i] = dynPowerW[i] + leak[i]
		}
		if err := m.SolveInto(next, total); err != nil {
			return nil, nil, iter, err
		}
		worst := 0.0
		for i := range temps {
			blended := temps[i] + damping*(next[i]-temps[i])
			if d := math.Abs(blended - temps[i]); d > worst {
				worst = d
			}
			temps[i] = blended
		}
		if worst < tolC {
			return temps, leak, iter, nil
		}
	}
	return temps, leak, maxIter, nil
}

// AmbientTemps fills dst with the ambient temperature — the initial
// condition of every transient simulation (cold silicon) — and returns it.
// A nil dst allocates a fresh vector sized for the model.
func (m *Model) AmbientTemps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.n)
	}
	for i := range dst {
		dst[i] = m.cfg.AmbientC
	}
	return dst
}

// CoreMeanTemp returns the area-weighted mean temperature of core c's
// blocks given a block temperature vector.
func (m *Model) CoreMeanTemp(tempsC []float64, core int) float64 {
	var sum, area float64
	for i, b := range m.blocks {
		if b.Core != core {
			continue
		}
		a := b.R.Area()
		sum += tempsC[i] * a
		area += a
	}
	if area == 0 {
		return m.cfg.AmbientC
	}
	return sum / area
}

// MaxTemp returns the hottest block temperature.
func (m *Model) MaxTemp(tempsC []float64) float64 {
	mx := tempsC[0]
	for _, t := range tempsC[1:] {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// Transient extends the steady-state model with per-block thermal
// capacitance, enabling time-stepped simulation: C dT/dt = P - G (T - Tamb)
// discretised with backward Euler, so each step solves
// (G + C/dt) T_new = P + (C/dt) T_old. The factorisation is reused across
// steps of equal length. Thermal inertia is what makes activity migration
// pay off: a previously idle core absorbs a hot thread for a while before
// reaching steady temperature.
type Transient struct {
	m     *Model
	dtSec float64
	lu    *linsolve.LU
	cOver []float64 // C_i/dt per block, W/K
}

// HeatCapacityPerMM2 is the lumped thermal capacitance per mm^2 of die
// (silicon volumetric heat capacity times an effective die+spreader
// thickness); together with the vertical conductance it sets the block
// thermal time constant (tens of milliseconds here, matching HotSpot-class
// models).
const HeatCapacityPerMM2 = 5e-4 // J/(K*mm^2)

// NewTransient prepares a stepper with the given step length in
// milliseconds.
func (m *Model) NewTransient(dtMS float64) (*Transient, error) {
	if dtMS <= 0 {
		return nil, fmt.Errorf("thermal: non-positive step %v ms", dtMS)
	}
	dt := dtMS / 1000
	edge := m.fp.DieEdgeMM()
	n := m.n
	// Rebuild G and add C/dt on the diagonal.
	g := make([]float64, n*n)
	cOver := make([]float64, n)
	for i, bi := range m.blocks {
		areaMM2 := bi.R.Area() * edge * edge
		cOver[i] = HeatCapacityPerMM2 * areaMM2 / dt
		g[i*n+i] += m.cfg.VerticalConductance*areaMM2 + cOver[i]
		for j := i + 1; j < n; j++ {
			bj := m.blocks[j]
			shared := bi.R.SharedEdge(bj.R)
			if shared <= 0 {
				continue
			}
			cxi, cyi := (bi.R.X0+bi.R.X1)/2, (bi.R.Y0+bi.R.Y1)/2
			cxj, cyj := (bj.R.X0+bj.R.X1)/2, (bj.R.Y0+bj.R.Y1)/2
			distMM := math.Hypot(cxi-cxj, cyi-cyj) * edge
			if distMM <= 0 {
				continue
			}
			gl := m.cfg.LateralConductance * (shared * edge) / distMM
			g[i*n+i] += gl
			g[j*n+j] += gl
			g[i*n+j] -= gl
			g[j*n+i] -= gl
		}
	}
	lu, err := linsolve.Factor(g, n)
	if err != nil {
		return nil, fmt.Errorf("thermal: factoring transient matrix: %w", err)
	}
	return &Transient{m: m, dtSec: dt, lu: lu, cOver: cOver}, nil
}

// StepMS returns the stepper's step length in milliseconds.
func (tr *Transient) StepMS() float64 { return tr.dtSec * 1000 }

// StepInto advances one time step from prevTempsC under the given
// per-block power, writing the new block temperatures into dst using rhs
// as scratch. dst and rhs must each be n long and must not alias powerW,
// prevTempsC, or each other.
func (tr *Transient) StepInto(dst, rhs, powerW, prevTempsC []float64) error {
	n := tr.m.n
	if len(powerW) != n || len(prevTempsC) != n {
		return fmt.Errorf("thermal: transient step with %d powers / %d temps for %d blocks",
			len(powerW), len(prevTempsC), n)
	}
	for i := 0; i < n; i++ {
		rhs[i] = powerW[i] + tr.cOver[i]*(prevTempsC[i]-tr.m.cfg.AmbientC)
	}
	if err := tr.lu.SolveInto(dst, rhs); err != nil {
		return err
	}
	for i, d := range dst {
		tc := tr.m.cfg.AmbientC + d
		if tc > tr.m.cfg.MaxTempC {
			tc = tr.m.cfg.MaxTempC
		}
		if tc < tr.m.cfg.AmbientC {
			tc = tr.m.cfg.AmbientC
		}
		dst[i] = tc
	}
	return nil
}

// Step advances one time step from prevTempsC under the given per-block
// power and returns the new block temperatures.
func (tr *Transient) Step(powerW, prevTempsC []float64) ([]float64, error) {
	out := make([]float64, tr.m.n)
	rhs := make([]float64, tr.m.n)
	if err := tr.StepInto(out, rhs, powerW, prevTempsC); err != nil {
		return nil, err
	}
	return out, nil
}
