package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event "complete" event (ph "X"). The
// format is documented in the Trace Event Format spec and loads in
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object container format (the array format is
// also legal, but the object form lets viewers read metadata).
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes spans as Chrome trace_event JSON. Each root span
// and its descendants share a thread row (tid = root span ID), so a
// clustered run renders one row per shard tree with dispatch/retry
// spans nested inside; overlapping rows are concurrent shards.
func WriteChrome(w io.Writer, spans []Span) error {
	// Resolve each span's root ancestor for the tid; spans whose parent
	// is missing from the batch root themselves.
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	rootOf := make(map[uint64]uint64, len(spans))
	var resolve func(id uint64) uint64
	resolve = func(id uint64) uint64 {
		if r, ok := rootOf[id]; ok {
			return r
		}
		p, ok := parent[id]
		r := id
		if ok && p != 0 {
			if _, known := parent[p]; known {
				r = resolve(p)
			}
		}
		rootOf[id] = r
		return r
	}

	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "vasched",
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  resolve(s.ID),
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
