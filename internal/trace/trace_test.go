package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances one millisecond per call, so
// exporter output has stable, strictly increasing timestamps.
func fakeClock() func() time.Duration {
	var n time.Duration
	return func() time.Duration {
		n += time.Millisecond
		return n
	}
}

func TestNoTracerIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything", Int("i", 1))
	if sp != nil {
		t.Fatal("Start without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a tracer must return the input context")
	}
	// All nil-safe methods.
	sp.AddAttr(String("k", "v"))
	sp.End()
	Event(ctx, "marker")
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewWithClock(0, fakeClock())
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext must return the installed tracer")
	}

	ctx1, root := Start(ctx, "root", String("kind", "test"))
	if FromContext(ctx1) != tr {
		t.Fatal("FromContext must find the tracer through a span")
	}
	ctx2, child := Start(ctx1, "child", Int("i", 0))
	_, grand := Start(ctx2, "grandchild")
	grand.End()
	child.AddAttr(Bool("ok", true))
	child.End()
	child.End() // double End is a no-op
	Event(ctx1, "marker", Int64("n", 42))
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	want := `root {kind=test}
  child {i=0 ok=true}
    grandchild
  marker {n=42}
`
	if got := Tree(spans); got != want {
		t.Fatalf("tree mismatch:\n%s\nwant:\n%s", got, want)
	}
	// Attributes added after End are discarded.
	child.AddAttr(String("late", "x"))
	for _, s := range tr.Snapshot() {
		for _, a := range s.Attrs {
			if a.Key == "late" {
				t.Fatal("attribute added after End must be dropped")
			}
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewWithClock(4, fakeClock())
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, fmt.Sprintf("s%d", i))
		sp.End()
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Snapshot()
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Fatalf("span %d = %q, want %q (oldest must be evicted first)", i, s.Name, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestOrphanedChildrenBecomeRoots(t *testing.T) {
	tr := NewWithClock(0, fakeClock())
	ctx := WithTracer(context.Background(), tr)
	ctx1, parent := Start(ctx, "parent")
	_, child := Start(ctx1, "child")
	child.End()
	// parent never ends: the child has no committed parent and must
	// render at the root.
	_ = parent
	if got := Tree(tr.Snapshot()); got != "child\n" {
		t.Fatalf("orphan tree = %q", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(128)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := Start(ctx, "outer", Int("g", g))
				_, inner := Start(c, "inner", Int("i", i))
				inner.AddAttr(Bool("done", true))
				inner.End()
				sp.End()
				_ = tr.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Fatalf("ring holds %d, want full 128", tr.Len())
	}
	if int(tr.Dropped()) != 8*50*2-128 {
		t.Fatalf("dropped = %d, want %d", tr.Dropped(), 8*50*2-128)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewWithClock(0, fakeClock())
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := Start(ctx, "cluster.run", String("kernel", "sched-pm"))
	_, shard := Start(ctx1, "cluster.shard", Int("lo", 0), Int("hi", 8))
	shard.End()
	root.End()

	var b strings.Builder
	if err := WriteChrome(&b, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	run, shardEv := doc.TraceEvents[0], doc.TraceEvents[1]
	if run.Name != "cluster.run" || shardEv.Name != "cluster.shard" {
		t.Fatalf("event order/name wrong: %+v", doc.TraceEvents)
	}
	if run.Ph != "X" || run.PID != 1 || run.Dur <= 0 {
		t.Fatalf("bad complete event: %+v", run)
	}
	// Child shares the root's thread row.
	if shardEv.TID != run.TID {
		t.Fatalf("child tid %d != root tid %d", shardEv.TID, run.TID)
	}
	if shardEv.Args["lo"] != "0" || shardEv.Args["hi"] != "8" {
		t.Fatalf("args not exported: %+v", shardEv.Args)
	}
	// The child must be time-contained in the parent (Perfetto nests by
	// containment).
	if shardEv.TS < run.TS || shardEv.TS+shardEv.Dur > run.TS+run.Dur {
		t.Fatalf("child [%v,%v] not contained in parent [%v,%v]",
			shardEv.TS, shardEv.TS+shardEv.Dur, run.TS, run.TS+run.Dur)
	}
}

func TestSnapshotOrderedByStart(t *testing.T) {
	tr := NewWithClock(0, fakeClock())
	ctx := WithTracer(context.Background(), tr)
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	b.End() // b ends first but started second
	a.End()
	spans := tr.Snapshot()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("snapshot not start-ordered: %v, %v", spans[0].Name, spans[1].Name)
	}
}
