// Package trace is a dependency-free, span-based tracing layer for the
// hot control paths of the repository: experiment fan-out (internal/farm),
// cluster shard dispatch/retry/hedge/degrade (internal/cluster), and
// power-manager decisions (internal/pm). A Tracer collects completed
// spans into a fixed-capacity ring buffer; exporters render the buffer as
// Chrome trace_event JSON (chrome.go, loadable in chrome://tracing and
// Perfetto) or as an indented text tree (tree.go, used for test goldens).
//
// Design rules:
//
//   - Context propagation. A span's parent is whatever span the caller's
//     context carries; code that never installs a Tracer pays one context
//     lookup per Start and allocates nothing (Start returns a nil
//     *ActiveSpan, whose methods are all nil-safe no-ops).
//   - Observation only. Tracing must never change an experiment output:
//     spans read no RNG, and every traced code path runs identically with
//     and without a Tracer attached (regression-tested in
//     internal/experiments).
//   - Deterministic structure. Under a fixed seed and serial execution
//     (farm Workers=1), the tree of span names and attributes is a pure
//     function of the workload, so tests can golden the tree rendering.
//     Timestamps and durations are wall-clock and excluded from goldens.
package trace

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attr is one span attribute. Values are pre-rendered strings so spans
// can be compared and goldened byte-for-byte.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Span is one completed span as stored in the collector ring.
type Span struct {
	// ID is unique within the Tracer; Parent is 0 for root spans.
	ID, Parent uint64
	// Name identifies the operation (dotted lower-case, e.g.
	// "cluster.dispatch"; see DESIGN.md section 9 for the vocabulary).
	Name string
	// Attrs are in insertion order (deterministic: code adds them in
	// program order).
	Attrs []Attr
	// Start is the monotonic offset from the Tracer's epoch; Dur the
	// span's duration.
	Start, Dur time.Duration
}

// Tracer collects completed spans into a fixed-capacity ring buffer.
// All methods are safe for concurrent use.
type Tracer struct {
	clock func() time.Duration

	mu      sync.Mutex
	nextID  uint64
	ring    []Span
	head    int // next write position
	filled  int
	dropped uint64
}

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity: large enough to hold a quick-scale experiment
// end to end, small enough (~a few MB) for a long-running service.
const DefaultCapacity = 16384

// New returns a Tracer whose ring holds up to capacity completed spans
// (<= 0 means DefaultCapacity). When the ring is full the oldest
// completed span is evicted and counted in Dropped.
func New(capacity int) *Tracer {
	epoch := time.Now()
	return NewWithClock(capacity, func() time.Duration { return time.Since(epoch) })
}

// NewWithClock is New with an injectable monotonic clock (tests pin it
// to get stable timestamps in exporter output).
func NewWithClock(capacity int, clock func() time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{clock: clock, ring: make([]Span, capacity)}
}

// record appends one completed span to the ring, evicting the oldest
// when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled == len(t.ring) {
		t.dropped++
	} else {
		t.filled++
	}
	t.ring[t.head] = s
	t.head = (t.head + 1) % len(t.ring)
}

// Snapshot returns the completed spans ordered by (Start, ID). Spans
// still active (started, not yet ended) are not included.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	out := make([]Span, 0, t.filled)
	start := (t.head - t.filled + len(t.ring)) % len(t.ring)
	for i := 0; i < t.filled; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns how many completed spans the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.filled
}

// Dropped returns how many completed spans have been evicted from the
// ring.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all completed spans (the ring keeps its capacity).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.head, t.filled, t.dropped = 0, 0, 0
}

// ActiveSpan is a started, not-yet-ended span. The zero of the type is
// a nil pointer: every method is nil-safe, so call sites need no tracer
// checks.
type ActiveSpan struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ctxKey carries the current ActiveSpan (and through it the Tracer).
type ctxKey struct{}

// tracerKey carries the Tracer when no span is open yet.
type tracerKey struct{}

// WithTracer returns a context whose Start calls record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's Tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	if sp, ok := ctx.Value(ctxKey{}).(*ActiveSpan); ok && sp != nil {
		return sp.tracer
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Start opens a span named name under the context's current span. The
// returned context carries the new span (children started from it link
// here); the caller must End the span. With no Tracer in ctx both return
// values are the inputs' no-ops: the original ctx and a nil span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	var (
		t      *Tracer
		parent uint64
	)
	if sp, ok := ctx.Value(ctxKey{}).(*ActiveSpan); ok && sp != nil {
		t, parent = sp.tracer, sp.id
	} else if tr, ok := ctx.Value(tracerKey{}).(*Tracer); ok {
		t = tr
	}
	if t == nil {
		return ctx, nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	sp := &ActiveSpan{
		tracer: t,
		id:     id,
		parent: parent,
		name:   name,
		start:  t.clock(),
	}
	if len(attrs) > 0 {
		sp.attrs = append(sp.attrs, attrs...)
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Event records a zero-duration marker span under the context's current
// span (e.g. "cluster.degrade"). With no Tracer it is a no-op.
func Event(ctx context.Context, name string, attrs ...Attr) {
	_, sp := Start(ctx, name, attrs...)
	sp.End()
}

// AddAttr appends attributes to the span (call before End). Nil-safe.
func (s *ActiveSpan) AddAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// End completes the span and commits it to the tracer's ring. Ending
// twice is a no-op; ending a nil span is a no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	now := s.tracer.clock()
	s.tracer.record(Span{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Attrs:  attrs,
		Start:  s.start,
		Dur:    now - s.start,
	})
}
