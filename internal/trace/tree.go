package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Tree renders spans as an indented text tree — the golden-testable
// export. Each line is "name {k=v k=v}" (attributes in insertion order);
// children are indented two spaces under their parent and ordered by
// (Start, ID), so with serial execution and a fixed seed the output is a
// deterministic pure function of the traced workload. Timestamps and
// durations are deliberately omitted.
//
// Spans whose parent is absent (never ended, or evicted from the ring)
// render as roots, so a truncated ring still produces a readable tree.
func Tree(spans []Span) string {
	byID := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	children := make(map[uint64][]Span, len(spans))
	var roots []Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(list []Span) {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start != list[j].Start {
				return list[i].Start < list[j].Start
			}
			return list[i].ID < list[j].ID
		})
	}
	order(roots)
	for _, c := range children {
		order(c)
	}

	var b strings.Builder
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		if len(s.Attrs) > 0 {
			b.WriteString(" {")
			for i, a := range s.Attrs {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%s", a.Key, a.Value)
			}
			b.WriteByte('}')
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
