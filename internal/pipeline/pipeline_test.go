package pipeline

import (
	"testing"

	"vasched/internal/cpusim"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

func runApp(t *testing.T, name string, fHz float64, n int64) *Stats {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewTraceGen(prof, stats.NewRNG(1))
	// Warm the resident footprint, then the predictor/pipeline, then
	// measure.
	core.WarmCaches(gen, 300000)
	if _, err := core.Run(gen, n/2, fHz); err != nil {
		t.Fatal(err)
	}
	s, err := core.Run(gen, n, fHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBEntries = -1 },
		func(c *Config) { c.FPLatency = 0 },
		func(c *Config) { c.MemLatencySec = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.Predictor.BTBEntries = 3 },
	}
	for i, f := range mut {
		cfg := DefaultConfig()
		f(&cfg)
		if _, err := NewCore(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	core, err := NewCore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := workload.ByName("gap")
	gen := NewTraceGen(prof, stats.NewRNG(1))
	if _, err := core.Run(gen, 0, 4e9); err == nil {
		t.Fatal("zero instructions accepted")
	}
	if _, err := core.Run(gen, 100, 0); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestIPCBounded(t *testing.T) {
	s := runApp(t, "crafty", 4e9, 40000)
	if s.IPC <= 0 || s.IPC > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("IPC = %v outside (0, issue width]", s.IPC)
	}
	if s.Instructions != 40000 {
		t.Fatalf("committed %d", s.Instructions)
	}
}

func TestComputeVsMemoryBound(t *testing.T) {
	// crafty (small working set, low MPKI) must clearly outrun mcf (huge
	// working set, pointer chasing) on the cycle-level core too.
	crafty := runApp(t, "crafty", 4e9, 40000)
	mcf := runApp(t, "mcf", 4e9, 40000)
	if crafty.IPC < 2*mcf.IPC {
		t.Fatalf("crafty %v vs mcf %v: separation too small", crafty.IPC, mcf.IPC)
	}
	if mcf.L2MPKI < 3*crafty.L2MPKI {
		t.Fatalf("mcf L2MPKI %v vs crafty %v: cache behaviour not separated", mcf.L2MPKI, crafty.L2MPKI)
	}
}

func TestIPCFallsWithFrequencyForMemoryBound(t *testing.T) {
	lo := runApp(t, "mcf", 2e9, 30000)
	hi := runApp(t, "mcf", 4e9, 30000)
	if hi.IPC >= lo.IPC {
		t.Fatalf("mcf IPC did not fall with frequency: %v @2GHz vs %v @4GHz", lo.IPC, hi.IPC)
	}
}

func TestComputeBoundNearlyFrequencyIndependent(t *testing.T) {
	lo := runApp(t, "crafty", 2e9, 30000)
	hi := runApp(t, "crafty", 4e9, 30000)
	if hi.IPC < 0.85*lo.IPC {
		t.Fatalf("crafty IPC fell too much with frequency: %v -> %v", lo.IPC, hi.IPC)
	}
}

func TestMispredictRateTracksProfile(t *testing.T) {
	// The synthetic branch stream is constructed so gshare lands near the
	// profile's misprediction rate; allow a loose factor-of-two band.
	for _, name := range []string{"crafty", "mgrid"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := runApp(t, name, 4e9, 40000)
		want := prof.BranchMispredRate
		if s.MispredictRate > want*2.5+0.045 {
			t.Errorf("%s: mispredict rate %v far above profile %v", name, s.MispredictRate, want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := runApp(t, "gzip", 4e9, 20000)
	b := runApp(t, "gzip", 4e9, 20000)
	if a.IPC != b.IPC || a.Cycles != b.Cycles {
		t.Fatal("same seed diverged")
	}
}

// TestCrossValidatesIntervalModel is the package's reason to exist: the
// cycle-level core and the calibrated interval model (cpusim) must agree
// on how applications rank by IPC. Absolute values differ (cpusim is
// calibrated to the paper's Table 5; this core is not calibrated at all),
// so the assertion is on rank correlation.
func TestCrossValidatesIntervalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	apps := workload.SPEC()
	cpu, err := cpusim.New(cpusim.DefaultCoreConfig(), apps)
	if err != nil {
		t.Fatal(err)
	}
	var pipeIPC, intervalIPC []float64
	for _, a := range apps {
		s := runApp(t, a.Name, 4e9, 25000)
		pipeIPC = append(pipeIPC, s.IPC)
		ref, err := cpu.SteadyIPC(a, 4e9)
		if err != nil {
			t.Fatal(err)
		}
		intervalIPC = append(intervalIPC, ref)
	}
	// Spearman rank correlation.
	rho := spearman(pipeIPC, intervalIPC)
	if rho < 0.6 {
		t.Fatalf("pipeline/interval IPC rank correlation = %v, want >= 0.6\npipeline: %v\ninterval: %v",
			rho, pipeIPC, intervalIPC)
	}
}

// spearman computes the rank correlation between two equal-length slices.
func spearman(xs, ys []float64) float64 {
	rx := ranks(xs)
	ry := ranks(ys)
	r, err := stats.Correlation(rx, ry)
	if err != nil {
		return 0
	}
	return r
}

func ranks(xs []float64) []float64 {
	order := stats.RankAscending(xs)
	out := make([]float64, len(xs))
	for rank, idx := range order {
		out[idx] = float64(rank)
	}
	return out
}

func BenchmarkPipeline(b *testing.B) {
	prof, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	core, err := NewCore(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	gen := NewTraceGen(prof, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(gen, 10000, 4e9); err != nil {
			b.Fatal(err)
		}
	}
}
