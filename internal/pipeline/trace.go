// Package pipeline is a cycle-level out-of-order core simulator: fetch
// through a gshare+BTB front end, a reorder buffer with register
// dependency tracking, latency-accurate execution through the cache
// hierarchy, and in-order commit. It is the repository's stand-in for the
// paper's SESC substrate at the microarchitectural level, and serves as a
// cross-check for the calibrated interval model in package cpusim: both
// must agree on how applications rank and on how IPC responds to clock
// frequency (see the validation tests).
package pipeline

import (
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// OpClass is an instruction's functional class.
type OpClass uint8

// Instruction classes.
const (
	OpInt OpClass = iota
	OpFP
	OpLoad
	OpStore
	OpBranch
)

// Instr is one dynamic instruction of a synthetic trace.
type Instr struct {
	PC    uint64
	Class OpClass
	// Dest, Src1, Src2 are architectural registers in [0,32), or -1.
	Dest, Src1, Src2 int8
	// Addr is the effective address for loads/stores.
	Addr uint64
	// Taken and Target describe the actual branch outcome.
	Taken  bool
	Target uint64
}

// TraceGen synthesizes a dynamic instruction stream matching an
// application profile: its instruction mix, its memory reference stream
// (via workload.StreamGen, so spatial locality matches the cache-measured
// behaviour), its branch predictability, and a register dependency
// structure whose tightness scales with the profile's intrinsic ILP.
type TraceGen struct {
	prof   *workload.AppProfile
	rng    *stats.RNG
	mem    *workload.StreamGen
	pc     uint64
	nextRd int
	// lastWriter[r] is the instruction index that last wrote register r.
	lastWriter [32]int64
	count      int64
	// depMean is the mean dependency distance in instructions.
	depMean float64
	// sites is the static branch footprint: programs execute the same
	// static branches over and over, which is what lets a BTB and a
	// gshare predictor learn them. A site is either "easy" (a loop-style
	// branch, strongly biased taken) or "hard" (a data-dependent coin
	// flip, which no history predictor beats); the hard share is chosen
	// so the aggregate misprediction rate lands near the profile's.
	sites []branchSite
}

// branchSite is one static branch of the synthetic program.
type branchSite struct {
	pc     uint64
	target uint64
	hard   bool
}

// NewTraceGen builds a generator for prof.
func NewTraceGen(prof *workload.AppProfile, rng *stats.RNG) *TraceGen {
	// Higher-IPC codes have looser dependency chains.
	dep := 2 + 6*prof.IPCNom
	g := &TraceGen{
		prof:    prof,
		rng:     rng,
		mem:     workload.NewStreamGen(prof, rng.Derive(1)),
		pc:      0x10000,
		depMean: dep,
	}
	// Static branch footprint: 128 sites with fixed PCs and targets.
	hardFrac := 2 * prof.BranchMispredRate
	const nSites = 128
	for i := 0; i < nSites; i++ {
		// 16-byte spacing keeps every site in its own BTB entry (the BTB
		// indexes pc>>2 over 4096 entries).
		pc := uint64(0x20000 + i*16)
		g.sites = append(g.sites, branchSite{
			pc:     pc,
			target: pc - uint64(64+(i%32)*8),
			hard:   g.rng.Float64() < hardFrac,
		})
	}
	return g
}

// Next returns the next dynamic instruction.
func (g *TraceGen) Next() Instr {
	in := Instr{PC: g.pc, Dest: -1, Src1: -1, Src2: -1}
	r := g.rng.Float64()
	memF := g.prof.MemAccessFrac
	brF := g.prof.BranchFrac
	fpF := 0.0
	if g.prof.FP {
		fpF = 0.3
	}
	switch {
	case r < memF*0.7: // loads (roughly 70/30 load/store split)
		in.Class = OpLoad
		acc := g.mem.Next()
		in.Addr = acc.Addr
		in.Dest = g.allocReg()
		in.Src1 = g.depReg()
	case r < memF:
		in.Class = OpStore
		acc := g.mem.Next()
		in.Addr = acc.Addr
		in.Src1 = g.depReg()
		in.Src2 = g.depReg()
	case r < memF+brF:
		in.Class = OpBranch
		in.Src1 = g.depReg()
		site := g.sites[g.rng.Intn(len(g.sites))]
		in.PC = site.pc
		in.Target = site.target
		if site.hard {
			in.Taken = g.rng.Float64() < 0.5
		} else {
			// Loop-style: strongly biased taken; predictors learn it.
			in.Taken = g.rng.Float64() < 0.97
		}
	case r < memF+brF+fpF:
		in.Class = OpFP
		in.Dest = g.allocReg()
		in.Src1 = g.depReg()
		in.Src2 = g.depReg()
	default:
		in.Class = OpInt
		in.Dest = g.allocReg()
		in.Src1 = g.depReg()
		in.Src2 = g.depReg()
	}
	g.count++
	g.pc += 4
	if g.pc > 0x1FF00 {
		g.pc = 0x10000 // wrap the straight-line region
	}
	if in.Dest >= 0 {
		g.lastWriter[in.Dest] = g.count
	}
	return in
}

// allocReg picks a destination register round-robin (reuses the
// architectural space the way compiled code does).
func (g *TraceGen) allocReg() int8 {
	g.nextRd = (g.nextRd + 1) % 32
	return int8(g.nextRd)
}

// depReg picks a source register whose last write was a geometrically
// distributed distance ago, giving the profile's dependency tightness.
func (g *TraceGen) depReg() int8 {
	// Sample a target distance, then find the register whose last write
	// is closest to it. Cheap approximation: pick among recent writers.
	want := int64(1)
	for g.rng.Float64() > 1/g.depMean {
		want++
		if want > 64 {
			break
		}
	}
	bestReg, bestDiff := int8(0), int64(1<<62)
	for r := 0; r < 32; r++ {
		if g.lastWriter[r] == 0 {
			continue
		}
		dist := g.count - g.lastWriter[r]
		diff := dist - want
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			bestReg = int8(r)
		}
	}
	return bestReg
}
