package pipeline

import (
	"fmt"

	"vasched/internal/bpred"
	"vasched/internal/cache"
	"vasched/internal/workload"
)

// Config describes the simulated core (paper Table 4 defaults).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBEntries  int
	// IntLatency/FPLatency are execute latencies in cycles.
	IntLatency int
	FPLatency  int
	// L1Latency/L2Latency are hit latencies in cycles.
	L1Latency int
	L2Latency int
	// MemLatencySec is main memory latency in seconds; its cycle cost
	// scales with the simulated clock.
	MemLatencySec float64
	// BranchPenalty is the misprediction flush cost in cycles.
	BranchPenalty int
	// MSHRs bounds outstanding misses (memory-level parallelism).
	MSHRs int
	// Predictor sizes the branch predictor.
	Predictor bpred.Config
}

// DefaultConfig returns the Table 4 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		IssueWidth:    2,
		CommitWidth:   2,
		ROBEntries:    80,
		IntLatency:    1,
		FPLatency:     4,
		L1Latency:     2,
		L2Latency:     10,
		MemLatencySec: 100e-9,
		BranchPenalty: 7,
		MSHRs:         8,
		Predictor:     bpred.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 || c.ROBEntries <= 0 {
		return fmt.Errorf("pipeline: non-positive width/ROB in %+v", c)
	}
	if c.IntLatency <= 0 || c.FPLatency <= 0 || c.L1Latency <= 0 || c.L2Latency <= 0 {
		return fmt.Errorf("pipeline: non-positive latency in %+v", c)
	}
	if c.MemLatencySec <= 0 || c.BranchPenalty < 0 || c.MSHRs <= 0 {
		return fmt.Errorf("pipeline: invalid memory/branch parameters in %+v", c)
	}
	return c.Predictor.Validate()
}

// robEntry is one in-flight instruction.
type robEntry struct {
	in     Instr
	issued bool
	done   bool
	doneAt int64 // cycle the result is available
	isMiss bool  // occupies an MSHR until doneAt
}

// Stats summarises a simulation window.
type Stats struct {
	Cycles       int64
	Instructions int64
	IPC          float64
	// BranchMispredicts counts flushes; MispredictRate is per branch.
	BranchMispredicts int64
	MispredictRate    float64
	// L1MPKI/L2MPKI are data-cache misses per kilo-instruction.
	L1MPKI float64
	L2MPKI float64
}

// Core is one cycle-level simulated core.
type Core struct {
	cfg  Config
	pred *bpred.Predictor
	hier *cache.Hierarchy
	// ROB as a ring buffer.
	rob        []robEntry
	head, tail int
	occupancy  int
	// regReady[r] is the cycle register r's latest value is available.
	regReady [32]int64
	cycle    int64
	// fetchStallUntil blocks fetch after a mispredicted branch until the
	// flush resolves.
	fetchStallUntil int64
	outstanding     int // busy MSHRs
	branches        int64
	mispredicts     int64
}

// NewCore builds a core with a fresh cache hierarchy.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := bpred.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg:  cfg,
		pred: pred,
		hier: hier,
		rob:  make([]robEntry, cfg.ROBEntries),
	}, nil
}

// WarmCaches streams n memory references from the generator's address
// stream through the core's cache hierarchy without simulating timing.
// Real workloads run billions of instructions; a timing window that starts
// on cold caches would be dominated by compulsory misses, so callers warm
// the resident footprint first (the cycle-accurate equivalent of the
// paper's simulation-point methodology).
func (c *Core) WarmCaches(gen *TraceGen, n int) {
	for i := 0; i < n; i++ {
		acc := gen.mem.Next()
		c.hier.L1.Access(acc.Addr, acc.Kind)
	}
	c.hier.L1.ResetStats()
	c.hier.L2.ResetStats()
}

// Run simulates nInstrs instructions from gen at clock frequency fHz and
// returns the window's statistics. The core's caches and predictor retain
// state across calls, so a warmup window can precede measurement.
func (c *Core) Run(gen *TraceGen, nInstrs int64, fHz float64) (*Stats, error) {
	if nInstrs <= 0 || fHz <= 0 {
		return nil, fmt.Errorf("pipeline: invalid run parameters n=%d f=%v", nInstrs, fHz)
	}
	memCycles := int64(c.cfg.MemLatencySec * fHz)
	if memCycles < 1 {
		memCycles = 1
	}
	startCycle := c.cycle
	startL1 := c.hier.L1.Stats
	startL2 := c.hier.L2.Stats
	branches0, misp0 := c.branches, c.mispredicts

	var fetched, committed int64
	const safety = 1 << 40
	for committed < nInstrs && c.cycle < startCycle+safety {
		c.commit(&committed)
		c.issue(memCycles)
		c.fetch(gen, &fetched, nInstrs)
		c.cycle++
	}

	s := &Stats{
		Cycles:            c.cycle - startCycle,
		Instructions:      committed,
		BranchMispredicts: c.mispredicts - misp0,
	}
	if s.Cycles > 0 {
		s.IPC = float64(s.Instructions) / float64(s.Cycles)
	}
	if b := c.branches - branches0; b > 0 {
		s.MispredictRate = float64(s.BranchMispredicts) / float64(b)
	}
	l1m := c.hier.L1.Stats.Misses - startL1.Misses
	l2m := c.hier.L2.Stats.Misses - startL2.Misses
	s.L1MPKI = float64(l1m) / float64(committed) * 1000
	s.L2MPKI = float64(l2m) / float64(committed) * 1000
	return s, nil
}

// fetch brings up to FetchWidth instructions into the ROB, stopping at a
// predicted-taken branch (fetch break) and while a misprediction flush is
// pending.
func (c *Core) fetch(gen *TraceGen, fetched *int64, limit int64) {
	if c.cycle < c.fetchStallUntil {
		return
	}
	for w := 0; w < c.cfg.FetchWidth; w++ {
		if c.occupancy == c.cfg.ROBEntries || *fetched >= limit {
			return
		}
		in := gen.Next()
		*fetched++
		c.rob[c.tail] = robEntry{in: in}
		c.tail = (c.tail + 1) % c.cfg.ROBEntries
		c.occupancy++
		if in.Class == OpBranch {
			pred := c.pred.Predict(in.PC)
			if pred.Taken {
				// Taken-branch fetch break: the front end redirects next
				// cycle.
				return
			}
		}
	}
}

// issue scans the ROB oldest-first and starts up to IssueWidth ready
// instructions.
func (c *Core) issue(memCycles int64) {
	issued := 0
	for i, idx := 0, c.head; i < c.occupancy && issued < c.cfg.IssueWidth; i, idx = i+1, (idx+1)%c.cfg.ROBEntries {
		e := &c.rob[idx]
		if e.issued {
			continue
		}
		if !c.ready(e.in) {
			continue
		}
		lat, isMiss := c.execLatency(e.in, memCycles)
		if isMiss && c.outstanding >= c.cfg.MSHRs {
			// No MSHR free: the load must wait; nothing younger may issue
			// to memory either, but independent ALU work may proceed.
			continue
		}
		if isMiss {
			c.outstanding++
			e.isMiss = true
		}
		e.issued = true
		e.doneAt = c.cycle + lat
		if e.in.Dest >= 0 {
			c.regReady[e.in.Dest] = e.doneAt
		}
		if e.in.Class == OpBranch {
			c.branches++
			if c.pred.Update(e.in.PC, e.in.Taken, e.in.Target) {
				c.mispredicts++
				c.fetchStallUntil = e.doneAt + int64(c.cfg.BranchPenalty)
			}
		}
		issued++
	}
}

// ready reports whether the instruction's sources are available this
// cycle.
func (c *Core) ready(in Instr) bool {
	if in.Src1 >= 0 && c.regReady[in.Src1] > c.cycle {
		return false
	}
	if in.Src2 >= 0 && c.regReady[in.Src2] > c.cycle {
		return false
	}
	return true
}

// execLatency returns the instruction's latency and whether it occupies an
// MSHR (off-L1 miss).
func (c *Core) execLatency(in Instr, memCycles int64) (int64, bool) {
	switch in.Class {
	case OpInt, OpBranch:
		return int64(c.cfg.IntLatency), false
	case OpFP:
		return int64(c.cfg.FPLatency), false
	case OpStore:
		// Stores retire from a store buffer; address generation only.
		c.hier.L1.Access(in.Addr, workload.Write)
		return int64(c.cfg.IntLatency), false
	case OpLoad:
		l2Before := c.hier.L2.Stats
		hitL1 := c.hier.L1.Access(in.Addr, workload.Read)
		if hitL1 {
			return int64(c.cfg.L1Latency), false
		}
		if c.hier.L2.Stats.Misses > l2Before.Misses {
			return memCycles, true
		}
		return int64(c.cfg.L2Latency), true
	default:
		return 1, false
	}
}

// commit retires up to CommitWidth finished instructions in order.
func (c *Core) commit(committed *int64) {
	for w := 0; w < c.cfg.CommitWidth && c.occupancy > 0; w++ {
		e := &c.rob[c.head]
		if !e.issued || c.cycle < e.doneAt {
			return
		}
		if !e.done {
			e.done = true
			if e.isMiss {
				c.outstanding--
			}
		}
		c.head = (c.head + 1) % c.cfg.ROBEntries
		c.occupancy--
		*committed++
	}
}
