package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// DieKernel computes one index's serialized contribution to a
// distributable experiment loop. The index is usually a die number, but
// a kernel may encode any index space (e.g. die*Trials+trial for the
// timeline sweeps). The contract that makes clustering byte-identical to
// local execution: the returned bytes must be a pure function of the
// Env's stock configuration (Scale, Seed, BatchSeed) and the index —
// never of worker identity, wall-clock, or map iteration order. The
// context carries tracing state only (and cancellation through the
// Env); it must not influence the returned bytes.
type DieKernel func(ctx context.Context, e *Env, index int) ([]byte, error)

var (
	kernelMu sync.RWMutex
	kernels  = map[string]DieKernel{}
)

// RegisterKernel names a die kernel so shard requests can refer to it on
// remote workers. Registration happens in package init; duplicate names
// are programming errors.
func RegisterKernel(name string, k DieKernel) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if _, dup := kernels[name]; dup {
		panic(fmt.Sprintf("experiments: duplicate kernel %q", name))
	}
	kernels[name] = k
}

// kernelByName looks a kernel up.
func kernelByName(name string) (DieKernel, error) {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	k, ok := kernels[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown kernel %q (known: %v)", name, KernelNames())
	}
	return k, nil
}

// KernelNames lists the registered kernels in sorted order.
func KernelNames() []string {
	kernelMu.RLock()
	defer kernelMu.RUnlock()
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
