package experiments

import (
	"fmt"
	"strings"

	"vasched/internal/core"
	"vasched/internal/pm"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// ExtSAnnParRow is one chain count's outcome.
type ExtSAnnParRow struct {
	// Chains is the number of independent annealing chains per decision.
	Chains int
	// Evals is the total objective-evaluation budget per decision
	// (Chains x the per-chain budget).
	Evals int
	// TPutMIPS is the modelled throughput of the chosen operating point,
	// averaged over trials.
	TPutMIPS float64
	// GainPct is the throughput gain over the single-chain row.
	GainPct float64
}

// ExtSAnnParResult is the chain-scaling study of the parallel multi-chain
// SAnn mode (pm.SAnn.Chains / anneal.SolveParallel): K independent chains
// with deterministically derived RNG streams, best-of reduction. More
// chains buy a wider search for the same wall-clock (chains fan out
// across the farm workers), and the result is a function of the chain
// count alone — any -parallel N renders this table byte-identically.
type ExtSAnnParResult struct {
	Threads int
	Rows    []ExtSAnnParRow
}

// ExtSAnnPar runs SAnn with 1, 2, 4, and 8 chains on frozen die-0
// platform snapshots (the comparison is between search budgets, not
// timelines), averaging the modelled throughput over the Env's trials.
func ExtSAnnPar(e *Env) (*ExtSAnnParResult, error) {
	c, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	const threads = 16
	budget := CostPerformance.Budget(threads, e.Floorplan().NumCores)
	res := &ExtSAnnParResult{Threads: threads}
	for _, chains := range []int{1, 2, 4, 8} {
		var tps []float64
		for trial := 0; trial < e.Trials; trial++ {
			seed := e.Seed + int64(trial)*53
			apps := workload.Mix(stats.NewRNG(seed), threads)
			plat, err := core.FrozenSnapshot(c, e.CPU(), apps, seed)
			if err != nil {
				return nil, err
			}
			mgr := pm.SAnn{MaxEvals: e.SAnnEvals, Chains: chains, Workers: e.Workers}
			levels, err := mgr.Decide(e.Context(), plat, budget, stats.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			tp := 0.0
			for cix, l := range levels {
				tp += plat.IPC(cix) * plat.FreqAt(cix, l) / 1e6
			}
			tps = append(tps, tp)
		}
		res.Rows = append(res.Rows, ExtSAnnParRow{
			Chains:   chains,
			Evals:    chains * e.SAnnEvals,
			TPutMIPS: stats.Mean(tps),
		})
	}
	base := res.Rows[0].TPutMIPS
	for i := range res.Rows {
		if base > 0 {
			res.Rows[i].GainPct = (res.Rows[i].TPutMIPS - base) / base * 100
		}
	}
	return res, nil
}

// Render formats the chain-scaling table.
func (r *ExtSAnnParResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: parallel multi-chain SAnn (%d threads, die 0)\n", r.Threads)
	fmt.Fprintf(&b, "%-8s %14s %16s %12s\n", "chains", "evals/decide", "modelled MIPS", "vs 1 chain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %14d %16.1f %+11.2f%%\n", row.Chains, row.Evals, row.TPutMIPS, row.GainPct)
	}
	b.WriteString("(independent chains, derived RNG streams, best-of reduction;\n identical output at any worker count)\n")
	return b.String()
}
