package experiments

import (
	"sync"
	"testing"
	"time"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = QuickEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

var (
	quickRunMu  sync.Mutex
	quickRunRes = map[string]Renderer{}
)

// quickRun executes one experiment on the shared quick Env, memoized
// process-wide. Every experiment is a pure function of (Env, id) — the
// property TestGolden pins — so the full-registry sweeps (goldens,
// smoke, render anchors) can all assert on the same single run instead
// of tripling the most expensive work in the suite. Under -race that
// sharing is what keeps this package inside the test binary's timeout.
func quickRun(t *testing.T, id string) Renderer {
	t.Helper()
	e := quickEnv(t)
	quickRunMu.Lock()
	defer quickRunMu.Unlock()
	if r, ok := quickRunRes[id]; ok {
		return r
	}
	r, err := Run(id, e)
	if err != nil {
		t.Fatal(err)
	}
	quickRunRes[id] = r
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-abb", "ext-adapt", "ext-cluster", "ext-parallel", "ext-phase-mig", "ext-sann-par", "ext-sched",
		"ext-transient", "ext-wearout",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "sann", "sec74", "table5"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	if _, err := Run("fig99", quickEnv(t)); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestPowerEnvBudgetScaling(t *testing.T) {
	b20 := CostPerformance.Budget(20, 20)
	if b20.PTargetW != 75 {
		t.Fatalf("full occupancy target = %v", b20.PTargetW)
	}
	b4 := CostPerformance.Budget(4, 20)
	if b4.PTargetW != 15 {
		t.Fatalf("4-thread target = %v", b4.PTargetW)
	}
	if b4.PCoreMaxW != b20.PCoreMaxW {
		t.Fatal("per-core cap should not scale with occupancy")
	}
}

func TestTable5Exact(t *testing.T) {
	r, err := Table5(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 14 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The model is calibrated to reproduce Table 5 exactly at the
		// reference point.
		if d := row.IPC - row.PaperIPC; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: IPC %v vs paper %v", row.App, row.IPC, row.PaperIPC)
		}
		if d := row.DynPowerW - row.PaperDynPowerW; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: dyn %v vs paper %v", row.App, row.DynPowerW, row.PaperDynPowerW)
		}
	}
}

func TestFig4RatiosInPaperBand(t *testing.T) {
	r, err := Fig4(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if pr := r.MeanPowerRatio(); pr < 1.3 || pr > 2.0 {
		t.Fatalf("mean power ratio %v outside plausible band", pr)
	}
	if fr := r.MeanFreqRatio(); fr < 1.15 || fr > 1.5 {
		t.Fatalf("mean freq ratio %v outside plausible band", fr)
	}
	if r.PowerHist.N() != r.NumDies || r.FreqHist.N() != r.NumDies {
		t.Fatal("histograms missing dies")
	}
}

func TestFig5MonotoneInSigma(t *testing.T) {
	e := quickEnv(t)
	sub := *e
	sub.NumDies = 6 // fig5 rebuilds batches per point; keep the test fast
	r, err := Fig5(&sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FreqRatio < r.Points[i-1].FreqRatio {
			t.Fatalf("freq ratio not monotone in sigma/mu: %+v", r.Points)
		}
		if r.Points[i].PowerRatio < r.Points[i-1].PowerRatio {
			t.Fatalf("power ratio not monotone in sigma/mu: %+v", r.Points)
		}
	}
	// Even at sigma/mu=0.06 the variation is significant (paper's claim).
	if r.Points[1].FreqRatio < 1.05 {
		t.Fatalf("sigma/mu=0.06 freq ratio %v too small", r.Points[1].FreqRatio)
	}
}

func TestFig6CurveShape(t *testing.T) {
	r, err := Fig6(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxFCore == r.MinFCore {
		t.Fatal("max and min cores identical")
	}
	// Both curves monotone: higher V -> higher f and higher power.
	for _, curve := range [][]Fig6Point{r.MaxFCurve, r.MinFCurve} {
		for i := 1; i < len(curve); i++ {
			if curve[i].FreqNorm < curve[i-1].FreqNorm || curve[i].PowerNorm <= curve[i-1].PowerNorm {
				t.Fatalf("curve not monotone: %+v", curve)
			}
		}
	}
	// The MaxF core at nominal V defines the normalisation.
	last := r.MaxFCurve[len(r.MaxFCurve)-1]
	if last.FreqNorm != 1 {
		t.Fatalf("MaxF top point freq = %v, want 1", last.FreqNorm)
	}
	// MinF tops out below the MaxF core's frequency.
	if top := r.MinFCurve[len(r.MinFCurve)-1].FreqNorm; top >= 1 {
		t.Fatalf("MinF core reaches %v of MaxF", top)
	}
}

func TestFig11Ordering(t *testing.T) {
	r, err := Fig11(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	mips := func(c DVFSCell) float64 { return c.MIPS }
	ed2 := func(c DVFSCell) float64 { return c.EDSquared }
	for ti := range r.Threads {
		foxV := r.Rel("VarF&AppIPC+Foxton*", ti, mips)
		lin := r.Rel("VarF&AppIPC+LinOpt", ti, mips)
		sann := r.Rel("VarF&AppIPC+SAnn", ti, mips)
		if foxV < 1.0 {
			t.Errorf("threads[%d]: VarF&AppIPC+Foxton* below baseline: %v", ti, foxV)
		}
		if lin <= foxV {
			t.Errorf("threads[%d]: LinOpt %v not above Foxton* %v", ti, lin, foxV)
		}
		// SAnn and LinOpt should be close (paper: within ~2%).
		if sann < lin*0.97 || lin < sann*0.95 {
			t.Errorf("threads[%d]: LinOpt %v vs SAnn %v diverge", ti, lin, sann)
		}
		if e := r.Rel("VarF&AppIPC+LinOpt", ti, ed2); e >= 1 {
			t.Errorf("threads[%d]: LinOpt ED^2 %v not reduced", ti, e)
		}
	}
}

func TestFig12GainLargestAtTightBudget(t *testing.T) {
	r, err := Fig12(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	low := r.Rel("VarF&AppIPC+LinOpt", 0)
	high := r.Rel("VarF&AppIPC+LinOpt", 2)
	if low <= 1 || high <= 1 {
		t.Fatalf("LinOpt not above baseline: low %v high %v", low, high)
	}
	if low < high-0.02 {
		t.Fatalf("gain at 50 W (%v) should not be clearly below gain at 100 W (%v)", low, high)
	}
}

func TestFig13WeightedNotDegraded(t *testing.T) {
	r, err := Fig13(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	wtp := func(c DVFSCell) float64 { return c.WeightedTP }
	for ti := range r.Threads {
		if v := r.Rel("VarF&AppIPC+LinOpt", ti, wtp); v < 0.99 {
			t.Errorf("threads[%d]: weighted-objective LinOpt degrades weighted TP: %v", ti, v)
		}
	}
}

func TestFig14ShortIntervalTracksTarget(t *testing.T) {
	r, err := Fig14(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 20} {
		at10 := r.Deviation(10, n)
		at2s := r.Deviation(2000, n)
		if at10 < 0 || at2s < 0 {
			t.Fatalf("missing points for %d threads", n)
		}
		if at10 > 1.5 {
			t.Errorf("%d threads: deviation at 10 ms = %v%%, want ~1%%", n, at10)
		}
		if at2s < at10 {
			t.Errorf("%d threads: 2 s interval (%v%%) should deviate more than 10 ms (%v%%)", n, at2s, at10)
		}
	}
}

func TestFig15GrowsWithThreads(t *testing.T) {
	r, err := Fig15(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	one := r.Solve(CostPerformance.Name, 1)
	twenty := r.Solve(CostPerformance.Name, 20)
	if one <= 0 || twenty <= 0 {
		t.Fatal("missing timing points")
	}
	if twenty < one {
		t.Fatalf("20-thread solve (%v) faster than 1-thread (%v)", twenty, one)
	}
	// Solves must stay well under the 10 ms re-solve interval. The race
	// detector slows the simplex several-fold, which would turn this
	// real-time claim into a benchmark of the detector — assert the
	// wall-clock bound only in normal builds.
	if !raceEnabled && twenty > 5*time.Millisecond {
		t.Fatalf("20-thread solve %v too slow to run every 10 ms", twenty)
	}
}

func TestSec74Directions(t *testing.T) {
	r, err := Sec74(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.FreqRatio <= 1 {
		t.Fatalf("NUniFreq frequency ratio %v, want > 1", r.FreqRatio)
	}
	if r.PowerRatio <= 1 {
		t.Fatalf("NUniFreq power ratio %v, want > 1", r.PowerRatio)
	}
	if r.ED2Ratio >= 1 {
		t.Fatalf("NUniFreq ED^2 ratio %v, want < 1", r.ED2Ratio)
	}
}

func TestSAnnValidationWithinOnePercent(t *testing.T) {
	r, err := SAnnVsExhaustive(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.GapPct > 1.0 {
			t.Errorf("%d threads: SAnn gap %v%% exceeds 1%%", row.Threads, row.GapPct)
		}
		if row.LinOptGapPct > 5.0 {
			t.Errorf("%d threads: LinOpt gap %v%% too large", row.Threads, row.LinOptGapPct)
		}
	}
}

func TestManagerFactory(t *testing.T) {
	e := quickEnv(t)
	for _, name := range []string{"Foxton*", "LinOpt", "SAnn", "Exhaustive", "Oracle"} {
		m, err := e.Manager(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("manager %q reports %q", name, m.Name())
		}
	}
	if _, err := e.Manager("Clairvoyant", 0); err == nil {
		t.Fatal("unknown manager accepted")
	}
}
