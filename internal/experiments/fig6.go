package experiments

import (
	"fmt"
	"strings"

	"vasched/internal/chip"
)

// Fig6Point is one (voltage level, core) operating point of Figure 6.
type Fig6Point struct {
	V float64
	// FreqNorm and PowerNorm are normalised to the MaxF core at the
	// nominal voltage, as in the paper's axes.
	FreqNorm  float64
	PowerNorm float64
}

// Fig6Result reproduces Figure 6: core power as a function of frequency
// for the highest- and lowest-frequency cores of one die running bzip2,
// with the supply swept from 0.6 V to 1.0 V.
type Fig6Result struct {
	Die       int
	MaxFCore  int
	MinFCore  int
	MaxFCurve []Fig6Point
	MinFCurve []Fig6Point
	// CrossoverFreq is the normalised frequency below which the MinF core
	// is the more power-efficient choice (0 if the curves do not cross).
	CrossoverFreq float64
}

// Fig6 runs the experiment on a sample die. Like the paper ("we consider
// one sample die"), it prefers a die whose cores exhibit the efficiency
// crossover; it scans a handful of dies and falls back to die 0 if none of
// them crosses.
func Fig6(e *Env) (*Fig6Result, error) {
	scan := e.NumDies
	if scan > 12 {
		scan = 12
	}
	var first *Fig6Result
	for die := 0; die < scan; die++ {
		r, err := fig6OnDie(e, die)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = r
		}
		if r.CrossoverFreq > 0 {
			return r, nil
		}
	}
	return first, nil
}

// fig6OnDie measures both curves on one die.
func fig6OnDie(e *Env, die int) (*Fig6Result, error) {
	c, err := e.Chip(die)
	if err != nil {
		return nil, err
	}
	app := e.Apps()[0]
	for _, a := range e.Apps() {
		if a.Name == "bzip2" {
			app = a
			break
		}
	}

	maxF, minF := 0, 0
	for core := 1; core < c.NumCores(); core++ {
		if c.FmaxNominal(core) > c.FmaxNominal(maxF) {
			maxF = core
		}
		if c.FmaxNominal(core) < c.FmaxNominal(minF) {
			minF = core
		}
	}
	res := &Fig6Result{Die: die, MaxFCore: maxF, MinFCore: minF}

	refFreq := c.FmaxNominal(maxF)
	var refPower float64
	curve := func(core int) ([]Fig6Point, error) {
		var pts []Fig6Point
		for _, v := range c.Levels {
			f := c.FmaxAt(core, v)
			if f <= 0 {
				continue
			}
			st := c.OffStates()
			st[core] = chip.CoreState{App: app, V: v, F: f}
			r, err := c.Evaluate(st, e.CPU())
			if err != nil {
				return nil, err
			}
			if core == maxF && v == c.Tech.VddNominal {
				refPower = r.CorePowerW[core]
			}
			pts = append(pts, Fig6Point{V: v, FreqNorm: f / refFreq, PowerNorm: r.CorePowerW[core]})
		}
		return pts, nil
	}
	var errC error
	if res.MaxFCurve, errC = curve(maxF); errC != nil {
		return nil, errC
	}
	if res.MinFCurve, errC = curve(minF); errC != nil {
		return nil, errC
	}
	if refPower > 0 {
		for i := range res.MaxFCurve {
			res.MaxFCurve[i].PowerNorm /= refPower
		}
		for i := range res.MinFCurve {
			res.MinFCurve[i].PowerNorm /= refPower
		}
	}
	res.CrossoverFreq = crossover(res.MaxFCurve, res.MinFCurve)
	return res, nil
}

// crossover finds the highest normalised frequency at which the MinF core
// achieves that frequency with no more power than the MaxF core needs for
// the same frequency (interpolating both power-frequency curves).
func crossover(maxC, minC []Fig6Point) float64 {
	cross := 0.0
	for _, p := range minC {
		pm := interpPower(maxC, p.FreqNorm)
		if pm >= 0 && p.PowerNorm <= pm && p.FreqNorm > cross {
			cross = p.FreqNorm
		}
	}
	return cross
}

// interpPower linearly interpolates a power-frequency curve at freq,
// returning -1 outside the curve's range.
func interpPower(curve []Fig6Point, freq float64) float64 {
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		if freq >= a.FreqNorm && freq <= b.FreqNorm {
			t := (freq - a.FreqNorm) / (b.FreqNorm - a.FreqNorm)
			return a.PowerNorm + t*(b.PowerNorm-a.PowerNorm)
		}
	}
	return -1
}

// Render formats both curves.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: core power vs frequency, die %d, bzip2 (normalised to MaxF core at 1 V)\n", r.Die)
	fmt.Fprintf(&b, "MaxF core C%d:\n", r.MaxFCore+1)
	for _, p := range r.MaxFCurve {
		fmt.Fprintf(&b, "  V=%.2f  f=%.3f  p=%.3f\n", p.V, p.FreqNorm, p.PowerNorm)
	}
	fmt.Fprintf(&b, "MinF core C%d:\n", r.MinFCore+1)
	for _, p := range r.MinFCurve {
		fmt.Fprintf(&b, "  V=%.2f  f=%.3f  p=%.3f\n", p.V, p.FreqNorm, p.PowerNorm)
	}
	if r.CrossoverFreq > 0 {
		fmt.Fprintf(&b, "below f=%.2f the MinF core is more power-efficient (paper: ~0.74)\n", r.CrossoverFreq)
	} else {
		b.WriteString("curves do not cross on this die\n")
	}
	return b.String()
}
