package experiments

import (
	"strings"
	"testing"
)

// TestQuickSmoke runs every registered experiment on the quick Env and
// checks the outputs render.
func TestQuickSmoke(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, e)
			if err != nil {
				t.Fatal(err)
			}
			out := r.Render()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("empty render")
			}
			t.Log("\n" + out)
		})
	}
}
