package experiments

import (
	"strings"
	"testing"
)

// TestQuickSmoke runs every registered experiment on the quick Env and
// checks the outputs render.
func TestQuickSmoke(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out := quickRun(t, id).Render()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("empty render")
			}
			t.Log("\n" + out)
		})
	}
}
