package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"vasched/internal/adapt"
	"vasched/internal/floorplan"
	"vasched/internal/varmodel"
)

// kernelDieSeverity computes the cheap variation-severity proxy the
// adaptive sampler stratifies on: the spread of per-core systematic
// Vth and Leff means across the floorplan, each normalised by its
// systematic sigma. It needs only the die's raw variation maps — no
// thermal fixed point, no scheduler — so a full-population severity pass
// costs a small fraction of one metric evaluation.
const kernelDieSeverity = "die-severity"

// dieSeverityBlob is the kernel's wire shape.
type dieSeverityBlob struct {
	Sev float64 `json:"sev"`
}

// kernelDieSched is the per-die form of the sched-pm task: one die in,
// its trial-averaged modelled throughput and decided power out. It gives
// the adaptive sampler scheduler-level target metrics at a per-die
// granularity (the sampler draws dies, not die×trial cells).
const kernelDieSched = "die-sched"

func init() {
	RegisterKernel(kernelDieSeverity, func(_ context.Context, e *Env, die int) ([]byte, error) {
		maps, err := e.DieMaps(die)
		if err != nil {
			return nil, err
		}
		return json.Marshal(dieSeverityBlob{Sev: dieSeverity(maps, e.Floorplan())})
	})
	RegisterKernel(kernelDieSched, func(ctx context.Context, e *Env, die int) ([]byte, error) {
		var b schedPMBlob
		for trial := 0; trial < e.Trials; trial++ {
			t, err := schedPMTask(ctx, e, die, trial)
			if err != nil {
				return nil, err
			}
			b.TPutMIPS += t.TPutMIPS / float64(e.Trials)
			b.PowerW += t.PowerW / float64(e.Trials)
		}
		return json.Marshal(b)
	})
}

// dieSeverity is the severity proxy: core-to-core spread of the mean
// systematic Vth and Leff over each core's rectangle, in units of the
// respective systematic sigma. Dies where process variation tilts the
// cores apart — the dies that drive the tails of every variation metric —
// score high; uniform dies score near zero.
func dieSeverity(maps *varmodel.DieMaps, fp *floorplan.Floorplan) float64 {
	_, vthSys, _ := maps.Cfg.SigmaVth()
	_, leffSys, _ := maps.Cfg.SigmaLeff()
	var vmin, vmax, lmin, lmax float64
	for c := 0; c < fp.NumCores; c++ {
		r := fp.CoreRect(c)
		v := maps.VthMeanOverRect(r.X0, r.Y0, r.X1, r.Y1)
		l := maps.LeffMeanOverRect(r.X0, r.Y0, r.X1, r.Y1)
		if c == 0 || v < vmin {
			vmin = v
		}
		if c == 0 || v > vmax {
			vmax = v
		}
		if c == 0 || l < lmin {
			lmin = l
		}
		if c == 0 || l > lmax {
			lmax = l
		}
	}
	sev := 0.0
	if vthSys > 0 {
		sev += (vmax - vmin) / vthSys
	}
	if leffSys > 0 {
		sev += (lmax - lmin) / leffSys
	}
	return sev
}

// AdaptiveConfig selects adaptive stratified sampling for the ext-adapt
// experiment: the embedded driver settings plus which per-die metric the
// stopping rule targets.
type AdaptiveConfig struct {
	adapt.Config
	// Metric names the target metric; see AdaptiveMetrics. Empty selects
	// "power-ratio" (the Figure 4 headline number).
	Metric string `json:"metric,omitempty"`
}

// adaptMetric binds a metric name to the kernel that computes it and the
// field extracted from the kernel's blob.
type adaptMetric struct {
	kernel  string
	unit    string
	extract func(blob []byte) (float64, error)
}

// adaptMetrics is the metric registry. power-ratio and freq-ratio are the
// fig4-class metrics (cheap, one chip evaluation per die); tput and power
// run the full per-die schedule+PM stack.
var adaptMetrics = map[string]adaptMetric{
	"power-ratio": {kernel: kernelDieRatios, unit: "x", extract: func(b []byte) (float64, error) {
		var s dieRatiosBlob
		err := json.Unmarshal(b, &s)
		return s.PowerRatio, err
	}},
	"freq-ratio": {kernel: kernelDieRatios, unit: "x", extract: func(b []byte) (float64, error) {
		var s dieRatiosBlob
		err := json.Unmarshal(b, &s)
		return s.FreqRatio, err
	}},
	"tput": {kernel: kernelDieSched, unit: "MIPS", extract: func(b []byte) (float64, error) {
		var s schedPMBlob
		err := json.Unmarshal(b, &s)
		return s.TPutMIPS, err
	}},
	"power": {kernel: kernelDieSched, unit: "W", extract: func(b []byte) (float64, error) {
		var s schedPMBlob
		err := json.Unmarshal(b, &s)
		return s.PowerW, err
	}},
	// Dynamic-scenario metrics: the adaptive sampler can target the
	// time-stepped engine's outputs because die-transient rides the same
	// kernel fan-out as every other per-die metric.
	"dyn-tput": {kernel: kernelDieTransient, unit: "MIPS", extract: func(b []byte) (float64, error) {
		var s dieTransientBlob
		err := json.Unmarshal(b, &s)
		return s.MIPS, err
	}},
	"dyn-maxtemp": {kernel: kernelDieTransient, unit: "C", extract: func(b []byte) (float64, error) {
		var s dieTransientBlob
		err := json.Unmarshal(b, &s)
		return s.MaxTempC, err
	}},
}

// AdaptiveMetrics lists the metric names ext-adapt accepts, sorted.
func AdaptiveMetrics() []string {
	names := make([]string, 0, len(adaptMetrics))
	for n := range adaptMetrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExtAdaptResult is the adaptive-sampling experiment outcome: the target
// metric plus the driver's full report (estimate, round schedule, strata).
type ExtAdaptResult struct {
	Metric string
	Unit   string
	// Sampling is the driver report; Sampling.Rounds is the frozen round
	// schedule the golden pins.
	Sampling adapt.Result
}

// ExtAdapt runs the adaptive stratified-sampling experiment: a severity
// pass over the whole die batch (cheap, no scheduler), then metric
// evaluation rounds drawn by the internal/adapt driver until the CI
// target is met — or, with Exact set (and by default for the pinned
// golden's population sweep), the full population in index order, which
// reproduces the classic full-batch mean bit-for-bit. Both the severity
// pass and every round ride ForDiesKernel fan-out: farm parallelism,
// cluster shards, die cache, and tracing all apply, and none of them can
// move a draw or change a byte of the result.
func ExtAdapt(e *Env) (*ExtAdaptResult, error) {
	cfg := AdaptiveConfig{}
	if e.Adaptive != nil {
		cfg = *e.Adaptive
	}
	if cfg.Metric == "" {
		cfg.Metric = "power-ratio"
	}
	m, ok := adaptMetrics[cfg.Metric]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown adaptive metric %q (known: %v)", cfg.Metric, AdaptiveMetrics())
	}
	// Severity pass: one cheap proxy value per die of the frozen batch.
	sev := make([]float64, e.NumDies)
	err := e.ForDiesKernel(kernelDieSeverity, e.NumDies, func(die int, blob []byte) error {
		var b dieSeverityBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return fmt.Errorf("experiments: die %d severity blob: %w", die, err)
		}
		sev[die] = b.Sev
		return nil
	})
	if err != nil {
		return nil, err
	}
	res, err := adapt.Run(e.Context(), cfg.Config, sev,
		func(ctx context.Context, _ int, indices []int) ([]float64, error) {
			vals := make([]float64, len(indices))
			err := e.ForDiesKernelIndices(ctx, m.kernel, indices, func(pos int, blob []byte) error {
				v, err := m.extract(blob)
				if err != nil {
					return fmt.Errorf("experiments: die %d %s blob: %w", indices[pos], cfg.Metric, err)
				}
				vals[pos] = v
				return nil
			})
			return vals, err
		})
	if err != nil {
		return nil, err
	}
	return &ExtAdaptResult{Metric: cfg.Metric, Unit: m.unit, Sampling: *res}, nil
}

// Render formats the estimate, the frozen round schedule, and the strata.
func (r *ExtAdaptResult) Render() string {
	s := &r.Sampling
	var b strings.Builder
	mode := fmt.Sprintf("adaptive, target ±%.1f%% @ %.0f%% CI", 100*s.RelCI, 100*s.Confidence)
	if s.Exact {
		mode = "exact verification: full population in index order"
	}
	fmt.Fprintf(&b, "Extension: adaptive stratified die sampling (metric %s; %s)\n", r.Metric, mode)
	fmt.Fprintf(&b, "population: %d dies in %d severity strata (proxy: core-to-core Vth+Leff spread)\n",
		s.PopulationN, len(s.Strata))
	b.WriteString("round schedule (frozen: identical at any worker/shard count or cache state):\n")
	fmt.Fprintf(&b, "  %5s %16s %6s %10s %11s\n", "round", "draws/stratum", "total", "mean", "half-width")
	for i, rd := range s.Rounds {
		draws := make([]string, len(rd.Draws))
		for h, d := range rd.Draws {
			draws[h] = fmt.Sprintf("%d", d)
		}
		fmt.Fprintf(&b, "  %5d %16s %6d %10.4f %11.4f\n",
			i, strings.Join(draws, "/"), rd.Evaluated, rd.Mean, rd.HalfWidth)
	}
	fmt.Fprintf(&b, "strata (severity-sorted):\n")
	fmt.Fprintf(&b, "  %7s %5s %5s %15s %10s %9s\n", "stratum", "dies", "eval", "severity", "mean", "std")
	for h, st := range s.Strata {
		fmt.Fprintf(&b, "  %7d %5d %5d %7.2f-%7.2f %10.4f %9.4f\n",
			h, st.Size, st.Evaluated, st.SevLo, st.SevHi, st.Mean, st.Std)
	}
	saving := float64(s.PopulationN) / float64(s.Evaluated)
	switch {
	case s.Exact:
		fmt.Fprintf(&b, "exact mean: %.6f %s over all %d dies (matches the full-batch experiment bit-for-bit)\n",
			s.Mean, r.Unit, s.Evaluated)
	case s.Converged && !s.Exhausted:
		fmt.Fprintf(&b, "estimate: %.4f ± %.4f %s (%.0f%% CI, rel %.2f%%) from %d of %d dies — %.1fx fewer\n",
			s.Mean, s.HalfWidth, r.Unit, 100*s.Confidence, 100*s.HalfWidth/s.Mean,
			s.Evaluated, s.PopulationN, saving)
	case s.Exhausted:
		fmt.Fprintf(&b, "population exhausted at %d dies: mean %.4f (CI target met by census)\n",
			s.Evaluated, s.Mean)
	default:
		fmt.Fprintf(&b, "round budget exhausted: mean %.4f ± %.4f %s from %d of %d dies (NOT converged)\n",
			s.Mean, s.HalfWidth, r.Unit, s.Evaluated, s.PopulationN)
	}
	return b.String()
}
