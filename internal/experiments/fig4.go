package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"vasched/internal/chip"
	"vasched/internal/stats"
)

// kernelDieRatios is the distributable form of dieRatios: one die in,
// its max/min core power and frequency ratios out. JSON float64
// serialisation is exact (shortest round-trip representation), so the
// decoded values — and every statistic computed from them — are
// bit-identical whether the kernel ran locally or on a remote worker.
const kernelDieRatios = "die-ratios"

// dieRatiosBlob is the kernel's wire shape.
type dieRatiosBlob struct {
	PowerRatio float64 `json:"pr"`
	FreqRatio  float64 `json:"fr"`
}

func init() {
	RegisterKernel(kernelDieRatios, func(_ context.Context, e *Env, die int) ([]byte, error) {
		c, err := e.Chip(die)
		if err != nil {
			return nil, err
		}
		pr, fr, err := dieRatios(e, c)
		if err != nil {
			return nil, err
		}
		return json.Marshal(dieRatiosBlob{PowerRatio: pr, FreqRatio: fr})
	})
}

// Fig4Result reproduces Figure 4: histograms, over a batch of dies, of the
// within-die ratios between the most and least power-consuming core (a)
// and the fastest and slowest core (b).
type Fig4Result struct {
	NumDies    int
	PowerRatio []float64 // one entry per die
	FreqRatio  []float64
	PowerHist  *stats.Histogram
	FreqHist   *stats.Histogram
}

// Fig4 runs the paper's Section 7.1 experiment: for each die, every
// application is run alone on every core and the per-core average power is
// recorded; the die contributes its max/min power ratio and its max/min
// rated-frequency ratio.
func Fig4(e *Env) (*Fig4Result, error) {
	res := &Fig4Result{
		NumDies:   e.NumDies,
		PowerHist: stats.NewHistogram(1.2, 2.2, 10),
		FreqHist:  stats.NewHistogram(1.0, 1.6, 12),
	}
	// Fan the batch through the distributable kernel path: locally the
	// farm fills index-addressed slots, clustered the shards come back
	// from remote workers — either way the reduction below runs serially
	// in die order over byte-identical blobs.
	err := e.ForDiesKernel(kernelDieRatios, e.NumDies, func(die int, blob []byte) error {
		var s dieRatiosBlob
		if err := json.Unmarshal(blob, &s); err != nil {
			return fmt.Errorf("experiments: die %d ratios blob: %w", die, err)
		}
		res.PowerRatio = append(res.PowerRatio, s.PowerRatio)
		res.FreqRatio = append(res.FreqRatio, s.FreqRatio)
		res.PowerHist.Add(s.PowerRatio)
		res.FreqHist.Add(s.FreqRatio)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// dieRatios computes one die's max/min core power and frequency ratios.
func dieRatios(e *Env, c *chip.Chip) (powerRatio, freqRatio float64, err error) {
	corePower := make([]float64, c.NumCores())
	for core := 0; core < c.NumCores(); core++ {
		var ps []float64
		for _, app := range e.Apps() {
			st := c.OffStates()
			st[core] = chip.CoreState{App: app, V: c.Tech.VddNominal, F: c.FmaxNominal(core)}
			r, err := c.Evaluate(st, e.CPU())
			if err != nil {
				return 0, 0, err
			}
			ps = append(ps, r.CorePowerW[core])
		}
		corePower[core] = stats.Mean(ps)
	}
	freqs := make([]float64, c.NumCores())
	for core := range freqs {
		freqs[core] = c.FmaxNominal(core)
	}
	return stats.Max(corePower) / stats.Min(corePower),
		stats.Max(freqs) / stats.Min(freqs), nil
}

// MeanPowerRatio returns the batch-average power ratio.
func (r *Fig4Result) MeanPowerRatio() float64 { return stats.Mean(r.PowerRatio) }

// MeanFreqRatio returns the batch-average frequency ratio.
func (r *Fig4Result) MeanFreqRatio() float64 { return stats.Mean(r.FreqRatio) }

// Render formats both histograms.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: core-to-core variation across %d dies\n", r.NumDies)
	fmt.Fprintf(&b, "(a) max/min core power ratio: mean %.2f  (paper: ~1.53, mostly 1.4-1.7)\n",
		r.MeanPowerRatio())
	b.WriteString(r.PowerHist.Render("power ratio"))
	fmt.Fprintf(&b, "(b) max/min core frequency ratio: mean %.2f  (paper: ~1.33, mostly 1.2-1.5)\n",
		r.MeanFreqRatio())
	b.WriteString(r.FreqHist.Render("frequency ratio"))
	return b.String()
}

// Fig5Point is one sigma/mu setting's batch-mean ratios.
type Fig5Point struct {
	SigmaOverMu float64
	PowerRatio  float64
	FreqRatio   float64
}

// Fig5Result reproduces Figure 5: mean max/min core power and frequency
// ratios as Vth sigma/mu sweeps over 0.03-0.12.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 sweeps the variation intensity. Each point re-generates the die
// batch with the new sigma/mu (dies per point are capped at NumDies).
func Fig5(e *Env) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, sm := range []float64{0.03, 0.06, 0.09, 0.12} {
		sub := *e
		sub.VarCfg.VthSigmaOverMu = sm
		// The sub-Env is no longer a stock configuration: clear the
		// cluster routing key so its dies can never be computed remotely
		// against an unmodified Env.
		sub.Scale, sub.Cluster = "", nil
		if err := sub.init(); err != nil {
			return nil, err
		}
		type ratios struct{ pr, fr float64 }
		slots := make([]ratios, e.NumDies)
		err := sub.ForDies(e.NumDies, func(_ context.Context, die int, c *chip.Chip) error {
			pr, fr, err := dieRatios(&sub, c)
			if err != nil {
				return err
			}
			slots[die] = ratios{pr: pr, fr: fr}
			return nil
		})
		if err != nil {
			return nil, err
		}
		prs := make([]float64, e.NumDies)
		frs := make([]float64, e.NumDies)
		for die, s := range slots {
			prs[die], frs[die] = s.pr, s.fr
		}
		res.Points = append(res.Points, Fig5Point{
			SigmaOverMu: sm,
			PowerRatio:  stats.Mean(prs),
			FreqRatio:   stats.Mean(frs),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: mean max/min core ratios vs Vth sigma/mu\n")
	fmt.Fprintf(&b, "%8s %12s %12s\n", "sigma/mu", "power ratio", "freq ratio")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.2f %12.2f %12.2f\n", p.SigmaOverMu, p.PowerRatio, p.FreqRatio)
	}
	return b.String()
}
