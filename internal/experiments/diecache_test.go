package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vasched/internal/cluster"
	"vasched/internal/diecache"
)

// quickEnvWithCache builds a quick Env wired to its own private die
// cache (instead of the process-wide shared one), so tests can audit
// counters and force evictions without cross-test interference.
func quickEnvWithCache(t *testing.T, c *diecache.Cache) *Env {
	t.Helper()
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	e.dies = c
	return e
}

// collectKernel runs the die-ratios kernel locally over n dies and
// returns the per-die blobs — the byte-comparable unit the determinism
// wall is built on.
func collectKernel(t *testing.T, e *Env, n int) [][]byte {
	t.Helper()
	blobs := make([][]byte, n)
	if err := e.ForDiesKernel(kernelDieRatios, n, func(i int, b []byte) error {
		blobs[i] = append([]byte(nil), b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return blobs
}

// TestChipCacheColdWarmEvict proves the cache is invisible in the
// outputs: the same kernel over the same dies yields byte-identical
// blobs whether the cache is cold, warm, or so small that every die is
// evicted and regenerated between runs.
func TestChipCacheColdWarmEvict(t *testing.T) {
	const n = 6
	cold := quickEnvWithCache(t, diecache.New(16, ""))
	want := collectKernel(t, cold, n)

	// Warm: same Env, same cache — every die must be a memory hit.
	st0 := cold.dies.Stats()
	warm := collectKernel(t, cold, n)
	st1 := cold.dies.Stats()
	if st1.Misses != st0.Misses {
		t.Fatalf("warm run missed %d times", st1.Misses-st0.Misses)
	}
	for i := range want {
		if !bytes.Equal(want[i], warm[i]) {
			t.Fatalf("die %d blob changed between cold and warm runs", i)
		}
	}

	// Evicting: cap 1 can never hold the working set, so (almost) every
	// access regenerates — and the blobs still cannot tell.
	thrash := quickEnvWithCache(t, diecache.New(1, ""))
	for round := 0; round < 2; round++ {
		got := collectKernel(t, thrash, n)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("round %d: die %d blob differs under eviction pressure", round, i)
			}
		}
	}
	if l := thrash.dies.Len(); l > 1 {
		t.Fatalf("cap-1 cache holds %d entries", l)
	}
}

// TestWarmRepeatZeroSamplerInvocations is the acceptance audit: an
// identical second run must touch the GRF sampler zero times — every die
// comes out of the content-addressed cache. The count is taken from the
// generator itself (one increment per map drawn), not inferred from
// timing.
func TestWarmRepeatZeroSamplerInvocations(t *testing.T) {
	const n = 5
	e := quickEnvWithCache(t, diecache.New(64, ""))
	collectKernel(t, e, n)
	if c := e.gen.SampleCount(); c == 0 {
		t.Fatal("cold run drew no samples; the audit is vacuous")
	}
	before := e.gen.SampleCount()
	collectKernel(t, e, n)
	if after := e.gen.SampleCount(); after != before {
		t.Fatalf("warm repeat drew %d samples, want 0", after-before)
	}

	// The same holds across Envs: a second Env with identical model
	// config content-addresses into the same entries, so its own
	// generator is never invoked at all.
	e2 := quickEnvWithCache(t, e.dies)
	collectKernel(t, e2, n)
	if c := e2.gen.SampleCount(); c != 0 {
		t.Fatalf("sibling Env drew %d samples despite a warm shared cache", c)
	}
}

// TestDiskLayerSurvivesRestart simulates a process restart: a brand-new
// cache (new memory layer, new Env, new generator) over the same blob
// directory must produce byte-identical results from disk with zero
// sampler invocations.
func TestDiskLayerSurvivesRestart(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	first := quickEnvWithCache(t, diecache.New(16, dir))
	want := collectKernel(t, first, n)
	if st := first.dies.Stats(); st.BytesWritten == 0 {
		t.Fatalf("no blobs written: %+v", st)
	}

	second := quickEnvWithCache(t, diecache.New(16, dir))
	got := collectKernel(t, second, n)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("die %d blob differs after restart", i)
		}
	}
	if c := second.gen.SampleCount(); c != 0 {
		t.Fatalf("restarted Env drew %d samples despite the blob store", c)
	}
	if st := second.dies.Stats(); st.DiskHits != n {
		t.Fatalf("restart stats %+v, want %d disk hits", st, n)
	}
}

// TestConfigHashIsolatesConfigs: Envs whose model configs differ must
// never alias cache entries, even sharing one cache — the content
// address diverges.
func TestConfigHashIsolatesConfigs(t *testing.T) {
	c := diecache.New(64, "")
	a := quickEnvWithCache(t, c)
	b, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	b.VarCfg.VthSigmaOverMu = 0.06 // a different die distribution
	if err := b.init(); err != nil {
		t.Fatal(err)
	}
	b.dies = c
	if a.ConfigHash() == b.ConfigHash() {
		t.Fatal("different configs share a hash")
	}
	if _, err := a.Chip(0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Chip(0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats %+v: distinct configs must both miss", st)
	}
}

// TestShardConfigHashMismatch: a worker must refuse a shard whose config
// hash disagrees with its rebuilt Env instead of computing dies from the
// wrong model.
func TestShardConfigHashMismatch(t *testing.T) {
	x := NewExecutor(1)
	req := &cluster.ShardRequest{
		Kernel: kernelDieRatios, Scale: "quick", Seed: 2008, BatchSeed: 1,
		ConfigHash: 0xdeadbeef, Dies: []int{0},
	}
	if _, err := x.ExecuteShard(t.Context(), req); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("mismatched hash error = %v", err)
	}
	// Zero hash (legacy/hand-built) skips the check; the correct hash
	// passes it.
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	req.ConfigHash = e.ConfigHash()
	if _, err := x.ExecuteShard(t.Context(), req); err != nil {
		t.Fatalf("matching hash rejected: %v", err)
	}
}
