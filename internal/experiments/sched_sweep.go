package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasched/internal/core"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// SchedCell is the mean outcome of one (policy, thread-count) cell of a
// scheduling sweep, averaged over dies and workload trials.
type SchedCell struct {
	Threads   int
	Policy    string
	PowerW    float64
	MIPS      float64
	FreqHz    float64
	EDSquared float64
}

// schedSweep runs a no-DVFS sweep (Figures 7-10): for each thread count
// and scheduling policy, Trials random workloads run on RunDies dies and
// the metrics are averaged.
func schedSweep(e *Env, mode core.Mode, policyNames []string, threads []int) (map[string][]SchedCell, error) {
	out := make(map[string][]SchedCell, len(policyNames))
	for _, pname := range policyNames {
		policy, err := sched.New(pname)
		if err != nil {
			return nil, err
		}
		for _, n := range threads {
			// Fan the die×trial grid across the farm: every trial is an
			// independent timeline (its seed depends only on die and
			// trial), so slots reduce in the serial loop's order.
			tasks := e.RunDies * e.Trials
			slots := make([]*core.RunStats, tasks)
			err := e.ForTasks(tasks, func(ctx context.Context, i int) error {
				die, trial := i/e.Trials, i%e.Trials
				c, err := e.Chip(die)
				if err != nil {
					return err
				}
				seed := e.Seed + int64(trial)*97 + int64(die)*13
				apps := workload.Mix(stats.NewRNG(seed), n)
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy, Mode: mode,
					SampleIntervalMS: e.SampleMS, Seed: seed, Ctx: ctx,
				})
				if err != nil {
					return err
				}
				st, err := sys.Run(apps, e.SimMS)
				if err != nil {
					return err
				}
				slots[i] = st
				return nil
			})
			if err != nil {
				return nil, err
			}
			var pw, mips, freq, ed2 []float64
			for _, st := range slots {
				pw = append(pw, st.AvgPowerW)
				mips = append(mips, st.MIPS)
				freq = append(freq, st.AvgActiveFreqHz)
				ed2 = append(ed2, st.EDSquared)
			}
			out[pname] = append(out[pname], SchedCell{
				Threads: n, Policy: pname,
				PowerW: stats.Mean(pw), MIPS: stats.Mean(mips),
				FreqHz: stats.Mean(freq), EDSquared: stats.Mean(ed2),
			})
		}
	}
	return out, nil
}

// SchedSweepResult holds a rendered scheduling sweep: per policy, one cell
// per thread count, plus the baseline policy everything normalises to.
type SchedSweepResult struct {
	Title    string
	Baseline string
	Policies []string
	Threads  []int
	Cells    map[string][]SchedCell
}

// Rel returns metric(policy)/metric(baseline) for the thread-count index
// ti, where metric selects from the cell.
func (r *SchedSweepResult) Rel(policy string, ti int, metric func(SchedCell) float64) float64 {
	base := metric(r.Cells[r.Baseline][ti])
	if base == 0 {
		return 0
	}
	return metric(r.Cells[policy][ti]) / base
}

// renderRelative renders one relative-metric panel.
func (r *SchedSweepResult) renderRelative(b *strings.Builder, label string, metric func(SchedCell) float64) {
	fmt.Fprintf(b, "%s (relative to %s)\n", label, r.Baseline)
	fmt.Fprintf(b, "%-12s", "threads")
	for _, p := range r.Policies {
		fmt.Fprintf(b, " %12s", p)
	}
	b.WriteString("\n")
	for ti, n := range r.Threads {
		fmt.Fprintf(b, "%-12d", n)
		for _, p := range r.Policies {
			fmt.Fprintf(b, " %12.3f", r.Rel(p, ti, metric))
		}
		b.WriteString("\n")
	}
}

// Fig7 reproduces Figure 7: total power and ED^2 of Random, VarP, and
// VarP&AppP in the UniFreq configuration.
func Fig7(e *Env) (*SchedSweepResult, error) {
	return schedFigure(e, core.ModeUniFreq,
		"Figure 7: UniFreq power & ED^2",
		[]string{sched.NameRandom, sched.NameVarP, sched.NameVarPAppP})
}

// Fig8 reproduces Figure 8: the same algorithms in NUniFreq.
func Fig8(e *Env) (*SchedSweepResult, error) {
	return schedFigure(e, core.ModeNUniFreq,
		"Figure 8: NUniFreq power & ED^2",
		[]string{sched.NameRandom, sched.NameVarP, sched.NameVarPAppP})
}

// Fig9 reproduces Figure 9: average frequency and throughput of Random,
// VarF, and VarF&AppIPC in NUniFreq. Figure 10 (ED^2 of the same runs) is
// rendered from the same result.
func Fig9(e *Env) (*SchedSweepResult, error) {
	return schedFigure(e, core.ModeNUniFreq,
		"Figure 9: NUniFreq frequency & MIPS",
		[]string{sched.NameRandom, sched.NameVarF, sched.NameVarFAppIPC})
}

// Fig10 reproduces Figure 10; it shares its runs with Figure 9.
func Fig10(e *Env) (*SchedSweepResult, error) {
	r, err := Fig9(e)
	if err != nil {
		return nil, err
	}
	r.Title = "Figure 10: NUniFreq ED^2"
	return r, nil
}

func schedFigure(e *Env, mode core.Mode, title string, policies []string) (*SchedSweepResult, error) {
	threads := []int{2, 4, 8, 16, 20}
	cells, err := schedSweep(e, mode, policies, threads)
	if err != nil {
		return nil, err
	}
	return &SchedSweepResult{
		Title:    title,
		Baseline: policies[0],
		Policies: policies,
		Threads:  threads,
		Cells:    cells,
	}, nil
}

// Render prints every panel relevant to the figure.
func (r *SchedSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	r.renderRelative(&b, "(a) total power", func(c SchedCell) float64 { return c.PowerW })
	r.renderRelative(&b, "(b) ED^2", func(c SchedCell) float64 { return c.EDSquared })
	r.renderRelative(&b, "(c) mean frequency", func(c SchedCell) float64 { return c.FreqHz })
	r.renderRelative(&b, "(d) MIPS", func(c SchedCell) float64 { return c.MIPS })
	return b.String()
}
