package experiments

import (
	"fmt"
	"strings"
	"time"

	"vasched/internal/core"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Fig15Point is one (environment, thread-count) timing measurement.
type Fig15Point struct {
	Env     PowerEnv
	Threads int
	// MeanSolve is the wall-clock time of one LinOpt decision on the host
	// (the paper reports microseconds on a simulated 4 GHz core; here the
	// Simplex runs natively, so absolute values differ but the growth
	// with thread count and budget looseness is the reproduced shape).
	MeanSolve time.Duration
}

// Fig15Result reproduces Figure 15: LinOpt execution time vs number of
// threads in the three power environments.
type Fig15Result struct {
	Points []Fig15Point
}

// Fig15 times LinOpt decisions embedded in real runs (so the platform
// snapshots and LP shapes are representative), several per configuration.
func Fig15(e *Env) (*Fig15Result, error) {
	res := &Fig15Result{}
	policy, err := sched.New(sched.NameVarFAppIPC)
	if err != nil {
		return nil, err
	}
	c, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	for _, env := range []PowerEnv{HighPerformance, CostPerformance, LowPower} {
		for _, n := range []int{1, 2, 4, 8, 16, 20} {
			budget := env.Budget(n, e.Floorplan().NumCores)
			var total time.Duration
			var count int
			for trial := 0; trial < e.Trials; trial++ {
				seed := e.Seed + int64(trial)*17
				apps := workload.Mix(stats.NewRNG(seed), n)
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy,
					Mode: core.ModeDVFS, Manager: pm.NewLinOpt(), Budget: budget,
					SampleIntervalMS: e.SampleMS, Seed: seed,
					DecideHist: e.DecideHist,
				})
				if err != nil {
					return nil, err
				}
				st, err := sys.Run(apps, e.SimMS)
				if err != nil {
					return nil, err
				}
				total += st.DecideTime
				count += st.DecideCount
			}
			p := Fig15Point{Env: env, Threads: n}
			if count > 0 {
				p.MeanSolve = total / time.Duration(count)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// Solve returns the measured mean solve time for (envName, threads), or 0.
func (r *Fig15Result) Solve(envName string, threads int) time.Duration {
	for _, p := range r.Points {
		if p.Env.Name == envName && p.Threads == threads {
			return p.MeanSolve
		}
	}
	return 0
}

// Render formats the timing sweep.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 15: LinOpt execution time (host wall clock)\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %18s\n", "threads",
		HighPerformance.Name, CostPerformance.Name, LowPower.Name)
	for _, n := range []int{1, 2, 4, 8, 16, 20} {
		fmt.Fprintf(&b, "%-10d %18v %18v %18v\n", n,
			r.Solve(HighPerformance.Name, n),
			r.Solve(CostPerformance.Name, n),
			r.Solve(LowPower.Name, n))
	}
	b.WriteString("(paper: microseconds, growing with threads; longest ~6us at 20 threads)\n")
	return b.String()
}
