package experiments

import (
	"fmt"
	"sort"
)

// Renderer is any experiment result that can print itself as the paper's
// plot or table.
type Renderer interface {
	Render() string
}

// Runner executes one experiment against an Env.
type Runner func(*Env) (Renderer, error)

// registry maps experiment ids (DESIGN.md section 3) to runners.
var registry = map[string]Runner{
	"table5": func(e *Env) (Renderer, error) { return Table5(e) },
	"fig4":   func(e *Env) (Renderer, error) { return Fig4(e) },
	"fig5":   func(e *Env) (Renderer, error) { return Fig5(e) },
	"fig6":   func(e *Env) (Renderer, error) { return Fig6(e) },
	"fig7":   func(e *Env) (Renderer, error) { return Fig7(e) },
	"fig8":   func(e *Env) (Renderer, error) { return Fig8(e) },
	"fig9":   func(e *Env) (Renderer, error) { return Fig9(e) },
	"fig10":  func(e *Env) (Renderer, error) { return Fig10(e) },
	"fig11":  func(e *Env) (Renderer, error) { return Fig11(e) },
	"fig12":  func(e *Env) (Renderer, error) { return Fig12(e) },
	"fig13":  func(e *Env) (Renderer, error) { return Fig13(e) },
	"fig14":  func(e *Env) (Renderer, error) { return Fig14(e) },
	"fig15":  func(e *Env) (Renderer, error) { return Fig15(e) },
	"sec74":  func(e *Env) (Renderer, error) { return Sec74(e) },
	"sann":   func(e *Env) (Renderer, error) { return SAnnVsExhaustive(e) },
	// Extension studies (paper Section 8 future work; not paper figures).
	"ext-sched":    func(e *Env) (Renderer, error) { return ExtSched(e) },
	"ext-parallel": func(e *Env) (Renderer, error) { return ExtParallel(e) },
	"ext-abb":      func(e *Env) (Renderer, error) { return ExtABB(e) },
	"ext-cluster":  func(e *Env) (Renderer, error) { return ExtCluster(e) },
	"ext-sann-par": func(e *Env) (Renderer, error) { return ExtSAnnPar(e) },
	"ext-adapt":    func(e *Env) (Renderer, error) { return ExtAdapt(e) },
	// Dynamic scenarios (internal/dynamic): time-stepped thermal
	// transients, phase-shifting workloads, wearout horizons.
	"ext-transient": func(e *Env) (Renderer, error) { return ExtTransient(e) },
	"ext-phase-mig": func(e *Env) (Renderer, error) { return ExtPhaseMig(e) },
	"ext-wearout":   func(e *Env) (Renderer, error) { return ExtWearout(e) },
}

// IDs returns the known experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, e *Env) (Renderer, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(e)
}
