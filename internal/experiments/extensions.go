package experiments

import (
	"fmt"
	"strings"

	"vasched/internal/core"
	"vasched/internal/parallel"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// ExtSchedRow compares one scheduling policy on the extension metrics.
type ExtSchedRow struct {
	Policy     string
	MIPS       float64
	AvgPowerW  float64
	MaxTempC   float64
	WearoutMax float64
	EDSquared  float64
}

// ExtSchedResult is the temperature/wearout extension study (the paper's
// Section 8 future work, items 1 and 2): does temperature-aware mapping
// reduce hot spots and slow down aging, and at what throughput cost?
type ExtSchedResult struct {
	Rows []ExtSchedRow
}

// ExtSched runs Random, VarP&AppP, and TempAware at 12 threads in
// NUniFreq and reports thermal, wearout, and throughput outcomes.
func ExtSched(e *Env) (*ExtSchedResult, error) {
	res := &ExtSchedResult{}
	// Transient thermal needs several thermal time constants of simulated
	// time to be meaningful: run longer than the default sweeps and
	// exclude the cold-start from the statistics.
	dur := e.SimMS
	if dur < 300 {
		dur = 300
	}
	const warmup = 100.0
	for _, pname := range []string{sched.NameRandom, sched.NameVarPAppP, sched.NameTempAware} {
		policy, err := sched.New(pname)
		if err != nil {
			return nil, err
		}
		var mips, pw, maxT, wear, ed2 []float64
		for die := 0; die < e.RunDies; die++ {
			c, err := e.Chip(die)
			if err != nil {
				return nil, err
			}
			for trial := 0; trial < e.Trials; trial++ {
				seed := e.Seed + int64(trial)*97 + int64(die)*13
				apps := workload.Mix(stats.NewRNG(seed), 12)
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy, Mode: core.ModeNUniFreq,
					// Short OS interval so migration (the TempAware
					// mechanism) actually happens within the run, and
					// transient thermal so migrated-to cores heat up with
					// realistic inertia instead of instantly.
					OSIntervalMS:     20,
					TransientThermal: true,
					WarmupMS:         warmup,
					SampleIntervalMS: e.SampleMS, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				st, err := sys.Run(apps, warmup+dur)
				if err != nil {
					return nil, err
				}
				mips = append(mips, st.MIPS)
				pw = append(pw, st.AvgPowerW)
				maxT = append(maxT, st.MaxTempC)
				wear = append(wear, st.WearoutMax)
				ed2 = append(ed2, st.EDSquared)
			}
		}
		res.Rows = append(res.Rows, ExtSchedRow{
			Policy: pname, MIPS: stats.Mean(mips), AvgPowerW: stats.Mean(pw),
			MaxTempC: stats.Mean(maxT), WearoutMax: stats.Mean(wear),
			EDSquared: stats.Mean(ed2),
		})
	}
	return res, nil
}

// Render formats the study.
func (r *ExtSchedResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (paper Section 8, items 1-2): thermal- and wearout-aware scheduling, 12 threads, NUniFreq\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s\n", "policy", "MIPS", "power(W)", "maxT(C)", "wearout max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.0f %10.1f %10.1f %12.2f\n",
			row.Policy, row.MIPS, row.AvgPowerW, row.MaxTempC, row.WearoutMax)
	}
	b.WriteString("(wearout = aging rate of the fastest-aging core relative to nominal operation)\n")
	return b.String()
}

// ExtParallelRow compares one (core choice, objective) configuration.
type ExtParallelRow struct {
	Label           string
	TimeMS          float64
	AvgPowerW       float64
	EnergyJ         float64
	BarrierWastePct float64
}

// ExtParallelResult is the parallel-applications extension study (Section
// 8, item 3): barrier-synchronised jobs on a variation-affected CMP under
// a power budget, comparing core-selection and power-management policies.
type ExtParallelResult struct {
	Job  parallel.Job
	Rows []ExtParallelRow
}

// ExtParallel runs an 8-thread swim-like barrier job on die 0 under a
// tight budget.
func ExtParallel(e *Env) (*ExtParallelResult, error) {
	c, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	app, err := workload.ByName("swim")
	if err != nil {
		return nil, err
	}
	job := parallel.Job{App: app, Threads: 8, SectionInstr: 1e7, Sections: 20}
	budget := pm.Budget{PTargetW: 24, PCoreMaxW: 7}

	fastest, err := parallel.PickFastestCores(c, job.Threads)
	if err != nil {
		return nil, err
	}
	similar, err := parallel.PickSimilarCores(c, job.Threads)
	if err != nil {
		return nil, err
	}
	res := &ExtParallelResult{Job: job}
	cases := []struct {
		label string
		cores []int
		mgr   pm.Manager
	}{
		{"fastest + Foxton*", fastest, pm.NewFoxton()},
		{"fastest + LinOpt(MIPS)", fastest, pm.NewLinOpt()},
		{"fastest + LinOpt(min-speed)", fastest, pm.LinOpt{FitPoints: 3, Objective: pm.ObjMinSpeed}},
		{"similar + LinOpt(min-speed)", similar, pm.LinOpt{FitPoints: 3, Objective: pm.ObjMinSpeed}},
	}
	for _, cs := range cases {
		r, err := parallel.Budgeted(e.Context(), c, e.CPU(), job, cs.cores, cs.mgr, budget, e.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtParallelRow{
			Label: cs.label, TimeMS: r.TimeMS, AvgPowerW: r.AvgPowerW,
			EnergyJ: r.EnergyJ, BarrierWastePct: r.BarrierWastePct,
		})
	}
	return res, nil
}

// Render formats the study.
func (r *ExtParallelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper Section 8, item 3): %d-thread barrier job (%s), Ptarget 24 W\n",
		r.Job.Threads, r.Job.App.Name)
	fmt.Fprintf(&b, "%-30s %10s %10s %10s %12s\n", "configuration", "time(ms)", "power(W)", "energy(J)", "barrier waste")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %10.1f %10.1f %10.2f %11.1f%%\n",
			row.Label, row.TimeMS, row.AvgPowerW, row.EnergyJ, row.BarrierWastePct)
	}
	b.WriteString("(barrier waste = aggregate thread-time idle at barriers)\n")
	return b.String()
}
