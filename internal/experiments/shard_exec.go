package experiments

import (
	"context"
	"fmt"
	"sync"

	"vasched/internal/cluster"
	"vasched/internal/farm"
)

// Executor is the worker-side bridge between the cluster protocol and
// the experiment kernels: it rebuilds the stock Env a shard request
// names (by scale + seeds) and runs the requested kernel over the
// shard's indices through the local farm pool. Envs are cached per
// (scale, seed, batch seed), so repeated shards of one experiment share
// the process-wide die cache exactly like a local run would.
type Executor struct {
	workers int

	mu   sync.Mutex
	envs map[envKey]*Env
}

type envKey struct {
	scale     string
	seed      int64
	batchSeed int64
}

// NewExecutor returns an executor whose kernel loops use the given farm
// worker count (0 = GOMAXPROCS).
func NewExecutor(workers int) *Executor {
	return &Executor{workers: workers, envs: make(map[envKey]*Env)}
}

// ExecuteShard implements cluster.Executor.
func (x *Executor) ExecuteShard(ctx context.Context, req *cluster.ShardRequest) (*cluster.ShardResponse, error) {
	base, err := x.env(req.Scale, req.Seed, req.BatchSeed)
	if err != nil {
		return nil, err
	}
	// A shard names only a stock scale; the config hash proves both
	// binaries actually mean the same model by it. A mismatch is version
	// skew (divergent defaults, schema drift) — refusing here keeps a
	// mixed-version cluster loudly broken instead of quietly returning
	// dies from a different distribution.
	if req.ConfigHash != 0 && req.ConfigHash != base.ConfigHash() {
		return nil, fmt.Errorf("experiments: shard config hash %016x does not match worker's %q env %016x (version skew?)",
			req.ConfigHash, req.Scale, base.ConfigHash())
	}
	k, err := kernelByName(req.Kernel)
	if err != nil {
		return nil, err
	}
	// Shallow copy so the request's context doesn't race with concurrent
	// shards sharing the cached Env (the copy shares the generator mutex
	// and die cache through pointers, like the fig5 sub-Envs do).
	env := *base
	env.SetContext(ctx)
	blobs, err := farm.Collect(ctx, x.workers, len(req.Dies), func(ctx context.Context, i int) ([]byte, error) {
		return k(ctx, &env, req.Dies[i])
	})
	if err != nil {
		return nil, err
	}
	return &cluster.ShardResponse{Blobs: blobs}, nil
}

// env returns the cached stock Env for the key, building it on first use.
func (x *Executor) env(scale string, seed, batchSeed int64) (*Env, error) {
	key := envKey{scale: scale, seed: seed, batchSeed: batchSeed}
	x.mu.Lock()
	defer x.mu.Unlock()
	if e, ok := x.envs[key]; ok {
		return e, nil
	}
	var (
		e   *Env
		err error
	)
	switch scale {
	case "quick":
		e, err = QuickEnv()
	case "default":
		e, err = DefaultEnv()
	default:
		return nil, fmt.Errorf("experiments: shard request names unknown scale %q", scale)
	}
	if err != nil {
		return nil, err
	}
	e.Seed = seed
	e.BatchSeed = batchSeed
	e.Workers = x.workers
	x.envs[key] = e
	return e, nil
}
