package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"vasched/internal/trace"
)

// tracedQuickEnv builds a fresh quick Env with a tracer installed.
func tracedQuickEnv(t *testing.T, workers int) (*Env, *trace.Tracer) {
	t.Helper()
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = workers
	tr := trace.New(trace.DefaultCapacity)
	e.SetContext(trace.WithTracer(context.Background(), tr))
	return e, tr
}

// TestTracingPreservesOutputs is the observation-only guarantee: attaching
// a tracer must not change a single rendered byte of any experiment.
// Tracing reads no RNG state and injects nothing into the simulation — the
// context threads through purely as an observability channel.
func TestTracingPreservesOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments; skipped in -short")
	}
	if raceEnabled {
		t.Skip("determinism coverage, not race coverage; skipped under -race to stay inside the package timeout")
	}
	for _, id := range []string{"fig4", "ext-cluster"} {
		id := id
		t.Run(id, func(t *testing.T) {
			plain, err := QuickEnv()
			if err != nil {
				t.Fatal(err)
			}
			plain.Workers = 2
			r1, err := Run(id, plain)
			if err != nil {
				t.Fatal(err)
			}
			traced, tr := tracedQuickEnv(t, 2)
			r2, err := Run(id, traced)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Render() != r2.Render() {
				t.Errorf("tracing changed the %s report:\n--- untraced ---\n%s\n--- traced ---\n%s",
					id, r1.Render(), r2.Render())
			}
			if tr.Len() == 0 {
				t.Error("tracer captured no spans")
			}
		})
	}
}

// TestTraceTreeGolden pins the span structure of serial quick runs. Under
// Workers=1 the tree — names, nesting, and attributes, with timestamps
// deliberately excluded — is a pure function of the workload and seed, so
// any unintentional change to what the hot paths do (extra decides,
// reordered fan-out, lost attributes) diffs here. Regenerate intentionally
// with -update.
func TestTraceTreeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments; skipped in -short")
	}
	if raceEnabled {
		t.Skip("determinism coverage, not race coverage; skipped under -race to stay inside the package timeout")
	}
	for _, id := range []string{"fig4", "ext-sann-par"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, tr := tracedQuickEnv(t, 1)
			if _, err := Run(id, e); err != nil {
				t.Fatal(err)
			}
			if tr.Dropped() != 0 {
				t.Fatalf("ring evicted %d spans; grow the capacity for golden runs", tr.Dropped())
			}
			got := trace.Tree(tr.Snapshot())
			path := filepath.Join("testdata", "golden", "trace-"+id+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("span tree differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, string(want))
			}
		})
	}
}
