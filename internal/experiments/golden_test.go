package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// update rewrites the golden files from the current outputs. Run as
//
//	go test ./internal/experiments -run TestGolden -update
//
// only when an intentional behaviour change is being made; the whole point
// of the goldens is to catch *unintentional* numeric drift (e.g. from a
// performance change that was supposed to be bit-identical).
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// experimentFilter restricts TestGolden to a comma-separated subset of
// experiment ids. CI's golden matrix runs one shard per job:
//
//	go test ./internal/experiments -run TestGolden -experiments "fig4,fig5"
//
// An empty value (the default, and every local run) sweeps everything.
var experimentFilter = flag.String("experiments", "", "comma-separated experiment ids for TestGolden (empty = all)")

// goldenShards partitions the registry for the CI matrix: one job per
// entry, roughly balanced by experiment cost (the DVFS sweeps and the
// dynamic scenarios dominate). TestGoldenShardsCoverRegistry pins the
// union against IDs(), so adding an experiment without assigning it a
// shard fails the suite rather than silently skipping its golden in CI.
var goldenShards = map[string]string{
	"figures-a": "fig4,fig5,fig6,fig7,fig8,fig9,table5",
	"figures-b": "fig10,fig11,fig12,fig13,fig14,fig15,sann,sec74",
	"ext":       "ext-abb,ext-adapt,ext-cluster,ext-parallel,ext-sann-par,ext-sched",
	"dynamic":   "ext-transient,ext-phase-mig,ext-wearout",
}

// goldenIDs resolves the -experiments filter against the registry.
func goldenIDs(t *testing.T) []string {
	t.Helper()
	if *experimentFilter == "" {
		return IDs()
	}
	known := map[string]bool{}
	for _, id := range IDs() {
		known[id] = true
	}
	var ids []string
	for _, id := range strings.Split(*experimentFilter, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !known[id] {
			t.Fatalf("-experiments: unknown id %q (known: %v)", id, IDs())
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		t.Fatal("-experiments: empty filter")
	}
	return ids
}

// TestGoldenShardsCoverRegistry proves the CI matrix sweeps the whole
// registry: the shards must partition IDs() exactly — no experiment
// missing, none duplicated across jobs.
func TestGoldenShardsCoverRegistry(t *testing.T) {
	var all []string
	seen := map[string]string{}
	for shard, csv := range goldenShards {
		for _, id := range strings.Split(csv, ",") {
			if prev, dup := seen[id]; dup {
				t.Errorf("%s appears in shards %s and %s", id, prev, shard)
			}
			seen[id] = shard
			all = append(all, id)
		}
	}
	sort.Strings(all)
	want := IDs()
	if len(all) != len(want) {
		t.Fatalf("shards cover %d experiments, registry has %d:\n%v\nvs\n%v", len(all), len(want), all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("shard union %v != registry %v", all, want)
		}
	}
}

// durRE matches rendered time.Duration tokens. Figure 15 reports host
// wall-clock solve times, which legitimately vary run to run; every other
// experiment output is deterministic to the last digit.
var durRE = regexp.MustCompile(`[0-9]+(?:\.[0-9]+)?(?:ns|µs|us|ms|m|h|s)`)

var spaceRE = regexp.MustCompile(` +`)

// normalizeGolden strips the run-to-run-varying parts of an experiment
// rendering. Only fig15 has any: its duration columns (whose varying
// string widths also shift the column padding, so space runs collapse).
func normalizeGolden(id, out string) string {
	if id == "fig15" {
		return spaceRE.ReplaceAllString(durRE.ReplaceAllString(out, "<dur>"), " ")
	}
	return out
}

// TestGolden runs every registered experiment at quick scale and diffs the
// full text output against the committed goldens. This is the lock that
// lets the hot paths (grf sampling, thermal solves, LinOpt's simplex) be
// optimised aggressively: any change that perturbs a single rendered digit
// of any paper artefact fails here.
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep runs every experiment; skipped in -short")
	}
	for _, id := range goldenIDs(t) {
		id := id
		t.Run(id, func(t *testing.T) {
			got := normalizeGolden(id, quickRun(t, id).Render())
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, string(want))
			}
		})
	}
}
