package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// update rewrites the golden files from the current outputs. Run as
//
//	go test ./internal/experiments -run TestGolden -update
//
// only when an intentional behaviour change is being made; the whole point
// of the goldens is to catch *unintentional* numeric drift (e.g. from a
// performance change that was supposed to be bit-identical).
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// durRE matches rendered time.Duration tokens. Figure 15 reports host
// wall-clock solve times, which legitimately vary run to run; every other
// experiment output is deterministic to the last digit.
var durRE = regexp.MustCompile(`[0-9]+(?:\.[0-9]+)?(?:ns|µs|us|ms|m|h|s)`)

var spaceRE = regexp.MustCompile(` +`)

// normalizeGolden strips the run-to-run-varying parts of an experiment
// rendering. Only fig15 has any: its duration columns (whose varying
// string widths also shift the column padding, so space runs collapse).
func normalizeGolden(id, out string) string {
	if id == "fig15" {
		return spaceRE.ReplaceAllString(durRE.ReplaceAllString(out, "<dur>"), " ")
	}
	return out
}

// TestGolden runs every registered experiment at quick scale and diffs the
// full text output against the committed goldens. This is the lock that
// lets the hot paths (grf sampling, thermal solves, LinOpt's simplex) be
// optimised aggressively: any change that perturbs a single rendered digit
// of any paper artefact fails here.
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep runs every experiment; skipped in -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			got := normalizeGolden(id, quickRun(t, id).Render())
			path := filepath.Join("testdata", "golden", id+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, string(want))
			}
		})
	}
}
