package experiments

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial is the determinism regression for the farm
// engine: running with 8 workers must produce byte-identical reports and
// deeply equal typed results to the historical serial path (Workers=1).
// Seeds derive from the die/trial index, workers fill index-addressed
// slots, and callers reduce serially in loop order, so float accumulation
// order — and therefore every digit of output — is independent of the
// worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig4", "fig7", "ext-sann-par", "ext-adapt"} {
		serialEnv, err := QuickEnv()
		if err != nil {
			t.Fatal(err)
		}
		serialEnv.Workers = 1
		parEnv, err := QuickEnv()
		if err != nil {
			t.Fatal(err)
		}
		parEnv.Workers = 8

		serial, err := Run(id, serialEnv)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		par, err := Run(id, parEnv)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if s, p := serial.Render(), par.Render(); s != p {
			t.Errorf("%s: parallel render differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: typed results differ:\nserial:   %#v\nparallel: %#v", id, serial, par)
		}
	}
}
