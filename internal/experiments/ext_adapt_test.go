package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"vasched/internal/adapt"
	"vasched/internal/cluster"
)

// The exact verification mode must reproduce the classic full-population
// experiment bit-for-bit: its mean is Fig4's MeanPowerRatio with zero
// tolerance, because both paths evaluate the identical kernel blobs over
// the identical die batch and reduce in index order.
func TestExtAdaptExactMatchesFig4(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	ea.Adaptive = &AdaptiveConfig{Config: adapt.Config{Exact: true}}
	res, err := ExtAdapt(ea)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling.Mean != fig4.MeanPowerRatio() {
		t.Fatalf("exact-mode mean %v != fig4 mean %v", res.Sampling.Mean, fig4.MeanPowerRatio())
	}
	if res.Sampling.Evaluated != e.NumDies || !res.Sampling.Exhausted {
		t.Fatalf("exact mode did not evaluate the full population: %+v", res.Sampling)
	}
	if !strings.Contains(res.Render(), "exact verification") {
		t.Fatalf("exact render missing mode line:\n%s", res.Render())
	}

	// The freq-ratio metric verifies the same way against MeanFreqRatio.
	ef, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	ef.Adaptive = &AdaptiveConfig{Metric: "freq-ratio", Config: adapt.Config{Exact: true}}
	fres, err := ExtAdapt(ef)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Sampling.Mean != fig4.MeanFreqRatio() {
		t.Fatalf("freq-ratio exact mean %v != fig4 %v", fres.Sampling.Mean, fig4.MeanFreqRatio())
	}
}

// An adaptive run's estimate must agree with the exact population mean to
// within its own reported half-width (the statistical guarantee), and the
// adaptive machinery must not touch any other experiment: a second Env
// without Adaptive set still renders the stock golden content.
func TestExtAdaptEstimateCoversExactMean(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtAdapt(ea) // stock adaptive defaults
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sampling
	if !s.Converged && !s.Exhausted {
		t.Fatalf("quick run neither converged nor exhausted: %+v", s)
	}
	exact := fig4.MeanPowerRatio()
	diff := s.Mean - exact
	if diff < 0 {
		diff = -diff
	}
	// Exhausted runs hit the exact stratified mean; converged ones must
	// cover the truth within the CI (plus float slack).
	if diff > s.HalfWidth+1e-9 {
		t.Fatalf("estimate %v ± %v does not cover exact mean %v", s.Mean, s.HalfWidth, exact)
	}
}

// TestExtAdaptUnknownMetric pins the error path.
func TestExtAdaptUnknownMetric(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	e.Adaptive = &AdaptiveConfig{Metric: "nope"}
	if _, err := ExtAdapt(e); err == nil || !strings.Contains(err.Error(), "unknown adaptive metric") {
		t.Fatalf("unknown metric error = %v", err)
	}
}

// The adaptive rounds dispatch as cluster shards (RunIndices carries each
// round's stratum plan); the run must render byte-identically through any
// worker count, under faults, and when degraded back to local.
func TestExtAdaptClusterIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster determinism proof runs full kernels")
	}
	run := func(c *cluster.Client) string {
		e, err := QuickEnv()
		if err != nil {
			t.Fatal(err)
		}
		if c != nil {
			e.Cluster = c
		}
		r, err := ExtAdapt(e)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	local := run(nil)
	for _, tc := range []struct {
		workers   int
		shardSize int
	}{
		{1, 3}, {3, 2},
	} {
		if got := run(startCluster(t, tc.workers, cluster.Options{ShardSize: tc.shardSize})); got != local {
			t.Fatalf("%d workers / shard %d diverges:\n%s\nvs\n%s", tc.workers, tc.shardSize, got, local)
		}
	}
	// Fault injection on the first dispatches: retries must recover the
	// same bytes.
	plan := cluster.NewFaultPlan().
		On(0, cluster.Fault{Action: cluster.FaultError}).
		On(2, cluster.Fault{Action: cluster.FaultCorrupt})
	if got := run(startCluster(t, 3, cluster.Options{ShardSize: 2, Concurrency: 1, Fault: plan})); got != local {
		t.Fatal("faulted adaptive run diverges from local")
	}
}

// The severity proxy must order dies deterministically and vary across
// the batch (a constant proxy would collapse stratification to chance).
func TestDieSeverityProxy(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	sev := make([]float64, e.NumDies)
	err = e.ForDiesKernel(kernelDieSeverity, e.NumDies, func(die int, blob []byte) error {
		var b dieSeverityBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return err
		}
		sev[die] = b.Sev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, s := range sev {
		if s <= 0 {
			t.Fatalf("severity %v not positive: %v", s, sev)
		}
		distinct[s] = true
	}
	if len(distinct) < e.NumDies/2 {
		t.Fatalf("severity proxy nearly constant across the batch: %v", sev)
	}
}
