//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. The full-experiment observability tests skip under it: they
// pin determinism, not concurrency, and the ~10x race slowdown on the
// quick experiment suite would push the package past the test timeout
// on small machines.
const raceEnabled = true
