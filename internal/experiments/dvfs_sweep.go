package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vasched/internal/core"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Combo is one (scheduler, power manager) pairing of the paper's Table 1
// bottom section.
type Combo struct {
	Sched   string
	Manager string
}

// Label renders the paper's "Sched+Manager" name.
func (c Combo) Label() string { return c.Sched + "+" + c.Manager }

// The paper's four evaluated combinations.
var paperCombos = []Combo{
	{sched.NameRandom, pm.NameFoxton},
	{sched.NameVarFAppIPC, pm.NameFoxton},
	{sched.NameVarFAppIPC, pm.NameLinOpt},
	{sched.NameVarFAppIPC, pm.NameSAnn},
}

// DVFSCell is the mean outcome of one (combo, thread-count) cell.
type DVFSCell struct {
	Threads      int
	Combo        Combo
	PowerW       float64
	MIPS         float64
	WeightedTP   float64
	EDSquared    float64
	WeightedED2  float64
	DeviationPct float64
	DecideMean   time.Duration
}

// dvfsSweep runs the NUniFreq+DVFS sweep for one power environment.
func dvfsSweep(e *Env, env PowerEnv, combos []Combo, threads []int, obj pm.Objective) (map[string][]DVFSCell, error) {
	out := make(map[string][]DVFSCell, len(combos))
	for _, combo := range combos {
		policy, err := sched.New(combo.Sched)
		if err != nil {
			return nil, err
		}
		mgr, err := e.Manager(combo.Manager, obj)
		if err != nil {
			return nil, err
		}
		for _, n := range threads {
			budget := env.Budget(n, e.Floorplan().NumCores)
			// Die×trial fan-out through the farm; slots reduce in the
			// serial loop's order (managers and policies are stateless
			// values, so sharing them across workers is safe).
			tasks := e.RunDies * e.Trials
			slots := make([]*core.RunStats, tasks)
			err := e.ForTasks(tasks, func(ctx context.Context, i int) error {
				die, trial := i/e.Trials, i%e.Trials
				c, err := e.Chip(die)
				if err != nil {
					return err
				}
				seed := e.Seed + int64(trial)*97 + int64(die)*13
				apps := workload.Mix(stats.NewRNG(seed), n)
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy,
					Mode: core.ModeDVFS, Manager: mgr, Budget: budget,
					SampleIntervalMS: e.SampleMS, Seed: seed,
					DecideHist: e.DecideHist, Ctx: ctx,
				})
				if err != nil {
					return err
				}
				st, err := sys.Run(apps, e.SimMS)
				if err != nil {
					return err
				}
				slots[i] = st
				return nil
			})
			if err != nil {
				return nil, err
			}
			var pw, mips, wtp, ed2, wed2, dev []float64
			var decide time.Duration
			var decideN int
			for _, st := range slots {
				pw = append(pw, st.AvgPowerW)
				mips = append(mips, st.MIPS)
				wtp = append(wtp, st.WeightedTP)
				ed2 = append(ed2, st.EDSquared)
				wed2 = append(wed2, st.AvgPowerW/(st.WeightedTP*st.WeightedTP*st.WeightedTP))
				dev = append(dev, st.PowerDeviationPct)
				decide += st.DecideTime
				decideN += st.DecideCount
			}
			cell := DVFSCell{
				Threads: n, Combo: combo,
				PowerW: stats.Mean(pw), MIPS: stats.Mean(mips),
				WeightedTP: stats.Mean(wtp), EDSquared: stats.Mean(ed2),
				WeightedED2:  stats.Mean(wed2),
				DeviationPct: stats.Mean(dev),
			}
			if decideN > 0 {
				cell.DecideMean = decide / time.Duration(decideN)
			}
			out[combo.Label()] = append(out[combo.Label()], cell)
		}
	}
	return out, nil
}

// DVFSSweepResult holds a rendered DVFS sweep.
type DVFSSweepResult struct {
	Title    string
	Env      PowerEnv
	Baseline string
	Combos   []Combo
	Threads  []int
	Cells    map[string][]DVFSCell
	Weighted bool
}

// Rel returns metric(combo)/metric(baseline) at thread index ti.
func (r *DVFSSweepResult) Rel(combo string, ti int, metric func(DVFSCell) float64) float64 {
	base := metric(r.Cells[r.Baseline][ti])
	if base == 0 {
		return 0
	}
	return metric(r.Cells[combo][ti]) / base
}

// Fig11 reproduces Figure 11: throughput and ED^2 of the four algorithm
// combinations in the Cost-Performance environment, for 4-20 threads,
// relative to Random+Foxton*.
func Fig11(e *Env) (*DVFSSweepResult, error) {
	threads := []int{4, 8, 16, 20}
	cells, err := dvfsSweep(e, CostPerformance, paperCombos, threads, pm.ObjMIPS)
	if err != nil {
		return nil, err
	}
	return &DVFSSweepResult{
		Title:    "Figure 11: NUniFreq+DVFS throughput & ED^2 (Cost-Performance, 75 W)",
		Env:      CostPerformance,
		Baseline: paperCombos[0].Label(),
		Combos:   paperCombos,
		Threads:  threads,
		Cells:    cells,
	}, nil
}

// Fig13 reproduces Figure 13: the Figure 11 experiment re-run with
// weighted throughput as the optimisation goal, reporting weighted
// throughput and weighted ED^2.
func Fig13(e *Env) (*DVFSSweepResult, error) {
	threads := []int{4, 8, 16, 20}
	cells, err := dvfsSweep(e, CostPerformance, paperCombos, threads, pm.ObjWeighted)
	if err != nil {
		return nil, err
	}
	return &DVFSSweepResult{
		Title:    "Figure 13: weighted throughput & weighted ED^2 (Cost-Performance, 75 W)",
		Env:      CostPerformance,
		Baseline: paperCombos[0].Label(),
		Combos:   paperCombos,
		Threads:  threads,
		Cells:    cells,
		Weighted: true,
	}, nil
}

// Render prints the figure's two panels.
func (r *DVFSSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	tpMetric := func(c DVFSCell) float64 { return c.MIPS }
	edMetric := func(c DVFSCell) float64 { return c.EDSquared }
	tpLabel, edLabel := "(a) MIPS", "(b) ED^2"
	if r.Weighted {
		tpMetric = func(c DVFSCell) float64 { return c.WeightedTP }
		edMetric = func(c DVFSCell) float64 { return c.WeightedED2 }
		tpLabel, edLabel = "(a) weighted TP", "(b) weighted ED^2"
	}
	r.renderPanel(&b, tpLabel, tpMetric)
	r.renderPanel(&b, edLabel, edMetric)
	return b.String()
}

func (r *DVFSSweepResult) renderPanel(b *strings.Builder, label string, metric func(DVFSCell) float64) {
	fmt.Fprintf(b, "%s (relative to %s)\n", label, r.Baseline)
	fmt.Fprintf(b, "%-10s", "threads")
	for _, c := range r.Combos {
		fmt.Fprintf(b, " %24s", c.Label())
	}
	b.WriteString("\n")
	for ti, n := range r.Threads {
		fmt.Fprintf(b, "%-10d", n)
		for _, c := range r.Combos {
			fmt.Fprintf(b, " %24.3f", r.Rel(c.Label(), ti, metric))
		}
		b.WriteString("\n")
	}
}

// Fig12Result reproduces Figure 12: 20-thread throughput of the four
// combinations across the three power environments.
type Fig12Result struct {
	Baseline string
	Combos   []Combo
	Envs     []PowerEnv
	// Cells[comboLabel][envIndex]
	Cells map[string][]DVFSCell
}

// Fig12 runs the environment sweep.
func Fig12(e *Env) (*Fig12Result, error) {
	res := &Fig12Result{
		Baseline: paperCombos[0].Label(),
		Combos:   paperCombos,
		Envs:     []PowerEnv{LowPower, CostPerformance, HighPerformance},
		Cells:    make(map[string][]DVFSCell),
	}
	for _, env := range res.Envs {
		cells, err := dvfsSweep(e, env, paperCombos, []int{20}, pm.ObjMIPS)
		if err != nil {
			return nil, err
		}
		for label, cs := range cells {
			res.Cells[label] = append(res.Cells[label], cs[0])
		}
	}
	return res, nil
}

// Rel returns MIPS(combo)/MIPS(baseline) for environment index ei.
func (r *Fig12Result) Rel(combo string, ei int) float64 {
	base := r.Cells[r.Baseline][ei].MIPS
	if base == 0 {
		return 0
	}
	return r.Cells[combo][ei].MIPS / base
}

// Render formats the environment sweep.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: 20-thread MIPS vs power target (relative to " + r.Baseline + ")\n")
	fmt.Fprintf(&b, "%-20s", "power target")
	for _, c := range r.Combos {
		fmt.Fprintf(&b, " %24s", c.Label())
	}
	b.WriteString("\n")
	for ei, env := range r.Envs {
		fmt.Fprintf(&b, "%-20s", fmt.Sprintf("%s (%.0fW)", env.Name, env.PTargetW))
		for _, c := range r.Combos {
			fmt.Fprintf(&b, " %24.3f", r.Rel(c.Label(), ei))
		}
		b.WriteString("\n")
	}
	return b.String()
}
