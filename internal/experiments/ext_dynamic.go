package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"vasched/internal/dynamic"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// The dynamic-scenario experiments drive internal/dynamic through the
// kernel fan-out: each die's time-stepped simulation is a pure function of
// (Scale, Seed, BatchSeed, die), so the die cache, cluster shards,
// adaptive sampling, and trace spans (dynamic.step nests under env.kernel
// with path=local|cluster) all apply unchanged, and the goldens pin every
// rendered digit at any worker count.
const (
	kernelDieTransient = "die-transient"
	kernelDiePhaseMig  = "die-phase-mig"
	kernelDieWearout   = "die-wearout"
)

// extDynThreads is the occupancy the dynamic scenarios schedule (16 of 20
// cores, like ext-cluster).
const extDynThreads = 16

// Emergency thresholds for the transient scenario, calibrated so quick-
// scale runs (30 ms from ambient, peaking in the mid-60s C) genuinely trip
// the governor: the behaviour under test is the clamp/recover cycle, not a
// threshold that never fires.
const (
	extDynEmergencyC = 60.0
	extDynRecoverC   = 57.0
)

// extDynMigPenaltiesMS is the migration-cost sweep of ext-phase-mig.
var extDynMigPenaltiesMS = []float64{0, 2, 5}

// extDynYears are the simulated ages of ext-wearout's horizon.
var extDynYears = []float64{3, 7}

// dynBaseConfig is the shared scenario shape: per-Env knobs only (stock
// Scale fields), so a remote worker rebuilding the Env reproduces it.
func dynBaseConfig(e *Env, seed int64) (dynamic.Config, []*workload.AppProfile) {
	apps := workload.Mix(stats.NewRNG(seed), extDynThreads)
	return dynamic.Config{
		CPU:          e.CPU(),
		Scheduler:    sched.VarFAppIPCPolicy{},
		DtMS:         e.SampleMS,
		OSIntervalMS: 10,
		EmergencyC:   extDynEmergencyC,
		RecoverC:     extDynRecoverC,
		Seed:         seed,
	}, apps
}

// dieTransientBlob is the die-transient kernel's wire shape: trial
// averages of one die's transient scenario.
type dieTransientBlob struct {
	MIPS        float64 `json:"mips"`
	PowerW      float64 `json:"pw"`
	MaxTempC    float64 `json:"maxc"`
	Emergencies float64 `json:"em"`
	ThrottledMS float64 `json:"thr"`
}

// diePhaseMigBlob is the die-phase-mig kernel's wire shape: trial-averaged
// migration/phase dynamics and the throughput at each migration penalty.
type diePhaseMigBlob struct {
	Migrations    float64   `json:"mig"`
	PhaseSwitches float64   `json:"phsw"`
	MIPS          []float64 `json:"mips"` // one per extDynMigPenaltiesMS
}

// dieWearoutBlob is the die-wearout kernel's wire shape: one horizon run
// (fresh die + one epoch per extDynYears).
type dieWearoutBlob struct {
	Years      []float64 `json:"years"`
	DVthMaxMV  []float64 `json:"dvth"`
	MinFmaxGHz []float64 `json:"fmin"`
	MIPS       []float64 `json:"mips"`
	WearoutMax []float64 `json:"wear"`
}

func init() {
	RegisterKernel(kernelDieTransient, func(ctx context.Context, e *Env, die int) ([]byte, error) {
		c, err := e.Chip(die)
		if err != nil {
			return nil, err
		}
		var b dieTransientBlob
		for trial := 0; trial < e.Trials; trial++ {
			seed := e.Seed + int64(die)*13 + int64(trial)*97
			cfg, apps := dynBaseConfig(e, seed)
			cfg.Chip = c
			cfg.Ctx = ctx
			res, err := dynamic.Run(cfg, apps, e.SimMS)
			if err != nil {
				return nil, err
			}
			inv := 1 / float64(e.Trials)
			b.MIPS += res.MIPS * inv
			b.PowerW += res.AvgPowerW * inv
			b.MaxTempC += res.MaxTempC * inv
			b.Emergencies += float64(res.Emergencies) * inv
			b.ThrottledMS += res.ThrottledMS * inv
		}
		return json.Marshal(b)
	})
	RegisterKernel(kernelDiePhaseMig, func(ctx context.Context, e *Env, die int) ([]byte, error) {
		c, err := e.Chip(die)
		if err != nil {
			return nil, err
		}
		b := diePhaseMigBlob{MIPS: make([]float64, len(extDynMigPenaltiesMS))}
		for trial := 0; trial < e.Trials; trial++ {
			seed := e.Seed + int64(die)*13 + int64(trial)*97
			inv := 1 / float64(e.Trials)
			for pi, pen := range extDynMigPenaltiesMS {
				cfg, apps := dynBaseConfig(e, seed)
				cfg.Chip = c
				cfg.Ctx = ctx
				cfg.MigrationPenaltyMS = pen
				// Start each thread part-way into its phase cycle so a
				// short window still crosses phase boundaries; offsets are
				// a pure function of the seed, identical across penalties.
				offRNG := stats.NewRNG(seed).Derive(7)
				offsets := make([]float64, len(apps))
				for i, a := range apps {
					total := 0.0
					for _, p := range a.Phases {
						total += p.DurationMS
					}
					offsets[i] = offRNG.Float64() * total
				}
				cfg.StartOffsetsMS = offsets
				res, err := dynamic.Run(cfg, apps, e.SimMS)
				if err != nil {
					return nil, err
				}
				b.MIPS[pi] += res.MIPS * inv
				if pi == 0 {
					b.Migrations += float64(res.Migrations) * inv
					b.PhaseSwitches += float64(res.PhaseSwitches) * inv
				}
			}
		}
		return json.Marshal(b)
	})
	RegisterKernel(kernelDieWearout, func(ctx context.Context, e *Env, die int) ([]byte, error) {
		c, err := e.Chip(die)
		if err != nil {
			return nil, err
		}
		seed := e.Seed + int64(die)*13
		cfg, apps := dynBaseConfig(e, seed)
		cfg.Chip = c
		cfg.Ctx = ctx
		hres, err := dynamic.RunHorizon(dynamic.HorizonConfig{
			Run:        cfg,
			DelayCfg:   e.DelayCfg,
			PowerCfg:   e.Power,
			ThermalCfg: e.ThermalCfg,
			Years:      extDynYears,
		}, apps, e.SimMS)
		if err != nil {
			return nil, err
		}
		var b dieWearoutBlob
		for _, ep := range hres.Epochs {
			b.Years = append(b.Years, ep.Years)
			b.DVthMaxMV = append(b.DVthMaxMV, ep.DVthMaxV*1000)
			b.MinFmaxGHz = append(b.MinFmaxGHz, ep.MinFmaxHz/1e9)
			b.MIPS = append(b.MIPS, ep.Result.MIPS)
			b.WearoutMax = append(b.WearoutMax, ep.Result.WearoutMax)
		}
		return json.Marshal(b)
	})
}

// ExtTransientResult is the time-stepped thermal-transient experiment:
// per-die trial averages of the scenario engine under emergency
// throttling, plus the determinism checksum over every kernel blob.
type ExtTransientResult struct {
	Dies        int
	Trials      int
	Threads     int
	DtMS        float64
	EmergencyC  float64
	MIPS        []float64
	PowerW      []float64
	MaxTempC    []float64
	Emergencies []float64
	ThrottledMS []float64
	Checksum    string
}

// ExtTransient runs the transient scenario over the die batch through the
// distributable kernel path.
func ExtTransient(e *Env) (*ExtTransientResult, error) {
	res := &ExtTransientResult{
		Dies:        e.NumDies,
		Trials:      e.Trials,
		Threads:     extDynThreads,
		DtMS:        e.SampleMS,
		EmergencyC:  extDynEmergencyC,
		MIPS:        make([]float64, e.NumDies),
		PowerW:      make([]float64, e.NumDies),
		MaxTempC:    make([]float64, e.NumDies),
		Emergencies: make([]float64, e.NumDies),
		ThrottledMS: make([]float64, e.NumDies),
	}
	sum := fnv.New64a()
	err := e.ForDiesKernel(kernelDieTransient, e.NumDies, func(die int, blob []byte) error {
		sum.Write(blob)
		var b dieTransientBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return fmt.Errorf("experiments: die %d transient blob: %w", die, err)
		}
		res.MIPS[die] = b.MIPS
		res.PowerW[die] = b.PowerW
		res.MaxTempC[die] = b.MaxTempC
		res.Emergencies[die] = b.Emergencies
		res.ThrottledMS[die] = b.ThrottledMS
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Checksum = fmt.Sprintf("%016x", sum.Sum64())
	return res, nil
}

// Render formats the per-die transient statistics.
func (r *ExtTransientResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: time-stepped thermal transients (%d dies x %d trials, %d threads, dt %.0f ms)\n",
		r.Dies, r.Trials, r.Threads, r.DtMS)
	fmt.Fprintf(&b, "emergency throttle: trip %.0f C, hysteresis release %.0f C\n", r.EmergencyC, extDynRecoverC)
	fmt.Fprintf(&b, "peak temperature per die: mean %.2f  min %.2f  max %.2f C\n",
		stats.Mean(r.MaxTempC), stats.Min(r.MaxTempC), stats.Max(r.MaxTempC))
	fmt.Fprintf(&b, "throughput per die:       mean %.1f  min %.1f  max %.1f MIPS\n",
		stats.Mean(r.MIPS), stats.Min(r.MIPS), stats.Max(r.MIPS))
	fmt.Fprintf(&b, "chip power per die:       mean %.2f  min %.2f  max %.2f W\n",
		stats.Mean(r.PowerW), stats.Min(r.PowerW), stats.Max(r.PowerW))
	fmt.Fprintf(&b, "emergencies per die:      mean %.2f   throttled time: mean %.1f ms (of %s)\n",
		stats.Mean(r.Emergencies), stats.Mean(r.ThrottledMS), "the run")
	fmt.Fprintf(&b, "task-blob checksum: %s\n", r.Checksum)
	b.WriteString("(byte-identical at any worker/shard count and cache state)\n")
	return b.String()
}

// ExtPhaseMigResult is the phase-shift/migration-cost experiment: how much
// throughput thread migration costs as the per-migration penalty grows,
// under phase-shifting workloads.
type ExtPhaseMigResult struct {
	Dies        int
	Trials      int
	Threads     int
	PenaltiesMS []float64
	// MIPS[p][die] is the trial-averaged throughput at penalty p.
	MIPS          [][]float64
	Migrations    []float64
	PhaseSwitches []float64
	Checksum      string
}

// ExtPhaseMig runs the migration-penalty sweep over the die batch.
func ExtPhaseMig(e *Env) (*ExtPhaseMigResult, error) {
	res := &ExtPhaseMigResult{
		Dies:          e.NumDies,
		Trials:        e.Trials,
		Threads:       extDynThreads,
		PenaltiesMS:   extDynMigPenaltiesMS,
		MIPS:          make([][]float64, len(extDynMigPenaltiesMS)),
		Migrations:    make([]float64, e.NumDies),
		PhaseSwitches: make([]float64, e.NumDies),
	}
	for pi := range res.MIPS {
		res.MIPS[pi] = make([]float64, e.NumDies)
	}
	sum := fnv.New64a()
	err := e.ForDiesKernel(kernelDiePhaseMig, e.NumDies, func(die int, blob []byte) error {
		sum.Write(blob)
		var b diePhaseMigBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return fmt.Errorf("experiments: die %d phase-mig blob: %w", die, err)
		}
		if len(b.MIPS) != len(res.PenaltiesMS) {
			return fmt.Errorf("experiments: die %d phase-mig blob has %d penalties, want %d",
				die, len(b.MIPS), len(res.PenaltiesMS))
		}
		for pi, v := range b.MIPS {
			res.MIPS[pi][die] = v
		}
		res.Migrations[die] = b.Migrations
		res.PhaseSwitches[die] = b.PhaseSwitches
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Checksum = fmt.Sprintf("%016x", sum.Sum64())
	return res, nil
}

// Render formats the migration-cost sweep.
func (r *ExtPhaseMigResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: phase-shifting workloads under migration cost (%d dies x %d trials, %d threads)\n",
		r.Dies, r.Trials, r.Threads)
	fmt.Fprintf(&b, "per run: %.1f migrations, %.1f phase switches (means over dies)\n",
		stats.Mean(r.Migrations), stats.Mean(r.PhaseSwitches))
	base := stats.Mean(r.MIPS[0])
	fmt.Fprintf(&b, "  %12s %12s %8s\n", "penalty", "throughput", "loss")
	for pi, pen := range r.PenaltiesMS {
		m := stats.Mean(r.MIPS[pi])
		fmt.Fprintf(&b, "  %9.0f ms %7.1f MIPS %7.2f%%\n", pen, m, 100*(base-m)/base)
	}
	fmt.Fprintf(&b, "task-blob checksum: %s\n", r.Checksum)
	b.WriteString("(byte-identical at any worker/shard count and cache state)\n")
	return b.String()
}

// ExtWearoutResult is the wearout-horizon experiment: the scenario re-run
// on Vth-drifted dies at increasing simulated ages, re-scheduled each
// epoch against the die as it actually is at that age.
type ExtWearoutResult struct {
	Dies    int
	Threads int
	Years   []float64
	// Per-epoch means over the horizon dies.
	DVthMaxMV  []float64
	MinFmaxGHz []float64
	MIPS       []float64
	WearoutMax []float64
	Checksum   string
}

// ExtWearout runs the aging horizon over the RunDies subset (each epoch
// pays a full die re-characterisation, so the index space is the timeline
// sweeps' small one, not the 200-die batch).
func ExtWearout(e *Env) (*ExtWearoutResult, error) {
	nEpochs := len(extDynYears) + 1
	res := &ExtWearoutResult{
		Dies:       e.RunDies,
		Threads:    extDynThreads,
		DVthMaxMV:  make([]float64, nEpochs),
		MinFmaxGHz: make([]float64, nEpochs),
		MIPS:       make([]float64, nEpochs),
		WearoutMax: make([]float64, nEpochs),
	}
	sum := fnv.New64a()
	err := e.ForDiesKernel(kernelDieWearout, e.RunDies, func(die int, blob []byte) error {
		sum.Write(blob)
		var b dieWearoutBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return fmt.Errorf("experiments: die %d wearout blob: %w", die, err)
		}
		if len(b.Years) != nEpochs {
			return fmt.Errorf("experiments: die %d wearout blob has %d epochs, want %d",
				die, len(b.Years), nEpochs)
		}
		res.Years = b.Years
		inv := 1 / float64(e.RunDies)
		for i := 0; i < nEpochs; i++ {
			res.DVthMaxMV[i] += b.DVthMaxMV[i] * inv
			res.MinFmaxGHz[i] += b.MinFmaxGHz[i] * inv
			res.MIPS[i] += b.MIPS[i] * inv
			res.WearoutMax[i] += b.WearoutMax[i] * inv
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Checksum = fmt.Sprintf("%016x", sum.Sum64())
	return res, nil
}

// Render formats the per-epoch aging table.
func (r *ExtWearoutResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: wearout-aware scheduling horizon (%d dies, %d threads; NBTI Vth drift, re-scheduled per epoch)\n",
		r.Dies, r.Threads)
	fmt.Fprintf(&b, "  %6s %10s %10s %12s %10s\n", "years", "dVth max", "min Fmax", "throughput", "wear max")
	for i, y := range r.Years {
		fmt.Fprintf(&b, "  %6.0f %7.1f mV %6.3f GHz %7.1f MIPS %10.3f\n",
			y, r.DVthMaxMV[i], r.MinFmaxGHz[i], r.MIPS[i], r.WearoutMax[i])
	}
	base := r.MIPS[0]
	last := r.MIPS[len(r.MIPS)-1]
	fmt.Fprintf(&b, "end-of-life throughput: %.2f%% of fresh-die (aged cores bin slower; the scheduler re-ranks them)\n",
		100*last/base)
	fmt.Fprintf(&b, "task-blob checksum: %s\n", r.Checksum)
	b.WriteString("(byte-identical at any worker/shard count and cache state)\n")
	return b.String()
}
