package experiments

import (
	"net/http/httptest"
	"strings"
	"testing"

	"vasched/internal/cluster"
	"vasched/internal/metrics"
)

// startCluster boots n worker stand-ins — real Executors serving the real
// kernels over the real wire protocol on loopback — and returns a client
// over them. This is the full production stack minus the network.
func startCluster(t *testing.T, n int, opt cluster.Options) *cluster.Client {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(cluster.Handler(NewExecutor(2), metrics.NewRegistry()))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return cluster.NewClient(urls, opt)
}

// renderExtCluster runs ext-cluster on a fresh quick Env wired to the
// given cluster (nil = pure local) and returns the rendered report.
func renderExtCluster(t *testing.T, c *cluster.Client) string {
	t.Helper()
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		e.Cluster = c
	}
	r, err := ExtCluster(e)
	if err != nil {
		t.Fatal(err)
	}
	return r.Render()
}

// TestClusterDeterminismAcrossWorkerCounts is the acceptance proof for
// the sharded cluster: ext-cluster rendered locally and through 1, 2,
// and 4 workers (at different shard sizes) is byte-identical.
func TestClusterDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster determinism proof runs full kernels")
	}
	local := renderExtCluster(t, nil)
	for _, tc := range []struct {
		workers   int
		shardSize int
	}{
		{1, 5}, {2, 5}, {4, 5}, {2, 1}, {4, 64},
	} {
		c := startCluster(t, tc.workers, cluster.Options{ShardSize: tc.shardSize})
		got := renderExtCluster(t, c)
		if got != local {
			t.Fatalf("%d workers / shard size %d diverges from local:\n%s\nvs\n%s",
				tc.workers, tc.shardSize, got, local)
		}
	}
}

// TestClusterDeterminismUnderFaults kills, corrupts, and delays shards
// mid-run: retries and hedging must recover byte-identical output.
func TestClusterDeterminismUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster determinism proof runs full kernels")
	}
	local := renderExtCluster(t, nil)
	plan := cluster.NewFaultPlan().
		On(0, cluster.Fault{Action: cluster.FaultError}).
		On(2, cluster.Fault{Action: cluster.FaultDrop}).
		On(4, cluster.Fault{Action: cluster.FaultCorrupt})
	// Serial dispatch pins which shard each ordinal lands on; four workers
	// guarantee every retry finds a worker outside backoff, so recovery
	// happens by re-dispatch rather than by degrading to local.
	c := startCluster(t, 4, cluster.Options{ShardSize: 4, Concurrency: 1, Fault: plan})
	got := renderExtCluster(t, c)
	if got != local {
		t.Fatalf("faulted run diverges from local:\n%s\nvs\n%s", got, local)
	}
	if v := c.Metrics().Counter(`cluster_shard_retries_total`).Value(); v < 3 {
		t.Fatalf("retries = %d, want >= 3 (one per injected fault)", v)
	}
	if v := c.Metrics().Counter(`cluster_faults_injected_total{action="corrupt"}`).Value(); v != 1 {
		t.Fatalf("injected corrupt faults = %d, want 1", v)
	}
}

// TestClusterDegradesToLocal points the client at a dead worker: the run
// must fall back to local execution and still render identically.
func TestClusterDegradesToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster determinism proof runs full kernels")
	}
	dead := httptest.NewServer(nil)
	url := dead.URL
	dead.Close()
	c := cluster.NewClient([]string{url}, cluster.Options{Retries: 1})
	local := renderExtCluster(t, nil)
	got := renderExtCluster(t, c)
	if got != local {
		t.Fatalf("degraded run diverges from local:\n%s\nvs\n%s", got, local)
	}
	if v := c.Metrics().Counter(`cluster_runs_total{status="degraded"}`).Value(); v == 0 {
		t.Fatal("degraded run not counted")
	}
}

// TestClusterFig4Identical retrofits the proof onto a paper figure: fig4
// runs its die loop through the same kernel path, so a clustered fig4
// must match its committed golden byte for byte.
func TestClusterFig4Identical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster determinism proof runs full kernels")
	}
	e1, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Fig4(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	e2.Cluster = startCluster(t, 3, cluster.Options{ShardSize: 2})
	r2, err := Fig4(e2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatal("clustered fig4 diverges from local fig4")
	}
}

// TestExecutorRejectsUnknown pins the worker-side error paths: unknown
// scales and kernels must fail loudly, not fall back to a default Env.
func TestExecutorRejectsUnknown(t *testing.T) {
	x := NewExecutor(1)
	_, err := x.ExecuteShard(t.Context(), &cluster.ShardRequest{Kernel: kernelDieRatios, Scale: "huge", Seed: 1, BatchSeed: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("unknown scale error = %v", err)
	}
	_, err = x.ExecuteShard(t.Context(), &cluster.ShardRequest{Kernel: "nope", Scale: "quick", Seed: 1, BatchSeed: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("unknown kernel error = %v", err)
	}
}
