package experiments

import (
	"fmt"
	"strings"

	"vasched/internal/abb"
	"vasched/internal/chip"
	"vasched/internal/core"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// ExtABBResult is the Adaptive-Body-Bias interaction study. Humenay et
// al. (the paper's related work) propose ABB/ASV to *reduce* variation;
// the paper proposes to *exploit* it. This experiment quantifies the
// interplay: ABB compresses the frequency spread (at a leakage cost), and
// with less spread left to exploit, the variation-aware scheduler's
// advantage over Random shrinks — the two techniques are complementary,
// exactly as the paper argues.
type ExtABBResult struct {
	// Spreads before/after biasing (max/min core ratios).
	FreqSpreadBase, FreqSpreadABB float64
	LeakSpreadBase, LeakSpreadABB float64
	// TotalStaticBase/ABB are chip static power sums at the top level
	// (manufacturer tables), showing ABB's leakage bill.
	TotalStaticBase, TotalStaticABB float64
	// SchedGainBase/ABB are VarF&AppIPC's MIPS gain over Random (in
	// percent) on the base and biased chips, NUniFreq, 8 threads.
	SchedGainBasePct, SchedGainABBPct float64
}

// ExtABB runs the study on die 0.
func ExtABB(e *Env) (*ExtABBResult, error) {
	baseC, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	biased, _, err := abb.Rebuild(baseC, e.DelayCfg, e.Power, e.ThermalCfg, abb.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &ExtABBResult{}
	res.FreqSpreadBase, res.LeakSpreadBase = abb.Spread(baseC)
	res.FreqSpreadABB, res.LeakSpreadABB = abb.Spread(biased)
	top := len(baseC.Levels) - 1
	for coreID := 0; coreID < baseC.NumCores(); coreID++ {
		res.TotalStaticBase += baseC.StaticAtLevel[coreID][top]
		res.TotalStaticABB += biased.StaticAtLevel[coreID][top]
	}

	gain := func(c *chip.Chip) (float64, error) {
		var rnd, varf []float64
		for trial := 0; trial < e.Trials; trial++ {
			seed := e.Seed + int64(trial)*41
			apps := workload.Mix(stats.NewRNG(seed), 8)
			for _, pname := range []string{sched.NameRandom, sched.NameVarFAppIPC} {
				policy, err := sched.New(pname)
				if err != nil {
					return 0, err
				}
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy, Mode: core.ModeNUniFreq,
					SampleIntervalMS: e.SampleMS, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				st, err := sys.Run(apps, e.SimMS)
				if err != nil {
					return 0, err
				}
				if pname == sched.NameRandom {
					rnd = append(rnd, st.MIPS)
				} else {
					varf = append(varf, st.MIPS)
				}
			}
		}
		return (stats.Mean(varf)/stats.Mean(rnd) - 1) * 100, nil
	}
	if res.SchedGainBasePct, err = gain(baseC); err != nil {
		return nil, err
	}
	if res.SchedGainABBPct, err = gain(biased); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the study.
func (r *ExtABBResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: Adaptive Body Bias (Humenay et al.) vs variation-aware scheduling\n")
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "", "base die", "with ABB")
	fmt.Fprintf(&b, "%-34s %10.2f %10.2f\n", "core frequency spread (max/min)", r.FreqSpreadBase, r.FreqSpreadABB)
	fmt.Fprintf(&b, "%-34s %10.2f %10.2f\n", "core static-power spread", r.LeakSpreadBase, r.LeakSpreadABB)
	fmt.Fprintf(&b, "%-34s %9.1fW %9.1fW\n", "total core static power @1V", r.TotalStaticBase, r.TotalStaticABB)
	fmt.Fprintf(&b, "%-34s %9.1f%% %9.1f%%\n", "VarF&AppIPC gain over Random", r.SchedGainBasePct, r.SchedGainABBPct)
	b.WriteString("(ABB narrows the spread the scheduler exploits — the techniques are complementary)\n")
	return b.String()
}
