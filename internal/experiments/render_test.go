package experiments

import (
	"strings"
	"testing"
)

// TestRendersContainKeyContent checks every experiment's rendering for the
// anchors a reader needs: the paper artefact it reproduces, the axes or
// algorithms being compared, and the reference values quoted from the
// paper. (The numeric correctness is asserted by the per-experiment tests;
// this guards the human-facing reports.)
func TestRendersContainKeyContent(t *testing.T) {
	cases := map[string][]string{
		"table5":       {"Table 5", "bzip2", "vortex", "IPC"},
		"fig4":         {"Figure 4", "power ratio", "frequency ratio", "paper"},
		"fig5":         {"Figure 5", "sigma/mu", "0.03", "0.12"},
		"fig6":         {"Figure 6", "MaxF", "MinF", "bzip2"},
		"fig7":         {"Figure 7", "UniFreq", "VarP&AppP", "threads"},
		"fig8":         {"Figure 8", "NUniFreq", "VarP"},
		"fig9":         {"Figure 9", "VarF&AppIPC", "MIPS"},
		"fig10":        {"Figure 10", "ED^2"},
		"fig11":        {"Figure 11", "Random+Foxton*", "VarF&AppIPC+LinOpt", "VarF&AppIPC+SAnn"},
		"fig12":        {"Figure 12", "Low Power", "Cost-Performance", "High Performance"},
		"fig13":        {"Figure 13", "weighted"},
		"fig14":        {"Figure 14", "Ptarget", "10ms", "2s"},
		"fig15":        {"Figure 15", "threads", "execution time"},
		"sec74":        {"Section 7.4", "frequency", "ED^2"},
		"sann":         {"Section 6.5", "SAnn", "exhaustive"},
		"ext-sched":    {"TempAware", "wearout", "maxT"},
		"ext-parallel": {"barrier", "min-speed", "Foxton*"},
		"ext-abb":      {"Body Bias", "frequency spread", "VarF&AppIPC"},
		"ext-sann-par": {"multi-chain SAnn", "chains", "vs 1 chain"},
		"ext-adapt":    {"adaptive stratified die sampling", "round schedule", "severity strata", "CI"},
	}
	for id, anchors := range cases {
		id, anchors := id, anchors
		t.Run(id, func(t *testing.T) {
			out := quickRun(t, id).Render()
			for _, a := range anchors {
				if !strings.Contains(out, a) {
					t.Errorf("rendering missing %q:\n%s", a, out)
				}
			}
		})
	}
}
