package experiments

import (
	"context"
	"fmt"
	"strings"

	"vasched/internal/core"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Sec74Result reproduces the Section 7.4 text claim: moving from UniFreq
// to NUniFreq at full occupancy raises the average core frequency (~15% in
// the paper), raises power (~10%), and cuts ED^2 (~20%).
type Sec74Result struct {
	FreqRatio  float64
	PowerRatio float64
	ED2Ratio   float64
}

// Sec74 runs both configurations with Random scheduling on the Env's dies.
func Sec74(e *Env) (*Sec74Result, error) {
	policy, err := sched.New(sched.NameRandom)
	if err != nil {
		return nil, err
	}
	run := func(mode core.Mode) (freq, power, ed2 float64, err error) {
		// Die×trial fan-out through the farm; reduce in serial order.
		tasks := e.RunDies * e.Trials
		slots := make([]*core.RunStats, tasks)
		err = e.ForTasks(tasks, func(ctx context.Context, i int) error {
			die, trial := i/e.Trials, i%e.Trials
			c, err := e.Chip(die)
			if err != nil {
				return err
			}
			seed := e.Seed + int64(trial)*97 + int64(die)*13
			apps := workload.Mix(stats.NewRNG(seed), 20)
			sys, err := core.New(core.Config{
				Chip: c, CPU: e.CPU(), Scheduler: policy, Mode: mode,
				SampleIntervalMS: e.SampleMS, Seed: seed, Ctx: ctx,
			})
			if err != nil {
				return err
			}
			st, err := sys.Run(apps, e.SimMS)
			if err != nil {
				return err
			}
			slots[i] = st
			return nil
		})
		if err != nil {
			return 0, 0, 0, err
		}
		var fs, ps, es []float64
		for _, st := range slots {
			fs = append(fs, st.AvgActiveFreqHz)
			ps = append(ps, st.AvgPowerW)
			es = append(es, st.EDSquared)
		}
		return stats.Mean(fs), stats.Mean(ps), stats.Mean(es), nil
	}
	uf, up, ue, err := run(core.ModeUniFreq)
	if err != nil {
		return nil, err
	}
	nf, np, ne, err := run(core.ModeNUniFreq)
	if err != nil {
		return nil, err
	}
	return &Sec74Result{FreqRatio: nf / uf, PowerRatio: np / up, ED2Ratio: ne / ue}, nil
}

// Render formats the comparison.
func (r *Sec74Result) Render() string {
	var b strings.Builder
	b.WriteString("Section 7.4: NUniFreq vs UniFreq at 20 threads\n")
	fmt.Fprintf(&b, "frequency: %+.1f%% (paper: ~+15%%)\n", (r.FreqRatio-1)*100)
	fmt.Fprintf(&b, "power:     %+.1f%% (paper: ~+10%%)\n", (r.PowerRatio-1)*100)
	fmt.Fprintf(&b, "ED^2:      %+.1f%% (paper: ~-20%%)\n", (r.ED2Ratio-1)*100)
	return b.String()
}

// SAnnValidationRow is one thread-count's SAnn-vs-exhaustive gap.
type SAnnValidationRow struct {
	Threads int
	// GapPct is (exhaustive - SAnn) / exhaustive modelled throughput, in
	// percent, averaged over trials.
	GapPct float64
	// LinOptGapPct is the same gap for LinOpt.
	LinOptGapPct float64
}

// SAnnValidationResult reproduces the Section 6.5 validation: for up to 4
// threads, SAnn's throughput is within ~1% of an exhaustive search.
type SAnnValidationResult struct {
	Rows []SAnnValidationRow
}

// SAnnVsExhaustive runs the validation on die 0 with frozen platform
// snapshots (the comparison is between optimisers, not timelines).
func SAnnVsExhaustive(e *Env) (*SAnnValidationResult, error) {
	c, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	res := &SAnnValidationResult{}
	for _, n := range []int{2, 3, 4} {
		budget := CostPerformance.Budget(n, e.Floorplan().NumCores)
		var gaps, linGaps []float64
		for trial := 0; trial < e.Trials; trial++ {
			seed := e.Seed + int64(trial)*53
			apps := workload.Mix(stats.NewRNG(seed), n)
			plat, err := core.FrozenSnapshot(c, e.CPU(), apps, seed)
			if err != nil {
				return nil, err
			}
			modelTP := func(levels []int) float64 {
				sum := 0.0
				for cix, l := range levels {
					sum += plat.IPC(cix) * plat.FreqAt(cix, l) / 1e6
				}
				return sum
			}
			exh, err := pm.NewExhaustive().Decide(e.Context(), plat, budget, stats.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			sann, err := pm.SAnn{MaxEvals: e.SAnnEvals * 5}.Decide(e.Context(), plat, budget, stats.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			lin, err := pm.NewLinOpt().Decide(e.Context(), plat, budget, stats.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			ref := modelTP(exh)
			if ref > 0 {
				gaps = append(gaps, (ref-modelTP(sann))/ref*100)
				linGaps = append(linGaps, (ref-modelTP(lin))/ref*100)
			}
		}
		res.Rows = append(res.Rows, SAnnValidationRow{
			Threads: n, GapPct: stats.Mean(gaps), LinOptGapPct: stats.Mean(linGaps),
		})
	}
	return res, nil
}

// Render formats the validation table.
func (r *SAnnValidationResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 6.5 validation: throughput gap to exhaustive search\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "threads", "SAnn gap", "LinOpt gap")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10d %11.2f%% %11.2f%%\n", row.Threads, row.GapPct, row.LinOptGapPct)
	}
	b.WriteString("(paper: SAnn within 1% of exhaustive for <=4 threads)\n")
	return b.String()
}
