package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"vasched/internal/core"
	"vasched/internal/metrics"
	"vasched/internal/pm"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// kernelSchedPM is the die×trial task kernel behind the ext-cluster
// experiment: index = die*Trials + trial selects one (die, workload)
// pair, whose schedule + power-management decision is computed in
// isolation. It exercises the full per-task stack a clustered worker has
// to reproduce — die characterisation, thread profiling, VarF&AppIPC
// assignment, and a LinOpt decision — while staying a pure function of
// (Scale, Seed, BatchSeed, index).
const kernelSchedPM = "sched-pm"

// clusterThreads is the occupancy ext-cluster schedules (16 of 20 cores,
// like the ext-sann-par study).
const clusterThreads = 16

// schedPMBlob is the kernel's wire shape.
type schedPMBlob struct {
	TPutMIPS float64 `json:"tp"`
	PowerW   float64 `json:"pw"`
}

func init() {
	RegisterKernel(kernelSchedPM, func(ctx context.Context, e *Env, index int) ([]byte, error) {
		b, err := schedPMTask(ctx, e, index/e.Trials, index%e.Trials)
		if err != nil {
			return nil, err
		}
		return json.Marshal(b)
	})
}

// schedPMTask computes one (die, trial) schedule + power-management
// decision — the unit of work behind both the sched-pm kernel (die×trial
// index space) and the adaptive die-sched kernel (per-die trial
// averages). A pure function of (Scale, Seed, BatchSeed, die, trial).
func schedPMTask(ctx context.Context, e *Env, die, trial int) (schedPMBlob, error) {
	var b schedPMBlob
	c, err := e.Chip(die)
	if err != nil {
		return b, err
	}
	// The same per-index seed formula the timeline sweeps use: the
	// result depends only on (die, trial), never on shard layout.
	seed := e.Seed + int64(die)*13 + int64(trial)*97
	apps := workload.Mix(stats.NewRNG(seed), clusterThreads)
	plat, err := core.FrozenSnapshot(c, e.CPU(), apps, seed)
	if err != nil {
		return b, err
	}
	budget := CostPerformance.Budget(clusterThreads, e.Floorplan().NumCores)
	mgr := pm.LinOpt{FitPoints: 3}
	levels, err := mgr.Decide(ctx, plat, budget, stats.NewRNG(seed))
	if err != nil {
		return b, err
	}
	b.PowerW = plat.UncorePowerW()
	for cix, l := range levels {
		b.TPutMIPS += plat.IPC(cix) * plat.FreqAt(cix, l) / 1e6
		b.PowerW += plat.PowerAt(cix, l)
	}
	return b, nil
}

// ExtClusterResult is the sharded-cluster demonstration experiment: a
// die×trial grid of schedule+PM decisions reduced to per-die statistics,
// plus an FNV-64a checksum over every task blob in index order. The
// checksum is the determinism witness: a run sharded across any number
// of workers — or degraded back to local execution, or perturbed by a
// FaultPlan — renders this result byte-for-byte identically.
type ExtClusterResult struct {
	Dies     int
	Trials   int
	Threads  int
	PTargetW float64
	// TPutMIPS and PowerW are per-die trial averages.
	TPutMIPS []float64
	PowerW   []float64
	// Checksum is the FNV-64a over all task blobs in index order.
	Checksum string
}

// ExtCluster runs the die×trial grid through the distributable kernel
// path (remote shards when the Env has a cluster attached, the local
// farm otherwise) and reduces serially in index order.
func ExtCluster(e *Env) (*ExtClusterResult, error) {
	n := e.NumDies * e.Trials
	res := &ExtClusterResult{
		Dies:     e.NumDies,
		Trials:   e.Trials,
		Threads:  clusterThreads,
		PTargetW: CostPerformance.Budget(clusterThreads, e.Floorplan().NumCores).PTargetW,
		TPutMIPS: make([]float64, e.NumDies),
		PowerW:   make([]float64, e.NumDies),
	}
	sum := fnv.New64a()
	err := e.ForDiesKernel(kernelSchedPM, n, func(index int, blob []byte) error {
		sum.Write(blob)
		var b schedPMBlob
		if err := json.Unmarshal(blob, &b); err != nil {
			return fmt.Errorf("experiments: task %d blob: %w", index, err)
		}
		die := index / e.Trials
		res.TPutMIPS[die] += b.TPutMIPS / float64(e.Trials)
		res.PowerW[die] += b.PowerW / float64(e.Trials)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Checksum = fmt.Sprintf("%016x", sum.Sum64())
	return res, nil
}

// Render formats the per-die statistics and the determinism checksum.
func (r *ExtClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: sharded cluster run (%d dies x %d trials, %d threads, LinOpt @ %.0f W)\n",
		r.Dies, r.Trials, r.Threads, r.PTargetW)
	fmt.Fprintf(&b, "modelled throughput per die: mean %.1f  min %.1f  max %.1f MIPS\n",
		stats.Mean(r.TPutMIPS), stats.Min(r.TPutMIPS), stats.Max(r.TPutMIPS))
	fmt.Fprintf(&b, "  %s\n", metrics.Sparkline(r.TPutMIPS, 60))
	fmt.Fprintf(&b, "decided chip power per die:  mean %.2f  min %.2f  max %.2f W\n",
		stats.Mean(r.PowerW), stats.Min(r.PowerW), stats.Max(r.PowerW))
	fmt.Fprintf(&b, "  %s\n", metrics.Sparkline(r.PowerW, 60))
	fmt.Fprintf(&b, "task-blob checksum: %s\n", r.Checksum)
	b.WriteString("(byte-identical at any worker/shard count, under fault injection,\n and when degraded to pure-local execution)\n")
	return b.String()
}
