package experiments

import (
	"fmt"
	"strings"

	"vasched/internal/core"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Fig14Point is one (interval, thread-count) deviation measurement.
type Fig14Point struct {
	IntervalMS   float64
	Threads      int
	DeviationPct float64
}

// Fig14Result reproduces Figure 14: the average deviation of consumed
// power from Ptarget as a function of the interval between LinOpt runs,
// for 4- and 20-thread workloads. Long intervals let program phases drift
// the power away from the last solution; at the paper's 10 ms the
// deviation is ~1%.
type Fig14Result struct {
	Points []Fig14Point
}

// Fig14 sweeps the DVFS re-solve interval. The timeline is long enough to
// cover several re-solves of the longest interval.
func Fig14(e *Env) (*Fig14Result, error) {
	intervals := []float64{2000, 1000, 500, 100, 10}
	res := &Fig14Result{}
	policy, err := sched.New(sched.NameVarFAppIPC)
	if err != nil {
		return nil, err
	}
	c, err := e.Chip(0)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{4, 20} {
		budget := CostPerformance.Budget(n, e.Floorplan().NumCores)
		for _, interval := range intervals {
			// Warm up for one full interval (thermal transients and the
			// first decision), then measure over two more; sample at
			// 1 ms like the paper.
			warm := interval
			if warm < 50 {
				warm = 50
			}
			dur := warm + 2*interval
			if dur < warm+e.SimMS {
				dur = warm + e.SimMS
			}
			var devs []float64
			trials := e.Trials
			if interval >= 500 && trials > 2 {
				// Long timelines are expensive; two trials suffice for a
				// mean deviation.
				trials = 2
			}
			for trial := 0; trial < trials; trial++ {
				seed := e.Seed + int64(trial)*31
				apps := workload.Mix(stats.NewRNG(seed), n)
				sys, err := core.New(core.Config{
					Chip: c, CPU: e.CPU(), Scheduler: policy,
					Mode: core.ModeDVFS, Manager: pm.NewLinOpt(), Budget: budget,
					DVFSIntervalMS: interval,
					WarmupMS:       warm,
					// The OS interval must not re-map threads more often
					// than the DVFS interval re-solves, or the re-map
					// (which resets levels) would mask the interval
					// effect.
					OSIntervalMS:     dur + 1,
					SampleIntervalMS: 1,
					Seed:             seed,
					DecideHist:       e.DecideHist,
				})
				if err != nil {
					return nil, err
				}
				st, err := sys.Run(apps, dur)
				if err != nil {
					return nil, err
				}
				devs = append(devs, st.PowerDeviationPct)
			}
			res.Points = append(res.Points, Fig14Point{
				IntervalMS: interval, Threads: n, DeviationPct: stats.Mean(devs),
			})
		}
	}
	return res, nil
}

// Deviation returns the measured deviation for an (interval, threads)
// pair, or -1 if absent.
func (r *Fig14Result) Deviation(intervalMS float64, threads int) float64 {
	for _, p := range r.Points {
		if p.IntervalMS == intervalMS && p.Threads == threads {
			return p.DeviationPct
		}
	}
	return -1
}

// Render formats the sweep.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14: mean |power - Ptarget| vs interval between LinOpt runs\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "interval", "4 threads", "20 threads")
	for _, interval := range []float64{2000, 1000, 500, 100, 10} {
		fmt.Fprintf(&b, "%-12s %11.2f%% %11.2f%%\n",
			fmtInterval(interval), r.Deviation(interval, 4), r.Deviation(interval, 20))
	}
	b.WriteString("(paper: falls below ~1% at the 10 ms interval)\n")
	return b.String()
}

func fmtInterval(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.0fs", ms/1000)
	}
	return fmt.Sprintf("%.0fms", ms)
}
