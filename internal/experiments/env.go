// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7). Each experiment is a function from a shared Env
// (the "lab bench": variation model, floorplan, power/thermal calibration,
// die batch, workload pool) to a typed result that renders the paper's
// plot as a text table. DESIGN.md section 3 maps experiment ids to paper
// artefacts; EXPERIMENTS.md records measured-vs-paper outcomes.
package experiments

import (
	"context"
	"fmt"

	"vasched/internal/chip"
	"vasched/internal/cluster"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/diecache"
	"vasched/internal/farm"
	"vasched/internal/floorplan"
	"vasched/internal/metrics"
	"vasched/internal/pm"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/trace"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

// PowerEnv is one of the paper's three power environments (Section 7.5):
// the chip-wide Ptarget at full (20-thread) occupancy; fewer threads scale
// the target proportionally.
type PowerEnv struct {
	Name     string
	PTargetW float64
}

// The paper's environments.
var (
	LowPower        = PowerEnv{Name: "Low Power", PTargetW: 50}
	CostPerformance = PowerEnv{Name: "Cost-Performance", PTargetW: 75}
	HighPerformance = PowerEnv{Name: "High Performance", PTargetW: 100}
)

// Budget returns the pm budget for n active threads on a CMP with numCores
// cores: Ptarget scales proportionally with occupancy (paper Section 7.5);
// the per-core cap is twice the per-core share of the full-occupancy
// target.
func (e PowerEnv) Budget(n, numCores int) pm.Budget {
	return pm.Budget{
		PTargetW:  e.PTargetW * float64(n) / float64(numCores),
		PCoreMaxW: 2 * e.PTargetW / float64(numCores),
	}
}

// Env is the shared experimental setup.
type Env struct {
	// VarCfg, DelayCfg, Power, ThermalCfg configure die generation.
	VarCfg     varmodel.Config
	DelayCfg   delay.Config
	Power      power.Model
	ThermalCfg thermal.Config
	// NumDies is the batch size for die-statistics experiments (the paper
	// uses 200 dies per experiment).
	NumDies int
	// RunDies is how many dies the time-based scheduling/DVFS sweeps
	// average over (each run costs a full timeline simulation).
	RunDies int
	// Trials is the number of random workloads per configuration (the
	// paper repeats each experiment 20 times).
	Trials int
	// SimMS is the simulated duration of each timeline run and SampleMS
	// the power-monitor cadence.
	SimMS    float64
	SampleMS float64
	// SAnnEvals is the simulated-annealing budget per invocation (the
	// paper used 1e6 for one-shot runs; sweeps need it smaller).
	SAnnEvals int
	// Seed derives all randomness; BatchSeed selects the die batch.
	Seed      int64
	BatchSeed int64
	// Scale names the stock configuration this Env was built from
	// ("quick" or "default", set by QuickEnv/DefaultEnv). It is the
	// cluster routing key: a shard request carries only (Scale, Seed,
	// BatchSeed, kernel, indices), and the worker rebuilds the same stock
	// Env from it. Leave empty for hand-customised Envs — an empty Scale
	// disables remote routing, so a custom configuration can never be
	// silently computed against a stock one on a worker.
	Scale string
	// Cluster, when non-nil, routes kernel-based die loops
	// (ForDiesKernel) to remote workers, degrading to local execution if
	// the whole cluster is unavailable. Nil runs everything locally.
	Cluster ShardRunner
	// Workers bounds the die-level parallelism of the farm engine: the
	// experiments fan independent dies (and independent timeline trials)
	// across this many goroutines. 0 means runtime.GOMAXPROCS(0); 1
	// reproduces the historical serial execution. Results are
	// bit-identical at every setting (see internal/farm).
	Workers int
	// DecideHist, when non-nil, receives one Observe(seconds) per power-
	// manager Decide call made by the DVFS experiments (passed through to
	// core.Config.DecideHist). LatencyHist is mutex-guarded, so one
	// histogram can collect across the parallel die farm. Purely
	// observational: experiment outputs are identical with or without it.
	DecideHist *metrics.LatencyHist
	// Adaptive, when non-nil, switches the ext-adapt experiment into
	// adaptive stratified sampling with the given settings (nil — and
	// every other experiment — evaluates the exact full population, so
	// attaching a cluster or changing Workers still cannot perturb the
	// classic goldens). See internal/adapt and DESIGN.md §12.
	Adaptive *AdaptiveConfig

	fp      *floorplan.Floorplan
	cpu     *cpusim.Model
	gen     *varmodel.Generator
	pool    []*workload.AppProfile
	dies    *diecache.Cache
	cfgHash uint64
	ctx     context.Context
}

// sharedDies is the process-wide characterised-die cache: the ~15
// experiments (and, in cmd/vaschedd, concurrent jobs) that share a die
// batch pay the GRF + thermal-fixed-point characterisation once per die.
// Entries are content-addressed by (config hash, batch seed, die index),
// so Envs with identical model configuration share dies no matter how
// they were constructed. Capped so a long-running service cannot grow
// without bound; rebuilt dies are bit-identical, so eviction only costs
// time. An on-disk blob layer (SetSharedDieCacheDir) lets a restarted
// service skip re-sampling entirely.
var sharedDies = diecache.New(1024, "")

// SharedDieCacheStats exposes the process-wide hit/miss counters (for
// the vaschedd /metrics endpoint and the warm-run audits in tests).
func SharedDieCacheStats() (hits, misses int64) {
	st := sharedDies.Stats()
	return st.Hits, st.Misses
}

// SharedDieCacheStatsFull exposes every counter the shared cache keeps,
// including the disk-layer ones.
func SharedDieCacheStatsFull() diecache.Stats { return sharedDies.Stats() }

// SetSharedDieCacheDir points the shared cache's blob store at dir
// (empty disables it). Intended for process start-up (vaschedd's
// -die-cache-dir flag) before experiments run.
func SetSharedDieCacheDir(dir string) { sharedDies.SetDir(dir) }

// DefaultEnv returns the paper-scale configuration (200 dies for the
// statistics experiments; the timeline sweeps average over a few dies and
// ten workloads each, which already gives stable means).
func DefaultEnv() (*Env, error) {
	e := &Env{
		VarCfg:     varmodel.DefaultConfig(),
		DelayCfg:   delay.DefaultConfig(),
		Power:      power.DefaultModel(varmodel.DefaultConfig().Tech),
		ThermalCfg: thermal.DefaultConfig(),
		NumDies:    200,
		RunDies:    3,
		Trials:     10,
		SimMS:      100,
		SampleMS:   1,
		SAnnEvals:  20000,
		Seed:       2008,
		BatchSeed:  1,
		Scale:      "default",
	}
	return e, e.init()
}

// QuickEnv returns a scaled-down configuration for tests and benchmarks:
// fewer dies, fewer trials, shorter timelines, coarser sampling.
func QuickEnv() (*Env, error) {
	e := &Env{
		VarCfg:     varmodel.DefaultConfig(),
		DelayCfg:   delay.DefaultConfig(),
		Power:      power.DefaultModel(varmodel.DefaultConfig().Tech),
		ThermalCfg: thermal.DefaultConfig(),
		NumDies:    12,
		RunDies:    1,
		Trials:     3,
		SimMS:      30,
		SampleMS:   5,
		SAnnEvals:  4000,
		Seed:       2008,
		BatchSeed:  1,
		Scale:      "quick",
	}
	e.VarCfg.GridRows, e.VarCfg.GridCols = 128, 128
	return e, e.init()
}

func (e *Env) init() error {
	if err := e.VarCfg.Validate(); err != nil {
		return err
	}
	e.fp = floorplan.New20CoreCMP()
	gen, err := varmodel.NewGenerator(e.VarCfg)
	if err != nil {
		return err
	}
	e.gen = gen
	e.pool = workload.SPEC()
	cpu, err := cpusim.New(cpusim.DefaultCoreConfig(), e.pool)
	if err != nil {
		return err
	}
	e.cpu = cpu
	if e.dies == nil {
		e.dies = sharedDies
	}
	// The canonical config hash covers every input that shapes die
	// characterisation: Envs with equal hashes produce bit-identical dies
	// and may share cache entries (in memory, on disk, and across the
	// cluster); changing any model field — even adding a new one —
	// changes the hash and strands the old entries instead of aliasing
	// them.
	hash, err := diecache.ConfigHash(e.VarCfg, e.DelayCfg, e.Power, e.ThermalCfg)
	if err != nil {
		return fmt.Errorf("experiments: hashing model config: %w", err)
	}
	e.cfgHash = hash
	return nil
}

// ConfigHash returns the canonical hash of the Env's model configuration
// — the content-address prefix of every die this Env generates. Shard
// requests carry it so a worker whose rebuilt Env disagrees (version
// skew, divergent defaults) refuses the shard instead of silently
// computing different dies.
func (e *Env) ConfigHash() uint64 { return e.cfgHash }

// Context returns the Env's cancellation context (Background if none was
// attached). Long die loops run through the farm engine, which checks it
// between tasks, so cancelling stops in-flight experiment work.
func (e *Env) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// SetContext attaches a cancellation context to the Env.
func (e *Env) SetContext(ctx context.Context) { e.ctx = ctx }

// ForDies runs fn(ctx, die, chip) for every die in [0, n) through the
// farm worker pool (Workers-wide). Characterised dies come from the
// shared cache. fn must only write to state addressed by its die index;
// callers reduce the slots serially afterwards, which keeps parallel
// results bit-identical to the serial path. The callback's context
// carries the per-task tracing span (fn must not let it affect results).
func (e *Env) ForDies(n int, fn func(ctx context.Context, die int, c *chip.Chip) error) error {
	return farm.Map(e.Context(), e.Workers, n, func(ctx context.Context, die int) error {
		c, err := e.Chip(die)
		if err != nil {
			return err
		}
		return fn(ctx, die, c)
	})
}

// ForTasks runs fn(ctx, i) for every task index in [0, n) through the
// farm worker pool — the die×trial fan-out used by the timeline sweeps.
// The callback's context carries the per-task tracing span.
func (e *Env) ForTasks(n int, fn func(ctx context.Context, i int) error) error {
	return farm.Map(e.Context(), e.Workers, n, fn)
}

// ShardRunner distributes a kernel's index space across remote workers
// and returns one blob per index, in index order. RunIndices is the same
// contract over an explicit index list (the adaptive driver's stratum
// plans dispatch through it). internal/cluster's Client is the production
// implementation.
type ShardRunner interface {
	Run(ctx context.Context, job cluster.Job, n int) ([][]byte, error)
	RunIndices(ctx context.Context, job cluster.Job, indices []int) ([][]byte, error)
}

// ForDiesKernel runs the registered kernel for every index in [0, n) and
// reduces the serialized results serially in index order. This is the
// distributable sibling of ForDies: with a Cluster attached (and a stock
// Scale), the index space is sharded across remote workers; otherwise —
// or when the whole cluster is down — the kernel runs locally through
// the farm pool. Both paths produce byte-identical blobs, so the reduce
// step (and therefore the experiment's rendered report) cannot tell them
// apart; clustering, shard size, retries, hedging, and degradation are
// all invisible in the output.
func (e *Env) ForDiesKernel(name string, n int, reduce func(index int, blob []byte) error) error {
	clustered := e.Cluster != nil && e.Scale != ""
	path := "local"
	if clustered {
		path = "cluster"
	}
	ctx, sp := trace.Start(e.Context(), "env.kernel",
		trace.String("kernel", name), trace.Int("n", n), trace.String("path", path))
	defer sp.End()
	if clustered {
		job := cluster.Job{Kernel: name, Scale: e.Scale, Seed: e.Seed, BatchSeed: e.BatchSeed, ConfigHash: e.cfgHash}
		blobs, err := e.Cluster.Run(ctx, job, n)
		if err == nil {
			return reduceBlobs(blobs, reduce)
		}
		// Cancellation is not degradation: propagate it.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		// Graceful degradation: the cluster client has already counted
		// the failed run; recompute everything locally.
		trace.Event(ctx, "cluster.degrade")
	}
	k, err := kernelByName(name)
	if err != nil {
		return err
	}
	blobs, err := farm.Collect(ctx, e.Workers, n, func(ctx context.Context, i int) ([]byte, error) {
		return k(ctx, e, i)
	})
	if err != nil {
		return err
	}
	return reduceBlobs(blobs, reduce)
}

// ForDiesKernelIndices is ForDiesKernel over an explicit index list: the
// registered kernel runs for exactly the given indices (cluster-sharded
// when attached, local farm otherwise) and reduce sees the blobs serially
// in argument order (pos is the position within indices; the caller maps
// pos back to indices[pos]). This is the fan-out the adaptive sampling
// driver uses to evaluate one round's stratum plan; ctx is taken as an
// argument so round trace spans parent the kernel spans.
func (e *Env) ForDiesKernelIndices(ctx context.Context, name string, indices []int, reduce func(pos int, blob []byte) error) error {
	clustered := e.Cluster != nil && e.Scale != ""
	path := "local"
	if clustered {
		path = "cluster"
	}
	ctx, sp := trace.Start(ctx, "env.kernel",
		trace.String("kernel", name), trace.Int("n", len(indices)), trace.String("path", path))
	defer sp.End()
	if clustered {
		job := cluster.Job{Kernel: name, Scale: e.Scale, Seed: e.Seed, BatchSeed: e.BatchSeed, ConfigHash: e.cfgHash}
		blobs, err := e.Cluster.RunIndices(ctx, job, indices)
		if err == nil {
			return reduceBlobs(blobs, reduce)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		trace.Event(ctx, "cluster.degrade")
	}
	k, err := kernelByName(name)
	if err != nil {
		return err
	}
	blobs, err := farm.Collect(ctx, e.Workers, len(indices), func(ctx context.Context, i int) ([]byte, error) {
		return k(ctx, e, indices[i])
	})
	if err != nil {
		return err
	}
	return reduceBlobs(blobs, reduce)
}

// reduceBlobs applies reduce serially in index order.
func reduceBlobs(blobs [][]byte, reduce func(index int, blob []byte) error) error {
	for i, b := range blobs {
		if err := reduce(i, b); err != nil {
			return err
		}
	}
	return nil
}

// Floorplan returns the shared 20-core floorplan.
func (e *Env) Floorplan() *floorplan.Floorplan { return e.fp }

// CPU returns the calibrated core model.
func (e *Env) CPU() *cpusim.Model { return e.cpu }

// Apps returns the SPEC application pool.
func (e *Env) Apps() []*workload.AppProfile { return e.pool }

// Chip returns (building and caching on first use) the characterised die
// with the given batch index. Dies come from the process-wide
// content-addressed cache keyed by (config hash, BatchSeed, die);
// concurrent requests for the same die share one characterisation, and
// with a blob directory configured a cache miss tries the disk layer
// before re-sampling. Safe for concurrent use: the generator serialises
// its own FFT scratch, and its pair cache keeps even/odd siblings on the
// batched sampling path even when dies are requested one at a time.
func (e *Env) Chip(die int) (*chip.Chip, error) {
	key := diecache.Key{ConfigHash: e.cfgHash, BatchSeed: e.BatchSeed, Die: die}
	v, err := e.dies.Get(e.Context(), key,
		func() (*varmodel.DieMaps, error) {
			return e.gen.Die(e.BatchSeed, die)
		},
		func(maps *varmodel.DieMaps) (any, error) {
			c, err := chip.Build(maps, e.fp, e.DelayCfg, e.Power, e.ThermalCfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: building die %d: %w", die, err)
			}
			return c, nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*chip.Chip), nil
}

// DieMaps returns die's raw variation maps (Vth/Leff fields) without
// paying for full chip characterisation — the basis of the adaptive
// sampler's cheap severity proxy. Like Chip, the maps are a pure function
// of (BatchSeed, die).
func (e *Env) DieMaps(die int) (*varmodel.DieMaps, error) {
	return e.gen.Die(e.BatchSeed, die)
}

// Manager instantiates a power manager by paper name, with the Env's SAnn
// budget and the given objective.
func (e *Env) Manager(name string, obj pm.Objective) (pm.Manager, error) {
	switch name {
	case pm.NameFoxton:
		return pm.NewFoxton(), nil
	case pm.NameLinOpt:
		return pm.LinOpt{FitPoints: 3, Objective: obj}, nil
	case pm.NameSAnn:
		return pm.SAnn{MaxEvals: e.SAnnEvals, Objective: obj}, nil
	case pm.NameExhaustive:
		return pm.Exhaustive{Objective: obj}, nil
	case pm.NameOracle:
		return pm.Exhaustive{UseTrueIPC: true, Objective: obj}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown manager %q", name)
	}
}
