package experiments

import (
	"strings"
	"testing"

	"vasched/internal/adapt"
	"vasched/internal/cluster"
	"vasched/internal/stats"
)

// dynamicExperimentIDs are the scenario-engine experiments; the acceptance
// proof below pins each one byte-identical across worker counts, cluster
// shards, and the adaptive-exact path.
var dynamicExperimentIDs = []string{"ext-transient", "ext-phase-mig", "ext-wearout"}

func renderDynamic(t *testing.T, id string, workers int, c *cluster.Client) string {
	t.Helper()
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = workers
	if c != nil {
		e.Cluster = c
	}
	r, err := Run(id, e)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return r.Render()
}

// TestDynamicDeterminismAcrossWorkersAndCluster is the ISSUE's acceptance
// proof: every dynamic experiment renders byte-identically run locally at
// 1, 2, and 4 farm workers and through 1, 2, and 4 cluster shard workers.
func TestDynamicDeterminismAcrossWorkersAndCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism proof runs full kernels")
	}
	for _, id := range dynamicExperimentIDs {
		local := renderDynamic(t, id, 1, nil)
		for _, w := range []int{2, 4} {
			if got := renderDynamic(t, id, w, nil); got != local {
				t.Fatalf("%s at %d workers diverges:\n%s\nvs\n%s", id, w, got, local)
			}
		}
		for _, w := range []int{1, 2, 4} {
			c := startCluster(t, w, cluster.Options{ShardSize: 3})
			if got := renderDynamic(t, id, 4, c); got != local {
				t.Fatalf("%s through %d shard workers diverges:\n%s\nvs\n%s", id, w, got, local)
			}
		}
	}
}

// The adaptive sampler's exact mode targeting dyn-tput must reproduce the
// full-batch transient experiment's mean MIPS bit-for-bit: both paths
// evaluate the identical die-transient kernel blobs over the identical
// batch and reduce in index order.
func TestExtAdaptExactDynTputMatchesExtTransient(t *testing.T) {
	if testing.Short() {
		t.Skip("exact mode evaluates the full population")
	}
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ExtTransient(e)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *ExtAdaptResult {
		ea, err := QuickEnv()
		if err != nil {
			t.Fatal(err)
		}
		ea.Workers = workers
		ea.Adaptive = &AdaptiveConfig{Metric: "dyn-tput", Config: adapt.Config{Exact: true}}
		res, err := ExtAdapt(ea)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if res.Sampling.Mean != stats.Mean(tr.MIPS) {
		t.Fatalf("adaptive-exact dyn-tput mean %v != ext-transient mean %v",
			res.Sampling.Mean, stats.Mean(tr.MIPS))
	}
	if res.Unit != "MIPS" {
		t.Fatalf("dyn-tput unit = %q", res.Unit)
	}
	if got := run(8).Render(); got != res.Render() {
		t.Fatalf("adaptive-exact dyn-tput render differs at 8 workers:\n%s\nvs\n%s", got, res.Render())
	}
}

// Sanity anchors on the rendered physics, independent of the goldens: the
// transient run genuinely trips the governor, the migration penalty sweep
// monotonically costs throughput, and the aged dies bin no faster.
func TestDynamicPhysicsAnchors(t *testing.T) {
	e, err := QuickEnv()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ExtTransient(e)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(tr.Emergencies) <= 0 || stats.Mean(tr.ThrottledMS) <= 0 {
		t.Fatalf("governor never engaged at quick scale: %+v", tr)
	}
	if stats.Mean(tr.MaxTempC) <= extDynEmergencyC {
		t.Fatalf("mean peak %v below the trip threshold yet emergencies counted", stats.Mean(tr.MaxTempC))
	}

	pm, err := ExtPhaseMig(e)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(pm.Migrations) <= 0 || stats.Mean(pm.PhaseSwitches) <= 0 {
		t.Fatalf("no migrations or phase switches observed: %+v", pm)
	}
	for pi := 1; pi < len(pm.PenaltiesMS); pi++ {
		if stats.Mean(pm.MIPS[pi]) >= stats.Mean(pm.MIPS[pi-1]) {
			t.Fatalf("penalty %v ms not costlier than %v ms", pm.PenaltiesMS[pi], pm.PenaltiesMS[pi-1])
		}
	}

	wo, err := ExtWearout(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(wo.Years) != len(extDynYears)+1 || wo.Years[0] != 0 {
		t.Fatalf("epoch years = %v", wo.Years)
	}
	for i := 1; i < len(wo.Years); i++ {
		if wo.DVthMaxMV[i] <= wo.DVthMaxMV[i-1] {
			t.Fatalf("Vth drift not growing with age: %v", wo.DVthMaxMV)
		}
		if wo.MinFmaxGHz[i] > wo.MinFmaxGHz[0] {
			t.Fatalf("aged die bins faster than fresh: %v", wo.MinFmaxGHz)
		}
	}
	if !strings.Contains(wo.Render(), "end-of-life throughput") {
		t.Fatalf("wearout render missing summary:\n%s", wo.Render())
	}
}
