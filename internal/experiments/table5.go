package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table5Row is one application's reference characteristics.
type Table5Row struct {
	App string
	// DynPowerW is the average core dynamic power at 4 GHz / 1 V as the
	// model produces it, and PaperDynPowerW the paper's Table 5 value.
	DynPowerW      float64
	PaperDynPowerW float64
	// IPC is the model's IPC at 4 GHz; PaperIPC the paper's value.
	IPC      float64
	PaperIPC float64
}

// Table5Result reproduces the paper's Table 5.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 measures per-application dynamic power and IPC at the reference
// operating point (4 GHz, 1 V) on a variation-free core model, the way the
// paper characterises its workloads.
func Table5(e *Env) (*Table5Result, error) {
	res := &Table5Result{}
	t := e.VarCfg.Tech
	for _, app := range e.Apps() {
		ipc, err := e.CPU().SteadyIPC(app, t.FNominalHz)
		if err != nil {
			return nil, err
		}
		dyn := e.Power.DynamicCoreW(app.DynPowerW, app.IPCNom, t.VddNominal, t.FNominalHz, ipc)
		res.Rows = append(res.Rows, Table5Row{
			App:            app.Name,
			DynPowerW:      dyn,
			PaperDynPowerW: app.DynPowerW,
			IPC:            ipc,
			PaperIPC:       app.IPCNom,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].App < res.Rows[j].App })
	return res, nil
}

// Render formats the table.
func (r *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: average dynamic power (W) at 4 GHz / 1 V and IPC per application\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %8s %8s\n", "app", "dynW(model)", "dynW(paper)", "IPC", "IPC(ppr)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %8.2f %8.2f\n",
			row.App, row.DynPowerW, row.PaperDynPowerW, row.IPC, row.PaperIPC)
	}
	return b.String()
}
