// Package floorplan describes the die geometry: the placement of cores,
// their internal units, and the shared L2 banks, in normalised chip
// coordinates. The variation model samples parameter maps over this
// geometry, the thermal model derives its RC network from block adjacency,
// and the critical-path model asks which region of the map each pipeline
// unit occupies.
//
// The default layout reproduces the paper's Figure 3: four rows of five
// cores with an L2 band above the first and third rows.
package floorplan

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle in normalised chip coordinates
// ([0,1] x [0,1], origin at the top-left of Figure 3).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area in normalised units.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether point (x, y) lies inside the rectangle
// (inclusive of the low edges, exclusive of the high edges).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// SharedEdge returns the length of the boundary shared between two
// rectangles that touch but do not overlap; it returns 0 if they do not
// touch. The thermal model uses this as the lateral coupling width.
func (r Rect) SharedEdge(o Rect) float64 {
	const eps = 1e-9
	// Vertical contact (left/right edges touch).
	if math.Abs(r.X1-o.X0) < eps || math.Abs(o.X1-r.X0) < eps {
		lo := math.Max(r.Y0, o.Y0)
		hi := math.Min(r.Y1, o.Y1)
		if hi > lo {
			return hi - lo
		}
	}
	// Horizontal contact (top/bottom edges touch).
	if math.Abs(r.Y1-o.Y0) < eps || math.Abs(o.Y1-r.Y0) < eps {
		lo := math.Max(r.X0, o.X0)
		hi := math.Min(r.X1, o.X1)
		if hi > lo {
			return hi - lo
		}
	}
	return 0
}

// UnitKind identifies the functional unit a block implements. The split
// matters because logic and SRAM stages have different critical-path
// statistics and different dynamic-power activity.
type UnitKind int

// The unit kinds of an Alpha 21264-like core plus the shared L2.
const (
	UnitFrontend UnitKind = iota // fetch, decode, branch prediction
	UnitIntExec                  // integer scheduler + ALUs + register file
	UnitFPExec                   // floating-point scheduler + units
	UnitLSU                      // load-store unit
	UnitL1I                      // L1 instruction cache
	UnitL1D                      // L1 data cache
	UnitL2                       // shared L2 bank
	numUnitKinds
)

// String returns the unit's short name.
func (k UnitKind) String() string {
	switch k {
	case UnitFrontend:
		return "FE"
	case UnitIntExec:
		return "INT"
	case UnitFPExec:
		return "FP"
	case UnitLSU:
		return "LSU"
	case UnitL1I:
		return "L1I"
	case UnitL1D:
		return "L1D"
	case UnitL2:
		return "L2"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// IsSRAM reports whether the unit is dominated by memory arrays, which
// changes its critical-path model (6T-cell access paths average over fewer
// devices and therefore see more random variation).
func (k UnitKind) IsSRAM() bool {
	switch k {
	case UnitL1I, UnitL1D, UnitL2:
		return true
	}
	return false
}

// CoreUnitKinds lists the units inside one core, in layout order.
func CoreUnitKinds() []UnitKind {
	return []UnitKind{UnitFrontend, UnitL1I, UnitIntExec, UnitLSU, UnitFPExec, UnitL1D}
}

// Block is one placed unit: a core sub-unit or an L2 bank.
type Block struct {
	// Name is unique within the floorplan, e.g. "C7.INT" or "L2.1".
	Name string
	// Kind is the functional unit type.
	Kind UnitKind
	// Core is the owning core index, or -1 for shared L2 banks.
	Core int
	// R is the block's position.
	R Rect
}

// Floorplan is a complete die layout.
type Floorplan struct {
	NumCores int
	Blocks   []Block
	// DieAreaMM2 is the physical die area the normalised square maps to.
	DieAreaMM2 float64

	coreRects []Rect
	byCore    [][]int // indices into Blocks per core
	l2Blocks  []int
}

// DieEdgeMM returns the physical edge length of the (square) die in mm.
func (f *Floorplan) DieEdgeMM() float64 { return math.Sqrt(f.DieAreaMM2) }

// CoreRect returns the bounding rectangle of core c.
func (f *Floorplan) CoreRect(c int) Rect { return f.coreRects[c] }

// CoreBlocks returns the blocks belonging to core c.
func (f *Floorplan) CoreBlocks(c int) []Block {
	idx := f.byCore[c]
	out := make([]Block, len(idx))
	for i, b := range idx {
		out[i] = f.Blocks[b]
	}
	return out
}

// L2Blocks returns the shared L2 bank blocks.
func (f *Floorplan) L2Blocks() []Block {
	out := make([]Block, len(f.l2Blocks))
	for i, b := range f.l2Blocks {
		out[i] = f.Blocks[b]
	}
	return out
}

// BlockAt returns the index of the block containing normalised point
// (x, y), or -1 if the point falls outside every block.
func (f *Floorplan) BlockAt(x, y float64) int {
	for i, b := range f.Blocks {
		if b.R.Contains(x, y) {
			return i
		}
	}
	return -1
}

// New20CoreCMP builds the paper's Figure 3 layout: 20 cores in four rows of
// five, with an L2 band above rows one and three, on a 340 mm^2 die.
func New20CoreCMP() *Floorplan {
	return NewCMP(20, 340)
}

// NewCMP builds a CMP floorplan with numCores cores (arranged in rows of
// five, or fewer for small configurations) interleaved with L2 bands in the
// style of Figure 3. Die area is in mm^2.
func NewCMP(numCores int, dieAreaMM2 float64) *Floorplan {
	if numCores <= 0 {
		panic(fmt.Sprintf("floorplan: invalid core count %d", numCores))
	}
	cols := 5
	if numCores < 5 {
		cols = numCores
	}
	rows := (numCores + cols - 1) / cols

	// One L2 band above every pair of core rows (Figure 3 has two bands
	// for four rows).
	l2Bands := (rows + 1) / 2
	const l2BandH = 0.10
	coreRowH := (1.0 - float64(l2Bands)*l2BandH) / float64(rows)
	coreW := 1.0 / float64(cols)

	f := &Floorplan{
		NumCores:   numCores,
		DieAreaMM2: dieAreaMM2,
		coreRects:  make([]Rect, numCores),
		byCore:     make([][]int, numCores),
	}

	y := 0.0
	core := 0
	for row := 0; row < rows; row++ {
		if row%2 == 0 {
			// L2 band split into two side-by-side banks.
			half := 0.5
			f.l2Blocks = append(f.l2Blocks, len(f.Blocks))
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("L2.%d", len(f.l2Blocks)-1),
				Kind: UnitL2, Core: -1,
				R: Rect{0, y, half, y + l2BandH},
			})
			f.l2Blocks = append(f.l2Blocks, len(f.Blocks))
			f.Blocks = append(f.Blocks, Block{
				Name: fmt.Sprintf("L2.%d", len(f.l2Blocks)-1),
				Kind: UnitL2, Core: -1,
				R: Rect{half, y, 1, y + l2BandH},
			})
			y += l2BandH
		}
		for col := 0; col < cols && core < numCores; col++ {
			cr := Rect{
				X0: float64(col) * coreW, Y0: y,
				X1: float64(col+1) * coreW, Y1: y + coreRowH,
			}
			f.coreRects[core] = cr
			addCoreUnits(f, core, cr)
			core++
		}
		y += coreRowH
	}
	return f
}

// addCoreUnits subdivides a core rectangle into its six units, laid out in
// a 2-wide, 3-tall grid.
func addCoreUnits(f *Floorplan, core int, cr Rect) {
	kinds := CoreUnitKinds()
	uw := cr.Width() / 2
	uh := cr.Height() / 3
	for i, k := range kinds {
		col := i % 2
		row := i / 2
		b := Block{
			Name: fmt.Sprintf("C%d.%s", core+1, k),
			Kind: k,
			Core: core,
			R: Rect{
				X0: cr.X0 + float64(col)*uw, Y0: cr.Y0 + float64(row)*uh,
				X1: cr.X0 + float64(col+1)*uw, Y1: cr.Y0 + float64(row+1)*uh,
			},
		}
		f.byCore[core] = append(f.byCore[core], len(f.Blocks))
		f.Blocks = append(f.Blocks, b)
	}
}
