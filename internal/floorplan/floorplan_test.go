package floorplan

import (
	"math"
	"strings"
	"testing"
)

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 0.5, 0.25}
	if r.Width() != 0.5 || r.Height() != 0.25 {
		t.Fatalf("dims: %v x %v", r.Width(), r.Height())
	}
	if math.Abs(r.Area()-0.125) > 1e-15 {
		t.Fatalf("area: %v", r.Area())
	}
	if !r.Contains(0, 0) || r.Contains(0.5, 0.1) || r.Contains(0.2, 0.25) {
		t.Fatal("containment semantics wrong (lo inclusive, hi exclusive)")
	}
}

func TestSharedEdge(t *testing.T) {
	a := Rect{0, 0, 0.5, 0.5}
	b := Rect{0.5, 0, 1, 0.5} // right neighbour, full side shared
	if got := a.SharedEdge(b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("vertical contact = %v, want 0.5", got)
	}
	c := Rect{0, 0.5, 0.25, 1} // below, quarter of width shared
	if got := a.SharedEdge(c); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("horizontal contact = %v, want 0.25", got)
	}
	d := Rect{0.6, 0.6, 1, 1} // diagonal, no contact
	if got := a.SharedEdge(d); got != 0 {
		t.Fatalf("no contact expected, got %v", got)
	}
	// Symmetry.
	if a.SharedEdge(b) != b.SharedEdge(a) {
		t.Fatal("SharedEdge not symmetric")
	}
}

func TestUnitKindStringsAndSRAM(t *testing.T) {
	if UnitL1D.String() != "L1D" || UnitIntExec.String() != "INT" {
		t.Fatal("unit names wrong")
	}
	if !UnitL2.IsSRAM() || !UnitL1I.IsSRAM() || UnitFrontend.IsSRAM() {
		t.Fatal("SRAM classification wrong")
	}
	if !strings.HasPrefix(UnitKind(99).String(), "UnitKind(") {
		t.Fatal("unknown kind should format diagnostically")
	}
}

func Test20CoreLayout(t *testing.T) {
	f := New20CoreCMP()
	if f.NumCores != 20 {
		t.Fatalf("NumCores = %d", f.NumCores)
	}
	if f.DieAreaMM2 != 340 {
		t.Fatalf("area = %v", f.DieAreaMM2)
	}
	// 20 cores x 6 units + 4 L2 banks.
	if len(f.Blocks) != 20*6+4 {
		t.Fatalf("block count = %d", len(f.Blocks))
	}
	if len(f.L2Blocks()) != 4 {
		t.Fatalf("L2 banks = %d", len(f.L2Blocks()))
	}
	for c := 0; c < 20; c++ {
		if got := len(f.CoreBlocks(c)); got != 6 {
			t.Fatalf("core %d has %d blocks", c, got)
		}
	}
}

func TestLayoutCoversDieWithoutOverlap(t *testing.T) {
	f := New20CoreCMP()
	total := 0.0
	for _, b := range f.Blocks {
		total += b.R.Area()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("blocks cover %v of the die, want 1", total)
	}
	// Spot-check disjointness on a sample grid: each point is in exactly
	// one block.
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			x := (float64(i) + 0.5) / 40
			y := (float64(j) + 0.5) / 40
			count := 0
			for _, b := range f.Blocks {
				if b.R.Contains(x, y) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("point (%v,%v) in %d blocks", x, y, count)
			}
		}
	}
}

func TestBlockAt(t *testing.T) {
	f := New20CoreCMP()
	idx := f.BlockAt(0.05, 0.05)
	if idx < 0 || f.Blocks[idx].Kind != UnitL2 {
		t.Fatalf("top-left should be L2, got %v", idx)
	}
	if got := f.BlockAt(1.5, 0.5); got != -1 {
		t.Fatalf("outside point returned %d", got)
	}
}

func TestCoreBlocksBelongToCoreRect(t *testing.T) {
	f := New20CoreCMP()
	for c := 0; c < f.NumCores; c++ {
		cr := f.CoreRect(c)
		var area float64
		for _, b := range f.CoreBlocks(c) {
			if b.Core != c {
				t.Fatalf("block %s assigned to core %d", b.Name, b.Core)
			}
			if b.R.X0 < cr.X0-1e-9 || b.R.X1 > cr.X1+1e-9 ||
				b.R.Y0 < cr.Y0-1e-9 || b.R.Y1 > cr.Y1+1e-9 {
				t.Fatalf("block %s escapes its core rect", b.Name)
			}
			area += b.R.Area()
		}
		if math.Abs(area-cr.Area()) > 1e-9 {
			t.Fatalf("core %d units cover %v of %v", c, area, cr.Area())
		}
	}
}

func TestDieEdge(t *testing.T) {
	f := New20CoreCMP()
	if got := f.DieEdgeMM(); math.Abs(got-math.Sqrt(340)) > 1e-12 {
		t.Fatalf("edge = %v", got)
	}
}

func TestSmallCMPs(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 7, 10, 16} {
		f := NewCMP(n, 100)
		if f.NumCores != n {
			t.Fatalf("n=%d: NumCores = %d", n, f.NumCores)
		}
		total := 0.0
		for _, b := range f.Blocks {
			total += b.R.Area()
		}
		// Small layouts may have an unused gap where a core row is not
		// full; coverage must never exceed the die.
		if total > 1+1e-9 {
			t.Fatalf("n=%d: blocks cover %v > 1", n, total)
		}
		for c := 0; c < n; c++ {
			if len(f.CoreBlocks(c)) != 6 {
				t.Fatalf("n=%d: core %d has %d units", n, c, len(f.CoreBlocks(c)))
			}
		}
	}
}

func TestInvalidCoreCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCMP(0, 100)
}

func TestCoreUnitKindsComplete(t *testing.T) {
	kinds := CoreUnitKinds()
	if len(kinds) != 6 {
		t.Fatalf("core has %d unit kinds", len(kinds))
	}
	seen := map[UnitKind]bool{}
	for _, k := range kinds {
		if k == UnitL2 {
			t.Fatal("L2 is not a core unit")
		}
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
	}
}
