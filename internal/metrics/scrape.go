package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a parsed Prometheus text exposition — the read side of
// Registry.Render. The load-test harness scrapes a live vaschedd's
// /metrics and asserts SLO percentiles against the parsed histograms
// instead of re-grepping exposition text ad hoc.
type Scrape struct {
	// Types maps a metric family to its declared TYPE (counter, gauge,
	// histogram).
	Types map[string]string
	// Samples maps each full series name (family plus label body, as
	// rendered) to its value. Histogram _bucket/_sum/_count series are
	// included raw.
	Samples map[string]float64
}

// ParseExposition parses a Prometheus text-format scrape (the subset
// Registry.Render and the vaschedd /metrics endpoint emit: TYPE
// comments, single-line samples, no escaping inside label values beyond
// what %q produces for metric names used in this repository).
func ParseExposition(text string) (*Scrape, error) {
	s := &Scrape{Types: map[string]string{}, Samples: map[string]float64{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				s.Types[f[2]] = f[3]
			}
			continue
		}
		// The value is the last space-separated field; the series name is
		// everything before it (label values may contain spaces).
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("metrics: malformed sample line %q", line)
		}
		name, raw := strings.TrimSpace(line[:i]), line[i+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value %q in %q", raw, line)
		}
		s.Samples[name] = v
	}
	return s, nil
}

// Value returns the sum of every series in the family (a family with one
// unlabelled series returns that series' value). ok is false when the
// family has no samples.
func (s *Scrape) Value(family string) (sum float64, ok bool) {
	for name, v := range s.Samples {
		f, _ := splitName(name)
		if f == family {
			sum += v
			ok = true
		}
	}
	return sum, ok
}

// Series returns the family's samples keyed by label body ("" for an
// unlabelled series).
func (s *Scrape) Series(family string) map[string]float64 {
	out := map[string]float64{}
	for name, v := range s.Samples {
		f, labels := splitName(name)
		if f == family {
			out[labels] = v
		}
	}
	return out
}

// Histogram reassembles the family's histogram, merged across label
// sets: per-le cumulative counts sum across series (the sum of
// cumulative counts is the cumulative count of the merged population),
// as do _sum and _count. ok is false when the family has no bucket
// samples. Merging assumes every series of the family shares one bucket
// layout, which Registry guarantees (all LatencyHists use the same
// bounds); a layout mismatch produces a non-monotone Cum that
// BucketQuantile rejects with NaN rather than a silently wrong answer.
func (s *Scrape) Histogram(family string) (*HistSnapshot, bool) {
	perLE := map[float64]int64{}
	infCum := int64(0)
	found := false
	for name, v := range s.Samples {
		f, labels := splitName(name)
		switch f {
		case family + "_bucket":
			le, ok := labelValue(labels, "le")
			if !ok {
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			found = true
			if le == "+Inf" || bound > 1e300 {
				infCum += int64(v)
			} else {
				perLE[bound] += int64(v)
			}
		}
	}
	if !found {
		return nil, false
	}
	snap := &HistSnapshot{}
	for b := range perLE {
		snap.Bounds = append(snap.Bounds, b)
	}
	sort.Float64s(snap.Bounds)
	snap.Cum = make([]int64, len(snap.Bounds)+1)
	for i, b := range snap.Bounds {
		snap.Cum[i] = perLE[b]
	}
	snap.Cum[len(snap.Bounds)] = infCum
	sum, _ := s.Value(family + "_sum")
	cnt, _ := s.Value(family + "_count")
	snap.Sum = sum
	snap.Count = int64(cnt)
	return snap, true
}

// LabelValue extracts one label's value from a rendered label body like
// `experiment="fig4",le="0.064"` — the keys Series returns. ok is false
// when the label is absent or the body is malformed.
func LabelValue(labels, key string) (string, bool) {
	return labelValue(labels, key)
}

// labelValue extracts one label's value from a rendered label body like
// `experiment="fig4",le="0.064"`.
func labelValue(labels, key string) (string, bool) {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			return "", false
		}
		name := rest[:eq]
		end := strings.IndexByte(rest[eq+2:], '"')
		if end < 0 {
			return "", false
		}
		val := rest[eq+2 : eq+2+end]
		if name == key {
			return val, true
		}
		rest = rest[eq+2+end+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return "", false
}
