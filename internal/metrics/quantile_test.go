package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketQuantileTable pins the interpolation arithmetic on
// hand-computed cases.
func TestBucketQuantileTable(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name string
		q    float64
		cum  []int64
		want float64
	}{
		// 10 observations uniformly in one bucket (1,2]: rank q*10
		// interpolates linearly across the bucket.
		{"median mid-bucket", 0.5, []int64{0, 10, 10, 10}, 1.5},
		{"p90 mid-bucket", 0.9, []int64{0, 10, 10, 10}, 1.9},
		// 4 in (0,1], 4 in (1,2], 2 in (2,4]: p50 rank 5 is the first
		// observation into the second bucket.
		{"p50 across buckets", 0.5, []int64{4, 8, 10, 10}, 1.25},
		{"p80 at bucket edge", 0.8, []int64{4, 8, 10, 10}, 2},
		{"p90 in last finite", 0.9, []int64{4, 8, 10, 10}, 3},
		// Rank inside the +Inf bucket clamps to the top finite bound.
		{"pinf clamps", 0.99, []int64{0, 0, 1, 10}, 4},
		// q=0 lands at the first non-empty bucket's lower edge.
		{"q0 lower edge", 0, []int64{0, 5, 5, 5}, 1},
		// q=1 with everything finite hits the exact upper bound.
		{"q1 upper bound", 1, []int64{0, 0, 7, 7}, 4},
	}
	for _, c := range cases {
		if got := BucketQuantile(c.q, bounds, c.cum); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: BucketQuantile(%g) = %g, want %g", c.name, c.q, got, c.want)
		}
	}
}

// TestBucketQuantileDegenerate pins NaN on inputs that have no answer.
func TestBucketQuantileDegenerate(t *testing.T) {
	bounds := []float64{1, 2}
	for name, f := range map[string]func() float64{
		"empty":         func() float64 { return BucketQuantile(0.5, bounds, []int64{0, 0, 0}) },
		"q below range": func() float64 { return BucketQuantile(-0.1, bounds, []int64{1, 1, 1}) },
		"q above range": func() float64 { return BucketQuantile(1.1, bounds, []int64{1, 1, 1}) },
		"length skew":   func() float64 { return BucketQuantile(0.5, bounds, []int64{1, 1}) },
		"no bounds":     func() float64 { return BucketQuantile(0.5, nil, []int64{1}) },
		"non-monotone":  func() float64 { return BucketQuantile(0.5, bounds, []int64{5, 3, 5}) },
	} {
		if got := f(); !math.IsNaN(got) {
			t.Errorf("%s: got %g, want NaN", name, got)
		}
	}
}

// TestLatencyHistQuantileAccuracy feeds known samples through Observe
// and checks the estimate brackets the true quantile within the width of
// its bucket — the estimator's documented error bound.
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLatencyHist()
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~0.2ms..80s, spanning many buckets.
		v := math.Exp(rng.Float64()*13 - 8.5)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		truth := samples[int(q*float64(len(samples)-1))]
		// Locate the bucket holding the truth; the estimate must be in it.
		lo, hi := 0.0, math.Inf(1)
		for i, b := range defaultLatencyBounds {
			if truth <= b {
				hi = b
				if i > 0 {
					lo = defaultLatencyBounds[i-1]
				}
				break
			}
			lo = b
		}
		if got < lo || got > hi {
			t.Errorf("q=%g: estimate %g outside bucket [%g,%g] containing true quantile %g", q, got, lo, hi, truth)
		}
	}
}

// TestQuantileMonotone property: the estimator never decreases in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewLatencyHist()
	for i := 0; i < 800; i++ {
		h.Observe(math.Exp(rng.Float64()*10 - 7))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		qq := math.Min(q, 1)
		v := h.Quantile(qq)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", qq, v, prev)
		}
		prev = v
	}
}

// TestSnapshotMatchesRender proves Snapshot and the rendered exposition
// agree: parsing the render reproduces the snapshot exactly.
func TestSnapshotMatchesRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`job_seconds{experiment="fig4"}`)
	for _, v := range []float64{0.002, 0.01, 0.05, 0.05, 0.3, 2, 70} {
		h.Observe(v)
	}
	sc, err := ParseExposition(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	parsed, ok := sc.Histogram("job_seconds")
	if !ok {
		t.Fatal("scrape lost the histogram")
	}
	direct := h.Snapshot()
	if len(parsed.Bounds) != len(direct.Bounds) || parsed.Count != direct.Count {
		t.Fatalf("scrape shape: %+v vs %+v", parsed, direct)
	}
	for i := range direct.Cum {
		if parsed.Cum[i] != direct.Cum[i] {
			t.Fatalf("cum[%d] = %d via scrape, %d direct", i, parsed.Cum[i], direct.Cum[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a, b := parsed.Quantile(q), direct.Quantile(q); math.Abs(a-b) > 1e-12 {
			t.Fatalf("Quantile(%g): %g via scrape, %g direct", q, a, b)
		}
	}
}

// TestScrapeHistogramMergesLabels: two labelled series of one family
// merge into the population histogram.
func TestScrapeHistogramMergesLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram(`job_seconds{experiment="fig4"}`)
	b := r.Histogram(`job_seconds{experiment="table5"}`)
	for i := 0; i < 10; i++ {
		a.Observe(0.01)
		b.Observe(3)
	}
	sc, err := ParseExposition(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	m, ok := sc.Histogram("job_seconds")
	if !ok {
		t.Fatal("no merged histogram")
	}
	if m.Count != 20 {
		t.Fatalf("merged count = %d, want 20", m.Count)
	}
	// Half the population is ~10ms, half ~3s: p25 must sit in the small
	// buckets and p75 in the seconds range.
	if q := m.Quantile(0.25); q > 0.1 {
		t.Fatalf("p25 = %g, want <= 0.1", q)
	}
	if q := m.Quantile(0.75); q < 1 {
		t.Fatalf("p75 = %g, want >= 1", q)
	}
}

// TestScrapeValuesAndSeries pins counter/gauge access on a rendered
// registry, including label-body keyed access.
func TestScrapeValuesAndSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(`lane_dequeues_total{lane="control"}`).Add(16)
	r.Counter(`lane_dequeues_total{lane="batch"}`).Add(1)
	r.Gauge("depth").Set(7)
	sc, err := ParseExposition(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("lane_dequeues_total"); !ok || v != 17 {
		t.Fatalf("Value(lane_dequeues_total) = %g,%v", v, ok)
	}
	if v, ok := sc.Value("depth"); !ok || v != 7 {
		t.Fatalf("Value(depth) = %g,%v", v, ok)
	}
	if _, ok := sc.Value("missing"); ok {
		t.Fatal("Value(missing) reported ok")
	}
	series := sc.Series("lane_dequeues_total")
	if series[`lane="control"`] != 16 || series[`lane="batch"`] != 1 {
		t.Fatalf("Series = %v", series)
	}
	if sc.Types["lane_dequeues_total"] != "counter" || sc.Types["depth"] != "gauge" {
		t.Fatalf("Types = %v", sc.Types)
	}
}

// TestParseExpositionErrors rejects malformed sample lines.
func TestParseExpositionErrors(t *testing.T) {
	for _, bad := range []string{"lonely", "name notanumber"} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted", bad)
		}
	}
}

// TestLabelValue pins label-body extraction, including multi-label
// bodies and the +Inf le value.
func TestLabelValue(t *testing.T) {
	body := `experiment="fig4",le="+Inf"`
	if v, ok := labelValue(body, "le"); !ok || v != "+Inf" {
		t.Fatalf("le = %q,%v", v, ok)
	}
	if v, ok := labelValue(body, "experiment"); !ok || v != "fig4" {
		t.Fatalf("experiment = %q,%v", v, ok)
	}
	if _, ok := labelValue(body, "missing"); ok {
		t.Fatal("missing label reported ok")
	}
	if _, ok := labelValue(`broken`, "le"); ok {
		t.Fatal("malformed body reported ok")
	}
}
