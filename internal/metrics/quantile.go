package metrics

import "math"

// HistSnapshot is a point-in-time copy of a latency histogram in the
// shape a Prometheus scrape carries: ascending finite upper bounds and
// cumulative counts (le semantics), with the final entry of Cum covering
// the implicit +Inf bucket. It is the unit the load-test harness works
// in: a scraped exposition parses into HistSnapshots, and SLO percentile
// assertions run against Quantile.
type HistSnapshot struct {
	// Bounds are the finite bucket upper bounds in seconds, ascending.
	Bounds []float64
	// Cum are cumulative observation counts; Cum[i] counts observations
	// <= Bounds[i] and Cum[len(Bounds)] is the total (the +Inf bucket).
	Cum []int64
	// Sum is the total of all observed values.
	Sum float64
	// Count is the number of observations (equal to the last Cum entry).
	Count int64
}

// Quantile estimates the q-quantile of the snapshot. See BucketQuantile.
func (s *HistSnapshot) Quantile(q float64) float64 {
	return BucketQuantile(q, s.Bounds, s.Cum)
}

// BucketQuantile estimates the q-quantile (q in [0,1]) of a distribution
// known only through cumulative histogram bucket counts, the way
// Prometheus' histogram_quantile does: the target rank q*total is located
// in the first bucket whose cumulative count reaches it, and the value is
// linearly interpolated between the bucket's edges by rank. The estimator
// is monotone in q and always lands inside the bucket that contains the
// true quantile, so its error is bounded by that bucket's width.
//
// bounds are the finite upper bounds, ascending; cum must have
// len(bounds)+1 entries (the last is the +Inf bucket) and be
// non-decreasing. Degenerate inputs return NaN: no observations,
// malformed lengths, or q outside [0,1]. A rank that falls in the +Inf
// bucket returns the highest finite bound — there is no upper edge to
// interpolate toward, and for SLO gating a conservative finite answer
// ("at least this") beats +Inf.
func BucketQuantile(q float64, bounds []float64, cum []int64) float64 {
	if q < 0 || q > 1 || len(cum) != len(bounds)+1 || len(bounds) == 0 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return math.NaN()
	}
	prev := int64(0)
	for _, c := range cum {
		if c < prev { // not a cumulative series
			return math.NaN()
		}
		prev = c
	}
	rank := q * float64(total)
	// First non-empty bucket whose cumulative count reaches the rank
	// (skipping empty leading buckets makes rank 0 resolve to the first
	// observed bucket's lower edge rather than 0).
	i := 0
	for i < len(cum) && (float64(cum[i]) < rank || cum[i] == 0) {
		i++
	}
	if i >= len(bounds) {
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	prevCum := int64(0)
	if i > 0 {
		lower = bounds[i-1]
		prevCum = cum[i-1]
	}
	inBucket := cum[i] - prevCum
	if inBucket <= 0 {
		return lower
	}
	return lower + (bounds[i]-lower)*(rank-float64(prevCum))/float64(inBucket)
}

// Snapshot copies the histogram's current state.
func (h *LatencyHist) Snapshot() *HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Cum:    make([]int64, len(h.counts)),
		Sum:    h.sum,
		Count:  h.n,
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		s.Cum[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile of the observed latencies from the
// bucket counts (see BucketQuantile). NaN with no observations.
func (h *LatencyHist) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}
