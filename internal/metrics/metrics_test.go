package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestMIPS(t *testing.T) {
	got := MIPS([]float64{1, 0.5}, []float64{4e9, 2e9})
	if got != 5000 {
		t.Fatalf("MIPS = %v, want 5000", got)
	}
	if MIPS(nil, nil) != 0 {
		t.Fatal("empty MIPS should be 0")
	}
}

func TestWeightedThroughput(t *testing.T) {
	// Thread 0 at reference speed, thread 1 at half its reference.
	got, err := WeightedThroughput(
		[]float64{1, 0.5},
		[]float64{4e9, 2e9},
		[]float64{4e9, 2e9},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("weighted = %v, want 1.5", got)
	}
	if _, err := WeightedThroughput([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := WeightedThroughput([]float64{1}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("zero reference accepted")
	}
}

func TestEDSquared(t *testing.T) {
	base := EDSquared(100, 1000)
	// Doubling throughput at equal power cuts ED^2 by 8x.
	if got := EDSquared(100, 2000); math.Abs(got-base/8) > 1e-18 {
		t.Fatalf("ED2 scaling wrong: %v vs %v/8", got, base)
	}
	// Halving power at equal throughput halves ED^2.
	if got := EDSquared(50, 1000); math.Abs(got-base/2) > 1e-18 {
		t.Fatalf("ED2 power scaling wrong")
	}
	if !math.IsInf(EDSquared(10, 0), 1) {
		t.Fatal("zero throughput should yield +Inf")
	}
}

func TestDeviationTracker(t *testing.T) {
	d := NewDeviationTracker(100)
	d.Sample(100) // 0%
	d.Sample(90)  // 10%
	d.Sample(110) // 10%
	if got := d.MeanPct(); math.Abs(got-20.0/3) > 1e-9 {
		t.Fatalf("mean deviation = %v", got)
	}
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	// Zero-target tracker is inert.
	z := NewDeviationTracker(0)
	z.Sample(50)
	if z.MeanPct() != 0 || z.N() != 0 {
		t.Fatal("zero-target tracker should ignore samples")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 {
		t.Fatal("empty accumulator should be 0")
	}
	a.Add(10, 1)
	a.Add(20, 3)
	if got := a.Mean(); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("weighted mean = %v, want 17.5", got)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty series should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero width should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5, 5}, 4)
	if len([]rune(flat)) != 4 {
		t.Fatalf("flat sparkline %q wrong length", flat)
	}
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("constant series rendered %q", flat)
		}
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	rs := []rune(ramp)
	if rs[0] != '▁' || rs[7] != '█' {
		t.Fatalf("ramp rendered %q", ramp)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] < rs[i-1] {
			t.Fatalf("ramp not monotone: %q", ramp)
		}
	}
	// Downsampling: 100 points into width 10.
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	if got := Sparkline(series, 10); len([]rune(got)) != 10 {
		t.Fatalf("downsampled length %d", len([]rune(got)))
	}
	// Width above length clamps to length.
	if got := Sparkline([]float64{1, 2}, 10); len([]rune(got)) != 2 {
		t.Fatalf("clamped length %d", len([]rune(got)))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never decrease
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(3)
	g.Dec()
	g.Inc()
	g.Add(-2)
	if g.Value() != 6 {
		t.Fatalf("value = %d", g.Value())
	}
	g.Set(-1) // gauges may go negative, unlike counters
	if g.Value() != -1 {
		t.Fatalf("value = %d", g.Value())
	}
}

// TestGaugeRenderPosition pins the family order of the exposition:
// counters, then gauges, then histograms, each block sorted by name.
func TestGaugeRenderPosition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge(`depth{lane="batch"}`).Set(4)
	r.Gauge(`depth{lane="control"}`).Set(1)
	r.Histogram("lat_seconds").Observe(0.01)
	out := r.Render()
	for _, want := range []string{
		"# TYPE depth gauge",
		`depth{lane="batch"} 4`,
		`depth{lane="control"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE depth gauge") != 1 {
		t.Fatalf("gauge family declared more than once:\n%s", out)
	}
	ctr := strings.Index(out, "a_total")
	gau := strings.Index(out, "depth{")
	his := strings.Index(out, "lat_seconds_bucket")
	if !(ctr < gau && gau < his) {
		t.Fatalf("family order wrong (counter=%d gauge=%d hist=%d):\n%s", ctr, gau, his, out)
	}
	if out != r.Render() {
		t.Fatal("render not deterministic with gauges")
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if g.Value() != 0 {
		t.Fatalf("zero value = %v", g.Value())
	}
	g.Set(0.0375)
	if g.Value() != 0.0375 {
		t.Fatalf("value = %v", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("value = %v", g.Value())
	}
}

// Float gauges render in their own sorted block between integer gauges
// and histograms, under a single TYPE gauge line per family, with full
// float precision.
func TestFloatGaugeRender(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").Set(4)
	r.FloatGauge(`half_width{experiment="ext-adapt"}`).Set(0.0125)
	r.FloatGauge(`half_width{experiment="other"}`).Set(0.25)
	r.Histogram("lat_seconds").Observe(0.01)
	out := r.Render()
	for _, want := range []string{
		"# TYPE half_width gauge",
		`half_width{experiment="ext-adapt"} 0.0125`,
		`half_width{experiment="other"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE half_width gauge") != 1 {
		t.Fatalf("float gauge family declared more than once:\n%s", out)
	}
	gau := strings.Index(out, "depth")
	fg := strings.Index(out, "half_width{")
	his := strings.Index(out, "lat_seconds_bucket")
	if !(gau < fg && fg < his) {
		t.Fatalf("family order wrong (gauge=%d fgauge=%d hist=%d):\n%s", gau, fg, his, out)
	}
	if r.FloatGauge(`half_width{experiment="other"}`).Value() != 0.25 {
		t.Fatal("accessor did not return the existing gauge")
	}
	if out != r.Render() {
		t.Fatal("render not deterministic with float gauges")
	}
}

func TestLatencyHistObserveAndRender(t *testing.T) {
	h := NewLatencyHist()
	h.Observe(0.002)
	h.Observe(0.5)
	h.Observe(2000) // beyond the last bound -> +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 2000.5 || s > 2000.6 {
		t.Fatalf("sum = %v", s)
	}
}

func TestRegistryRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter(`jobs_total{status="done"}`).Add(3)
	r.Counter(`jobs_total{status="failed"}`).Inc()
	r.Histogram(`job_seconds{experiment="fig4"}`).Observe(1.5)
	out1 := r.Render()
	out2 := r.Render()
	if out1 != out2 {
		t.Fatal("render not deterministic")
	}
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{status="done"} 3`,
		`jobs_total{status="failed"} 1`,
		"# TYPE job_seconds histogram",
		`job_seconds_count{experiment="fig4"} 1`,
		`job_seconds_sum{experiment="fig4"} 1.5`,
		`job_seconds_bucket{experiment="fig4",le="+Inf"} 1`,
		`job_seconds_bucket{experiment="fig4",le="4.096"} 1`,
	} {
		if !strings.Contains(out1, want) {
			t.Fatalf("render missing %q:\n%s", want, out1)
		}
	}
	// Counters render before histograms, both sorted by name.
	if strings.Index(out1, "jobs_total") > strings.Index(out1, "job_seconds_bucket") {
		t.Fatal("counters must render before histograms")
	}
}

// TestRegistryRenderGolden pins the exact exposition text so the format
// never drifts: one labelled counter family with two series, one
// unlabelled histogram with a single sub-millisecond observation (only
// cumulative bucket counts and +Inf vary thereafter).
func TestRegistryRenderGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rpc_total{code="ok"}`).Add(2)
	r.Counter(`rpc_total{code="err"}`).Inc()
	r.Histogram("wait_seconds").Observe(0.0005)
	want := `# TYPE rpc_total counter
rpc_total{code="err"} 1
rpc_total{code="ok"} 2
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.001"} 1
wait_seconds_bucket{le="0.004"} 1
wait_seconds_bucket{le="0.016"} 1
wait_seconds_bucket{le="0.064"} 1
wait_seconds_bucket{le="0.256"} 1
wait_seconds_bucket{le="1.024"} 1
wait_seconds_bucket{le="4.096"} 1
wait_seconds_bucket{le="16.384"} 1
wait_seconds_bucket{le="65.536"} 1
wait_seconds_bucket{le="262.144"} 1
wait_seconds_bucket{le="1048.576"} 1
wait_seconds_bucket{le="+Inf"} 1
wait_seconds_sum 0.0005
wait_seconds_count 1
`
	if got := r.Render(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderPrometheusValidity checks structural invariants of the text
// exposition format on a mixed registry: every sample line's family is
// declared by a preceding # TYPE line, label bodies are well-formed, and
// histogram buckets are cumulative ending at +Inf == _count.
func TestRenderPrometheusValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total").Add(7)
	r.Counter(`multi_total{a="1",b="2"}`).Inc()
	h := r.Histogram(`lat_seconds{op="solve"}`)
	h.Observe(0.002)
	h.Observe(0.1)
	h.Observe(3000)
	typed := map[string]string{}
	var lastCum int64 = -1
	var infCum, count int64
	for _, line := range strings.Split(strings.TrimSuffix(r.Render(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		family, labels := splitName(name)
		base := family
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, found := strings.CutSuffix(family, suffix); found && typed[cut] == "histogram" {
				base = cut
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q has no preceding # TYPE for %q", line, base)
		}
		if labels != "" && (strings.HasPrefix(labels, ",") || strings.Contains(labels, "{")) {
			t.Fatalf("malformed labels in %q", line)
		}
		val, _ := strings.CutPrefix(line, name+" ")
		if strings.HasSuffix(family, "_bucket") {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q not integer: %v", val, err)
			}
			if n < lastCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastCum = n
			if strings.Contains(labels, `le="+Inf"`) {
				infCum = n
			}
		}
		if strings.HasSuffix(family, "_count") && base == "lat_seconds" {
			count, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if typed["plain_total"] != "counter" || typed["multi_total"] != "counter" || typed["lat_seconds"] != "histogram" {
		t.Fatalf("TYPE declarations wrong: %v", typed)
	}
	if infCum != 3 || count != 3 {
		t.Fatalf("+Inf bucket %d and _count %d must both equal 3", infCum, count)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("hits").Inc()
				r.Histogram("lat").Observe(0.01)
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if r.Counter("hits").Value() != 800 {
		t.Fatalf("hits = %d", r.Counter("hits").Value())
	}
	if r.Histogram("lat").Count() != 800 {
		t.Fatalf("lat count = %d", r.Histogram("lat").Count())
	}
}
