// Package metrics implements the paper's evaluation metrics (Section 6.6):
// throughput in MIPS, weighted throughput (per-thread IPS normalised to the
// thread's reference IPS, after Snavely & Tullsen), the energy-delay-square
// product ED^2, and the running power-deviation statistic behind Figure 14.
package metrics

import (
	"fmt"
	"math"
)

// MIPS returns total throughput in millions of instructions per second for
// per-thread IPCs and frequencies.
func MIPS(ipc, freqHz []float64) float64 {
	sum := 0.0
	for i := range ipc {
		sum += ipc[i] * freqHz[i] / 1e6
	}
	return sum
}

// WeightedThroughput returns the sum of per-thread IPS normalised by each
// thread's reference IPS (its IPS at reference conditions). A thread
// running exactly at its reference speed contributes 1.0.
func WeightedThroughput(ipc, freqHz, refIPS []float64) (float64, error) {
	if len(ipc) != len(freqHz) || len(ipc) != len(refIPS) {
		return 0, fmt.Errorf("metrics: mismatched lengths %d/%d/%d", len(ipc), len(freqHz), len(refIPS))
	}
	sum := 0.0
	for i := range ipc {
		if refIPS[i] <= 0 {
			return 0, fmt.Errorf("metrics: thread %d has non-positive reference IPS", i)
		}
		sum += ipc[i] * freqHz[i] / refIPS[i]
	}
	return sum, nil
}

// EDSquared returns a quantity proportional to the energy-delay-square
// product of executing a fixed amount of work at average power powerW and
// throughput tp: E = P*t and D = t with t = W/tp, so ED^2 = P * W^3 / tp^3.
// With W fixed across compared configurations, P/tp^3 orders them
// identically; the returned value uses W = 1.
func EDSquared(powerW, tp float64) float64 {
	if tp <= 0 {
		return math.Inf(1)
	}
	return powerW / (tp * tp * tp)
}

// DeviationTracker accumulates the Figure 14 statistic: at every sample
// (1 ms in the paper), the absolute relative difference between consumed
// power and the target is recorded; the average over a window is reported.
type DeviationTracker struct {
	target float64
	sum    float64
	n      int
}

// NewDeviationTracker tracks deviation from the given power target.
func NewDeviationTracker(targetW float64) *DeviationTracker {
	return &DeviationTracker{target: targetW}
}

// Sample records one power observation.
func (d *DeviationTracker) Sample(powerW float64) {
	if d.target <= 0 {
		return
	}
	d.sum += math.Abs(powerW-d.target) / d.target
	d.n++
}

// MeanPct returns the average absolute deviation in percent.
func (d *DeviationTracker) MeanPct() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n) * 100
}

// N returns the number of samples recorded.
func (d *DeviationTracker) N() int { return d.n }

// Accumulator averages a time series weighted by sample duration.
type Accumulator struct {
	sum    float64
	weight float64
}

// Add records value held for duration dt.
func (a *Accumulator) Add(value, dt float64) {
	a.sum += value * dt
	a.weight += dt
}

// Mean returns the time-weighted average, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if a.weight == 0 {
		return 0
	}
	return a.sum / a.weight
}

// Sparkline renders a numeric series as a compact unicode strip chart,
// downsampling (by bucket mean) to the requested width. An empty or
// constant series renders as a flat line.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	if width > len(values) {
		width = len(values)
	}
	buckets := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for b := 0; b < width; b++ {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		buckets[b] = sum / float64(hi-lo)
	}
	mn, mx := buckets[0], buckets[0]
	for _, v := range buckets[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		idx := 0
		if mx > mn {
			idx = int((v - mn) / (mx - mn) * float64(len(ramp)-1))
		}
		out[i] = ramp[idx]
	}
	return string(out)
}
