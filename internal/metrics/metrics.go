// Package metrics implements the paper's evaluation metrics (Section 6.6):
// throughput in MIPS, weighted throughput (per-thread IPS normalised to the
// thread's reference IPS, after Snavely & Tullsen), the energy-delay-square
// product ED^2, and the running power-deviation statistic behind Figure 14.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MIPS returns total throughput in millions of instructions per second for
// per-thread IPCs and frequencies.
func MIPS(ipc, freqHz []float64) float64 {
	sum := 0.0
	for i := range ipc {
		sum += ipc[i] * freqHz[i] / 1e6
	}
	return sum
}

// WeightedThroughput returns the sum of per-thread IPS normalised by each
// thread's reference IPS (its IPS at reference conditions). A thread
// running exactly at its reference speed contributes 1.0.
func WeightedThroughput(ipc, freqHz, refIPS []float64) (float64, error) {
	if len(ipc) != len(freqHz) || len(ipc) != len(refIPS) {
		return 0, fmt.Errorf("metrics: mismatched lengths %d/%d/%d", len(ipc), len(freqHz), len(refIPS))
	}
	sum := 0.0
	for i := range ipc {
		if refIPS[i] <= 0 {
			return 0, fmt.Errorf("metrics: thread %d has non-positive reference IPS", i)
		}
		sum += ipc[i] * freqHz[i] / refIPS[i]
	}
	return sum, nil
}

// EDSquared returns a quantity proportional to the energy-delay-square
// product of executing a fixed amount of work at average power powerW and
// throughput tp: E = P*t and D = t with t = W/tp, so ED^2 = P * W^3 / tp^3.
// With W fixed across compared configurations, P/tp^3 orders them
// identically; the returned value uses W = 1.
func EDSquared(powerW, tp float64) float64 {
	if tp <= 0 {
		return math.Inf(1)
	}
	return powerW / (tp * tp * tp)
}

// DeviationTracker accumulates the Figure 14 statistic: at every sample
// (1 ms in the paper), the absolute relative difference between consumed
// power and the target is recorded; the average over a window is reported.
type DeviationTracker struct {
	target float64
	sum    float64
	n      int
}

// NewDeviationTracker tracks deviation from the given power target.
func NewDeviationTracker(targetW float64) *DeviationTracker {
	return &DeviationTracker{target: targetW}
}

// Sample records one power observation.
func (d *DeviationTracker) Sample(powerW float64) {
	if d.target <= 0 {
		return
	}
	d.sum += math.Abs(powerW-d.target) / d.target
	d.n++
}

// MeanPct returns the average absolute deviation in percent.
func (d *DeviationTracker) MeanPct() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n) * 100
}

// N returns the number of samples recorded.
func (d *DeviationTracker) N() int { return d.n }

// Accumulator averages a time series weighted by sample duration.
type Accumulator struct {
	sum    float64
	weight float64
}

// Add records value held for duration dt.
func (a *Accumulator) Add(value, dt float64) {
	a.sum += value * dt
	a.weight += dt
}

// Mean returns the time-weighted average, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if a.weight == 0 {
		return 0
	}
	return a.sum / a.weight
}

// Sparkline renders a numeric series as a compact unicode strip chart,
// downsampling (by bucket mean) to the requested width. An empty or
// constant series renders as a flat line.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	if width > len(values) {
		width = len(values)
	}
	buckets := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for b := 0; b < width; b++ {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		buckets[b] = sum / float64(hi-lo)
	}
	mn, mx := buckets[0], buckets[0]
	for _, v := range buckets[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		idx := 0
		if mx > mn {
			idx = int((v - mn) / (mx - mn) * float64(len(ramp)-1))
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

// --- Service metrics ---------------------------------------------------
//
// The types below back the cmd/vaschedd /metrics endpoint: concurrency-
// safe counters and latency histograms collected in a Registry that
// renders a Prometheus-style text exposition. They are deliberately
// dependency-free (stdlib only), like the rest of the repository.

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use —
// queue depths, lane occupancy, recovery flags. Unlike Counter it may
// move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a settable float64 gauge safe for concurrent use (the
// value rides an atomic uint64 of its bits). The adaptive-sampling
// progress gauges — current CI half-width, stopping target — need
// fractional values a Gauge cannot carry.
type FloatGauge struct {
	v atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// defaultLatencyBounds covers 1 ms .. ~17 min in powers of four — wide
// enough for both quick-scale experiments (seconds) and paper-scale runs
// (minutes).
var defaultLatencyBounds = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 262.144, 1048.576}

// LatencyHist is a fixed-bucket latency histogram safe for concurrent
// use. Bucket counts are cumulative when rendered (Prometheus "le"
// semantics).
type LatencyHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// NewLatencyHist returns a histogram over the default exponential bounds.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{
		bounds: defaultLatencyBounds,
		counts: make([]int64, len(defaultLatencyBounds)+1),
	}
}

// Observe records one latency in seconds.
func (h *LatencyHist) Observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the total observed seconds.
func (h *LatencyHist) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// render writes the histogram as Prometheus bucket/sum/count lines for
// the series family + labels ("" for an unlabelled series). The le label
// merges into the series' own label set, as the text exposition format
// requires.
func (h *LatencyHist) render(b *strings.Builder, family, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s %d\n", series(family+"_bucket", labels, `le="`+strconv.FormatFloat(bound, 'g', -1, 64)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s %d\n", series(family+"_bucket", labels, `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s %g\n", series(family+"_sum", labels, ""), h.sum)
	fmt.Fprintf(b, "%s %d\n", series(family+"_count", labels, ""), h.n)
}

// splitName separates a metric name into its family and label-body parts:
// `jobs_total{status="done"}` → ("jobs_total", `status="done"`). A name
// without labels returns ("name", "").
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	family = name[:i]
	labels = strings.TrimSuffix(name[i+1:], "}")
	return family, labels
}

// series renders one sample line's name part, merging the metric's own
// labels with an extra label (both optional).
func series(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

// Registry is a named collection of counters and latency histograms. All
// methods are safe for concurrent use; metric instruments are created on
// first reference.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*LatencyHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*LatencyHist),
	}
}

// Counter returns the counter with the given name (creating it if
// needed). The name may carry a label set in Prometheus syntax, e.g.
// `jobs_total{status="done"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name (creating it if needed).
// Like Counter, the name may carry a Prometheus-style label set.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the float gauge with the given name (creating it if
// needed). Families must not collide with integer Gauge families — each
// renders under its own TYPE line.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the latency histogram with the given name (creating
// it if needed).
func (r *Registry) Histogram(name string) *LatencyHist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewLatencyHist()
		r.hists[name] = h
	}
	return h
}

// Render returns the registry in the Prometheus text exposition format
// (version 0.0.4): every metric family gets a `# TYPE` line (counter or
// histogram), label sets on histogram series merge with the generated
// `le` label, and families and series are sorted by name so the output
// is deterministic and scrape-diffable. Counters render before
// histograms.
func (r *Registry) Render() string {
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	fgnames := make([]string, 0, len(r.fgauges))
	for name := range r.fgauges {
		fgnames = append(fgnames, name)
	}
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for name, g := range r.fgauges {
		fgauges[name] = g
	}
	hists := make(map[string]*LatencyHist, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	// Sorting full names groups the series of one family contiguously
	// (the family is a prefix of every series name), which the text
	// format requires: all samples of a family must follow its TYPE line.
	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(fgnames)
	sort.Strings(hnames)
	var b strings.Builder
	lastFamily := ""
	for _, name := range cnames {
		family, _ := splitName(name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s counter\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	lastFamily = ""
	for _, name := range gnames {
		family, _ := splitName(name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s %d\n", name, gauges[name].Value())
	}
	lastFamily = ""
	for _, name := range fgnames {
		family, _ := splitName(name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", family)
			lastFamily = family
		}
		fmt.Fprintf(&b, "%s %g\n", name, fgauges[name].Value())
	}
	lastFamily = ""
	for _, name := range hnames {
		family, labels := splitName(name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", family)
			lastFamily = family
		}
		hists[name].render(&b, family, labels)
	}
	return b.String()
}
