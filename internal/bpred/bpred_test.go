package bpred

import (
	"testing"

	"vasched/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BTBEntries: 0, HistoryBits: 12},
		{BTBEntries: 1000, HistoryBits: 12}, // not pow2
		{BTBEntries: 4096, HistoryBits: 0},
		{BTBEntries: 4096, HistoryBits: 30},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const pc, target = 0x4000, 0x5000
	// Train.
	for i := 0; i < 8; i++ {
		p.Update(pc, true, target)
	}
	pred := p.Predict(pc)
	if !pred.Taken || !pred.BTBHit || pred.Target != target {
		t.Fatalf("trained branch predicted %+v", pred)
	}
}

func TestLearnsNeverTaken(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const pc = 0x4000
	for i := 0; i < 8; i++ {
		p.Update(pc, false, 0)
	}
	if p.Predict(pc).Taken {
		t.Fatal("not-taken branch predicted taken")
	}
}

func TestLearnsAlternatingViaHistory(t *testing.T) {
	// gshare should learn a strict T/N/T/N pattern almost perfectly after
	// warmup, because the global history disambiguates the two phases.
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const pc, target = 0x1234, 0x2000
	misp := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if p.Update(pc, taken, target) && i > n/2 {
			misp++
		}
	}
	if rate := float64(misp) / (n / 2); rate > 0.05 {
		t.Fatalf("alternating pattern mispredict rate %v after warmup", rate)
	}
}

func TestRandomBranchesNearHalf(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	misp := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := rng.Float64() < 0.5
		if p.Update(0x8000, taken, 0x9000) {
			misp++
		}
	}
	rate := float64(misp) / n
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branch mispredict rate = %v, want ~0.5", rate)
	}
}

func TestBiasedBranchLowMispredicts(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	misp := 0
	const n = 20000
	for i := 0; i < n; i++ {
		taken := rng.Float64() < 0.95 // strongly biased
		if p.Update(0xA000, taken, 0xB000) {
			misp++
		}
	}
	rate := float64(misp) / n
	if rate > 0.15 {
		t.Fatalf("biased branch mispredict rate = %v, want < 0.15", rate)
	}
}

func TestBTBMissOnColdTakenBranch(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A taken branch the BTB has never seen counts as a misprediction
	// even if the direction guess happens to be right.
	if !p.Update(0xC000, true, 0xD000) {
		t.Fatal("cold taken branch should mispredict (no target)")
	}
}

func TestStats(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.MispredictRate() != 0 {
		t.Fatal("empty predictor should report 0")
	}
	p.Predict(0x10)
	if p.Lookups != 1 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
}
