// Package bpred implements the branch prediction hardware of the paper's
// Table 4 core: a 4K-entry branch target buffer paired with a gshare
// direction predictor. The cycle-level pipeline model (package pipeline)
// uses it to decide when fetch follows a taken branch and when a 7-cycle
// misprediction flush occurs.
package bpred

import "fmt"

// Config sizes the predictor.
type Config struct {
	// BTBEntries is the number of branch-target-buffer entries (4096 in
	// Table 4). Must be a power of two.
	BTBEntries int
	// HistoryBits is the gshare global-history length; the pattern table
	// has 2^HistoryBits 2-bit counters.
	HistoryBits int
}

// DefaultConfig returns the Table 4 predictor.
func DefaultConfig() Config {
	return Config{BTBEntries: 4096, HistoryBits: 12}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BTBEntries <= 0 || c.BTBEntries&(c.BTBEntries-1) != 0 {
		return fmt.Errorf("bpred: BTB entries %d not a positive power of two", c.BTBEntries)
	}
	if c.HistoryBits <= 0 || c.HistoryBits > 24 {
		return fmt.Errorf("bpred: history bits %d outside (0,24]", c.HistoryBits)
	}
	return nil
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is one core's branch predictor.
type Predictor struct {
	cfg      Config
	btb      []btbEntry
	pht      []uint8 // 2-bit saturating counters
	history  uint64
	histMask uint64
	btbMask  uint64

	// Stats.
	Lookups     uint64
	Mispredicts uint64
}

// New builds a predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:      cfg,
		btb:      make([]btbEntry, cfg.BTBEntries),
		pht:      make([]uint8, 1<<cfg.HistoryBits),
		histMask: (1 << cfg.HistoryBits) - 1,
		btbMask:  uint64(cfg.BTBEntries - 1),
	}
	// Weakly taken initial state converges fastest on loopy codes.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p, nil
}

// Prediction is the fetch-stage outcome.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool
	// Target is the predicted target; valid only when Taken and BTBHit.
	Target uint64
	// BTBHit reports whether the BTB knew this branch. A taken prediction
	// without a target still redirects fetch late (treated as a partial
	// penalty by the pipeline).
	BTBHit bool
}

// Predict returns the prediction for the branch at pc.
func (p *Predictor) Predict(pc uint64) Prediction {
	p.Lookups++
	idx := (pc ^ (p.history & p.histMask)) & p.histMask
	taken := p.pht[idx] >= 2
	e := p.btb[(pc>>2)&p.btbMask]
	hit := e.valid && e.tag == pc
	out := Prediction{Taken: taken, BTBHit: hit}
	if hit {
		out.Target = e.target
	}
	return out
}

// Update trains the predictor with the branch's actual outcome and returns
// whether the earlier prediction would have been a misprediction.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) bool {
	idx := (pc ^ (p.history & p.histMask)) & p.histMask
	predTaken := p.pht[idx] >= 2
	e := &p.btb[(pc>>2)&p.btbMask]
	btbHit := e.valid && e.tag == pc && e.target == target

	// 2-bit saturating counter update.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	// BTB allocate/refresh on taken branches.
	if taken {
		e.tag = pc
		e.target = target
		e.valid = true
	}
	p.history = (p.history << 1) | boolBit(taken)

	misp := predTaken != taken || (taken && !btbHit)
	if misp {
		p.Mispredicts++
	}
	return misp
}

// MispredictRate returns mispredictions per lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
