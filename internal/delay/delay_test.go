package delay

import (
	"math"
	"testing"

	"vasched/internal/floorplan"
	"vasched/internal/stats"
	"vasched/internal/varmodel"
)

func buildTestCore(t *testing.T, sigmaOverMu float64, core int, seed int64) *CorePaths {
	t.Helper()
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 64, 64
	cfg.VthSigmaOverMu = sigmaOverMu
	g, err := varmodel.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := g.Die(seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := floorplan.New20CoreCMP()
	cp, err := BuildCore(maps, fp, core, stats.NewRNG(seed), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestNominalCoreNearNominalFrequency(t *testing.T) {
	// With zero variation every path is nominal, so Fmax at the rating
	// point should equal the nominal frequency (up to PLL quantisation).
	cp := buildTestCore(t, 0, 0, 1)
	f := cp.FmaxHz(1.0, 95)
	if math.Abs(f-4e9) > 25e6 {
		t.Fatalf("zero-variation Fmax = %v, want ~4 GHz", f)
	}
}

func TestVariationSlowsCores(t *testing.T) {
	// With variation, the worst path is slower than nominal, so cores are
	// slower than the 4 GHz nominal (paper Section 3).
	cp := buildTestCore(t, 0.12, 3, 2)
	f := cp.FmaxHz(1.0, 95)
	if f >= 4e9 {
		t.Fatalf("variation-affected Fmax = %v, want < 4 GHz", f)
	}
	if f < 2e9 {
		t.Fatalf("variation-affected Fmax = %v, implausibly slow", f)
	}
}

func TestFmaxMonotoneInVoltage(t *testing.T) {
	cp := buildTestCore(t, 0.12, 5, 3)
	prev := 0.0
	for _, v := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		f := cp.FmaxHz(v, 95)
		if f < prev {
			t.Fatalf("Fmax not monotone at %vV: %v < %v", v, f, prev)
		}
		prev = f
	}
}

func TestFmaxDropsWithTemperature(t *testing.T) {
	cp := buildTestCore(t, 0.12, 7, 4)
	if cp.FmaxHz(1.0, 95) > cp.FmaxHz(1.0, 60) {
		t.Fatal("hotter core should not be faster")
	}
}

func TestVFTableShape(t *testing.T) {
	cp := buildTestCore(t, 0.12, 0, 5)
	levels := []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	table := cp.VFTable(levels, 95)
	if len(table) == 0 {
		t.Fatal("empty VF table")
	}
	for i := 1; i < len(table); i++ {
		if table[i].V <= table[i-1].V || table[i].F < table[i-1].F {
			t.Fatalf("VF table not monotone: %+v", table)
		}
	}
	// Frequencies quantised to the PLL grid.
	for _, vf := range table {
		if math.Mod(vf.F, DefaultConfig().FStepHz) > 1 {
			t.Fatalf("frequency %v not on PLL grid", vf.F)
		}
	}
}

func TestBuildCoreValidation(t *testing.T) {
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 64, 64
	g, err := varmodel.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := g.Die(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := floorplan.New20CoreCMP()
	if _, err := BuildCore(maps, fp, -1, stats.NewRNG(1), DefaultConfig()); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := BuildCore(maps, fp, 20, stats.NewRNG(1), DefaultConfig()); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	bad := DefaultConfig()
	bad.PathsPerUnit = 0
	if _, err := BuildCore(maps, fp, 0, stats.NewRNG(1), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCoreToCoreSpread(t *testing.T) {
	// Across a die at sigma/mu = 0.12, cores should differ in frequency by
	// a paper-plausible margin (Figure 4(b): mostly 20-50%).
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 128, 128
	g, err := varmodel.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := floorplan.New20CoreCMP()
	var ratios []float64
	for die := 0; die < 5; die++ {
		maps, err := g.Die(10, die)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(int64(die))
		var fs []float64
		for core := 0; core < fp.NumCores; core++ {
			cp, err := BuildCore(maps, fp, core, rng.Derive(int64(core)), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, cp.FmaxHz(1.0, 95))
		}
		ratios = append(ratios, stats.Max(fs)/stats.Min(fs))
	}
	mean := stats.Mean(ratios)
	if mean < 1.10 || mean > 1.60 {
		t.Fatalf("mean core-to-core frequency ratio = %v, outside plausible band", mean)
	}
}

func TestHigherSigmaWidensSpread(t *testing.T) {
	// Figure 5(b): spread grows with sigma/mu.
	spread := func(sm float64) float64 {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 64, 64
		cfg.VthSigmaOverMu = sm
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp := floorplan.New20CoreCMP()
		var ratios []float64
		for die := 0; die < 4; die++ {
			maps, err := g.Die(20, die)
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRNG(int64(die))
			var fs []float64
			for core := 0; core < fp.NumCores; core++ {
				cp, err := BuildCore(maps, fp, core, rng.Derive(int64(core)), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				fs = append(fs, cp.FmaxHz(1.0, 95))
			}
			ratios = append(ratios, stats.Max(fs)/stats.Min(fs))
		}
		return stats.Mean(ratios)
	}
	if spread(0.12) <= spread(0.03) {
		t.Fatal("frequency spread should grow with sigma/mu")
	}
}

func TestWorstDelayInfeasibleLowVoltage(t *testing.T) {
	cp := buildTestCore(t, 0.12, 0, 6)
	// At a supply barely above threshold, Fmax must come back 0 rather
	// than something tiny-but-positive built from an Inf delay.
	if f := cp.FmaxHz(0.27, 95); f != 0 {
		t.Fatalf("near-threshold Fmax = %v, want 0", f)
	}
}
