// Package delay implements the critical-path model that turns a die's
// variation maps into per-core maximum frequencies. Following VARIUS, each
// core owns a population of critical paths spread over its units. A path's
// delay follows the alpha-power law with the local systematic Vth/Leff plus
// a random component averaged over the path's gates; logic paths average
// over more gates than SRAM access paths, so memory structures feel random
// variation more strongly. A core's maximum frequency at a given supply
// voltage and temperature is set by its slowest path.
package delay

import (
	"fmt"
	"math"

	"vasched/internal/floorplan"
	"vasched/internal/stats"
	"vasched/internal/tech"
	"vasched/internal/varmodel"
)

// Config tunes the path population.
type Config struct {
	// PathsPerUnit is the number of candidate critical paths sampled in
	// each core unit.
	PathsPerUnit int
	// LogicGatesPerPath and SRAMGatesPerPath set how many devices a path's
	// random variation is averaged over (a ~12 FO4 pipeline stage vs the
	// few transistors dominating a 6T-cell read).
	LogicGatesPerPath int
	SRAMGatesPerPath  int
	// FStepHz quantises reported frequencies (PLLs lock to a grid).
	FStepHz float64
}

// DefaultConfig returns the model defaults.
func DefaultConfig() Config {
	return Config{
		PathsPerUnit:      20,
		LogicGatesPerPath: 12,
		SRAMGatesPerPath:  4,
		FStepHz:           25e6,
	}
}

// path is one sampled critical path: its effective device parameters after
// averaging the random component over the path's gates.
type path struct {
	vth  float64 // effective threshold in volts
	leff float64 // effective gate length in meters
}

// CorePaths is the frequency model for one core on one die.
type CorePaths struct {
	Core  int
	tech  tech.Params
	cfg   Config
	paths []path
}

// VF is one manufacturer-table entry: the maximum frequency the core
// sustains at a supply voltage.
type VF struct {
	V float64 // supply voltage in volts
	F float64 // maximum frequency in hertz
}

// BuildCore samples the critical-path population for the given core. The
// rng should be derived from the die seed and core index so that die
// characterisation is deterministic.
func BuildCore(maps *varmodel.DieMaps, fp *floorplan.Floorplan, core int, rng *stats.RNG, cfg Config) (*CorePaths, error) {
	if cfg.PathsPerUnit <= 0 || cfg.LogicGatesPerPath <= 0 || cfg.SRAMGatesPerPath <= 0 {
		return nil, fmt.Errorf("delay: invalid config %+v", cfg)
	}
	if core < 0 || core >= fp.NumCores {
		return nil, fmt.Errorf("delay: core %d out of range [0,%d)", core, fp.NumCores)
	}
	cp := &CorePaths{Core: core, tech: maps.Cfg.Tech, cfg: cfg}
	for _, b := range fp.CoreBlocks(core) {
		gates := cfg.LogicGatesPerPath
		if b.Kind.IsSRAM() {
			gates = cfg.SRAMGatesPerPath
		}
		sqrtN := math.Sqrt(float64(gates))
		for i := 0; i < cfg.PathsPerUnit; i++ {
			// Path anchor point inside the unit: systematic component.
			x := b.R.X0 + rng.Float64()*b.R.Width()
			y := b.R.Y0 + rng.Float64()*b.R.Height()
			vth := maps.VthAt(x, y) + rng.Norm()*maps.VthSigmaRan/sqrtN
			leff := maps.LeffAt(x, y) + rng.Norm()*maps.LeffSigmaRan/sqrtN
			if leff < 0.5*maps.Cfg.Tech.LeffNominal {
				leff = 0.5 * maps.Cfg.Tech.LeffNominal
			}
			// Short-channel coupling: the locally shorter devices also
			// have a lower effective threshold.
			vth = maps.Cfg.Tech.EffectiveVth(vth, leff)
			cp.paths = append(cp.paths, path{vth: vth, leff: leff})
		}
	}
	return cp, nil
}

// WorstRelativeDelay returns the largest relative path delay at supply v
// and temperature tempC (1.0 means "as slow as the nominal device at the
// nominal operating point").
func (cp *CorePaths) WorstRelativeDelay(v, tempC float64) float64 {
	worst := 0.0
	for _, p := range cp.paths {
		d := cp.tech.AlphaPowerDelay(p.vth, p.leff, v, tempC)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// FmaxHz returns the maximum frequency the core sustains at supply v and
// temperature tempC, quantised down to the PLL grid. It returns 0 if no
// path switches at this operating point (supply too close to threshold).
func (cp *CorePaths) FmaxHz(v, tempC float64) float64 {
	worst := cp.WorstRelativeDelay(v, tempC)
	if math.IsInf(worst, 1) || worst <= 0 {
		return 0
	}
	f := cp.tech.FNominalHz / worst
	if cp.cfg.FStepHz > 0 {
		f = math.Floor(f/cp.cfg.FStepHz) * cp.cfg.FStepHz
	}
	return f
}

// FmaxWithVthShift returns the core's maximum frequency with every path's
// threshold shifted by dVth volts — the what-if query body-bias selection
// needs (forward bias makes dVth negative). Quantisation matches FmaxHz.
func (cp *CorePaths) FmaxWithVthShift(dVth, v, tempC float64) float64 {
	worst := 0.0
	for _, p := range cp.paths {
		d := cp.tech.AlphaPowerDelay(p.vth+dVth, p.leff, v, tempC)
		if d > worst {
			worst = d
		}
	}
	if math.IsInf(worst, 1) || worst <= 0 {
		return 0
	}
	f := cp.tech.FNominalHz / worst
	if cp.cfg.FStepHz > 0 {
		f = math.Floor(f/cp.cfg.FStepHz) * cp.cfg.FStepHz
	}
	return f
}

// VFTable returns the manufacturer-provided (voltage, frequency) table for
// the core at the rating temperature: for each ladder voltage, the highest
// frequency the core sustains. Entries with zero frequency (infeasible
// operating points) are omitted.
func (cp *CorePaths) VFTable(levels []float64, tempC float64) []VF {
	var out []VF
	for _, v := range levels {
		f := cp.FmaxHz(v, tempC)
		if f > 0 {
			out = append(out, VF{V: v, F: f})
		}
	}
	return out
}
