package farm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		err := Map(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	if err := Map(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Collect(context.Background(), workers, 40, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestMapLowestIndexedErrorWins(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	// Force both failures to be recorded: the high-index task fails first,
	// then the low-index one (which was already taken) also fails. The
	// reported error must be the low one, as in the serial path.
	var release sync.WaitGroup
	release.Add(1)
	err := Map(context.Background(), 2, 2, func(_ context.Context, i int) error {
		if i == 1 {
			defer release.Done()
			return errHigh
		}
		release.Wait() // ensure task 1 has failed before task 0 reports
		return errLow
	})
	if err != errLow {
		t.Fatalf("got %v, want %v", err, errLow)
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Map(context.Background(), 1, 10, func(_ context.Context, i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom || ran != 4 {
		t.Fatalf("err=%v ran=%d", err, ran)
	}
}

func TestMapErrorAbandonsRemainingTasks(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Map(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d tasks ran despite early failure", n)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	err := Map(ctx, 4, 10000, func(ctx context.Context, i int) error {
		once.Do(func() { close(started); cancel() })
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
			t.Error("task did not observe cancellation")
		}
		return nil
	})
	<-started
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Map(ctx, 1, 5, func(context.Context, int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) || called {
		t.Fatalf("err=%v called=%v", err, called)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to at least 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass positive counts through")
	}
}
