package farm

import (
	"context"
	"sync"

	"vasched/internal/chip"
)

// CacheKey identifies one characterised die: the batch it belongs to, its
// index within the batch, and a signature of every configuration input
// that shapes the characterisation (variation model, delay, power and
// thermal configs — see experiments.Env). Two Envs with equal signatures
// produce bit-identical dies, so they may share cache entries.
type CacheKey struct {
	BatchSeed int64
	Die       int
	Sig       string
}

// cacheEntry is a single-flight slot: the first requester builds, every
// concurrent requester for the same key waits on ready.
type cacheEntry struct {
	ready chan struct{}
	chip  *chip.Chip
	err   error
}

// DieCache memoises characterised dies across experiments and jobs. The
// expensive GRF sampling + thermal-fixed-point characterisation of a die
// is paid once per (batch, die, config) no matter how many of the ~15
// experiments sharing a batch request it, serially or concurrently.
// Builds for the same key are collapsed (single-flight); builds for
// different keys proceed in parallel. The cache is safe for concurrent
// use.
type DieCache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*cacheEntry
	order   []CacheKey // insertion order, for FIFO eviction
	hits    int64
	misses  int64
}

// NewDieCache returns a cache holding at most cap dies (cap <= 0 means
// unbounded). Eviction is FIFO over completed entries; because die
// characterisation is deterministic, an evicted die rebuilds identically,
// so eviction never affects results — only speed.
func NewDieCache(cap int) *DieCache {
	return &DieCache{cap: cap, entries: make(map[CacheKey]*cacheEntry)}
}

// Get returns the chip for key, building it with build on first request.
// Concurrent Gets for the same key share one build. Waiting respects ctx;
// the build itself is charged to the first requester and runs to
// completion so late waiters can still use it.
func (dc *DieCache) Get(ctx context.Context, key CacheKey, build func() (*chip.Chip, error)) (*chip.Chip, error) {
	dc.mu.Lock()
	if e, ok := dc.entries[key]; ok {
		dc.hits++
		dc.mu.Unlock()
		select {
		case <-e.ready:
			return e.chip, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		dc.mu.Unlock()
		return nil, err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	dc.entries[key] = e
	dc.order = append(dc.order, key)
	dc.misses++
	dc.evictLocked()
	dc.mu.Unlock()

	e.chip, e.err = build()
	close(e.ready)
	if e.err != nil {
		// Do not cache failures: a later retry (e.g. after a transient
		// resource problem) should rebuild.
		dc.mu.Lock()
		if dc.entries[key] == e {
			delete(dc.entries, key)
			for i, k := range dc.order {
				if k == key {
					dc.order = append(dc.order[:i], dc.order[i+1:]...)
					break
				}
			}
		}
		dc.mu.Unlock()
	}
	return e.chip, e.err
}

// evictLocked drops the oldest completed entries until the cache fits its
// cap. Entries still building are skipped — waiters hold their channel.
func (dc *DieCache) evictLocked() {
	if dc.cap <= 0 {
		return
	}
	for len(dc.entries) > dc.cap {
		evicted := false
		for i, k := range dc.order {
			e := dc.entries[k]
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			delete(dc.entries, k)
			dc.order = append(dc.order[:i], dc.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // everything in flight; let it land
		}
	}
}

// Len returns the number of cached (or in-flight) dies.
func (dc *DieCache) Len() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return len(dc.entries)
}

// Stats returns cumulative hit and miss counts.
func (dc *DieCache) Stats() (hits, misses int64) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.hits, dc.misses
}
