// Package farm is the deterministic die-farm execution engine: it fans
// independent per-die work (manufacture → characterise → simulate) across
// a bounded worker pool and gathers results in die-index order, so the
// parallel output is bit-identical to the serial path. Determinism rests
// on two invariants the rest of the repository already upholds:
//
//  1. Per-index seed derivation. Every random stream a task uses is
//     derived from its index (varmodel.Generator.Die(batchSeed, die),
//     the experiments' seed = Seed + trial*97 + die*13 formulas), never
//     from shared mutable RNG state, so results do not depend on which
//     worker runs the task or in what order.
//  2. Index-slotted collection. Workers write into result slots addressed
//     by task index; callers reduce the slots serially in index order, so
//     floating-point accumulation order matches the serial loop exactly.
//
// The companion DieCache memoises characterised dies across experiments
// (see cache.go), which is where the batch-level speedup beyond raw
// parallelism comes from: ~15 experiments share one 200-die batch.
package farm

import (
	"context"
	"runtime"
	"sync"

	"vasched/internal/trace"
)

// Workers normalises a worker-count request: n if positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on a pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). It returns the error of the
// lowest-indexed failing task, or ctx.Err() if the context was cancelled
// before all tasks ran. On the first failure the remaining tasks are
// abandoned (workers stop picking up new indices); in-flight tasks see a
// cancelled context. With workers == 1 the tasks run in index order on the
// calling goroutine, reproducing the serial path exactly.
func Map(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ctx, sp := trace.Start(ctx, "farm.map",
		trace.Int("tasks", n), trace.Int("workers", workers))
	defer sp.End()
	// task wraps fn in a per-index span. The span structure (one
	// farm.task per index, children under it) is identical for every
	// workers value; only timestamps differ.
	task := func(ctx context.Context, i int) error {
		ctx, tsp := trace.Start(ctx, "farm.task", trace.Int("index", i))
		defer tsp.End()
		return fn(ctx, i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex
		next int
		errs = make([]error, n)
		fail bool
	)
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if fail || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := take()
				if i < 0 {
					return
				}
				if err := task(ctx, i); err != nil {
					mu.Lock()
					errs[i] = err
					fail = true
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Report deterministically: the lowest-indexed task error wins, so a
	// multi-failure run surfaces the same error the serial path would.
	for i := 0; i < next; i++ {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return parent.Err()
}

// Collect runs fn for every index in [0, n) through Map and returns the
// results in index order. It is the engine's gather primitive: the
// returned slice is identical to running fn serially for i = 0..n-1.
func Collect[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Map(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
