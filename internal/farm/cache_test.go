package farm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vasched/internal/chip"
)

// fakeChip builds a distinguishable *chip.Chip without running the real
// characterisation (the cache never inspects it).
func fakeChip() *chip.Chip { return &chip.Chip{} }

func key(die int) CacheKey { return CacheKey{BatchSeed: 1, Die: die, Sig: "cfg"} }

func TestDieCacheSingleFlight(t *testing.T) {
	dc := NewDieCache(0)
	var builds atomic.Int32
	var wg sync.WaitGroup
	chips := make([]*chip.Chip, 16)
	for i := range chips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := dc.Get(context.Background(), key(7), func() (*chip.Chip, error) {
				builds.Add(1)
				return fakeChip(), nil
			})
			if err != nil {
				t.Error(err)
			}
			chips[i] = c
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key", n)
	}
	for _, c := range chips[1:] {
		if c != chips[0] {
			t.Fatal("waiters got different chips")
		}
	}
	if hits, misses := dc.Stats(); misses != 1 || hits != 15 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestDieCacheDistinctKeys(t *testing.T) {
	dc := NewDieCache(0)
	var builds atomic.Int32
	build := func() (*chip.Chip, error) { builds.Add(1); return fakeChip(), nil }
	a, _ := dc.Get(context.Background(), key(0), build)
	b, _ := dc.Get(context.Background(), key(1), build)
	c, _ := dc.Get(context.Background(), CacheKey{BatchSeed: 2, Die: 0, Sig: "cfg"}, build)
	d, _ := dc.Get(context.Background(), CacheKey{BatchSeed: 1, Die: 0, Sig: "other"}, build)
	if builds.Load() != 4 {
		t.Fatalf("builds = %d, want 4 (batch seed, die index and config sig must all key)", builds.Load())
	}
	if a == b || a == c || a == d {
		t.Fatal("distinct keys shared a chip")
	}
	if dc.Len() != 4 {
		t.Fatalf("len = %d", dc.Len())
	}
}

func TestDieCacheErrorNotCached(t *testing.T) {
	dc := NewDieCache(0)
	boom := errors.New("boom")
	calls := 0
	build := func() (*chip.Chip, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeChip(), nil
	}
	if _, err := dc.Get(context.Background(), key(0), build); err != boom {
		t.Fatalf("err = %v", err)
	}
	c, err := dc.Get(context.Background(), key(0), build)
	if err != nil || c == nil {
		t.Fatalf("retry after failure: chip=%v err=%v", c, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDieCacheFIFOEviction(t *testing.T) {
	dc := NewDieCache(2)
	var builds atomic.Int32
	build := func() (*chip.Chip, error) { builds.Add(1); return fakeChip(), nil }
	for die := 0; die < 3; die++ {
		if _, err := dc.Get(context.Background(), key(die), build); err != nil {
			t.Fatal(err)
		}
	}
	if dc.Len() != 2 {
		t.Fatalf("len = %d, want 2", dc.Len())
	}
	// Die 0 was evicted: re-requesting it rebuilds; die 2 is still cached.
	if _, err := dc.Get(context.Background(), key(2), build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 3 {
		t.Fatalf("cached die rebuilt: builds = %d", builds.Load())
	}
	if _, err := dc.Get(context.Background(), key(0), build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 4 {
		t.Fatalf("evicted die not rebuilt: builds = %d", builds.Load())
	}
}

func TestDieCacheCancelledWaiter(t *testing.T) {
	dc := NewDieCache(0)
	block := make(chan struct{})
	go dc.Get(context.Background(), key(0), func() (*chip.Chip, error) {
		<-block
		return fakeChip(), nil
	})
	// Wait for the build to be registered.
	for dc.Len() == 0 {
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := dc.Get(ctx, key(0), func() (*chip.Chip, error) {
		return nil, fmt.Errorf("second build must not run")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	close(block)
}

func TestDieCacheConcurrentMixedLoad(t *testing.T) {
	dc := NewDieCache(8)
	err := Map(context.Background(), 8, 200, func(ctx context.Context, i int) error {
		_, err := dc.Get(ctx, key(i%12), func() (*chip.Chip, error) { return fakeChip(), nil })
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Len() > 8 {
		t.Fatalf("cache over cap: %d", dc.Len())
	}
}
