package lp

import (
	"math"
	"testing"
)

// decodeProblem builds a small LP from fuzz bytes: data[0] picks the
// variable count (1..3), data[1] the constraint count (1..5), and each
// following byte decodes one quantised coefficient in [-4, 3.96875]
// (int8/32), which keeps the arithmetic well away from float noise. It
// returns nil when data is too short.
func decodeProblem(data []byte) *Problem {
	if len(data) < 2 {
		return nil
	}
	n := int(data[0])%3 + 1
	m := int(data[1])%5 + 1
	need := 2 + n + m*(n+2)
	if len(data) < need {
		return nil
	}
	at := 2
	val := func() float64 {
		v := float64(int8(data[at])) / 32
		at++
		return v
	}
	p := &Problem{Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = val()
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n)}
		for j := range c.Coeffs {
			c.Coeffs[j] = val()
		}
		c.Rel = Relation(int(data[at]) % 3)
		at++
		c.RHS = val()
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// satisfies reports whether x respects constraint c within tol.
func satisfies(c Constraint, x []float64, tol float64) bool {
	s := 0.0
	for j, a := range c.Coeffs {
		s += a * x[j]
	}
	switch c.Rel {
	case LE:
		return s <= c.RHS+tol
	case GE:
		return s >= c.RHS-tol
	default:
		return math.Abs(s-c.RHS) <= tol
	}
}

// bruteForceBest enumerates every basic point of the polyhedron
// {constraints, x >= 0}: each choice of n hyperplanes from the m
// constraint boundaries plus the n axes yields a candidate vertex via
// Gaussian elimination. It returns the best feasible objective and
// whether any feasible vertex exists. For a pointed nonempty feasible
// region (x >= 0 guarantees pointedness) the LP optimum, when bounded,
// is attained at one of these points.
func bruteForceBest(p *Problem) (best float64, feasible bool) {
	n := len(p.Objective)
	m := len(p.Constraints)
	total := m + n
	idx := make([]int, n)
	best = math.Inf(-1)

	var recurse func(pos, from int)
	recurse = func(pos, from int) {
		if pos == n {
			x, ok := vertexOf(p, idx)
			if !ok {
				return
			}
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for _, c := range p.Constraints {
				if !satisfies(c, x, 1e-7) {
					return
				}
			}
			feasible = true
			obj := 0.0
			for j, cj := range p.Objective {
				obj += cj * x[j]
			}
			if obj > best {
				best = obj
			}
			return
		}
		for k := from; k < total; k++ {
			idx[pos] = k
			recurse(pos+1, k+1)
		}
	}
	recurse(0, 0)
	return best, feasible
}

// vertexOf solves the n x n system given by the chosen tight hyperplanes
// (constraint k < m means constraint k at equality; k >= m means
// x_{k-m} = 0). Returns ok=false for (near-)singular systems.
func vertexOf(p *Problem, idx []int) ([]float64, bool) {
	n := len(p.Objective)
	m := len(p.Constraints)
	a := make([]float64, n*n)
	b := make([]float64, n)
	for r, k := range idx {
		if k < m {
			copy(a[r*n:(r+1)*n], p.Constraints[k].Coeffs)
			b[r] = p.Constraints[k].RHS
		} else {
			a[r*n+(k-m)] = 1
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[piv*n+col]) {
				piv = r
			}
		}
		if math.Abs(a[piv*n+col]) < 1e-9 {
			return nil, false
		}
		if piv != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[piv*n+c] = a[piv*n+c], a[col*n+c]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = b[j] / a[j*n+j]
	}
	return x, true
}

// FuzzSolve cross-checks the simplex against exhaustive vertex
// enumeration on random small LPs: a returned solution must be feasible
// and match the best vertex objective; ErrInfeasible must mean no
// feasible vertex exists; and a warm-started re-solve of the same problem
// must agree with the cold result.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{0, 0, 32, 32, 16, 16, 0, 40})              // max x+y st x+y/2 <= 1.25
	f.Add([]byte{1, 1, 32, 16, 32, 32, 1, 40, 16, 0, 2, 8}) // a GE and an EQ row
	f.Add([]byte{2, 4, 32, 16, 8, 32, 32, 32, 0, 96, 32, 0, 0, 1, 8, 0, 32, 0, 1, 8, 0, 0, 32, 1, 8, 16, 16, 16, 0, 64})
	f.Add([]byte{0, 2, 248, 32, 1, 16, 16, 2, 8, 224, 0, 40})
	f.Add([]byte{0, 0, 32, 224, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProblem(data)
		if p == nil {
			return
		}
		sol, err := Solve(p)
		want, anyVertex := bruteForceBest(p)
		switch {
		case err == nil:
			for i, c := range p.Constraints {
				if !satisfies(c, sol.X, 1e-6) {
					t.Fatalf("solution violates constraint %d: x=%v, %+v", i, sol.X, c)
				}
			}
			for j, xj := range sol.X {
				if xj < -1e-9 {
					t.Fatalf("negative x[%d] = %v", j, xj)
				}
			}
			if !anyVertex {
				t.Fatalf("simplex found %v but vertex enumeration says infeasible", sol.X)
			}
			if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("objective %v != brute-force best %v (x=%v)", sol.Objective, want, sol.X)
			}
			// A warm re-solve of the identical problem must agree.
			s := NewSolver()
			if _, err := s.Solve(p); err != nil {
				t.Fatalf("first solver pass: %v", err)
			}
			again, err := s.Solve(p)
			if err != nil {
				t.Fatalf("warm re-solve: %v", err)
			}
			if math.Abs(again.Objective-sol.Objective) > 1e-9*(1+math.Abs(sol.Objective)) {
				t.Fatalf("warm re-solve objective %v != %v", again.Objective, sol.Objective)
			}
		case err == ErrInfeasible:
			if anyVertex {
				t.Fatalf("simplex says infeasible but a feasible vertex exists (best %v)", want)
			}
		case err == ErrUnbounded:
			// The brute-force bound is a lower bound only; nothing to check
			// beyond phase 1 having succeeded, which ErrUnbounded implies.
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
