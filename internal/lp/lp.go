// Package lp implements linear programming with the two-phase primal
// Simplex method (dense tableau, Bland's anti-cycling rule). It is the
// optimisation engine behind the paper's LinOpt power manager, but the
// solver is general: maximize c'x subject to a mix of <=, >=, and =
// constraints with x >= 0.
//
// Problems the size LinOpt produces (tens of variables and constraints)
// solve in microseconds, which is what makes running LinOpt every 10 ms
// practical (paper Figure 15).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint's comparison operator.
type Relation int

// Supported constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// String returns the operator symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Sentinel errors.
var (
	// ErrInfeasible means no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded means the objective can grow without limit.
	ErrUnbounded = errors.New("lp: unbounded")
)

// Constraint is one row: Coeffs . x  Rel  RHS.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a maximisation over non-negative variables.
type Problem struct {
	// Objective holds the coefficients of the function to maximize.
	Objective   []float64
	Constraints []Constraint
}

// Solution is the optimum found by Solve.
type Solution struct {
	// X is the optimal assignment (same length as Objective).
	X []float64
	// Objective is the optimal value.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Duals holds each constraint's shadow price — the rate at which the
	// optimum improves per unit of RHS relaxation. Available for <= and
	// >= constraints (computed from the reduced cost of the slack/surplus
	// column); NaN for == constraints.
	Duals []float64
}

const eps = 1e-9

// Solve runs two-phase Simplex on p. It returns ErrInfeasible or
// ErrUnbounded for the corresponding outcomes.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return nil, errors.New("lp: empty objective")
	}
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}

	// Normalise rows to non-negative RHS so slack/artificial bookkeeping
	// is uniform.
	type row struct {
		a   []float64
		rel Relation
		b   float64
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		a := append([]float64(nil), c.Coeffs...)
		b := c.RHS
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row{a: a, rel: rel, b: b}
	}

	// Column layout: [structural n] [slack/surplus s] [artificial r] [rhs].
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	width := total + 1
	t := make([]float64, m*width)
	basis := make([]int, m)
	// slackCol[i] is constraint i's slack/surplus column (with its sign),
	// used to read shadow prices at the optimum; 0 for == constraints.
	slackCol := make([]int, m)
	slackSign := make([]float64, m)
	slackAt, artAt := n, n+nSlack
	for i, r := range rows {
		copy(t[i*width:], r.a)
		t[i*width+total] = r.b
		switch r.rel {
		case LE:
			t[i*width+slackAt] = 1
			basis[i] = slackAt
			slackCol[i], slackSign[i] = slackAt, 1
			slackAt++
		case GE:
			t[i*width+slackAt] = -1
			slackCol[i], slackSign[i] = slackAt, -1
			slackAt++
			t[i*width+artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			t[i*width+artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	s := &simplex{t: t, m: m, width: width, total: total, basis: basis}

	// Phase 1: maximize -(sum of artificials).
	if nArt > 0 {
		obj := make([]float64, total)
		for j := n + nSlack; j < total; j++ {
			obj[j] = -1
		}
		val, err := s.optimize(obj, total)
		if err != nil {
			return nil, err
		}
		if val < -1e-7 {
			return nil, ErrInfeasible
		}
		// Pivot any artificial still (degenerately) in the basis out.
		for i := 0; i < m; i++ {
			if s.basis[i] < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(s.t[i*width+j]) > eps {
					s.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it cannot constrain phase 2.
				for j := 0; j <= total; j++ {
					s.t[i*width+j] = 0
				}
			}
		}
		// Forbid artificial columns in phase 2.
		s.limit = n + nSlack
	} else {
		s.limit = total
	}

	// Phase 2: the real objective (padded with zeros for slack columns).
	obj := make([]float64, total)
	copy(obj, p.Objective)
	val, err := s.optimize(obj, s.limit)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.t[i*width+total]
		}
	}
	// Shadow prices: for a maximisation in this tableau convention, the
	// dual of a <= constraint equals the final reduced cost (z_j - c_j) of
	// its slack column; a >= constraint's surplus column carries the
	// negated dual. The original constraint orientation must be restored
	// for rows that were sign-flipped during RHS normalisation.
	duals := make([]float64, m)
	zRow := s.finalZ(p.Objective)
	for i := range rows {
		if slackSign[i] == 0 {
			duals[i] = math.NaN()
			continue
		}
		d := slackSign[i] * zRow[slackCol[i]]
		if p.Constraints[i].RHS < 0 {
			// The row was multiplied by -1 during normalisation; undo the
			// orientation change for the caller's view.
			d = -d
		}
		duals[i] = d
	}
	return &Solution{X: x, Objective: val, Iterations: s.iterations, Duals: duals}, nil
}

// finalZ recomputes the reduced-cost row for the given objective at the
// current (optimal) basis.
func (s *simplex) finalZ(objective []float64) []float64 {
	obj := make([]float64, s.total)
	copy(obj, objective)
	z := make([]float64, s.total+1)
	for j := 0; j < s.total; j++ {
		z[j] = -objAt(obj, j)
	}
	for i, b := range s.basis {
		cb := objAt(obj, b)
		if cb == 0 {
			continue
		}
		for j := 0; j <= s.total; j++ {
			z[j] += cb * s.t[i*s.width+j]
		}
	}
	return z
}

// simplex holds the tableau state shared by the two phases.
type simplex struct {
	t          []float64
	m          int
	width      int
	total      int
	limit      int // columns eligible to enter the basis
	basis      []int
	iterations int
}

// optimize maximises obj over the current tableau, allowing the first
// `limit` columns to enter the basis. It returns the objective value at the
// optimum.
func (s *simplex) optimize(obj []float64, limit int) (float64, error) {
	// Reduced costs: z_j - c_j computed against the current basis.
	// We maintain them directly as a working row.
	z := make([]float64, s.total+1)
	recompute := func() {
		for j := 0; j <= s.total; j++ {
			z[j] = 0
		}
		for j := 0; j < s.total; j++ {
			z[j] = -objAt(obj, j)
		}
		for i, b := range s.basis {
			cb := objAt(obj, b)
			if cb == 0 {
				continue
			}
			for j := 0; j <= s.total; j++ {
				z[j] += cb * s.t[i*s.width+j]
			}
		}
	}
	recompute()

	const maxIter = 10000
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: Bland's rule (smallest index with negative
		// reduced cost) to guarantee termination.
		enter := -1
		for j := 0; j < limit; j++ {
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return z[s.total], nil
		}
		// Leaving row: minimum ratio, ties broken by smallest basis index
		// (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < s.m; i++ {
			a := s.t[i*s.width+enter]
			if a <= eps {
				continue
			}
			ratio := s.t[i*s.width+s.total] / a
			if ratio < best-eps || (ratio < best+eps && (leave < 0 || s.basis[i] < s.basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		s.pivot(leave, enter)
		s.iterations++
		recompute()
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

func objAt(obj []float64, j int) float64 {
	if j < len(obj) {
		return obj[j]
	}
	return 0
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (s *simplex) pivot(row, col int) {
	w := s.width
	p := s.t[row*w+col]
	inv := 1 / p
	for j := 0; j <= s.total; j++ {
		s.t[row*w+j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		f := s.t[i*w+col]
		if f == 0 {
			continue
		}
		for j := 0; j <= s.total; j++ {
			s.t[i*w+j] -= f * s.t[row*w+j]
		}
	}
	s.basis[row] = col
}
