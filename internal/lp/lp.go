// Package lp implements linear programming with the two-phase primal
// Simplex method (dense tableau, Bland's anti-cycling rule). It is the
// optimisation engine behind the paper's LinOpt power manager, but the
// solver is general: maximize c'x subject to a mix of <=, >=, and =
// constraints with x >= 0.
//
// Problems the size LinOpt produces (tens of variables and constraints)
// solve in microseconds, which is what makes running LinOpt every 10 ms
// practical (paper Figure 15).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint's comparison operator.
type Relation int

// Supported constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// String returns the operator symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Sentinel errors.
var (
	// ErrInfeasible means no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded means the objective can grow without limit.
	ErrUnbounded = errors.New("lp: unbounded")
)

// Constraint is one row: Coeffs . x  Rel  RHS.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a maximisation over non-negative variables.
type Problem struct {
	// Objective holds the coefficients of the function to maximize.
	Objective   []float64
	Constraints []Constraint
}

// Solution is the optimum found by Solve.
type Solution struct {
	// X is the optimal assignment (same length as Objective).
	X []float64
	// Objective is the optimal value.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Duals holds each constraint's shadow price — the rate at which the
	// optimum improves per unit of RHS relaxation. Available for <= and
	// >= constraints (computed from the reduced cost of the slack/surplus
	// column); NaN for == constraints.
	Duals []float64
}

const eps = 1e-9

// Solve runs two-phase Simplex on p. It returns ErrInfeasible or
// ErrUnbounded for the corresponding outcomes. Each call solves from
// scratch; callers that solve a sequence of similar problems (LinOpt's
// per-interval re-solve) should hold a Solver for warm starts.
func Solve(p *Problem) (*Solution, error) {
	var s Solver
	return s.Solve(p)
}

// Solver runs Solve with reusable tableau storage and, when consecutive
// problems share a shape (same variable count and normalised constraint
// relations), a warm start: the previous optimal basis is re-established
// on the new tableau and, if still primal feasible, phase 1 is skipped
// entirely. Any warm-start failure falls back to the cold two-phase path,
// so results match Solve up to floating-point pivot order. A Solver must
// not be used concurrently.
type Solver struct {
	// Normalised problem rows (reused across calls).
	rowsA []float64 // m×n coefficients, sign-normalised
	rels  []Relation
	bvals []float64
	// Tableau storage (reused across calls).
	t         []float64
	basis     []int
	slackCol  []int
	slackSign []float64
	objBuf    []float64
	zBuf      []float64
	claimed   []bool
	// Warm-start state: the optimal basis of the previous solve and the
	// shape it belongs to.
	prevBasis []int
	prevN     int
	prevRels  []Relation
	// WarmAttempts and WarmHits count solves that could try a warm start
	// and those where it succeeded (phase 1 skipped).
	WarmAttempts, WarmHits int
}

// NewSolver returns an empty Solver. The zero value is also ready to use.
func NewSolver() *Solver { return &Solver{} }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// fillTableau (re)builds the initial tableau, basis, and dual bookkeeping
// from the normalised rows. It is called again to restart cold when a
// warm-start attempt has already pivoted the tableau.
func (s *Solver) fillTableau(n, m, nSlack, total, width int) {
	clear(s.t)
	slackAt, artAt := n, n+nSlack
	for i := 0; i < m; i++ {
		copy(s.t[i*width:], s.rowsA[i*n:(i+1)*n])
		s.t[i*width+total] = s.bvals[i]
		switch s.rels[i] {
		case LE:
			s.t[i*width+slackAt] = 1
			s.basis[i] = slackAt
			s.slackCol[i], s.slackSign[i] = slackAt, 1
			slackAt++
		case GE:
			s.t[i*width+slackAt] = -1
			s.slackCol[i], s.slackSign[i] = slackAt, -1
			slackAt++
			s.t[i*width+artAt] = 1
			s.basis[i] = artAt
			artAt++
		case EQ:
			s.t[i*width+artAt] = 1
			s.basis[i] = artAt
			s.slackCol[i], s.slackSign[i] = 0, 0
			artAt++
		}
	}
}

// tryWarm re-establishes the previous optimal basis on the fresh tableau.
// The saved basis is a column set, not a row assignment: a column that was
// basic in row i of the old eliminated tableau can have a zero entry in
// row i of the fresh one, so pivoting row-by-row fails structurally.
// Instead each basic column claims the not-yet-claimed row where its
// current pivot element is largest (a basis "crash" with partial
// pivoting); earlier-established unit columns are preserved because pivot
// rows always carry zeros in them.
//
// If the re-established basis is primal infeasible (the RHS drifted far
// enough that an old binding constraint flipped) but still dual feasible
// for obj — always true when only RHS values changed, since the reduced
// costs are untouched by B^{-1}b — a few dual-simplex pivots restore
// primal feasibility far cheaper than a cold phase 1. On any failure the
// tableau is left corrupted and the caller must rebuild it.
func (s *Solver) tryWarm(sx *simplex, nStruct, nSlack int, obj []float64) bool {
	lim := nStruct + nSlack
	for _, b := range s.prevBasis {
		if b >= lim {
			return false // previous solve kept an artificial basic
		}
	}
	const pivTol = 1e-7
	if cap(s.claimed) < sx.m {
		s.claimed = make([]bool, sx.m)
	}
	claimed := s.claimed[:sx.m]
	for i := range claimed {
		claimed[i] = false
	}
	for _, target := range s.prevBasis {
		// A column already basic in some unclaimed row (an initial slack)
		// needs no pivot; just claim that row.
		row := -1
		for i := 0; i < sx.m; i++ {
			if !claimed[i] && sx.basis[i] == target {
				row = i
				break
			}
		}
		if row < 0 {
			bestAbs := pivTol
			for i := 0; i < sx.m; i++ {
				if claimed[i] {
					continue
				}
				if v := math.Abs(sx.t[i*sx.width+target]); v > bestAbs {
					row, bestAbs = i, v
				}
			}
			if row < 0 {
				return false // no safe pivot: basis is (near-)singular here
			}
			sx.pivot(row, target)
			sx.iterations++
		}
		claimed[row] = true
	}

	// Dual-simplex cleanup: drive any negative RHS entries out while the
	// reduced costs stay non-negative.
	z := sx.reducedCosts(obj)
	for j := 0; j < lim; j++ {
		if z[j] < -eps {
			return false // not dual feasible (objective row changed too much)
		}
	}
	maxDual := 4 * sx.m
	for iter := 0; ; iter++ {
		// Leaving row: Bland's rule over the infeasible rows.
		leave := -1
		for i := 0; i < sx.m; i++ {
			if sx.t[i*sx.width+sx.total] < -eps && (leave < 0 || sx.basis[i] < sx.basis[leave]) {
				leave = i
			}
		}
		if leave < 0 {
			return true // primal feasible: phase 2 can start here
		}
		if iter >= maxDual {
			return false
		}
		// Entering column: minimum dual ratio keeps the reduced costs
		// non-negative; ascending scan keeps the smallest index on ties.
		enter := -1
		best := math.Inf(1)
		for j := 0; j < lim; j++ {
			a := sx.t[leave*sx.width+j]
			if a >= -eps {
				continue
			}
			if ratio := z[j] / -a; ratio < best-eps {
				best, enter = ratio, j
			}
		}
		if enter < 0 {
			return false // row is unsatisfiable: let the cold path report it
		}
		sx.pivot(leave, enter)
		sx.iterations++
		z = sx.reducedCosts(obj)
	}
}

// Solve solves p, warm-starting from the previous call when possible.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return nil, errors.New("lp: empty objective")
	}
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}

	// Normalise rows to non-negative RHS so slack/artificial bookkeeping
	// is uniform.
	s.rowsA = growF(s.rowsA, m*n)
	s.bvals = growF(s.bvals, m)
	if cap(s.rels) < m {
		s.rels = make([]Relation, m)
	}
	s.rels = s.rels[:m]
	for i, c := range p.Constraints {
		a := s.rowsA[i*n : (i+1)*n]
		copy(a, c.Coeffs)
		b := c.RHS
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		s.rels[i] = rel
		s.bvals[i] = b
	}

	// Column layout: [structural n] [slack/surplus s] [artificial r] [rhs].
	nSlack, nArt := 0, 0
	for _, rel := range s.rels {
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	width := total + 1
	s.t = growF(s.t, m*width)
	s.basis = growI(s.basis, m)
	s.slackCol = growI(s.slackCol, m)
	s.slackSign = growF(s.slackSign, m)
	s.fillTableau(n, m, nSlack, total, width)

	s.zBuf = growF(s.zBuf, total+1)
	sx := &simplex{t: s.t, m: m, width: width, total: total, basis: s.basis, z: s.zBuf}

	warmable := s.prevBasis != nil && s.prevN == n && len(s.prevRels) == m
	for i := 0; warmable && i < m; i++ {
		warmable = s.prevRels[i] == s.rels[i]
	}

	s.objBuf = growF(s.objBuf, total)
	warm := false
	var val float64
	var err error
	if warmable {
		s.WarmAttempts++
		obj := s.objBuf
		clear(obj)
		copy(obj, p.Objective)
		if s.tryWarm(sx, n, nSlack, obj) {
			sx.limit = n + nSlack
			val, err = sx.optimize(obj, sx.limit)
			if err == nil {
				warm = true
				s.WarmHits++
			}
		}
		if !warm {
			// The attempt pivoted the tableau; rebuild and solve cold.
			s.fillTableau(n, m, nSlack, total, width)
			sx.iterations = 0
		}
	}

	if !warm {
		// Phase 1: maximize -(sum of artificials).
		if nArt > 0 {
			obj := s.objBuf
			clear(obj)
			for j := n + nSlack; j < total; j++ {
				obj[j] = -1
			}
			val1, err := sx.optimize(obj, total)
			if err != nil {
				return nil, err
			}
			if val1 < -1e-7 {
				return nil, ErrInfeasible
			}
			// Pivot any artificial still (degenerately) in the basis out.
			for i := 0; i < m; i++ {
				if sx.basis[i] < n+nSlack {
					continue
				}
				pivoted := false
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(sx.t[i*width+j]) > eps {
						sx.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row: zero it so it cannot constrain phase 2.
					for j := 0; j <= total; j++ {
						sx.t[i*width+j] = 0
					}
				}
			}
			// Forbid artificial columns in phase 2.
			sx.limit = n + nSlack
		} else {
			sx.limit = total
		}

		// Phase 2: the real objective (padded with zeros for slack columns).
		obj := s.objBuf
		clear(obj)
		copy(obj, p.Objective)
		val, err = sx.optimize(obj, sx.limit)
		if err != nil {
			return nil, err
		}
	}

	x := make([]float64, n)
	for i, b := range sx.basis {
		if b < n {
			x[b] = sx.t[i*width+total]
		}
	}
	// Shadow prices: for a maximisation in this tableau convention, the
	// dual of a <= constraint equals the final reduced cost (z_j - c_j) of
	// its slack column; a >= constraint's surplus column carries the
	// negated dual. The original constraint orientation must be restored
	// for rows that were sign-flipped during RHS normalisation.
	duals := make([]float64, m)
	zRow := sx.finalZ(p.Objective)
	for i := 0; i < m; i++ {
		if s.slackSign[i] == 0 {
			duals[i] = math.NaN()
			continue
		}
		d := s.slackSign[i] * zRow[s.slackCol[i]]
		if p.Constraints[i].RHS < 0 {
			// The row was multiplied by -1 during normalisation; undo the
			// orientation change for the caller's view.
			d = -d
		}
		duals[i] = d
	}

	// Remember this optimum's basis (and the shape it belongs to) for the
	// next call's warm start.
	s.prevBasis = append(s.prevBasis[:0], sx.basis...)
	s.prevN = n
	s.prevRels = append(s.prevRels[:0], s.rels...)

	return &Solution{X: x, Objective: val, Iterations: sx.iterations, Duals: duals}, nil
}

// finalZ recomputes the reduced-cost row for the given objective at the
// current (optimal) basis.
func (s *simplex) finalZ(objective []float64) []float64 {
	obj := make([]float64, s.total)
	copy(obj, objective)
	z := make([]float64, s.total+1)
	for j := 0; j < s.total; j++ {
		z[j] = -objAt(obj, j)
	}
	for i, b := range s.basis {
		cb := objAt(obj, b)
		if cb == 0 {
			continue
		}
		for j := 0; j <= s.total; j++ {
			z[j] += cb * s.t[i*s.width+j]
		}
	}
	return z
}

// simplex holds the tableau state shared by the two phases.
type simplex struct {
	t          []float64
	m          int
	width      int
	total      int
	limit      int // columns eligible to enter the basis
	basis      []int
	iterations int
	z          []float64 // optional reusable reduced-cost row (total+1)
}

// optimize maximises obj over the current tableau, allowing the first
// `limit` columns to enter the basis. It returns the objective value at the
// optimum.
func (s *simplex) optimize(obj []float64, limit int) (float64, error) {
	// Reduced costs: z_j - c_j computed against the current basis.
	// We maintain them directly as a working row.
	z := s.reducedCosts(obj)
	recompute := func() { s.reducedCosts(obj) }

	const maxIter = 10000
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: Bland's rule (smallest index with negative
		// reduced cost) to guarantee termination.
		enter := -1
		for j := 0; j < limit; j++ {
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return z[s.total], nil
		}
		// Leaving row: minimum ratio, ties broken by smallest basis index
		// (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < s.m; i++ {
			a := s.t[i*s.width+enter]
			if a <= eps {
				continue
			}
			ratio := s.t[i*s.width+s.total] / a
			if ratio < best-eps || (ratio < best+eps && (leave < 0 || s.basis[i] < s.basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		s.pivot(leave, enter)
		s.iterations++
		recompute()
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

// reducedCosts fills the working row s.z with z_j - c_j for the current
// basis (allocating it only if missing) and returns it. z[total] is the
// objective value of the current basic solution.
func (s *simplex) reducedCosts(obj []float64) []float64 {
	z := s.z
	if len(z) != s.total+1 {
		z = make([]float64, s.total+1)
		s.z = z
	}
	for j := 0; j <= s.total; j++ {
		z[j] = 0
	}
	for j := 0; j < s.total; j++ {
		z[j] = -objAt(obj, j)
	}
	for i, b := range s.basis {
		cb := objAt(obj, b)
		if cb == 0 {
			continue
		}
		for j := 0; j <= s.total; j++ {
			z[j] += cb * s.t[i*s.width+j]
		}
	}
	return z
}

func objAt(obj []float64, j int) float64 {
	if j < len(obj) {
		return obj[j]
	}
	return 0
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (s *simplex) pivot(row, col int) {
	w := s.width
	p := s.t[row*w+col]
	inv := 1 / p
	for j := 0; j <= s.total; j++ {
		s.t[row*w+j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		f := s.t[i*w+col]
		if f == 0 {
			continue
		}
		for j := 0; j <= s.total; j++ {
			s.t[i*w+j] -= f * s.t[row*w+j]
		}
	}
	s.basis[row] = col
}
