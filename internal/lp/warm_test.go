package lp

import (
	"math"
	"testing"

	"vasched/internal/stats"
)

// TestWarmObjectiveMatchesCold drifts a LinOpt-shaped problem's
// coefficients and RHS by a few percent per step — the way consecutive
// DVFS intervals drift — and requires the warm-started Solver to find the
// same optimum as a cold Solve each time: equal objective value and equal
// vertex. It also requires the warm path to actually engage on most
// steps, so a regression that silently falls back to cold solving fails
// here rather than only in the benchmarks.
func TestWarmObjectiveMatchesCold(t *testing.T) {
	rng := stats.NewRNG(5)
	base := linoptShapedProblem(rng, 12)
	s := NewSolver()
	for k := 0; k < 200; k++ {
		p := &Problem{Objective: append([]float64(nil), base.Objective...)}
		for i := range p.Objective {
			p.Objective[i] *= 1 + 0.05*(rng.Float64()-0.5)
		}
		for _, c := range base.Constraints {
			co := append([]float64(nil), c.Coeffs...)
			for i := range co {
				co[i] *= 1 + 0.05*(rng.Float64()-0.5)
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: co, Rel: c.Rel, RHS: c.RHS * (1 + 0.05*(rng.Float64()-0.5)),
			})
		}
		cold, err1 := Solve(p)
		warm, err2 := s.Solve(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("k=%d: error mismatch: cold %v, warm %v", k, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if d := math.Abs(cold.Objective - warm.Objective); d > 1e-9 {
			t.Fatalf("k=%d: warm objective %v differs from cold %v by %g", k, warm.Objective, cold.Objective, d)
		}
		for i := range cold.X {
			if math.Abs(cold.X[i]-warm.X[i]) > 1e-6 {
				t.Fatalf("k=%d: warm x[%d]=%v, cold %v", k, i, warm.X[i], cold.X[i])
			}
		}
	}
	t.Logf("warm attempts=%d hits=%d", s.WarmAttempts, s.WarmHits)
	if s.WarmHits < s.WarmAttempts/2 {
		t.Fatalf("warm start engaged on only %d of %d attempts", s.WarmHits, s.WarmAttempts)
	}
}
