package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vasched/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTextbookMaximisation(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  => (2, 6), 36.
	p := &Problem{
		Objective: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 36, 1e-7) || !approx(s.X[0], 2, 1e-7) || !approx(s.X[1], 6, 1e-7) {
		t.Fatalf("solution: %+v", s)
	}
}

func TestGEConstraintsTwoPhase(t *testing.T) {
	// min x + 2y s.t. x + y >= 4; x <= 3; y <= 3  (as max of negation)
	// => x=3, y=1, cost 5.
	p := &Problem{
		Objective: []float64{-1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, -5, 1e-7) {
		t.Fatalf("objective = %v, want -5 (x=%v)", s.Objective, s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y == 5; x <= 2 => 5 with x<=2.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 5, 1e-7) || s.X[0] > 2+1e-7 {
		t.Fatalf("solution: %+v", s)
	}
	if !approx(s.X[0]+s.X[1], 5, 1e-7) {
		t.Fatalf("equality violated: %v", s.X)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnboundedDetected(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalised(t *testing.T) {
	// x >= 2 written as -x <= -2; max -x should give x = 2.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -2},
			{Coeffs: []float64{1}, Rel: LE, RHS: 10},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.X[0], 2, 1e-7) {
		t.Fatalf("x = %v, want 2", s.X[0])
	}
}

func TestDegenerateProblemTerminates(t *testing.T) {
	// A classic cycling-prone degenerate LP (Beale); Bland's rule must
	// terminate with the optimum 0.05.
	p := &Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 0.05, 1e-7) {
		t.Fatalf("objective = %v, want 0.05", s.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality constraints leave an artificial basic at zero;
	// the solver must still find the optimum.
	p := &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{2, 2}, Rel: EQ, RHS: 8},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 11, 1e-7) { // x=1, y=3
		t.Fatalf("objective = %v, want 11", s.Objective)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("empty objective accepted")
	}
	p := &Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("mismatched constraint width accepted")
	}
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("relation strings wrong")
	}
	if Relation(9).String() == "" {
		t.Fatal("unknown relation should still format")
	}
}

// knapsackGreedy solves max c'x, w'x <= B, 0 <= x <= u exactly (fractional
// knapsack) for cross-checking the simplex on LinOpt-shaped problems.
func knapsackGreedy(c, w, u []float64, budget float64) float64 {
	type item struct{ density, weight, cap, value float64 }
	items := make([]item, len(c))
	for i := range c {
		items[i] = item{density: c[i] / w[i], weight: w[i], cap: u[i], value: c[i]}
	}
	// Sort by density descending (insertion sort, n is tiny).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].density > items[j-1].density; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	total := 0.0
	for _, it := range items {
		if budget <= 0 {
			break
		}
		take := it.cap
		if take*it.weight > budget {
			take = budget / it.weight
		}
		total += take * it.value
		budget -= take * it.weight
	}
	return total
}

// Property: on random LinOpt-shaped problems (single budget constraint plus
// per-variable upper bounds), simplex matches the exact greedy optimum.
func TestLinOptShapeMatchesGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(20)
		c := make([]float64, n)
		w := make([]float64, n)
		u := make([]float64, n)
		for i := 0; i < n; i++ {
			c[i] = 0.1 + rng.Float64()*5 // throughput per volt
			w[i] = 0.1 + rng.Float64()*3 // watts per volt
			u[i] = 0.2 + rng.Float64()   // voltage headroom
		}
		budget := rng.Float64() * 10
		cons := make([]Constraint, 0, n+1)
		cons = append(cons, Constraint{Coeffs: w, Rel: LE, RHS: budget})
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: u[i]})
		}
		s, err := Solve(&Problem{Objective: c, Constraints: cons})
		if err != nil {
			return false
		}
		want := knapsackGreedy(c, w, u, budget)
		return approx(s.Objective, want, 1e-6*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions are always feasible.
func TestSolutionsFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := &Problem{Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = rng.NormMuSigma(0, 2)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormMuSigma(0, 1)
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: math.Abs(rng.NormMuSigma(2, 2))})
		}
		// Bound the box so the problem cannot be unbounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 10})
		}
		s, err := Solve(p)
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		for _, c := range p.Constraints {
			dot := 0.0
			for j := range c.Coeffs {
				dot += c.Coeffs[j] * s.X[j]
			}
			switch c.Rel {
			case LE:
				if dot > c.RHS+1e-6 {
					return false
				}
			case GE:
				if dot < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(dot-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveLinOptShape20(b *testing.B) {
	rng := stats.NewRNG(1)
	n := 20
	c := make([]float64, n)
	w := make([]float64, n)
	cons := make([]Constraint, 0, n+1)
	for i := 0; i < n; i++ {
		c[i] = 0.5 + rng.Float64()*4
		w[i] = 0.5 + rng.Float64()*2
	}
	cons = append(cons, Constraint{Coeffs: w, Rel: LE, RHS: 8})
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 0.4})
	}
	p := &Problem{Objective: c, Constraints: cons}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDualsTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 has duals
	// (0, 3/2, 1): the first constraint is slack at the optimum (2, 6).
	p := &Problem{
		Objective: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if !approx(s.Duals[i], w, 1e-7) {
			t.Fatalf("dual[%d] = %v, want %v (all: %v)", i, s.Duals[i], w, s.Duals)
		}
	}
}

func TestDualsMatchPerturbation(t *testing.T) {
	// Property check on LinOpt-shaped problems: the budget constraint's
	// shadow price must equal the finite-difference sensitivity of the
	// optimum to the budget.
	for seed := int64(0); seed < 20; seed++ {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(8)
		c := make([]float64, n)
		w := make([]float64, n)
		cons := make([]Constraint, 0, n+1)
		for i := 0; i < n; i++ {
			c[i] = 0.1 + rng.Float64()*5
			w[i] = 0.1 + rng.Float64()*3
		}
		budget := 1 + rng.Float64()*5
		cons = append(cons, Constraint{Coeffs: w, Rel: LE, RHS: budget})
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 0.2 + rng.Float64()})
		}
		base, err := Solve(&Problem{Objective: c, Constraints: cons})
		if err != nil {
			t.Fatal(err)
		}
		const h = 1e-6
		bumped := make([]Constraint, len(cons))
		copy(bumped, cons)
		bumped[0] = Constraint{Coeffs: w, Rel: LE, RHS: budget + h}
		more, err := Solve(&Problem{Objective: c, Constraints: bumped})
		if err != nil {
			t.Fatal(err)
		}
		sensitivity := (more.Objective - base.Objective) / h
		if !approx(base.Duals[0], sensitivity, 1e-4*(1+sensitivity)) {
			t.Fatalf("seed %d: budget dual %v vs finite-difference %v",
				seed, base.Duals[0], sensitivity)
		}
	}
}

func TestDualsEqualityNaN(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s.Duals[0]) {
		t.Fatalf("equality dual = %v, want NaN", s.Duals[0])
	}
}

func TestDualsGEConstraint(t *testing.T) {
	// min x (as max -x) s.t. x >= 2: at the optimum x = 2 the GE
	// constraint binds; relaxing it (lowering the RHS) improves the
	// objective at rate 1, so the dual is -1.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
			{Coeffs: []float64{1}, Rel: LE, RHS: 10},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Duals[0], -1, 1e-7) {
		t.Fatalf("GE dual = %v, want -1", s.Duals[0])
	}
}
