package lp

import (
	"testing"

	"vasched/internal/stats"
)

// linoptShapedProblem builds a problem with the exact structure LinOpt
// emits every DVFS interval for n active cores: one chip-budget row, a
// per-core power cap, and per-core voltage bounds (GE lower, LE upper).
func linoptShapedProblem(rng *stats.RNG, n int) *Problem {
	obj := make([]float64, n)
	budget := make([]float64, n)
	p := &Problem{Objective: obj}
	for c := 0; c < n; c++ {
		obj[c] = 1 + rng.Float64()*4      // throughput per volt
		budget[c] = 10 + rng.Float64()*20 // watts per volt
	}
	p.Constraints = append(p.Constraints, Constraint{
		Coeffs: budget, Rel: LE, RHS: 0.85 * float64(n) * 18,
	})
	for c := 0; c < n; c++ {
		capRow := make([]float64, n)
		capRow[c] = budget[c]
		p.Constraints = append(p.Constraints, Constraint{Coeffs: capRow, Rel: LE, RHS: 25})
		lo := make([]float64, n)
		lo[c] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: lo, Rel: GE, RHS: 0.6 + rng.Float64()*0.1})
		hi := make([]float64, n)
		hi[c] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: hi, Rel: LE, RHS: 1.0})
	}
	return p
}

// BenchmarkSolveCold solves a fresh 20-core LinOpt-shaped LP from scratch
// every iteration — the paper's Figure 15 work item.
func BenchmarkSolveCold(b *testing.B) {
	p := linoptShapedProblem(stats.NewRNG(11), 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWarm re-solves a slowly drifting sequence of 20-core
// problems through one Solver, which warm-starts each solve from the
// previous interval's optimal basis and reuses tableau storage. The drift
// models consecutive DVFS intervals: same structure, slightly different
// coefficients.
func BenchmarkSolveWarm(b *testing.B) {
	rng := stats.NewRNG(11)
	probs := make([]*Problem, 16)
	base := linoptShapedProblem(rng, 20)
	for i := range probs {
		p := &Problem{Objective: append([]float64(nil), base.Objective...)}
		for _, c := range base.Constraints {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: append([]float64(nil), c.Coeffs...), Rel: c.Rel,
				RHS: c.RHS * (1 + 0.02*rng.Float64()),
			})
		}
		probs[i] = p
	}
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(probs[i%len(probs)]); err != nil {
			b.Fatal(err)
		}
	}
}
