// Package miniyaml parses the small YAML subset the deploy/ manifests
// are written in, so the repository can schema-validate its Kubernetes
// manifests in a unit test without a YAML dependency (the module is
// pure stdlib by design). The subset is deliberately strict:
//
//   - mappings with `key: value` or `key:` followed by a deeper block
//   - lists whose `- ` items are indented deeper than their parent key
//   - scalars: double/single-quoted strings, integers, floats, booleans,
//     null/~, {} and [] literals, and plain strings
//   - `---` document separators and full-line or trailing comments
//
// Tabs, inconsistent indentation, duplicate keys, anchors, flow
// collections, and multi-line scalars are errors — a manifest that
// strays outside the subset fails the deploy test loudly instead of
// validating as something other than what the API server would see.
package miniyaml

import (
	"fmt"
	"strconv"
	"strings"
)

// line is one significant source line.
type line struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

// Parse parses src into one value per `---` document. Mappings decode
// as map[string]any, lists as []any, scalars as string, int64, float64,
// bool, or nil.
func Parse(src string) ([]any, error) {
	var docs []any
	var cur []line
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		p := &parser{lines: cur}
		v, err := p.block(0)
		if err != nil {
			return err
		}
		if p.pos != len(p.lines) {
			return fmt.Errorf("miniyaml: line %d: content outside the document structure", p.lines[p.pos].num)
		}
		docs = append(docs, v)
		cur = nil
		return nil
	}
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("miniyaml: line %d: tab characters are not allowed", num)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		if trimmed == "---" {
			if len(text)-len(trimmed) != 0 {
				return nil, fmt.Errorf("miniyaml: line %d: indented document separator", num)
			}
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		cur = append(cur, line{indent: len(text) - len(trimmed), text: strings.TrimRight(trimmed, " "), num: num})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return docs, nil
}

// stripComment removes a full-line or trailing ` #` comment, honouring
// quotes so a '#' inside a quoted scalar survives.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

// block parses the mapping or list starting at the current line, which
// must be indented at least minIndent.
func (p *parser) block(minIndent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("miniyaml: empty document")
	}
	ln := p.lines[p.pos]
	if ln.indent < minIndent {
		return nil, fmt.Errorf("miniyaml: line %d: expected content indented at least %d spaces", ln.num, minIndent)
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.list(ln.indent)
	}
	return p.mapping(ln.indent)
}

// mapping parses `key: value` lines at exactly indent.
func (p *parser) mapping(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("miniyaml: line %d: unexpected indent", ln.num)
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, fmt.Errorf("miniyaml: line %d: list item at mapping level (indent list items under their key)", ln.num)
		}
		key, rest, err := cutKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("miniyaml: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := scalar(rest, ln.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Bare `key:` — a nested block if the next line is deeper,
		// otherwise an explicit null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.block(indent + 1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

// list parses `- item` lines at exactly indent. An item's inline
// content is re-interpreted as a block two columns deeper, which is how
// `- name: x` followed by aligned `image: y` lines forms one map.
func (p *parser) list(indent int) ([]any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("miniyaml: line %d: unexpected indent", ln.num)
		}
		if ln.text == "-" {
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.block(indent + 1)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
			continue
		}
		rest, ok := strings.CutPrefix(ln.text, "- ")
		if !ok {
			return nil, fmt.Errorf("miniyaml: line %d: mapping key at list level", ln.num)
		}
		// An item whose inline content is itself a `key: value` (or a
		// nested dash) continues as a block two columns deeper — that is
		// how `- name: x` plus aligned `image: y` lines form one map.
		// Anything else is a plain scalar item.
		if _, _, err := cutKey(line{text: rest, num: ln.num}); err == nil ||
			rest == "-" || strings.HasPrefix(rest, "- ") {
			p.lines[p.pos] = line{indent: indent + 2, text: rest, num: ln.num}
			v, err := p.block(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := scalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// cutKey splits `key: rest` (or bare `key:`). Keys are plain scalars;
// the first colon followed by a space or end-of-line terminates them,
// so values like image tags keep their own colons.
func cutKey(ln line) (key, rest string, err error) {
	for i := 0; i < len(ln.text); i++ {
		if ln.text[i] != ':' {
			continue
		}
		if i+1 == len(ln.text) {
			return strings.TrimSpace(ln.text[:i]), "", nil
		}
		if ln.text[i+1] == ' ' {
			return strings.TrimSpace(ln.text[:i]), strings.TrimSpace(ln.text[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("miniyaml: line %d: expected `key: value`, got %q", ln.num, ln.text)
}

// scalar decodes an inline value.
func scalar(s string, num int) (any, error) {
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "{}":
		return map[string]any{}, nil
	case "[]":
		return []any{}, nil
	}
	if strings.HasPrefix(s, "\"") {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("miniyaml: line %d: bad quoted string %s", num, s)
		}
		return v, nil
	}
	if strings.HasPrefix(s, "'") {
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("miniyaml: line %d: unterminated single-quoted string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") || strings.HasPrefix(s, "&") ||
		strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, fmt.Errorf("miniyaml: line %d: %q is outside the supported subset", num, s)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// Get walks a parsed document by mapping keys and integer list indexes
// (path elements like "spec", "containers", "0", "image"), returning
// nil, false when any step is missing or mistyped. It keeps manifest
// assertions readable without reflection at every call site.
func Get(doc any, path ...string) (any, bool) {
	cur := doc
	for _, step := range path {
		switch node := cur.(type) {
		case map[string]any:
			v, ok := node[step]
			if !ok {
				return nil, false
			}
			cur = v
		case []any:
			i, err := strconv.Atoi(step)
			if err != nil || i < 0 || i >= len(node) {
				return nil, false
			}
			cur = node[i]
		default:
			return nil, false
		}
	}
	return cur, true
}

// GetString is Get for string leaves.
func GetString(doc any, path ...string) (string, bool) {
	v, ok := Get(doc, path...)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// GetInt is Get for integer leaves.
func GetInt(doc any, path ...string) (int64, bool) {
	v, ok := Get(doc, path...)
	if !ok {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}
