package miniyaml

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseManifestShapes(t *testing.T) {
	docs, err := Parse(`# a comment
apiVersion: apps/v1
kind: Deployment
metadata:
  name: vaschedd-coordinator
  labels:
    app: vaschedd # trailing comment
spec:
  replicas: 1
  template:
    spec:
      containers:
        - name: vaschedd
          image: vasched/vaschedd:latest
          args:
            - -addr
            - ":8080"
          ports:
            - containerPort: 8080
              name: http
          readinessProbe:
            httpGet:
              path: /healthz
              port: 8080
      volumes:
        - name: wal
          emptyDir: {}
---
apiVersion: v1
kind: Service
metadata:
  name: vaschedd
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("documents = %d, want 2", len(docs))
	}
	if kind, _ := GetString(docs[0], "kind"); kind != "Deployment" {
		t.Fatalf("kind = %q", kind)
	}
	if app, _ := GetString(docs[0], "metadata", "labels", "app"); app != "vaschedd" {
		t.Fatalf("label app = %q (trailing comment not stripped?)", app)
	}
	if n, _ := GetInt(docs[0], "spec", "replicas"); n != 1 {
		t.Fatalf("replicas = %d", n)
	}
	if img, _ := GetString(docs[0], "spec", "template", "spec", "containers", "0", "image"); img != "vasched/vaschedd:latest" {
		t.Fatalf("image = %q (colon in value mishandled)", img)
	}
	args, ok := Get(docs[0], "spec", "template", "spec", "containers", "0", "args")
	if !ok || !reflect.DeepEqual(args, []any{"-addr", ":8080"}) {
		t.Fatalf("args = %#v", args)
	}
	if port, _ := GetInt(docs[0], "spec", "template", "spec", "containers", "0", "ports", "0", "containerPort"); port != 8080 {
		t.Fatalf("containerPort = %d", port)
	}
	if path, _ := GetString(docs[0], "spec", "template", "spec", "containers", "0", "readinessProbe", "httpGet", "path"); path != "/healthz" {
		t.Fatalf("readiness path = %q", path)
	}
	ed, ok := Get(docs[0], "spec", "template", "spec", "volumes", "0", "emptyDir")
	if !ok || !reflect.DeepEqual(ed, map[string]any{}) {
		t.Fatalf("emptyDir = %#v", ed)
	}
	if kind, _ := GetString(docs[1], "kind"); kind != "Service" {
		t.Fatalf("second doc kind = %q", kind)
	}
}

func TestParseScalars(t *testing.T) {
	docs, err := Parse(`str: plain
quoted: "a: b # not a comment"
single: 'it''s'
num: -7
flt: 2.5
yes: true
no: false
nothing: null
tilde: ~
empty:
`)
	if err != nil {
		t.Fatal(err)
	}
	m := docs[0].(map[string]any)
	want := map[string]any{
		"str": "plain", "quoted": "a: b # not a comment", "single": "it's",
		"num": int64(-7), "flt": 2.5, "yes": true, "no": false,
		"nothing": nil, "tilde": nil, "empty": nil,
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("parsed = %#v\nwant %#v", m, want)
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"tab indent":        "a:\n\tb: 1\n",
		"duplicate key":     "a: 1\na: 2\n",
		"missing colon":     "just words\n",
		"ragged indent":     "a:\n   b: 1\n  c: 2\n",
		"list at map level": "a: 1\n- b\n",
		"flow mapping":      "a: {b: 1}\n",
		"anchor":            "a: &x 1\n",
		"block scalar":      "a: |\n  text\n",
		"unterminated":      "a: 'oops\n",
		"sibling list":      "key:\n- under-indented item\n",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseEmptyAndSeparators(t *testing.T) {
	docs, err := Parse("\n# only comments\n\n")
	if err != nil || len(docs) != 0 {
		t.Fatalf("docs = %v, err = %v", docs, err)
	}
	docs, err = Parse("---\na: 1\n---\nb: 2\n")
	if err != nil || len(docs) != 2 {
		t.Fatalf("docs = %v, err = %v", docs, err)
	}
}

func TestGetMisses(t *testing.T) {
	docs, _ := Parse("a:\n  b:\n    - 1\n    - 2\n")
	doc := docs[0]
	if v, ok := Get(doc, "a", "b", "1"); !ok || v != int64(2) {
		t.Fatalf("index get = %v %v", v, ok)
	}
	for _, path := range [][]string{
		{"missing"}, {"a", "missing"}, {"a", "b", "9"}, {"a", "b", "x"}, {"a", "b", "0", "deeper"},
	} {
		if _, ok := Get(doc, path...); ok {
			t.Errorf("Get(%v) succeeded", path)
		}
	}
	if _, ok := GetString(doc, "a", "b", "0"); ok {
		t.Error("GetString on int succeeded")
	}
	if _, ok := GetInt(doc, "a"); ok {
		t.Error("GetInt on map succeeded")
	}
}

func TestParseRejectsContentAfterDocument(t *testing.T) {
	// A second top-level block at deeper indent than the first is
	// structurally impossible; make sure it errors rather than being
	// silently dropped.
	if _, err := Parse("a: 1\n  b: 2\n"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}
