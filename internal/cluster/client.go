package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vasched/internal/farm"
	"vasched/internal/metrics"
	"vasched/internal/trace"
)

// Job identifies the distributable work: which registered kernel to run
// and the Env seeds/scale both sides rebuild it from. A die's result is a
// pure function of (Job, die index), which is the whole determinism
// argument: shard boundaries, worker assignment, retries and hedges can
// change freely without changing a single output byte.
type Job struct {
	Kernel    string
	Scale     string
	Seed      int64
	BatchSeed int64
	// ConfigHash is the coordinator Env's canonical model-config hash
	// (diecache.ConfigHash). Workers rebuild the Env from Scale and
	// refuse the shard if their hash disagrees — the guard against
	// version skew silently producing different dies under one Scale
	// name. Zero means "unchecked" (old callers, hand-built jobs).
	ConfigHash uint64
}

// ErrNoWorkers is returned when a shard cannot be placed because every
// worker is down, backed off, or the registry is empty. Callers treat it
// as the degradation signal and fall back to pure-local execution.
var ErrNoWorkers = errors.New("cluster: no workers available")

// Options tunes the coordinator.
type Options struct {
	// ShardSize is how many die indices travel in one request (default 8).
	// Smaller shards spread better and retry cheaper; larger ones
	// amortise HTTP overhead.
	ShardSize int
	// Timeout bounds one dispatch (HTTP round trip), default 120s.
	Timeout time.Duration
	// Retries is how many extra attempts a shard gets after its first
	// dispatch fails (default 3). Each retry prefers a different worker.
	Retries int
	// BackoffBase and BackoffMax shape the capped exponential backoff a
	// failing worker sits out: base*2^(consecutive failures-1), capped at
	// max (defaults 100ms, 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeAfter, when positive, re-dispatches a straggler shard to a
	// second worker if the first response hasn't arrived in time; the
	// first response wins (both are byte-identical by construction).
	// 0 disables hedging.
	HedgeAfter time.Duration
	// Concurrency bounds in-flight shards (default 2 per worker).
	Concurrency int
	// Fault, when non-nil, deterministically injects failures into
	// dispatches (tests and chaos runs).
	Fault *FaultPlan
	// Metrics receives every counter and latency histogram; a private
	// registry is created when nil.
	Metrics *metrics.Registry
	// HTTPClient overrides the transport (tests); per-dispatch timeouts
	// come from Timeout via context, not from the http.Client.
	HTTPClient *http.Client
}

// withDefaults fills unset options.
func (o Options) withDefaults(numWorkers int) Options {
	if o.ShardSize <= 0 {
		o.ShardSize = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2 * numWorkers
		if o.Concurrency < 1 {
			o.Concurrency = 1
		}
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// worker is one registry entry. Health has two inputs: liveness probes
// (ProbeAll flips healthy) and dispatch outcomes (consecutive failures
// put the worker into capped exponential backoff).
type worker struct {
	url string

	mu           sync.Mutex
	healthy      bool
	consecFails  int
	backoffUntil time.Time
	ok           int64
	failed       int64
}

// available reports whether the worker may receive a dispatch now.
func (w *worker) available(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy && !now.Before(w.backoffUntil)
}

// succeed resets failure state after a good dispatch.
func (w *worker) succeed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ok++
	w.consecFails = 0
	w.backoffUntil = time.Time{}
}

// fail records a bad dispatch and extends the backoff window.
func (w *worker) fail(now time.Time, base, max time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failed++
	w.consecFails++
	d := base << (w.consecFails - 1)
	if w.consecFails > 16 || d > max || d <= 0 {
		d = max
	}
	w.backoffUntil = now.Add(d)
	return d
}

// WorkerInfo is a point-in-time registry snapshot entry (the /v1/cluster
// status endpoint serves these).
type WorkerInfo struct {
	URL              string    `json:"url"`
	Healthy          bool      `json:"healthy"`
	ConsecutiveFails int       `json:"consecutive_fails"`
	BackoffUntil     time.Time `json:"backoff_until,omitempty"`
	Dispatched       int64     `json:"dispatched_ok"`
	Failed           int64     `json:"failed"`
}

// Client is the coordinator side: it shards an index space over the
// worker registry and reduces the responses in index order.
type Client struct {
	workers []*worker
	opt     Options
	rr      atomic.Uint64
}

// NewClient builds a coordinator over the given worker base URLs
// (e.g. "http://10.0.0.7:8081"). Workers start healthy; attach a probe
// loop (ProbeAll) for liveness-based eviction.
func NewClient(urls []string, opt Options) *Client {
	c := &Client{opt: opt.withDefaults(len(urls))}
	for _, u := range urls {
		c.workers = append(c.workers, &worker{url: u, healthy: true})
	}
	return c
}

// Metrics returns the registry every dispatch outcome is counted in.
func (c *Client) Metrics() *metrics.Registry { return c.opt.Metrics }

// NumWorkers returns the registry size.
func (c *Client) NumWorkers() int { return len(c.workers) }

// Workers snapshots the registry for status endpoints.
func (c *Client) Workers() []WorkerInfo {
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		w.mu.Lock()
		out = append(out, WorkerInfo{
			URL:              w.url,
			Healthy:          w.healthy,
			ConsecutiveFails: w.consecFails,
			BackoffUntil:     w.backoffUntil,
			Dispatched:       w.ok,
			Failed:           w.failed,
		})
		w.mu.Unlock()
	}
	return out
}

// ProbeAll liveness-checks every worker's /healthz concurrently, updates
// the registry, and returns how many are healthy. A worker failing its
// probe is skipped by dispatch until a later probe revives it.
func (c *Client) ProbeAll(ctx context.Context) int {
	var wg sync.WaitGroup
	var healthyN atomic.Int64
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ok := c.probe(ctx, w)
			w.mu.Lock()
			w.healthy = ok
			w.mu.Unlock()
			if ok {
				healthyN.Add(1)
			} else {
				c.opt.Metrics.Counter(`cluster_probe_failures_total`).Inc()
			}
		}(w)
	}
	wg.Wait()
	return int(healthyN.Load())
}

func (c *Client) probe(ctx context.Context, w *worker) bool {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Run shards the index space [0, n) of job across the workers and
// returns one result blob per index, in index order — byte-identical to
// running the kernel locally, whatever the shard size, worker count, or
// failure pattern. The whole run fails (so the caller can degrade to
// local execution) only when some shard exhausted its retries or no
// worker was available.
func (c *Client) Run(ctx context.Context, job Job, n int) ([][]byte, error) {
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	return c.RunIndices(ctx, job, indices)
}

// RunIndices is Run over an arbitrary index list: it shards exactly the
// given indices (the wire format has always carried explicit die lists)
// and returns one blob per entry, in argument order. The adaptive
// sampling driver dispatches each round's stratum plan through this —
// byte-identical to evaluating the same indices locally.
func (c *Client) RunIndices(ctx context.Context, job Job, indices []int) ([][]byte, error) {
	if len(c.workers) == 0 {
		c.opt.Metrics.Counter(`cluster_runs_total{status="degraded"}`).Inc()
		return nil, ErrNoWorkers
	}
	n := len(indices)
	blobs := make([][]byte, n)
	shards := (n + c.opt.ShardSize - 1) / c.opt.ShardSize
	ctx, sp := trace.Start(ctx, "cluster.run",
		trace.String("kernel", job.Kernel), trace.Int("indices", n), trace.Int("shards", shards))
	defer sp.End()
	// The shard fan-out reuses the farm engine: index-slotted writes into
	// blobs, serial reduction by the caller.
	err := farm.Map(ctx, c.opt.Concurrency, shards, func(ctx context.Context, s int) error {
		lo := s * c.opt.ShardSize
		hi := lo + c.opt.ShardSize
		if hi > n {
			hi = n
		}
		ctx, ssp := trace.Start(ctx, "cluster.shard",
			trace.Int("lo", indices[lo]), trace.Int("hi", indices[hi-1]+1))
		defer ssp.End()
		dies := make([]int, hi-lo)
		copy(dies, indices[lo:hi])
		got, err := c.runShard(ctx, job, dies)
		if err != nil {
			return err
		}
		copy(blobs[lo:hi], got)
		return nil
	})
	if err != nil {
		c.opt.Metrics.Counter(`cluster_runs_total{status="degraded"}`).Inc()
		return nil, err
	}
	c.opt.Metrics.Counter(`cluster_runs_total{status="ok"}`).Inc()
	return blobs, nil
}

// runShard drives one shard through the retry state machine: pick a
// worker, dispatch (with optional hedging), and on failure back the
// worker off and retry on another one.
func (c *Client) runShard(ctx context.Context, job Job, dies []int) ([][]byte, error) {
	req := &ShardRequest{Kernel: job.Kernel, Scale: job.Scale, Seed: job.Seed, BatchSeed: job.BatchSeed, ConfigHash: job.ConfigHash, Dies: dies}
	payload := EncodeRequest(req)

	var lastErr error
	var avoid *worker
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := c.pick(avoid)
		if w == nil {
			break
		}
		if attempt > 0 {
			c.opt.Metrics.Counter(`cluster_shard_retries_total`).Inc()
		}
		dctx, dsp := trace.Start(ctx, "cluster.dispatch", trace.Int("attempt", attempt))
		resp, err := c.dispatch(dctx, w, payload, len(dies))
		if err == nil {
			dsp.AddAttr(trace.String("status", "ok"))
			dsp.End()
			c.opt.Metrics.Counter(`cluster_shards_total{status="ok"}`).Inc()
			return resp.Blobs, nil
		}
		dsp.AddAttr(trace.String("status", "error"))
		if IsInjected(err) {
			dsp.AddAttr(trace.Bool("fault", true))
		}
		dsp.End()
		lastErr = err
		avoid = w
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	c.opt.Metrics.Counter(`cluster_shards_total{status="failed"}`).Inc()
	if lastErr == nil {
		lastErr = ErrNoWorkers
	}
	return nil, fmt.Errorf("cluster: shard [%d..%d] failed after retries: %w", dies[0], dies[len(dies)-1], lastErr)
}

// pick selects the next available worker round-robin, preferring one
// different from avoid (the worker that just failed); avoid is only
// returned when it is the sole available worker.
func (c *Client) pick(avoid *worker) *worker {
	now := time.Now()
	start := int(c.rr.Add(1))
	var fallback *worker
	for i := 0; i < len(c.workers); i++ {
		w := c.workers[(start+i)%len(c.workers)]
		if !w.available(now) {
			continue
		}
		if w == avoid {
			fallback = w
			continue
		}
		return w
	}
	return fallback
}

// dispatch sends one shard to w, hedging to a second worker when the
// response straggles past HedgeAfter. Whichever worker answers has its
// health updated; the first success wins.
func (c *Client) dispatch(ctx context.Context, w *worker, payload []byte, wantBlobs int) (*ShardResponse, error) {
	type outcome struct {
		resp *ShardResponse
		err  error
		w    *worker
	}
	start := time.Now()
	done := func(o outcome) (*ShardResponse, error) {
		if o.err != nil {
			o.w.fail(time.Now(), c.opt.BackoffBase, c.opt.BackoffMax)
			c.opt.Metrics.Counter(`cluster_worker_backoffs_total`).Inc()
			return nil, o.err
		}
		o.w.succeed()
		c.opt.Metrics.Histogram(`cluster_shard_seconds`).Observe(time.Since(start).Seconds())
		return o.resp, nil
	}

	if c.opt.HedgeAfter <= 0 || len(c.workers) < 2 {
		resp, err := c.call(ctx, w, payload, wantBlobs)
		return done(outcome{resp: resp, err: err, w: w})
	}

	ch := make(chan outcome, 2)
	launch := func(w *worker) {
		go func() {
			resp, err := c.call(ctx, w, payload, wantBlobs)
			ch <- outcome{resp: resp, err: err, w: w}
		}()
	}
	launch(w)
	inFlight := 1
	hedged := false
	timer := time.NewTimer(c.opt.HedgeAfter)
	defer timer.Stop()
	var firstErr outcome
	for {
		select {
		case o := <-ch:
			inFlight--
			if o.err == nil {
				// Winner. A still-in-flight sibling drains into the
				// buffered channel and is discarded.
				return done(o)
			}
			// Record the failure against the responder immediately…
			o.w.fail(time.Now(), c.opt.BackoffBase, c.opt.BackoffMax)
			c.opt.Metrics.Counter(`cluster_worker_backoffs_total`).Inc()
			if firstErr.err == nil {
				firstErr = o
			}
			if inFlight > 0 {
				continue // …but give the sibling a chance to win.
			}
			// Don't double-mark: done() would fail the worker again, so
			// surface the error directly.
			return nil, firstErr.err
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			if w2 := c.pick(w); w2 != nil && w2 != w {
				c.opt.Metrics.Counter(`cluster_shards_hedged_total`).Inc()
				trace.Event(ctx, "cluster.hedge")
				launch(w2)
				inFlight++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// call performs one HTTP dispatch (the fault-injection point).
func (c *Client) call(ctx context.Context, w *worker, payload []byte, wantBlobs int) (*ShardResponse, error) {
	n, f := c.opt.Fault.take()
	if f.Action != FaultNone {
		c.opt.Metrics.Counter(fmt.Sprintf("cluster_faults_injected_total{action=%q}", f.Action)).Inc()
	}
	switch f.Action {
	case FaultError:
		return nil, injectedErr(n, FaultError)
	case FaultDrop:
		// A blackholed response surfaces as a timeout; synthesising it
		// keeps the drop path deterministic and sleep-free.
		return nil, fmt.Errorf("%w (%w)", injectedErr(n, FaultDrop), context.DeadlineExceeded)
	}

	ctx, cancel := context.WithTimeout(ctx, c.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/shard", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		c.opt.Metrics.Counter(`cluster_dispatch_total{status="transport_error"}`).Inc()
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	resp.Body.Close()
	if err != nil {
		c.opt.Metrics.Counter(`cluster_dispatch_total{status="transport_error"}`).Inc()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		c.opt.Metrics.Counter(`cluster_dispatch_total{status="bad_status"}`).Inc()
		return nil, fmt.Errorf("cluster: worker %s: status %d: %s", w.url, resp.StatusCode, truncate(body, 200))
	}
	switch f.Action {
	case FaultCorrupt:
		body = corrupt(body)
	case FaultDelay:
		select {
		case <-time.After(f.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	sr, err := DecodeResponse(body)
	if err != nil {
		c.opt.Metrics.Counter(`cluster_dispatch_total{status="corrupt"}`).Inc()
		return nil, err
	}
	if len(sr.Blobs) != wantBlobs {
		c.opt.Metrics.Counter(`cluster_dispatch_total{status="short"}`).Inc()
		return nil, fmt.Errorf("cluster: worker %s returned %d blobs, want %d", w.url, len(sr.Blobs), wantBlobs)
	}
	c.opt.Metrics.Counter(`cluster_dispatch_total{status="ok"}`).Inc()
	return sr, nil
}

// maxResponseBytes bounds a worker response read (64 MiB, matching the
// codec's own limits).
const maxResponseBytes = maxBlobLen + 1<<20

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
