// Package cluster shards an experiment's die (and trial) loop across
// worker processes over HTTP while preserving the repository's
// determinism contract: a clustered run is byte-identical to a local one
// at any shard count, worker count, or failure pattern.
//
// The contract rests on the same two invariants internal/farm documents —
// per-index seed derivation (a die's result is a pure function of the job
// seeds and the die index, never of which worker ran it) and index-slotted
// collection (the coordinator reduces shard results serially in die-index
// order). The cluster layer adds the distribution machinery around them:
//
//   - a compact binary wire format (this file) with an FNV-64a integrity
//     checksum, so corrupted responses are detected and retried rather
//     than silently reduced;
//   - a coordinator Client (client.go) with a health-checked worker
//     registry, per-shard timeouts, capped exponential backoff with
//     retry-on-another-worker, hedged re-dispatch of straggler shards,
//     and graceful degradation to pure-local execution;
//   - a worker-side HTTP Handler (server.go) that executes shards through
//     a caller-supplied Executor;
//   - a deterministic fault-injection hook (fault.go) so every failure
//     path above is testable without flaky sleeps.
//
// Everything is counted in internal/metrics and surfaced on /metrics.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Wire-format magics ("vcq2" request, "vcr1" response) double as version
// tags: any incompatible change bumps the trailing digit. vcq1 → vcq2
// added the model-config hash, so a mixed-version cluster fails loudly
// at decode instead of skipping the hash check.
var (
	reqMagic  = [4]byte{'v', 'c', 'q', '2'}
	respMagic = [4]byte{'v', 'c', 'r', '1'}
)

// Decode limits. They bound allocation on malformed input (the fuzz
// target feeds arbitrary bytes) and are far above anything a real
// experiment ships: the paper's batches are 200 dies, and per-die blobs
// are small JSON documents.
const (
	maxNameLen  = 1 << 10 // kernel / scale strings
	maxDies     = 1 << 20 // die indices per shard
	maxBlobLen  = 1 << 26 // one die's serialized result
	maxBlobs    = 1 << 20
	checksumLen = 8
)

// ErrCorrupt is returned by the decoders for any malformed payload —
// truncation, bad magic, length fields that overrun the buffer, or an
// integrity-checksum mismatch. The client treats it like a transport
// failure: the shard is retried, preferably on another worker.
var ErrCorrupt = errors.New("cluster: corrupt payload")

// corruptf wraps ErrCorrupt with detail (errors.Is(err, ErrCorrupt)
// still holds).
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// ShardRequest asks a worker to run one registered die kernel over an
// explicit list of die (or task) indices. Explicit indices — rather than
// a [lo,hi) range — let the coordinator re-dispatch arbitrary subsets on
// retry and keep the request self-describing.
type ShardRequest struct {
	// Kernel names a die kernel registered on the worker (see
	// experiments.RegisterKernel).
	Kernel string
	// Scale selects the worker-side Env ("quick" or "default"): both
	// sides rebuild the same stock environment, which is what makes the
	// remote result bit-identical to the local one.
	Scale string
	// Seed and BatchSeed reproduce the coordinator Env's random streams.
	Seed      int64
	BatchSeed int64
	// ConfigHash pins the coordinator's canonical model-config hash
	// (diecache.ConfigHash); a worker whose rebuilt Env hashes
	// differently must reject the shard. Zero disables the check.
	ConfigHash uint64
	// Dies are the indices to run, in the order results are wanted.
	Dies []int
}

// ShardResponse carries one serialized result blob per requested index,
// in request order.
type ShardResponse struct {
	Blobs [][]byte
}

// appendChecksum appends the FNV-64a of buf to buf.
func appendChecksum(buf []byte) []byte {
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf)
}

// splitChecksum verifies and strips the trailing checksum.
func splitChecksum(buf []byte) ([]byte, error) {
	if len(buf) < checksumLen {
		return nil, corruptf("short payload (%d bytes)", len(buf))
	}
	body, sum := buf[:len(buf)-checksumLen], buf[len(buf)-checksumLen:]
	h := fnv.New64a()
	h.Write(body)
	if string(h.Sum(nil)) != string(sum) {
		return nil, corruptf("checksum mismatch")
	}
	return body, nil
}

// EncodeRequest serialises a shard request.
func EncodeRequest(r *ShardRequest) []byte {
	buf := make([]byte, 0, 4+2+len(r.Kernel)+2+len(r.Scale)+24+4+4*len(r.Dies)+checksumLen)
	buf = append(buf, reqMagic[:]...)
	buf = appendString(buf, r.Kernel)
	buf = appendString(buf, r.Scale)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seed))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.BatchSeed))
	buf = binary.LittleEndian.AppendUint64(buf, r.ConfigHash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Dies)))
	for _, d := range r.Dies {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	return appendChecksum(buf)
}

// DecodeRequest parses a shard request, tolerating arbitrary malformed
// input (it returns ErrCorrupt rather than panicking or over-allocating).
func DecodeRequest(buf []byte) (*ShardRequest, error) {
	body, err := splitChecksum(buf)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: body}
	var magic [4]byte
	d.bytes(magic[:])
	if magic != reqMagic {
		return nil, corruptf("bad request magic %q", magic[:])
	}
	r := &ShardRequest{}
	r.Kernel = d.str()
	r.Scale = d.str()
	r.Seed = int64(d.u64())
	r.BatchSeed = int64(d.u64())
	r.ConfigHash = d.u64()
	n := int(d.u32())
	if n < 0 || n > maxDies || d.err == nil && n*4 > len(d.buf)-d.off {
		return nil, corruptf("die count %d overruns payload", n)
	}
	if d.err != nil {
		return nil, d.err
	}
	r.Dies = make([]int, n)
	for i := range r.Dies {
		r.Dies[i] = int(int32(d.u32()))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, corruptf("%d trailing bytes", len(d.buf)-d.off)
	}
	return r, nil
}

// EncodeResponse serialises a shard response.
func EncodeResponse(r *ShardResponse) []byte {
	size := 4 + 4 + checksumLen
	for _, b := range r.Blobs {
		size += 4 + len(b)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, respMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Blobs)))
	for _, b := range r.Blobs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return appendChecksum(buf)
}

// DecodeResponse parses a shard response with the same malformed-input
// tolerance as DecodeRequest.
func DecodeResponse(buf []byte) (*ShardResponse, error) {
	body, err := splitChecksum(buf)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: body}
	var magic [4]byte
	d.bytes(magic[:])
	if magic != respMagic {
		return nil, corruptf("bad response magic %q", magic[:])
	}
	n := int(d.u32())
	if n < 0 || n > maxBlobs {
		return nil, corruptf("blob count %d", n)
	}
	if d.err != nil {
		return nil, d.err
	}
	r := &ShardResponse{Blobs: make([][]byte, 0, min(n, (len(d.buf)-d.off)/4+1))}
	for i := 0; i < n; i++ {
		ln := int(d.u32())
		if ln < 0 || ln > maxBlobLen || d.err == nil && ln > len(d.buf)-d.off {
			return nil, corruptf("blob %d length %d overruns payload", i, ln)
		}
		if d.err != nil {
			return nil, d.err
		}
		b := make([]byte, ln)
		d.bytes(b)
		r.Blobs = append(r.Blobs, b)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, corruptf("%d trailing bytes", len(d.buf)-d.off)
	}
	return r, nil
}

// appendString appends a u16-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor over a payload; the first overrun
// latches err and every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = corruptf("truncated at offset %d (want %d bytes of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) bytes(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (d *decoder) u16() uint16 {
	if b := d.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (d *decoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *decoder) str() string {
	n := int(d.u16())
	if n > maxNameLen {
		if d.err == nil {
			d.err = corruptf("string length %d", n)
		}
		return ""
	}
	return string(d.take(n))
}
