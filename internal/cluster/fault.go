package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultAction is what a fault rule does to one shard dispatch.
type FaultAction int

// Fault actions. FaultDrop models a blackholed response: the dispatch
// fails with a synthetic timeout *without waiting out the real per-shard
// timeout*, so retry/degradation paths are testable deterministically.
// FaultDelay holds the (correct) response back, which is how straggler
// hedging is exercised. FaultError fails the dispatch with a transport
// error, and FaultCorrupt flips bytes in the response so the checksum
// layer has to catch it.
const (
	FaultNone FaultAction = iota
	FaultError
	FaultDrop
	FaultCorrupt
	FaultDelay
)

// String names the action for metrics labels.
func (a FaultAction) String() string {
	switch a {
	case FaultError:
		return "error"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	default:
		return "none"
	}
}

// Fault is one injected failure.
type Fault struct {
	Action FaultAction
	// Delay is how long a FaultDelay holds the response back.
	Delay time.Duration
}

// errInjected marks coordinator-side injected failures so tests can tell
// them from organic ones.
var errInjected = errors.New("cluster: injected fault")

// IsInjected reports whether err came from a FaultPlan rule.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// FaultPlan deterministically injects failures into the coordinator's
// shard dispatches. Dispatches are numbered 0,1,2,... in the order the
// client issues them (retries and hedges count too); a rule installed
// with On(n, f) fires on the nth dispatch exactly once. The plan is the
// package's testing seam: the whole retry / hedge / degradation state
// machine can be driven through its worst cases without a flaky network
// or real timeouts.
//
// A plan is safe for concurrent use. The zero value injects nothing.
type FaultPlan struct {
	mu    sync.Mutex
	next  int
	rules map[int]Fault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// On installs f on the nth dispatch (0-based) and returns the plan for
// chaining.
func (p *FaultPlan) On(n int, f Fault) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rules == nil {
		p.rules = make(map[int]Fault)
	}
	p.rules[n] = f
	return p
}

// SeededFaultPlan builds a plan that flips a seeded coin for each of the
// first n dispatches, injecting one of actions with probability rate.
// Same seed, same plan — a chaos run is exactly reproducible.
func SeededFaultPlan(seed int64, n int, rate float64, actions ...FaultAction) *FaultPlan {
	if len(actions) == 0 {
		actions = []FaultAction{FaultError, FaultDrop, FaultCorrupt}
	}
	rng := rand.New(rand.NewSource(seed))
	p := NewFaultPlan()
	for i := 0; i < n; i++ {
		if rng.Float64() < rate {
			p.On(i, Fault{Action: actions[rng.Intn(len(actions))]})
		}
	}
	return p
}

// take consumes the next dispatch ordinal and returns its fault (if any).
// A nil plan injects nothing.
func (p *FaultPlan) take() (int, Fault) {
	if p == nil {
		return -1, Fault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.next
	p.next++
	f := p.rules[n]
	delete(p.rules, n)
	return n, f
}

// Dispatches returns how many dispatches the plan has observed.
func (p *FaultPlan) Dispatches() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// corrupt returns a copy of buf with one byte flipped (deterministically,
// near the middle so both header- and payload-area corruption get hit
// across different buffer sizes).
func corrupt(buf []byte) []byte {
	if len(buf) == 0 {
		return []byte{0xff}
	}
	out := append([]byte(nil), buf...)
	out[len(out)/2] ^= 0xa5
	return out
}

// injectedErr builds the error for an injected fault at dispatch n.
func injectedErr(n int, a FaultAction) error {
	return fmt.Errorf("%w: %s at dispatch %d", errInjected, a, n)
}
