package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"vasched/internal/metrics"
)

// contentType labels shard payloads on the wire.
const contentType = "application/x-vasched-shard"

// Executor runs one decoded shard request on the worker side. The
// experiments package provides the real implementation (rebuilding the
// stock Env for the request's scale and running the registered kernel);
// tests substitute cheap fakes.
type Executor interface {
	ExecuteShard(ctx context.Context, req *ShardRequest) (*ShardResponse, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, req *ShardRequest) (*ShardResponse, error)

// ExecuteShard implements Executor.
func (f ExecutorFunc) ExecuteShard(ctx context.Context, req *ShardRequest) (*ShardResponse, error) {
	return f(ctx, req)
}

// Handler serves the worker side of the cluster protocol:
//
//	POST /v1/shard  — binary ShardRequest in, binary ShardResponse out
//	GET  /healthz   — liveness (the coordinator's probe target)
//	GET  /metrics   — Prometheus-style text from reg
//
// Every request outcome is counted in reg; shard execution latency lands
// in the worker_shard_seconds histogram.
func Handler(ex Executor, reg *metrics.Registry) http.Handler {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxResponseBytes))
		if err != nil {
			reg.Counter(`worker_shards_total{status="read_error"}`).Inc()
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeRequest(body)
		if err != nil {
			reg.Counter(`worker_shards_total{status="bad_request"}`).Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		resp, err := ex.ExecuteShard(r.Context(), req)
		if err != nil {
			reg.Counter(`worker_shards_total{status="failed"}`).Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(resp.Blobs) != len(req.Dies) {
			reg.Counter(`worker_shards_total{status="short"}`).Inc()
			http.Error(w, fmt.Sprintf("executor returned %d blobs for %d dies", len(resp.Blobs), len(req.Dies)), http.StatusInternalServerError)
			return
		}
		reg.Counter(`worker_shards_total{status="ok"}`).Inc()
		reg.Counter(`worker_dies_total`).Add(int64(len(req.Dies)))
		reg.Histogram(`worker_shard_seconds`).Observe(time.Since(start).Seconds())
		w.Header().Set("Content-Type", contentType)
		w.Write(EncodeResponse(resp))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok","role":"worker"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, reg.Render())
	})
	return mux
}
