package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*ShardRequest{
		{Kernel: "die-ratios", Scale: "quick", Seed: 2008, BatchSeed: 1, Dies: []int{0, 1, 2, 7}},
		{Kernel: "", Scale: "", Seed: -5, BatchSeed: -9, Dies: nil},
		{Kernel: "sched-pm", Scale: "default", Seed: 1 << 40, BatchSeed: -(1 << 40), Dies: []int{199}},
	}
	for _, req := range cases {
		buf := EncodeRequest(req)
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode(%+v): %v", req, err)
		}
		if got.Kernel != req.Kernel || got.Scale != req.Scale || got.Seed != req.Seed || got.BatchSeed != req.BatchSeed {
			t.Fatalf("round trip mangled header: %+v -> %+v", req, got)
		}
		if len(got.Dies) != len(req.Dies) || (len(req.Dies) > 0 && !reflect.DeepEqual(got.Dies, req.Dies)) {
			t.Fatalf("round trip mangled dies: %v -> %v", req.Dies, got.Dies)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*ShardResponse{
		{Blobs: [][]byte{[]byte("a"), []byte(""), []byte("hello world")}},
		{Blobs: nil},
		{Blobs: [][]byte{bytes.Repeat([]byte{0xab}, 4096)}},
	}
	for _, resp := range cases {
		buf := EncodeResponse(resp)
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got.Blobs) != len(resp.Blobs) {
			t.Fatalf("blob count %d != %d", len(got.Blobs), len(resp.Blobs))
		}
		for i := range resp.Blobs {
			if !bytes.Equal(got.Blobs[i], resp.Blobs[i]) {
				t.Fatalf("blob %d mangled", i)
			}
		}
	}
}

// TestDecodeMalformed feeds the decoders systematically broken payloads:
// all must come back ErrCorrupt, none may panic or over-allocate.
func TestDecodeMalformed(t *testing.T) {
	goodReq := EncodeRequest(&ShardRequest{Kernel: "k", Scale: "quick", Seed: 1, BatchSeed: 2, Dies: []int{1, 2, 3}})
	goodResp := EncodeResponse(&ShardResponse{Blobs: [][]byte{[]byte("xy"), []byte("z")}})

	check := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: decode accepted malformed payload", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error %v is not ErrCorrupt", name, err)
		}
	}

	// Truncations at every length.
	for i := 0; i < len(goodReq); i++ {
		_, err := DecodeRequest(goodReq[:i])
		check("request truncation", err)
	}
	for i := 0; i < len(goodResp); i++ {
		_, err := DecodeResponse(goodResp[:i])
		check("response truncation", err)
	}
	// Single-bit corruption anywhere must fail the checksum (or a later
	// structural check).
	for i := 0; i < len(goodReq); i++ {
		bad := append([]byte(nil), goodReq...)
		bad[i] ^= 0x40
		if _, err := DecodeRequest(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	// Wrong magic (with a valid checksum).
	swapped := append([]byte(nil), goodResp[:len(goodResp)-checksumLen]...)
	copy(swapped, reqMagic[:])
	_, err := DecodeResponse(appendChecksum(swapped))
	check("response with request magic", err)
	// Huge length fields with valid checksums must be rejected by the
	// structural caps, not by an attempted allocation.
	huge := append([]byte(nil), respMagic[:]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f) // ~2^31 blobs
	_, err = DecodeResponse(appendChecksum(huge))
	check("huge blob count", err)
	// Trailing garbage behind a valid body.
	trailing := append([]byte(nil), goodReq[:len(goodReq)-checksumLen]...)
	trailing = append(trailing, 0xde, 0xad)
	_, err = DecodeRequest(appendChecksum(trailing))
	check("trailing bytes", err)
	// Empty and tiny payloads.
	for _, b := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0}, checksumLen)} {
		if _, err := DecodeRequest(b); err == nil {
			t.Fatal("tiny request accepted")
		}
		if _, err := DecodeResponse(b); err == nil {
			t.Fatal("tiny response accepted")
		}
	}
}

// TestEncodeDeterministic pins that encoding is a pure function — the
// checksum layer depends on it.
func TestEncodeDeterministic(t *testing.T) {
	req := &ShardRequest{Kernel: "die-ratios", Scale: "default", Seed: 3, BatchSeed: 4, Dies: []int{5, 6}}
	if !bytes.Equal(EncodeRequest(req), EncodeRequest(req)) {
		t.Fatal("request encoding varies")
	}
	resp := &ShardResponse{Blobs: [][]byte{[]byte("b0"), []byte("b1")}}
	if !bytes.Equal(EncodeResponse(resp), EncodeResponse(resp)) {
		t.Fatal("response encoding varies")
	}
}
