package cluster

import (
	"bytes"
	"testing"
)

// FuzzShardCodec fuzzes both wire-format decoders with one shared input
// space. Properties under test:
//
//  1. No input panics or over-allocates (the decode caps bound every
//     allocation by the payload length).
//  2. Any accepted request/response re-encodes to the exact input bytes
//     (the format has a canonical encoding, which is what makes the
//     integrity checksum meaningful end to end).
//
// The committed corpus under testdata/fuzz/FuzzShardCodec seeds valid
// payloads of both kinds plus classic breakages; `make fuzzseed` runs
// the target for 10s in CI.
func FuzzShardCodec(f *testing.F) {
	f.Add(EncodeRequest(&ShardRequest{Kernel: "die-ratios", Scale: "quick", Seed: 2008, BatchSeed: 1, Dies: []int{0, 1, 2}}))
	f.Add(EncodeRequest(&ShardRequest{Kernel: "sched-pm", Scale: "default", Seed: -1, BatchSeed: 9, Dies: []int{199}}))
	f.Add(EncodeRequest(&ShardRequest{}))
	f.Add(EncodeResponse(&ShardResponse{Blobs: [][]byte{[]byte(`{"pr":1.5,"fr":1.2}`), {}}}))
	f.Add(EncodeResponse(&ShardResponse{}))
	f.Add([]byte{})
	f.Add([]byte("vcq1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			re := EncodeRequest(req)
			if !bytes.Equal(re, data) {
				t.Fatalf("request is not canonical:\n in: %x\nout: %x", data, re)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			re := EncodeResponse(resp)
			if !bytes.Equal(re, data) {
				t.Fatalf("response is not canonical:\n in: %x\nout: %x", data, re)
			}
		}
	})
}
