package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vasched/internal/metrics"
)

// testExecutor returns blobs that are a pure function of (job, die) —
// the same determinism contract the real kernels satisfy — and counts
// how many dies it served.
type testExecutor struct {
	served atomic.Int64
}

func (x *testExecutor) ExecuteShard(_ context.Context, req *ShardRequest) (*ShardResponse, error) {
	resp := &ShardResponse{}
	for _, d := range req.Dies {
		resp.Blobs = append(resp.Blobs, testBlob(req, d))
		x.served.Add(1)
	}
	return resp, nil
}

func testBlob(req *ShardRequest, die int) []byte {
	return fmt.Appendf(nil, "%s/%s/%d/%d/die%d", req.Kernel, req.Scale, req.Seed, req.BatchSeed, die)
}

// newTestWorker boots one worker process stand-in.
func newTestWorker(t *testing.T) (*testExecutor, *httptest.Server) {
	t.Helper()
	ex := &testExecutor{}
	ts := httptest.NewServer(Handler(ex, metrics.NewRegistry()))
	t.Cleanup(ts.Close)
	return ex, ts
}

var testJob = Job{Kernel: "k", Scale: "quick", Seed: 2008, BatchSeed: 1}

// checkBlobs asserts the reduction invariant: blob i is the kernel
// result for index i, whatever worker produced it.
func checkBlobs(t *testing.T, blobs [][]byte, n int) {
	t.Helper()
	if len(blobs) != n {
		t.Fatalf("got %d blobs, want %d", len(blobs), n)
	}
	req := &ShardRequest{Kernel: testJob.Kernel, Scale: testJob.Scale, Seed: testJob.Seed, BatchSeed: testJob.BatchSeed}
	for i, b := range blobs {
		if string(b) != string(testBlob(req, i)) {
			t.Fatalf("blob %d = %q, want %q", i, b, testBlob(req, i))
		}
	}
}

func TestRunShardsAcrossWorkers(t *testing.T) {
	ex1, w1 := newTestWorker(t)
	ex2, w2 := newTestWorker(t)
	c := NewClient([]string{w1.URL, w2.URL}, Options{ShardSize: 3})

	const n = 20
	blobs, err := c.Run(context.Background(), testJob, n)
	if err != nil {
		t.Fatal(err)
	}
	checkBlobs(t, blobs, n)
	if ex1.served.Load()+ex2.served.Load() != n {
		t.Fatalf("workers served %d+%d dies, want %d", ex1.served.Load(), ex2.served.Load(), n)
	}
	// Round-robin placement: with 7 shards and 2 workers both must see work.
	if ex1.served.Load() == 0 || ex2.served.Load() == 0 {
		t.Fatalf("dispatch not spread: %d vs %d", ex1.served.Load(), ex2.served.Load())
	}
	if got := c.Metrics().Counter(`cluster_shards_total{status="ok"}`).Value(); got != 7 {
		t.Fatalf("ok shards = %d, want 7", got)
	}
	if got := c.Metrics().Counter(`cluster_runs_total{status="ok"}`).Value(); got != 1 {
		t.Fatalf("ok runs = %d", got)
	}
}

// TestShardSizeInvariance pins the determinism claim at the transport
// level: any shard size yields identical blobs.
func TestShardSizeInvariance(t *testing.T) {
	_, w1 := newTestWorker(t)
	_, w2 := newTestWorker(t)
	var ref [][]byte
	for _, size := range []int{1, 3, 8, 64} {
		c := NewClient([]string{w1.URL, w2.URL}, Options{ShardSize: size})
		blobs, err := c.Run(context.Background(), testJob, 17)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blobs
			continue
		}
		for i := range ref {
			if string(ref[i]) != string(blobs[i]) {
				t.Fatalf("shard size %d changed blob %d", size, i)
			}
		}
	}
}

// TestFaultRetryOnAnotherWorker injects failures of every flavour on the
// first dispatches; each shard must recover on a retry and the output
// must be untouched.
func TestFaultRetryOnAnotherWorker(t *testing.T) {
	for _, action := range []FaultAction{FaultError, FaultDrop, FaultCorrupt} {
		t.Run(action.String(), func(t *testing.T) {
			_, w1 := newTestWorker(t)
			_, w2 := newTestWorker(t)
			plan := NewFaultPlan().On(0, Fault{Action: action})
			c := NewClient([]string{w1.URL, w2.URL}, Options{
				ShardSize: 4, Concurrency: 1, Fault: plan,
			})
			blobs, err := c.Run(context.Background(), testJob, 10)
			if err != nil {
				t.Fatal(err)
			}
			checkBlobs(t, blobs, 10)
			if got := c.Metrics().Counter(`cluster_shard_retries_total`).Value(); got < 1 {
				t.Fatalf("retries = %d, want >= 1", got)
			}
			if got := c.Metrics().Counter(fmt.Sprintf("cluster_faults_injected_total{action=%q}", action)).Value(); got != 1 {
				t.Fatalf("injected faults = %d, want 1", got)
			}
			if action == FaultCorrupt {
				if got := c.Metrics().Counter(`cluster_dispatch_total{status="corrupt"}`).Value(); got != 1 {
					t.Fatalf("corrupt dispatches = %d, want 1", got)
				}
			}
			if plan.Dispatches() < 2 {
				t.Fatalf("dispatches = %d, want the retry to have gone out", plan.Dispatches())
			}
		})
	}
}

// TestDropIsSyntheticTimeout pins that a dropped response surfaces as a
// deadline error without waiting out the real per-shard timeout.
func TestDropIsSyntheticTimeout(t *testing.T) {
	_, w1 := newTestWorker(t)
	plan := NewFaultPlan()
	for i := 0; i < 8; i++ {
		plan.On(i, Fault{Action: FaultDrop})
	}
	c := NewClient([]string{w1.URL}, Options{
		ShardSize: 8, Concurrency: 1, Timeout: time.Hour, Fault: plan,
	})
	start := time.Now()
	_, err := c.Run(context.Background(), testJob, 4)
	if err == nil {
		t.Fatal("run succeeded with every dispatch dropped")
	}
	if !errors.Is(err, context.DeadlineExceeded) || !IsInjected(err) {
		t.Fatalf("drop error = %v, want injected deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("synthetic drop took %v — it must not wait out the real timeout", elapsed)
	}
}

func TestNoWorkersDegrades(t *testing.T) {
	c := NewClient(nil, Options{})
	_, err := c.Run(context.Background(), testJob, 5)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if got := c.Metrics().Counter(`cluster_runs_total{status="degraded"}`).Value(); got != 1 {
		t.Fatalf("degraded runs = %d", got)
	}
}

// TestAllWorkersFailing: every dispatch 500s, so the run must fail (the
// caller then degrades to local execution) after the shard exhausts its
// retries, and the failing workers must be backing off.
func TestAllWorkersFailing(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	c := NewClient([]string{bad.URL}, Options{ShardSize: 4, Concurrency: 1, Retries: 2})
	_, err := c.Run(context.Background(), testJob, 4)
	if err == nil {
		t.Fatal("run succeeded against a 500ing worker")
	}
	if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("err = %v", err)
	}
	if got := c.Metrics().Counter(`cluster_shards_total{status="failed"}`).Value(); got != 1 {
		t.Fatalf("failed shards = %d", got)
	}
	if got := c.Metrics().Counter(`cluster_dispatch_total{status="bad_status"}`).Value(); got < 1 {
		t.Fatalf("bad_status dispatches = %d", got)
	}
	info := c.Workers()[0]
	if info.ConsecutiveFails < 1 || info.BackoffUntil.IsZero() {
		t.Fatalf("failing worker not backing off: %+v", info)
	}
}

// TestHedgedStraggler holds back one worker's response far longer than
// the hedge trigger; the hedge must go to the other worker and win, and
// the blobs must be the usual ones.
func TestHedgedStraggler(t *testing.T) {
	_, w1 := newTestWorker(t)
	_, w2 := newTestWorker(t)
	plan := NewFaultPlan().On(0, Fault{Action: FaultDelay, Delay: 5 * time.Second})
	c := NewClient([]string{w1.URL, w2.URL}, Options{
		ShardSize: 8, Concurrency: 1, HedgeAfter: 30 * time.Millisecond, Fault: plan,
	})
	start := time.Now()
	blobs, err := c.Run(context.Background(), testJob, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkBlobs(t, blobs, 8)
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("hedge did not rescue the straggler (took %v)", elapsed)
	}
	if got := c.Metrics().Counter(`cluster_shards_hedged_total`).Value(); got != 1 {
		t.Fatalf("hedged shards = %d, want 1", got)
	}
}

// TestWorkerBackoffGrowth unit-tests the capped exponential backoff.
func TestWorkerBackoffGrowth(t *testing.T) {
	w := &worker{url: "x", healthy: true}
	base, max := 100*time.Millisecond, time.Second
	now := time.Now()
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for i, wd := range want {
		if d := w.fail(now, base, max); d != wd {
			t.Fatalf("failure %d backoff = %v, want %v", i+1, d, wd)
		}
	}
	if w.available(now) {
		t.Fatal("backing-off worker reported available")
	}
	if !w.available(now.Add(2 * time.Second)) {
		t.Fatal("worker still unavailable after backoff expired")
	}
	w.succeed()
	if !w.available(now) {
		t.Fatal("worker unavailable after success reset")
	}
}

func TestProbeAll(t *testing.T) {
	_, alive := newTestWorker(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on
	c := NewClient([]string{alive.URL, dead.URL}, Options{ShardSize: 2, Concurrency: 1})

	if n := c.ProbeAll(context.Background()); n != 1 {
		t.Fatalf("healthy = %d, want 1", n)
	}
	var healthyURL string
	for _, wi := range c.Workers() {
		if wi.Healthy {
			healthyURL = wi.URL
		}
	}
	if healthyURL != alive.URL {
		t.Fatalf("healthy worker = %q, want %q", healthyURL, alive.URL)
	}
	// The dead worker is skipped entirely: the run succeeds without
	// dispatch errors.
	blobs, err := c.Run(context.Background(), testJob, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkBlobs(t, blobs, 6)
	if got := c.Metrics().Counter(`cluster_dispatch_total{status="transport_error"}`).Value(); got != 0 {
		t.Fatalf("transport errors = %d, want 0 (dead worker must be skipped)", got)
	}
}

func TestSeededFaultPlanDeterministic(t *testing.T) {
	a := SeededFaultPlan(7, 100, 0.3)
	b := SeededFaultPlan(7, 100, 0.3)
	if len(a.rules) == 0 {
		t.Fatal("seeded plan injected nothing at rate 0.3")
	}
	if len(a.rules) != len(b.rules) {
		t.Fatalf("same seed, different rule counts: %d vs %d", len(a.rules), len(b.rules))
	}
	for n, f := range a.rules {
		if b.rules[n] != f {
			t.Fatalf("same seed, different rule at %d: %v vs %v", n, f, b.rules[n])
		}
	}
}

func TestRunCancellation(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold the response until the test ends (the handler must drain
		// the body first or the server never notices the client's
		// departure and Close hangs).
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	t.Cleanup(func() { close(release); slow.Close() })
	c := NewClient([]string{slow.URL}, Options{ShardSize: 2, Concurrency: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	_, err := c.Run(ctx, testJob, 4)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
