package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestForwardImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// A complex exponential at bin 3 transforms to a single spike of
	// magnitude n at index 3.
	const n = 16
	x := make([]complex128, n)
	for j := range x {
		arg := 2 * math.Pi * 3 * float64(j) / n
		x[j] = cmplx.Exp(complex(0, arg))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		want := complex(0, 0)
		if k == 3 {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 8, 64, 512} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d index %d: %v != %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2.
	r := rand.New(rand.NewSource(9))
	const n = 128
	x := make([]complex128, n)
	var tEnergy float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var fEnergy float64
	for _, v := range x {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(tEnergy-fEnergy/n) > 1e-8*tEnergy {
		t.Fatalf("Parseval violated: %v vs %v", tEnergy, fEnergy/n)
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("Forward accepted length 3")
	}
	if err := Inverse(make([]complex128, 6)); err == nil {
		t.Fatal("Inverse accepted length 6")
	}
	if err := Forward2D(make([]complex128, 12), 3, 4); err == nil {
		t.Fatal("Forward2D accepted 3x4")
	}
	if err := Forward2D(make([]complex128, 7), 2, 4); err == nil {
		t.Fatal("Forward2D accepted wrong buffer size")
	}
}

func TestRoundTrip2D(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const rows, cols = 8, 16
	x := make([]complex128, rows*cols)
	orig := make([]complex128, rows*cols)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		orig[i] = x[i]
	}
	if err := Forward2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("index %d differs after 2D round trip", i)
		}
	}
}

func TestForward2DSeparableTone(t *testing.T) {
	// 2-D exponential at (2, 5) transforms to one spike.
	const rows, cols = 8, 16
	x := make([]complex128, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			arg := 2 * math.Pi * (2*float64(r)/rows + 5*float64(c)/cols)
			x[r*cols+c] = cmplx.Exp(complex(0, arg))
		}
	}
	if err := Forward2D(x, rows, cols); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want := complex(0, 0)
			if r == 2 && c == 5 {
				want = complex(rows*cols, 0)
			}
			if cmplx.Abs(x[r*cols+c]-want) > 1e-8 {
				t.Fatalf("bin (%d,%d) = %v, want %v", r, c, x[r*cols+c], want)
			}
		}
	}
}

// Property: linearity — FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		const n = 32
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
			mix[i] = complex(scale, 0)*x[i] + y[i]
		}
		if Forward(x) != nil || Forward(y) != nil || Forward(mix) != nil {
			return false
		}
		for i := range x {
			want := complex(scale, 0)*x[i] + y[i]
			if cmplx.Abs(mix[i]-want) > 1e-6*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward1K(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Forward(x)
	}
}

func BenchmarkForward2D256(b *testing.B) {
	x := make([]complex128, 256*256)
	for i := range x {
		x[i] = complex(float64(i%13), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Forward2D(x, 256, 256)
	}
}
