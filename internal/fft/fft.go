// Package fft implements radix-2 complex fast Fourier transforms in one and
// two dimensions. It exists to support circulant-embedding sampling of
// Gaussian random fields in package grf; the API is therefore minimal but
// the transforms are exact (up to floating point) and unit-normalised so
// that Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		panic("fft: NextPow2 of non-positive size")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// Forward computes the in-place forward DFT of x, whose length must be a
// power of two. The convention is X[k] = sum_j x[j] exp(-2πi jk/n).
func Forward(x []complex128) error {
	return transform(x, -1)
}

// Inverse computes the in-place inverse DFT of x (including the 1/n
// normalisation), whose length must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

// transform performs the iterative Cooley-Tukey butterfly with the given
// sign in the twiddle exponent.
func transform(x []complex128, sign float64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := 2 * math.Pi / float64(size) * sign
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return nil
}

// Forward2D computes the forward DFT of an rows×cols matrix stored
// row-major in x. Both dimensions must be powers of two.
func Forward2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Forward)
}

// Inverse2D computes the inverse DFT (normalised) of an rows×cols matrix
// stored row-major in x.
func Inverse2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Inverse)
}

func transform2D(x []complex128, rows, cols int, tf func([]complex128) error) error {
	if len(x) != rows*cols {
		return fmt.Errorf("fft: matrix buffer has %d elements, want %d", len(x), rows*cols)
	}
	if !IsPow2(rows) || !IsPow2(cols) {
		return fmt.Errorf("fft: dimensions %dx%d are not powers of two", rows, cols)
	}
	for r := 0; r < rows; r++ {
		if err := tf(x[r*cols : (r+1)*cols]); err != nil {
			return err
		}
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if err := tf(col); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
	return nil
}
