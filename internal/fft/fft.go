// Package fft implements radix-2 complex fast Fourier transforms in one and
// two dimensions. It exists to support circulant-embedding sampling of
// Gaussian random fields in package grf; the API is therefore minimal but
// the transforms are exact (up to floating point) and unit-normalised so
// that Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// pointsTransformed counts butterfly outputs written by every transform in
// the process: a full n-point FFT adds n*log2(n), a prefix-pruned one adds
// only what it computed. One atomic add per 1-D transform keeps the cost
// invisible next to the butterflies themselves. The batched die pipeline's
// speedup gate reads this to prove — deterministically, immune to
// wall-clock noise — how much transform work pruning removes per die.
var pointsTransformed atomic.Int64

// PointsTransformed returns the cumulative butterfly-output count.
func PointsTransformed() int64 { return pointsTransformed.Load() }

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0.
func NextPow2(n int) int {
	if n <= 0 {
		panic("fft: NextPow2 of non-positive size")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// Forward computes the in-place forward DFT of x, whose length must be a
// power of two. The convention is X[k] = sum_j x[j] exp(-2πi jk/n).
func Forward(x []complex128) error {
	return transform(x, -1)
}

// Inverse computes the in-place inverse DFT of x (including the 1/n
// normalisation), whose length must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

// twiddleKey identifies one cached twiddle-table set.
type twiddleKey struct {
	n       int
	forward bool
}

// twiddleCache holds, per (length, direction), one table per butterfly
// stage. Tables are immutable after construction and shared by every
// transform of that size in the process — the grf samplers call these
// transforms once or twice per generated die, so the trigonometric
// recurrences are paid once instead of per call.
var twiddleCache sync.Map // twiddleKey -> [][]complex128

// stageTwiddles returns the per-stage twiddle factors for an n-point
// transform. Each stage table is built with the exact same repeated-
// multiplication recurrence the butterfly loop historically ran (w starts
// at 1 and is multiplied by wBase), so cached transforms are bit-for-bit
// identical to the uncached ones.
func stageTwiddles(n int, sign float64) [][]complex128 {
	key := twiddleKey{n: n, forward: sign < 0}
	if v, ok := twiddleCache.Load(key); ok {
		return v.([][]complex128)
	}
	var tables [][]complex128
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := 2 * math.Pi / float64(size) * sign
		wBase := complex(math.Cos(step), math.Sin(step))
		t := make([]complex128, half)
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			t[k] = w
			w *= wBase
		}
		tables = append(tables, t)
	}
	v, _ := twiddleCache.LoadOrStore(key, tables)
	return v.([][]complex128)
}

// bitrevCache holds, per length, the swap pairs of the bit-reversal
// permutation, so the per-element Reverse64 arithmetic is paid once per
// size instead of per transform.
var bitrevCache sync.Map // int -> [][2]int32

func bitrevPairs(n int) [][2]int32 {
	if v, ok := bitrevCache.Load(n); ok {
		return v.([][2]int32)
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	pairs := make([][2]int32, 0, n/2)
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			pairs = append(pairs, [2]int32{int32(i), int32(j)})
		}
	}
	v, _ := bitrevCache.LoadOrStore(n, pairs)
	return v.([][2]int32)
}

// transform performs the iterative Cooley-Tukey butterfly with the given
// sign in the twiddle exponent.
func transform(x []complex128, sign float64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for _, p := range bitrevPairs(n) {
		x[p[0]], x[p[1]] = x[p[1]], x[p[0]]
	}
	tables := stageTwiddles(n, sign)
	for si, size := 0, 2; size <= n; si, size = si+1, size<<1 {
		half := size / 2
		t := tables[si]
		// Butterflies within a stage touch disjoint index pairs, so either
		// loop order computes bit-identical results. Early stages have many
		// tiny blocks: iterating the twiddle index outermost there amortises
		// the loop bookkeeping that would otherwise dominate.
		if half <= 16 {
			for k := 0; k < half; k++ {
				w := t[k]
				for i := k; i < n; i += size {
					a := x[i]
					b := x[i+half] * w
					x[i] = a + b
					x[i+half] = a - b
				}
			}
			continue
		}
		for start := 0; start < n; start += size {
			lo := x[start : start+half : start+half]
			hi := x[start+half : start+size : start+size]
			for k, w := range t {
				a := lo[k]
				b := hi[k] * w
				lo[k] = a + b
				hi[k] = a - b
			}
		}
	}
	pointsTransformed.Add(int64(n) * int64(bits.Len(uint(n))-1))
	return nil
}

// forwardPrefix computes the forward DFT of x but guarantees only the
// first keep outputs; positions keep..n-1 are left as garbage. A needed
// output at index k < keep of a stage's block requires only the first
// min(keep, half) entries of each half-size sub-block, so stages larger
// than keep can skip the a-b butterfly outputs (and, past the midpoint,
// whole butterflies) that nothing downstream reads. Every value that IS
// produced comes from exactly the expression the full transform runs, so
// the kept prefix is bit-for-bit identical to Forward's.
func forwardPrefix(x []complex128, keep int) error {
	n := len(x)
	if keep >= n {
		return Forward(x)
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if keep <= 0 {
		return nil
	}
	for _, p := range bitrevPairs(n) {
		x[p[0]], x[p[1]] = x[p[1]], x[p[0]]
	}
	tables := stageTwiddles(n, -1)
	var outs int64
	for si, size := 0, 2; size <= n; si, size = si+1, size<<1 {
		half := size / 2
		t := tables[si]
		if keep >= size {
			outs += int64(n)
			// Every output of this stage feeds a needed value: run the
			// stage exactly as the full transform does.
			if half <= 16 {
				for k := 0; k < half; k++ {
					w := t[k]
					for i := k; i < n; i += size {
						a := x[i]
						b := x[i+half] * w
						x[i] = a + b
						x[i+half] = a - b
					}
				}
				continue
			}
			for start := 0; start < n; start += size {
				lo := x[start : start+half : start+half]
				hi := x[start+half : start+size : start+size]
				for k, w := range t {
					a := lo[k]
					b := hi[k] * w
					lo[k] = a + b
					hi[k] = a - b
				}
			}
			continue
		}
		// Pruned stage: per block, butterflies below fullK need both
		// outputs, those below sumK need only the a+b side, the rest feed
		// nothing that survives to the kept prefix.
		fullK := keep - half
		if fullK < 0 {
			fullK = 0
		}
		sumK := keep
		if sumK > half {
			sumK = half
		}
		outs += int64(n/size) * int64(fullK+sumK)
		for start := 0; start < n; start += size {
			lo := x[start : start+half : start+half]
			hi := x[start+half : start+size : start+size]
			for k := 0; k < fullK; k++ {
				a := lo[k]
				b := hi[k] * t[k]
				lo[k] = a + b
				hi[k] = a - b
			}
			for k := fullK; k < sumK; k++ {
				lo[k] = lo[k] + hi[k]*t[k]
			}
		}
	}
	pointsTransformed.Add(outs)
	return nil
}

// Forward2D computes the forward DFT of an rows×cols matrix stored
// row-major in x. Both dimensions must be powers of two.
func Forward2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Forward)
}

// Inverse2D computes the inverse DFT (normalised) of an rows×cols matrix
// stored row-major in x.
func Inverse2D(x []complex128, rows, cols int) error {
	return transform2D(x, rows, cols, Inverse)
}

// ForwardRegion2D computes the forward DFT of an rows×cols matrix but
// materialises only the top-left keepRows×keepCols corner of the result:
// every row is fully transformed (each output column mixes every input
// column), but the column-stage transforms — and their gather/scatter
// traffic — run only for the first keepCols columns, and only the first
// keepRows entries of each transformed column are written back.
//
// The kept region is bit-for-bit identical to what Forward2D would have
// produced there: column transforms are independent of one another, so
// skipping the columns nobody reads cannot perturb the columns that are
// kept. Values outside the region are left in the intermediate
// (row-transformed) state and must be treated as garbage.
//
// Circulant-embedding samplers are the intended caller: the padded torus
// is 4x the chip grid in each dimension, so 15/16 of the full transform's
// column-stage output is computed only to be discarded. This entry point
// skips that work while keeping the kept corner exact.
func ForwardRegion2D(x []complex128, rows, cols, keepRows, keepCols int) error {
	if keepRows < 0 || keepRows > rows || keepCols < 0 || keepCols > cols {
		return fmt.Errorf("fft: region %dx%d outside matrix %dx%d", keepRows, keepCols, rows, cols)
	}
	return transformRegion2D(x, rows, cols, keepRows, keepCols, nil)
}

// colScratch recycles the column-block buffer of the 2-D transforms so
// steady-state callers (the grf samplers) allocate nothing per transform.
var colScratch = sync.Pool{New: func() any { return []complex128(nil) }}

// colBlock is how many columns are gathered per pass: each cache line of
// the matrix holds 4 complex128s, so gathering 4 adjacent columns at once
// fetches every line exactly once, and the 4-column buffer stays hot.
const colBlock = 4

// transform2D applies tf to every row, then to every column.
func transform2D(x []complex128, rows, cols int, tf func([]complex128) error) error {
	return transformRegion2D(x, rows, cols, rows, cols, tf)
}

// transformRegion2D applies the transform to every row, then to the first
// keepCols columns, scattering back only the first keepRows entries of
// each. Columns are gathered colBlock at a time into a contiguous buffer;
// the per-column data and transform are exactly those of a one-column
// gather, so results are bit-for-bit independent of the blocking, and
// each column transform is independent of which other columns run at all.
//
// A nil tf selects the prefix-pruned forward transform: each row keeps
// only its first keepCols outputs (the only ones the column stage and
// final extraction read) and each column keeps only its first keepRows.
func transformRegion2D(x []complex128, rows, cols, keepRows, keepCols int, tf func([]complex128) error) error {
	if len(x) != rows*cols {
		return fmt.Errorf("fft: matrix buffer has %d elements, want %d", len(x), rows*cols)
	}
	if !IsPow2(rows) || !IsPow2(cols) {
		return fmt.Errorf("fft: dimensions %dx%d are not powers of two", rows, cols)
	}
	rowTF := tf
	colTF := tf
	if tf == nil {
		rowTF = func(row []complex128) error { return forwardPrefix(row, keepCols) }
		colTF = func(col []complex128) error { return forwardPrefix(col, keepRows) }
	}
	for r := 0; r < rows; r++ {
		if err := rowTF(x[r*cols : (r+1)*cols]); err != nil {
			return err
		}
	}
	sc := colScratch.Get().([]complex128)
	if cap(sc) < colBlock*rows {
		sc = make([]complex128, colBlock*rows)
	}
	sc = sc[:colBlock*rows]
	for c0 := 0; c0 < keepCols; c0 += colBlock {
		cb := min(colBlock, keepCols-c0)
		for r := 0; r < rows; r++ {
			base := r*cols + c0
			for j := 0; j < cb; j++ {
				sc[j*rows+r] = x[base+j]
			}
		}
		for j := 0; j < cb; j++ {
			if err := colTF(sc[j*rows : (j+1)*rows]); err != nil {
				colScratch.Put(sc)
				return err
			}
		}
		for r := 0; r < keepRows; r++ {
			base := r*cols + c0
			for j := 0; j < cb; j++ {
				x[base+j] = sc[j*rows+r]
			}
		}
	}
	colScratch.Put(sc)
	return nil
}
