package fft

import (
	"math"
	"math/rand"
	"testing"
)

// TestForwardRegion2DMatchesFull pins the pruning contract: the kept
// keepRows×keepCols corner of ForwardRegion2D must be bit-for-bit
// identical to the same corner of the full Forward2D, for every region
// shape including the degenerate full and empty ones. The grf samplers
// rely on this exactness — a single ulp of drift there would cascade
// into every experiment golden.
func TestForwardRegion2DMatchesFull(t *testing.T) {
	dims := [][2]int{{4, 4}, {8, 16}, {16, 8}, {32, 32}, {64, 128}}
	for _, d := range dims {
		rows, cols := d[0], d[1]
		rng := rand.New(rand.NewSource(int64(rows*1000 + cols)))
		orig := make([]complex128, rows*cols)
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		full := append([]complex128(nil), orig...)
		if err := Forward2D(full, rows, cols); err != nil {
			t.Fatal(err)
		}
		regions := [][2]int{{rows, cols}, {rows / 4, cols / 4}, {rows / 2, cols}, {rows, cols / 2}, {1, 1}, {0, 0}}
		for _, reg := range regions {
			kr, kc := reg[0], reg[1]
			got := append([]complex128(nil), orig...)
			if err := ForwardRegion2D(got, rows, cols, kr, kc); err != nil {
				t.Fatalf("%dx%d region %dx%d: %v", rows, cols, kr, kc, err)
			}
			for r := 0; r < kr; r++ {
				for c := 0; c < kc; c++ {
					g, w := got[r*cols+c], full[r*cols+c]
					if math.Float64bits(real(g)) != math.Float64bits(real(w)) ||
						math.Float64bits(imag(g)) != math.Float64bits(imag(w)) {
						t.Fatalf("%dx%d region %dx%d: mismatch at (%d,%d): got %v want %v",
							rows, cols, kr, kc, r, c, g, w)
					}
				}
			}
		}
	}
}

// TestForwardRegion2DErrors covers the argument validation paths.
func TestForwardRegion2DErrors(t *testing.T) {
	x := make([]complex128, 16)
	if err := ForwardRegion2D(x, 4, 4, 5, 4); err == nil {
		t.Error("keepRows > rows accepted")
	}
	if err := ForwardRegion2D(x, 4, 4, 4, -1); err == nil {
		t.Error("negative keepCols accepted")
	}
	if err := ForwardRegion2D(x, 4, 4, 4, 5); err == nil {
		t.Error("keepCols > cols accepted")
	}
	if err := ForwardRegion2D(x[:15], 4, 4, 4, 4); err == nil {
		t.Error("short buffer accepted")
	}
	if err := ForwardRegion2D(make([]complex128, 12), 3, 4, 3, 4); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
}
