package anneal

import (
	"testing"

	"vasched/internal/stats"
)

// fuzzProblem decodes a small budget-constrained maximisation from fuzz
// bytes, mirroring the lp package's fuzz idiom: data[0] picks the
// coordinate count (1..4), data[1] the evaluation budget, data[2] the RNG
// seed, then each coordinate consumes two bytes (cardinality 1..16 and a
// starting point inside it), and a final byte sets the slack of the
// knapsack constraint above the starting point — so the initial state is
// always feasible and every decoded problem must solve.
func fuzzProblem(data []byte) (*Problem, Config, int64, int) {
	if len(data) < 4 {
		return nil, Config{}, 0, 0
	}
	n := 1 + int(data[0])%4
	need := 4 + 2*n
	if len(data) < need {
		return nil, Config{}, 0, 0
	}
	maxEvals := 50 + int(data[1])*8
	seed := int64(data[2])

	card := make([]int, n)
	init := make([]int, n)
	sum := 0
	for i := 0; i < n; i++ {
		card[i] = 1 + int(data[3+2*i])%16
		init[i] = int(data[4+2*i]) % card[i]
		sum += init[i]
	}
	cap := sum + int(data[3+2*n])%20

	p := &Problem{
		Card: card,
		Objective: func(x []int) float64 {
			v := 0
			for i, xi := range x {
				v += (i + 1) * xi
			}
			return float64(v)
		},
		Feasible: func(x []int) bool {
			s := 0
			for _, xi := range x {
				s += xi
			}
			return s <= cap
		},
		Init: init,
	}
	cfg := DefaultConfig(n)
	cfg.MaxEvals = maxEvals
	return p, cfg, seed, cap
}

// FuzzSolve checks the annealer's contract on arbitrary decoded problems:
// it must terminate without error inside the evaluation budget, return an
// in-bounds feasible state at least as good as the feasible starting
// point, and the combined-Eval path must reproduce the split
// Feasible+Objective path exactly (same RNG stream consumption).
func FuzzSolve(f *testing.F) {
	f.Add([]byte{0, 0, 1, 4, 0, 7})                         // 1 coordinate, tiny budget
	f.Add([]byte{1, 10, 2, 8, 3, 8, 3, 5})                  // 2 coordinates, slack 5
	f.Add([]byte{3, 40, 9, 15, 0, 15, 0, 15, 0, 15, 0, 19}) // 4 wide coordinates, max slack
	f.Add([]byte{2, 0, 0, 1, 0, 1, 0, 1, 0, 0})             // all-singleton ladders, zero slack
	f.Add([]byte{3, 255, 77, 12, 11, 9, 8, 6, 5, 3, 2, 10}) // big budget, mixed start

	f.Fuzz(func(t *testing.T, data []byte) {
		p, cfg, seed, cap := fuzzProblem(data)
		if p == nil {
			return
		}
		res, err := Solve(p, cfg, stats.NewRNG(seed))
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if len(res.X) != len(p.Card) {
			t.Fatalf("X has %d coordinates, want %d", len(res.X), len(p.Card))
		}
		sum := 0
		for i, xi := range res.X {
			if xi < 0 || xi >= p.Card[i] {
				t.Fatalf("X[%d] = %d outside [0,%d)", i, xi, p.Card[i])
			}
			sum += xi
		}
		if sum > cap {
			t.Fatalf("infeasible result: sum %d > cap %d", sum, cap)
		}
		if res.Evals > cfg.MaxEvals {
			t.Fatalf("Evals %d exceeds budget %d", res.Evals, cfg.MaxEvals)
		}
		if initVal := p.Objective(p.Init); res.Value < initVal {
			t.Fatalf("Value %v below starting value %v", res.Value, initVal)
		}
		if res.Value != p.Objective(res.X) {
			t.Fatalf("Value %v inconsistent with Objective(X) = %v", res.Value, p.Objective(res.X))
		}

		// The combined evaluator must be a pure refactoring: same seed,
		// same decisions, same result.
		fused := &Problem{
			Card: p.Card,
			Eval: func(x []int) (float64, bool) {
				s, v := 0, 0
				for i, xi := range x {
					s += xi
					v += (i + 1) * xi
				}
				return float64(v), s <= cap
			},
			Init: p.Init,
		}
		res2, err := SolveScratch(fused, cfg, stats.NewRNG(seed), &Scratch{})
		if err != nil {
			t.Fatalf("SolveScratch: %v", err)
		}
		if res2.Value != res.Value || res2.Evals != res.Evals {
			t.Fatalf("fused Eval path (value %v, evals %d) != split path (value %v, evals %d)",
				res2.Value, res2.Evals, res.Value, res.Evals)
		}
		for i := range res.X {
			if res2.X[i] != res.X[i] {
				t.Fatalf("fused Eval path X = %v, split path X = %v", res2.X, res.X)
			}
		}
	})
}
