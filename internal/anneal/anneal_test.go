package anneal

import (
	"math"
	"testing"

	"vasched/internal/stats"
)

// quadratic builds a separable concave objective with a known integer
// optimum at target.
func quadratic(target []int) func(x []int) float64 {
	return func(x []int) float64 {
		s := 0.0
		for i := range x {
			d := float64(x[i] - target[i])
			s -= d * d
		}
		return s
	}
}

func TestFindsUnconstrainedOptimum(t *testing.T) {
	target := []int{3, 7, 1, 5}
	p := &Problem{
		Card:      []int{10, 10, 10, 10},
		Objective: quadratic(target),
		Feasible:  func([]int) bool { return true },
		Init:      []int{0, 0, 0, 0},
	}
	r, err := Solve(p, DefaultConfig(4), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Fatalf("best value = %v at %v, want exact optimum", r.Value, r.X)
	}
}

func TestRespectsFeasibility(t *testing.T) {
	// Optimum at x=9 but feasibility caps sum at 5: the annealer must
	// return a feasible state.
	p := &Problem{
		Card:      []int{10, 10},
		Objective: func(x []int) float64 { return float64(x[0] + x[1]) },
		Feasible:  func(x []int) bool { return x[0]+x[1] <= 5 },
		Init:      []int{0, 0},
	}
	r, err := Solve(p, DefaultConfig(2), stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0]+r.X[1] > 5 {
		t.Fatalf("infeasible result %v", r.X)
	}
	if r.Value != 5 {
		t.Fatalf("value = %v, want 5", r.Value)
	}
}

func TestBudgetHonoured(t *testing.T) {
	calls := 0
	p := &Problem{
		Card: []int{100},
		Objective: func(x []int) float64 {
			calls++
			return float64(x[0])
		},
		Feasible: func([]int) bool { return true },
		Init:     []int{0},
	}
	cfg := DefaultConfig(1)
	cfg.MaxEvals = 500
	if _, err := Solve(p, cfg, stats.NewRNG(3)); err != nil {
		t.Fatal(err)
	}
	if calls > 500 {
		t.Fatalf("objective called %d times, budget 500", calls)
	}
}

func TestValidation(t *testing.T) {
	ok := func([]int) bool { return true }
	obj := func([]int) float64 { return 0 }
	cases := []*Problem{
		{},
		{Card: []int{5}, Objective: obj, Feasible: ok, Init: []int{}},
		{Card: []int{0}, Objective: obj, Feasible: ok, Init: []int{0}},
		{Card: []int{5}, Objective: obj, Feasible: ok, Init: []int{7}},
		{Card: []int{5}, Objective: obj, Feasible: func([]int) bool { return false }, Init: []int{0}},
	}
	for i, p := range cases {
		if _, err := Solve(p, DefaultConfig(1), stats.NewRNG(4)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	target := []int{2, 8, 4}
	mk := func() *Problem {
		return &Problem{
			Card:      []int{10, 10, 10},
			Objective: quadratic(target),
			Feasible:  func([]int) bool { return true },
			Init:      []int{5, 5, 5},
		}
	}
	a, err := Solve(mk(), DefaultConfig(3), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(mk(), DefaultConfig(3), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatal("same seed produced different results")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different states")
		}
	}
}

func TestNearOptimalOnRuggedObjective(t *testing.T) {
	// Multi-modal objective: global optimum at 37 with a decoy at 80.
	p := &Problem{
		Card: []int{101},
		Objective: func(x []int) float64 {
			v := float64(x[0])
			return 10*math.Exp(-(v-37)*(v-37)/50) + 8*math.Exp(-(v-80)*(v-80)/50)
		},
		Feasible: func([]int) bool { return true },
		Init:     []int{0},
	}
	cfg := DefaultConfig(1)
	cfg.MaxEvals = 30000
	r, err := Solve(p, cfg, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if r.Value < 9.9 {
		t.Fatalf("stuck at %v (x=%v); want near global optimum 10", r.Value, r.X)
	}
}

func TestSingleCoordinateCardinalityOne(t *testing.T) {
	// A frozen coordinate (cardinality 1) must not break the kernel.
	p := &Problem{
		Card:      []int{1, 5},
		Objective: func(x []int) float64 { return float64(x[1]) },
		Feasible:  func([]int) bool { return true },
		Init:      []int{0, 0},
	}
	cfg := DefaultConfig(2)
	cfg.MaxEvals = 2000
	r, err := Solve(p, cfg, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 0 || r.Value != 4 {
		t.Fatalf("result %v value %v", r.X, r.Value)
	}
}
