// Package anneal implements simulated annealing over integer-vector
// states, matching the configuration the paper uses for its SAnn baseline
// (Section 6.5): a Gaussian Markov proposal kernel whose scale is
// proportional to the current annealing temperature, a logarithmic cooling
// schedule, and a fixed budget of objective evaluations.
package anneal

import (
	"context"
	"errors"
	"fmt"
	"math"

	"vasched/internal/farm"
	"vasched/internal/stats"
)

// Config tunes the annealer.
type Config struct {
	// MaxEvals is the objective-evaluation budget. The paper used 1e6;
	// the experiments here default to a smaller budget (see pm package)
	// because SAnn is invoked thousands of times across the sweeps.
	MaxEvals int
	// InitialTemp sets the starting annealing temperature. The paper
	// scales it with problem size; callers do the same.
	InitialTemp float64
	// Kernel scale is InitialTemp-proportional: at temperature T, each
	// coordinate moves by a Gaussian step of KernelScale*T/InitialTemp
	// positions (minimum 1).
	KernelScale float64
}

// DefaultConfig returns a budget suitable for repeated on-line invocation.
func DefaultConfig(numVars int) Config {
	return Config{
		MaxEvals:    20000,
		InitialTemp: 1 + float64(numVars)/4, // more randomness for larger problems
		KernelScale: 3,
	}
}

// Problem is a bounded integer-vector minimisation... maximisation:
// states are vectors x with 0 <= x[i] < Card[i]; Objective returns the
// value to maximize, and Feasible filters states (infeasible states are
// never accepted).
type Problem struct {
	// Card is the per-coordinate cardinality (number of discrete levels).
	Card []int
	// Objective returns the value to maximize for a feasible state.
	Objective func(x []int) float64
	// Feasible reports whether the state satisfies the hard constraints.
	Feasible func(x []int) bool
	// Eval, when non-nil, replaces the Objective/Feasible pair with one
	// combined call returning (value, feasible). It lets hot callers share
	// the per-candidate decoding work (e.g. pm.SAnn builds the ladder-level
	// vector once per candidate instead of once per closure) without
	// changing the solver's evaluation or RNG-consumption order: the solver
	// draws exactly the same random numbers whether it calls Eval once or
	// Feasible then Objective.
	Eval func(x []int) (float64, bool)
	// Init is the starting state; it must be feasible.
	Init []int
}

// Result is the best state found.
type Result struct {
	X     []int
	Value float64
	Evals int
	// Chain is the index of the chain that produced X when solving via
	// SolveParallel (0 for single-chain solves).
	Chain int
}

// Scratch holds the solver's working vectors so repeated solves (one per
// DVFS interval, thousands per experiment) allocate nothing. The zero
// value is ready to use; vectors grow on demand and are reused across
// calls.
type Scratch struct {
	cur, cand, best []int
}

// grow resizes the scratch vectors to n coordinates, reusing capacity.
func (s *Scratch) grow(n int) {
	if cap(s.cur) < n {
		s.cur = make([]int, n)
		s.cand = make([]int, n)
		s.best = make([]int, n)
	}
	s.cur = s.cur[:n]
	s.cand = s.cand[:n]
	s.best = s.best[:n]
}

// Solve runs simulated annealing on p. It is a convenience wrapper around
// SolveScratch with fresh scratch, so the returned Result.X is owned by
// the caller.
func Solve(p *Problem, cfg Config, rng *stats.RNG) (*Result, error) {
	res, err := SolveScratch(p, cfg, rng, &Scratch{})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveScratch runs simulated annealing on p using caller-provided
// scratch. With a reused Scratch and a Problem whose Eval avoids
// allocation, the whole anneal is allocation-free. The returned Result.X
// aliases scr's storage and is only valid until the next solve with the
// same scratch.
func SolveScratch(p *Problem, cfg Config, rng *stats.RNG, scr *Scratch) (Result, error) {
	n := len(p.Card)
	if n == 0 {
		return Result{}, errors.New("anneal: empty problem")
	}
	if len(p.Init) != n {
		return Result{}, fmt.Errorf("anneal: init has %d coordinates, want %d", len(p.Init), n)
	}
	for i, c := range p.Card {
		if c <= 0 {
			return Result{}, fmt.Errorf("anneal: coordinate %d has cardinality %d", i, c)
		}
		if p.Init[i] < 0 || p.Init[i] >= c {
			return Result{}, fmt.Errorf("anneal: init[%d]=%d outside [0,%d)", i, p.Init[i], c)
		}
	}
	eval := p.Eval
	if eval == nil {
		if p.Feasible == nil || p.Objective == nil {
			return Result{}, errors.New("anneal: problem needs Eval or Feasible+Objective")
		}
		eval = func(x []int) (float64, bool) {
			if !p.Feasible(x) {
				return 0, false
			}
			return p.Objective(x), true
		}
	}
	initVal, ok := eval(p.Init)
	if !ok {
		return Result{}, errors.New("anneal: initial state infeasible")
	}
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 20000
	}
	if cfg.InitialTemp <= 0 {
		cfg.InitialTemp = 1
	}
	if cfg.KernelScale <= 0 {
		cfg.KernelScale = 3
	}

	scr.grow(n)
	cur, cand, best := scr.cur, scr.cand, scr.best
	copy(cur, p.Init)
	curVal := initVal
	copy(best, cur)
	bestVal := curVal
	evals := 1

	for evals < cfg.MaxEvals {
		// Logarithmic cooling: T_k = T0 / ln(e + k).
		temp := cfg.InitialTemp / math.Log(math.E+float64(evals))

		// Gaussian Markov kernel scaled by the current temperature.
		scale := cfg.KernelScale * temp / cfg.InitialTemp
		if scale < 0.6 {
			scale = 0.6
		}
		copy(cand, cur)
		moved := false
		for i := 0; i < n; i++ {
			step := int(math.Round(rng.Norm() * scale))
			if step == 0 {
				continue
			}
			v := cand[i] + step
			if v < 0 {
				v = 0
			}
			if v >= p.Card[i] {
				v = p.Card[i] - 1
			}
			if v != cand[i] {
				cand[i] = v
				moved = true
			}
		}
		if !moved {
			// Force a single-coordinate move so the chain cannot stall.
			i := rng.Intn(n)
			if cand[i]+1 < p.Card[i] && (cand[i] == 0 || rng.Float64() < 0.5) {
				cand[i]++
			} else if cand[i] > 0 {
				cand[i]--
			}
		}
		v, ok := eval(cand)
		evals++
		if !ok {
			continue
		}
		if accept(v-curVal, temp, rng) {
			copy(cur, cand)
			curVal = v
			if v > bestVal {
				bestVal = v
				copy(best, cur)
			}
		}
	}
	return Result{X: best, Value: bestVal, Evals: evals}, nil
}

// SolveParallel runs chains independent annealing chains and returns the
// best result. Each chain k solves prob(k) — a factory so every chain can
// own private scratch/closure state over shared read-only data — with an
// RNG stream derived deterministically from the parent as Derive(k+1).
// All streams are derived serially before the fan-out and the reduction
// walks chain results in chain order (strictly-greater wins, so ties go
// to the lowest chain index), making the outcome a function of (problems,
// cfg, rng seed, chains) alone: any workers value, including 1, produces
// byte-identical results. The returned Evals is the total across chains.
func SolveParallel(prob func(chain int) *Problem, cfg Config, rng *stats.RNG, chains, workers int) (Result, error) {
	if chains <= 0 {
		return Result{}, errors.New("anneal: SolveParallel needs at least one chain")
	}
	rngs := make([]*stats.RNG, chains)
	for k := range rngs {
		rngs[k] = rng.Derive(int64(k + 1))
	}
	results, err := farm.Collect(context.Background(), workers, chains, func(_ context.Context, k int) (Result, error) {
		r, err := SolveScratch(prob(k), cfg, rngs[k], &Scratch{})
		r.Chain = k
		return r, err
	})
	if err != nil {
		return Result{}, err
	}
	best := results[0]
	evals := results[0].Evals
	for _, r := range results[1:] {
		evals += r.Evals
		if r.Value > best.Value {
			best = r
		}
	}
	best.Evals = evals
	return best, nil
}

// accept implements the Metropolis criterion for maximisation.
func accept(delta, temp float64, rng *stats.RNG) bool {
	if delta >= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(delta/temp)
}
