// Package anneal implements simulated annealing over integer-vector
// states, matching the configuration the paper uses for its SAnn baseline
// (Section 6.5): a Gaussian Markov proposal kernel whose scale is
// proportional to the current annealing temperature, a logarithmic cooling
// schedule, and a fixed budget of objective evaluations.
package anneal

import (
	"errors"
	"fmt"
	"math"

	"vasched/internal/stats"
)

// Config tunes the annealer.
type Config struct {
	// MaxEvals is the objective-evaluation budget. The paper used 1e6;
	// the experiments here default to a smaller budget (see pm package)
	// because SAnn is invoked thousands of times across the sweeps.
	MaxEvals int
	// InitialTemp sets the starting annealing temperature. The paper
	// scales it with problem size; callers do the same.
	InitialTemp float64
	// Kernel scale is InitialTemp-proportional: at temperature T, each
	// coordinate moves by a Gaussian step of KernelScale*T/InitialTemp
	// positions (minimum 1).
	KernelScale float64
}

// DefaultConfig returns a budget suitable for repeated on-line invocation.
func DefaultConfig(numVars int) Config {
	return Config{
		MaxEvals:    20000,
		InitialTemp: 1 + float64(numVars)/4, // more randomness for larger problems
		KernelScale: 3,
	}
}

// Problem is a bounded integer-vector minimisation... maximisation:
// states are vectors x with 0 <= x[i] < Card[i]; Objective returns the
// value to maximize, and Feasible filters states (infeasible states are
// never accepted).
type Problem struct {
	// Card is the per-coordinate cardinality (number of discrete levels).
	Card []int
	// Objective returns the value to maximize for a feasible state.
	Objective func(x []int) float64
	// Feasible reports whether the state satisfies the hard constraints.
	Feasible func(x []int) bool
	// Init is the starting state; it must be feasible.
	Init []int
}

// Result is the best state found.
type Result struct {
	X     []int
	Value float64
	Evals int
}

// Solve runs simulated annealing on p.
func Solve(p *Problem, cfg Config, rng *stats.RNG) (*Result, error) {
	n := len(p.Card)
	if n == 0 {
		return nil, errors.New("anneal: empty problem")
	}
	if len(p.Init) != n {
		return nil, fmt.Errorf("anneal: init has %d coordinates, want %d", len(p.Init), n)
	}
	for i, c := range p.Card {
		if c <= 0 {
			return nil, fmt.Errorf("anneal: coordinate %d has cardinality %d", i, c)
		}
		if p.Init[i] < 0 || p.Init[i] >= c {
			return nil, fmt.Errorf("anneal: init[%d]=%d outside [0,%d)", i, p.Init[i], c)
		}
	}
	if !p.Feasible(p.Init) {
		return nil, errors.New("anneal: initial state infeasible")
	}
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 20000
	}
	if cfg.InitialTemp <= 0 {
		cfg.InitialTemp = 1
	}
	if cfg.KernelScale <= 0 {
		cfg.KernelScale = 3
	}

	cur := append([]int(nil), p.Init...)
	curVal := p.Objective(cur)
	best := append([]int(nil), cur...)
	bestVal := curVal
	evals := 1

	cand := make([]int, n)
	for evals < cfg.MaxEvals {
		// Logarithmic cooling: T_k = T0 / ln(e + k).
		temp := cfg.InitialTemp / math.Log(math.E+float64(evals))

		// Gaussian Markov kernel scaled by the current temperature.
		scale := cfg.KernelScale * temp / cfg.InitialTemp
		if scale < 0.6 {
			scale = 0.6
		}
		copy(cand, cur)
		moved := false
		for i := 0; i < n; i++ {
			step := int(math.Round(rng.Norm() * scale))
			if step == 0 {
				continue
			}
			v := cand[i] + step
			if v < 0 {
				v = 0
			}
			if v >= p.Card[i] {
				v = p.Card[i] - 1
			}
			if v != cand[i] {
				cand[i] = v
				moved = true
			}
		}
		if !moved {
			// Force a single-coordinate move so the chain cannot stall.
			i := rng.Intn(n)
			if cand[i]+1 < p.Card[i] && (cand[i] == 0 || rng.Float64() < 0.5) {
				cand[i]++
			} else if cand[i] > 0 {
				cand[i]--
			}
		}
		if !p.Feasible(cand) {
			evals++
			continue
		}
		v := p.Objective(cand)
		evals++
		if accept(v-curVal, temp, rng) {
			copy(cur, cand)
			curVal = v
			if v > bestVal {
				bestVal = v
				copy(best, cur)
			}
		}
	}
	return &Result{X: best, Value: bestVal, Evals: evals}, nil
}

// accept implements the Metropolis criterion for maximisation.
func accept(delta, temp float64, rng *stats.RNG) bool {
	if delta >= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(delta/temp)
}
