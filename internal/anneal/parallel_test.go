package anneal

import (
	"strings"
	"testing"

	"vasched/internal/stats"
)

// chainProblem builds a small feasibility-constrained maximisation whose
// closures allocate nothing, shared read-only across chains.
func chainProblem(n, cap int) func(chain int) *Problem {
	card := make([]int, n)
	weight := make([]int, n)
	for i := range card {
		card[i] = 4 + i%5
		weight[i] = i + 1
	}
	return func(int) *Problem {
		return &Problem{
			Card: card,
			Eval: func(x []int) (float64, bool) {
				sum, val := 0, 0
				for i, xi := range x {
					sum += xi
					val += weight[i] * xi
				}
				return float64(val), sum <= cap
			},
			Init: make([]int, n),
		}
	}
}

// TestSolveParallelWorkerInvariance is the core SolveParallel guarantee:
// for a fixed chain count, every workers setting (serial included)
// produces the identical result, because the chain RNG streams are
// derived before the fan-out and the reduction is ordered.
func TestSolveParallelWorkerInvariance(t *testing.T) {
	prob := chainProblem(8, 12)
	cfg := DefaultConfig(8)
	cfg.MaxEvals = 3000
	var want Result
	for i, workers := range []int{1, 2, 4, 13} {
		got, err := SolveParallel(prob, cfg, stats.NewRNG(99), 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got.Value != want.Value || got.Evals != want.Evals {
			t.Fatalf("workers=%d: (value, evals) = (%v, %d), want (%v, %d)",
				workers, got.Value, got.Evals, want.Value, want.Evals)
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("workers=%d: X = %v, want %v", workers, got.X, want.X)
			}
		}
	}
}

// TestSolveParallelMatchesManualDerivation pins the stream-derivation
// contract: chain k must anneal with Derive(k+1) of the parent RNG, and
// the reduction must keep the best value, summing evaluations.
func TestSolveParallelMatchesManualDerivation(t *testing.T) {
	const chains = 4
	prob := chainProblem(6, 9)
	cfg := DefaultConfig(6)
	cfg.MaxEvals = 2000

	got, err := SolveParallel(prob, cfg, stats.NewRNG(7), chains, 3)
	if err != nil {
		t.Fatal(err)
	}

	parent := stats.NewRNG(7)
	bestVal := 0.0
	evals := 0
	for k := 0; k < chains; k++ {
		res, err := SolveScratch(prob(k), cfg, parent.Derive(int64(k+1)), &Scratch{})
		if err != nil {
			t.Fatal(err)
		}
		evals += res.Evals
		if k == 0 || res.Value > bestVal {
			bestVal = res.Value
		}
	}
	if got.Value != bestVal || got.Evals != evals {
		t.Fatalf("SolveParallel = (value %v, evals %d), manual best-of = (%v, %d)",
			got.Value, got.Evals, bestVal, evals)
	}
}

// TestSolveParallelSingleChainUsesDerivedStream documents that chains=1
// under SolveParallel is NOT the same stream as a direct Solve with the
// parent RNG — it anneals with Derive(1). Callers needing the historical
// single-chain decisions (pm.SAnn with Chains <= 1) call SolveScratch
// directly.
func TestSolveParallelSingleChainUsesDerivedStream(t *testing.T) {
	prob := chainProblem(6, 9)
	cfg := DefaultConfig(6)
	cfg.MaxEvals = 1500

	par, err := SolveParallel(prob, cfg, stats.NewRNG(3), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveScratch(prob(0), cfg, stats.NewRNG(3).Derive(1), &Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Value != direct.Value {
		t.Fatalf("chains=1 value %v != Derive(1) solve value %v", par.Value, direct.Value)
	}
}

// BenchmarkSolveScratch measures the zero-alloc single-chain kernel on a
// 20-coordinate problem, the shape pm.SAnn drives per DVFS interval.
func BenchmarkSolveScratch(b *testing.B) {
	prob := chainProblem(20, 40)(0)
	cfg := DefaultConfig(20)
	cfg.MaxEvals = 20000
	rng := stats.NewRNG(1)
	scr := &Scratch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveScratch(prob, cfg, rng, scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveParallel4 runs four derived chains through the farm at
// the same total evaluation budget as BenchmarkSolveScratch.
func BenchmarkSolveParallel4(b *testing.B) {
	prob := chainProblem(20, 40)
	cfg := DefaultConfig(20)
	cfg.MaxEvals = 5000
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveParallel(prob, cfg, rng, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveParallelErrors(t *testing.T) {
	prob := chainProblem(4, 6)
	cfg := DefaultConfig(4)
	cfg.MaxEvals = 100
	if _, err := SolveParallel(prob, cfg, stats.NewRNG(1), 0, 1); err == nil {
		t.Fatal("chains=0 accepted")
	}
	// A failing chain (infeasible init) must surface its error.
	bad := func(chain int) *Problem {
		p := prob(chain)
		if chain == 2 {
			p.Init = []int{-1, 0, 0, 0}
		}
		return p
	}
	_, err := SolveParallel(bad, cfg, stats.NewRNG(1), 4, 2)
	if err == nil || !strings.Contains(err.Error(), "init[0]") {
		t.Fatalf("bad chain error = %v", err)
	}
}
