package adapt

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"vasched/internal/stats"
)

// synthetic builds a deterministic population whose metric is correlated
// with its severity proxy (like real dies): value = base + slope*severity
// + bounded pseudo-noise derived from the index.
func synthetic(n int, base, slope, noise float64) (severity, values []float64) {
	severity = make([]float64, n)
	values = make([]float64, n)
	rng := stats.NewRNG(42)
	for i := 0; i < n; i++ {
		severity[i] = rng.Float64() * 10
		values[i] = base + slope*severity[i] + noise*math.Sin(float64(i)*1.7)
	}
	return severity, values
}

// lookupEval returns an EvalFunc backed by a value table, recording every
// evaluated index into seen.
func lookupEval(values []float64, seen *[]int) EvalFunc {
	return func(_ context.Context, _ int, indices []int) ([]float64, error) {
		out := make([]float64, len(indices))
		for i, ix := range indices {
			if seen != nil {
				*seen = append(*seen, ix)
			}
			out[i] = values[ix]
		}
		return out, nil
	}
}

func TestConvergesWithFewerDies(t *testing.T) {
	sev, vals := synthetic(400, 10, 0.5, 0.4)
	var seen []int
	res, err := Run(context.Background(), Config{RelCI: 0.02}, sev, lookupEval(vals, &seen))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Evaluated >= 400 {
		t.Fatalf("evaluated the whole population (%d dies)", res.Evaluated)
	}
	if res.Evaluated != len(seen) {
		t.Fatalf("Evaluated = %d but eval saw %d indices", res.Evaluated, len(seen))
	}
	exact := stats.Mean(vals)
	if rel := math.Abs(res.Mean-exact) / exact; rel > 0.02 {
		t.Fatalf("estimate %.4f vs exact %.4f: rel error %.3f > 2%%", res.Mean, exact, rel)
	}
	if res.HalfWidth > res.RelCI*math.Abs(res.Mean) {
		t.Fatalf("converged with half-width %.4f above target", res.HalfWidth)
	}
	// No index is evaluated twice.
	sort.Ints(seen)
	for i := 1; i < len(seen); i++ {
		if seen[i] == seen[i-1] {
			t.Fatalf("index %d evaluated twice", seen[i])
		}
	}
	// Per-stratum counts add up.
	total := 0
	for _, s := range res.Strata {
		total += s.Evaluated
	}
	if total != res.Evaluated {
		t.Fatalf("stratum counts sum to %d, want %d", total, res.Evaluated)
	}
}

// The whole point of the driver: the round schedule is a pure function of
// (Config, severity), so two runs agree on every field — including which
// dies were drawn in which round.
func TestDeterministicSchedule(t *testing.T) {
	sev, vals := synthetic(200, 1.5, 0.02, 0.05)
	var seenA, seenB []int
	a, err := Run(context.Background(), Config{}, sev, lookupEval(vals, &seenA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Config{}, sev, lookupEval(vals, &seenB))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results differ:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(seenA, seenB) {
		t.Fatalf("draw sequences differ:\n%v\n%v", seenA, seenB)
	}
	// A different seed freezes a different (but equally valid) schedule.
	var seenC []int
	if _, err := Run(context.Background(), Config{Seed: 7}, sev, lookupEval(vals, &seenC)); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(seenA, seenC) {
		t.Fatal("changing the seed did not change the draw order")
	}
}

// Exact mode is the verification path: the estimate must be the plain
// index-order mean, bit-for-bit, with the full population evaluated.
func TestExactMatchesPlainMean(t *testing.T) {
	sev, vals := synthetic(97, 3, 0.1, 0.2)
	var seen []int
	res, err := Run(context.Background(), Config{Exact: true}, sev, lookupEval(vals, &seen))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != stats.Mean(vals) {
		t.Fatalf("exact mean %v != plain mean %v", res.Mean, stats.Mean(vals))
	}
	if res.Evaluated != 97 || !res.Exhausted || !res.Converged || !res.Exact {
		t.Fatalf("exact result flags wrong: %+v", res)
	}
	if res.HalfWidth != 0 {
		t.Fatalf("exact mode half-width = %v, want 0", res.HalfWidth)
	}
	// Index order, each exactly once.
	for i, ix := range seen {
		if ix != i {
			t.Fatalf("exact mode evaluated %v, want ascending index order", seen)
		}
	}
}

// A tiny population with an unreachable CI target is exhausted, not looped
// forever: every die is evaluated exactly once and the run reports it.
func TestExhaustsPopulation(t *testing.T) {
	sev := []float64{5, 1, 4, 2, 3}
	vals := []float64{100, -50, 80, -20, 0} // huge spread, tiny n
	var seen []int
	res, err := Run(context.Background(), Config{RelCI: 1e-9}, sev, lookupEval(vals, &seen))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Evaluated != 5 {
		t.Fatalf("expected exhaustion of all 5 dies: %+v", res)
	}
	sort.Ints(seen)
	if !reflect.DeepEqual(seen, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("draws %v, want each die exactly once", seen)
	}
	// Fully-drawn strata have zero FPC variance, so the exhausted
	// estimate's half-width collapses to zero and the run also converges.
	if res.HalfWidth != 0 || !res.Converged {
		t.Fatalf("exhausted run should have zero half-width: %+v", res)
	}
}

func TestErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}, nil, lookupEval(nil, nil)); err == nil {
		t.Error("empty population should error")
	}
	boom := errors.New("boom")
	_, err := Run(ctx, Config{}, []float64{1, 2, 3},
		func(context.Context, int, []int) ([]float64, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("eval error not propagated: %v", err)
	}
	_, err = Run(ctx, Config{}, []float64{1, 2, 3},
		func(_ context.Context, _ int, ix []int) ([]float64, error) {
			return make([]float64, len(ix)+1), nil
		})
	if err == nil {
		t.Error("length mismatch not detected")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	sev, vals := synthetic(50, 1, 1, 1)
	if _, err := Run(cctx, Config{}, sev, lookupEval(vals, nil)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation not propagated: %v", err)
	}
}

func TestProgressCallback(t *testing.T) {
	sev, vals := synthetic(100, 2, 0.3, 0.3)
	var statuses []Status
	cfg := Config{Progress: func(s Status) { statuses = append(statuses, s) }}
	res, err := Run(context.Background(), cfg, sev, lookupEval(vals, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != len(res.Rounds) {
		t.Fatalf("%d progress callbacks for %d rounds", len(statuses), len(res.Rounds))
	}
	last := statuses[len(statuses)-1]
	if last.Evaluated != res.Evaluated || last.Mean != res.Mean || last.HalfWidth != res.HalfWidth {
		t.Fatalf("final status %+v does not match result %+v", last, res)
	}
	for i := 1; i < len(statuses); i++ {
		if statuses[i].Evaluated <= statuses[i-1].Evaluated {
			t.Fatal("evaluated count not strictly increasing across rounds")
		}
	}
}

// Neyman allocation should spend more of each round's budget on the
// high-variance stratum than the near-constant ones.
func TestNeymanFavoursVariance(t *testing.T) {
	n := 300
	sev := make([]float64, n)
	vals := make([]float64, n)
	for i := range sev {
		sev[i] = float64(i) // strata = index quarters
		if i >= 3*n/4 {     // top stratum: wild
			vals[i] = math.Sin(float64(i)) * 50
		} else { // rest: nearly constant
			vals[i] = 10 + 0.001*math.Sin(float64(i))
		}
	}
	res, err := Run(context.Background(), Config{RelCI: 0.05, MaxRounds: 3}, sev, lookupEval(vals, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Skipf("converged before any Neyman round: %+v", res)
	}
	for _, r := range res.Rounds[1:] {
		top := r.Draws[len(r.Draws)-1]
		for h, d := range r.Draws[:len(r.Draws)-1] {
			if d > top {
				t.Fatalf("round drew %d from quiet stratum %d but %d from the wild one (draws %v)", d, h, top, r.Draws)
			}
		}
	}
}

func TestAllocate(t *testing.T) {
	// Proportional split with largest-remainder rounding.
	got := allocate(10, []float64{1, 1, 2}, []int{100, 100, 100})
	if !reflect.DeepEqual(got, []int{3, 2, 5}) {
		t.Errorf("allocate = %v, want [3 2 5]", got)
	}
	// Caps bind and the leftover spills to open strata.
	got = allocate(10, []float64{1, 1, 2}, []int{1, 100, 100})
	if sum(got) != 10 || got[0] != 1 {
		t.Errorf("capped allocate = %v", got)
	}
	// Budget larger than capacity drains everything.
	got = allocate(50, []float64{1, 1}, []int{3, 4})
	if !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("over-budget allocate = %v, want [3 4]", got)
	}
	// Zero weights, zero budget.
	if got = allocate(5, []float64{0, 0}, []int{3, 3}); sum(got) != 0 {
		t.Errorf("zero-weight allocate = %v", got)
	}
	if got = allocate(0, []float64{1, 1}, []int{3, 3}); sum(got) != 0 {
		t.Errorf("zero-budget allocate = %v", got)
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Severity ties must stratify deterministically (stable by index).
func TestStratifyTiesAndBounds(t *testing.T) {
	sev := []float64{1, 1, 1, 1, 1, 1}
	strata, byIndex := stratify(sev, 3, 0)
	want := [][]int{{0, 1}, {2, 3}, {4, 5}}
	for h, s := range strata {
		if !reflect.DeepEqual(s.members, want[h]) {
			t.Fatalf("stratum %d members %v, want %v", h, s.members, want[h])
		}
	}
	for die, h := range byIndex {
		if h != die/2 {
			t.Fatalf("byIndex[%d] = %d", die, h)
		}
	}
	// More strata than dies clamps.
	res, err := Run(context.Background(), Config{Strata: 50}, []float64{1, 2},
		func(_ context.Context, _ int, ix []int) ([]float64, error) {
			return make([]float64, len(ix)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) != 2 {
		t.Fatalf("expected strata clamped to population: %+v", res.Strata)
	}
}
