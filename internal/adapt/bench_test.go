package adapt

import (
	"context"
	"testing"

	"vasched/internal/stats"
)

// BenchmarkRun measures the driver's own overhead (stratify + allocate +
// estimate per round) on a 200-die synthetic population and reports the
// headline artefact numbers: dies-to-answer at the default ±2% @ 95%
// target, and the saving factor vs evaluating the full population.
func BenchmarkRun(b *testing.B) {
	sev, vals := synthetic(200, 1.5, 0.02, 0.05)
	eval := lookupEval(vals, nil)
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Run(context.Background(), Config{}, sev, eval)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Evaluated), "dies_to_answer")
	b.ReportMetric(float64(res.PopulationN)/float64(res.Evaluated), "dies_saving_x")
}

// BenchmarkRunExact is the full-population baseline the adaptive numbers
// are read against.
func BenchmarkRunExact(b *testing.B) {
	sev, vals := synthetic(200, 1.5, 0.02, 0.05)
	eval := lookupEval(vals, nil)
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Exact: true}, sev, eval); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(200, "dies_to_answer")
}

// BenchmarkEstimate isolates the stopping-rule hot path (stratified
// variance + t quantile), which runs once per round.
func BenchmarkEstimate(b *testing.B) {
	sev, vals := synthetic(200, 1.5, 0.02, 0.05)
	strata, _ := stratify(sev, 4, 0)
	for _, s := range strata {
		for _, die := range s.members[:len(s.members)/2] {
			s.vals = append(s.vals, vals[die])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate(strata, 200, 0.95)
	}
	_ = stats.Mean(vals)
}
