// Package adapt implements the adaptive stratified die-sampling driver:
// instead of evaluating a metric on every die of the frozen batch, the
// population is stratified by a cheap variation-severity proxy, evaluation
// budget is allocated across strata Neyman-style in sequential rounds, and
// the run stops as soon as the stratified estimator's confidence-interval
// half-width drops below a configurable fraction of the mean. The output
// is mean ± CI, per-stratum counts, and the total dies evaluated — the
// "dies-to-answer" number the benchmarks record.
//
// Determinism contract (DESIGN.md §12): given the same Config and severity
// slice, the sequence of evaluated indices — the round schedule — is a
// pure function of those inputs. Stratum boundaries come from a stable
// severity sort, within-stratum draw order from a seeded permutation, and
// Neyman allocations use largest-remainder rounding with index-order tie
// breaking. Worker counts, shard sizes, cache states, and retries can
// change freely without moving a single draw, so an adaptive run renders
// byte-identically everywhere — the same contract the exact-population
// experiments already meet.
package adapt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"vasched/internal/stats"
	"vasched/internal/trace"
)

// Config tunes the driver. The zero value selects the defaults below; all
// fields marshal to JSON so a Config can travel in job submissions.
type Config struct {
	// Strata is how many severity strata the population is cut into
	// (default 4, clamped to the population size).
	Strata int `json:"strata,omitempty"`
	// Pilot is the round-0 draw per stratum that seeds the variance
	// estimates (default 2, clamped to the stratum size).
	Pilot int `json:"pilot,omitempty"`
	// RoundSize is the evaluation budget of every later round, spread
	// across strata by Neyman allocation (default 8).
	RoundSize int `json:"round_size,omitempty"`
	// MaxRounds bounds the number of rounds after the pilot (default 64);
	// the population itself is the other bound.
	MaxRounds int `json:"max_rounds,omitempty"`
	// RelCI is the stopping target: the half-width of the confidence
	// interval as a fraction of the absolute mean (default 0.02).
	RelCI float64 `json:"rel_ci,omitempty"`
	// Confidence is the CI level the half-width is computed at
	// (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// Seed freezes the within-stratum draw order (default 0; part of the
	// determinism contract, not a source of irreproducibility).
	Seed int64 `json:"seed,omitempty"`
	// Exact switches to the verification mode: every index is evaluated
	// in index order and the estimate is the plain population mean,
	// bit-identical to the non-adaptive experiment path.
	Exact bool `json:"exact,omitempty"`
	// Progress, when non-nil, receives one Status per completed round
	// (vaschedd surfaces these as /metrics gauges). Observational only.
	Progress func(Status) `json:"-"`
}

// withDefaults fills unset fields and clamps to the population size n.
func (c Config) withDefaults(n int) Config {
	if c.Strata <= 0 {
		c.Strata = 4
	}
	if c.Strata > n {
		c.Strata = n
	}
	if c.Pilot <= 0 {
		c.Pilot = 2
	}
	if c.RoundSize <= 0 {
		c.RoundSize = 8
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	if c.RelCI <= 0 {
		c.RelCI = 0.02
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	return c
}

// Status is the per-round progress snapshot fed to Config.Progress.
type Status struct {
	Round     int     // rounds completed so far
	Evaluated int     // dies evaluated so far
	Mean      float64 // current stratified estimate
	HalfWidth float64 // current CI half-width
	Target    float64 // half-width the stopping rule wants (RelCI * |mean|)
}

// Round records one entry of the frozen round schedule.
type Round struct {
	// Draws is how many dies this round drew from each stratum.
	Draws []int `json:"draws"`
	// Evaluated is the cumulative die count after the round.
	Evaluated int `json:"evaluated"`
	// Mean and HalfWidth are the estimate after the round.
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
}

// Stratum reports one severity stratum's population and sample statistics.
type Stratum struct {
	Size      int     `json:"size"`
	Evaluated int     `json:"evaluated"`
	SevLo     float64 `json:"sev_lo"` // severity range covered
	SevHi     float64 `json:"sev_hi"`
	Mean      float64 `json:"mean"`
	Std       float64 `json:"std"` // sample std dev (0 when fewer than 2 samples)
}

// Result is the driver's outcome. It is plain data (JSON round-trips
// losslessly), so experiment results can embed it.
type Result struct {
	PopulationN int     `json:"population_n"`
	Evaluated   int     `json:"evaluated"`
	Mean        float64 `json:"mean"`
	HalfWidth   float64 `json:"half_width"`
	Confidence  float64 `json:"confidence"`
	RelCI       float64 `json:"rel_ci"`
	// Converged reports the half-width target was met; Exhausted reports
	// the whole population was evaluated first (the estimate is then the
	// full-population stratified mean and the CI collapses to zero width).
	Converged bool      `json:"converged"`
	Exhausted bool      `json:"exhausted"`
	Exact     bool      `json:"exact,omitempty"`
	Strata    []Stratum `json:"strata"`
	Rounds    []Round   `json:"rounds"`
}

// EvalFunc evaluates the target metric for a batch of population indices
// and returns one value per index, in argument order. The driver calls it
// once per round; implementations fan the batch across workers or cluster
// shards however they like, as long as each value is a pure function of
// its index.
type EvalFunc func(ctx context.Context, round int, indices []int) ([]float64, error)

// stratum is the driver's working state for one severity stratum.
type stratum struct {
	members []int // population indices, severity-sorted
	order   []int // frozen draw order (seeded permutation of members)
	next    int   // how many of order have been drawn
	vals    []float64
	sevLo   float64
	sevHi   float64
}

func (s *stratum) remaining() int { return len(s.members) - s.next }

// Run drives the adaptive loop: stratify by severity, evaluate rounds
// until converged (or the population or round budget runs out), and report
// the stratified estimate. severity must hold one proxy value per
// population index.
func Run(ctx context.Context, cfg Config, severity []float64, eval EvalFunc) (*Result, error) {
	n := len(severity)
	if n == 0 {
		return nil, errors.New("adapt: empty population")
	}
	cfg = cfg.withDefaults(n)
	strata, byIndex := stratify(severity, cfg.Strata, cfg.Seed)
	res := &Result{
		PopulationN: n,
		Confidence:  cfg.Confidence,
		RelCI:       cfg.RelCI,
		Exact:       cfg.Exact,
	}
	if cfg.Exact {
		return runExact(ctx, cfg, strata, res, eval)
	}

	for round := 0; round <= cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		draws := plan(cfg, round, strata)
		indices := draw(strata, draws)
		if len(indices) == 0 {
			break
		}
		vals, err := evalRound(ctx, round, indices, eval)
		if err != nil {
			return nil, err
		}
		for i, die := range indices {
			strata[byIndex[die]].vals = append(strata[byIndex[die]].vals, vals[i])
		}
		res.Evaluated += len(indices)
		mean, half := estimate(strata, n, cfg.Confidence)
		res.Mean, res.HalfWidth = mean, half
		res.Rounds = append(res.Rounds, Round{
			Draws: draws, Evaluated: res.Evaluated, Mean: mean, HalfWidth: half,
		})
		target := cfg.RelCI * math.Abs(mean)
		if cfg.Progress != nil {
			cfg.Progress(Status{
				Round: round + 1, Evaluated: res.Evaluated,
				Mean: mean, HalfWidth: half, Target: target,
			})
		}
		if res.Evaluated == n {
			res.Exhausted = true
			res.Converged = half <= target
			break
		}
		if half <= target {
			res.Converged = true
			break
		}
	}
	fillStrata(res, strata)
	return res, nil
}

// runExact evaluates the whole population in index order and reports the
// plain mean — the verification mode that must match the non-adaptive
// experiment path bit-for-bit. Stratum statistics are still reported so
// exact runs document what the sampler would have stratified over.
func runExact(ctx context.Context, cfg Config, strata []*stratum, res *Result, eval EvalFunc) (*Result, error) {
	n := res.PopulationN
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	vals, err := evalRound(ctx, 0, indices, eval)
	if err != nil {
		return nil, err
	}
	res.Evaluated = n
	res.Mean = stats.Mean(vals)
	res.HalfWidth = 0
	res.Converged, res.Exhausted = true, true
	draws := make([]int, len(strata))
	for h, s := range strata {
		draws[h] = len(s.members)
		s.next = len(s.members)
		for _, die := range s.members {
			s.vals = append(s.vals, vals[die])
		}
	}
	res.Rounds = []Round{{Draws: draws, Evaluated: n, Mean: res.Mean}}
	fillStrata(res, strata)
	return res, nil
}

// evalRound wraps one eval call in a trace span and validates the reply.
func evalRound(ctx context.Context, round int, indices []int, eval EvalFunc) ([]float64, error) {
	rctx, sp := trace.Start(ctx, "adapt.round",
		trace.Int("round", round), trace.Int("dies", len(indices)))
	defer sp.End()
	vals, err := eval(rctx, round, indices)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(indices) {
		return nil, fmt.Errorf("adapt: round %d eval returned %d values for %d indices", round, len(vals), len(indices))
	}
	return vals, nil
}

// stratify cuts the population into k contiguous severity strata: indices
// are stable-sorted by severity (ties keep index order) and split into
// near-equal groups, lowest severity first. Each stratum's draw order is a
// permutation seeded from (seed, stratum), frozen for the whole run.
func stratify(severity []float64, k int, seed int64) (strata []*stratum, byIndex []int) {
	n := len(severity)
	sorted := stats.RankAscending(severity)
	byIndex = make([]int, n)
	base, extra := n/k, n%k
	root := stats.NewRNG(seed)
	pos := 0
	for h := 0; h < k; h++ {
		size := base
		if h < extra {
			size++
		}
		members := append([]int(nil), sorted[pos:pos+size]...)
		pos += size
		perm := root.Derive(int64(h + 1)).Perm(len(members))
		order := make([]int, len(members))
		for i, p := range perm {
			order[i] = members[p]
		}
		s := &stratum{
			members: members,
			order:   order,
			sevLo:   severity[members[0]],
			sevHi:   severity[members[len(members)-1]],
		}
		for _, die := range members {
			byIndex[die] = h
		}
		strata = append(strata, s)
	}
	return strata, byIndex
}

// plan decides this round's per-stratum draws. Round 0 is the pilot (a
// fixed draw per stratum so every variance estimate exists); later rounds
// spread RoundSize dies by Neyman allocation — proportional to
// N_h * s_h, the allocation that minimises the stratified variance for a
// fixed budget — falling back to remaining-size weights when every
// sampled stratum looks variance-free.
func plan(cfg Config, round int, strata []*stratum) []int {
	k := len(strata)
	draws := make([]int, k)
	if round == 0 {
		for h, s := range strata {
			draws[h] = min(cfg.Pilot, s.remaining())
		}
		return draws
	}
	budget := 0
	caps := make([]int, k)
	weights := make([]float64, k)
	var wsum float64
	for h, s := range strata {
		caps[h] = s.remaining()
		budget += caps[h]
		if caps[h] > 0 {
			weights[h] = float64(len(s.members)) * sampleStd(s.vals)
			wsum += weights[h]
		}
	}
	if budget > cfg.RoundSize {
		budget = cfg.RoundSize
	}
	if wsum == 0 {
		for h := range weights {
			weights[h] = float64(caps[h])
		}
	}
	return allocate(budget, weights, caps)
}

// allocate spreads budget across strata proportionally to weights with
// largest-remainder rounding, capped per stratum. Ties and leftover
// passes break by stratum index, so the result is deterministic.
func allocate(budget int, weights []float64, caps []int) []int {
	out := make([]int, len(weights))
	var wsum float64
	for h := range weights {
		if caps[h] <= 0 {
			weights[h] = 0
		}
		wsum += weights[h]
	}
	if budget <= 0 || wsum == 0 {
		return out
	}
	type rem struct {
		h int
		f float64
	}
	var rems []rem
	assigned := 0
	for h, w := range weights {
		if w == 0 {
			continue
		}
		raw := float64(budget) * w / wsum
		whole := int(math.Floor(raw))
		if whole > caps[h] {
			whole = caps[h]
		}
		out[h] = whole
		assigned += whole
		rems = append(rems, rem{h: h, f: raw - math.Floor(raw)})
	}
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].f > rems[j].f })
	for assigned < budget {
		progressed := false
		for _, r := range rems {
			if assigned == budget {
				break
			}
			if out[r.h] < caps[r.h] {
				out[r.h]++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// draw pulls the next draws[h] indices from each stratum's frozen order
// and returns the round's batch sorted ascending (the order the reduce
// step will see them in).
func draw(strata []*stratum, draws []int) []int {
	var indices []int
	for h, s := range strata {
		for i := 0; i < draws[h]; i++ {
			indices = append(indices, s.order[s.next])
			s.next++
		}
	}
	sort.Ints(indices)
	return indices
}

// estimate computes the stratified mean and its CI half-width with
// finite-population correction: mean = Σ W_h x̄_h, var = Σ W_h² s_h²/n_h
// (1 − n_h/N_h), half-width = t_{1−α/2, Σ(n_h−1)} · sqrt(var).
func estimate(strata []*stratum, n int, confidence float64) (mean, half float64) {
	var variance, df float64
	for _, s := range strata {
		if len(s.vals) == 0 {
			continue
		}
		w := float64(len(s.members)) / float64(n)
		mean += w * stats.Mean(s.vals)
		nh, Nh := float64(len(s.vals)), float64(len(s.members))
		if nh >= 2 {
			sd := sampleStd(s.vals)
			variance += w * w * sd * sd / nh * (1 - nh/Nh)
			df += nh - 1
		} else if nh < Nh {
			// A single sample from a multi-die stratum carries unknown
			// variance; poison the half-width so the stopping rule cannot
			// fire before the pilot has seeded every stratum.
			variance = math.Inf(1)
		}
	}
	if math.IsInf(variance, 1) {
		return mean, math.Inf(1)
	}
	if df < 1 {
		df = 1
	}
	half = stats.TQuantile(1-(1-confidence)/2, df) * math.Sqrt(variance)
	return mean, half
}

// fillStrata copies the final per-stratum statistics into the result.
func fillStrata(res *Result, strata []*stratum) {
	for _, s := range strata {
		res.Strata = append(res.Strata, Stratum{
			Size:      len(s.members),
			Evaluated: len(s.vals),
			SevLo:     s.sevLo,
			SevHi:     s.sevHi,
			Mean:      stats.Mean(s.vals),
			Std:       sampleStd(s.vals),
		})
	}
}

// sampleStd is the n−1 (Bessel-corrected) standard deviation, 0 below two
// samples.
func sampleStd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := stats.Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
