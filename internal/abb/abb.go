// Package abb implements per-core Adaptive Body Bias, the variation-
// mitigation technique of Humenay et al. that the paper's related-work
// section calls complementary to variation-aware scheduling: instead of
// exploiting core-to-core differences, ABB *compresses* them by shifting
// each core's threshold voltage post-manufacturing.
//
// Forward body bias lowers Vth — the core speeds up but leaks
// exponentially more; reverse bias does the opposite. The classic policy
// (implemented here) pulls every core toward a common target frequency:
// slow cores get forward bias, fast cores get reverse bias, trading the
// frequency spread for a power spread, exactly the cost Humenay et al.
// report. The ext-abb experiment measures how much of the variation-aware
// schedulers' advantage survives the compression.
package abb

import (
	"fmt"
	"sort"

	"vasched/internal/chip"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/stats"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

// Config describes the bias hardware.
type Config struct {
	// MaxForwardV and MaxReverseV bound the body bias magnitude (volts of
	// bias, both positive numbers; typical designs allow ~0.5 V each way).
	MaxForwardV float64
	MaxReverseV float64
	// StepV is the bias DAC resolution.
	StepV float64
	// VthPerBiasV is the threshold shift per volt of forward bias
	// (body-effect coefficient; ~100 mV Vth per 1 V bias is typical).
	VthPerBiasV float64
}

// DefaultConfig returns a typical ABB design.
func DefaultConfig() Config {
	return Config{
		MaxForwardV: 0.5,
		MaxReverseV: 0.5,
		StepV:       0.1,
		VthPerBiasV: 0.1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxForwardV < 0 || c.MaxReverseV < 0 {
		return fmt.Errorf("abb: negative bias bound in %+v", c)
	}
	if c.StepV <= 0 || c.VthPerBiasV <= 0 {
		return fmt.Errorf("abb: non-positive step or coefficient in %+v", c)
	}
	return nil
}

// Assignment is the per-core body bias in volts (positive = forward =
// faster and leakier).
type Assignment []float64

// biasLevels enumerates the DAC's settings from most reverse to most
// forward.
func (c Config) biasLevels() []float64 {
	var out []float64
	for b := -c.MaxReverseV; b <= c.MaxForwardV+c.StepV/2; b += c.StepV {
		out = append(out, b)
	}
	return out
}

// ChooseBias picks each core's bias so its post-bias frequency meets the
// batch's median core frequency where possible: slow cores take the
// smallest forward bias that reaches the target, fast cores the largest
// reverse bias that keeps them at or above it (recovering leakage).
func ChooseBias(base *chip.Chip, dcfg delay.Config, cfg Config) (Assignment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := base.NumCores()
	freqs := make([]float64, n)
	for core := 0; core < n; core++ {
		freqs[core] = base.FmaxNominal(core)
	}
	target := median(freqs)
	levels := cfg.biasLevels()

	out := make(Assignment, n)
	for core := 0; core < n; core++ {
		// The core's frequency response to bias: a Vth shift moves every
		// path; estimate via the path population's worst relative delay.
		fAt := func(bias float64) float64 {
			shift := -cfg.VthPerBiasV * bias
			return base.Paths[core].FmaxWithVthShift(shift, base.Tech.VddNominal, base.Tech.TRatingC)
		}
		if freqs[core] < target {
			// Smallest forward bias reaching the target (or max out).
			chosen := cfg.MaxForwardV
			for _, b := range levels {
				if b <= 0 {
					continue
				}
				if fAt(b) >= target {
					chosen = b
					break
				}
			}
			out[core] = chosen
		} else {
			// Largest reverse bias that keeps the core at the target.
			chosen := 0.0
			for _, b := range levels {
				if b >= 0 {
					break
				}
				if fAt(b) >= target {
					chosen = b
					break
				}
			}
			out[core] = chosen
		}
	}
	return out, nil
}

// Apply returns a new die-map set with each core's systematic Vth shifted
// by its bias (the L2 region is unbiased), ready for chip.Build. The
// original maps are not modified.
func Apply(maps *varmodel.DieMaps, fp *floorplan.Floorplan, bias Assignment, cfg Config) (*varmodel.DieMaps, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(bias) != fp.NumCores {
		return nil, fmt.Errorf("abb: %d biases for %d cores", len(bias), fp.NumCores)
	}
	for core, b := range bias {
		if b > cfg.MaxForwardV+1e-9 || b < -cfg.MaxReverseV-1e-9 {
			return nil, fmt.Errorf("abb: core %d bias %v outside [%v, %v]",
				core, b, -cfg.MaxReverseV, cfg.MaxForwardV)
		}
	}

	clone := *maps
	field := *maps.VthSys
	field.Data = append([]float64(nil), maps.VthSys.Data...)
	clone.VthSys = &field

	rows, cols := field.Rows, field.Cols
	for r := 0; r < rows; r++ {
		y := (float64(r) + 0.5) / float64(rows)
		for c := 0; c < cols; c++ {
			x := (float64(c) + 0.5) / float64(cols)
			bi := fp.BlockAt(x, y)
			if bi < 0 {
				continue
			}
			core := fp.Blocks[bi].Core
			if core < 0 {
				continue // L2 is unbiased
			}
			field.Data[r*cols+c] -= cfg.VthPerBiasV * bias[core]
		}
	}
	return &clone, nil
}

// Rebuild characterises the biased die: ChooseBias on the base chip,
// Apply to the maps, and a fresh chip.Build.
func Rebuild(base *chip.Chip, dcfg delay.Config, pcfg power.Model, tcfg thermal.Config, cfg Config) (*chip.Chip, Assignment, error) {
	bias, err := ChooseBias(base, dcfg, cfg)
	if err != nil {
		return nil, nil, err
	}
	maps, err := Apply(base.Maps, base.FP, bias, cfg)
	if err != nil {
		return nil, nil, err
	}
	biased, err := chip.Build(maps, base.FP, dcfg, pcfg, tcfg)
	if err != nil {
		return nil, nil, err
	}
	return biased, bias, nil
}

// Spread summarises a chip's core-to-core frequency and static-power
// spread (max/min ratios), the quantities ABB trades against each other.
func Spread(c *chip.Chip) (freqRatio, leakRatio float64) {
	n := c.NumCores()
	top := len(c.Levels) - 1
	fs := make([]float64, n)
	ls := make([]float64, n)
	for core := 0; core < n; core++ {
		fs[core] = c.FmaxNominal(core)
		ls[core] = c.StaticAtLevel[core][top]
	}
	return stats.Max(fs) / stats.Min(fs), stats.Max(ls) / stats.Min(ls)
}

func median(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}
