package abb

import (
	"math"
	"sync"
	"testing"

	"vasched/internal/chip"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

var (
	once     sync.Once
	baseChip *chip.Chip
	buildErr error
)

func base(t *testing.T) *chip.Chip {
	t.Helper()
	once.Do(func() {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 128, 128
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			buildErr = err
			return
		}
		maps, err := g.Die(1, 0)
		if err != nil {
			buildErr = err
			return
		}
		baseChip, buildErr = chip.Build(maps, floorplan.New20CoreCMP(), delay.DefaultConfig(),
			power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return baseChip
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxForwardV: -1, MaxReverseV: 0.5, StepV: 0.1, VthPerBiasV: 0.1},
		{MaxForwardV: 0.5, MaxReverseV: 0.5, StepV: 0, VthPerBiasV: 0.1},
		{MaxForwardV: 0.5, MaxReverseV: 0.5, StepV: 0.1, VthPerBiasV: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChooseBiasDirections(t *testing.T) {
	c := base(t)
	bias, err := ChooseBias(c, delay.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bias) != c.NumCores() {
		t.Fatalf("bias for %d cores", len(bias))
	}
	// Slowest core must get forward bias, fastest must get reverse (or
	// none), per the equalising policy.
	slow, fast := 0, 0
	for core := 1; core < c.NumCores(); core++ {
		if c.FmaxNominal(core) < c.FmaxNominal(slow) {
			slow = core
		}
		if c.FmaxNominal(core) > c.FmaxNominal(fast) {
			fast = core
		}
	}
	if bias[slow] <= 0 {
		t.Fatalf("slowest core bias = %v, want forward", bias[slow])
	}
	if bias[fast] > 0 {
		t.Fatalf("fastest core bias = %v, want reverse or zero", bias[fast])
	}
	cfg := DefaultConfig()
	for core, b := range bias {
		if b > cfg.MaxForwardV+1e-9 || b < -cfg.MaxReverseV-1e-9 {
			t.Fatalf("core %d bias %v out of range", core, b)
		}
	}
}

func TestApplyValidation(t *testing.T) {
	c := base(t)
	cfg := DefaultConfig()
	if _, err := Apply(c.Maps, c.FP, make(Assignment, 3), cfg); err == nil {
		t.Fatal("wrong-length assignment accepted")
	}
	over := make(Assignment, c.NumCores())
	over[0] = cfg.MaxForwardV + 1
	if _, err := Apply(c.Maps, c.FP, over, cfg); err == nil {
		t.Fatal("out-of-range bias accepted")
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	c := base(t)
	cfg := DefaultConfig()
	bias := make(Assignment, c.NumCores())
	for i := range bias {
		bias[i] = 0.3
	}
	before := append([]float64(nil), c.Maps.VthSys.Data...)
	if _, err := Apply(c.Maps, c.FP, bias, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if c.Maps.VthSys.Data[i] != before[i] {
			t.Fatal("Apply mutated the original maps")
		}
	}
}

func TestForwardBiasSpeedsUpAndLeaksMore(t *testing.T) {
	c := base(t)
	cfg := DefaultConfig()
	bias := make(Assignment, c.NumCores())
	for i := range bias {
		bias[i] = 0.5 // max forward everywhere
	}
	maps, err := Apply(c.Maps, c.FP, bias, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := chip.Build(maps, c.FP, delay.DefaultConfig(), c.Power, thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	top := len(c.Levels) - 1
	for core := 0; core < c.NumCores(); core++ {
		if fast.FmaxNominal(core) <= c.FmaxNominal(core) {
			t.Fatalf("core %d not faster under forward bias", core)
		}
		if fast.StaticAtLevel[core][top] <= c.StaticAtLevel[core][top] {
			t.Fatalf("core %d not leakier under forward bias", core)
		}
	}
}

func TestRebuildCompressesFrequencySpread(t *testing.T) {
	// The Humenay et al. result: ABB narrows the frequency spread at the
	// cost of a wider power spread (or higher total leakage).
	c := base(t)
	biased, bias, err := Rebuild(c, delay.DefaultConfig(), c.Power, thermal.DefaultConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bias) != c.NumCores() {
		t.Fatal("missing bias assignment")
	}
	fBefore, _ := Spread(c)
	fAfter, _ := Spread(biased)
	if fAfter >= fBefore {
		t.Fatalf("ABB did not compress frequency spread: %v -> %v", fBefore, fAfter)
	}
	// Spread compression should be substantial (>=30% of the excess).
	if (fBefore-fAfter)/(fBefore-1) < 0.3 {
		t.Fatalf("compression too weak: %v -> %v", fBefore, fAfter)
	}
}

func TestSpreadSane(t *testing.T) {
	c := base(t)
	f, l := Spread(c)
	if f <= 1 || l <= 1 || math.IsInf(f, 0) || math.IsInf(l, 0) {
		t.Fatalf("spread = %v, %v", f, l)
	}
}

func TestBiasLevelsCoverRange(t *testing.T) {
	cfg := DefaultConfig()
	levels := cfg.biasLevels()
	if levels[0] != -cfg.MaxReverseV {
		t.Fatalf("first level %v", levels[0])
	}
	if last := levels[len(levels)-1]; math.Abs(last-cfg.MaxForwardV) > 1e-9 {
		t.Fatalf("last level %v", last)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatal("levels not ascending")
		}
	}
}

func TestZeroBiasIsIdentity(t *testing.T) {
	c := base(t)
	maps, err := Apply(c.Maps, c.FP, make(Assignment, c.NumCores()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range maps.VthSys.Data {
		if maps.VthSys.Data[i] != c.Maps.VthSys.Data[i] {
			t.Fatal("zero bias changed the maps")
		}
	}
}
