package pm

import (
	"context"

	"vasched/internal/stats"
)

// Foxton is the paper's baseline power manager: a small extension of the
// Itanium II Foxton controller to per-core (V, f) pairs. Starting from
// every core at its maximum level, it walks the active cores round-robin,
// stepping each visited core's level down by one, until both the chip-wide
// Ptarget and the per-core Pcoremax constraints hold (or every core sits
// at its minimum level).
//
// The budget walk re-evaluates chip power after every step, so it runs on
// a pm.Snapshot like the optimising managers: one interface capture, then
// array reads.
type Foxton struct{}

// NewFoxton returns the baseline manager.
func NewFoxton() Foxton { return Foxton{} }

// Name implements Manager.
func (Foxton) Name() string { return NameFoxton }

// Decide implements Manager.
func (Foxton) Decide(ctx context.Context, p Platform, b Budget, _ *stats.RNG) ([]int, error) {
	var snap Snapshot
	return foxtonDecide(ctx, &snap, p, b)
}

// NewSession implements SessionManager: the returned manager decides
// identically but reuses the snapshot tables across intervals.
func (Foxton) NewSession() Manager { return &foxtonSession{} }

type foxtonSession struct {
	snap Snapshot
}

func (s *foxtonSession) Name() string { return NameFoxton }

func (s *foxtonSession) Decide(ctx context.Context, p Platform, b Budget, _ *stats.RNG) ([]int, error) {
	return foxtonDecide(ctx, &s.snap, p, b)
}

func foxtonDecide(ctx context.Context, snap *Snapshot, p Platform, b Budget) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	_, sp := startDecide(ctx, NameFoxton, p)
	defer sp.End()
	snap.Capture(p)
	n, nl := snap.Cores, snap.Levels
	top := nl - 1
	levels := make([]int, n)
	for c := range levels {
		levels[c] = top
	}
	mins := snap.MinLev

	satisfied := func() bool {
		if snap.TotalPower(levels) > b.PTargetW {
			return false
		}
		for c, l := range levels {
			if snap.Power[c*nl+l] > b.PCoreMaxW {
				return false
			}
		}
		return true
	}

	cursor := 0
	for !satisfied() {
		// Find the next core that can still step down.
		moved := false
		for probe := 0; probe < n; probe++ {
			c := (cursor + probe) % n
			if levels[c] > mins[c] {
				levels[c]--
				cursor = (c + 1) % n
				moved = true
				break
			}
		}
		if !moved {
			// Everything is at the floor; the budget is simply
			// unattainable and the controller holds the lowest point.
			break
		}
	}
	return levels, nil
}
