package pm

import "vasched/internal/stats"

// Foxton is the paper's baseline power manager: a small extension of the
// Itanium II Foxton controller to per-core (V, f) pairs. Starting from
// every core at its maximum level, it walks the active cores round-robin,
// stepping each visited core's level down by one, until both the chip-wide
// Ptarget and the per-core Pcoremax constraints hold (or every core sits
// at its minimum level).
type Foxton struct{}

// NewFoxton returns the baseline manager.
func NewFoxton() Foxton { return Foxton{} }

// Name implements Manager.
func (Foxton) Name() string { return NameFoxton }

// Decide implements Manager.
func (Foxton) Decide(p Platform, b Budget, _ *stats.RNG) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	n := p.NumCores()
	top := p.NumLevels() - 1
	levels := make([]int, n)
	mins := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = top
		mins[c] = minLevel(p, c)
	}

	satisfied := func() bool {
		if totalPower(p, levels) > b.PTargetW {
			return false
		}
		for c, l := range levels {
			if p.PowerAt(c, l) > b.PCoreMaxW {
				return false
			}
		}
		return true
	}

	cursor := 0
	for steps := 0; !satisfied(); steps++ {
		// Find the next core that can still step down.
		moved := false
		for probe := 0; probe < n; probe++ {
			c := (cursor + probe) % n
			if levels[c] > mins[c] {
				levels[c]--
				cursor = (c + 1) % n
				moved = true
				break
			}
		}
		if !moved {
			// Everything is at the floor; the budget is simply
			// unattainable and the controller holds the lowest point.
			break
		}
	}
	return levels, nil
}
