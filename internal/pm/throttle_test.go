package pm

import "testing"

func TestThrottleGovernorValidation(t *testing.T) {
	if _, err := NewThrottleGovernor(80, 85); err == nil {
		t.Fatal("recover above trip accepted")
	}
	if _, err := NewThrottleGovernor(85, 85); err != nil {
		t.Fatalf("equal thresholds rejected: %v", err)
	}
}

func TestThrottleGovernorHysteresis(t *testing.T) {
	g, err := NewThrottleGovernor(85, 80)
	if err != nil {
		t.Fatal(err)
	}
	const maxDepth = 3

	// Cool chip: nothing happens.
	if d, trip := g.Observe(70, maxDepth); d != 0 || trip {
		t.Fatalf("cool observe: depth %d trip %v", d, trip)
	}
	// Over trip: deepen once per observation.
	if d, trip := g.Observe(90, maxDepth); d != 1 || !trip {
		t.Fatalf("first trip: depth %d trip %v", d, trip)
	}
	if d, trip := g.Observe(88, maxDepth); d != 2 || !trip {
		t.Fatalf("second trip: depth %d trip %v", d, trip)
	}
	// Inside the hysteresis band [80, 85]: hold, neither trip nor release.
	if d, trip := g.Observe(83, maxDepth); d != 2 || trip {
		t.Fatalf("band observe: depth %d trip %v", d, trip)
	}
	// Below recover: release one level per observation.
	if d, trip := g.Observe(78, maxDepth); d != 1 || trip {
		t.Fatalf("first release: depth %d trip %v", d, trip)
	}
	if d, _ := g.Observe(78, maxDepth); d != 0 {
		t.Fatalf("second release: depth %d", d)
	}
	// Fully released: further cool observations hold at zero.
	if d, _ := g.Observe(78, maxDepth); d != 0 {
		t.Fatal("depth went negative")
	}
	if g.Emergencies() != 2 {
		t.Fatalf("emergencies = %d, want 2", g.Emergencies())
	}
}

func TestThrottleGovernorDepthBound(t *testing.T) {
	g, err := NewThrottleGovernor(85, 80)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.Observe(120, 2)
	}
	if g.Depth() != 2 {
		t.Fatalf("depth %d exceeds bound 2", g.Depth())
	}
	// Saturated observations are not counted as fresh emergencies.
	if g.Emergencies() != 2 {
		t.Fatalf("emergencies = %d, want 2", g.Emergencies())
	}
}
