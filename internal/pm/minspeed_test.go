package pm

import (
	"context"
	"testing"

	"vasched/internal/stats"
)

func minSpeed(p Platform, levels []int) float64 {
	min := 0.0
	for c, l := range levels {
		v := minSpeedWeight(p, c) * p.IPC(c) * p.FreqAt(c, l) / 1e6
		if c == 0 || v < min {
			min = v
		}
	}
	return min
}

func TestMinSpeedObjectiveValue(t *testing.T) {
	p := newFake(3)
	lv := []int{0, 4, 8}
	v := objectiveValue(p, lv, ObjMinSpeed)
	if v != minSpeed(p, lv) {
		t.Fatalf("objectiveValue = %v, want %v", v, minSpeed(p, lv))
	}
}

func TestLinOptMinSpeedFeasibleAndBalanced(t *testing.T) {
	p := newFake(8)
	b := Budget{PTargetW: 26, PCoreMaxW: 6}
	m := LinOpt{FitPoints: 3, Objective: ObjMinSpeed}
	levels, err := m.Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, levels, "LinOpt-minspeed")

	// The max-min solution must not have a lower minimum speed than the
	// sum-MIPS solution under the same budget.
	sum, err := NewLinOpt().Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if minSpeed(p, levels) < minSpeed(p, sum)-1e-9 {
		t.Fatalf("max-min objective produced worse minimum: %v vs %v",
			minSpeed(p, levels), minSpeed(p, sum))
	}
}

func TestLinOptMinSpeedMatchesExhaustive(t *testing.T) {
	p := newFake(4)
	b := Budget{PTargetW: 13, PCoreMaxW: 5}
	lin, err := LinOpt{FitPoints: 3, Objective: ObjMinSpeed}.Decide(context.Background(), p, b, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive{Objective: ObjMinSpeed}.Decide(context.Background(), p, b, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := minSpeed(p, lin), minSpeed(p, ex); got < 0.93*want {
		t.Fatalf("LinOpt min-speed %v more than 7%% below exhaustive %v", got, want)
	}
}

func TestSAnnMinSpeed(t *testing.T) {
	p := newFake(6)
	b := Budget{PTargetW: 18, PCoreMaxW: 5}
	m := SAnn{MaxEvals: 20000, Objective: ObjMinSpeed}
	levels, err := m.Decide(context.Background(), p, b, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, levels, "SAnn-minspeed")
	sum, err := SAnn{MaxEvals: 20000}.Decide(context.Background(), p, b, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if minSpeed(p, levels) < minSpeed(p, sum)-1e-9 {
		t.Fatalf("SAnn max-min worse minimum than SAnn sum: %v vs %v",
			minSpeed(p, levels), minSpeed(p, sum))
	}
}

func TestLinOptMinSpeedInfeasibleBudget(t *testing.T) {
	p := newFake(3)
	b := Budget{PTargetW: 0.5, PCoreMaxW: 0.5}
	levels, err := LinOpt{FitPoints: 3, Objective: ObjMinSpeed}.Decide(context.Background(), p, b, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for c, l := range levels {
		if l != minLevel(p, c) {
			t.Fatalf("core %d at %d, want floor", c, l)
		}
	}
}

func TestBudgetSensitivity(t *testing.T) {
	p := newFake(8)
	tight := Budget{PTargetW: 20, PCoreMaxW: 6}
	loose := Budget{PTargetW: 500, PCoreMaxW: 100}
	sTight, err := BudgetSensitivity(p, tight, ObjMIPS)
	if err != nil {
		t.Fatal(err)
	}
	if sTight <= 0 {
		t.Fatalf("tight-budget sensitivity = %v, want positive", sTight)
	}
	sLoose, err := BudgetSensitivity(p, loose, ObjMIPS)
	if err != nil {
		t.Fatal(err)
	}
	if sLoose != 0 {
		t.Fatalf("loose-budget sensitivity = %v, want 0 (budget not binding)", sLoose)
	}
	if _, err := BudgetSensitivity(p, tight, ObjMinSpeed); err == nil {
		t.Fatal("min-speed sensitivity should be unsupported")
	}
}

func TestBudgetSensitivityMatchesPerturbation(t *testing.T) {
	// The shadow price should predict the modelled-throughput gain from a
	// small budget increase, up to ladder quantisation. Compare against
	// the continuous LP by using a generous step.
	p := newFake(10)
	b := Budget{PTargetW: 30, PCoreMaxW: 6}
	sens, err := BudgetSensitivity(p, b, ObjMIPS)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinOpt()
	base, err := lin.Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	more, err := lin.Decide(context.Background(), p, Budget{PTargetW: b.PTargetW + 2, PCoreMaxW: b.PCoreMaxW}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	gain := (throughput(p, more) - throughput(p, base)) / 2
	// Quantisation makes this coarse; require agreement within 2.5x.
	if sens > 0 && gain > 0 {
		ratio := gain / sens
		if ratio < 0.3 || ratio > 2.5 {
			t.Fatalf("sensitivity %v vs realised gain %v per watt", sens, gain)
		}
	}
}
