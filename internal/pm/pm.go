// Package pm implements the paper's power-management algorithms for the
// NUniFreq+DVFS configuration (Section 4.3): given a set of active cores
// with threads already placed by the scheduler, choose a per-core
// (voltage, frequency) operating point that maximises throughput subject
// to a chip-wide power budget (Ptarget) and a per-core cap (Pcoremax).
//
// Four algorithms are provided:
//
//   - Foxton*:    round-robin single-step (V,f) reduction until the budget
//     is met — a small extension of the Itanium II controller
//     (the paper's baseline).
//   - LinOpt:     the paper's contribution — linearise throughput and
//     power in voltage and solve with the Simplex method.
//   - SAnn:       simulated annealing over the exact (per-level) powers;
//     near-optimal but orders of magnitude slower.
//   - Exhaustive: full enumeration, feasible only for few threads; used to
//     validate SAnn as in the paper's Section 6.5.
//
// All algorithms see the platform only through the observables the paper's
// Table 3 grants them (manufacturer V/f tables, power sensors, IPC
// counters).
package pm

import (
	"context"
	"errors"
	"fmt"

	"vasched/internal/stats"
	"vasched/internal/trace"
)

// Platform exposes the Table 3 observables for the currently active cores.
// Core indices here are *active-core* indices (0..NumCores-1), not die
// positions; the runtime maintains the mapping.
type Platform interface {
	// NumCores returns the number of active cores (threads).
	NumCores() int
	// NumLevels returns the ladder size shared by all cores.
	NumLevels() int
	// VoltageAt returns the supply voltage of a ladder level.
	VoltageAt(level int) float64
	// FreqAt returns the rated frequency of the core at a ladder level,
	// or 0 if the core cannot operate there.
	FreqAt(core, level int) float64
	// PowerAt returns the measured total power (dynamic + static) of the
	// thread-core pair at a ladder level.
	PowerAt(core, level int) float64
	// IPC returns the thread's measured IPC on its core.
	IPC(core int) float64
	// UncorePowerW returns the power of the shared structures (L2) that
	// count against Ptarget but are not per-core scalable.
	UncorePowerW() float64
	// RefIPS returns the thread's reference instructions-per-second (its
	// IPS at reference conditions), the normalisation the weighted-
	// throughput objective divides by (paper Section 6.6 / Figure 13).
	RefIPS(core int) float64
}

// Objective selects what the optimising managers maximise: raw MIPS
// (Figure 11) or weighted throughput (Figure 13, where the paper re-runs
// the same experiments "with weighted throughput as the optimization
// goal").
type Objective int

// Supported objectives.
const (
	ObjMIPS Objective = iota
	ObjWeighted
	// ObjMinSpeed maximises the *slowest* thread's normalised speed — the
	// right goal for barrier-synchronised parallel applications, where
	// every section ends when the last thread arrives (the paper's third
	// future-work extension). LinOpt handles it with an epigraph variable
	// (maximize z subject to z <= a_i*v_i), which stays a pure LP.
	ObjMinSpeed
)

// weight returns the per-core objective weight: 1 for MIPS, 1/refIPS for
// weighted throughput (scaled by 1e9 to keep LP coefficients well
// conditioned).
func (o Objective) weight(p Platform, core int) float64 {
	if o == ObjWeighted {
		if ref := p.RefIPS(core); ref > 0 {
			return 1e9 / ref
		}
	}
	return 1
}

// TrueIPCPlatform optionally exposes frequency-dependent IPC. No paper
// algorithm uses it; the Oracle manager does, to quantify what LinOpt's
// frequency-independent-IPC approximation costs (DESIGN.md ablation 2).
type TrueIPCPlatform interface {
	Platform
	// TrueIPCAt returns the thread's actual IPC at the given level.
	TrueIPCAt(core, level int) float64
}

// Budget is the power envelope.
type Budget struct {
	// PTargetW is the chip-wide power target.
	PTargetW float64
	// PCoreMaxW is the per-core cap.
	PCoreMaxW float64
}

// Manager chooses per-core ladder levels.
type Manager interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Decide returns one ladder level per active core. The context is
	// used only for observability (tracing spans); decisions must not
	// depend on it.
	Decide(ctx context.Context, p Platform, b Budget, rng *stats.RNG) ([]int, error)
}

// startDecide opens the per-decision tracing span shared by every
// manager. The attributes (manager name, active-core count, plus
// whatever the caller appends before End) are deterministic functions of
// the workload, so trace trees golden-test cleanly.
func startDecide(ctx context.Context, name string, p Platform) (context.Context, *trace.ActiveSpan) {
	return trace.Start(ctx, "pm.decide",
		trace.String("manager", name), trace.Int("cores", p.NumCores()))
}

// SessionManager is implemented by managers that can carry mutable state
// (solver warm starts, caches) across the consecutive Decide calls of one
// simulation run. NewSession returns a fresh Manager holding that state,
// so a single configured manager value can be shared by concurrent runs
// (the die farm fans one Config out across workers) while each run's
// session stays single-threaded. Sessions must decide identically to the
// stateless manager.
type SessionManager interface {
	Manager
	// NewSession returns a Manager private to one run.
	NewSession() Manager
}

// Algorithm names used across the experiment harness.
const (
	NameFoxton     = "Foxton*"
	NameLinOpt     = "LinOpt"
	NameSAnn       = "SAnn"
	NameExhaustive = "Exhaustive"
	NameOracle     = "Oracle"
)

// minLevel returns the lowest feasible ladder level for the core.
func minLevel(p Platform, core int) int {
	for l := 0; l < p.NumLevels(); l++ {
		if p.FreqAt(core, l) > 0 {
			return l
		}
	}
	return p.NumLevels() - 1
}

// totalPower returns chip power for a level assignment.
func totalPower(p Platform, levels []int) float64 {
	sum := p.UncorePowerW()
	for c, l := range levels {
		sum += p.PowerAt(c, l)
	}
	return sum
}

// throughput returns the MIPS objective for a level assignment using the
// sensor IPCs (the frequency-independence approximation all the paper's
// managers share).
func throughput(p Platform, levels []int) float64 {
	return objectiveValue(p, levels, ObjMIPS)
}

// objectiveValue evaluates the chosen objective for a level assignment.
func objectiveValue(p Platform, levels []int, obj Objective) float64 {
	if obj == ObjMinSpeed {
		min := 0.0
		for c, l := range levels {
			v := minSpeedWeight(p, c) * p.IPC(c) * p.FreqAt(c, l) / 1e6
			if c == 0 || v < min {
				min = v
			}
		}
		return min
	}
	sum := 0.0
	for c, l := range levels {
		sum += obj.weight(p, c) * p.IPC(c) * p.FreqAt(c, l) / 1e6
	}
	return sum
}

// minSpeedWeight normalises per-thread speed by the thread's reference IPS
// so "slowest" compares progress, not raw instruction rate.
func minSpeedWeight(p Platform, core int) float64 {
	if ref := p.RefIPS(core); ref > 0 {
		return 1e9 / ref
	}
	return 1
}

// validatePlatform rejects degenerate platforms early with a clear error.
func validatePlatform(p Platform) error {
	if p.NumCores() <= 0 {
		return errors.New("pm: no active cores")
	}
	if p.NumLevels() <= 0 {
		return errors.New("pm: empty voltage ladder")
	}
	for c := 0; c < p.NumCores(); c++ {
		if p.FreqAt(c, p.NumLevels()-1) <= 0 {
			return fmt.Errorf("pm: active core %d infeasible even at the top level", c)
		}
	}
	return nil
}
