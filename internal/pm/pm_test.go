package pm

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"vasched/internal/stats"
)

// fakePlatform is a synthetic CMP for unit-testing the managers: core
// frequency is near-linear in voltage with per-core speed grades, power is
// quadratic-plus-exponential (so the LinOpt fit is genuinely an
// approximation), and IPC is per-core constant with an optional
// frequency-dependent droop for TrueIPCAt.
type fakePlatform struct {
	levels []float64
	speed  []float64 // per-core frequency grade (GHz per volt-ish)
	leak   []float64 // per-core static scale
	ipc    []float64
	uncore float64
	droop  []float64 // IPC loss per GHz for TrueIPCAt
	minLev []int     // per-core minimum feasible level (0 default)
}

func (f *fakePlatform) NumCores() int  { return len(f.speed) }
func (f *fakePlatform) NumLevels() int { return len(f.levels) }
func (f *fakePlatform) VoltageAt(l int) float64 {
	return f.levels[l]
}
func (f *fakePlatform) FreqAt(c, l int) float64 {
	if f.minLev != nil && l < f.minLev[c] {
		return 0
	}
	v := f.levels[l]
	return f.speed[c] * (v - 0.2) * 5e9
}
func (f *fakePlatform) PowerAt(c, l int) float64 {
	v := f.levels[l]
	dyn := 3.0 * v * v * (f.FreqAt(c, l) / 4e9)
	stat := f.leak[c] * math.Exp(2*(v-1))
	return dyn + stat
}
func (f *fakePlatform) IPC(c int) float64     { return f.ipc[c] }
func (f *fakePlatform) RefIPS(c int) float64  { return f.ipc[c] * 4e9 }
func (f *fakePlatform) UncorePowerW() float64 { return f.uncore }
func (f *fakePlatform) TrueIPCAt(c, l int) float64 {
	d := 0.0
	if f.droop != nil {
		d = f.droop[c] * f.FreqAt(c, l) / 1e9
	}
	ipc := f.ipc[c] - d
	if ipc < 0.05 {
		ipc = 0.05
	}
	return ipc
}

func ladder() []float64 {
	return []float64{0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0}
}

func newFake(n int) *fakePlatform {
	f := &fakePlatform{levels: ladder(), uncore: 2}
	for c := 0; c < n; c++ {
		f.speed = append(f.speed, 0.9+0.05*float64(c%5))
		f.leak = append(f.leak, 0.8+0.3*float64((c*7)%5))
		f.ipc = append(f.ipc, 0.3+0.25*float64(c%4))
	}
	return f
}

func assertFeasible(t *testing.T, p Platform, b Budget, levels []int, name string) {
	t.Helper()
	if got := totalPower(p, levels); got > b.PTargetW+1e-9 {
		t.Fatalf("%s: total power %.3f exceeds target %.3f (levels %v)", name, got, b.PTargetW, levels)
	}
	for c, l := range levels {
		if p.PowerAt(c, l) > b.PCoreMaxW+1e-9 {
			t.Fatalf("%s: core %d power %.3f exceeds cap %.3f", name, c, p.PowerAt(c, l), b.PCoreMaxW)
		}
		if l < 0 || l >= p.NumLevels() {
			t.Fatalf("%s: level %d out of range", name, l)
		}
	}
}

func TestFoxtonMeetsBudget(t *testing.T) {
	p := newFake(8)
	b := Budget{PTargetW: 25, PCoreMaxW: 6}
	levels, err := NewFoxton().Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, levels, "Foxton*")
}

func TestFoxtonGenerousBudgetKeepsTopLevels(t *testing.T) {
	p := newFake(4)
	b := Budget{PTargetW: 1000, PCoreMaxW: 100}
	levels, err := NewFoxton().Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for c, l := range levels {
		if l != p.NumLevels()-1 {
			t.Fatalf("core %d throttled to %d with unlimited budget", c, l)
		}
	}
}

func TestFoxtonImpossibleBudgetParksAtFloor(t *testing.T) {
	p := newFake(4)
	b := Budget{PTargetW: 0.1, PCoreMaxW: 0.1}
	levels, err := NewFoxton().Decide(context.Background(), p, b, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for c, l := range levels {
		if l != minLevel(p, c) {
			t.Fatalf("core %d at %d, want floor", c, l)
		}
	}
}

func TestLinOptMeetsBudgetAndBeatsFoxton(t *testing.T) {
	p := newFake(12)
	b := Budget{PTargetW: 35, PCoreMaxW: 6}
	rng := stats.NewRNG(2)
	fox, err := NewFoxton().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinOpt().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, lin, "LinOpt")
	tFox := throughput(p, fox)
	tLin := throughput(p, lin)
	if tLin < tFox {
		t.Fatalf("LinOpt throughput %.1f below Foxton* %.1f", tLin, tFox)
	}
}

func TestLinOptInfeasibleBudgetParksAtFloor(t *testing.T) {
	p := newFake(4)
	b := Budget{PTargetW: 0.5, PCoreMaxW: 0.5}
	levels, err := NewLinOpt().Decide(context.Background(), p, b, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for c, l := range levels {
		if l != minLevel(p, c) {
			t.Fatalf("core %d at %d, want floor", c, l)
		}
	}
}

func TestLinOptRespectsPerCoreCap(t *testing.T) {
	p := newFake(6)
	// Loose chip budget but a tight per-core cap: the cap must bind.
	b := Budget{PTargetW: 1000, PCoreMaxW: 3.5}
	levels, err := NewLinOpt().Decide(context.Background(), p, b, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, levels, "LinOpt")
}

func TestLinOptTwoPointFit(t *testing.T) {
	p := newFake(6)
	b := Budget{PTargetW: 22, PCoreMaxW: 6}
	m := LinOpt{FitPoints: 2}
	levels, err := m.Decide(context.Background(), p, b, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, levels, "LinOpt-2pt")
}

func TestSAnnMeetsBudgetAndIsCompetitive(t *testing.T) {
	p := newFake(8)
	b := Budget{PTargetW: 28, PCoreMaxW: 6}
	rng := stats.NewRNG(6)
	sann, err := NewSAnn().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, sann, "SAnn")
	lin, err := NewLinOpt().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	tSAnn := throughput(p, sann)
	tLin := throughput(p, lin)
	// The paper finds SAnn slightly ahead of LinOpt; at minimum it should
	// not be more than a few percent behind.
	if tSAnn < 0.95*tLin {
		t.Fatalf("SAnn throughput %.1f more than 5%% behind LinOpt %.1f", tSAnn, tLin)
	}
}

func TestSAnnWithinOnePercentOfExhaustive(t *testing.T) {
	// The paper's Section 6.5 validation, at <= 4 threads.
	p := newFake(4)
	b := Budget{PTargetW: 14, PCoreMaxW: 5}
	rng := stats.NewRNG(7)
	ex, err := NewExhaustive().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	sa := SAnn{MaxEvals: 30000}
	sann, err := sa.Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	tEx := throughput(p, ex)
	tSA := throughput(p, sann)
	if tSA < 0.99*tEx {
		t.Fatalf("SAnn %.2f more than 1%% below exhaustive %.2f", tSA, tEx)
	}
}

func TestLinOptCloseToExhaustive(t *testing.T) {
	p := newFake(4)
	b := Budget{PTargetW: 14, PCoreMaxW: 5}
	rng := stats.NewRNG(8)
	ex, err := NewExhaustive().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinOpt().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tl, te := throughput(p, lin), throughput(p, ex); tl < 0.9*te {
		t.Fatalf("LinOpt %.2f more than 10%% below exhaustive %.2f", tl, te)
	}
}

func TestExhaustiveOptimal(t *testing.T) {
	// On a 3-core instance, exhaustive must dominate every other manager.
	p := newFake(3)
	b := Budget{PTargetW: 11, PCoreMaxW: 5}
	rng := stats.NewRNG(9)
	ex, err := NewExhaustive().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, ex, "Exhaustive")
	tEx := throughput(p, ex)
	for _, m := range []Manager{NewFoxton(), NewLinOpt(), NewSAnn()} {
		levels, err := m.Decide(context.Background(), p, b, rng)
		if err != nil {
			t.Fatal(err)
		}
		if tv := throughput(p, levels); tv > tEx+1e-9 {
			t.Fatalf("%s throughput %.3f beats exhaustive %.3f", m.Name(), tv, tEx)
		}
	}
}

func TestExhaustiveRejectsHugeSpaces(t *testing.T) {
	p := newFake(20)
	b := Budget{PTargetW: 80, PCoreMaxW: 6}
	if _, err := NewExhaustive().Decide(context.Background(), p, b, stats.NewRNG(10)); err == nil {
		t.Fatal("20-core exhaustive search accepted")
	}
}

func TestOracleUsesTrueIPC(t *testing.T) {
	// One core with severe IPC droop, one without, and a budget for only
	// one fast core: the Oracle should throttle the drooping core harder
	// than the sensor-IPC exhaustive search would.
	p := newFake(2)
	p.ipc = []float64{1.0, 1.0}
	p.droop = []float64{0.2, 0.0}
	b := Budget{PTargetW: 9, PCoreMaxW: 6}
	rng := stats.NewRNG(11)
	oracle, err := NewOracle().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewExhaustive().Decide(context.Background(), p, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	trueTP := func(levels []int) float64 {
		sum := 0.0
		for c, l := range levels {
			sum += p.TrueIPCAt(c, l) * p.FreqAt(c, l) / 1e6
		}
		return sum
	}
	if trueTP(oracle) < trueTP(plain)-1e-9 {
		t.Fatalf("oracle true throughput %.1f below sensor-IPC search %.1f", trueTP(oracle), trueTP(plain))
	}
	if NewOracle().Name() != NameOracle || NewExhaustive().Name() != NameExhaustive {
		t.Fatal("names wrong")
	}
}

func TestManagersRejectDegeneratePlatforms(t *testing.T) {
	empty := &fakePlatform{levels: ladder()}
	for _, m := range []Manager{NewFoxton(), NewLinOpt(), NewSAnn(), NewExhaustive()} {
		if _, err := m.Decide(context.Background(), empty, Budget{PTargetW: 10, PCoreMaxW: 5}, stats.NewRNG(1)); err == nil {
			t.Fatalf("%s accepted a platform with no cores", m.Name())
		}
	}
}

func TestMinLevelRespected(t *testing.T) {
	// A core that cannot run below level 4 must never be set below it.
	p := newFake(4)
	p.minLev = []int{0, 4, 0, 2}
	b := Budget{PTargetW: 13, PCoreMaxW: 6}
	for _, m := range []Manager{NewFoxton(), NewLinOpt(), NewSAnn(), NewExhaustive()} {
		levels, err := m.Decide(context.Background(), p, b, stats.NewRNG(12))
		if err != nil {
			t.Fatal(err)
		}
		for c, l := range levels {
			if p.minLev[c] > 0 && l < p.minLev[c] {
				t.Fatalf("%s set core %d to level %d below floor %d", m.Name(), c, l, p.minLev[c])
			}
		}
	}
}

func TestFitLine(t *testing.T) {
	b, c, err := fitLine([]float64{1, 2, 3}, []float64{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2) > 1e-12 || math.Abs(c-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", b, c)
	}
	if _, _, err := fitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("degenerate abscissae accepted")
	}
	if _, _, err := fitLine(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	// Single point: flat line through it.
	b, c, err = fitLine([]float64{2}, []float64{5})
	if err != nil || b != 0 || c != 5 {
		t.Fatalf("single-point fit = %v, %v, %v", b, c, err)
	}
}

func BenchmarkLinOpt20Cores(b *testing.B) {
	p := newFake(20)
	budget := Budget{PTargetW: 60, PCoreMaxW: 6}
	m := NewLinOpt()
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide(context.Background(), p, budget, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSAnn20Cores(b *testing.B) {
	p := newFake(20)
	budget := Budget{PTargetW: 60, PCoreMaxW: 6}
	m := SAnn{MaxEvals: 20000}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide(context.Background(), p, budget, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoxton20Cores(b *testing.B) {
	p := newFake(20)
	budget := Budget{PTargetW: 60, PCoreMaxW: 6}
	m := NewFoxton()
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide(context.Background(), p, budget, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: on random platforms and budgets, Foxton* and LinOpt always
// return in-range levels, respect per-core minimums, and either satisfy
// the budget or sit at the floor.
func TestManagersFeasibleOrFloorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(12)
		p := newFake(n)
		for c := 0; c < n; c++ {
			p.leak[c] = 0.3 + rng.Float64()*2
			p.ipc[c] = 0.1 + rng.Float64()
		}
		b := Budget{
			PTargetW:  2 + rng.Float64()*60,
			PCoreMaxW: 1 + rng.Float64()*6,
		}
		for _, m := range []Manager{NewFoxton(), NewLinOpt()} {
			levels, err := m.Decide(context.Background(), p, b, rng)
			if err != nil {
				return false
			}
			atFloor := true
			for c, l := range levels {
				if l < minLevel(p, c) || l >= p.NumLevels() {
					return false
				}
				if l > minLevel(p, c) {
					atFloor = false
				}
			}
			if !atFloor && totalPower(p, levels) > b.PTargetW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
