package pm

import "fmt"

// ThrottleGovernor is the thermal-emergency DVFS state machine the dynamic
// scenario engine drives every tick: when the hottest block exceeds TripC
// the governor deepens the chip-wide clamp by one ladder level, and only
// once the die has cooled below RecoverC does it release levels again. The
// gap between the two thresholds is the hysteresis band that prevents the
// clamp from chattering around a single threshold — HotSpot-style thermal
// time constants are tens of milliseconds, so a trip/release pair per tick
// would throttle on noise, not on heat.
//
// The governor is chip-wide (every thread is clamped by the same depth),
// matching the hardware reality that thermal emergencies are handled by a
// global DVFS actuator, not per-core negotiation.
type ThrottleGovernor struct {
	// TripC deepens the clamp when MaxTemp exceeds it; RecoverC releases
	// one level when MaxTemp falls below it. TripC must be >= RecoverC.
	TripC    float64
	RecoverC float64

	depth       int
	emergencies int
}

// NewThrottleGovernor validates the thresholds.
func NewThrottleGovernor(tripC, recoverC float64) (*ThrottleGovernor, error) {
	if recoverC > tripC {
		return nil, fmt.Errorf("pm: throttle recover threshold %.1fC above trip %.1fC", recoverC, tripC)
	}
	return &ThrottleGovernor{TripC: tripC, RecoverC: recoverC}, nil
}

// Observe feeds one tick's maximum die temperature. maxDepth bounds the
// clamp (normally len(levels)-1). It returns the clamp depth to apply for
// the next tick and whether this observation deepened it (a counted,
// traceable emergency).
func (g *ThrottleGovernor) Observe(maxTempC float64, maxDepth int) (depth int, tripped bool) {
	switch {
	case maxTempC > g.TripC && g.depth < maxDepth:
		g.depth++
		g.emergencies++
		tripped = true
	case maxTempC < g.RecoverC && g.depth > 0:
		g.depth--
	}
	return g.depth, tripped
}

// Depth returns the current clamp depth in ladder levels.
func (g *ThrottleGovernor) Depth() int { return g.depth }

// Emergencies returns how many times the governor deepened the clamp.
func (g *ThrottleGovernor) Emergencies() int { return g.emergencies }
