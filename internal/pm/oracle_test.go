package pm

import (
	"errors"
	"fmt"

	"vasched/internal/anneal"
	"vasched/internal/lp"
	"vasched/internal/stats"
)

// This file preserves, verbatim, the interface-dispatching manager
// implementations that predate pm.Snapshot. They are the oracle for the
// property tests in snapshot_test.go: the dense snapshot kernels must
// return decision-identical levels on every platform (same floats, same
// RNG stream, same tie-breaks). Do not "improve" these copies — their
// whole value is that they stay frozen.

func legacySAnnDecide(m SAnn, p Platform, b Budget, rng *stats.RNG) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	n := p.NumCores()
	mins := make([]int, n)
	card := make([]int, n)
	for c := 0; c < n; c++ {
		mins[c] = minLevel(p, c)
		card[c] = p.NumLevels() - mins[c]
	}

	toLevels := func(x []int) []int {
		levels := make([]int, n)
		for c := range x {
			levels[c] = mins[c] + x[c]
		}
		return levels
	}
	feasible := func(x []int) bool {
		levels := toLevels(x)
		if totalPower(p, levels) > b.PTargetW {
			return false
		}
		for c, l := range levels {
			if p.PowerAt(c, l) > b.PCoreMaxW {
				return false
			}
		}
		return true
	}
	objective := func(x []int) float64 {
		return objectiveValue(p, toLevels(x), m.Objective)
	}

	init := legacyGreedyInit(p, b, mins, m.Objective)
	initX := make([]int, n)
	for c := range initX {
		initX[c] = init[c] - mins[c]
	}
	if !feasible(initX) {
		return toLevels(make([]int, n)), nil
	}

	cfg := anneal.DefaultConfig(n)
	cfg.InitialTemp = 1 + float64(n)/4
	if m.MaxEvals > 0 {
		cfg.MaxEvals = m.MaxEvals
	}
	res, err := anneal.Solve(&anneal.Problem{
		Card:      card,
		Objective: objective,
		Feasible:  feasible,
		Init:      initX,
	}, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("pm: SAnn: %w", err)
	}
	return toLevels(res.X), nil
}

// legacyGreedyInit keeps the historical dp<=0 quirk (a free upgrade's raw
// throughput compared against gain-per-watt ratios); on monotonic power
// curves it is decision-identical to the fixed greedyInit.
func legacyGreedyInit(p Platform, b Budget, mins []int, obj Objective) []int {
	n := p.NumCores()
	levels := append([]int(nil), mins...)
	top := p.NumLevels() - 1
	for {
		bestCore := -1
		bestRatio := 0.0
		curPower := totalPower(p, levels)
		for c := 0; c < n; c++ {
			if levels[c] >= top {
				continue
			}
			dp := p.PowerAt(c, levels[c]+1) - p.PowerAt(c, levels[c])
			if p.PowerAt(c, levels[c]+1) > b.PCoreMaxW {
				continue
			}
			if curPower+dp > b.PTargetW {
				continue
			}
			dtp := obj.weight(p, c) * p.IPC(c) * (p.FreqAt(c, levels[c]+1) - p.FreqAt(c, levels[c])) / 1e6
			ratio := dtp
			if dp > 0 {
				ratio = dtp / dp
			}
			if bestCore < 0 || ratio > bestRatio {
				bestCore, bestRatio = c, ratio
			}
		}
		if bestCore < 0 {
			return levels
		}
		levels[bestCore]++
	}
}

func legacyFoxtonDecide(p Platform, b Budget) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	n := p.NumCores()
	top := p.NumLevels() - 1
	levels := make([]int, n)
	mins := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = top
		mins[c] = minLevel(p, c)
	}

	satisfied := func() bool {
		if totalPower(p, levels) > b.PTargetW {
			return false
		}
		for c, l := range levels {
			if p.PowerAt(c, l) > b.PCoreMaxW {
				return false
			}
		}
		return true
	}

	cursor := 0
	for steps := 0; !satisfied(); steps++ {
		moved := false
		for probe := 0; probe < n; probe++ {
			c := (cursor + probe) % n
			if levels[c] > mins[c] {
				levels[c]--
				cursor = (c + 1) % n
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return levels, nil
}

func legacyLinOptDecide(m LinOpt, p Platform, b Budget, solver *lp.Solver) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	fitPoints := m.FitPoints
	if fitPoints < 2 {
		fitPoints = 3
	}
	n := p.NumCores()
	top := p.NumLevels() - 1
	vmax := p.VoltageAt(top)

	aCoef := make([]float64, n)
	bCoef := make([]float64, n)
	cCoef := make([]float64, n)
	vmin := make([]float64, n)
	minLev := make([]int, n)

	for c := 0; c < n; c++ {
		minLev[c] = minLevel(p, c)
		vmin[c] = p.VoltageAt(minLev[c])

		lo, hi := minLev[c], top
		span := hi - lo
		pts := fitPoints
		if span+1 < pts {
			pts = span + 1
		}
		vs := make([]float64, 0, pts)
		ps := make([]float64, 0, pts)
		fs := make([]float64, 0, pts)
		for k := 0; k < pts; k++ {
			l := lo
			if pts > 1 {
				l = lo + k*span/(pts-1)
			}
			vs = append(vs, p.VoltageAt(l))
			ps = append(ps, p.PowerAt(c, l))
			fs = append(fs, p.FreqAt(c, l))
		}
		bi, ci, err := fitLine(vs, ps)
		if err != nil {
			return nil, fmt.Errorf("pm: power fit for core %d: %w", c, err)
		}
		gi, _, err := fitLine(vs, fs)
		if err != nil {
			return nil, fmt.Errorf("pm: frequency fit for core %d: %w", c, err)
		}
		bCoef[c], cCoef[c] = bi, ci
		aCoef[c] = m.Objective.weight(p, c) * p.IPC(c) * gi / 1e6
		if aCoef[c] <= 0 {
			aCoef[c] = 1e-9
		}
	}

	prob := &lp.Problem{Objective: aCoef}
	rhs := b.PTargetW - p.UncorePowerW()
	for c := 0; c < n; c++ {
		rhs -= cCoef[c]
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{
		Coeffs: append([]float64(nil), bCoef...), Rel: lp.LE, RHS: rhs,
	})
	for c := 0; c < n; c++ {
		row := make([]float64, n)
		row[c] = bCoef[c]
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: row, Rel: lp.LE, RHS: b.PCoreMaxW - cCoef[c],
		})
		lowRow := make([]float64, n)
		lowRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: lowRow, Rel: lp.GE, RHS: vmin[c],
		})
		hiRow := make([]float64, n)
		hiRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: hiRow, Rel: lp.LE, RHS: vmax,
		})
	}

	if m.Objective == ObjMinSpeed {
		for c := 0; c < n; c++ {
			aCoef[c] *= minSpeedWeight(p, c)
		}
		return legacyDecideMinSpeed(m, p, b, aCoef, bCoef, cCoef, vmin, minLev, vmax, solver)
	}

	sol, err := solveWith(solver, prob)
	if errors.Is(err, lp.ErrInfeasible) {
		return append([]int(nil), minLev...), nil
	}
	if err != nil {
		return nil, fmt.Errorf("pm: LinOpt simplex: %w", err)
	}

	levels := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = legacyQuantizeDown(p, sol.X[c], minLev[c])
	}
	legacyTrim(p, b, levels, minLev, aCoef)
	legacyRefine(p, b, levels, minLev, m.Objective)
	return levels, nil
}

func legacyRefine(p Platform, b Budget, levels, minLev []int, obj Objective) {
	n := p.NumCores()
	top := p.NumLevels() - 1
	gain := func(c int) float64 {
		return obj.weight(p, c) * p.IPC(c) * (p.FreqAt(c, levels[c]+1) - p.FreqAt(c, levels[c])) / 1e6
	}
	loss := func(c int) float64 {
		return obj.weight(p, c) * p.IPC(c) * (p.FreqAt(c, levels[c]) - p.FreqAt(c, levels[c]-1)) / 1e6
	}
	for iter := 0; iter < 4*n*p.NumLevels(); iter++ {
		cur := totalPower(p, levels)
		bestUp, bestGain := -1, 0.0
		for c := 0; c < n; c++ {
			if levels[c] >= top {
				continue
			}
			dp := p.PowerAt(c, levels[c]+1) - p.PowerAt(c, levels[c])
			if cur+dp > b.PTargetW || p.PowerAt(c, levels[c]+1) > b.PCoreMaxW {
				continue
			}
			if g := gain(c); g > bestGain {
				bestUp, bestGain = c, g
			}
		}
		if bestUp >= 0 {
			levels[bestUp]++
			continue
		}
		type move struct {
			up, down int
			net      float64
		}
		best := move{up: -1}
		for up := 0; up < n; up++ {
			if levels[up] >= top {
				continue
			}
			dpUp := p.PowerAt(up, levels[up]+1) - p.PowerAt(up, levels[up])
			if p.PowerAt(up, levels[up]+1) > b.PCoreMaxW {
				continue
			}
			g := gain(up)
			for down := 0; down < n; down++ {
				if down == up || levels[down] <= minLev[down] {
					continue
				}
				dpDown := p.PowerAt(down, levels[down]) - p.PowerAt(down, levels[down]-1)
				if cur+dpUp-dpDown > b.PTargetW {
					continue
				}
				if net := g - loss(down); net > best.net+1e-9 {
					best = move{up: up, down: down, net: net}
				}
			}
		}
		if best.up < 0 {
			return
		}
		levels[best.up]++
		levels[best.down]--
	}
}

func legacyTrim(p Platform, b Budget, levels, minLev []int, aCoef []float64) {
	overCap := func() int {
		for c, l := range levels {
			if p.PowerAt(c, l) > b.PCoreMaxW && l > minLev[c] {
				return c
			}
		}
		return -1
	}
	for {
		if c := overCap(); c >= 0 {
			levels[c]--
			continue
		}
		if totalPower(p, levels) <= b.PTargetW {
			return
		}
		best, bestCost := -1, 0.0
		for c, l := range levels {
			if l <= minLev[c] {
				continue
			}
			dp := p.PowerAt(c, l) - p.PowerAt(c, l-1)
			dtp := aCoef[c] * (p.VoltageAt(l) - p.VoltageAt(l-1))
			cost := dtp
			if dp > 0 {
				cost = dtp / dp
			}
			if best < 0 || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		if best < 0 {
			return
		}
		levels[best]--
	}
}

func legacyDecideMinSpeed(m LinOpt, p Platform, b Budget, aCoef, bCoef, cCoef, vmin []float64, minLev []int, vmax float64, solver *lp.Solver) ([]int, error) {
	n := p.NumCores()
	nv := n + 1
	obj := make([]float64, nv)
	obj[n] = 1
	prob := &lp.Problem{Objective: obj}

	for c := 0; c < n; c++ {
		row := make([]float64, nv)
		row[c] = aCoef[c]
		row[n] = -1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: 0})
	}
	rhs := b.PTargetW - p.UncorePowerW()
	budgetRow := make([]float64, nv)
	for c := 0; c < n; c++ {
		budgetRow[c] = bCoef[c]
		rhs -= cCoef[c]
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: budgetRow, Rel: lp.LE, RHS: rhs})
	for c := 0; c < n; c++ {
		capRow := make([]float64, nv)
		capRow[c] = bCoef[c]
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: capRow, Rel: lp.LE, RHS: b.PCoreMaxW - cCoef[c]})
		loRow := make([]float64, nv)
		loRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: loRow, Rel: lp.GE, RHS: vmin[c]})
		hiRow := make([]float64, nv)
		hiRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: hiRow, Rel: lp.LE, RHS: vmax})
	}

	sol, err := solveWith(solver, prob)
	if errors.Is(err, lp.ErrInfeasible) {
		return append([]int(nil), minLev...), nil
	}
	if err != nil {
		return nil, fmt.Errorf("pm: LinOpt max-min simplex: %w", err)
	}
	levels := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = legacyQuantizeDown(p, sol.X[c], minLev[c])
	}
	legacyTrim(p, b, levels, minLev, aCoef)
	legacyRefineMinSpeed(p, b, levels, minLev)
	return levels, nil
}

func legacyRefineMinSpeed(p Platform, b Budget, levels, minLev []int) {
	speed := func(c int) float64 {
		return minSpeedWeight(p, c) * p.IPC(c) * p.FreqAt(c, levels[c]) / 1e6
	}
	top := p.NumLevels() - 1
	for iter := 0; iter < 4*p.NumCores()*p.NumLevels(); iter++ {
		slow, fast := 0, 0
		for c := 1; c < p.NumCores(); c++ {
			if speed(c) < speed(slow) {
				slow = c
			}
			if speed(c) > speed(fast) {
				fast = c
			}
		}
		if levels[slow] >= top {
			return
		}
		if p.PowerAt(slow, levels[slow]+1) > b.PCoreMaxW {
			return
		}
		cur := totalPower(p, levels)
		dp := p.PowerAt(slow, levels[slow]+1) - p.PowerAt(slow, levels[slow])
		if cur+dp <= b.PTargetW {
			levels[slow]++
			continue
		}
		if fast == slow || levels[fast] <= minLev[fast] {
			return
		}
		dpDown := p.PowerAt(fast, levels[fast]) - p.PowerAt(fast, levels[fast]-1)
		if cur+dp-dpDown > b.PTargetW {
			return
		}
		was := speed(slow)
		levels[slow]++
		levels[fast]--
		if speed(fast) < was {
			levels[slow]--
			levels[fast]++
			return
		}
	}
}

func legacyQuantizeDown(p Platform, v float64, min int) int {
	best := min
	for l := min; l < p.NumLevels(); l++ {
		if p.VoltageAt(l) <= v+1e-9 {
			best = l
		}
	}
	return best
}
