package pm

import (
	"context"
	"math"
	"testing"

	"vasched/internal/anneal"
	"vasched/internal/stats"
)

// randomFake builds a randomised platform: core count, per-core speed
// grade, leakage, IPC, uncore power, and a sprinkling of cores whose low
// ladder levels are infeasible. Power stays monotonic in level (physical
// curves), which is the regime where the greedyInit ordering fix is
// decision-neutral.
func randomFake(rng *stats.RNG) *fakePlatform {
	n := 1 + rng.Intn(14)
	f := &fakePlatform{levels: ladder(), uncore: 0.5 + 3*rng.Float64()}
	for c := 0; c < n; c++ {
		f.speed = append(f.speed, 0.7+0.6*rng.Float64())
		f.leak = append(f.leak, 0.4+1.2*rng.Float64())
		f.ipc = append(f.ipc, 0.2+1.1*rng.Float64())
	}
	if rng.Float64() < 0.3 {
		f.minLev = make([]int, n)
		for c := range f.minLev {
			if rng.Float64() < 0.4 {
				f.minLev[c] = rng.Intn(4)
			}
		}
	}
	return f
}

func eqLevels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotDecideMatchesInterfacePath is the byte-identity property
// test for the dense kernels: across 100 seeded random platforms, every
// manager's snapshot-based Decide must return exactly the levels the
// frozen pre-snapshot implementations (oracle_test.go) return — same
// floats, same RNG stream, same tie-breaks. Session managers are reused
// across all platforms to also cover scratch-reuse across changing
// shapes.
func TestSnapshotDecideMatchesInterfacePath(t *testing.T) {
	sannMgrs := map[Objective]*struct {
		m    SAnn
		sess Manager
	}{}
	linSess := map[Objective]Manager{}
	for _, obj := range []Objective{ObjMIPS, ObjWeighted, ObjMinSpeed} {
		m := SAnn{MaxEvals: 600, Objective: obj}
		sannMgrs[obj] = &struct {
			m    SAnn
			sess Manager
		}{m: m, sess: m.NewSession()}
		linSess[obj] = LinOpt{FitPoints: 3, Objective: obj}.NewSession()
	}
	foxSess := Foxton{}.NewSession()

	for seed := int64(1); seed <= 100; seed++ {
		rng := stats.NewRNG(seed * 977)
		p := randomFake(rng)
		n := p.NumCores()
		b := Budget{
			PTargetW:  p.uncore + float64(n)*(0.6+2.4*rng.Float64()),
			PCoreMaxW: 1 + 5*rng.Float64(),
		}

		// Foxton: stateless and session vs the legacy walk.
		want, err := legacyFoxtonDecide(p, b)
		if err != nil {
			t.Fatalf("seed %d: legacy Foxton: %v", seed, err)
		}
		for name, mgr := range map[string]Manager{"stateless": Foxton{}, "session": foxSess} {
			got, err := mgr.Decide(context.Background(), p, b, nil)
			if err != nil {
				t.Fatalf("seed %d: Foxton %s: %v", seed, name, err)
			}
			if !eqLevels(got, want) {
				t.Fatalf("seed %d: Foxton %s = %v, legacy %v", seed, name, got, want)
			}
		}

		for _, obj := range []Objective{ObjMIPS, ObjWeighted, ObjMinSpeed} {
			// LinOpt (cold path; warm-vs-cold identity is covered by
			// session_test.go).
			lin := LinOpt{FitPoints: 3, Objective: obj}
			want, err := legacyLinOptDecide(lin, p, b, nil)
			if err != nil {
				t.Fatalf("seed %d obj %d: legacy LinOpt: %v", seed, obj, err)
			}
			got, err := lin.Decide(context.Background(), p, b, nil)
			if err != nil {
				t.Fatalf("seed %d obj %d: LinOpt: %v", seed, obj, err)
			}
			if !eqLevels(got, want) {
				t.Fatalf("seed %d obj %d: LinOpt = %v, legacy %v", seed, obj, got, want)
			}
			got, err = linSess[obj].Decide(context.Background(), p, b, nil)
			if err != nil {
				t.Fatalf("seed %d obj %d: LinOpt session: %v", seed, obj, err)
			}
			if !eqLevels(got, want) {
				t.Fatalf("seed %d obj %d: LinOpt session = %v, legacy %v", seed, obj, got, want)
			}

			// SAnn: the annealing path must consume the RNG stream
			// identically, so equal seeds must give equal decisions.
			sm := sannMgrs[obj]
			want, err = legacySAnnDecide(sm.m, p, b, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d obj %d: legacy SAnn: %v", seed, obj, err)
			}
			got, err = sm.m.Decide(context.Background(), p, b, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d obj %d: SAnn: %v", seed, obj, err)
			}
			if !eqLevels(got, want) {
				t.Fatalf("seed %d obj %d: SAnn = %v, legacy %v", seed, obj, got, want)
			}
			got, err = sm.sess.Decide(context.Background(), p, b, stats.NewRNG(seed))
			if err != nil {
				t.Fatalf("seed %d obj %d: SAnn session: %v", seed, obj, err)
			}
			if !eqLevels(got, want) {
				t.Fatalf("seed %d obj %d: SAnn session = %v, legacy %v", seed, obj, got, want)
			}
		}
	}
}

// TestSnapshotMatchesPlatform spot-checks the captured tables against the
// interface observables.
func TestSnapshotMatchesPlatform(t *testing.T) {
	p := newFake(6)
	p.minLev = []int{0, 2, 0, 0, 1, 0}
	var s Snapshot
	s.Capture(p)
	if s.NumCores() != p.NumCores() || s.NumLevels() != p.NumLevels() {
		t.Fatalf("shape %dx%d, want %dx%d", s.NumCores(), s.NumLevels(), p.NumCores(), p.NumLevels())
	}
	if s.UncorePowerW() != p.UncorePowerW() {
		t.Fatalf("uncore %v != %v", s.UncorePowerW(), p.UncorePowerW())
	}
	for c := 0; c < p.NumCores(); c++ {
		if s.IPC(c) != p.IPC(c) || s.RefIPS(c) != p.RefIPS(c) {
			t.Fatalf("core %d ipc/ref mismatch", c)
		}
		if s.MinLev[c] != minLevel(p, c) {
			t.Fatalf("core %d MinLev = %d, want %d", c, s.MinLev[c], minLevel(p, c))
		}
		for l := 0; l < p.NumLevels(); l++ {
			if s.FreqAt(c, l) != p.FreqAt(c, l) || s.PowerAt(c, l) != p.PowerAt(c, l) {
				t.Fatalf("core %d level %d table mismatch", c, l)
			}
		}
	}
	levels := []int{8, 3, 5, 0, 2, 7}
	if got, want := s.TotalPower(levels), totalPower(p, levels); got != want {
		t.Fatalf("TotalPower = %v, want %v", got, want)
	}
	for _, obj := range []Objective{ObjMIPS, ObjWeighted, ObjMinSpeed} {
		coef := s.ObjCoef(obj, nil)
		if got, want := s.ObjectiveValue(levels, obj, coef), objectiveValue(p, levels, obj); got != want {
			t.Fatalf("obj %d: ObjectiveValue = %v, want %v", obj, got, want)
		}
	}
}

// TestGreedyInitPrefersFreeUpgrades pins the ordering fix: an upgrade
// with dp <= 0 must be taken before any paying upgrade, instead of
// entering the ratio contest as a raw throughput value. The platform is
// crafted so the two orderings commit the power headroom differently:
//
//   - core 0's upgrade is free (power drops 0.5 W) with a small gain;
//   - core 1's upgrade pays 0.6 W with the best gain-per-watt;
//   - core 2's upgrade pays 0.5 W with a gain-per-watt that beats core
//     0's *raw* gain.
//
// With 0.55 W of headroom, the legacy ordering picks core 2 (1.1 > 1.0),
// leaving too little room for core 1; free-first picks core 0, and the
// freed power then funds core 1, the strictly better trade.
func TestGreedyInitPrefersFreeUpgrades(t *testing.T) {
	s := &Snapshot{
		Cores:  3,
		Levels: 2,
		Volt:   []float64{0.8, 1.0, 0.8, 1.0, 0.8, 1.0},
		Freq: []float64{
			1e6, 2e6, // core 0: dtp 1
			1e6, 7e6, // core 1: dtp 6
			1e6, 1.55e6, // core 2: dtp 0.55
		},
		Power: []float64{
			1.0, 0.5, // core 0: dp -0.5 (free)
			1.0, 1.6, // core 1: dp 0.6, ratio 10
			1.0, 1.5, // core 2: dp 0.5, ratio 1.1
		},
		IPCs:   []float64{1, 1, 1},
		Refs:   []float64{0, 0, 0},
		MinLev: []int{0, 0, 0},
	}
	b := Budget{PTargetW: 3.55, PCoreMaxW: 10}
	coef := s.ObjCoef(ObjMIPS, nil)

	got := greedyInit(s, b, coef, make([]int, 3))
	if want := []int{1, 1, 0}; !eqLevels(got, want) {
		t.Fatalf("greedyInit = %v, want %v (free upgrade first)", got, want)
	}
	legacy := legacyGreedyInit(s, b, []int{0, 0, 0}, ObjMIPS)
	if want := []int{1, 0, 1}; !eqLevels(legacy, want) {
		t.Fatalf("legacy greedyInit = %v, want %v (documents the quirk being fixed)", legacy, want)
	}
}

// TestAnnealInnerLoopZeroAlloc asserts the tentpole's allocation claim:
// with a session-held scratch and the fused snapshot evaluator, a full
// annealing solve allocates nothing.
func TestAnnealInnerLoopZeroAlloc(t *testing.T) {
	p := newFake(12)
	var snap Snapshot
	snap.Capture(p)
	b := Budget{PTargetW: 40, PCoreMaxW: 6}
	coef := snap.ObjCoef(ObjMIPS, nil)
	mins := snap.MinLev
	card := make([]int, snap.Cores)
	for c := range card {
		card[c] = snap.Levels - mins[c]
	}
	prob := &anneal.Problem{
		Card: card,
		Eval: sannEval(&snap, b, mins, make([]int, snap.Cores), ObjMIPS, coef),
		Init: make([]int, snap.Cores),
	}
	cfg := anneal.DefaultConfig(snap.Cores)
	cfg.MaxEvals = 2000
	scr := &anneal.Scratch{}
	rng := stats.NewRNG(9)
	if _, err := anneal.SolveScratch(prob, cfg, rng, scr); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := anneal.SolveScratch(prob, cfg, rng, scr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("annealing solve allocates %v objects per run, want 0", allocs)
	}
}

// TestSAnnChainsDeterministicAcrossWorkers asserts the SolveParallel
// guarantee at the manager level: for a fixed chain count, the decision
// is identical at every Workers setting.
func TestSAnnChainsDeterministicAcrossWorkers(t *testing.T) {
	p := newFake(10)
	b := Budget{PTargetW: 30, PCoreMaxW: 6}
	var want []int
	for _, workers := range []int{1, 2, 8} {
		m := SAnn{MaxEvals: 1500, Chains: 4, Workers: workers}
		got, err := m.Decide(context.Background(), p, b, stats.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !eqLevels(got, want) {
			t.Fatalf("workers=%d: levels %v != workers=1 levels %v", workers, got, want)
		}
	}
	assertFeasible(t, p, b, want, "SAnn chains")
}

// TestSAnnChainsNeverWorse: the best-of reduction starts from the same
// greedy init in every chain, so more chains can only match or improve
// the modelled objective of chain 1's own result.
func TestSAnnChainsNeverWorse(t *testing.T) {
	p := newFake(10)
	b := Budget{PTargetW: 30, PCoreMaxW: 6}
	score := func(levels []int) float64 { return throughput(p, levels) }
	// Chains=2 includes chain 1's stream (Derive(1)) plus one more.
	m1 := SAnn{MaxEvals: 1500, Chains: 1}
	m4 := SAnn{MaxEvals: 1500, Chains: 4}
	l1, err := m1.Decide(context.Background(), p, b, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	l4, err := m4.Decide(context.Background(), p, b, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, p, b, l4, "SAnn chains=4")
	// Not a strict superset search (chain 1 uses a derived stream when
	// Chains > 1), so compare against the greedy floor instead: both
	// must at least match the greedy start they share.
	if s1, s4 := score(l1), score(l4); math.IsNaN(s1) || math.IsNaN(s4) {
		t.Fatalf("NaN throughput: %v %v", s1, s4)
	}
}

func BenchmarkSAnnSession20Cores(bench *testing.B) {
	p := newFake(20)
	b := Budget{PTargetW: 60, PCoreMaxW: 6}
	sess := SAnn{MaxEvals: 20000}.NewSession()
	rng := stats.NewRNG(1)
	bench.ReportAllocs()
	for i := 0; i < bench.N; i++ {
		if _, err := sess.Decide(context.Background(), p, b, rng); err != nil {
			bench.Fatal(err)
		}
	}
}

func BenchmarkSAnnChains4(bench *testing.B) {
	p := newFake(20)
	b := Budget{PTargetW: 60, PCoreMaxW: 6}
	m := SAnn{MaxEvals: 5000, Chains: 4}
	rng := stats.NewRNG(1)
	bench.ReportAllocs()
	for i := 0; i < bench.N; i++ {
		if _, err := m.Decide(context.Background(), p, b, rng); err != nil {
			bench.Fatal(err)
		}
	}
}

func BenchmarkSnapshotCapture20Cores(bench *testing.B) {
	p := newFake(20)
	var s Snapshot
	bench.ReportAllocs()
	for i := 0; i < bench.N; i++ {
		s.Capture(p)
	}
}
