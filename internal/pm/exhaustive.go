package pm

import (
	"context"
	"fmt"

	"vasched/internal/stats"
)

// maxExhaustiveStates bounds the enumeration; beyond this the search is
// rejected (the paper could only run it for up to 4 threads either).
const maxExhaustiveStates = 50_000_000

// Exhaustive enumerates every per-core level combination and returns the
// feasible one with the highest throughput. It exists to validate SAnn and
// LinOpt on small configurations (paper Section 6.5) and as the Oracle's
// search engine; it does not scale (M^N states).
type Exhaustive struct {
	// UseTrueIPC makes the search optimise the platform's
	// frequency-dependent IPC if available, turning the manager into the
	// Oracle of DESIGN.md ablation 2.
	UseTrueIPC bool
	// Objective selects raw-MIPS or weighted-throughput maximisation.
	Objective Objective
}

// NewExhaustive returns the enumerator.
func NewExhaustive() Exhaustive { return Exhaustive{} }

// NewOracle returns an exhaustive search over true (frequency-dependent)
// IPC. Decide falls back to sensor IPC if the platform cannot supply it.
func NewOracle() Exhaustive { return Exhaustive{UseTrueIPC: true} }

// Name implements Manager.
func (m Exhaustive) Name() string {
	if m.UseTrueIPC {
		return NameOracle
	}
	return NameExhaustive
}

// Decide implements Manager.
func (m Exhaustive) Decide(ctx context.Context, p Platform, b Budget, _ *stats.RNG) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	_, sp := startDecide(ctx, m.Name(), p)
	defer sp.End()
	n := p.NumCores()
	mins := make([]int, n)
	total := 1
	for c := 0; c < n; c++ {
		mins[c] = minLevel(p, c)
		span := p.NumLevels() - mins[c]
		if total > maxExhaustiveStates/span {
			return nil, fmt.Errorf("pm: exhaustive search space exceeds %d states", maxExhaustiveStates)
		}
		total *= span
	}

	tip, hasTrue := p.(TrueIPCPlatform)
	objective := func(levels []int) float64 {
		if m.UseTrueIPC && hasTrue {
			sum := 0.0
			for c, l := range levels {
				sum += m.Objective.weight(p, c) * tip.TrueIPCAt(c, l) * p.FreqAt(c, l) / 1e6
			}
			return sum
		}
		return objectiveValue(p, levels, m.Objective)
	}

	levels := append([]int(nil), mins...)
	best := append([]int(nil), mins...)
	bestVal := -1.0
	for {
		if totalPower(p, levels) <= b.PTargetW {
			ok := true
			for c, l := range levels {
				if p.PowerAt(c, l) > b.PCoreMaxW {
					ok = false
					break
				}
			}
			if ok {
				if v := objective(levels); v > bestVal {
					bestVal = v
					copy(best, levels)
				}
			}
		}
		// Odometer increment.
		c := 0
		for ; c < n; c++ {
			levels[c]++
			if levels[c] < p.NumLevels() {
				break
			}
			levels[c] = mins[c]
		}
		if c == n {
			break
		}
	}
	return best, nil
}
