package pm

import (
	"errors"
	"fmt"

	"vasched/internal/lp"
)

// BudgetSensitivity reports the shadow price of the chip power budget at
// the LinOpt optimum: the marginal objective gain (MIPS for ObjMIPS) per
// additional watt of Ptarget. Operators use it to answer "what would one
// more watt of cooling buy?" — zero means the budget is not the binding
// constraint (the chip already runs flat out).
func BudgetSensitivity(p Platform, b Budget, obj Objective) (float64, error) {
	if err := validatePlatform(p); err != nil {
		return 0, err
	}
	if obj == ObjMinSpeed {
		return 0, errors.New("pm: sensitivity for the max-min objective is not supported")
	}
	n := p.NumCores()
	top := p.NumLevels() - 1
	vmax := p.VoltageAt(top)

	// Same fits LinOpt uses (3 points across each core's feasible range).
	aCoef := make([]float64, n)
	bCoef := make([]float64, n)
	cCoef := make([]float64, n)
	vmin := make([]float64, n)
	for c := 0; c < n; c++ {
		lo := minLevel(p, c)
		vmin[c] = p.VoltageAt(lo)
		span := top - lo
		pts := 3
		if span+1 < pts {
			pts = span + 1
		}
		vs := make([]float64, 0, pts)
		ps := make([]float64, 0, pts)
		fs := make([]float64, 0, pts)
		for k := 0; k < pts; k++ {
			l := lo
			if pts > 1 {
				l = lo + k*span/(pts-1)
			}
			vs = append(vs, p.VoltageAt(l))
			ps = append(ps, p.PowerAt(c, l))
			fs = append(fs, p.FreqAt(c, l))
		}
		bi, ci, err := fitLine(vs, ps)
		if err != nil {
			return 0, fmt.Errorf("pm: sensitivity power fit for core %d: %w", c, err)
		}
		gi, _, err := fitLine(vs, fs)
		if err != nil {
			return 0, fmt.Errorf("pm: sensitivity frequency fit for core %d: %w", c, err)
		}
		bCoef[c], cCoef[c] = bi, ci
		aCoef[c] = obj.weight(p, c) * p.IPC(c) * gi / 1e6
	}

	prob := &lp.Problem{Objective: aCoef}
	rhs := b.PTargetW - p.UncorePowerW()
	for c := 0; c < n; c++ {
		rhs -= cCoef[c]
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{
		Coeffs: append([]float64(nil), bCoef...), Rel: lp.LE, RHS: rhs,
	})
	for c := 0; c < n; c++ {
		capRow := make([]float64, n)
		capRow[c] = bCoef[c]
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: capRow, Rel: lp.LE, RHS: b.PCoreMaxW - cCoef[c]})
		loRow := make([]float64, n)
		loRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: loRow, Rel: lp.GE, RHS: vmin[c]})
		hiRow := make([]float64, n)
		hiRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: hiRow, Rel: lp.LE, RHS: vmax})
	}
	sol, err := lp.Solve(prob)
	if errors.Is(err, lp.ErrInfeasible) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	// The budget constraint is row 0.
	return sol.Duals[0], nil
}
