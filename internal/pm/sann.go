package pm

import (
	"fmt"

	"vasched/internal/anneal"
	"vasched/internal/stats"
)

// SAnn is the paper's simulated-annealing power manager (Section 4.3.2).
// Unlike LinOpt it evaluates power exactly at each candidate level (no
// linear approximation), so it can find slightly better points — at a
// computation cost orders of magnitude higher. The paper ran it with 1e6
// objective evaluations; the default budget here is smaller because the
// sweeps invoke it thousands of times (EXPERIMENTS.md documents the
// scaling).
type SAnn struct {
	// MaxEvals overrides the annealing budget; 0 uses the default.
	MaxEvals int
	// Objective selects raw-MIPS or weighted-throughput maximisation.
	Objective Objective
}

// NewSAnn returns the manager with the default evaluation budget.
func NewSAnn() SAnn { return SAnn{} }

// Name implements Manager.
func (SAnn) Name() string { return NameSAnn }

// Decide implements Manager.
func (m SAnn) Decide(p Platform, b Budget, rng *stats.RNG) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	n := p.NumCores()
	mins := make([]int, n)
	card := make([]int, n)
	for c := 0; c < n; c++ {
		mins[c] = minLevel(p, c)
		card[c] = p.NumLevels() - mins[c]
	}

	toLevels := func(x []int) []int {
		levels := make([]int, n)
		for c := range x {
			levels[c] = mins[c] + x[c]
		}
		return levels
	}
	feasible := func(x []int) bool {
		levels := toLevels(x)
		if totalPower(p, levels) > b.PTargetW {
			return false
		}
		for c, l := range levels {
			if p.PowerAt(c, l) > b.PCoreMaxW {
				return false
			}
		}
		return true
	}
	objective := func(x []int) float64 {
		return objectiveValue(p, toLevels(x), m.Objective)
	}

	init := greedyInit(p, b, mins, m.Objective)
	initX := make([]int, n)
	for c := range initX {
		initX[c] = init[c] - mins[c]
	}
	if !feasible(initX) {
		// Budget below the floor: hold the minimum point, like the other
		// managers.
		return toLevels(make([]int, n)), nil
	}

	cfg := anneal.DefaultConfig(n)
	// The paper scales the initial annealing temperature with problem
	// size: "for a large number of threads, more randomness is needed".
	cfg.InitialTemp = 1 + float64(n)/4
	if m.MaxEvals > 0 {
		cfg.MaxEvals = m.MaxEvals
	}
	res, err := anneal.Solve(&anneal.Problem{
		Card:      card,
		Objective: objective,
		Feasible:  feasible,
		Init:      initX,
	}, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("pm: SAnn: %w", err)
	}
	return toLevels(res.X), nil
}

// greedyInit builds SAnn's starting point: from the all-minimum
// assignment, repeatedly raise by one level the core with the best
// throughput-gain-per-watt, while the budget holds.
func greedyInit(p Platform, b Budget, mins []int, obj Objective) []int {
	n := p.NumCores()
	levels := append([]int(nil), mins...)
	top := p.NumLevels() - 1
	for {
		bestCore := -1
		bestRatio := 0.0
		curPower := totalPower(p, levels)
		for c := 0; c < n; c++ {
			if levels[c] >= top {
				continue
			}
			dp := p.PowerAt(c, levels[c]+1) - p.PowerAt(c, levels[c])
			if p.PowerAt(c, levels[c]+1) > b.PCoreMaxW {
				continue
			}
			if curPower+dp > b.PTargetW {
				continue
			}
			dtp := obj.weight(p, c) * p.IPC(c) * (p.FreqAt(c, levels[c]+1) - p.FreqAt(c, levels[c])) / 1e6
			ratio := dtp
			if dp > 0 {
				ratio = dtp / dp
			}
			if bestCore < 0 || ratio > bestRatio {
				bestCore, bestRatio = c, ratio
			}
		}
		if bestCore < 0 {
			return levels
		}
		levels[bestCore]++
	}
}
