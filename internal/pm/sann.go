package pm

import (
	"context"
	"fmt"

	"vasched/internal/anneal"
	"vasched/internal/stats"
	"vasched/internal/trace"
)

// SAnn is the paper's simulated-annealing power manager (Section 4.3.2).
// Unlike LinOpt it evaluates power exactly at each candidate level (no
// linear approximation), so it can find slightly better points — at a
// computation cost orders of magnitude higher. The paper ran it with 1e6
// objective evaluations; the default budget here is smaller because the
// sweeps invoke it thousands of times (EXPERIMENTS.md documents the
// scaling).
//
// Candidate evaluation runs on a pm.Snapshot: the platform observables
// are captured into flat arrays once per Decide and every annealing
// candidate is scored from those arrays with zero allocation, in the same
// index order as the original interface-based closures, so decisions are
// byte-identical to the pre-snapshot path.
type SAnn struct {
	// MaxEvals overrides the annealing budget; 0 uses the default.
	MaxEvals int
	// Objective selects raw-MIPS or weighted-throughput maximisation.
	Objective Objective
	// Chains selects parallel multi-chain annealing: when > 1, Decide
	// runs that many independent chains with deterministically derived
	// RNG streams (anneal.SolveParallel) and keeps the best result. The
	// default (0 or 1) is the single-chain path, which consumes the
	// caller's RNG stream directly and reproduces the historical
	// decisions exactly.
	Chains int
	// Workers bounds the chain fan-out (<= 0 means GOMAXPROCS). The
	// decision is identical for every Workers value.
	Workers int
}

// NewSAnn returns the manager with the default evaluation budget.
func NewSAnn() SAnn { return SAnn{} }

// Name implements Manager.
func (SAnn) Name() string { return NameSAnn }

// Decide implements Manager.
func (m SAnn) Decide(ctx context.Context, p Platform, b Budget, rng *stats.RNG) ([]int, error) {
	var k sannKernel
	return m.decide(ctx, p, b, rng, &k)
}

// NewSession implements SessionManager: the returned manager decides
// identically but reuses the snapshot tables and annealing scratch across
// the consecutive intervals of one run, so steady-state Decide calls do
// not allocate in the annealing loop.
func (m SAnn) NewSession() Manager { return &sannSession{m: m} }

type sannSession struct {
	m SAnn
	k sannKernel
}

func (s *sannSession) Name() string { return s.m.Name() }

func (s *sannSession) Decide(ctx context.Context, p Platform, b Budget, rng *stats.RNG) ([]int, error) {
	return s.m.decide(ctx, p, b, rng, &s.k)
}

// sannKernel is the reusable per-session state: the dense platform
// snapshot, the objective coefficients, the x<->level translation
// buffers, and the annealer's scratch vectors.
type sannKernel struct {
	snap     Snapshot
	coef     []float64
	initCoef []float64
	card     []int
	mins     []int
	initX    []int
	levels   []int
	scr      anneal.Scratch
}

func (m SAnn) decide(ctx context.Context, p Platform, b Budget, rng *stats.RNG, k *sannKernel) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	_, sp := startDecide(ctx, NameSAnn, p)
	defer sp.End()
	k.snap.Capture(p)
	snap := &k.snap
	n := snap.Cores
	k.coef = snap.ObjCoef(m.Objective, k.coef)
	k.card = growInts(k.card, n)
	k.mins = growInts(k.mins, n)
	k.initX = growInts(k.initX, n)
	k.levels = growInts(k.levels, n)
	mins := k.mins
	copy(mins, snap.MinLev)
	for c := 0; c < n; c++ {
		k.card[c] = snap.Levels - mins[c]
	}

	// One combined evaluation per candidate: decode x into ladder levels
	// once (the historical closures decoded twice, once in feasible and
	// again in objective), then check the budget and score from the
	// snapshot tables.
	eval := sannEval(snap, b, mins, k.levels, m.Objective, k.coef)

	// The greedy start ranks upgrades with Objective.weight semantics
	// (min-speed keeps weight 1 there), while the evaluator's ObjCoef
	// applies the min-speed normalisation — matching the historical
	// closures exactly.
	initCoef := k.coef
	if m.Objective == ObjMinSpeed {
		k.initCoef = growFloats(k.initCoef, n)
		for c := range k.initCoef {
			k.initCoef[c] = snap.objWeight(m.Objective, c) * snap.IPCs[c]
		}
		initCoef = k.initCoef
	}
	init := greedyInit(snap, b, initCoef, k.levels)
	initX := k.initX
	for c := range initX {
		initX[c] = init[c] - mins[c]
	}
	if _, ok := eval(initX); !ok {
		// Budget below the floor: hold the minimum point, like the other
		// managers.
		out := make([]int, n)
		copy(out, mins)
		return out, nil
	}

	cfg := anneal.DefaultConfig(n)
	// The paper scales the initial annealing temperature with problem
	// size: "for a large number of threads, more randomness is needed".
	cfg.InitialTemp = 1 + float64(n)/4
	if m.MaxEvals > 0 {
		cfg.MaxEvals = m.MaxEvals
	}

	var (
		res anneal.Result
		err error
	)
	if m.Chains > 1 {
		res, err = anneal.SolveParallel(func(int) *anneal.Problem {
			// Each chain owns a private decode buffer; the snapshot,
			// coefficients, bounds, and init are shared read-only.
			return &anneal.Problem{
				Card: k.card,
				Eval: sannEval(snap, b, mins, make([]int, n), m.Objective, k.coef),
				Init: initX,
			}
		}, cfg, rng, m.Chains, m.Workers)
	} else {
		res, err = anneal.SolveScratch(&anneal.Problem{
			Card: k.card,
			Eval: eval,
			Init: initX,
		}, cfg, rng, &k.scr)
	}
	if err != nil {
		return nil, fmt.Errorf("pm: SAnn: %w", err)
	}
	sp.AddAttr(trace.Int("evals", res.Evals))
	if m.Chains > 1 {
		sp.AddAttr(trace.Int("chains", m.Chains), trace.Int("chain", res.Chain))
	}
	out := make([]int, n)
	for c, x := range res.X {
		out[c] = mins[c] + x
	}
	return out, nil
}

// sannEval returns the fused candidate evaluator: decode x into levels,
// accumulate chip power with inline per-core cap checks, then score. The
// power sum runs uncore-first over ascending cores and the objective sum
// over ascending cores, exactly like the separate totalPower and
// objectiveValue loops, so values are bit-identical; the cap check moving
// before the budget comparison only changes which constraint reports an
// infeasibility that would have been reported either way.
func sannEval(snap *Snapshot, b Budget, mins, levels []int, obj Objective, coef []float64) func(x []int) (float64, bool) {
	nl := snap.Levels
	minSpeed := obj == ObjMinSpeed
	return func(x []int) (float64, bool) {
		sum := snap.Uncore
		for c, xc := range x {
			l := mins[c] + xc
			levels[c] = l
			pw := snap.Power[c*nl+l]
			if pw > b.PCoreMaxW {
				return 0, false
			}
			sum += pw
		}
		if sum > b.PTargetW {
			return 0, false
		}
		if minSpeed {
			min := 0.0
			for c, l := range levels {
				v := coef[c] * snap.Freq[c*nl+l] / 1e6
				if c == 0 || v < min {
					min = v
				}
			}
			return min, true
		}
		val := 0.0
		for c, l := range levels {
			val += coef[c] * snap.Freq[c*nl+l] / 1e6
		}
		return val, true
	}
}

// greedyInit builds SAnn's starting point: from the all-minimum
// assignment, repeatedly raise by one level the core with the best
// throughput-gain-per-watt, while the budget holds. Upgrades that cost no
// power (dp <= 0, possible on non-monotonic synthetic power curves) rank
// above every paying upgrade — free throughput beats any finite
// gain-per-watt ratio — and compete among themselves on raw throughput
// gain. On monotonic power curves (all real platforms) no free upgrade
// exists and the selection reduces to the pure ratio comparison.
//
// coef carries the per-core objective weights from Snapshot.ObjCoef; the
// result is written into out (len >= cores), which is also returned.
func greedyInit(s *Snapshot, b Budget, coef []float64, out []int) []int {
	n, nl := s.Cores, s.Levels
	levels := out[:n]
	copy(levels, s.MinLev)
	top := nl - 1
	for {
		bestCore := -1
		bestRatio := 0.0
		bestFree := false
		curPower := s.TotalPower(levels)
		for c := 0; c < n; c++ {
			if levels[c] >= top {
				continue
			}
			row := s.Power[c*nl:]
			dp := row[levels[c]+1] - row[levels[c]]
			if row[levels[c]+1] > b.PCoreMaxW {
				continue
			}
			if curPower+dp > b.PTargetW {
				continue
			}
			dtp := coef[c] * (s.Freq[c*nl+levels[c]+1] - s.Freq[c*nl+levels[c]]) / 1e6
			free := dp <= 0
			ratio := dtp
			if !free {
				ratio = dtp / dp
			}
			better := false
			switch {
			case bestCore < 0:
				better = true
			case free != bestFree:
				better = free
			default:
				better = ratio > bestRatio
			}
			if better {
				bestCore, bestRatio, bestFree = c, ratio, free
			}
		}
		if bestCore < 0 {
			return levels
		}
		levels[bestCore]++
	}
}
