package pm

import (
	"context"
	"testing"

	"vasched/internal/stats"
)

// TestLinOptSessionMatchesCold locks the warm-started session to the
// stateless manager: across 100 random intervals (drifting IPC and
// budget — the inputs that move between DVFS re-solves), the session must
// return bit-for-bit the same ladder levels as a cold Decide. The simplex
// may take a different pivot path when warm, but it lands on the same
// vertex, so quantisation, trim, and refine see identical inputs.
//
// The platform draws distinct per-core parameters: cores with *exactly*
// equal LP columns (possible on the coarse newFake grades, never on a
// variation-affected chip) make the optimum a symmetric pair of vertices,
// and warm and cold pivots may legitimately pick different members of the
// tie with identical objective value.
func TestLinOptSessionMatchesCold(t *testing.T) {
	for _, obj := range []Objective{ObjMIPS, ObjWeighted, ObjMinSpeed} {
		m := LinOpt{FitPoints: 3, Objective: obj}
		sess := m.NewSession()
		rng := stats.NewRNG(42)
		f := &fakePlatform{levels: ladder(), uncore: 2}
		for c := 0; c < 12; c++ {
			f.speed = append(f.speed, 0.85+0.25*rng.Float64())
			f.leak = append(f.leak, 0.7+0.8*rng.Float64())
			f.ipc = append(f.ipc, 0.3+0.8*rng.Float64())
		}
		baseIPC := append([]float64(nil), f.ipc...)
		for interval := 0; interval < 100; interval++ {
			for c := range f.ipc {
				f.ipc[c] = baseIPC[c] * (0.8 + 0.4*rng.Float64())
			}
			b := Budget{
				PTargetW:  35 + 30*rng.Float64(),
				PCoreMaxW: 4 + 3*rng.Float64(),
			}
			want, err := m.Decide(context.Background(), f, b, nil)
			if err != nil {
				t.Fatalf("%v interval %d: cold: %v", obj, interval, err)
			}
			got, err := sess.Decide(context.Background(), f, b, nil)
			if err != nil {
				t.Fatalf("%v interval %d: warm: %v", obj, interval, err)
			}
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("%v interval %d core %d: warm level %d != cold level %d\nwarm %v\ncold %v",
						obj, interval, c, got[c], want[c], got, want)
				}
			}
		}
	}
}

// TestLinOptSessionInfeasibleRecovers checks the session survives an
// infeasible interval (budget below the floor) and keeps matching cold
// decisions afterwards.
func TestLinOptSessionInfeasibleRecovers(t *testing.T) {
	m := NewLinOpt()
	sess := m.NewSession()
	f := newFake(8)
	budgets := []Budget{
		{PTargetW: 50, PCoreMaxW: 6},
		{PTargetW: 0.1, PCoreMaxW: 6}, // below the floor: parks at minimum
		{PTargetW: 45, PCoreMaxW: 5},
		{PTargetW: 60, PCoreMaxW: 7},
	}
	for i, b := range budgets {
		want, err := m.Decide(context.Background(), f, b, nil)
		if err != nil {
			t.Fatalf("interval %d: cold: %v", i, err)
		}
		got, err := sess.Decide(context.Background(), f, b, nil)
		if err != nil {
			t.Fatalf("interval %d: warm: %v", i, err)
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("interval %d core %d: warm %v != cold %v", i, c, got, want)
			}
		}
	}
}
