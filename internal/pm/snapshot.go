package pm

// Snapshot is a dense, interface-free capture of a Platform: flat
// cores×levels tables of frequency and power plus the per-core IPC and
// reference-IPS observables, read once per Decide call. The managers'
// inner loops (annealing candidate evaluation, LinOpt's trim/refine
// feedback, Foxton's budget walk) evaluate millions of candidate level
// assignments per experiment; reading arrays instead of making dynamic
// Platform calls removes the interface dispatch — and, for simulated
// platforms whose PowerAt recomputes a model, the recomputation — from
// every one of those evaluations.
//
// Capture visits levels in ascending order within each core and cores in
// ascending order, and every helper below consumes the tables in exactly
// the same index order as the interface-based code it replaced, so all
// accept/reject decisions and float accumulations are byte-identical to
// the pre-snapshot path.
//
// A Snapshot also implements Platform itself (over the captured values),
// so code that still wants the interface view — validation, tests, the
// Exhaustive enumerator — can use one without re-dispatching to the
// underlying platform.
type Snapshot struct {
	Cores  int
	Levels int
	// Volt[l] is the ladder voltage, shared by all cores.
	Volt []float64
	// Freq and Power are row-major cores×levels: entry [c*Levels+l].
	Freq  []float64
	Power []float64
	// IPCs[c] and Refs[c] are the per-core sensor IPC and reference IPS.
	IPCs []float64
	Refs []float64
	// Uncore is the shared-structure power counted against Ptarget.
	Uncore float64
	// MinLev[c] is the lowest feasible ladder level for core c (first
	// level with non-zero frequency), precomputed during capture.
	MinLev []int
}

// Capture fills the snapshot from p, reusing previously allocated tables
// when the shape still fits, so a session-held Snapshot allocates only on
// the first interval (or when the active-core count grows).
func (s *Snapshot) Capture(p Platform) {
	nc, nl := p.NumCores(), p.NumLevels()
	s.Cores, s.Levels = nc, nl
	s.Volt = growFloats(s.Volt, nl)
	s.Freq = growFloats(s.Freq, nc*nl)
	s.Power = growFloats(s.Power, nc*nl)
	s.IPCs = growFloats(s.IPCs, nc)
	s.Refs = growFloats(s.Refs, nc)
	s.MinLev = growInts(s.MinLev, nc)
	for l := 0; l < nl; l++ {
		s.Volt[l] = p.VoltageAt(l)
	}
	for c := 0; c < nc; c++ {
		s.IPCs[c] = p.IPC(c)
		s.Refs[c] = p.RefIPS(c)
		row := s.Freq[c*nl : (c+1)*nl]
		prow := s.Power[c*nl : (c+1)*nl]
		min, found := nl-1, false
		for l := 0; l < nl; l++ {
			f := p.FreqAt(c, l)
			row[l] = f
			prow[l] = p.PowerAt(c, l)
			if !found && f > 0 {
				min, found = l, true
			}
		}
		s.MinLev[c] = min
	}
	s.Uncore = p.UncorePowerW()
}

// NumCores implements Platform.
func (s *Snapshot) NumCores() int { return s.Cores }

// NumLevels implements Platform.
func (s *Snapshot) NumLevels() int { return s.Levels }

// VoltageAt implements Platform.
func (s *Snapshot) VoltageAt(level int) float64 { return s.Volt[level] }

// FreqAt implements Platform.
func (s *Snapshot) FreqAt(core, level int) float64 { return s.Freq[core*s.Levels+level] }

// PowerAt implements Platform.
func (s *Snapshot) PowerAt(core, level int) float64 { return s.Power[core*s.Levels+level] }

// IPC implements Platform.
func (s *Snapshot) IPC(core int) float64 { return s.IPCs[core] }

// UncorePowerW implements Platform.
func (s *Snapshot) UncorePowerW() float64 { return s.Uncore }

// RefIPS implements Platform.
func (s *Snapshot) RefIPS(core int) float64 { return s.Refs[core] }

// TotalPower returns chip power for a level assignment, accumulating in
// the same order as totalPower (uncore first, then cores ascending).
func (s *Snapshot) TotalPower(levels []int) float64 {
	sum := s.Uncore
	for c, l := range levels {
		sum += s.Power[c*s.Levels+l]
	}
	return sum
}

// ObjCoef fills dst (grown as needed) with the per-core objective
// coefficient weight(c)*IPC(c), the level-independent factor of every
// objective term: ObjMIPS uses weight 1, ObjWeighted and ObjMinSpeed
// 1e9/RefIPS. Multiplying by 1 is exact in IEEE 754, so hoisting the
// product out of the per-candidate loop leaves every objective value
// bit-identical to the unhoisted expression.
func (s *Snapshot) ObjCoef(obj Objective, dst []float64) []float64 {
	dst = growFloats(dst, s.Cores)
	for c := range dst {
		w := 1.0
		if obj != ObjMIPS {
			if ref := s.Refs[c]; ref > 0 {
				w = 1e9 / ref
			}
		}
		dst[c] = w * s.IPCs[c]
	}
	return dst
}

// objWeight mirrors Objective.weight on the captured tables.
func (s *Snapshot) objWeight(obj Objective, core int) float64 {
	if obj == ObjWeighted {
		if ref := s.Refs[core]; ref > 0 {
			return 1e9 / ref
		}
	}
	return 1
}

// minSpeedWeight mirrors the package-level minSpeedWeight on the
// captured tables.
func (s *Snapshot) minSpeedWeight(core int) float64 {
	if ref := s.Refs[core]; ref > 0 {
		return 1e9 / ref
	}
	return 1
}

// ObjectiveValue evaluates obj for a level assignment using coefficients
// from ObjCoef, mirroring objectiveValue term by term.
func (s *Snapshot) ObjectiveValue(levels []int, obj Objective, coef []float64) float64 {
	nl := s.Levels
	if obj == ObjMinSpeed {
		min := 0.0
		for c, l := range levels {
			v := coef[c] * s.Freq[c*nl+l] / 1e6
			if c == 0 || v < min {
				min = v
			}
		}
		return min
	}
	sum := 0.0
	for c, l := range levels {
		sum += coef[c] * s.Freq[c*nl+l] / 1e6
	}
	return sum
}

// growFloats resizes a float64 scratch slice to n, reusing capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts resizes an int scratch slice to n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
