package pm

import (
	"context"
	"errors"
	"fmt"

	"vasched/internal/lp"
	"vasched/internal/stats"
	"vasched/internal/trace"
)

// LinOpt is the paper's linear-programming power manager (Section 4.3.1).
// For each active core it:
//
//  1. measures the thread-core pair's total power at FitPoints voltage
//     levels and least-squares fits p_i(v) = b_i*v + c_i (Figure 1);
//
//  2. fits the manufacturer V/f table as f_i(v) = g_i*v + h_i, so the
//     throughput objective becomes sum of ipc_i*g_i*v_i (the constant
//     term does not affect the argmax);
//
//  3. solves, with the Simplex method:
//
//     maximize   sum a_i v_i
//     subject to sum b_i v_i <= Ptarget - Puncore - sum c_i
//     b_i v_i + c_i <= Pcoremax            (per core)
//     Vmin_i <= v_i <= Vmax                (per core)
//
//  4. quantises each optimal v_i down to the ladder.
//
// If the budget is below the chip's floor power the LP is infeasible and
// LinOpt parks every core at its minimum level, as Foxton* would.
type LinOpt struct {
	// FitPoints is how many voltage levels the power fit samples (the
	// paper uses 3, or at the very least 2 — Table 3).
	FitPoints int
	// Objective selects raw-MIPS or weighted-throughput maximisation.
	Objective Objective
}

// NewLinOpt returns the manager with the paper's 3-point power fit.
func NewLinOpt() LinOpt { return LinOpt{FitPoints: 3} }

// Name implements Manager.
func (LinOpt) Name() string { return NameLinOpt }

// Decide implements Manager. Each call solves the LP from scratch; use
// NewSession when running many consecutive intervals so the simplex can
// warm-start from the previous optimum.
func (m LinOpt) Decide(ctx context.Context, p Platform, b Budget, rng *stats.RNG) ([]int, error) {
	var snap Snapshot
	return m.decide(ctx, p, b, nil, &snap)
}

// NewSession implements SessionManager: the returned manager decides
// identically but reuses one lp.Solver across intervals, warm-starting
// each interval's simplex from the previous optimal basis.
//
// Only the throughput LP warm-starts. The ObjMinSpeed epigraph LP
// maximises the single variable z with zero weight on every voltage, so
// its optimal face is fat — many (v, z) vertices share the optimal z —
// and a warm path may legitimately stop at a different vertex than the
// cold path, changing the quantised levels. To keep sessions decision-
// identical to the stateless manager, that LP always solves cold.
func (m LinOpt) NewSession() Manager {
	if m.Objective == ObjMinSpeed {
		return &linOptSession{m: m}
	}
	return &linOptSession{m: m, solver: lp.NewSolver()}
}

// linOptSession is a per-run LinOpt with simplex warm-start state and a
// reused platform snapshot. Not safe for concurrent use; each run gets
// its own.
type linOptSession struct {
	m      LinOpt
	solver *lp.Solver
	snap   Snapshot
}

func (s *linOptSession) Name() string { return s.m.Name() }

func (s *linOptSession) Decide(ctx context.Context, p Platform, b Budget, _ *stats.RNG) ([]int, error) {
	return s.m.decide(ctx, p, b, s.solver, &s.snap)
}

// solveWith dispatches to the session solver when one is present.
func solveWith(s *lp.Solver, prob *lp.Problem) (*lp.Solution, error) {
	if s == nil {
		return lp.Solve(prob)
	}
	return s.Solve(prob)
}

func (m LinOpt) decide(ctx context.Context, p Platform, b Budget, solver *lp.Solver, snap *Snapshot) ([]int, error) {
	if err := validatePlatform(p); err != nil {
		return nil, err
	}
	_, sp := startDecide(ctx, NameLinOpt, p)
	defer sp.End()
	attempts0, hits0 := 0, 0
	if solver != nil {
		attempts0, hits0 = solver.WarmAttempts, solver.WarmHits
	}
	defer func() {
		// Attribute the simplex warm-start outcome: cold for stateless
		// solves (and the always-cold ObjMinSpeed LP), hit when the
		// previous optimal basis skipped phase 1, miss when the warm
		// attempt had to restart cold.
		switch {
		case solver == nil || solver.WarmAttempts == attempts0:
			sp.AddAttr(trace.String("warm", "cold"))
		case solver.WarmHits > hits0:
			sp.AddAttr(trace.String("warm", "hit"))
		default:
			sp.AddAttr(trace.String("warm", "miss"))
		}
	}()
	snap.Capture(p)
	fitPoints := m.FitPoints
	if fitPoints < 2 {
		fitPoints = 3
	}
	n := snap.Cores
	nl := snap.Levels
	top := nl - 1
	vmax := snap.Volt[top]

	aCoef := make([]float64, n) // throughput per volt
	bCoef := make([]float64, n) // watts per volt
	cCoef := make([]float64, n) // watts offset
	vmin := make([]float64, n)  // per-core minimum feasible voltage
	minLev := make([]int, n)

	for c := 0; c < n; c++ {
		minLev[c] = snap.MinLev[c]
		vmin[c] = snap.Volt[minLev[c]]

		// Sample levels spread evenly across the core's feasible range.
		lo, hi := minLev[c], top
		span := hi - lo
		pts := fitPoints
		if span+1 < pts {
			pts = span + 1
		}
		vs := make([]float64, 0, pts)
		ps := make([]float64, 0, pts)
		fs := make([]float64, 0, pts)
		for k := 0; k < pts; k++ {
			l := lo
			if pts > 1 {
				l = lo + k*span/(pts-1)
			}
			vs = append(vs, snap.Volt[l])
			ps = append(ps, snap.Power[c*nl+l])
			fs = append(fs, snap.Freq[c*nl+l])
		}
		bi, ci, err := fitLine(vs, ps)
		if err != nil {
			return nil, fmt.Errorf("pm: power fit for core %d: %w", c, err)
		}
		gi, _, err := fitLine(vs, fs)
		if err != nil {
			return nil, fmt.Errorf("pm: frequency fit for core %d: %w", c, err)
		}
		bCoef[c], cCoef[c] = bi, ci
		aCoef[c] = snap.objWeight(m.Objective, c) * snap.IPCs[c] * gi / 1e6 // objective per volt
		if aCoef[c] <= 0 {
			// A degenerate fit (flat frequency) still deserves a positive
			// objective weight so the LP prefers higher voltage.
			aCoef[c] = 1e-9
		}
	}

	prob := &lp.Problem{Objective: aCoef}
	// Chip budget: sum b_i v_i <= Ptarget - uncore - sum c_i.
	rhs := b.PTargetW - snap.Uncore
	for c := 0; c < n; c++ {
		rhs -= cCoef[c]
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{
		Coeffs: append([]float64(nil), bCoef...), Rel: lp.LE, RHS: rhs,
	})
	for c := 0; c < n; c++ {
		row := make([]float64, n)
		row[c] = bCoef[c]
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: row, Rel: lp.LE, RHS: b.PCoreMaxW - cCoef[c],
		})
		lowRow := make([]float64, n)
		lowRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: lowRow, Rel: lp.GE, RHS: vmin[c],
		})
		hiRow := make([]float64, n)
		hiRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: hiRow, Rel: lp.LE, RHS: vmax,
		})
	}

	if m.Objective == ObjMinSpeed {
		// Epigraph reformulation: variables (v_1..v_n, z), maximize z
		// subject to a_i*v_i - z >= 0 plus the same power and bound
		// constraints. The per-core speed weight replaces the (unit)
		// summed-objective weight in a_i.
		for c := 0; c < n; c++ {
			aCoef[c] *= snap.minSpeedWeight(c)
		}
		return m.decideMinSpeed(snap, b, aCoef, bCoef, cCoef, vmin, minLev, vmax, solver)
	}

	sol, err := solveWith(solver, prob)
	if errors.Is(err, lp.ErrInfeasible) {
		// Budget below the chip's floor: park at the minimum point.
		return append([]int(nil), minLev...), nil
	}
	if err != nil {
		return nil, fmt.Errorf("pm: LinOpt simplex: %w", err)
	}

	levels := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = quantizeDown(snap, sol.X[c], minLev[c])
	}
	trim(snap, b, levels, minLev, aCoef)
	refine(snap, b, levels, minLev, snap.ObjCoef(m.Objective, nil))
	return levels, nil
}

// refine polishes the quantised LP point against the *measured* per-level
// powers: the LP's linear power model drives voltages to their bounds
// (with one coupling constraint, at most one variable is interior), but
// the true power curves are convex, so the real optimum grades voltages by
// marginal throughput per watt. Single up-steps and paired up/down moves
// that raise modelled throughput within the budget are applied greedily.
// Each candidate move is O(1) on the sensor tables, so the polish costs
// microseconds — it is the same class of feedback loop Foxton* runs, just
// seeded from the LP point.
func refine(s *Snapshot, b Budget, levels, minLev []int, coef []float64) {
	n := s.Cores
	nl := s.Levels
	top := nl - 1
	gain := func(c int) float64 {
		return coef[c] * (s.Freq[c*nl+levels[c]+1] - s.Freq[c*nl+levels[c]]) / 1e6
	}
	loss := func(c int) float64 {
		return coef[c] * (s.Freq[c*nl+levels[c]] - s.Freq[c*nl+levels[c]-1]) / 1e6
	}
	for iter := 0; iter < 4*n*nl; iter++ {
		cur := s.TotalPower(levels)
		// First try free up-steps (headroom without trading).
		bestUp, bestGain := -1, 0.0
		for c := 0; c < n; c++ {
			if levels[c] >= top {
				continue
			}
			dp := s.Power[c*nl+levels[c]+1] - s.Power[c*nl+levels[c]]
			if cur+dp > b.PTargetW || s.Power[c*nl+levels[c]+1] > b.PCoreMaxW {
				continue
			}
			if g := gain(c); g > bestGain {
				bestUp, bestGain = c, g
			}
		}
		if bestUp >= 0 {
			levels[bestUp]++
			continue
		}
		// Then paired moves: step one core up, another down, if the swap
		// nets throughput and stays within budget.
		type move struct {
			up, down int
			net      float64
		}
		best := move{up: -1}
		for up := 0; up < n; up++ {
			if levels[up] >= top {
				continue
			}
			dpUp := s.Power[up*nl+levels[up]+1] - s.Power[up*nl+levels[up]]
			if s.Power[up*nl+levels[up]+1] > b.PCoreMaxW {
				continue
			}
			g := gain(up)
			for down := 0; down < n; down++ {
				if down == up || levels[down] <= minLev[down] {
					continue
				}
				dpDown := s.Power[down*nl+levels[down]] - s.Power[down*nl+levels[down]-1]
				if cur+dpUp-dpDown > b.PTargetW {
					continue
				}
				if net := g - loss(down); net > best.net+1e-9 {
					best = move{up: up, down: down, net: net}
				}
			}
		}
		if best.up < 0 {
			return
		}
		levels[best.up]++
		levels[best.down]--
	}
}

// trim enforces the budget against the *measured* powers after the linear
// approximation and quantisation: the always-on power monitor of the
// paper's Section 5.2. While a constraint is violated, it lowers the level
// of the core whose next step down costs the least throughput per watt
// saved.
func trim(s *Snapshot, b Budget, levels, minLev []int, aCoef []float64) {
	nl := s.Levels
	overCap := func() int {
		for c, l := range levels {
			if s.Power[c*nl+l] > b.PCoreMaxW && l > minLev[c] {
				return c
			}
		}
		return -1
	}
	for {
		if c := overCap(); c >= 0 {
			levels[c]--
			continue
		}
		if s.TotalPower(levels) <= b.PTargetW {
			return
		}
		best, bestCost := -1, 0.0
		for c, l := range levels {
			if l <= minLev[c] {
				continue
			}
			dp := s.Power[c*nl+l] - s.Power[c*nl+l-1]
			dtp := aCoef[c] * (s.Volt[l] - s.Volt[l-1])
			cost := dtp
			if dp > 0 {
				cost = dtp / dp
			}
			if best < 0 || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		if best < 0 {
			return // everything at the floor; budget unattainable
		}
		levels[best]--
	}
}

// decideMinSpeed solves the max-min LP: maximize z subject to
// z <= a_i*v_i, the chip and per-core power constraints, and the voltage
// bounds. aCoef here carries the min-speed weights.
func (m LinOpt) decideMinSpeed(snap *Snapshot, b Budget, aCoef, bCoef, cCoef, vmin []float64, minLev []int, vmax float64, solver *lp.Solver) ([]int, error) {
	n := snap.Cores
	nv := n + 1 // v_1..v_n, z
	obj := make([]float64, nv)
	obj[n] = 1 // maximize z
	prob := &lp.Problem{Objective: obj}

	// z <= a_i v_i  ->  a_i v_i - z >= 0.
	for c := 0; c < n; c++ {
		row := make([]float64, nv)
		row[c] = aCoef[c]
		row[n] = -1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: 0})
	}
	rhs := b.PTargetW - snap.Uncore
	budgetRow := make([]float64, nv)
	for c := 0; c < n; c++ {
		budgetRow[c] = bCoef[c]
		rhs -= cCoef[c]
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: budgetRow, Rel: lp.LE, RHS: rhs})
	for c := 0; c < n; c++ {
		capRow := make([]float64, nv)
		capRow[c] = bCoef[c]
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: capRow, Rel: lp.LE, RHS: b.PCoreMaxW - cCoef[c]})
		loRow := make([]float64, nv)
		loRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: loRow, Rel: lp.GE, RHS: vmin[c]})
		hiRow := make([]float64, nv)
		hiRow[c] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: hiRow, Rel: lp.LE, RHS: vmax})
	}

	sol, err := solveWith(solver, prob)
	if errors.Is(err, lp.ErrInfeasible) {
		return append([]int(nil), minLev...), nil
	}
	if err != nil {
		return nil, fmt.Errorf("pm: LinOpt max-min simplex: %w", err)
	}
	levels := make([]int, n)
	for c := 0; c < n; c++ {
		levels[c] = quantizeDown(snap, sol.X[c], minLev[c])
	}
	trim(snap, b, levels, minLev, aCoef)
	refineMinSpeed(snap, b, levels, minLev)
	return levels, nil
}

// refineMinSpeed greedily raises the slowest thread while the budget
// allows, compensating by lowering the thread with the most slack if
// necessary.
func refineMinSpeed(s *Snapshot, b Budget, levels, minLev []int) {
	n := s.Cores
	nl := s.Levels
	coef := s.ObjCoef(ObjMinSpeed, nil)
	speed := func(c int) float64 {
		return coef[c] * s.Freq[c*nl+levels[c]] / 1e6
	}
	top := nl - 1
	for iter := 0; iter < 4*n*nl; iter++ {
		slow, fast := 0, 0
		for c := 1; c < n; c++ {
			if speed(c) < speed(slow) {
				slow = c
			}
			if speed(c) > speed(fast) {
				fast = c
			}
		}
		if levels[slow] >= top {
			return
		}
		if s.Power[slow*nl+levels[slow]+1] > b.PCoreMaxW {
			return
		}
		cur := s.TotalPower(levels)
		dp := s.Power[slow*nl+levels[slow]+1] - s.Power[slow*nl+levels[slow]]
		if cur+dp <= b.PTargetW {
			levels[slow]++
			continue
		}
		// Fund the slow thread from the fastest one's slack.
		if fast == slow || levels[fast] <= minLev[fast] {
			return
		}
		dpDown := s.Power[fast*nl+levels[fast]] - s.Power[fast*nl+levels[fast]-1]
		if cur+dp-dpDown > b.PTargetW {
			return
		}
		// Only worth it if the donor stays faster than the recipient.
		was := speed(slow)
		levels[slow]++
		levels[fast]--
		if speed(fast) < was {
			levels[slow]--
			levels[fast]++
			return
		}
	}
}

// fitLine least-squares fits y = b*x + c.
func fitLine(xs, ys []float64) (bCoef, cCoef float64, err error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0, errors.New("pm: empty or mismatched fit input")
	}
	if len(xs) == 1 {
		return 0, ys[0], nil
	}
	mx, my := statsMean(xs), statsMean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("pm: degenerate fit abscissae")
	}
	bCoef = sxy / sxx
	cCoef = my - bCoef*mx
	return bCoef, cCoef, nil
}

func statsMean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// quantizeDown returns the highest ladder level whose voltage does not
// exceed v, clamped to the core's feasible range.
func quantizeDown(s *Snapshot, v float64, min int) int {
	best := min
	for l := min; l < s.Levels; l++ {
		if s.Volt[l] <= v+1e-9 {
			best = l
		}
	}
	return best
}
