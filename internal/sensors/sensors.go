// Package sensors implements the profiling support of the paper's
// Table 3: the manufacturer-provided per-core data (static power ranking,
// maximum frequencies, V/f tables) and the runtime measurements (per-thread
// dynamic power and IPC, observed through on-chip sensors with optional
// measurement noise).
package sensors

import (
	"fmt"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Noise models sensor measurement error as multiplicative Gaussian noise
// with the given relative sigma. A zero-sigma Noise is exact.
type Noise struct {
	Sigma float64
	rng   *stats.RNG
}

// NewNoise returns a noise source; rng may be nil when sigma is 0.
func NewNoise(sigma float64, rng *stats.RNG) Noise {
	return Noise{Sigma: sigma, rng: rng}
}

// Read perturbs a true value with the sensor's noise.
func (n Noise) Read(v float64) float64 {
	if n.Sigma <= 0 || n.rng == nil {
		return v
	}
	return v * (1 + n.rng.Norm()*n.Sigma)
}

// CoreInfos extracts the manufacturer profile the schedulers need: static
// power at the maximum voltage and maximum frequency at the maximum
// voltage, for every core (Table 3 rows for VarP and VarF).
func CoreInfos(c *chip.Chip) []sched.CoreInfo {
	out := make([]sched.CoreInfo, c.NumCores())
	topLevel := len(c.Levels) - 1
	for core := range out {
		out[core] = sched.CoreInfo{
			ID:           core,
			StaticPowerW: c.StaticAtLevel[core][topLevel],
			FmaxHz:       c.FmaxNominal(core),
		}
	}
	return out
}

// ProfileThreads measures each thread's dynamic power and IPC by running it
// briefly on one random core, as the paper prescribes: "each thread is
// profiled on a potentially different core", with the measured values
// scaled to reference conditions so the ranking is core-independent.
func ProfileThreads(c *chip.Chip, cpu *cpusim.Model, apps []*workload.AppProfile, elapsedMS []float64, noise Noise, rng *stats.RNG) ([]sched.ThreadInfo, error) {
	if len(elapsedMS) != 0 && len(elapsedMS) != len(apps) {
		return nil, fmt.Errorf("sensors: %d elapsed entries for %d threads", len(elapsedMS), len(apps))
	}
	out := make([]sched.ThreadInfo, len(apps))
	for i, app := range apps {
		core := rng.Intn(c.NumCores())
		f := c.FmaxNominal(core)
		elapsed := 0.0
		if len(elapsedMS) > 0 {
			elapsed = elapsedMS[i]
		}
		phase := app.PhaseAt(elapsed)
		ipc, err := cpu.IPC(app, phase, f)
		if err != nil {
			return nil, fmt.Errorf("sensors: profiling thread %d: %w", i, err)
		}
		// The dynamic-power sensor reading is scaled by the profiling
		// core's (V, f) back to reference conditions; what survives is
		// the thread's intrinsic activity (its Table 5 number modulated
		// by the current phase).
		dyn := app.DynPowerW * phase.PowerScale
		// IPC is likewise treated as core-independent for ranking; the
		// frequency at which it was measured adds a small methodical
		// error that the noise term models on top of.
		out[i] = sched.ThreadInfo{
			ID:        i,
			DynPowerW: noise.Read(dyn),
			IPC:       noise.Read(ipc),
		}
	}
	return out, nil
}
