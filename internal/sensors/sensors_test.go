package sensors

import (
	"math"
	"sync"
	"testing"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/stats"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

var (
	once    sync.Once
	theChip *chip.Chip
	theCPU  *cpusim.Model
	bErr    error
)

func build(t *testing.T) (*chip.Chip, *cpusim.Model) {
	t.Helper()
	once.Do(func() {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 64, 64
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			bErr = err
			return
		}
		maps, err := g.Die(5, 0)
		if err != nil {
			bErr = err
			return
		}
		theChip, bErr = chip.Build(maps, floorplan.New20CoreCMP(), delay.DefaultConfig(),
			power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
		if bErr != nil {
			return
		}
		theCPU, bErr = cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return theChip, theCPU
}

func TestNoiseExactWhenZero(t *testing.T) {
	n := NewNoise(0, nil)
	if n.Read(42) != 42 {
		t.Fatal("zero noise must be exact")
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(0.05, stats.NewRNG(1))
	var readings []float64
	for i := 0; i < 20000; i++ {
		readings = append(readings, n.Read(100))
	}
	if m := stats.Mean(readings); math.Abs(m-100) > 0.5 {
		t.Fatalf("noisy mean = %v", m)
	}
	if s := stats.StdDev(readings); math.Abs(s-5) > 0.5 {
		t.Fatalf("noisy std = %v, want ~5", s)
	}
}

func TestCoreInfos(t *testing.T) {
	c, _ := build(t)
	infos := CoreInfos(c)
	if len(infos) != 20 {
		t.Fatalf("infos = %d", len(infos))
	}
	for i, ci := range infos {
		if ci.ID != i {
			t.Fatalf("info %d has ID %d", i, ci.ID)
		}
		if ci.StaticPowerW <= 0 || ci.FmaxHz <= 0 {
			t.Fatalf("info %d has non-positive profile: %+v", i, ci)
		}
	}
	// Variation must be visible through the profile.
	lo, hi := infos[0].FmaxHz, infos[0].FmaxHz
	for _, ci := range infos {
		lo = math.Min(lo, ci.FmaxHz)
		hi = math.Max(hi, ci.FmaxHz)
	}
	if hi/lo < 1.05 {
		t.Fatalf("frequency spread %v invisible in manufacturer profile", hi/lo)
	}
}

func TestProfileThreads(t *testing.T) {
	c, cpu := build(t)
	apps := workload.SPEC()[:6]
	infos, err := ProfileThreads(c, cpu, apps, nil, Noise{}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 6 {
		t.Fatalf("infos = %d", len(infos))
	}
	for i, ti := range infos {
		if ti.ID != i || ti.DynPowerW <= 0 || ti.IPC <= 0 {
			t.Fatalf("thread %d: %+v", i, ti)
		}
	}
	// Noise-free profiling must preserve the Table 5 dynamic-power
	// ranking (vortex > mcf).
	var vortexP, mcfP float64
	for i, a := range apps {
		switch a.Name {
		case "vortex":
			vortexP = infos[i].DynPowerW
		case "mcf":
			mcfP = infos[i].DynPowerW
		}
	}
	if vortexP != 0 && mcfP != 0 && vortexP <= mcfP {
		t.Fatal("profiling lost the dynamic-power ranking")
	}
}

func TestProfileThreadsElapsedValidation(t *testing.T) {
	c, cpu := build(t)
	apps := workload.SPEC()[:3]
	if _, err := ProfileThreads(c, cpu, apps, []float64{1}, Noise{}, stats.NewRNG(1)); err == nil {
		t.Fatal("mismatched elapsed slice accepted")
	}
	if _, err := ProfileThreads(c, cpu, apps, []float64{1, 2, 3}, Noise{}, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
}

func TestProfileThreadsPhaseSensitive(t *testing.T) {
	c, cpu := build(t)
	app, err := workload.ByName("bzip2") // has phases
	if err != nil {
		t.Fatal(err)
	}
	apps := []*workload.AppProfile{app}
	hi, err := ProfileThreads(c, cpu, apps, []float64{0}, Noise{}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	lo, err := ProfileThreads(c, cpu, apps, []float64{300}, Noise{}, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// bzip2's first (high) phase scales IPC by 1.15, its second by 0.8.
	if hi[0].IPC <= lo[0].IPC {
		t.Fatalf("phase change invisible to profiling: %v vs %v", hi[0].IPC, lo[0].IPC)
	}
}
