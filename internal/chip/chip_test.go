package chip

import (
	"math"
	"sync"
	"testing"

	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

var (
	testChipOnce sync.Once
	testChipVal  *Chip
	testCPUVal   *cpusim.Model
	testChipErr  error
)

// testChip builds one characterised die (cached across tests — building is
// the expensive part and the die is immutable).
func testChip(t *testing.T) (*Chip, *cpusim.Model) {
	t.Helper()
	testChipOnce.Do(func() {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 128, 128
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			testChipErr = err
			return
		}
		maps, err := g.Die(1, 0)
		if err != nil {
			testChipErr = err
			return
		}
		fp := floorplan.New20CoreCMP()
		pm := power.DefaultModel(cfg.Tech)
		c, err := Build(maps, fp, delay.DefaultConfig(), pm, thermal.DefaultConfig())
		if err != nil {
			testChipErr = err
			return
		}
		cpu, err := cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
		if err != nil {
			testChipErr = err
			return
		}
		testChipVal, testCPUVal = c, cpu
	})
	if testChipErr != nil {
		t.Fatal(testChipErr)
	}
	return testChipVal, testCPUVal
}

func TestBuildTables(t *testing.T) {
	c, _ := testChip(t)
	if c.NumCores() != 20 {
		t.Fatalf("cores = %d", c.NumCores())
	}
	for core := 0; core < c.NumCores(); core++ {
		if len(c.VFTable[core]) == 0 {
			t.Fatalf("core %d has empty VF table", core)
		}
		if len(c.StaticAtLevel[core]) != len(c.Levels) {
			t.Fatalf("core %d static table wrong size", core)
		}
		// Static power must rise with voltage.
		for li := 1; li < len(c.Levels); li++ {
			if c.StaticAtLevel[core][li] <= c.StaticAtLevel[core][li-1] {
				t.Fatalf("core %d static not monotone in V", core)
			}
		}
	}
}

func TestFmaxAtSemantics(t *testing.T) {
	c, _ := testChip(t)
	for core := 0; core < c.NumCores(); core++ {
		fNom := c.FmaxNominal(core)
		if fNom <= 0 {
			t.Fatalf("core %d FmaxNominal = %v", core, fNom)
		}
		if f := c.FmaxAt(core, 0.8); f > fNom {
			t.Fatalf("core %d faster at 0.8V than 1.0V", core)
		}
		if f := c.FmaxAt(core, 0.1); f != 0 {
			t.Fatalf("core %d has frequency %v below every level", core, f)
		}
	}
}

func TestLevelFor(t *testing.T) {
	c, _ := testChip(t)
	if i, err := c.LevelFor(0.8); err != nil || c.Levels[i] != 0.8 {
		t.Fatalf("LevelFor(0.8) = %d, %v", i, err)
	}
	if _, err := c.LevelFor(0.83); err == nil {
		t.Fatal("off-ladder voltage accepted")
	}
}

func TestEvaluateSingleThread(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	st[4] = CoreState{App: apps[0], V: 1.0, F: c.FmaxNominal(4)}
	r, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if r.CorePowerW[4] <= 0 {
		t.Fatal("active core reports no power")
	}
	for core := 0; core < 20; core++ {
		if core != 4 && r.CorePowerW[core] != 0 {
			t.Fatalf("powered-off core %d reports %v W", core, r.CorePowerW[core])
		}
	}
	if r.CoreIPC[4] <= 0 {
		t.Fatal("active core reports no IPC")
	}
	if r.TotalW <= r.CorePowerW[4] {
		t.Fatal("total should include L2 power")
	}
	if r.CoreTempC[4] <= r.CoreTempC[19] {
		t.Fatal("active core should be hotter than idle far core")
	}
}

func TestEvaluateFullLoadEnvelope(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	for core := 0; core < 20; core++ {
		st[core] = CoreState{App: apps[core%len(apps)], V: 1.0, F: c.FmaxNominal(core)}
	}
	r, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated unconstrained full-load die must exceed even the
	// High Performance budget (so Ptarget genuinely throttles) while
	// staying physically plausible.
	if r.TotalW < 100 || r.TotalW > 160 {
		t.Fatalf("full-load power = %v W, outside envelope", r.TotalW)
	}
	maxT := c.Therm.MaxTemp(r.BlockTempC)
	if maxT < 60 || maxT > 110 {
		t.Fatalf("full-load peak temp = %v C", maxT)
	}
	if r.StaticW <= 0 || r.DynW <= 0 {
		t.Fatalf("power breakdown: dyn=%v stat=%v", r.DynW, r.StaticW)
	}
	if math.Abs(r.DynW+r.StaticW-r.TotalW) > 1e-9 {
		t.Fatal("breakdown does not sum to total")
	}
}

func TestEvaluateLowerVoltageLowersPower(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	mk := func(v float64) float64 {
		st := c.OffStates()
		for core := 0; core < 20; core++ {
			st[core] = CoreState{App: apps[core%len(apps)], V: v, F: c.FmaxAt(core, v)}
		}
		r, err := c.Evaluate(st, cpu)
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalW
	}
	if mk(0.7) >= mk(1.0) {
		t.Fatal("lower voltage did not lower total power")
	}
}

func TestEvaluateRejectsOverclock(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	st[0] = CoreState{App: apps[0], V: 0.7, F: c.FmaxNominal(0)}
	if c.FmaxAt(0, 0.7) < c.FmaxNominal(0) {
		if _, err := c.Evaluate(st, cpu); err == nil {
			t.Fatal("overclocked operating point accepted")
		}
	}
	st[0] = CoreState{App: apps[0], V: 0, F: 1e9}
	if _, err := c.Evaluate(st, cpu); err == nil {
		t.Fatal("zero voltage accepted")
	}
	if _, err := c.Evaluate(st[:3], cpu); err == nil {
		t.Fatal("wrong-length state slice accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	for core := 0; core < 20; core++ {
		st[core] = CoreState{App: apps[(core+3)%len(apps)], V: 0.8, F: c.FmaxAt(core, 0.8)}
	}
	a, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalW != b.TotalW {
		t.Fatal("Evaluate not deterministic")
	}
}

func TestFrequencyAndLeakageCoupling(t *testing.T) {
	// Across cores, rated frequency and static power should correlate
	// positively (fast cores leak more) — the premise of Figure 6.
	c, _ := testChip(t)
	nomIdx := len(c.Levels) - 1
	var fast, slow, fastLeak, slowLeak float64
	fast, slow = -1, 1e18
	for core := 0; core < c.NumCores(); core++ {
		f := c.FmaxNominal(core)
		if f > fast {
			fast, fastLeak = f, c.StaticAtLevel[core][nomIdx]
		}
		if f < slow {
			slow, slowLeak = f, c.StaticAtLevel[core][nomIdx]
		}
	}
	if fastLeak <= slowLeak {
		t.Skipf("fastest core does not leak more on this die (fast %.2fW vs slow %.2fW); coupling is statistical", fastLeak, slowLeak)
	}
}

func TestEvaluateTransientConvergesToSteadyState(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	for core := 0; core < 20; core++ {
		st[core] = CoreState{App: apps[core%len(apps)], V: 0.9, F: c.FmaxAt(core, 0.9)}
	}
	steady, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	var temps []float64
	var last *EvalResult
	for step := 0; step < 600; step++ {
		last, err = c.EvaluateTransient(st, cpu, temps, 1)
		if err != nil {
			t.Fatal(err)
		}
		temps = last.BlockTempC
	}
	for core := 0; core < 20; core++ {
		if d := last.CoreTempC[core] - steady.CoreTempC[core]; d > 1.0 || d < -1.0 {
			t.Fatalf("core %d transient %v C vs steady %v C", core, last.CoreTempC[core], steady.CoreTempC[core])
		}
	}
	if d := last.TotalW - steady.TotalW; d > 0.02*steady.TotalW || d < -0.02*steady.TotalW {
		t.Fatalf("transient power %v vs steady %v", last.TotalW, steady.TotalW)
	}
}

func TestEvaluateTransientInertia(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	st[0] = CoreState{App: apps[0], V: 1.0, F: c.FmaxNominal(0)}
	steady, err := c.Evaluate(st, cpu)
	if err != nil {
		t.Fatal(err)
	}
	one, err := c.EvaluateTransient(st, cpu, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	amb := c.Therm.Config().AmbientC
	rise := steady.CoreTempC[0] - amb
	oneRise := one.CoreTempC[0] - amb
	if oneRise <= 0 || oneRise > 0.7*rise {
		t.Fatalf("1 ms rise %v vs steady rise %v: missing inertia", oneRise, rise)
	}
}

func TestEvaluateTransientIntoMatchesAllocatingForm(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	for core := 0; core < 20; core++ {
		st[core] = CoreState{App: apps[core%len(apps)], V: 0.9, F: c.FmaxAt(core, 0.9)}
	}
	prev := c.Therm.AmbientTemps(nil)
	var reused EvalResult
	for step := 0; step < 5; step++ {
		want, err := c.EvaluateTransient(st, cpu, prev, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EvaluateTransientInto(&reused, st, cpu, prev, 1); err != nil {
			t.Fatal(err)
		}
		if reused.TotalW != want.TotalW || reused.ThermalIters != want.ThermalIters {
			t.Fatalf("step %d: Into total %v vs %v", step, reused.TotalW, want.TotalW)
		}
		for i := range want.BlockTempC {
			if reused.BlockTempC[i] != want.BlockTempC[i] {
				t.Fatalf("step %d block %d: %v vs %v", step, i, reused.BlockTempC[i], want.BlockTempC[i])
			}
		}
		for core := range want.CorePowerW {
			if reused.CorePowerW[core] != want.CorePowerW[core] ||
				reused.CoreTempC[core] != want.CoreTempC[core] ||
				reused.CoreIPC[core] != want.CoreIPC[core] {
				t.Fatalf("step %d core %d diverged", step, core)
			}
		}
		copy(prev, want.BlockTempC)
	}
}

func TestEvaluateTransientIntoDoesNotAllocate(t *testing.T) {
	c, cpu := testChip(t)
	apps := workload.SPEC()
	st := c.OffStates()
	for core := 0; core < 20; core++ {
		st[core] = CoreState{App: apps[core%len(apps)], V: 0.9, F: c.FmaxAt(core, 0.9)}
	}
	prev := c.Therm.AmbientTemps(nil)
	var out EvalResult
	// Warm up: first call sizes out's slices and the stepper cache.
	if err := c.EvaluateTransientInto(&out, st, cpu, prev, 1); err != nil {
		t.Fatal(err)
	}
	copy(prev, out.BlockTempC)
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.EvaluateTransientInto(&out, st, cpu, prev, 1); err != nil {
			t.Fatal(err)
		}
		copy(prev, out.BlockTempC)
	})
	// The engine's tick loop rides this path; a handful of allocations per
	// call (scratch pool churn) is tolerable, per-block or per-grid-cell
	// allocation is not.
	if allocs > 8 {
		t.Fatalf("EvaluateTransientInto allocates %v objects per call", allocs)
	}
}
