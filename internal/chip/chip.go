// Package chip assembles the device-level models into one manufactured
// die: it characterises each core's frequency and leakage from the die's
// variation maps (the "manufacturer profiling" of the paper's Table 3) and
// evaluates whole-chip power and temperature for a given assignment of
// threads and (V, f) operating points (what the on-chip sensors observe at
// run time).
package chip

import (
	"fmt"
	"sync"

	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/stats"
	"vasched/internal/tech"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

// Chip is one characterised die.
type Chip struct {
	FP    *floorplan.Floorplan
	Maps  *varmodel.DieMaps
	Tech  tech.Params
	Power power.Model
	Therm *thermal.Model

	// Paths holds each core's critical-path population.
	Paths []*delay.CorePaths
	// VFTable is the manufacturer (voltage, frequency) table per core,
	// rated at the worst-case temperature.
	VFTable [][]delay.VF
	// StaticAtLevel is the manufacturer-measured static power per core at
	// each ladder voltage (zero load, reference temperature), indexed
	// [core][level]. This is the VarP/VarP&AppP profile data.
	StaticAtLevel [][]float64
	// Levels is the voltage ladder shared by all tables.
	Levels []float64

	// Per-block leakage cache (constant per die): effective mean Vth and
	// nominal static share, indexed like FP.Blocks.
	blockVthEff []float64
	blockRefW   []float64
	// steppers caches transient thermal factorisations by step length;
	// stepMu makes the cache safe when one characterised die is shared by
	// concurrent timeline simulations (the farm engine's die cache hands
	// the same *Chip to every job that wants the same die).
	stepMu   sync.Mutex
	steppers map[float64]*thermal.Transient
	// evalPool recycles per-evaluation scratch buffers so the DVFS inner
	// loop's chip evaluations do not allocate per call; pooling (rather
	// than a single buffer set) keeps concurrent evaluations of a shared
	// die safe.
	evalPool sync.Pool
}

// evalScratch is one evaluation's worth of reusable buffers.
type evalScratch struct {
	dyn, coreDyn, total, rhs, leak []float64
	fps                            *thermal.FixedPointScratch
}

func (c *Chip) getScratch() *evalScratch {
	if sc, ok := c.evalPool.Get().(*evalScratch); ok {
		return sc
	}
	nb := len(c.FP.Blocks)
	return &evalScratch{
		dyn:     make([]float64, nb),
		coreDyn: make([]float64, c.NumCores()),
		total:   make([]float64, nb),
		rhs:     make([]float64, nb),
		leak:    make([]float64, nb),
		fps:     c.Therm.NewFixedPointScratch(),
	}
}

// Build characterises the die described by maps on the given floorplan.
func Build(maps *varmodel.DieMaps, fp *floorplan.Floorplan, dcfg delay.Config, pm power.Model, tcfg thermal.Config) (*Chip, error) {
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	tm, err := thermal.New(fp, tcfg)
	if err != nil {
		return nil, err
	}
	c := &Chip{
		FP:    fp,
		Maps:  maps,
		Tech:  maps.Cfg.Tech,
		Power: pm,
		Therm: tm,
	}
	c.Levels = c.Tech.VoltageLevels()
	c.steppers = make(map[float64]*thermal.Transient)
	c.blockVthEff = make([]float64, len(fp.Blocks))
	c.blockRefW = make([]float64, len(fp.Blocks))
	for bi, b := range fp.Blocks {
		c.blockVthEff[bi], c.blockRefW[bi] = pm.BlockVthEff(maps, fp, b)
	}
	rng := stats.NewRNG(maps.Seed).Derive(101)
	c.Paths = make([]*delay.CorePaths, fp.NumCores)
	c.VFTable = make([][]delay.VF, fp.NumCores)
	c.StaticAtLevel = make([][]float64, fp.NumCores)
	for core := 0; core < fp.NumCores; core++ {
		cp, err := delay.BuildCore(maps, fp, core, rng.Derive(int64(core)), dcfg)
		if err != nil {
			return nil, fmt.Errorf("chip: characterising core %d: %w", core, err)
		}
		c.Paths[core] = cp
		c.VFTable[core] = cp.VFTable(c.Levels, c.Tech.TRatingC)
		if len(c.VFTable[core]) == 0 {
			return nil, fmt.Errorf("chip: core %d supports no operating point", core)
		}
		row := make([]float64, len(c.Levels))
		for li, v := range c.Levels {
			row[li] = c.CoreStaticCached(core, v, c.Tech.TRefC)
		}
		c.StaticAtLevel[core] = row
	}
	return c, nil
}

// NumCores returns the core count.
func (c *Chip) NumCores() int { return c.FP.NumCores }

// FmaxAt returns the rated maximum frequency of core at supply v,
// interpolated down to the nearest tabulated voltage level. It returns 0
// if v is below every feasible level.
func (c *Chip) FmaxAt(core int, v float64) float64 {
	best := 0.0
	for _, vf := range c.VFTable[core] {
		if vf.V <= v+1e-9 && vf.F > best {
			best = vf.F
		}
	}
	return best
}

// FmaxNominal returns core's rated frequency at the nominal supply.
func (c *Chip) FmaxNominal(core int) float64 {
	return c.FmaxAt(core, c.Tech.VddNominal)
}

// MinLevelIndex returns the lowest ladder index at which core has a
// feasible operating point.
func (c *Chip) MinLevelIndex(core int) int {
	if len(c.VFTable[core]) == 0 {
		return len(c.Levels) - 1
	}
	vmin := c.VFTable[core][0].V
	for i, v := range c.Levels {
		if v >= vmin-1e-9 {
			return i
		}
	}
	return len(c.Levels) - 1
}

// LevelFor returns the index of the ladder level equal to v, or an error.
func (c *Chip) LevelFor(v float64) (int, error) {
	for i, lv := range c.Levels {
		if lv == v || (lv-v) < 1e-9 && (v-lv) < 1e-9 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("chip: voltage %v not on the ladder", v)
}

// CoreState is one core's assignment for evaluation.
type CoreState struct {
	// App is the thread mapped to this core; nil means the core is
	// powered off.
	App *workload.AppProfile
	// V and F are the operating point. F must not exceed the core's rated
	// frequency at V.
	V, F float64
	// ElapsedMS is the thread's execution progress, used to select its
	// current phase.
	ElapsedMS float64
}

// dynamic power distribution across core units: fractions of the core's
// dynamic power dissipated in each block, for integer and FP codes.
var dynSplit = map[floorplan.UnitKind][2]float64{
	floorplan.UnitFrontend: {0.20, 0.18},
	floorplan.UnitIntExec:  {0.30, 0.17},
	floorplan.UnitFPExec:   {0.10, 0.25},
	floorplan.UnitLSU:      {0.15, 0.15},
	floorplan.UnitL1I:      {0.10, 0.08},
	floorplan.UnitL1D:      {0.15, 0.17},
}

// EvalResult reports whole-chip conditions for one assignment.
type EvalResult struct {
	TotalW  float64
	DynW    float64
	StaticW float64
	// CorePowerW is total (dynamic + leakage) power per core; powered-off
	// cores report 0.
	CorePowerW []float64
	// CoreTempC is the area-weighted mean temperature per core.
	CoreTempC []float64
	// CoreIPC is the achieved IPC per active core at its operating point.
	CoreIPC []float64
	// L2PowerW is the shared L2's total power.
	L2PowerW float64
	// BlockTempC has per-floorplan-block temperatures.
	BlockTempC []float64
	// ThermalIters is the number of leakage-temperature iterations used.
	ThermalIters int
}

// assembleDynamic computes per-block dynamic power and per-core IPC for
// the given states. dyn and coreDyn are caller-provided buffers (cleared
// here); coreIPC is freshly allocated because it escapes into the result.
func (c *Chip) assembleDynamic(dyn, coreDyn []float64, states []CoreState, cpu *cpusim.Model) (coreIPC []float64, err error) {
	coreIPC = make([]float64, c.NumCores())
	if err := c.assembleDynamicInto(dyn, coreDyn, coreIPC, states, cpu); err != nil {
		return nil, err
	}
	return coreIPC, nil
}

// assembleDynamicInto is assembleDynamic with a caller-provided coreIPC
// buffer — the zero-allocation form the time-stepped simulations use.
func (c *Chip) assembleDynamicInto(dyn, coreDyn, coreIPC []float64, states []CoreState, cpu *cpusim.Model) error {
	if len(states) != c.NumCores() {
		return fmt.Errorf("chip: %d states for %d cores", len(states), c.NumCores())
	}
	clear(dyn)
	clear(coreDyn)
	clear(coreIPC)
	l2Accesses := 0.0

	for core, st := range states {
		if st.App == nil {
			continue
		}
		if st.F <= 0 || st.V <= 0 {
			return fmt.Errorf("chip: core %d active with invalid (V,f)=(%v,%v)", core, st.V, st.F)
		}
		if rated := c.FmaxAt(core, st.V); st.F > rated+1e-6 {
			return fmt.Errorf("chip: core %d frequency %.3g exceeds rated %.3g at %.2fV",
				core, st.F, rated, st.V)
		}
		phase := st.App.PhaseAt(st.ElapsedMS)
		ipc, err := cpu.IPC(st.App, phase, st.F)
		if err != nil {
			return err
		}
		coreIPC[core] = ipc
		// Dynamic power: the profile's Table 5 number scaled by (V,f) and
		// activity; the phase's power scale rides on the activity term.
		nomIPC := st.App.IPCNom
		dynW := c.Power.DynamicCoreW(st.App.DynPowerW*phase.PowerScale, nomIPC, st.V, st.F, ipc)
		coreDyn[core] = dynW
		l2Accesses += cpu.L2AccessRate(st.App, st.F, ipc)
	}

	// Distribute core dynamic power over units and L2 dynamic over banks.
	for bi, b := range c.FP.Blocks {
		if b.Kind == floorplan.UnitL2 {
			continue
		}
		st := states[b.Core]
		if st.App == nil {
			continue
		}
		idx := 0
		if st.App.FP {
			idx = 1
		}
		dyn[bi] = coreDyn[b.Core] * dynSplit[b.Kind][idx]
	}
	l2DynTotal := c.Power.L2DynamicW(l2Accesses)
	l2Blocks := c.FP.L2Blocks()
	for bi, b := range c.FP.Blocks {
		if b.Kind == floorplan.UnitL2 {
			dyn[bi] = l2DynTotal / float64(len(l2Blocks))
		}
	}
	return nil
}

// leakageFn returns the per-block leakage closure for the given states:
// active core blocks leak at the core's supply; L2 leaks at nominal;
// powered-off cores are gated (no leakage). The caller-provided leak
// slice is reused across calls of the closure.
func (c *Chip) leakageFn(leak []float64, states []CoreState) func(temps []float64) []float64 {
	return func(temps []float64) []float64 {
		for bi, b := range c.FP.Blocks {
			switch {
			case b.Kind == floorplan.UnitL2:
				leak[bi] = c.Power.BlockStaticFromCache(c.blockVthEff[bi], c.blockRefW[bi],
					c.Maps.VthSigmaRan, c.Tech.VddNominal, temps[bi])
			case states[b.Core].App != nil:
				leak[bi] = c.Power.BlockStaticFromCache(c.blockVthEff[bi], c.blockRefW[bi],
					c.Maps.VthSigmaRan, states[b.Core].V, temps[bi])
			default:
				leak[bi] = 0
			}
		}
		return leak
	}
}

// Evaluate computes the chip's steady-state power and temperature for the
// given core states, using cpu to obtain per-thread IPC and the Su et al.
// leakage-temperature fixed point for the static power.
func (c *Chip) Evaluate(states []CoreState, cpu *cpusim.Model) (*EvalResult, error) {
	sc := c.getScratch()
	defer c.evalPool.Put(sc)
	coreIPC, err := c.assembleDynamic(sc.dyn, sc.coreDyn, states, cpu)
	if err != nil {
		return nil, err
	}
	temps, leak, iters, err := c.Therm.FixedPointWith(sc.fps, sc.dyn, c.leakageFn(sc.leak, states), 0.01, 60)
	if err != nil {
		return nil, err
	}
	// temps aliases the pooled scratch; the result retains its own copy.
	tout := make([]float64, len(temps))
	copy(tout, temps)
	return c.buildResult(states, sc.dyn, leak, tout, coreIPC, iters), nil
}

// EvaluateTransient advances the chip's thermal state by dtMS from
// prevBlockTemps under the given core states: leakage is evaluated at the
// previous temperatures (explicit) and conduction integrated implicitly.
// Unlike Evaluate, temperatures carry inertia across calls — the model
// activity-migration policies need. A nil prevBlockTemps starts from
// ambient.
func (c *Chip) EvaluateTransient(states []CoreState, cpu *cpusim.Model, prevBlockTemps []float64, dtMS float64) (*EvalResult, error) {
	res := &EvalResult{}
	if err := c.EvaluateTransientInto(res, states, cpu, prevBlockTemps, dtMS); err != nil {
		return nil, err
	}
	return res, nil
}

// EvaluateTransientInto is EvaluateTransient writing into a caller-owned
// result: out's slices are reused when already sized for this chip, so a
// tight stepping loop (internal/dynamic) allocates nothing per tick after
// the first call. prevBlockTemps must not alias out.BlockTempC — keep a
// separate previous-temperature buffer and copy out.BlockTempC into it
// between steps.
func (c *Chip) EvaluateTransientInto(out *EvalResult, states []CoreState, cpu *cpusim.Model, prevBlockTemps []float64, dtMS float64) error {
	sc := c.getScratch()
	defer c.evalPool.Put(sc)
	nb := len(c.FP.Blocks)
	nc := c.NumCores()
	if len(out.CorePowerW) != nc {
		out.CorePowerW = make([]float64, nc)
	}
	if len(out.CoreTempC) != nc {
		out.CoreTempC = make([]float64, nc)
	}
	if len(out.CoreIPC) != nc {
		out.CoreIPC = make([]float64, nc)
	}
	if len(out.BlockTempC) != nb {
		out.BlockTempC = make([]float64, nb)
	}
	dyn := sc.dyn
	if err := c.assembleDynamicInto(dyn, sc.coreDyn, out.CoreIPC, states, cpu); err != nil {
		return err
	}
	stepper, err := c.stepperFor(dtMS)
	if err != nil {
		return err
	}
	if prevBlockTemps == nil {
		prevBlockTemps = c.Therm.AmbientTemps(nil)
	}
	leak := c.leakageFn(sc.leak, states)(prevBlockTemps)
	total := sc.total
	for i := range total {
		total[i] = dyn[i] + leak[i]
	}
	if err := stepper.StepInto(out.BlockTempC, sc.rhs, total, prevBlockTemps); err != nil {
		return err
	}
	c.buildResultInto(out, states, dyn, leak, out.BlockTempC, 1)
	return nil
}

// stepperFor returns the cached transient stepper for dtMS, factorising on
// first use.
func (c *Chip) stepperFor(dtMS float64) (*thermal.Transient, error) {
	c.stepMu.Lock()
	stepper, ok := c.steppers[dtMS]
	c.stepMu.Unlock()
	if ok {
		return stepper, nil
	}
	stepper, err := c.Therm.NewTransient(dtMS)
	if err != nil {
		return nil, err
	}
	c.stepMu.Lock()
	if prior, ok := c.steppers[dtMS]; ok {
		stepper = prior // another goroutine factorised first; share it
	} else {
		c.steppers[dtMS] = stepper
	}
	c.stepMu.Unlock()
	return stepper, nil
}

// buildResult aggregates per-block power and temperatures into the
// caller-facing summary.
func (c *Chip) buildResult(states []CoreState, dyn, leak, temps []float64, coreIPC []float64, iters int) *EvalResult {
	res := &EvalResult{
		CorePowerW: make([]float64, c.NumCores()),
		CoreTempC:  make([]float64, c.NumCores()),
		CoreIPC:    coreIPC,
		BlockTempC: temps,
	}
	c.buildResultInto(res, states, dyn, leak, temps, iters)
	return res
}

// buildResultInto fills res's aggregates in place. res.CorePowerW,
// res.CoreTempC and res.BlockTempC must already be sized; temps may alias
// res.BlockTempC.
func (c *Chip) buildResultInto(res *EvalResult, states []CoreState, dyn, leak, temps []float64, iters int) {
	res.TotalW, res.DynW, res.StaticW, res.L2PowerW = 0, 0, 0, 0
	res.ThermalIters = iters
	clear(res.CorePowerW)
	for bi, b := range c.FP.Blocks {
		p := dyn[bi] + leak[bi]
		res.TotalW += p
		res.DynW += dyn[bi]
		res.StaticW += leak[bi]
		if b.Kind == floorplan.UnitL2 {
			res.L2PowerW += p
		} else {
			res.CorePowerW[b.Core] += p
		}
	}
	for core := 0; core < c.NumCores(); core++ {
		res.CoreTempC[core] = c.Therm.CoreMeanTemp(temps, core)
	}
}

// CoreStaticCached returns core's static power at supply v and uniform
// block temperature tempC using the per-die leakage cache; it matches
// power.Model.CoreStaticW.
func (c *Chip) CoreStaticCached(core int, v, tempC float64) float64 {
	sum := 0.0
	for bi, b := range c.FP.Blocks {
		if b.Core == core {
			sum += c.Power.BlockStaticFromCache(c.blockVthEff[bi], c.blockRefW[bi], c.Maps.VthSigmaRan, v, tempC)
		}
	}
	return sum
}

// OffStates returns a state slice with every core powered off, for callers
// that activate a subset.
func (c *Chip) OffStates() []CoreState {
	return make([]CoreState, c.NumCores())
}
