package dynamic

import (
	"reflect"
	"sync"
	"testing"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

var (
	buildOnce sync.Once
	theChip   *chip.Chip
	theCPU    *cpusim.Model
	buildErr  error
)

// testParts builds one characterised die plus the calibration it was built
// with (horizon tests need the latter to rebuild aged variants). 64x64
// grids keep the fixture fast; the engine does not care about resolution.
func testParts(t testing.TB) (*chip.Chip, *cpusim.Model) {
	t.Helper()
	buildOnce.Do(func() {
		g, err := varmodel.NewGenerator(testVarCfg())
		if err != nil {
			buildErr = err
			return
		}
		maps, err := g.Die(8, 0)
		if err != nil {
			buildErr = err
			return
		}
		theChip, buildErr = chip.Build(maps, floorplan.New20CoreCMP(), delay.DefaultConfig(),
			power.DefaultModel(testVarCfg().Tech), thermal.DefaultConfig())
		if buildErr != nil {
			return
		}
		theCPU, buildErr = cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return theChip, theCPU
}

func testVarCfg() varmodel.Config {
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 64, 64
	return cfg
}

func mustPolicy(t testing.TB, name string) sched.Policy {
	t.Helper()
	p, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func baseConfig(t testing.TB) Config {
	c, cpu := testParts(t)
	return Config{
		Chip: c, CPU: cpu,
		Scheduler: mustPolicy(t, sched.NameVarFAppIPC),
		DtMS:      2, OSIntervalMS: 10,
		Seed: 2008,
	}
}

func TestValidation(t *testing.T) {
	c, cpu := testParts(t)
	pol := mustPolicy(t, sched.NameVarFAppIPC)
	apps := workload.Mix(stats.NewRNG(1), 4)
	bad := []struct {
		name string
		cfg  Config
		apps []*workload.AppProfile
		dur  float64
	}{
		{"nil chip", Config{CPU: cpu, Scheduler: pol}, apps, 10},
		{"nil scheduler", Config{Chip: c, CPU: cpu}, apps, 10},
		{"recover above trip", Config{Chip: c, CPU: cpu, Scheduler: pol, EmergencyC: 70, RecoverC: 80}, apps, 10},
		{"negative migration penalty", Config{Chip: c, CPU: cpu, Scheduler: pol, MigrationPenaltyMS: -1}, apps, 10},
		{"empty workload", Config{Chip: c, CPU: cpu, Scheduler: pol}, nil, 10},
		{"too many threads", Config{Chip: c, CPU: cpu, Scheduler: pol}, workload.Mix(stats.NewRNG(1), 21), 10},
		{"zero duration", Config{Chip: c, CPU: cpu, Scheduler: pol}, apps, 0},
		{"offsets length", Config{Chip: c, CPU: cpu, Scheduler: pol, StartOffsetsMS: []float64{1, 2}}, apps, 10},
	}
	for _, tc := range bad {
		if _, err := Run(tc.cfg, tc.apps, tc.dur); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestRunBasicsAndDeterminism(t *testing.T) {
	cfg := baseConfig(t)
	apps := workload.Mix(stats.NewRNG(3), 8)
	a, err := Run(cfg, apps, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != 15 || a.DurationMS != 30 {
		t.Fatalf("steps=%d duration=%v", a.Steps, a.DurationMS)
	}
	if a.MIPS <= 0 || a.AvgPowerW <= 0 || a.WeightedTP <= 0 {
		t.Fatalf("degenerate stats: %+v", a)
	}
	amb := cfg.Chip.Therm.Config().AmbientC
	if a.MaxTempC <= amb || a.FinalMaxTempC <= amb {
		t.Fatalf("chip never heated: max %v final %v (ambient %v)", a.MaxTempC, a.FinalMaxTempC, amb)
	}
	if a.WearoutMax <= 0 {
		t.Fatal("no aging accumulated")
	}
	for i, ins := range a.Instructions {
		if ins <= 0 {
			t.Fatalf("thread %d retired nothing", i)
		}
	}
	b, err := Run(cfg, apps, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different results")
	}
}

func TestPartialFinalStep(t *testing.T) {
	cfg := baseConfig(t)
	apps := workload.Mix(stats.NewRNG(3), 4)
	// 2 ms steps into a 7 ms window: 3 full steps + one 1 ms remainder.
	r, err := Run(cfg, apps, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps != 4 {
		t.Fatalf("steps = %d, want 4", r.Steps)
	}
}

func TestThrottleGovernorEngages(t *testing.T) {
	cfg := baseConfig(t)
	apps := workload.Mix(stats.NewRNG(3), 16)
	calm, err := Run(cfg, apps, 40)
	if err != nil {
		t.Fatal(err)
	}
	if calm.Emergencies != 0 || calm.ThrottledMS != 0 {
		t.Fatalf("default 85C threshold tripped at quick scale: %+v", calm)
	}
	// A threshold below the observed peak must trip, throttle, and cap the
	// peak below the unthrottled run's.
	hot := cfg
	hot.EmergencyC = calm.MaxTempC - 4
	hot.RecoverC = hot.EmergencyC - 2
	tr, err := Run(hot, apps, 40)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Emergencies == 0 || tr.ThrottledMS <= 0 {
		t.Fatalf("governor never engaged: %+v", tr)
	}
	if tr.MaxTempC >= calm.MaxTempC {
		t.Fatalf("throttled peak %v not below unthrottled %v", tr.MaxTempC, calm.MaxTempC)
	}
	if tr.MIPS >= calm.MIPS {
		t.Fatalf("throttling was free: %v vs %v MIPS", tr.MIPS, calm.MIPS)
	}
}

func TestMigrationPenaltyCostsThroughput(t *testing.T) {
	cfg := baseConfig(t)
	// The random policy re-draws the mapping every OS interval, so
	// migrations are plentiful and deterministic for a fixed seed.
	cfg.Scheduler = mustPolicy(t, sched.NameRandom)
	apps := workload.Mix(stats.NewRNG(3), 8)
	free, err := Run(cfg, apps, 40)
	if err != nil {
		t.Fatal(err)
	}
	if free.Migrations == 0 {
		t.Fatal("random policy never migrated")
	}
	cfg.MigrationPenaltyMS = 5
	paid, err := Run(cfg, apps, 40)
	if err != nil {
		t.Fatal(err)
	}
	if paid.Migrations != free.Migrations {
		t.Fatalf("penalty changed the schedule: %d vs %d migrations", paid.Migrations, free.Migrations)
	}
	if paid.MIPS >= free.MIPS {
		t.Fatalf("migration penalty was free: %v vs %v MIPS", paid.MIPS, free.MIPS)
	}
}

func TestStartOffsetsShiftPhases(t *testing.T) {
	cfg := baseConfig(t)
	// swim's phase cycle is 420 ms; starting 5 ms before the first boundary
	// guarantees a crossing inside a 30 ms window that an offset-free run
	// cannot see.
	app, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	apps := []*workload.AppProfile{app}
	plain, err := Run(cfg, apps, 30)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PhaseSwitches != 0 {
		t.Fatalf("30 ms window crossed a 210 ms phase: %+v", plain)
	}
	cfg.StartOffsetsMS = []float64{205}
	shifted, err := Run(cfg, apps, 30)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.PhaseSwitches == 0 {
		t.Fatal("offset run saw no phase switch")
	}
	if shifted.MIPS == plain.MIPS {
		t.Fatal("phase switch did not change throughput")
	}
}

func TestHorizonEpochsAndAgingDirection(t *testing.T) {
	c, _ := testParts(t)
	hc := HorizonConfig{
		Run:        baseConfig(t),
		DelayCfg:   delay.DefaultConfig(),
		PowerCfg:   power.DefaultModel(testVarCfg().Tech),
		ThermalCfg: thermal.DefaultConfig(),
		Years:      []float64{3, 7},
	}
	apps := workload.Mix(stats.NewRNG(3), 8)
	res, err := RunHorizon(hc, apps, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	fresh := res.Epochs[0]
	if fresh.Years != 0 || fresh.DVthMaxV != 0 {
		t.Fatalf("fresh epoch: %+v", fresh)
	}
	prevShift := 0.0
	for _, ep := range res.Epochs[1:] {
		if ep.DVthMaxV <= prevShift {
			t.Fatalf("Vth drift not growing: %v after %v", ep.DVthMaxV, prevShift)
		}
		prevShift = ep.DVthMaxV
		// NBTI raises Vth: aged cores bin no faster and leak no more.
		if ep.MinFmaxHz > fresh.MinFmaxHz {
			t.Fatalf("%g-year die bins faster than fresh", ep.Years)
		}
		if ep.Result.AvgPowerW >= fresh.Result.AvgPowerW {
			t.Fatalf("%g-year die burns more than fresh (%v vs %v W)",
				ep.Years, ep.Result.AvgPowerW, fresh.Result.AvgPowerW)
		}
	}
	// The original chip must be untouched by the horizon's map cloning.
	if got := minFmax(c); got != fresh.MinFmaxHz {
		t.Fatalf("base die mutated: minFmax %v vs %v", got, fresh.MinFmaxHz)
	}
}

func TestHorizonValidation(t *testing.T) {
	hc := HorizonConfig{
		Run:        baseConfig(t),
		DelayCfg:   delay.DefaultConfig(),
		PowerCfg:   power.DefaultModel(testVarCfg().Tech),
		ThermalCfg: thermal.DefaultConfig(),
	}
	apps := workload.Mix(stats.NewRNG(3), 4)
	for _, years := range [][]float64{{-1}, {0}, {3, 3}, {7, 3}} {
		bad := hc
		bad.Years = years
		if _, err := RunHorizon(bad, apps, 10); err == nil {
			t.Errorf("years %v accepted", years)
		}
	}
	noChip := hc
	noChip.Run.Chip = nil
	if _, err := RunHorizon(noChip, apps, 10); err == nil {
		t.Fatal("missing base chip accepted")
	}
}

func TestAgeMaps(t *testing.T) {
	c, _ := testParts(t)
	fp := c.FP
	dVth := make([]float64, fp.NumCores)
	dVth[0] = 0.05
	aged, err := AgeMaps(c.Maps, fp, dVth)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0's mean rises by roughly the shift (block edges do not align
	// exactly with grid cells); everything else is untouched.
	r0 := fp.CoreRect(0)
	before := c.Maps.VthMeanOverRect(r0.X0, r0.Y0, r0.X1, r0.Y1)
	after := aged.VthMeanOverRect(r0.X0, r0.Y0, r0.X1, r0.Y1)
	if d := after - before; d < 0.8*0.05 || d > 0.05+1e-12 {
		t.Fatalf("core 0 mean moved by %v, want ~0.05", d)
	}
	// An unshifted core's mean barely moves (edge cells shared with core
	// 0's rectangle may pick up the neighbour's drift, nothing more).
	r19 := fp.CoreRect(19)
	if d := aged.VthMeanOverRect(r19.X0, r19.Y0, r19.X1, r19.Y1) - c.Maps.VthMeanOverRect(r19.X0, r19.Y0, r19.X1, r19.Y1); d > 0.1*0.05 {
		t.Fatalf("unshifted core drifted by %v", d)
	}
	// Source maps must be unmodified (fresh die keeps its identity).
	if got := c.Maps.VthMeanOverRect(r0.X0, r0.Y0, r0.X1, r0.Y1); got != before {
		t.Fatal("AgeMaps mutated its input")
	}
	if _, err := AgeMaps(c.Maps, fp, dVth[:3]); err == nil {
		t.Fatal("short shift vector accepted")
	}
	dVth[1] = -0.01
	if _, err := AgeMaps(c.Maps, fp, dVth); err == nil {
		t.Fatal("negative shift accepted")
	}
}

// BenchmarkDynamicStep measures the per-tick cost of the engine (the
// steady-state loop: transient step + scheduling cadence + wearout).
func BenchmarkDynamicStep(b *testing.B) {
	cfg := baseConfig(b)
	cfg.DtMS = 1
	apps := workload.Mix(stats.NewRNG(3), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, apps, 50); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50, "sim_ms/op")
}
