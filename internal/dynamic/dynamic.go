// Package dynamic is the time-stepped scenario engine: where package core
// executes the paper's steady-state evaluation timeline, this engine
// advances the thermal RC network tick by tick (thermal.Transient behind
// chip.EvaluateTransientInto, zero allocations per tick), re-evaluates
// per-core power from each thread's *current* workload phase, throttles
// DVFS on thermal emergencies with hysteresis (pm.ThrottleGovernor), and
// feeds a wearout.Accumulator every tick so long-horizon runs (horizon.go)
// can degrade Vth across simulated years and re-schedule against the
// drifted die.
//
// Everything is deterministic: results are a pure function of (Config,
// apps, duration). The engine backs the ext-transient, ext-phase-mig and
// ext-wearout experiments, whose goldens pin its behaviour byte-for-byte
// across worker counts, cluster shards, and cache states.
package dynamic

import (
	"context"
	"errors"
	"fmt"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/metrics"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/sensors"
	"vasched/internal/stats"
	"vasched/internal/trace"
	"vasched/internal/wearout"
	"vasched/internal/workload"
)

// Config assembles one dynamic scenario run.
type Config struct {
	// Chip is the characterised die and CPU the calibrated core model.
	Chip *chip.Chip
	CPU  *cpusim.Model
	// Scheduler re-maps threads every OS interval; temperature-aware
	// policies see the transient temperatures of the previous tick.
	Scheduler sched.Policy
	// DtMS is the integration step (default 1 ms). Smaller steps resolve
	// faster thermal transients at proportional cost; the backward-Euler
	// stepper is unconditionally stable, so large steps lose resolution,
	// not correctness.
	DtMS float64
	// OSIntervalMS is the re-scheduling cadence (default 10 ms).
	OSIntervalMS float64
	// EmergencyC trips the thermal throttle; RecoverC releases it
	// (defaults 85 / 80). See pm.ThrottleGovernor for the hysteresis
	// rationale.
	EmergencyC float64
	RecoverC   float64
	// MigrationPenaltyMS is the stall charged to a thread each time the
	// scheduler moves it to a different core (cold caches, state
	// transfer). The thread burns power but retires no instructions for
	// this long after a migration.
	MigrationPenaltyMS float64
	// SensorNoise is the relative sigma of profiling measurements.
	SensorNoise float64
	// StartOffsetsMS, when non-nil, gives each thread a head start into
	// its phase cycle (len must equal the thread count). The phase-shift
	// experiments use it to place threads near phase boundaries so a
	// short window still crosses them; progress and instruction counts
	// still start at zero.
	StartOffsetsMS []float64
	// Wearout calibrates the aging model; the zero value selects
	// wearout.DefaultParams.
	Wearout wearout.Params
	// Seed drives every stochastic choice.
	Seed int64
	// Ctx carries tracing state only; results must not depend on it.
	Ctx context.Context
}

func (c *Config) setDefaults() {
	if c.DtMS <= 0 {
		c.DtMS = 1
	}
	if c.OSIntervalMS <= 0 {
		c.OSIntervalMS = 10
	}
	if c.EmergencyC == 0 {
		c.EmergencyC = 85
	}
	if c.RecoverC == 0 {
		c.RecoverC = c.EmergencyC - 5
	}
	if c.Wearout == (wearout.Params{}) {
		c.Wearout = wearout.DefaultParams()
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Chip == nil || c.CPU == nil {
		return errors.New("dynamic: Chip and CPU are required")
	}
	if c.Scheduler == nil {
		return errors.New("dynamic: Scheduler is required")
	}
	if c.RecoverC > c.EmergencyC {
		return fmt.Errorf("dynamic: recover threshold %.1fC above emergency %.1fC", c.RecoverC, c.EmergencyC)
	}
	if c.MigrationPenaltyMS < 0 {
		return fmt.Errorf("dynamic: negative migration penalty %v", c.MigrationPenaltyMS)
	}
	return nil
}

// Result aggregates one dynamic run.
type Result struct {
	// DurationMS is the simulated time and Steps the tick count.
	DurationMS float64
	Steps      int
	// AvgPowerW and MIPS are time-averaged chip power and throughput;
	// WeightedTP normalises each thread by its reference speed.
	AvgPowerW  float64
	MIPS       float64
	WeightedTP float64
	// MaxTempC is the hottest block temperature seen over the run;
	// FinalMaxTempC the hottest at the last tick (transient state).
	MaxTempC      float64
	FinalMaxTempC float64
	// Emergencies counts throttle escalations and ThrottledMS the
	// simulated time spent with a non-zero clamp.
	Emergencies int
	ThrottledMS float64
	// Migrations counts threads moved between cores at OS re-schedules;
	// PhaseSwitches counts workload phase-boundary crossings observed.
	Migrations    int
	PhaseSwitches int
	// Instructions is per-thread executed instruction counts.
	Instructions []float64
	// WearoutIndex is the per-core aging rate relative to nominal,
	// WearoutMax its maximum, and EquivalentTime the per-core integrated
	// equivalent stress time (the quantity horizon runs extrapolate).
	WearoutIndex   []float64
	WearoutMax     float64
	EquivalentTime []float64
}

// Run executes the scenario for durationMS simulated milliseconds.
func Run(cfg Config, apps []*workload.AppProfile, durationMS float64) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.Chip
	if len(apps) == 0 {
		return nil, errors.New("dynamic: empty workload")
	}
	if len(apps) > c.NumCores() {
		return nil, fmt.Errorf("dynamic: %d threads exceed %d cores", len(apps), c.NumCores())
	}
	if durationMS <= 0 {
		return nil, fmt.Errorf("dynamic: non-positive duration %v", durationMS)
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	rng := stats.NewRNG(cfg.Seed)
	noise := sensors.NewNoise(cfg.SensorNoise, rng.Derive(1))
	schedRNG := rng.Derive(2)
	profRNG := rng.Derive(4)

	governor, err := pm.NewThrottleGovernor(cfg.EmergencyC, cfg.RecoverC)
	if err != nil {
		return nil, err
	}
	aging, err := wearout.NewAccumulator(cfg.Wearout, c.NumCores())
	if err != nil {
		return nil, err
	}

	nT := len(apps)
	if cfg.StartOffsetsMS != nil && len(cfg.StartOffsetsMS) != nT {
		return nil, fmt.Errorf("dynamic: %d start offsets for %d threads", len(cfg.StartOffsetsMS), nT)
	}
	coreInfos := sensors.CoreInfos(c)
	elapsed := make([]float64, nT)
	if cfg.StartOffsetsMS != nil {
		copy(elapsed, cfg.StartOffsetsMS)
	}
	instructions := make([]float64, nT)
	stallMS := make([]float64, nT)
	phaseIdx := make([]int, nT)
	refIPS := make([]float64, nT)
	for i, a := range apps {
		ipc, err := cfg.CPU.SteadyIPC(a, c.Tech.FNominalHz)
		if err != nil {
			return nil, err
		}
		refIPS[i] = ipc * c.Tech.FNominalHz
		phaseIdx[i], _ = a.PhaseIndexAt(elapsed[i])
	}

	// Per-tick reusable state: the engine allocates nothing inside the
	// stepping loop. prevTemps chains the transient thermal state; eval's
	// slices are recycled by EvaluateTransientInto.
	states := c.OffStates()
	prevTemps := c.Therm.AmbientTemps(nil)
	var eval chip.EvalResult
	ipcs := make([]float64, nT)
	freqs := make([]float64, nT)
	coreVolts := make([]float64, c.NumCores())
	var assignment sched.Assignment

	var powerAcc, mipsAcc, wtpAcc metrics.Accumulator
	res := &Result{DurationMS: durationMS}
	top := len(c.Levels) - 1
	depth := 0

	now := 0.0
	nextOS := 0.0
	for now < durationMS-1e-9 {
		dt := cfg.DtMS
		if rem := durationMS - now; dt > rem {
			dt = rem
		}
		stepCtx, sp := trace.Start(ctx, "dynamic.step",
			trace.Int("tick", res.Steps), trace.Int("depth", depth))

		// OS interval: re-profile and re-map. Temperature-aware policies
		// see the previous tick's transient temperatures — on a cold chip,
		// ambient everywhere.
		if now >= nextOS-1e-9 {
			for i := range coreInfos {
				coreInfos[i].TempC = c.Therm.CoreMeanTemp(prevTemps, i)
			}
			threadInfos, err := sensors.ProfileThreads(c, cfg.CPU, apps, elapsed, noise, profRNG)
			if err != nil {
				sp.End()
				return nil, err
			}
			next, err := cfg.Scheduler.Assign(coreInfos, threadInfos, schedRNG)
			if err != nil {
				sp.End()
				return nil, err
			}
			if err := next.Validate(c.NumCores()); err != nil {
				sp.End()
				return nil, err
			}
			if assignment != nil {
				moved := 0
				for t := range next {
					if next[t] != assignment[t] {
						moved++
						stallMS[t] += cfg.MigrationPenaltyMS
					}
				}
				if moved > 0 {
					res.Migrations += moved
					trace.Event(stepCtx, "dynamic.migrate", trace.Int("threads", moved))
				}
			}
			assignment = next
			nextOS += cfg.OSIntervalMS
		}

		// Operating points: every thread runs at the top ladder level minus
		// the chip-wide emergency clamp, floored at its core's lowest
		// feasible level.
		for i := range states {
			states[i] = chip.CoreState{}
		}
		for t, app := range apps {
			coreID := assignment[t]
			lvl := top - depth
			if min := c.MinLevelIndex(coreID); lvl < min {
				lvl = min
			}
			v := c.Levels[lvl]
			f := c.FmaxAt(coreID, v)
			states[coreID] = chip.CoreState{App: app, V: v, F: f, ElapsedMS: elapsed[t]}
			freqs[t] = f
		}

		if err := c.EvaluateTransientInto(&eval, states, cfg.CPU, prevTemps, dt); err != nil {
			sp.End()
			return nil, err
		}
		copy(prevTemps, eval.BlockTempC)

		// Progress, stalls (migration and any residual), phase crossings.
		for t, app := range apps {
			ipcs[t] = eval.CoreIPC[assignment[t]]
			if stallMS[t] > 0 {
				stall := stallMS[t]
				if stall > dt {
					stall = dt
				}
				stallMS[t] -= stall
				ipcs[t] *= 1 - stall/dt
			}
			instructions[t] += ipcs[t] * freqs[t] * dt / 1000
			elapsed[t] += dt
			if idx, _ := app.PhaseIndexAt(elapsed[t]); idx != phaseIdx[t] {
				phaseIdx[t] = idx
				res.PhaseSwitches++
			}
		}

		// Wearout integrates the transient temperatures and live voltages.
		for core := range coreVolts {
			coreVolts[core] = states[core].V // 0 when powered off
		}
		if err := aging.Add(eval.CoreTempC, coreVolts, dt); err != nil {
			sp.End()
			return nil, err
		}

		// Thermal emergency governor: observe this tick's peak, adjust the
		// clamp for the next.
		mt := c.Therm.MaxTemp(eval.BlockTempC)
		if mt > res.MaxTempC {
			res.MaxTempC = mt
		}
		res.FinalMaxTempC = mt
		newDepth, tripped := governor.Observe(mt, top)
		if tripped {
			trace.Event(stepCtx, "dynamic.emergency",
				trace.Int("depth", newDepth), trace.String("maxC", fmt.Sprintf("%.1f", mt)))
		}
		depth = newDepth
		if depth > 0 {
			res.ThrottledMS += dt
		}

		powerAcc.Add(eval.TotalW, dt)
		mips := metrics.MIPS(ipcs, freqs)
		wtp, err := metrics.WeightedThroughput(ipcs, freqs, refIPS)
		if err != nil {
			sp.End()
			return nil, err
		}
		mipsAcc.Add(mips, dt)
		wtpAcc.Add(wtp, dt)

		sp.End()
		res.Steps++
		now += dt
	}

	res.AvgPowerW = powerAcc.Mean()
	res.MIPS = mipsAcc.Mean()
	res.WeightedTP = wtpAcc.Mean()
	res.Emergencies = governor.Emergencies()
	res.Instructions = instructions
	res.WearoutIndex = aging.Index()
	res.WearoutMax = aging.Max()
	res.EquivalentTime = aging.EquivalentTime()
	return res, nil
}
