package dynamic

import (
	"fmt"
	"math"

	"vasched/internal/chip"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

// HorizonConfig extends a dynamic run across simulated years: the base run
// measures each core's aging *rate* (wearout index); the horizon
// extrapolates that rate to a sequence of ages, shifts each core's
// threshold voltage by the NBTI power law, rebuilds the chip from the
// drifted variation maps, and re-runs the scenario — so the scheduler
// re-decides against the die it will actually have at that age.
type HorizonConfig struct {
	// Run is the per-epoch scenario; Run.Chip is the fresh (age-0) die.
	Run Config
	// DelayCfg, PowerCfg, ThermalCfg re-characterise the drifted die
	// (chip.Build needs the same calibration the fresh die was built with).
	DelayCfg   delay.Config
	PowerCfg   power.Model
	ThermalCfg thermal.Config
	// Years lists the ages to evaluate after the fresh-die epoch; each
	// must be positive and increasing.
	Years []float64
	// DVthScaleV and Exponent calibrate the NBTI drift power law
	//
	//	dVth(core) = DVthScaleV * (index(core) * years)^Exponent
	//
	// where index is the core's measured wearout rate (equivalent nominal
	// years aged per year of operation). Defaults 0.04 V and 0.2 — Vth
	// drifts tens of millivolts over a ~7-year service life at nominal
	// stress, with the classic fast-then-flat t^0.2 shape.
	DVthScaleV float64
	Exponent   float64
}

func (h *HorizonConfig) setDefaults() {
	if h.DVthScaleV == 0 {
		h.DVthScaleV = 0.04
	}
	if h.Exponent == 0 {
		h.Exponent = 0.2
	}
}

// Epoch is one age's outcome.
type Epoch struct {
	// Years is the simulated age (0 = fresh die).
	Years float64
	// DVthMaxV is the largest per-core threshold shift applied.
	DVthMaxV float64
	// MinFmaxHz is the slowest core's rated frequency on the aged die —
	// the binning consequence of wearout.
	MinFmaxHz float64
	// Result is the scenario outcome on the aged die.
	Result *Result
}

// HorizonResult is the sequence of epochs, fresh die first.
type HorizonResult struct {
	Epochs []Epoch
}

// RunHorizon executes the fresh-die scenario, then one scenario per
// requested age on the correspondingly drifted die. Deterministic: every
// epoch reuses the same Config seed, so epoch-to-epoch differences isolate
// the die drift itself.
func RunHorizon(cfg HorizonConfig, apps []*workload.AppProfile, durationMS float64) (*HorizonResult, error) {
	cfg.setDefaults()
	base := cfg.Run.Chip
	if base == nil {
		return nil, fmt.Errorf("dynamic: horizon requires a base chip")
	}
	prev := 0.0
	for _, y := range cfg.Years {
		if y <= prev {
			return nil, fmt.Errorf("dynamic: horizon years must be positive and increasing, got %v", cfg.Years)
		}
		prev = y
	}

	fresh, err := Run(cfg.Run, apps, durationMS)
	if err != nil {
		return nil, err
	}
	out := &HorizonResult{Epochs: []Epoch{{
		Years:     0,
		MinFmaxHz: minFmax(base),
		Result:    fresh,
	}}}

	dVth := make([]float64, base.NumCores())
	for _, years := range cfg.Years {
		maxShift := 0.0
		for core, rate := range fresh.WearoutIndex {
			if rate <= 0 {
				dVth[core] = 0
				continue
			}
			dVth[core] = cfg.DVthScaleV * math.Pow(rate*years, cfg.Exponent)
			if dVth[core] > maxShift {
				maxShift = dVth[core]
			}
		}
		agedMaps, err := AgeMaps(base.Maps, base.FP, dVth)
		if err != nil {
			return nil, err
		}
		aged, err := chip.Build(agedMaps, base.FP, cfg.DelayCfg, cfg.PowerCfg, cfg.ThermalCfg)
		if err != nil {
			return nil, fmt.Errorf("dynamic: rebuilding %.1f-year die: %w", years, err)
		}
		epochCfg := cfg.Run
		epochCfg.Chip = aged
		res, err := Run(epochCfg, apps, durationMS)
		if err != nil {
			return nil, err
		}
		out.Epochs = append(out.Epochs, Epoch{
			Years:     years,
			DVthMaxV:  maxShift,
			MinFmaxHz: minFmax(aged),
			Result:    res,
		})
	}
	return out, nil
}

// AgeMaps returns a new die-map set with each core's systematic Vth raised
// by its drift (NBTI raises |Vth|: aged cores are slower and leak less).
// The shared L2 region is left undrifted — its cells see far lower duty
// cycles — mirroring how abb.Apply scopes bias to core rectangles. The
// original maps are not modified.
func AgeMaps(maps *varmodel.DieMaps, fp *floorplan.Floorplan, dVth []float64) (*varmodel.DieMaps, error) {
	if len(dVth) != fp.NumCores {
		return nil, fmt.Errorf("dynamic: %d Vth shifts for %d cores", len(dVth), fp.NumCores)
	}
	for core, dv := range dVth {
		if dv < 0 {
			return nil, fmt.Errorf("dynamic: negative Vth drift %v for core %d", dv, core)
		}
	}
	clone := *maps
	field := *maps.VthSys
	field.Data = append([]float64(nil), maps.VthSys.Data...)
	clone.VthSys = &field

	rows, cols := field.Rows, field.Cols
	for r := 0; r < rows; r++ {
		y := (float64(r) + 0.5) / float64(rows)
		for c := 0; c < cols; c++ {
			x := (float64(c) + 0.5) / float64(cols)
			bi := fp.BlockAt(x, y)
			if bi < 0 {
				continue
			}
			core := fp.Blocks[bi].Core
			if core < 0 {
				continue // L2 does not drift
			}
			field.Data[r*cols+c] += dVth[core]
		}
	}
	return &clone, nil
}

// minFmax returns the slowest core's rated nominal-supply frequency.
func minFmax(c *chip.Chip) float64 {
	min := c.FmaxNominal(0)
	for core := 1; core < c.NumCores(); core++ {
		if f := c.FmaxNominal(core); f < min {
			min = f
		}
	}
	return min
}
