// Package parallel analyses barrier-synchronised parallel applications on
// a variation-affected CMP — the paper's third future-work extension
// ("analyzing the impact of the algorithms on parallel applications").
//
// A parallel job is N threads of the same code separated by barriers:
// every section completes when its *slowest* thread arrives, so
// core-to-core frequency variation directly becomes wasted wall-clock time
// on the fast cores (Balakrishnan et al.'s performance-asymmetry problem,
// discussed in the paper's related work). That changes the right answers:
// schedulers should pick cores with *similar* speeds, and power managers
// should maximise the minimum thread speed (pm.ObjMinSpeed) instead of the
// sum.
package parallel

import (
	"context"
	"errors"
	"fmt"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/pm"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Job describes a barrier-synchronised parallel application.
type Job struct {
	// App is the per-thread behaviour (one of the SPEC profiles).
	App *workload.AppProfile
	// Threads is the number of worker threads.
	Threads int
	// SectionInstr is the instructions each thread executes between
	// barriers.
	SectionInstr float64
	// Sections is the number of barrier intervals in the job.
	Sections int
}

// Validate reports job errors.
func (j Job) Validate() error {
	if j.App == nil {
		return errors.New("parallel: job has no application")
	}
	if j.Threads <= 0 || j.SectionInstr <= 0 || j.Sections <= 0 {
		return fmt.Errorf("parallel: invalid job %+v", j)
	}
	return nil
}

// Result summarises one job execution.
type Result struct {
	// TimeMS is the job's wall-clock completion time.
	TimeMS float64
	// AvgPowerW is the average chip power while running.
	AvgPowerW float64
	// EnergyJ is total energy.
	EnergyJ float64
	// BarrierWastePct is the share of aggregate thread-time spent waiting
	// at barriers (0 on a perfectly homogeneous machine).
	BarrierWastePct float64
	// SpeedThreads is each thread's achieved instructions-per-second.
	SpeedThreads []float64
}

// Run executes the job on the given cores of the chip at the given ladder
// levels (one per thread, aligned with cores). Each barrier section takes
// as long as its slowest thread; power is evaluated with the chip's full
// thermal model at the chosen operating points.
func Run(c *chip.Chip, cpu *cpusim.Model, job Job, cores []int, levels []int) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if len(cores) != job.Threads || len(levels) != job.Threads {
		return nil, fmt.Errorf("parallel: %d cores / %d levels for %d threads",
			len(cores), len(levels), job.Threads)
	}
	states := c.OffStates()
	speeds := make([]float64, job.Threads)
	for t, coreID := range cores {
		v := c.Levels[levels[t]]
		f := c.FmaxAt(coreID, v)
		if f <= 0 {
			return nil, fmt.Errorf("parallel: core %d infeasible at %.2f V", coreID, v)
		}
		states[coreID] = chip.CoreState{App: job.App, V: v, F: f}
	}
	res, err := c.Evaluate(states, cpu)
	if err != nil {
		return nil, err
	}
	slowest := 0.0
	for t, coreID := range cores {
		speeds[t] = res.CoreIPC[coreID] * states[coreID].F
		if t == 0 || speeds[t] < slowest {
			slowest = speeds[t]
		}
	}
	if slowest <= 0 {
		return nil, errors.New("parallel: a thread made no progress")
	}

	sectionTime := job.SectionInstr / slowest // seconds
	totalTime := sectionTime * float64(job.Sections)
	// Barrier waste: time each thread idles per section, summed.
	var busy, total float64
	for _, s := range speeds {
		busy += job.SectionInstr / s
		total += sectionTime
	}
	return &Result{
		TimeMS:          totalTime * 1000,
		AvgPowerW:       res.TotalW,
		EnergyJ:         res.TotalW * totalTime,
		BarrierWastePct: (1 - busy/total) * 100,
		SpeedThreads:    speeds,
	}, nil
}

// PickSimilarCores returns the n-core subset (of the chip's cores) with
// the most uniform rated frequencies — the scheduling answer for barrier
// workloads. It slides a window over the frequency-sorted core list and
// picks the window with the smallest max/min spread.
func PickSimilarCores(c *chip.Chip, n int) ([]int, error) {
	if n <= 0 || n > c.NumCores() {
		return nil, fmt.Errorf("parallel: cannot pick %d of %d cores", n, c.NumCores())
	}
	type cf struct {
		core int
		f    float64
	}
	all := make([]cf, c.NumCores())
	for i := range all {
		all[i] = cf{core: i, f: c.FmaxNominal(i)}
	}
	// Insertion sort by frequency (20 elements).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].f < all[j-1].f; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	best, bestSpread := 0, -1.0
	for s := 0; s+n <= len(all); s++ {
		spread := all[s+n-1].f / all[s].f
		if bestSpread < 0 || spread < bestSpread {
			best, bestSpread = s, spread
		}
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[best+i].core
	}
	return out, nil
}

// PickFastestCores returns the n highest-frequency cores (the VarF answer,
// which is right for throughput but wrong for barriers when the budget
// forces unequal operating points).
func PickFastestCores(c *chip.Chip, n int) ([]int, error) {
	if n <= 0 || n > c.NumCores() {
		return nil, fmt.Errorf("parallel: cannot pick %d of %d cores", n, c.NumCores())
	}
	type cf struct {
		core int
		f    float64
	}
	all := make([]cf, c.NumCores())
	for i := range all {
		all[i] = cf{core: i, f: c.FmaxNominal(i)}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].f > all[j-1].f; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].core
	}
	return out, nil
}

// NewJobPlatform builds the pm.Platform view of the job's threads on the
// chosen cores (power tables at the reference temperature, sensor IPC at
// each core's top operating point), so any power manager can set the job's
// per-core operating points.
func NewJobPlatform(c *chip.Chip, cpu *cpusim.Model, job Job, cores []int) (pm.Platform, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if len(cores) != job.Threads {
		return nil, fmt.Errorf("parallel: %d cores for %d threads", len(cores), job.Threads)
	}
	phase := workload.Phase{IPCScale: 1, PowerScale: 1}
	n := job.Threads
	jp := &jobPlatform{
		levels: c.Levels,
		freq:   make([][]float64, n),
		power:  make([][]float64, n),
		ipc:    make([]float64, n),
		refIPS: make([]float64, n),
		uncore: c.Power.L2StaticW(c.Maps, c.FP, c.Tech.TRefC),
	}
	ref, err := cpu.SteadyIPC(job.App, c.Tech.FNominalHz)
	if err != nil {
		return nil, err
	}
	for t, coreID := range cores {
		jp.freq[t] = make([]float64, len(c.Levels))
		jp.power[t] = make([]float64, len(c.Levels))
		jp.refIPS[t] = ref * c.Tech.FNominalHz
		for li, v := range c.Levels {
			f := c.FmaxAt(coreID, v)
			jp.freq[t][li] = f
			if f <= 0 {
				continue
			}
			ipcAt, err := cpu.IPC(job.App, phase, f)
			if err != nil {
				return nil, err
			}
			stat := c.CoreStaticCached(coreID, v, c.Tech.TRefC)
			dyn := c.Power.DynamicCoreW(job.App.DynPowerW, job.App.IPCNom, v, f, ipcAt)
			jp.power[t][li] = stat + dyn
		}
		top := jp.freq[t][len(c.Levels)-1]
		ipcTop, err := cpu.IPC(job.App, phase, top)
		if err != nil {
			return nil, err
		}
		jp.ipc[t] = ipcTop
	}
	return jp, nil
}

// jobPlatform implements pm.Platform over precomputed tables.
type jobPlatform struct {
	levels []float64
	freq   [][]float64
	power  [][]float64
	ipc    []float64
	refIPS []float64
	uncore float64
}

func (p *jobPlatform) NumCores() int            { return len(p.ipc) }
func (p *jobPlatform) NumLevels() int           { return len(p.levels) }
func (p *jobPlatform) VoltageAt(l int) float64  { return p.levels[l] }
func (p *jobPlatform) FreqAt(c, l int) float64  { return p.freq[c][l] }
func (p *jobPlatform) PowerAt(c, l int) float64 { return p.power[c][l] }
func (p *jobPlatform) IPC(c int) float64        { return p.ipc[c] }
func (p *jobPlatform) UncorePowerW() float64    { return p.uncore }
func (p *jobPlatform) RefIPS(c int) float64     { return p.refIPS[c] }

// Budgeted solves the job's operating points with the given manager and
// budget on the given cores, then runs the job. It is the glue the
// ext-parallel experiment and tests use. The context only carries
// tracing state for the manager's decision span.
func Budgeted(ctx context.Context, c *chip.Chip, cpu *cpusim.Model, job Job, cores []int, mgr pm.Manager, budget pm.Budget, rngSeed int64) (*Result, error) {
	plat, err := NewJobPlatform(c, cpu, job, cores)
	if err != nil {
		return nil, err
	}
	levels, err := mgr.Decide(ctx, plat, budget, stats.NewRNG(rngSeed))
	if err != nil {
		return nil, err
	}
	return Run(c, cpu, job, cores, levels)
}
