package parallel

import (
	"context"
	"math"
	"sync"
	"testing"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/pm"
	"vasched/internal/power"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

var (
	once    sync.Once
	theChip *chip.Chip
	theCPU  *cpusim.Model
	bErr    error
)

func parts(t *testing.T) (*chip.Chip, *cpusim.Model) {
	t.Helper()
	once.Do(func() {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 128, 128
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			bErr = err
			return
		}
		maps, err := g.Die(1, 0)
		if err != nil {
			bErr = err
			return
		}
		theChip, bErr = chip.Build(maps, floorplan.New20CoreCMP(), delay.DefaultConfig(),
			power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
		if bErr != nil {
			return
		}
		theCPU, bErr = cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return theChip, theCPU
}

func testJob(t *testing.T, threads int) Job {
	t.Helper()
	app, err := workload.ByName("swim") // classic barrier-parallel FP code
	if err != nil {
		t.Fatal(err)
	}
	return Job{App: app, Threads: threads, SectionInstr: 1e7, Sections: 10}
}

func TestJobValidation(t *testing.T) {
	app, _ := workload.ByName("swim")
	bad := []Job{
		{},
		{App: app, Threads: 0, SectionInstr: 1, Sections: 1},
		{App: app, Threads: 2, SectionInstr: 0, Sections: 1},
		{App: app, Threads: 2, SectionInstr: 1, Sections: 0},
	}
	for i, j := range bad {
		if j.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunBasics(t *testing.T) {
	c, cpu := parts(t)
	job := testJob(t, 4)
	cores, err := PickSimilarCores(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	top := len(c.Levels) - 1
	levels := []int{top, top, top, top}
	res, err := Run(c, cpu, job, cores, levels)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeMS <= 0 || res.AvgPowerW <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if len(res.SpeedThreads) != 4 {
		t.Fatalf("speeds: %v", res.SpeedThreads)
	}
	if res.BarrierWastePct < 0 || res.BarrierWastePct > 60 {
		t.Fatalf("barrier waste %v%% implausible", res.BarrierWastePct)
	}
}

func TestSimilarCoresWasteLessThanFastest(t *testing.T) {
	// At full voltage, a frequency-matched core set must waste less
	// barrier time than the set of outright fastest cores, which spans a
	// wider frequency range on a variation-affected die... unless the
	// fastest cores happen to be tightly matched; assert non-strictly.
	c, cpu := parts(t)
	job := testJob(t, 6)
	top := len(c.Levels) - 1
	levels := []int{top, top, top, top, top, top}

	similar, err := PickSimilarCores(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	fastest, err := PickFastestCores(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Run(c, cpu, job, similar, levels)
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := Run(c, cpu, job, fastest, levels)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.BarrierWastePct > fastRes.BarrierWastePct+1e-9 {
		t.Fatalf("similar cores waste %v%% > fastest cores %v%%",
			simRes.BarrierWastePct, fastRes.BarrierWastePct)
	}
}

func TestPickersValidate(t *testing.T) {
	c, _ := parts(t)
	if _, err := PickSimilarCores(c, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := PickFastestCores(c, 21); err == nil {
		t.Fatal("too many cores accepted")
	}
	fast, err := PickFastestCores(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The fastest set must be sorted fastest-first and genuinely fastest.
	for i := 1; i < 3; i++ {
		if c.FmaxNominal(fast[i]) > c.FmaxNominal(fast[i-1]) {
			t.Fatal("fastest cores not sorted")
		}
	}
}

func TestMinSpeedObjectiveBeatsMIPSForBarriers(t *testing.T) {
	// Under a tight budget, LinOpt maximising total MIPS starves some
	// thread (barrier time suffers); the ObjMinSpeed variant lifts the
	// slowest thread and finishes the job sooner.
	c, cpu := parts(t)
	job := testJob(t, 8)
	cores, err := PickFastestCores(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	budget := pm.Budget{PTargetW: 22, PCoreMaxW: 7}
	mips, err := Budgeted(context.Background(), c, cpu, job, cores, pm.NewLinOpt(), budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	minSpeed, err := Budgeted(context.Background(), c, cpu, job, cores,
		pm.LinOpt{FitPoints: 3, Objective: pm.ObjMinSpeed}, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	if minSpeed.TimeMS > mips.TimeMS*1.001 {
		t.Fatalf("min-speed objective slower for barriers: %v ms vs %v ms",
			minSpeed.TimeMS, mips.TimeMS)
	}
	if minSpeed.AvgPowerW > budget.PTargetW*1.05 {
		t.Fatalf("min-speed run power %v exceeds budget %v", minSpeed.AvgPowerW, budget.PTargetW)
	}
}

func TestMinSpeedObjectiveEqualisesSpeeds(t *testing.T) {
	c, cpu := parts(t)
	job := testJob(t, 8)
	cores, err := PickFastestCores(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	budget := pm.Budget{PTargetW: 22, PCoreMaxW: 7}
	spread := func(res *Result) float64 {
		lo, hi := math.Inf(1), 0.0
		for _, s := range res.SpeedThreads {
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		return hi / lo
	}
	mips, err := Budgeted(context.Background(), c, cpu, job, cores, pm.NewLinOpt(), budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	minSpeed, err := Budgeted(context.Background(), c, cpu, job, cores,
		pm.LinOpt{FitPoints: 3, Objective: pm.ObjMinSpeed}, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spread(minSpeed) > spread(mips)+1e-9 {
		t.Fatalf("min-speed spread %v not tighter than MIPS spread %v",
			spread(minSpeed), spread(mips))
	}
}

func TestRunValidation(t *testing.T) {
	c, cpu := parts(t)
	job := testJob(t, 4)
	if _, err := Run(c, cpu, job, []int{0, 1}, []int{8, 8}); err == nil {
		t.Fatal("mismatched cores accepted")
	}
	if _, err := NewJobPlatform(c, cpu, job, []int{1}); err == nil {
		t.Fatal("mismatched platform cores accepted")
	}
}
