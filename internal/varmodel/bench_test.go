package varmodel

import "testing"

// BenchmarkDieBatch measures the batched die pipeline end to end at the
// QuickEnv map resolution: per op, Batch generates 16 dies (32 maps
// through 16 pruned transform pairs, all landing in one slab). ns/die is
// the comparable unit against two BenchmarkCirculantSample ops, which is
// what one die cost on the one-at-a-time path.
func BenchmarkDieBatch(b *testing.B) {
	const dies = 16
	cfg := DefaultConfig()
	cfg.GridRows, cfg.GridCols = 128, 128
	g, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Batch(7, dies); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*dies), "ns/die")
}
