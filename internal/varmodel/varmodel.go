// Package varmodel implements the VARIUS within-die process-variation
// model (Sarangi et al., Teodorescu et al.): threshold voltage (Vth) and
// effective gate length (Leff) vary across the die as the sum of a
// spatially correlated systematic component and a per-transistor random
// component. The systematic component is a Gaussian random field with
// spherical correlation of range phi; the random component is white noise
// whose effect on delay and leakage is applied analytically (paths average
// it over their gates, leakage integrates its lognormal uplift).
package varmodel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"vasched/internal/grf"
	"vasched/internal/stats"
	"vasched/internal/tech"
)

// Config selects the statistical parameters of the variation model.
type Config struct {
	// VthSigmaOverMu is total sigma/mu for Vth (paper default 0.12, range
	// 0.03-0.12 in Figure 5).
	VthSigmaOverMu float64
	// SystematicFraction is the share of total *variance* carried by the
	// systematic component. The paper assumes equal variances (0.5).
	SystematicFraction float64
	// Phi is the spatial-correlation range of the systematic component as
	// a fraction of chip width (paper: 0.5).
	Phi float64
	// LeffSigmaRatio scales Leff's sigma/mu from Vth's (paper: 0.5).
	LeffSigmaRatio float64
	// GridRows/GridCols set the map resolution. The paper generated 1 M
	// points per chip with geoR; 256x256 resolves 20 cores x 6 units with
	// >500 cells per unit, which is where block statistics saturate.
	GridRows, GridCols int
	// Tech supplies nominal parameter values.
	Tech tech.Params
}

// DefaultConfig returns the paper's Table 4 settings.
func DefaultConfig() Config {
	return Config{
		VthSigmaOverMu:     0.12,
		SystematicFraction: 0.5,
		Phi:                0.5,
		LeffSigmaRatio:     0.5,
		GridRows:           256,
		GridCols:           256,
		Tech:               tech.Default(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.VthSigmaOverMu < 0 || c.VthSigmaOverMu > 0.5 {
		return fmt.Errorf("varmodel: sigma/mu %v outside [0, 0.5]", c.VthSigmaOverMu)
	}
	if c.SystematicFraction < 0 || c.SystematicFraction > 1 {
		return fmt.Errorf("varmodel: systematic fraction %v outside [0,1]", c.SystematicFraction)
	}
	if c.Phi <= 0 || c.Phi > 2 {
		return fmt.Errorf("varmodel: phi %v outside (0,2]", c.Phi)
	}
	if c.GridRows <= 0 || c.GridCols <= 0 {
		return fmt.Errorf("varmodel: invalid grid %dx%d", c.GridRows, c.GridCols)
	}
	return c.Tech.Validate()
}

// SigmaVth returns the total, systematic, and random standard deviations of
// Vth in volts.
func (c Config) SigmaVth() (total, sys, ran float64) {
	total = c.VthSigmaOverMu * c.Tech.VthNominal
	sys = total * math.Sqrt(c.SystematicFraction)
	ran = total * math.Sqrt(1-c.SystematicFraction)
	return total, sys, ran
}

// SigmaLeff returns the total, systematic, and random standard deviations
// of Leff in meters.
func (c Config) SigmaLeff() (total, sys, ran float64) {
	total = c.VthSigmaOverMu * c.LeffSigmaRatio * c.Tech.LeffNominal
	sys = total * math.Sqrt(c.SystematicFraction)
	ran = total * math.Sqrt(1-c.SystematicFraction)
	return total, sys, ran
}

// DieMaps holds one die's systematic variation maps plus the random-
// component sigmas that downstream models apply analytically.
type DieMaps struct {
	Cfg Config
	// VthSys and LeffSys are the systematic components (zero-mean offsets
	// from nominal, in volts and meters respectively).
	VthSys  *grf.Field
	LeffSys *grf.Field
	// VthSigmaRan and LeffSigmaRan are the random-component standard
	// deviations (per transistor).
	VthSigmaRan  float64
	LeffSigmaRan float64
	// Seed identifies the die within its batch.
	Seed int64
}

// VthAt returns the systematic Vth in volts at normalised point (x, y):
// nominal plus the local systematic offset. Random variation is not
// included; callers sample it per path or apply its analytic uplift.
func (d *DieMaps) VthAt(x, y float64) float64 {
	return d.Cfg.Tech.VthNominal + d.VthSys.AtPoint(x, y)
}

// LeffAt returns the systematic Leff in meters at normalised point (x, y).
func (d *DieMaps) LeffAt(x, y float64) float64 {
	return d.Cfg.Tech.LeffNominal + d.LeffSys.AtPoint(x, y)
}

// VthMeanOverRect returns the mean systematic Vth over a block rectangle.
func (d *DieMaps) VthMeanOverRect(x0, y0, x1, y1 float64) float64 {
	return d.Cfg.Tech.VthNominal + d.VthSys.MeanOverRect(x0, y0, x1, y1)
}

// LeffMeanOverRect returns the mean systematic Leff over a block rectangle.
func (d *DieMaps) LeffMeanOverRect(x0, y0, x1, y1 float64) float64 {
	return d.Cfg.Tech.LeffNominal + d.LeffSys.MeanOverRect(x0, y0, x1, y1)
}

// Generator produces batches of statistically independent dies that share
// one Config. It owns the (expensive) spectral decompositions, so
// generating 200 dies costs 200 FFTs, not 200 factorizations.
//
// A Generator is safe for concurrent use: Die and Batch serialise on an
// internal mutex, which protects both the single-entry pair cache and the
// samplers' shared scratch/spare state. Callers that want parallel die
// generation should shard indices across per-worker Generators (die
// identity is a pure function of (batchSeed, index), so the split is
// free) rather than hammering one instance.
type Generator struct {
	cfg         Config
	vthSampler  grf.Sampler
	leffSampler grf.Sampler

	// mu guards pair and the samplers (their FFT scratch buffers and
	// spare-field caches are per-sampler mutable state).
	mu sync.Mutex
	// pair holds the unconsumed halves of the last transform pair, so an
	// in-order batch walk (die 2k, then 2k+1) still costs one FFT per die
	// per parameter even though Die is addressable in any order.
	pair *diePair
	// samples counts underlying sampler invocations (one per map drawn
	// from a transform, i.e. two per computed pair). The die cache's
	// "warm run regenerates nothing" tests assert on its deltas.
	samples atomic.Int64
}

// diePair caches the second fields of the transform pair computed for an
// even die, keyed by the (batchSeed, base) that seeded it.
type diePair struct {
	batchSeed int64
	base      int
	vthB      *grf.Field
	leffB     *grf.Field
}

// NewGenerator validates cfg and prepares the field samplers.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	_, vthSys, _ := cfg.SigmaVth()
	_, leffSys, _ := cfg.SigmaLeff()
	vs, err := grf.NewSampler(grf.Config{
		Rows: cfg.GridRows, Cols: cfg.GridCols, Phi: cfg.Phi, Sigma: vthSys,
	})
	if err != nil {
		return nil, fmt.Errorf("varmodel: Vth sampler: %w", err)
	}
	ls, err := grf.NewSampler(grf.Config{
		Rows: cfg.GridRows, Cols: cfg.GridCols, Phi: cfg.Phi, Sigma: leffSys,
	})
	if err != nil {
		return nil, fmt.Errorf("varmodel: Leff sampler: %w", err)
	}
	return &Generator{cfg: cfg, vthSampler: vs, leffSampler: ls}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// SampleCount returns the cumulative number of sampler invocations (maps
// drawn through the underlying field samplers) this generator has
// performed. A cache layer that claims to have avoided regeneration can
// be audited by diffing this counter around the supposedly-warm run.
func (g *Generator) SampleCount() int64 { return g.samples.Load() }

// Die generates the die with the given index. The maps are a pure
// function of (batchSeed, index): die k's fields do not depend on which
// dies were generated before it, in what order, or on which process — the
// property that makes a die batch shardable across cluster workers and a
// parallel local build bit-identical to a serial one.
//
// Circulant sampling yields two independent fields per transform, so the
// canonical sequence pairs dies: die 2k takes the real part and die 2k+1
// the imaginary part of the transform seeded by die 2k. Addressing an odd
// die in isolation recomputes its pair's transform from that seed.
func (g *Generator) Die(batchSeed int64, index int) (*DieMaps, error) {
	g.mu.Lock()
	vth, leff, err := g.fields(batchSeed, index)
	g.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return g.dieMaps(batchSeed, index, vth, leff), nil
}

// dieMaps wraps one die's freshly sampled fields in their DieMaps.
func (g *Generator) dieMaps(batchSeed int64, index int, vth, leff *grf.Field) *DieMaps {
	_, _, vthRan := g.cfg.SigmaVth()
	_, _, leffRan := g.cfg.SigmaLeff()
	return &DieMaps{
		Cfg:          g.cfg,
		VthSys:       vth,
		LeffSys:      leff,
		VthSigmaRan:  vthRan,
		LeffSigmaRan: leffRan,
		Seed:         batchSeed*1_000_003 + int64(index),
	}
}

// fields samples the systematic Vth and Leff maps for one die. Callers
// hold g.mu.
func (g *Generator) fields(batchSeed int64, index int) (*grf.Field, *grf.Field, error) {
	vcs, vok := g.vthSampler.(*grf.CirculantSampler)
	lcs, lok := g.leffSampler.(*grf.CirculantSampler)
	if !vok || !lok {
		// Dense samplers draw one field per call from the die's own
		// stream; they are order-independent as they stand.
		rng := stats.NewRNG(batchSeed*1_000_003 + int64(index))
		g.samples.Add(2)
		vth, err := g.vthSampler.Sample(rng.Derive(1))
		if err != nil {
			return nil, nil, fmt.Errorf("varmodel: sampling Vth map: %w", err)
		}
		leff, err := g.leffSampler.Sample(rng.Derive(2))
		if err != nil {
			return nil, nil, fmt.Errorf("varmodel: sampling Leff map: %w", err)
		}
		return vth, leff, nil
	}
	base := index &^ 1
	if p := g.pair; p != nil && index&1 == 1 && p.batchSeed == batchSeed && p.base == base {
		g.pair = nil
		return p.vthB, p.leffB, nil
	}
	rng := stats.NewRNG(batchSeed*1_000_003 + int64(base))
	g.samples.Add(2)
	vthA, vthB, err := vcs.SamplePair(rng.Derive(1))
	if err != nil {
		return nil, nil, fmt.Errorf("varmodel: sampling Vth map: %w", err)
	}
	leffA, leffB, err := lcs.SamplePair(rng.Derive(2))
	if err != nil {
		return nil, nil, fmt.Errorf("varmodel: sampling Leff map: %w", err)
	}
	if index&1 == 0 {
		g.pair = &diePair{batchSeed: batchSeed, base: base, vthB: vthB, leffB: leffB}
		return vthA, leffA, nil
	}
	g.pair = nil
	return vthB, leffB, nil
}

// Batch generates dies 0..n-1 for the given batch seed. With circulant
// samplers it rides the batched pipeline: both maps of every die land in
// one slab allocation and each transform pair is drawn via SamplePairInto
// with exactly the per-pair RNG derivation the one-at-a-time Die path
// uses (NewRNG(batchSeed*1_000_003 + base), Derive(1) for Vth, Derive(2)
// for Leff), so the result is byte-identical to n sequential Die calls —
// the batch-purity tests pin this.
func (g *Generator) Batch(batchSeed int64, n int) ([]*DieMaps, error) {
	if n < 0 {
		return nil, fmt.Errorf("varmodel: negative batch size %d", n)
	}
	vcs, vok := g.vthSampler.(*grf.CirculantSampler)
	lcs, lok := g.leffSampler.(*grf.CirculantSampler)
	if !vok || !lok {
		dies := make([]*DieMaps, n)
		for i := range dies {
			d, err := g.Die(batchSeed, i)
			if err != nil {
				return nil, err
			}
			dies[i] = d
		}
		return dies, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	fn := g.cfg.GridRows * g.cfg.GridCols
	pairs := (n + 1) / 2
	// Layout per pair: vthA, vthB, leffA, leffB — four maps, two dies.
	slab := make([]float64, 4*pairs*fn)
	field := func(i int) *grf.Field {
		return &grf.Field{Rows: g.cfg.GridRows, Cols: g.cfg.GridCols, Data: slab[i*fn : (i+1)*fn : (i+1)*fn]}
	}
	dies := make([]*DieMaps, n)
	for p := 0; p < pairs; p++ {
		base := 2 * p
		vthA, vthB := field(4*p), field(4*p+1)
		leffA, leffB := field(4*p+2), field(4*p+3)
		rng := stats.NewRNG(batchSeed*1_000_003 + int64(base))
		g.samples.Add(2)
		if err := vcs.SamplePairInto(rng.Derive(1), vthA, vthB); err != nil {
			return nil, fmt.Errorf("varmodel: sampling Vth map: %w", err)
		}
		if err := lcs.SamplePairInto(rng.Derive(2), leffA, leffB); err != nil {
			return nil, fmt.Errorf("varmodel: sampling Leff map: %w", err)
		}
		dies[base] = g.dieMaps(batchSeed, base, vthA, leffA)
		if base+1 < n {
			dies[base+1] = g.dieMaps(batchSeed, base+1, vthB, leffB)
		}
	}
	return dies, nil
}
