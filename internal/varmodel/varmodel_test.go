package varmodel

import (
	"math"
	"testing"

	"vasched/internal/stats"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GridRows, cfg.GridCols = 64, 64 // keep tests fast
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.VthSigmaOverMu = -0.1 },
		func(c *Config) { c.VthSigmaOverMu = 0.9 },
		func(c *Config) { c.SystematicFraction = 1.5 },
		func(c *Config) { c.Phi = 0 },
		func(c *Config) { c.GridRows = 0 },
	}
	for i, f := range mut {
		cfg := testConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSigmaDecomposition(t *testing.T) {
	cfg := testConfig()
	total, sys, ran := cfg.SigmaVth()
	if math.Abs(total-0.12*cfg.Tech.VthNominal) > 1e-12 {
		t.Fatalf("total sigma = %v", total)
	}
	// Equal variances: sys^2 == ran^2 == total^2/2.
	if math.Abs(sys-ran) > 1e-12 {
		t.Fatalf("sys %v != ran %v for fraction 0.5", sys, ran)
	}
	if math.Abs(sys*sys+ran*ran-total*total) > 1e-12 {
		t.Fatal("variances do not add up")
	}
	lt, ls, lr := cfg.SigmaLeff()
	if math.Abs(lt-0.5*0.12*cfg.Tech.LeffNominal) > 1e-20 {
		t.Fatalf("Leff total sigma = %v", lt)
	}
	if math.Abs(ls*ls+lr*lr-lt*lt) > 1e-30 {
		t.Fatal("Leff variances do not add up")
	}
}

func TestDieMapsStatistics(t *testing.T) {
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dies, err := g.Batch(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Pool all map cells: mean ~ 0 offset, std ~ sigma_sys.
	var all []float64
	for _, d := range dies {
		all = append(all, d.VthSys.Data...)
	}
	_, sys, _ := cfg.SigmaVth()
	if m := stats.Mean(all); math.Abs(m) > 0.15*sys {
		t.Fatalf("pooled systematic mean = %v", m)
	}
	if s := stats.StdDev(all); math.Abs(s-sys) > 0.1*sys {
		t.Fatalf("pooled systematic std = %v, want ~%v", s, sys)
	}
}

func TestDieDeterminismAndIndependence(t *testing.T) {
	cfg := testConfig()
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g1.Die(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g2.Die(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VthSys.Data {
		if a.VthSys.Data[i] != b.VthSys.Data[i] {
			t.Fatal("same (batch, index) produced different dies")
		}
	}
	c, err := g1.Die(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.VthSys.Data {
		if a.VthSys.Data[i] != c.VthSys.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different die indices produced identical maps")
	}
}

func TestVthLeffAccessors(t *testing.T) {
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Die(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := d.VthAt(0.3, 0.4)
	if v <= 0 || v > 2*cfg.Tech.VthNominal {
		t.Fatalf("VthAt = %v, implausible", v)
	}
	l := d.LeffAt(0.3, 0.4)
	if l <= 0 || l > 2*cfg.Tech.LeffNominal {
		t.Fatalf("LeffAt = %v, implausible", l)
	}
	// Rect means should be close to the point value for a small rect
	// around the point (systematic component is smooth).
	rm := d.VthMeanOverRect(0.29, 0.39, 0.31, 0.41)
	if math.Abs(rm-v) > 0.02*cfg.Tech.VthNominal {
		t.Fatalf("rect mean %v far from point value %v", rm, v)
	}
	if lm := d.LeffMeanOverRect(0.29, 0.39, 0.31, 0.41); math.Abs(lm-l) > 0.05*cfg.Tech.LeffNominal {
		t.Fatalf("Leff rect mean %v far from point value %v", lm, l)
	}
}

func TestSpatialSmoothness(t *testing.T) {
	// With phi = 0.5, neighbouring cells must be far more similar than
	// cells half a chip apart.
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var near, far []float64
	for i := 0; i < 20; i++ {
		d, err := g.Die(3, i)
		if err != nil {
			t.Fatal(err)
		}
		f := d.VthSys
		for r := 0; r < f.Rows; r++ {
			near = append(near, math.Abs(f.At(r, 0)-f.At(r, 1)))
			far = append(far, math.Abs(f.At(r, 0)-f.At(r, f.Cols/2)))
		}
	}
	if stats.Mean(near) > 0.4*stats.Mean(far) {
		t.Fatalf("field not smooth: near diff %v vs far diff %v",
			stats.Mean(near), stats.Mean(far))
	}
}

func TestSigmaOverMuZero(t *testing.T) {
	// A variation-free configuration must produce flat maps.
	cfg := testConfig()
	cfg.VthSigmaOverMu = 0
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Die(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.VthSys.Data {
		if v != 0 {
			t.Fatalf("zero-sigma die has offset %v", v)
		}
	}
	if d.VthSigmaRan != 0 {
		t.Fatalf("zero-sigma die has random sigma %v", d.VthSigmaRan)
	}
}

// TestDieOrderIndependence pins the property the cluster layer depends
// on: die k's maps are a pure function of (batchSeed, index), identical
// whether the batch is walked in order, sampled out of order, or a
// single die is regenerated in isolation (as a shard worker does). The
// circulant sampler's pair caching must not leak one call's randomness
// into the next.
func TestDieOrderIndependence(t *testing.T) {
	cfg := testConfig()
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := g1.Batch(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order and isolated walks on fresh generators: every die must
	// reproduce its in-order twin bit for bit (odd indices are the sharp
	// case: their fields come from the preceding even die's transform).
	for _, order := range [][]int{{5}, {3, 1}, {5, 0, 3, 4, 1, 2}, {1, 1}} {
		g2, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range order {
			d, err := g2.Die(3, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range d.VthSys.Data {
				if d.VthSys.Data[i] != batch[k].VthSys.Data[i] {
					t.Fatalf("die %d Vth map differs out of order (walk %v)", k, order)
				}
			}
			for i := range d.LeffSys.Data {
				if d.LeffSys.Data[i] != batch[k].LeffSys.Data[i] {
					t.Fatalf("die %d Leff map differs out of order (walk %v)", k, order)
				}
			}
		}
	}
	// A different batch seed interleaved mid-batch must not perturb the
	// pair cache into serving a stale sibling.
	g3, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Die(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Die(9, 0); err != nil {
		t.Fatal(err)
	}
	d, err := g3.Die(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.VthSys.Data {
		if d.VthSys.Data[i] != batch[1].VthSys.Data[i] {
			t.Fatal("interleaved batch seeds perturbed die 1")
		}
	}
}
