package varmodel

import (
	"math"
	"sync"
	"testing"

	"vasched/internal/stats"
)

// dieBitIdentical compares every map of two DieMaps at the bit level.
func dieBitIdentical(a, b *DieMaps) bool {
	if a.Seed != b.Seed || a.VthSigmaRan != b.VthSigmaRan || a.LeffSigmaRan != b.LeffSigmaRan {
		return false
	}
	for _, m := range [][2][]float64{{a.VthSys.Data, b.VthSys.Data}, {a.LeffSys.Data, b.LeffSys.Data}} {
		if len(m[0]) != len(m[1]) {
			return false
		}
		for i := range m[0] {
			if math.Float64bits(m[0][i]) != math.Float64bits(m[1][i]) {
				return false
			}
		}
	}
	return true
}

// TestBatchMatchesDieByDie is the core of the die-purity wall: for every
// batch parity, Batch must be byte-identical to one-at-a-time Die — in
// forward order, and in a shuffled order that breaks the even/odd pair
// cadence (so the single-entry pair cache never helps and every odd die
// is regenerated in isolation).
func TestBatchMatchesDieByDie(t *testing.T) {
	cfg := testConfig()
	for _, n := range []int{0, 1, 2, 5, 8} {
		gBatch, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := gBatch.Batch(31, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != n {
			t.Fatalf("Batch(%d) returned %d dies", n, len(batch))
		}

		gSeq, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			d, err := gSeq.Die(31, i)
			if err != nil {
				t.Fatal(err)
			}
			if !dieBitIdentical(batch[i], d) {
				t.Fatalf("n=%d: batch die %d differs from sequential Die", n, i)
			}
		}

		// Shuffled access order: odd dies first, then evens in reverse —
		// every fields() call takes the isolated-regeneration path.
		gShuf, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		order := make([]int, 0, n)
		for i := 1; i < n; i += 2 {
			order = append(order, i)
		}
		for i := n - 1; i >= 0; i-- {
			if i%2 == 0 {
				order = append(order, i)
			}
		}
		for _, i := range order {
			d, err := gShuf.Die(31, i)
			if err != nil {
				t.Fatal(err)
			}
			if !dieBitIdentical(batch[i], d) {
				t.Fatalf("n=%d: batch die %d differs from shuffled-order Die", n, i)
			}
		}
	}
	g, _ := NewGenerator(cfg)
	if _, err := g.Batch(1, -1); err == nil {
		t.Error("negative batch size accepted")
	}
}

// TestDieConcurrentSafe hammers one Generator from many goroutines (mixed
// Die and Batch calls, overlapping indices) and checks every result
// against a serially generated reference. Under -race this also proves
// the single-entry pair cache and the samplers' shared scratch are
// properly serialised.
func TestDieConcurrentSafe(t *testing.T) {
	cfg := testConfig()
	ref, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	want, err := ref.Batch(11, n)
	if err != nil {
		t.Fatal(err)
	}

	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				idx := (i + w) % n
				d, err := g.Die(11, idx)
				if err != nil {
					errCh <- err
					return
				}
				if !dieBitIdentical(want[idx], d) {
					t.Errorf("worker %d: die %d diverged under concurrency", w, idx)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dies, err := g.Batch(11, n)
		if err != nil {
			errCh <- err
			return
		}
		for i := range dies {
			if !dieBitIdentical(want[i], dies[i]) {
				t.Errorf("concurrent Batch: die %d diverged", i)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSampleCountAccounting pins the sampler-invocation counter the cache
// layer audits: a fresh n-die batch costs exactly two invocations per
// transform pair (Vth + Leff), an in-order walk costs the same, and a
// pair-cache hit costs zero.
func TestSampleCountAccounting(t *testing.T) {
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.SampleCount(); got != 0 {
		t.Fatalf("fresh generator SampleCount = %d", got)
	}
	if _, err := g.Batch(3, 8); err != nil { // 4 pairs
		t.Fatal(err)
	}
	if got := g.SampleCount(); got != 8 {
		t.Fatalf("Batch(8) SampleCount = %d, want 8", got)
	}
	if _, err := g.Die(3, 0); err != nil { // computes a pair, caches die 1
		t.Fatal(err)
	}
	if got := g.SampleCount(); got != 10 {
		t.Fatalf("after Die(0) SampleCount = %d, want 10", got)
	}
	if _, err := g.Die(3, 1); err != nil { // pair-cache hit
		t.Fatal(err)
	}
	if got := g.SampleCount(); got != 10 {
		t.Fatalf("pair-cache hit changed SampleCount to %d", got)
	}
}

// TestSeedDerivationRegression freezes the die-identity function. The die
// seed is batchSeed*1_000_003 + index and the transform pair for die k is
// seeded at base index k&^1 with map streams Derive(1) (Vth) and
// Derive(2) (Leff). Any refactor that changes these constants silently
// re-identifies every cached and golden die, so this test pins concrete
// values — and documents the collision space: within one batch, indices
// below 1_000_003 cannot collide, and two batches' index ranges cannot
// overlap unless their batch seeds differ by less than ceil(n/1_000_003).
func TestSeedDerivationRegression(t *testing.T) {
	cases := []struct {
		batchSeed int64
		index     int
		want      int64
	}{
		{0, 0, 0},
		{0, 7, 7},
		{1, 0, 1_000_003},
		{1, 2, 1_000_005},
		{42, 199, 42_000_325},
		{-3, 5, -3_000_004},
	}
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		d, err := g.Die(c.batchSeed, c.index)
		if err != nil {
			t.Fatal(err)
		}
		if d.Seed != c.want {
			t.Errorf("Die(%d,%d).Seed = %d, want %d", c.batchSeed, c.index, d.Seed, c.want)
		}
	}
	// Collision space: die seeds from distinct (batchSeed, index) pairs
	// with 0 <= index < 1_000_003 are distinct unless the batch seeds are
	// equal — the multiplier strictly dominates the index range.
	seen := map[int64][2]int64{}
	for _, bs := range []int64{-2, -1, 0, 1, 2, 1000, 1 << 40} {
		for idx := 0; idx < 512; idx++ {
			s := bs*1_000_003 + int64(idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], bs, idx, s)
			}
			seen[s] = [2]int64{bs, int64(idx)}
		}
	}
	// The pair base drops only the low bit: dies 2k and 2k+1 share a
	// transform, dies from different pairs never do.
	for idx := 0; idx < 8; idx++ {
		if got, want := idx&^1, (idx/2)*2; got != want {
			t.Fatalf("pair base of %d = %d, want %d", idx, got, want)
		}
	}
	// The per-pair stream layering (Derive(1)/Derive(2) off the pair
	// seed) keeps Vth and Leff maps decorrelated: equal pair seeds with
	// different labels must produce different child streams.
	r1 := stats.NewRNG(1_000_003).Derive(1)
	r2 := stats.NewRNG(1_000_003).Derive(2)
	if r1.Int63() == r2.Int63() {
		t.Fatal("Derive(1) and Derive(2) produced identical child streams")
	}
}
