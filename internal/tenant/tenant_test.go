package tenant

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestParseLane(t *testing.T) {
	cases := []struct {
		in   string
		want Lane
	}{
		{"control", LaneControl},
		{"interactive", LaneInteractive},
		{"", LaneInteractive},
		{"batch", LaneBatch},
	}
	for _, c := range cases {
		got, err := ParseLane(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseLane(%q) = %v, %v", c.in, got, err)
		}
		if c.in != "" && got.String() != c.in {
			t.Fatalf("Lane(%q).String() = %q", c.in, got)
		}
	}
	if _, err := ParseLane("bulk"); err == nil {
		t.Fatal("ParseLane accepted unknown lane")
	}
	if Lane(9).Valid() {
		t.Fatal("Lane(9) reported valid")
	}
}

// TestDequeuePriorityOrder pins the contended schedule: with one item
// per lane, dequeue order is exactly control, interactive, batch.
func TestDequeuePriorityOrder(t *testing.T) {
	c := NewController(Config{})
	for lane := Lane(0); lane < NumLanes; lane++ {
		c.Requeue(Item{ID: uint64(lane) + 1, Tenant: "t", Lane: lane})
	}
	want := []Lane{LaneControl, LaneInteractive, LaneBatch}
	for i, w := range want {
		it, ok := c.Dequeue()
		if !ok || it.Lane != w {
			t.Fatalf("dequeue %d = %v (ok=%v), want lane %v", i, it, ok, w)
		}
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("dequeue from empty controller succeeded")
	}
}

// TestDequeueWeightedShares pins the smooth-WRR shares: over one full
// cycle of 21 contended dequeues, control wins 16, interactive 4, and
// batch 1 — priority without starvation.
func TestDequeueWeightedShares(t *testing.T) {
	c := NewController(Config{LaneCapacity: 64})
	for i := 0; i < 30; i++ {
		for lane := Lane(0); lane < NumLanes; lane++ {
			c.Requeue(Item{ID: uint64(i*3+int(lane)) + 1, Tenant: "t", Lane: lane})
		}
	}
	var got [NumLanes]int
	for i := 0; i < 21; i++ {
		it, ok := c.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed", i)
		}
		got[it.Lane]++
	}
	if got != [NumLanes]int{16, 4, 1} {
		t.Fatalf("lane shares over one cycle = %v, want [16 4 1]", got)
	}
	// FIFO within a lane: the first control items out are the first in.
	c2 := NewController(Config{})
	c2.Requeue(Item{ID: 7, Tenant: "t", Lane: LaneControl})
	c2.Requeue(Item{ID: 8, Tenant: "t", Lane: LaneControl})
	if it, _ := c2.Dequeue(); it.ID != 7 {
		t.Fatalf("lane is not FIFO: first out = %d", it.ID)
	}
}

func TestCheckMirrorsAdmit(t *testing.T) {
	c := NewController(Config{MaxOpenPerTenant: 1, LaneCapacity: 1})
	if err := c.Check("a", LaneBatch); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(Item{ID: 1, Tenant: "a", Lane: LaneBatch}); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if err := c.Check("a", LaneControl); !errors.As(err, &qe) {
		t.Fatalf("over-quota Check = %v", err)
	}
	var lf *LaneFullError
	if err := c.Check("b", LaneBatch); !errors.As(err, &lf) {
		t.Fatalf("full-lane Check = %v", err)
	}
	if err := c.Check("b", Lane(9)); err == nil {
		t.Fatal("invalid lane accepted")
	}
}

func TestQuota(t *testing.T) {
	c := NewController(Config{MaxOpenPerTenant: 2, RetryAfter: 7 * time.Second})
	for i := uint64(1); i <= 2; i++ {
		if err := c.Admit(Item{ID: i, Tenant: "acme", Lane: LaneBatch}); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := c.Admit(Item{ID: 3, Tenant: "acme", Lane: LaneBatch})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third admit error = %v, want QuotaError", err)
	}
	if qe.Tenant != "acme" || qe.Open != 2 || qe.Limit != 2 || qe.RetryAfter != 7*time.Second {
		t.Fatalf("QuotaError = %+v", qe)
	}
	// Another tenant is unaffected.
	if err := c.Admit(Item{ID: 4, Tenant: "other", Lane: LaneBatch}); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	// The quota covers running jobs too: dequeue does not release.
	if _, ok := c.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if err := c.Admit(Item{ID: 5, Tenant: "acme", Lane: LaneBatch}); !errors.As(err, &qe) {
		t.Fatalf("quota released by dequeue: %v", err)
	}
	// A terminal job releases its charge.
	c.Release("acme")
	if err := c.Admit(Item{ID: 6, Tenant: "acme", Lane: LaneBatch}); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestLaneCapacity(t *testing.T) {
	c := NewController(Config{LaneCapacity: 1, MaxOpenPerTenant: 100})
	if err := c.Admit(Item{ID: 1, Tenant: "a", Lane: LaneBatch}); err != nil {
		t.Fatal(err)
	}
	err := c.Admit(Item{ID: 2, Tenant: "b", Lane: LaneBatch})
	var lf *LaneFullError
	if !errors.As(err, &lf) {
		t.Fatalf("second admit error = %v, want LaneFullError", err)
	}
	if lf.Lane != LaneBatch || lf.Depth != 1 || lf.Capacity != 1 || lf.RetryAfter <= 0 {
		t.Fatalf("LaneFullError = %+v", lf)
	}
	// Other lanes have their own capacity.
	if err := c.Admit(Item{ID: 3, Tenant: "b", Lane: LaneControl}); err != nil {
		t.Fatalf("control lane blocked by batch capacity: %v", err)
	}
	if err := c.Admit(Item{ID: 4, Tenant: "x", Lane: Lane(7)}); err == nil {
		t.Fatal("invalid lane admitted")
	}
}

func TestRemove(t *testing.T) {
	c := NewController(Config{MaxOpenPerTenant: 1})
	if err := c.Admit(Item{ID: 1, Tenant: "a", Lane: LaneInteractive}); err != nil {
		t.Fatal(err)
	}
	if !c.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Fatal("double Remove succeeded")
	}
	if c.Open("a") != 0 {
		t.Fatalf("open after remove = %d", c.Open("a"))
	}
	// The released charge admits a new job immediately.
	if err := c.Admit(Item{ID: 2, Tenant: "a", Lane: LaneInteractive}); err != nil {
		t.Fatal(err)
	}
	if d := c.Depths(); d != [NumLanes]int{0, 1, 0} {
		t.Fatalf("depths = %v", d)
	}
}

// TestConcurrentMixedTenantLoad hammers the controller from many
// goroutines (part of the race matrix) and checks the invariants that
// admission exists to enforce: quotas and lane capacities are never
// exceeded, and every admitted item is dequeued or removed exactly
// once.
func TestConcurrentMixedTenantLoad(t *testing.T) {
	const (
		tenants  = 4
		perT     = 50
		maxOpen  = 8
		capacity = 16
	)
	c := NewController(Config{MaxOpenPerTenant: maxOpen, LaneCapacity: capacity})
	var admitted, rejected, drained int64
	var mu sync.Mutex
	seen := make(map[uint64]int)

	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", tn)
			for i := 0; i < perT; i++ {
				id := uint64(tn*perT + i + 1)
				err := c.Admit(Item{ID: id, Tenant: name, Lane: Lane(i % NumLanes)})
				mu.Lock()
				if err == nil {
					admitted++
				} else {
					rejected++
				}
				mu.Unlock()
				if open := c.Open(name); open > maxOpen {
					t.Errorf("tenant %s open = %d > %d", name, open, maxOpen)
				}
			}
		}(tn)
	}
	// Two consumers drain concurrently, releasing charges as they go.
	done := make(chan struct{})
	var cwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				it, ok := c.Dequeue()
				if !ok {
					select {
					case <-done:
						if it, ok = c.Dequeue(); !ok {
							return
						}
					default:
						continue
					}
				}
				c.Release(it.Tenant)
				mu.Lock()
				drained++
				seen[it.ID]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()

	if admitted != drained {
		t.Fatalf("admitted %d but drained %d", admitted, drained)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d dequeued %d times", id, n)
		}
	}
	for _, d := range c.Depths() {
		if d != 0 {
			t.Fatalf("residual depth %v", c.Depths())
		}
	}
}

// TestFairnessUnderSaturation is the sustained-saturation property test:
// with every lane kept permanently full (each dequeued item is replaced
// immediately, the worst case a loaded coordinator sees), the delivered
// dequeue shares over 10k dequeues must match the configured 16/4/1
// smooth-WRR weights to within one scheduling cycle — smooth WRR is
// deterministic, so the tolerance is exact arithmetic, not statistics.
func TestFairnessUnderSaturation(t *testing.T) {
	const rounds = 10_000
	c := NewController(Config{LaneCapacity: 8, MaxOpenPerTenant: rounds * 2})
	id := uint64(1)
	for lane := Lane(0); lane < NumLanes; lane++ {
		for i := 0; i < 8; i++ {
			c.Requeue(Item{ID: id, Tenant: "sat", Lane: lane})
			id++
		}
	}
	for i := 0; i < rounds; i++ {
		it, ok := c.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed under saturation", i)
		}
		c.Release(it.Tenant) // keep the open count from growing unbounded
		c.Requeue(Item{ID: id, Tenant: "sat", Lane: it.Lane})
		id++
	}

	counts := c.DequeueCounts()
	weights := Weights()
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	for lane := 0; lane < NumLanes; lane++ {
		expected := float64(rounds) * float64(weights[lane]) / float64(totalW)
		// One full WRR cycle of slack: the run may end mid-cycle.
		slack := float64(weights[lane]) + 1
		if diff := math.Abs(float64(counts[lane]) - expected); diff > slack {
			t.Errorf("lane %s won %d of %d dequeues, want %.1f ± %.0f",
				Lane(lane), counts[lane], rounds, expected, slack)
		}
	}
	// No lane starves outright.
	for lane := 0; lane < NumLanes; lane++ {
		if counts[lane] == 0 {
			t.Errorf("lane %s starved over %d dequeues", Lane(lane), rounds)
		}
	}
}

// TestRetryAfterSaneUnderExhaustion pins the backpressure hints under
// sustained quota exhaustion: every rejection carries a positive,
// bounded Retry-After equal to the configured hint, for both error
// kinds, and the default is non-zero.
func TestRetryAfterSaneUnderExhaustion(t *testing.T) {
	c := NewController(Config{MaxOpenPerTenant: 1, LaneCapacity: 1, RetryAfter: 3 * time.Second})
	if err := c.Admit(Item{ID: 1, Tenant: "hog", Lane: LaneBatch}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		var qe *QuotaError
		if err := c.Admit(Item{ID: uint64(100 + i), Tenant: "hog", Lane: LaneBatch}); !errors.As(err, &qe) {
			t.Fatalf("exhausted admit %d = %v", i, err)
		} else if qe.RetryAfter != 3*time.Second || qe.RetryAfter <= 0 || qe.RetryAfter > time.Minute {
			t.Fatalf("QuotaError Retry-After = %v", qe.RetryAfter)
		}
		var lf *LaneFullError
		if err := c.Admit(Item{ID: uint64(500 + i), Tenant: "other", Lane: LaneBatch}); !errors.As(err, &lf) {
			t.Fatalf("full-lane admit %d = %v", i, err)
		} else if lf.RetryAfter != 3*time.Second {
			t.Fatalf("LaneFullError Retry-After = %v", lf.RetryAfter)
		}
	}
	// The zero-config default hint is positive and bounded too.
	d := NewController(Config{MaxOpenPerTenant: 1})
	if err := d.Admit(Item{ID: 1, Tenant: "t", Lane: LaneControl}); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if err := d.Admit(Item{ID: 2, Tenant: "t", Lane: LaneControl}); !errors.As(err, &qe) {
		t.Fatalf("default-config exhausted admit = %v", err)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > time.Minute {
		t.Fatalf("default Retry-After = %v", qe.RetryAfter)
	}
}

// TestDequeueCountsEmpty: uncontested and empty controllers report zero
// wins everywhere.
func TestDequeueCountsEmpty(t *testing.T) {
	c := NewController(Config{})
	if got := c.DequeueCounts(); got != [NumLanes]int64{} {
		t.Fatalf("fresh controller counts = %v", got)
	}
	if _, ok := c.Dequeue(); ok {
		t.Fatal("dequeue from empty controller succeeded")
	}
	if got := c.DequeueCounts(); got != [NumLanes]int64{} {
		t.Fatalf("failed dequeue counted: %v", got)
	}
}
