// Package tenant is the admission-control layer of the vaschedd job
// platform: per-tenant quotas, three priority lanes with weighted
// dequeue, and typed backpressure errors that the HTTP layer maps to
// 429 + Retry-After.
//
// Lanes are ordered control > interactive > batch. Dequeue uses smooth
// weighted round-robin (the nginx algorithm) over the non-empty lanes
// with weights 16/4/1, so control work dominates under contention but
// batch work never starves. The schedule is deterministic: for a fixed
// sequence of Enqueue/Dequeue calls the dequeue order is a pure
// function of that sequence, which is what makes lane-priority tests
// exact rather than statistical.
//
// The quota counts *open* jobs — queued plus running — per tenant:
// admission charges the tenant, and the charge is released only when
// the job reaches a terminal state (Release) or is removed from the
// queue (Remove). Boot-time replay re-enqueues via Requeue, which
// bypasses quota and capacity checks: jobs that were already admitted
// before a restart must not be dropped by their own admission layer.
package tenant

import (
	"fmt"
	"sync"
	"time"
)

// Lane is a priority lane. The zero value is LaneControl; ParseLane
// maps the wire names.
type Lane uint8

const (
	// LaneControl is for operator and control-plane work: it wins
	// most contended dequeues.
	LaneControl Lane = iota
	// LaneInteractive is the default lane for API submissions.
	LaneInteractive
	// LaneBatch is for bulk work that tolerates queueing delay.
	LaneBatch

	// NumLanes is the number of priority lanes.
	NumLanes = 3
)

// laneWeights drive the smooth weighted round-robin: of 21 contended
// dequeues, control wins 16, interactive 4, batch 1.
var laneWeights = [NumLanes]int{16, 4, 1}

// laneNames are the wire names (submit request "lane" field, metrics
// labels).
var laneNames = [NumLanes]string{"control", "interactive", "batch"}

// String returns the lane's wire name.
func (l Lane) String() string {
	if int(l) < len(laneNames) {
		return laneNames[l]
	}
	return fmt.Sprintf("lane(%d)", uint8(l))
}

// Valid reports whether l is one of the three defined lanes.
func (l Lane) Valid() bool { return l < NumLanes }

// ParseLane maps a wire name to a Lane. The empty string selects
// LaneInteractive, the default for API submissions.
func ParseLane(s string) (Lane, error) {
	switch s {
	case "control":
		return LaneControl, nil
	case "interactive", "":
		return LaneInteractive, nil
	case "batch":
		return LaneBatch, nil
	}
	return 0, fmt.Errorf("tenant: unknown lane %q (control, interactive, or batch)", s)
}

// Config bounds a Controller. Zero fields take the documented defaults.
type Config struct {
	// MaxOpenPerTenant caps a tenant's open (queued + running) jobs;
	// default 16.
	MaxOpenPerTenant int
	// LaneCapacity caps each lane's queue depth; default 64.
	LaneCapacity int
	// RetryAfter is the backoff hint attached to backpressure errors;
	// default 5s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxOpenPerTenant <= 0 {
		c.MaxOpenPerTenant = 16
	}
	if c.LaneCapacity <= 0 {
		c.LaneCapacity = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	return c
}

// QuotaError reports a tenant over its open-job quota.
type QuotaError struct {
	Tenant     string
	Open       int
	Limit      int
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q quota exceeded: %d open jobs (limit %d)", e.Tenant, e.Open, e.Limit)
}

// LaneFullError reports a lane at capacity.
type LaneFullError struct {
	Lane       Lane
	Depth      int
	Capacity   int
	RetryAfter time.Duration
}

func (e *LaneFullError) Error() string {
	return fmt.Sprintf("lane %q full: depth %d (capacity %d)", e.Lane, e.Depth, e.Capacity)
}

// Item is one queued job.
type Item struct {
	ID     uint64
	Tenant string
	Lane   Lane
}

// Controller is the admission controller: per-lane FIFO queues with
// weighted dequeue plus per-tenant open-job accounting. All methods
// are safe for concurrent use.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	queues  [NumLanes][]Item
	current [NumLanes]int // smooth-WRR credit
	// dequeues counts contested wins per lane — the fairness
	// observable: under saturation the counts converge to laneWeights.
	dequeues [NumLanes]int64
	open     map[string]int
}

// NewController returns a Controller with the given bounds.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), open: make(map[string]int)}
}

// Admit checks the tenant's quota and the lane's capacity, and on
// success enqueues the item and charges the tenant. On failure it
// returns a *QuotaError or *LaneFullError carrying a Retry-After hint.
func (c *Controller) Admit(it Item) error {
	if !it.Lane.Valid() {
		return fmt.Errorf("tenant: invalid lane %d", it.Lane)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if open := c.open[it.Tenant]; open >= c.cfg.MaxOpenPerTenant {
		return &QuotaError{Tenant: it.Tenant, Open: open, Limit: c.cfg.MaxOpenPerTenant, RetryAfter: c.cfg.RetryAfter}
	}
	if depth := len(c.queues[it.Lane]); depth >= c.cfg.LaneCapacity {
		return &LaneFullError{Lane: it.Lane, Depth: depth, Capacity: c.cfg.LaneCapacity, RetryAfter: c.cfg.RetryAfter}
	}
	c.enqueueLocked(it)
	return nil
}

// Check reports whether an Admit for (tenant, lane) would currently
// succeed, without enqueueing. Callers that need check-then-enqueue
// atomicity across other work (e.g. a WAL append between the two)
// serialise externally and pair Check with Requeue.
func (c *Controller) Check(tenant string, lane Lane) error {
	if !lane.Valid() {
		return fmt.Errorf("tenant: invalid lane %d", lane)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if open := c.open[tenant]; open >= c.cfg.MaxOpenPerTenant {
		return &QuotaError{Tenant: tenant, Open: open, Limit: c.cfg.MaxOpenPerTenant, RetryAfter: c.cfg.RetryAfter}
	}
	if depth := len(c.queues[lane]); depth >= c.cfg.LaneCapacity {
		return &LaneFullError{Lane: lane, Depth: depth, Capacity: c.cfg.LaneCapacity, RetryAfter: c.cfg.RetryAfter}
	}
	return nil
}

// Requeue enqueues without quota or capacity checks. It is the boot
// path: jobs replayed from the WAL were admitted in a previous
// coordinator lifetime and must not bounce off their own limits.
func (c *Controller) Requeue(it Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enqueueLocked(it)
}

func (c *Controller) enqueueLocked(it Item) {
	c.queues[it.Lane] = append(c.queues[it.Lane], it)
	c.open[it.Tenant]++
}

// Dequeue pops the next item by smooth weighted round-robin over the
// non-empty lanes. The dequeued job stays charged to its tenant until
// Release. ok is false when every lane is empty.
func (c *Controller) Dequeue() (it Item, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	best := -1
	for l := range c.queues {
		if len(c.queues[l]) == 0 {
			continue
		}
		c.current[l] += laneWeights[l]
		total += laneWeights[l]
		if best < 0 || c.current[l] > c.current[best] {
			best = l
		}
	}
	if best < 0 {
		return Item{}, false
	}
	c.current[best] -= total
	c.dequeues[best]++
	q := c.queues[best]
	it = q[0]
	copy(q, q[1:])
	c.queues[best] = q[:len(q)-1]
	return it, true
}

// DequeueCounts returns how many dequeues each lane has won since the
// controller was created, indexed by Lane. The ratio across lanes is
// the delivered (as opposed to configured) fairness, which the metrics
// layer and the load-test harness export and assert on.
func (c *Controller) DequeueCounts() [NumLanes]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dequeues
}

// Weights returns the configured smooth-WRR lane weights, indexed by
// Lane — the denominator for fairness assertions.
func Weights() [NumLanes]int {
	return laneWeights
}

// Remove deletes a queued item by ID (a cancel of a not-yet-claimed
// job) and releases its tenant charge. It reports whether the item was
// found.
func (c *Controller) Remove(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := range c.queues {
		for i, it := range c.queues[l] {
			if it.ID == id {
				c.queues[l] = append(c.queues[l][:i], c.queues[l][i+1:]...)
				c.releaseLocked(it.Tenant)
				return true
			}
		}
	}
	return false
}

// Release uncharges a tenant when one of its jobs reaches a terminal
// state.
func (c *Controller) Release(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked(tenant)
}

func (c *Controller) releaseLocked(tenant string) {
	if n := c.open[tenant]; n > 1 {
		c.open[tenant] = n - 1
	} else {
		delete(c.open, tenant)
	}
}

// Open returns a tenant's current open-job count.
func (c *Controller) Open(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.open[tenant]
}

// Depths returns the per-lane queue depths, indexed by Lane.
func (c *Controller) Depths() [NumLanes]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d [NumLanes]int
	for l := range c.queues {
		d[l] = len(c.queues[l])
	}
	return d
}
