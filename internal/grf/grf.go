// Package grf samples stationary Gaussian random fields on a regular 2-D
// grid. The variation model (package varmodel) uses it to generate the
// systematic component of Vth and Leff maps with the spherical spatial
// correlation structure the VARIUS model prescribes.
//
// Two samplers are provided: an exact circulant-embedding sampler built on
// the package fft transforms (the default, fast enough for the 256x256
// grids the experiments use), and a dense Cholesky sampler used as a
// cross-check and for very small grids.
package grf

import (
	"errors"
	"fmt"
	"math"

	"vasched/internal/stats"
)

// SphericalCorrelation returns the spherical correlation function rho(r)
// with range phi: rho(0)=1, decreasing smoothly, and exactly zero for
// r >= phi. This is the correlation structure used by VARIUS (and by the
// geoR package the paper used to generate its maps).
func SphericalCorrelation(r, phi float64) float64 {
	if r <= 0 {
		return 1
	}
	if r >= phi {
		return 0
	}
	t := r / phi
	return 1 - 1.5*t + 0.5*t*t*t
}

// Config describes the field to sample.
type Config struct {
	// Rows and Cols give the grid resolution. The grid covers the unit
	// square, matching the paper's convention of expressing the
	// correlation range phi as a fraction of the chip's width.
	Rows, Cols int
	// Phi is the correlation range as a fraction of the chip width.
	Phi float64
	// Sigma is the standard deviation of the (zero-mean) field.
	Sigma float64
}

func (c Config) validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("grf: non-positive grid %dx%d", c.Rows, c.Cols)
	}
	if c.Phi <= 0 {
		return errors.New("grf: correlation range phi must be positive")
	}
	if c.Sigma < 0 {
		return errors.New("grf: sigma must be non-negative")
	}
	return nil
}

// Field is one realisation of the random field on a Rows x Cols grid over
// the unit square, stored row-major.
type Field struct {
	Rows, Cols int
	Data       []float64
}

// At returns the field value at grid cell (r, c).
func (f *Field) At(r, c int) float64 { return f.Data[r*f.Cols+c] }

// AtPoint returns the field value at normalised chip coordinates
// (x, y) in [0,1), using the containing grid cell.
func (f *Field) AtPoint(x, y float64) float64 {
	c := int(x * float64(f.Cols))
	r := int(y * float64(f.Rows))
	if c >= f.Cols {
		c = f.Cols - 1
	}
	if r >= f.Rows {
		r = f.Rows - 1
	}
	if c < 0 {
		c = 0
	}
	if r < 0 {
		r = 0
	}
	return f.Data[r*f.Cols+c]
}

// MeanOverRect returns the mean field value over the axis-aligned rectangle
// [x0,x1) x [y0,y1) in normalised chip coordinates. Cores sample their
// systematic parameter values this way.
func (f *Field) MeanOverRect(x0, y0, x1, y1 float64) float64 {
	c0 := clampIndex(int(x0*float64(f.Cols)), f.Cols)
	c1 := clampIndex(int(math.Ceil(x1*float64(f.Cols))), f.Cols)
	r0 := clampIndex(int(y0*float64(f.Rows)), f.Rows)
	r1 := clampIndex(int(math.Ceil(y1*float64(f.Rows))), f.Rows)
	if c1 <= c0 {
		c1 = c0 + 1
	}
	if r1 <= r0 {
		r1 = r0 + 1
	}
	s, n := 0.0, 0
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			s += f.Data[r*f.Cols+c]
			n++
		}
	}
	return s / float64(n)
}

// MinOverRect returns the minimum field value over the rectangle, with the
// same coordinate conventions as MeanOverRect. The critical-path model uses
// it to find the slowest transistors in a core.
func (f *Field) MinOverRect(x0, y0, x1, y1 float64) float64 {
	c0 := clampIndex(int(x0*float64(f.Cols)), f.Cols)
	c1 := clampIndex(int(math.Ceil(x1*float64(f.Cols))), f.Cols)
	r0 := clampIndex(int(y0*float64(f.Rows)), f.Rows)
	r1 := clampIndex(int(math.Ceil(y1*float64(f.Rows))), f.Rows)
	if c1 <= c0 {
		c1 = c0 + 1
	}
	if r1 <= r0 {
		r1 = r0 + 1
	}
	m := math.Inf(1)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if v := f.Data[r*f.Cols+c]; v < m {
				m = v
			}
		}
	}
	return m
}

// MaxOverRect returns the maximum field value over the rectangle.
func (f *Field) MaxOverRect(x0, y0, x1, y1 float64) float64 {
	c0 := clampIndex(int(x0*float64(f.Cols)), f.Cols)
	c1 := clampIndex(int(math.Ceil(x1*float64(f.Cols))), f.Cols)
	r0 := clampIndex(int(y0*float64(f.Rows)), f.Rows)
	r1 := clampIndex(int(math.Ceil(y1*float64(f.Rows))), f.Rows)
	if c1 <= c0 {
		c1 = c0 + 1
	}
	if r1 <= r0 {
		r1 = r0 + 1
	}
	m := math.Inf(-1)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if v := f.Data[r*f.Cols+c]; v > m {
				m = v
			}
		}
	}
	return m
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// Sampler draws independent realisations of a configured field.
type Sampler interface {
	Sample(rng *stats.RNG) (*Field, error)
	Config() Config
}

// NewSampler returns the default sampler for cfg: circulant embedding for
// grids whose padded size is a power of two (always, since we pad), falling
// back to Cholesky only for tiny grids where dense sampling is cheaper.
func NewSampler(cfg Config) (Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rows*cfg.Cols <= 32*32 {
		return NewCholeskySampler(cfg)
	}
	return NewCirculantSampler(cfg)
}

// EstimateCorrelationRange estimates the spatial-correlation range phi of
// a batch of fields empirically: it computes the mean lag-r correlation
// along rows and returns the smallest normalised distance at which it
// falls below the threshold rho. Validation tooling uses it to confirm
// generated maps carry the configured range (the paper's geoR maps were
// validated the same way).
func EstimateCorrelationRange(fields []*Field, rho float64) (float64, error) {
	if len(fields) == 0 {
		return 0, errors.New("grf: no fields to estimate from")
	}
	if rho <= 0 || rho >= 1 {
		return 0, fmt.Errorf("grf: threshold %v outside (0,1)", rho)
	}
	cols := fields[0].Cols
	var norm float64
	prods := make([]float64, cols)
	counts := make([]int, cols)
	for _, f := range fields {
		if f.Cols != cols {
			return 0, errors.New("grf: fields differ in width")
		}
		for r := 0; r < f.Rows; r++ {
			for c := 0; c < f.Cols; c++ {
				v := f.At(r, c)
				norm += v * v
				for lag := 1; c+lag < f.Cols; lag++ {
					prods[lag] += v * f.At(r, c+lag)
					counts[lag]++
				}
			}
		}
	}
	if norm == 0 {
		return 0, errors.New("grf: fields are identically zero")
	}
	cells := 0
	for _, f := range fields {
		cells += f.Rows * f.Cols
	}
	variance := norm / float64(cells)
	for lag := 1; lag < cols; lag++ {
		if counts[lag] == 0 {
			continue
		}
		corr := prods[lag] / float64(counts[lag]) / variance
		if corr < rho {
			return float64(lag) / float64(cols), nil
		}
	}
	return 1, nil
}
