package grf

import (
	"fmt"
	"math"
	"sync"

	"vasched/internal/fft"
	"vasched/internal/stats"
)

// CirculantSampler draws exact samples of a stationary Gaussian field using
// circulant embedding (Dietrich & Newsam). The covariance of the field on a
// doubly-padded torus is diagonalised by the 2-D DFT; sampling is then one
// FFT of suitably scaled complex white noise. Each FFT yields two
// independent realisations (real and imaginary parts); the sampler caches
// the spare one.
type CirculantSampler struct {
	cfg          Config
	prows, pcols int          // padded (embedding) grid dimensions
	sqrtLambda   []float64    // sqrt of DFT eigenvalues; shared across samplers, read-only
	spare        *Field       // second field from the previous FFT, if unused
	scratch      []complex128 // reusable FFT buffer
	// ClippedPower reports the fraction of spectral mass discarded when
	// negative eigenvalues were clipped to zero. Zero means the embedding
	// was exactly non-negative definite.
	ClippedPower float64
}

// spectrum is the spectral decomposition of the base circulant for one
// Config. It is immutable after construction and shared by every sampler
// with that Config, so the O(n log n) eigen-decomposition is paid once per
// process rather than once per die batch.
type spectrum struct {
	prows, pcols int
	sqrtLambda   []float64
	clippedPower float64
}

var (
	spectraMu sync.Mutex
	spectra   = map[Config]*spectrum{} // bounded in practice: one entry per distinct process-variation config
)

// spectrumFor returns the shared decomposition for cfg, building it on
// first use. The build runs outside the lock; a racing duplicate build
// produces bit-identical tables, and the first one stored wins.
func spectrumFor(cfg Config) (*spectrum, error) {
	spectraMu.Lock()
	sp, ok := spectra[cfg]
	spectraMu.Unlock()
	if ok {
		return sp, nil
	}
	sp, err := buildSpectrum(cfg)
	if err != nil {
		return nil, err
	}
	spectraMu.Lock()
	if old, ok := spectra[cfg]; ok {
		sp = old
	} else {
		spectra[cfg] = sp
	}
	spectraMu.Unlock()
	return sp, nil
}

func buildSpectrum(cfg Config) (*spectrum, error) {
	// Pad enough that the correlation range phi (in cells) fits inside the
	// half-torus in both dimensions.
	phiCellsR := int(math.Ceil(cfg.Phi*float64(cfg.Rows))) + 1
	phiCellsC := int(math.Ceil(cfg.Phi*float64(cfg.Cols))) + 1
	prows := fft.NextPow2(2 * (cfg.Rows + phiCellsR))
	pcols := fft.NextPow2(2 * (cfg.Cols + phiCellsC))

	sp := &spectrum{prows: prows, pcols: pcols}
	base := make([]complex128, prows*pcols)
	dx := 1.0 / float64(cfg.Cols)
	dy := 1.0 / float64(cfg.Rows)
	v := cfg.Sigma * cfg.Sigma
	for r := 0; r < prows; r++ {
		wr := r
		if wr > prows/2 {
			wr = prows - wr
		}
		y := float64(wr) * dy
		for c := 0; c < pcols; c++ {
			wc := c
			if wc > pcols/2 {
				wc = pcols - wc
			}
			x := float64(wc) * dx
			base[r*pcols+c] = complex(v*SphericalCorrelation(math.Hypot(x, y), cfg.Phi), 0)
		}
	}
	if err := fft.Forward2D(base, prows, pcols); err != nil {
		return nil, fmt.Errorf("grf: eigenvalue transform: %w", err)
	}
	sp.sqrtLambda = make([]float64, prows*pcols)
	var clipped, total float64
	for i, z := range base {
		lam := real(z)
		total += math.Abs(lam)
		if lam < 0 {
			clipped += -lam
			lam = 0
		}
		sp.sqrtLambda[i] = math.Sqrt(lam)
	}
	if total > 0 {
		sp.clippedPower = clipped / total
	}
	return sp, nil
}

// NewCirculantSampler builds (or reuses) the spectral decomposition for
// cfg. The grid is padded to at least twice its size (rounded to powers of
// two) so the torus wrap-around does not alias correlations back into the
// chip. Only the scratch buffer and the spare-field cache are per-sampler
// state; the decomposition itself is shared and read-only.
func NewCirculantSampler(cfg Config) (*CirculantSampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sp, err := spectrumFor(cfg)
	if err != nil {
		return nil, err
	}
	return &CirculantSampler{
		cfg:          cfg,
		prows:        sp.prows,
		pcols:        sp.pcols,
		sqrtLambda:   sp.sqrtLambda,
		scratch:      make([]complex128, sp.prows*sp.pcols),
		ClippedPower: sp.clippedPower,
	}, nil
}

// Config returns the sampler's configuration.
func (s *CirculantSampler) Config() Config { return s.cfg }

// Sample draws one realisation of the field.
func (s *CirculantSampler) Sample(rng *stats.RNG) (*Field, error) {
	if s.spare != nil {
		f := s.spare
		s.spare = nil
		return f, nil
	}
	a, b, err := s.SamplePair(rng)
	if err != nil {
		return nil, err
	}
	s.spare = b
	return a, nil
}

// SamplePair draws the two independent realisations one transform yields,
// without touching the spare-field cache that sequential Sample callers
// rely on. Callers that need random access into the conceptual sequence
// of fields (e.g. die k of a batch for odd k, regenerated in isolation on
// a cluster worker) use it to rebuild a transform pair from its seed
// alone, in any order.
func (s *CirculantSampler) SamplePair(rng *stats.RNG) (*Field, *Field, error) {
	n := s.cfg.Rows * s.cfg.Cols
	a := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: make([]float64, n)}
	b := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: make([]float64, n)}
	if err := s.samplePairInto(rng, a, b); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// SamplePairInto is SamplePair writing into caller-provided fields, which
// must be shaped Rows×Cols with backing storage already allocated. Batch
// builders (varmodel.Generator.Batch) use it to land every map of a die
// batch in one slab allocation while keeping the per-pair RNG derivation
// — and therefore die identity — exactly that of the one-at-a-time path.
func (s *CirculantSampler) SamplePairInto(rng *stats.RNG, a, b *Field) error {
	want := s.cfg.Rows * s.cfg.Cols
	if a == nil || b == nil || a.Rows != s.cfg.Rows || a.Cols != s.cfg.Cols ||
		b.Rows != s.cfg.Rows || b.Cols != s.cfg.Cols || len(a.Data) != want || len(b.Data) != want {
		return fmt.Errorf("grf: SamplePairInto targets must be %dx%d fields", s.cfg.Rows, s.cfg.Cols)
	}
	return s.samplePairInto(rng, a, b)
}

// samplePairInto runs one transform pair into caller-provided fields. The
// noise draws and the butterfly arithmetic are exactly those of the
// original full-transform pipeline; only the column transforms nobody
// reads (the padded torus is 4x the chip in each dimension) are pruned,
// which the region-transform contract guarantees cannot perturb a bit of
// the kept corner.
func (s *CirculantSampler) samplePairInto(rng *stats.RNG, a, b *Field) error {
	n := s.prows * s.pcols
	norm := 1.0 / math.Sqrt(float64(n))
	sc, sl := s.scratch, s.sqrtLambda
	if len(sc) != n || len(sl) != n {
		return fmt.Errorf("grf: scratch %d / spectrum %d for %d-point transform", len(sc), len(sl), n)
	}
	for i := range sc {
		// Complex white noise scaled by sqrt(lambda)/sqrt(n): after an
		// unnormalised forward FFT the real and imaginary parts are two
		// independent fields with the target covariance.
		sc[i] = complex(rng.Norm()*sl[i]*norm, rng.Norm()*sl[i]*norm)
	}
	if err := fft.ForwardRegion2D(sc, s.prows, s.pcols, s.cfg.Rows, s.cfg.Cols); err != nil {
		return fmt.Errorf("grf: sampling transform: %w", err)
	}
	for r := 0; r < s.cfg.Rows; r++ {
		row := sc[r*s.pcols : r*s.pcols+s.cfg.Cols]
		ar := a.Data[r*s.cfg.Cols : (r+1)*s.cfg.Cols]
		br := b.Data[r*s.cfg.Cols : (r+1)*s.cfg.Cols]
		for c, z := range row {
			ar[c] = real(z)
			br[c] = imag(z)
		}
	}
	return nil
}

// SampleBatch draws n realisations in one call. The returned fields are
// bit-for-bit identical to n sequential Sample calls on the same stream —
// including the spare-field contract: a pending spare from an earlier
// Sample is consumed first, and an odd tail leaves its unconsumed twin
// behind as the new spare. The batch path exists for speed, not for new
// semantics: all n fields' backing storage comes from one slab
// allocation, and every transform pair reuses the sampler's scratch, so
// generating a 200-die batch costs two allocations instead of ~400.
func (s *CirculantSampler) SampleBatch(rng *stats.RNG, n int) ([]*Field, error) {
	if n < 0 {
		return nil, fmt.Errorf("grf: negative batch size %d", n)
	}
	if n == 0 {
		return []*Field{}, nil
	}
	out := make([]*Field, 0, n+1)
	if s.spare != nil {
		out = append(out, s.spare)
		s.spare = nil
	}
	pairs := (n - len(out) + 1) / 2
	fn := s.cfg.Rows * s.cfg.Cols
	slab := make([]float64, 2*pairs*fn)
	for p := 0; p < pairs; p++ {
		a := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: slab[(2*p)*fn : (2*p+1)*fn : (2*p+1)*fn]}
		b := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: slab[(2*p+1)*fn : (2*p+2)*fn : (2*p+2)*fn]}
		if err := s.samplePairInto(rng, a, b); err != nil {
			return nil, err
		}
		out = append(out, a, b)
	}
	if len(out) > n {
		s.spare = out[n]
		out = out[:n]
	}
	return out, nil
}
