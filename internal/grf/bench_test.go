package grf

import (
	"testing"

	"vasched/internal/stats"
)

// benchCfg matches the QuickEnv map resolution (the paper-scale 256x256
// grid is the same code path at 4x the points).
var benchCfg = Config{Rows: 128, Cols: 128, Phi: 0.5, Sigma: 0.03}

// BenchmarkCirculantSample is the per-die map-draw hot path: two of these
// (Vth, Leff) run per generated die.
func BenchmarkCirculantSample(b *testing.B) {
	s, err := NewCirculantSampler(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewCirculantSampler measures sampler construction — the
// spectral eigen-decomposition that the per-Config cache amortises across
// generators.
func BenchmarkNewCirculantSampler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCirculantSampler(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCirculantSampleBatch is the batched die pipeline: one
// SampleBatch call amortises the slab allocation and scratch reuse across
// the whole batch, and each transform pair runs the region-pruned FFT.
// ns/field is the comparable unit against BenchmarkCirculantSample.
func BenchmarkCirculantSampleBatch(b *testing.B) {
	const batch = 32
	s, err := NewCirculantSampler(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SampleBatch(rng, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/field")
}

var benchCholCfg = Config{Rows: 32, Cols: 32, Phi: 0.5, Sigma: 0.03}

func BenchmarkCholeskySample(b *testing.B) {
	s, err := NewCholeskySampler(benchCholCfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewCholeskySampler measures the O(n^3) dense factorisation that
// the per-Config factor cache amortises.
func BenchmarkNewCholeskySampler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholeskySampler(benchCholCfg); err != nil {
			b.Fatal(err)
		}
	}
}
