package grf

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"vasched/internal/stats"
)

// CholeskySampler draws exact samples by factoring the full dense
// covariance matrix of the grid. It is O(n^3) in the number of grid cells
// and exists as a correctness cross-check for the circulant sampler and as
// the default for tiny grids.
type CholeskySampler struct {
	cfg  Config
	n    int
	low  []float64 // lower-triangular Cholesky factor, row-major
	work []float64
}

var (
	cholMu    sync.Mutex
	cholCache = map[Config][]float64{} // bounded in practice: one entry per distinct small-grid config
)

// choleskyFor returns the shared lower-triangular factor for cfg, building
// it on first use. The O(n^3) factorisation runs outside the lock; a racing
// duplicate build is bit-identical, and the first one stored wins.
func choleskyFor(cfg Config, n int) ([]float64, error) {
	cholMu.Lock()
	low, ok := cholCache[cfg]
	cholMu.Unlock()
	if ok {
		return low, nil
	}
	cov := make([]float64, n*n)
	dx := 1.0 / float64(cfg.Cols)
	dy := 1.0 / float64(cfg.Rows)
	v := cfg.Sigma * cfg.Sigma
	for i := 0; i < n; i++ {
		ri, ci := i/cfg.Cols, i%cfg.Cols
		for j := 0; j <= i; j++ {
			rj, cj := j/cfg.Cols, j%cfg.Cols
			r := math.Hypot(float64(ci-cj)*dx, float64(ri-rj)*dy)
			c := v * SphericalCorrelation(r, cfg.Phi)
			cov[i*n+j] = c
			cov[j*n+i] = c
		}
	}
	low, err := choleskyFactor(cov, n)
	if err != nil {
		return nil, err
	}
	cholMu.Lock()
	if old, ok := cholCache[cfg]; ok {
		low = old
	} else {
		cholCache[cfg] = low
	}
	cholMu.Unlock()
	return low, nil
}

// NewCholeskySampler factors (or reuses the cached factor of) the
// covariance matrix for cfg. The factor is shared across samplers and
// read-only; only the white-noise work buffer is per-sampler state.
func NewCholeskySampler(cfg Config) (*CholeskySampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	if n > 5000 {
		return nil, fmt.Errorf("grf: Cholesky sampler limited to 5000 cells, got %d", n)
	}
	low, err := choleskyFor(cfg, n)
	if err != nil {
		return nil, err
	}
	return &CholeskySampler{cfg: cfg, n: n, low: low, work: make([]float64, n)}, nil
}

// Config returns the sampler's configuration.
func (s *CholeskySampler) Config() Config { return s.cfg }

// Sample draws one realisation of the field.
func (s *CholeskySampler) Sample(rng *stats.RNG) (*Field, error) {
	for i := range s.work {
		s.work[i] = rng.Norm()
	}
	f := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: make([]float64, s.n)}
	for i := 0; i < s.n; i++ {
		sum := 0.0
		row := s.low[i*s.n : i*s.n+i+1]
		for j, l := range row {
			sum += l * s.work[j]
		}
		f.Data[i] = sum
	}
	return f, nil
}

// choleskyFactor returns the lower-triangular factor L with A = L L^T.
// A small diagonal jitter is added if the matrix is borderline positive
// definite (the spherical covariance on a fine grid can be numerically
// semidefinite).
func choleskyFactor(a []float64, n int) ([]float64, error) {
	low := make([]float64, n*n)
	const jitter = 1e-10
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= low[i*n+k] * low[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					sum += jitter * a[0]
					if sum <= 0 {
						return nil, errors.New("grf: covariance matrix not positive definite")
					}
				}
				low[i*n+i] = math.Sqrt(sum)
			} else {
				low[i*n+j] = sum / low[j*n+j]
			}
		}
	}
	return low, nil
}
