package grf

import (
	"fmt"
	"math"
	"testing"
	"time"

	"vasched/internal/fft"
	"vasched/internal/stats"
)

// fieldsBitIdentical reports whether two fields are bit-for-bit equal,
// comparing Float64bits so that -0 vs 0 or NaN payload drift is caught.
func fieldsBitIdentical(a, b *Field) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestSampleBatchMatchesSequential pins the batched pipeline to the
// sequential one: SampleBatch(rng, n) must be byte-identical to n
// consecutive Sample calls on an identically seeded stream, for every
// parity of n and every starting spare-cache state, and must leave the
// sampler in the same state (proven by continuing both streams after the
// batch).
func TestSampleBatchMatchesSequential(t *testing.T) {
	cfg := Config{Rows: 32, Cols: 32, Phi: 0.5, Sigma: 0.03}
	for _, n := range []int{0, 1, 2, 3, 4, 7, 8} {
		for _, preSpare := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d/preSpare=%v", n, preSpare), func(t *testing.T) {
				seqS, err := NewCirculantSampler(cfg)
				if err != nil {
					t.Fatal(err)
				}
				batchS, err := NewCirculantSampler(cfg)
				if err != nil {
					t.Fatal(err)
				}
				seed := int64(1000*int64(n) + 7)
				seqRNG, batchRNG := stats.NewRNG(seed), stats.NewRNG(seed)
				if preSpare {
					// Park a spare in both samplers so the batch has to
					// honour the consume-spare-first contract.
					if _, err := seqS.Sample(seqRNG); err != nil {
						t.Fatal(err)
					}
					if _, err := batchS.Sample(batchRNG); err != nil {
						t.Fatal(err)
					}
				}
				want := make([]*Field, n)
				for i := range want {
					if want[i], err = seqS.Sample(seqRNG); err != nil {
						t.Fatal(err)
					}
				}
				got, err := batchS.SampleBatch(batchRNG, n)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("batch returned %d fields, want %d", len(got), n)
				}
				for i := range want {
					if !fieldsBitIdentical(want[i], got[i]) {
						t.Fatalf("field %d differs between batch and sequential", i)
					}
				}
				// Post-batch state: the next two sequential draws must agree,
				// which catches any drift in the spare cache or RNG position.
				for i := 0; i < 2; i++ {
					w, err := seqS.Sample(seqRNG)
					if err != nil {
						t.Fatal(err)
					}
					g, err := batchS.Sample(batchRNG)
					if err != nil {
						t.Fatal(err)
					}
					if !fieldsBitIdentical(w, g) {
						t.Fatalf("post-batch draw %d differs: spare/RNG state diverged", i)
					}
				}
			})
		}
	}
	s, _ := NewCirculantSampler(cfg)
	if _, err := s.SampleBatch(stats.NewRNG(1), -1); err == nil {
		t.Error("negative batch size accepted")
	}
}

// legacyFullPair replicates the pre-pruning SamplePair pipeline — same
// noise expression, but a full Forward2D over the padded torus and a
// per-pair allocation of both output fields. It is the cost model for
// random-access die regeneration before this PR: a cache miss on die k
// re-ran this twice (Vth and Leff pairs).
func legacyFullPair(s *CirculantSampler, rng *stats.RNG) (*Field, *Field, error) {
	n := s.prows * s.pcols
	norm := 1.0 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		s.scratch[i] = complex(rng.Norm()*s.sqrtLambda[i]*norm, rng.Norm()*s.sqrtLambda[i]*norm)
	}
	if err := fft.Forward2D(s.scratch, s.prows, s.pcols); err != nil {
		return nil, nil, err
	}
	a := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: make([]float64, s.cfg.Rows*s.cfg.Cols)}
	b := &Field{Rows: s.cfg.Rows, Cols: s.cfg.Cols, Data: make([]float64, s.cfg.Rows*s.cfg.Cols)}
	for r := 0; r < s.cfg.Rows; r++ {
		for c := 0; c < s.cfg.Cols; c++ {
			z := s.scratch[r*s.pcols+c]
			a.Data[r*s.cfg.Cols+c] = real(z)
			b.Data[r*s.cfg.Cols+c] = imag(z)
		}
	}
	return a, b, nil
}

// TestSampleBatchSpeedupGate enforces the headline acceptance number: a
// batched die must cost at least 3x less than the same die regenerated
// through the legacy random-access path (two full-torus transform pairs,
// one per map, as a cache-missing cluster worker paid before this PR).
//
// The ≥3x bound is enforced on transform work (fft.PointsTransformed
// butterfly outputs), which is exact and deterministic: per die, the
// legacy path runs two full 512x512 transform pairs (9.44M points) where
// the batch amortises one prefix-pruned pair across two dies per map
// (2.54M points), a 3.7x reduction no scheduler hiccup can blur. The
// wall-clock ratio is measured alongside (interleaved, best-of-round) and
// held to a conservative floor: the frozen-arithmetic noise draws
// (~40% of batch cost, identical on both paths per field) dilute the
// transform win, so end-to-end lands near 3x with run-to-run noise —
// EXPERIMENTS.md reports the measured numbers.
func TestSampleBatchSpeedupGate(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock half of the gate is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	s, err := NewCirculantSampler(benchCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	// Warm caches (spectrum, twiddles, pools) before measuring.
	if _, err := s.SampleBatch(rng, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacyFullPair(s, rng); err != nil {
		t.Fatal(err)
	}

	// Deterministic half: butterfly outputs per die, legacy vs batched.
	p0 := fft.PointsTransformed()
	if _, _, err := legacyFullPair(s, rng); err != nil {
		t.Fatal(err)
	}
	p1 := fft.PointsTransformed()
	s.spare = nil
	if _, err := s.SampleBatch(rng, 2); err != nil { // exactly one pruned pair
		t.Fatal(err)
	}
	p2 := fft.PointsTransformed()
	legacyDiePts := 2 * (p1 - p0) // one full pair per map (Vth, Leff)
	batchDiePts := p2 - p1        // one pruned pair spans two dies per map
	ptsRatio := float64(legacyDiePts) / float64(batchDiePts)
	t.Logf("transform work: legacy %d pts/die, batched %d pts/die: %.2fx", legacyDiePts, batchDiePts, ptsRatio)
	if ptsRatio < 3.0 {
		t.Fatalf("batched die pipeline transform work %.2fx < 3.0x gate (legacy %d pts/die vs batched %d pts/die)",
			ptsRatio, legacyDiePts, batchDiePts)
	}

	// Wall-clock half: interleaved rounds, best-of minima on both sides so
	// noise can only suppress the ratio symmetrically. Floor at 2.2x — far
	// below the ~3x this container measures, far above what any regression
	// to the unpruned/unbatched path would score (1.0x).
	const rounds, batch = 5, 8
	legacyPair := time.Duration(math.MaxInt64)
	batchField := time.Duration(math.MaxInt64)
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if _, _, err := legacyFullPair(s, rng); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < legacyPair {
			legacyPair = d
		}
		s.spare = nil // keep batch rounds identical in shape
		t0 = time.Now()
		if _, err := s.SampleBatch(rng, batch); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d/batch < batchField {
			batchField = d / batch
		}
	}
	legacyDie := 2 * legacyPair // two full pairs
	batchDie := 2 * batchField  // two fields
	ratio := float64(legacyDie) / float64(batchDie)
	t.Logf("wall clock: legacy die %v (pair %v), batched die %v (field %v): speedup %.2fx",
		legacyDie, legacyPair, batchDie, batchField, ratio)
	if ratio < 2.2 {
		t.Fatalf("batched die pipeline wall-clock speedup %.2fx < 2.2x sanity floor (legacy %v/die vs batched %v/die)",
			ratio, legacyDie, batchDie)
	}
}
