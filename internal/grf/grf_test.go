package grf

import (
	"math"
	"testing"
	"testing/quick"

	"vasched/internal/stats"
)

func TestSphericalCorrelationShape(t *testing.T) {
	const phi = 0.5
	if got := SphericalCorrelation(0, phi); got != 1 {
		t.Fatalf("rho(0) = %v", got)
	}
	if got := SphericalCorrelation(phi, phi); got != 0 {
		t.Fatalf("rho(phi) = %v", got)
	}
	if got := SphericalCorrelation(2*phi, phi); got != 0 {
		t.Fatalf("rho beyond range = %v", got)
	}
	// Monotone decreasing on [0, phi].
	prev := 1.0
	for r := 0.01; r < phi; r += 0.01 {
		cur := SphericalCorrelation(r, phi)
		if cur > prev+1e-12 {
			t.Fatalf("rho not monotone at r=%v", r)
		}
		prev = cur
	}
}

func TestSphericalCorrelationPropertyBounds(t *testing.T) {
	f := func(r, phi float64) bool {
		r = math.Abs(r)
		phi = math.Abs(phi)
		if phi == 0 || math.IsNaN(r) || math.IsNaN(phi) || math.IsInf(r, 0) || math.IsInf(phi, 0) {
			return true
		}
		rho := SphericalCorrelation(r, phi)
		return rho >= 0 && rho <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 4, Phi: 0.5, Sigma: 1},
		{Rows: 4, Cols: -1, Phi: 0.5, Sigma: 1},
		{Rows: 4, Cols: 4, Phi: 0, Sigma: 1},
		{Rows: 4, Cols: 4, Phi: 0.5, Sigma: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSampler(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFieldAccessors(t *testing.T) {
	f := &Field{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	if f.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", f.At(1, 2))
	}
	if f.AtPoint(0.99, 0.99) != 6 {
		t.Fatalf("AtPoint(corner) = %v", f.AtPoint(0.99, 0.99))
	}
	if f.AtPoint(0, 0) != 1 {
		t.Fatalf("AtPoint(origin) = %v", f.AtPoint(0, 0))
	}
	// Clamp beyond-edge coordinates rather than panicking.
	if f.AtPoint(1.5, -0.5) != 3 {
		t.Fatalf("AtPoint(out of range) = %v", f.AtPoint(1.5, -0.5))
	}
	if got := f.MeanOverRect(0, 0, 1, 1); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("MeanOverRect full = %v", got)
	}
	if got := f.MinOverRect(0, 0, 1, 1); got != 1 {
		t.Fatalf("MinOverRect = %v", got)
	}
	if got := f.MaxOverRect(0, 0, 1, 1); got != 6 {
		t.Fatalf("MaxOverRect = %v", got)
	}
	// Degenerate (zero-area) rectangle still returns the containing cell.
	if got := f.MeanOverRect(0.5, 0.5, 0.5, 0.5); math.IsNaN(got) {
		t.Fatal("degenerate rect produced NaN")
	}
}

// fieldMoments samples n fields and returns pooled mean and variance.
func fieldMoments(t *testing.T, s Sampler, rng *stats.RNG, n int) (mean, variance float64) {
	t.Helper()
	var sum, sumSq float64
	var count int
	for i := 0; i < n; i++ {
		f, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range f.Data {
			sum += v
			sumSq += v * v
			count++
		}
	}
	mean = sum / float64(count)
	variance = sumSq/float64(count) - mean*mean
	return mean, variance
}

func TestCirculantMomentsMatchTarget(t *testing.T) {
	cfg := Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 0.03}
	s, err := NewCirculantSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ClippedPower > 0.01 {
		t.Fatalf("excessive spectral clipping: %v", s.ClippedPower)
	}
	rng := stats.NewRNG(1234)
	mean, variance := fieldMoments(t, s, rng, 60)
	if math.Abs(mean) > 0.004 {
		t.Fatalf("field mean = %v, want ~0", mean)
	}
	target := cfg.Sigma * cfg.Sigma
	if math.Abs(variance-target) > 0.15*target {
		t.Fatalf("field variance = %v, want ~%v", variance, target)
	}
}

func TestCirculantSpatialCorrelation(t *testing.T) {
	// Empirical correlation at lag r should track the spherical model.
	cfg := Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 1}
	s, err := NewCirculantSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(99)
	lags := []int{1, 8, 16, 31}
	// Accumulate products across many fields at horizontal lags.
	prods := make([]float64, len(lags))
	var norm float64
	counts := make([]int, len(lags))
	const nFields = 120
	for i := 0; i < nFields; i++ {
		f, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < f.Rows; r++ {
			for c := 0; c < f.Cols; c++ {
				v := f.At(r, c)
				norm += v * v
				for li, lag := range lags {
					if c+lag < f.Cols {
						prods[li] += v * f.At(r, c+lag)
						counts[li]++
					}
				}
			}
		}
	}
	norm /= float64(nFields * cfg.Rows * cfg.Cols)
	for li, lag := range lags {
		emp := prods[li] / float64(counts[li]) / norm
		r := float64(lag) / float64(cfg.Cols)
		want := SphericalCorrelation(r, cfg.Phi)
		if math.Abs(emp-want) > 0.08 {
			t.Errorf("lag %d: empirical rho = %.3f, want %.3f", lag, emp, want)
		}
	}
}

func TestCholeskyMomentsMatchTarget(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 16, Phi: 0.5, Sigma: 0.5}
	s, err := NewCholeskySampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(31)
	mean, variance := fieldMoments(t, s, rng, 400)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("field mean = %v", mean)
	}
	target := cfg.Sigma * cfg.Sigma
	if math.Abs(variance-target) > 0.15*target {
		t.Fatalf("field variance = %v, want ~%v", variance, target)
	}
}

func TestCholeskyAndCirculantAgree(t *testing.T) {
	// The two samplers should produce statistically indistinguishable
	// correlation at a mid-range lag.
	cfg := Config{Rows: 16, Cols: 16, Phi: 0.5, Sigma: 1}
	chol, err := NewCholeskySampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := NewCirculantSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrAtLag := func(s Sampler, seed int64) float64 {
		rng := stats.NewRNG(seed)
		var prod, norm float64
		var n int
		for i := 0; i < 400; i++ {
			f, err := s.Sample(rng)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < f.Rows; r++ {
				for c := 0; c+4 < f.Cols; c++ {
					prod += f.At(r, c) * f.At(r, c+4)
					norm += f.At(r, c) * f.At(r, c)
					n++
				}
			}
		}
		return prod / norm
	}
	a := corrAtLag(chol, 5)
	b := corrAtLag(circ, 6)
	if math.Abs(a-b) > 0.06 {
		t.Fatalf("samplers disagree on lag-4 correlation: %.3f vs %.3f", a, b)
	}
}

func TestCholeskySizeLimit(t *testing.T) {
	if _, err := NewCholeskySampler(Config{Rows: 100, Cols: 100, Phi: 0.5, Sigma: 1}); err == nil {
		t.Fatal("oversized Cholesky config accepted")
	}
}

func TestNewSamplerSelection(t *testing.T) {
	small, err := NewSampler(Config{Rows: 8, Cols: 8, Phi: 0.5, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := small.(*CholeskySampler); !ok {
		t.Fatalf("small grid should use Cholesky, got %T", small)
	}
	large, err := NewSampler(Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := large.(*CirculantSampler); !ok {
		t.Fatalf("large grid should use circulant, got %T", large)
	}
}

func TestSampleDeterminism(t *testing.T) {
	cfg := Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 0.1}
	s1, _ := NewCirculantSampler(cfg)
	s2, _ := NewCirculantSampler(cfg)
	f1, err := s1.Sample(stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.Sample(stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Data {
		if f1.Data[i] != f2.Data[i] {
			t.Fatal("same seed produced different fields")
		}
	}
}

func BenchmarkCirculantSample64(b *testing.B) {
	s, err := NewCirculantSampler(Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 0.03})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRFSamplers compares the circulant and Cholesky samplers on the
// same small grid (ablation: design decision 4 in DESIGN.md).
func BenchmarkGRFSamplers(b *testing.B) {
	cfg := Config{Rows: 16, Cols: 16, Phi: 0.5, Sigma: 1}
	b.Run("circulant", func(b *testing.B) {
		s, err := NewCirculantSampler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = s.Sample(rng)
		}
	})
	b.Run("cholesky", func(b *testing.B) {
		s, err := NewCholeskySampler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = s.Sample(rng)
		}
	})
}

func TestEstimateCorrelationRange(t *testing.T) {
	// Fields generated with phi = 0.5 should show their correlation
	// dropping near zero around half the chip width; the spherical model
	// crosses rho = 0.05 at r ~ 0.47*phi... measured empirically, the
	// low-threshold crossing lands in a broad band below phi.
	cfg := Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 1}
	s, err := NewCirculantSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	var fields []*Field
	for i := 0; i < 60; i++ {
		f, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	r05, err := EstimateCorrelationRange(fields, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r05 < 0.25 || r05 > 0.65 {
		t.Fatalf("estimated decorrelation distance %v, want near phi=0.5", r05)
	}
	// A shorter-range field must estimate shorter.
	short, err := NewCirculantSampler(Config{Rows: 64, Cols: 64, Phi: 0.2, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sf []*Field
	for i := 0; i < 60; i++ {
		f, err := short.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		sf = append(sf, f)
	}
	rShort, err := EstimateCorrelationRange(sf, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rShort >= r05 {
		t.Fatalf("phi=0.2 estimate %v not below phi=0.5 estimate %v", rShort, r05)
	}
}

func TestEstimateCorrelationRangeValidation(t *testing.T) {
	if _, err := EstimateCorrelationRange(nil, 0.05); err == nil {
		t.Fatal("empty batch accepted")
	}
	f := &Field{Rows: 2, Cols: 4, Data: make([]float64, 8)}
	if _, err := EstimateCorrelationRange([]*Field{f}, 0.05); err == nil {
		t.Fatal("zero fields accepted")
	}
	g := &Field{Rows: 2, Cols: 4, Data: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	if _, err := EstimateCorrelationRange([]*Field{g}, 2); err == nil {
		t.Fatal("bad threshold accepted")
	}
	h := &Field{Rows: 2, Cols: 8, Data: make([]float64, 16)}
	if _, err := EstimateCorrelationRange([]*Field{g, h}, 0.05); err == nil {
		t.Fatal("mismatched widths accepted")
	}
}
