package grf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"vasched/internal/stats"
)

// hashFields folds the exact bit patterns of the given fields into one
// digest. The reference-seed tests below pin these digests so that any
// optimisation of the samplers (spectrum caching, scratch reuse, FFT plan
// changes) that perturbs a single output bit fails loudly.
func hashFields(fs ...*Field) string {
	h := sha256.New()
	var buf [8]byte
	for _, f := range fs {
		for _, v := range f.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sampleN draws n consecutive fields from a fresh sampler.
func sampleN(t *testing.T, s Sampler, seed int64, n int) []*Field {
	t.Helper()
	rng := stats.NewRNG(seed)
	out := make([]*Field, n)
	for i := range out {
		f, err := s.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
	}
	return out
}

// Reference digests recorded from the pre-optimisation samplers
// (PR 2); the values are a function of (Config, seed) only and must never
// change while the samplers claim bit-for-bit reproducibility.
const (
	circulantRefHash = "0bee0878c9540ec6766ddbf28c4ee7028247c767fc62b5fa260ad106eb887657"
	choleskyRefHash  = "1c71f6a502149be6d08c9d4ec0c56caf1ae998f649a41d5ea1d2640ebf7bc969"
)

var circulantRefCfg = Config{Rows: 64, Cols: 64, Phi: 0.5, Sigma: 0.03}
var choleskyRefCfg = Config{Rows: 16, Cols: 16, Phi: 0.5, Sigma: 0.03}

func TestCirculantReferenceSeeds(t *testing.T) {
	s, err := NewCirculantSampler(circulantRefCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four draws cover both the FFT path and the cached-spare path twice.
	fields := sampleN(t, s, 42, 4)
	if got := hashFields(fields...); got != circulantRefHash {
		t.Errorf("circulant reference digest changed:\n got %s\nwant %s", got, circulantRefHash)
	}
	checkMoments(t, fields, circulantRefCfg)
}

func TestCholeskyReferenceSeeds(t *testing.T) {
	s, err := NewCholeskySampler(choleskyRefCfg)
	if err != nil {
		t.Fatal(err)
	}
	fields := sampleN(t, s, 42, 4)
	if got := hashFields(fields...); got != choleskyRefHash {
		t.Errorf("cholesky reference digest changed:\n got %s\nwant %s", got, choleskyRefHash)
	}
	checkMoments(t, fields, choleskyRefCfg)
}

// checkMoments asserts the sample moments and spatial correlation a field
// batch must carry regardless of which sampler implementation produced it.
func checkMoments(t *testing.T, fields []*Field, cfg Config) {
	t.Helper()
	var sum, sumSq float64
	n := 0
	for _, f := range fields {
		for _, v := range f.Data {
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	// Few fields of a strongly correlated process: generous tolerances.
	if math.Abs(mean) > cfg.Sigma {
		t.Errorf("batch mean %v too far from 0 (sigma %v)", mean, cfg.Sigma)
	}
	if sd < 0.3*cfg.Sigma || sd > 2.5*cfg.Sigma {
		t.Errorf("batch sd %v vs configured sigma %v", sd, cfg.Sigma)
	}
	rng, err := EstimateCorrelationRange(fields, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if rng <= 0.05 {
		t.Errorf("estimated correlation range %v; want clearly positive for phi=%v", rng, cfg.Phi)
	}
}

// TestSamplersIndependentOfSharedState draws from two samplers of the same
// Config interleaved and checks each stream matches a fresh isolated
// sampler: shared spectral decompositions must never leak per-sampler
// state (spare fields, scratch) across instances.
func TestSamplersIndependentOfSharedState(t *testing.T) {
	mk := func() Sampler {
		s, err := NewCirculantSampler(circulantRefCfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	rngA, rngB := stats.NewRNG(7), stats.NewRNG(8)
	var gotA, gotB []*Field
	for i := 0; i < 3; i++ {
		fa, err := a.Sample(rngA)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := b.Sample(rngB)
		if err != nil {
			t.Fatal(err)
		}
		gotA, gotB = append(gotA, fa), append(gotB, fb)
	}
	wantA := sampleN(t, mk(), 7, 3)
	wantB := sampleN(t, mk(), 8, 3)
	if hashFields(gotA...) != hashFields(wantA...) {
		t.Error("interleaved sampler A differs from isolated reference")
	}
	if hashFields(gotB...) != hashFields(wantB...) {
		t.Error("interleaved sampler B differs from isolated reference")
	}
}
