//go:build race

package grf

// raceEnabled reports whether this test binary was built with the race
// detector. The batched-pipeline speedup gate skips under it: wall-clock
// ratios are meaningless with the ~10x race instrumentation slowdown.
const raceEnabled = true
