package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Histogram bins samples over a fixed range. It is used to reproduce the
// paper's Figure 4 histograms of die-to-die power and frequency ratios.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	n      int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo,hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample. Samples outside [lo,hi) are tallied in the
// underflow/overflow counters rather than dropped.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		w := (h.Hi - h.Lo) / float64(len(h.Counts))
		i := int((x - h.Lo) / w)
		if i == len(h.Counts) { // guard against floating-point edge
			i--
		}
		h.Counts[i]++
	}
}

// N returns the total number of samples recorded, including out-of-range.
func (h *Histogram) N() int { return h.n }

// Underflow returns the count of samples below the histogram range.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the count of samples at or above the histogram range.
func (h *Histogram) Overflow() int { return h.over }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render draws the histogram as an ASCII bar chart with the given label,
// one row per bin, suitable for experiment reports.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d", label, h.n)
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, ", under=%d, over=%d", h.under, h.over)
	}
	b.WriteString(")\n")
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const width = 40
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxCount)*width)))
		fmt.Fprintf(&b, "  %6.3f |%-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}

// histogramJSON is the wire form of Histogram: it exposes the unexported
// tallies so a histogram survives a JSON round trip without loss (the
// vaschedd job API serves experiment results as JSON).
type histogramJSON struct {
	Lo     float64 `json:"Lo"`
	Hi     float64 `json:"Hi"`
	Counts []int   `json:"Counts"`
	Under  int     `json:"Under"`
	Over   int     `json:"Over"`
	N      int     `json:"N"`
}

// MarshalJSON implements json.Marshaler including the out-of-range and
// total tallies.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Lo: h.Lo, Hi: h.Hi, Counts: h.Counts,
		Under: h.under, Over: h.over, N: h.n,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring the full state
// written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	h.Lo, h.Hi, h.Counts = w.Lo, w.Hi, w.Counts
	h.under, h.over, h.n = w.Under, w.Over, w.N
	return nil
}
