package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.5)
	h.Add(1.0) // hi is exclusive
	h.Add(2.0)
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramBinCenterAndMode(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v", got)
	}
	h.Add(5)
	h.Add(5.5)
	h.Add(1)
	if got := h.Mode(); got != 5 {
		t.Fatalf("Mode = %v", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1.0, 2.0, 4)
	for _, x := range []float64{1.1, 1.15, 1.6, 1.9} {
		h.Add(x)
	}
	out := h.Render("power ratio")
	if !strings.Contains(out, "power ratio") || !strings.Contains(out, "#") {
		t.Fatalf("Render output missing content:\n%s", out)
	}
	if !strings.Contains(out, "n=4") {
		t.Fatalf("Render output missing count:\n%s", out)
	}
}

func TestHistogramInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid config")
		}
	}()
	NewHistogram(1, 1, 3)
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(1.0, 2.0, 4)
	for _, x := range []float64{0.5, 1.1, 1.6, 1.6, 2.5, 3.0} {
		h.Add(x)
	}
	blob, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, &got) {
		t.Fatalf("round trip lost state:\n before %+v\n after  %+v", h, &got)
	}
	if got.N() != 6 || got.Underflow() != 1 || got.Overflow() != 2 {
		t.Fatalf("tallies lost: n=%d under=%d over=%d", got.N(), got.Underflow(), got.Overflow())
	}
	blob2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", blob, blob2)
	}
}
