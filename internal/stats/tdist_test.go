package stats

import (
	"math"
	"testing"
)

// Reference quantiles from R's qt(p, df) (15 significant digits).
func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.706204736174693},
		{0.975, 2, 4.3026527297494618},
		{0.975, 5, 2.5705818356363148},
		{0.975, 10, 2.2281388519862742},
		{0.975, 30, 2.0422724563012379},
		{0.975, 120, 1.9799304050824405},
		{0.95, 10, 1.8124611228116759},
		{0.95, 4, 2.1318467863266495},
		{0.995, 20, 2.8453397097861081},
		{0.90, 7, 1.4149239276505086},
		{0.99, 2, 6.964556734283271},
		{0.999, 15, 3.7328344253108998},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TQuantile(%v, %v) = %.12f, want %.12f", c.p, c.df, got, c.want)
		}
		// Lower tail by symmetry.
		if got := TQuantile(1-c.p, c.df); math.Abs(got+c.want) > 1e-9 {
			t.Errorf("TQuantile(%v, %v) = %.12f, want %.12f", 1-c.p, c.df, got, -c.want)
		}
	}
}

func TestTQuantileEdges(t *testing.T) {
	if got := TQuantile(0.5, 7); got != 0 {
		t.Errorf("TQuantile(0.5) = %v, want 0", got)
	}
	if !math.IsInf(TQuantile(0, 3), -1) || !math.IsInf(TQuantile(1, 3), 1) {
		t.Error("TQuantile at p in {0,1} should be infinite")
	}
	if !math.IsNaN(TQuantile(0.9, 0)) || !math.IsNaN(TQuantile(0.9, -1)) {
		t.Error("TQuantile with df <= 0 should be NaN")
	}
	if !math.IsNaN(TQuantile(math.NaN(), 3)) {
		t.Error("TQuantile(NaN) should be NaN")
	}
}

// For large df the t distribution converges to the standard normal.
func TestTQuantileApproachesNormal(t *testing.T) {
	for _, p := range []float64{0.6, 0.9, 0.975, 0.999} {
		tq, nq := TQuantile(p, 1e7), NormQuantile(p)
		if math.Abs(tq-nq) > 1e-4 {
			t.Errorf("TQuantile(%v, 1e7) = %v, NormQuantile = %v", p, tq, nq)
		}
	}
}

// TCDF must invert TQuantile across the grid the stopping rule uses.
func TestTCDFInvertsQuantile(t *testing.T) {
	for _, df := range []float64{1, 2, 3, 5, 9, 17.5, 42, 199} {
		for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.8, 0.95, 0.99, 0.9995} {
			q := TQuantile(p, df)
			if got := TCDF(q, df); math.Abs(got-p) > 1e-10 {
				t.Errorf("TCDF(TQuantile(%v, %v)) = %v", p, df, got)
			}
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// R pt(t, df) references.
	cases := []struct {
		x, df, want float64
	}{
		{0, 5, 0.5},
		{1, 1, 0.75},
		{2, 10, 0.96330598261462982},
		{-2, 10, 0.036694017385370183},
		{1.5, 3, 0.88470806737758847},
	}
	for _, c := range cases {
		if got := TCDF(c.x, c.df); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TCDF(%v, %v) = %.15f, want %.15f", c.x, c.df, got, c.want)
		}
	}
	if !math.IsNaN(TCDF(1, 0)) {
		t.Error("TCDF with df = 0 should be NaN")
	}
	if TCDF(math.Inf(1), 4) != 1 || TCDF(math.Inf(-1), 4) != 0 {
		t.Error("TCDF at infinities should hit the distribution bounds")
	}
}

// Edge cases for Quantile: empty input, single element, and q outside the
// open interval, which clamp to the order-statistic extremes.
func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	one := []float64{7}
	for _, q := range []float64{0, 0.37, 0.5, 1} {
		if got := Quantile(one, q); got != 7 {
			t.Errorf("Quantile(single, %v) = %v, want 7", q, got)
		}
	}
	xs := []float64{5, 1, 9}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("Quantile(q<0) = %v, want min", got)
	}
	if got := Quantile(xs, 1.5); got != 9 {
		t.Errorf("Quantile(q>1) = %v, want max", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 9 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

// Edge cases for Correlation: empty, single-element, and constant series
// are all errors rather than NaNs leaking into experiment statistics.
func TestCorrelationEdgeCases(t *testing.T) {
	if _, err := Correlation(nil, nil); err == nil {
		t.Error("Correlation(empty) should error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("Correlation(single element) should error (constant input)")
	}
	if _, err := Correlation([]float64{1, 2, 3}, []float64{4, 4, 4}); err == nil {
		t.Error("Correlation with constant ys should error")
	}
	if _, err := Correlation([]float64{4, 4, 4}, []float64{1, 2, 3}); err == nil {
		t.Error("Correlation with constant xs should error")
	}
}
