package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Fatalf("Max = %v", got)
	}
	if got := Sum(xs); got != 7.5 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
	// Median must not modify its input.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	if _, err := Correlation(xs, ys[:2]); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("constant input not detected")
	}
}

func TestNormCDFQuantileInverse(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormQuantile(p)
		if got := NormCDF(x); !almostEqual(got, p, 1e-8) {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("quantile boundary behaviour wrong")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	// 97.5th percentile of the standard normal.
	if got := NormQuantile(0.975); !almostEqual(got, 1.959963985, 1e-6) {
		t.Fatalf("NormQuantile(0.975) = %v", got)
	}
	if got := NormQuantile(0.5); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("NormQuantile(0.5) = %v", got)
	}
}

func TestRanking(t *testing.T) {
	xs := []float64{3, 1, 2}
	desc := RankDescending(xs)
	if desc[0] != 0 || desc[1] != 2 || desc[2] != 1 {
		t.Fatalf("RankDescending = %v", desc)
	}
	asc := RankAscending(xs)
	if asc[0] != 1 || asc[1] != 2 || asc[2] != 0 {
		t.Fatalf("RankAscending = %v", asc)
	}
}

func TestRankStability(t *testing.T) {
	xs := []float64{1, 1, 1}
	desc := RankDescending(xs)
	for i, v := range desc {
		if v != i {
			t.Fatalf("ties must preserve order, got %v", desc)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	// Derived streams with different labels must differ from each other.
	parent1 := NewRNG(7)
	parent2 := NewRNG(7)
	c1 := parent1.Derive(1)
	c2 := parent2.Derive(2)
	same := true
	for i := 0; i < 16; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("derived streams with different labels are identical")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormMuSigma(3, 2)
	}
	if m := Mean(xs); !almostEqual(m, 3, 0.05) {
		t.Fatalf("sample mean = %v, want ~3", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 0.05) {
		t.Fatalf("sample std = %v, want ~2", s)
	}
}

// Property: quantile is monotone non-decreasing in q for any sample set.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RankDescending returns a permutation that actually sorts.
func TestRankDescendingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		idx := RankDescending(xs)
		if len(idx) != len(xs) {
			return false
		}
		seen := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(xs) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return sort.SliceIsSorted(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] }) ||
			isNonIncreasing(xs, idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isNonIncreasing(xs []float64, idx []int) bool {
	for i := 1; i < len(idx); i++ {
		if xs[idx[i-1]] < xs[idx[i]] {
			return false
		}
	}
	return true
}

func TestBootstrapCI(t *testing.T) {
	rng := NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormMuSigma(10, 2)
	}
	lo, hi := BootstrapCI(xs, 0.95, 2000, NewRNG(6))
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Fatalf("sample mean %v outside its own CI [%v, %v]", m, lo, hi)
	}
	// For n=200, sigma=2: the 95%% CI should be roughly +-0.28 wide.
	if width := hi - lo; width < 0.2 || width > 1.5 {
		t.Fatalf("CI width %v implausible", width)
	}
	// Degenerate inputs.
	if lo, hi := BootstrapCI(nil, 0.95, 100, NewRNG(1)); lo != 0 || hi != 0 {
		t.Fatal("empty input should give zero interval")
	}
	if lo, hi := BootstrapCI([]float64{7}, 0.95, 100, NewRNG(1)); lo != 7 || hi != 7 {
		t.Fatal("single sample should give point interval")
	}
	// Defaults kick in for bad parameters.
	lo2, hi2 := BootstrapCI(xs, -1, -1, NewRNG(6))
	if lo2 >= hi2 {
		t.Fatal("default parameters produced a degenerate interval")
	}
}
