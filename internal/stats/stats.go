// Package stats provides the statistical primitives the variation model and
// the evaluation harness are built on: deterministic RNG streams, normal
// distribution sampling and quantiles, descriptive statistics, histograms,
// and ranking utilities.
//
// Everything in this package is deterministic given a seed, which is what
// makes whole-repository experiments replayable bit-for-bit.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic random stream. It wraps math/rand so the rest of
// the repository depends on one seam and tests can substitute fixtures.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Derive returns a child stream whose seed is a deterministic function of
// the parent seed and the label. Batches of dies, per-trial workloads, and
// per-core noise all derive their streams this way so that adding one
// consumer does not perturb another.
func (r *RNG) Derive(label int64) *RNG {
	// SplitMix64-style mixing of the label with a draw from the parent.
	z := uint64(r.src.Int63()) ^ (uint64(label) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0,n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Norm returns a standard normal sample.
func (r *RNG) Norm() float64 { return r.src.NormFloat64() }

// NormMuSigma returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) NormMuSigma(mu, sigma float64) float64 {
	return mu + sigma*r.src.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes the first n indices using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice
// because every caller in this repository has a non-empty input by
// construction.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// GeoMean returns the geometric mean of xs. All elements must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, matching R's default (type 7).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	h := q * float64(len(c)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return c[lo]
	}
	return c[lo] + (h-float64(lo))*(c[hi]-c[lo])
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys, which must have equal length.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation inputs differ in length")
	}
	if len(xs) == 0 {
		return 0, errors.New("stats: correlation of empty input")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// NormCDF returns the standard normal cumulative distribution function.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns the standard normal quantile (inverse CDF) using the
// Acklam rational approximation, accurate to about 1e-9 over (0,1).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// TCDF returns the cumulative distribution function of Student's t
// distribution with df degrees of freedom, via the regularized incomplete
// beta function. df need not be an integer; df <= 0 returns NaN.
func TCDF(t, df float64) float64 {
	if df <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	// P(T > |t|) = I_{df/(df+t^2)}(df/2, 1/2) / 2.
	x := df / (df + t*t)
	tail := 0.5 * regIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - tail
	}
	return tail
}

// TQuantile returns the quantile (inverse CDF) of Student's t distribution
// with df degrees of freedom: the t with TCDF(t, df) == p. It is the
// critical value behind t-based confidence intervals; accuracy is better
// than 1e-9 across the df range the experiment harness uses. p outside
// (0,1) returns the matching infinity and df <= 0 returns NaN.
func TQuantile(p, df float64) float64 {
	switch {
	case df <= 0 || math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	case p < 0.5:
		return -TQuantile(1-p, df)
	}
	// Bracket the root above zero, then bisect. TCDF is monotone, so plain
	// bisection is both robust at df=1 (Cauchy-fat tails) and deterministic.
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p && hi < 1e300 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-15*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// regIncBeta returns the regularized incomplete beta function I_x(a, b)
// using the standard continued-fraction expansion (Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	front := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log(1-x))
	// The continued fraction converges fastest below the mean; use the
	// symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other side.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// (modified Lentz's method, as in Numerical Recipes).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm, fm2 := float64(m), float64(2*m)
		aa := fm * (b - fm) * x / ((qam + fm2) * (a + fm2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + fm2) * (qap + fm2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RankDescending returns the indices of xs sorted from largest to smallest
// value. Ties preserve the original order (stable).
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// RankAscending returns the indices of xs sorted from smallest to largest
// value. Ties preserve the original order (stable).
func RankAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using resamples
// drawn from rng. The experiment harness uses it to report uncertainty on
// trial means.
func BootstrapCI(xs []float64, confidence float64, resamples int, rng *RNG) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	means := make([]float64, resamples)
	for r := range means {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
