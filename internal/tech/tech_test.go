package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.VddMin = 0 },
		func(p *Params) { p.VddNominal = p.VddMin },
		func(p *Params) { p.VStep = 0 },
		func(p *Params) { p.VStep = 1 },
		func(p *Params) { p.VthNominal = 0 },
		func(p *Params) { p.VthNominal = 0.7 },
		func(p *Params) { p.FNominalHz = 0 },
		func(p *Params) { p.Alpha = -1 },
		func(p *Params) { p.SubVtSlopeN = 0 },
	}
	for i, f := range mut {
		p := Default()
		f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestVoltageLevels(t *testing.T) {
	p := Default()
	levels := p.VoltageLevels()
	if len(levels) != 9 {
		t.Fatalf("got %d levels: %v", len(levels), levels)
	}
	if levels[0] != 0.6 || levels[len(levels)-1] != 1.0 {
		t.Fatalf("endpoints wrong: %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("levels not ascending: %v", levels)
		}
	}
}

func TestThermalVoltage(t *testing.T) {
	// kT/q at 27 C (300.15 K) is about 25.87 mV.
	got := ThermalVoltage(27)
	if math.Abs(got-0.02587) > 0.0002 {
		t.Fatalf("ThermalVoltage(27C) = %v", got)
	}
}

func TestVthDecreasesWithTemp(t *testing.T) {
	p := Default()
	if p.VthAtTemp(0.25, 100) >= p.VthAtTemp(0.25, 60) {
		t.Fatal("Vth should drop as temperature rises")
	}
	if got := p.VthAtTemp(0.25, p.TRefC); got != 0.25 {
		t.Fatalf("VthAtTemp at reference = %v", got)
	}
}

func TestAlphaPowerDelayNominalIsOne(t *testing.T) {
	p := Default()
	d := p.AlphaPowerDelay(p.VthNominal, p.LeffNominal, p.VddNominal, p.TRatingC)
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("nominal relative delay = %v, want 1", d)
	}
}

func TestAlphaPowerDelayMonotonicity(t *testing.T) {
	p := Default()
	base := p.AlphaPowerDelay(p.VthNominal, p.LeffNominal, 0.8, p.TRatingC)
	// Higher Vth -> slower.
	if p.AlphaPowerDelay(p.VthNominal+0.05, p.LeffNominal, 0.8, p.TRatingC) <= base {
		t.Fatal("delay should rise with Vth")
	}
	// Longer channel -> slower.
	if p.AlphaPowerDelay(p.VthNominal, p.LeffNominal*1.2, 0.8, p.TRatingC) <= base {
		t.Fatal("delay should rise with Leff")
	}
	// Higher supply -> faster.
	if p.AlphaPowerDelay(p.VthNominal, p.LeffNominal, 1.0, p.TRatingC) >= base {
		t.Fatal("delay should fall with supply voltage")
	}
}

func TestAlphaPowerDelayNearThreshold(t *testing.T) {
	p := Default()
	// A supply at/below threshold must return +Inf, not panic or go
	// negative.
	d := p.AlphaPowerDelay(0.59, p.LeffNominal, 0.6, 60)
	if !math.IsInf(d, 1) {
		t.Fatalf("near-threshold delay = %v, want +Inf", d)
	}
}

func TestLeakageFactorReferencePoint(t *testing.T) {
	p := Default()
	got := p.LeakageFactor(p.VthNominal, p.VddNominal, p.TRefC)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("reference leakage factor = %v, want 1", got)
	}
}

func TestLeakageFactorMonotonicity(t *testing.T) {
	p := Default()
	base := p.LeakageFactor(p.VthNominal, 0.8, 60)
	if p.LeakageFactor(p.VthNominal-0.03, 0.8, 60) <= base {
		t.Fatal("leakage should rise as Vth drops")
	}
	if p.LeakageFactor(p.VthNominal, 0.8, 95) <= base {
		t.Fatal("leakage should rise with temperature")
	}
	if p.LeakageFactor(p.VthNominal, 1.0, 60) <= base {
		t.Fatal("leakage should rise with supply (DIBL)")
	}
}

func TestLeakageFactorMagnitude(t *testing.T) {
	// Low-Vth devices must gain more leakage than high-Vth devices save:
	// the up/down asymmetry that makes variation increase total leakage.
	p := Default()
	up := p.LeakageFactor(p.VthNominal-0.03, 1.0, 60)
	down := p.LeakageFactor(p.VthNominal+0.03, 1.0, 60)
	if (up - 1) <= (1 - down) {
		t.Fatalf("leakage asymmetry missing: +%v vs -%v", up-1, 1-down)
	}
}

func TestRandomLeakageUplift(t *testing.T) {
	p := Default()
	if got := p.RandomLeakageUplift(0, 60); got != 1 {
		t.Fatalf("zero-sigma uplift = %v", got)
	}
	u := p.RandomLeakageUplift(0.02, 60)
	if u <= 1 || u > 2 {
		t.Fatalf("uplift = %v, want slightly above 1", u)
	}
	if p.RandomLeakageUplift(0.04, 60) <= u {
		t.Fatal("uplift should grow with sigma")
	}
}

// Property: delay is always positive (or +Inf) and leakage always
// positive, for physically plausible inputs.
func TestDelayLeakagePositiveProperty(t *testing.T) {
	p := Default()
	f := func(dvthRaw, vRaw, tRaw float64) bool {
		dvth := math.Mod(math.Abs(dvthRaw), 0.1) - 0.05 // +-50 mV
		v := 0.6 + math.Mod(math.Abs(vRaw), 0.4)        // [0.6, 1.0)
		temp := 40 + math.Mod(math.Abs(tRaw), 80)       // [40, 120)
		if math.IsNaN(dvth) || math.IsNaN(v) || math.IsNaN(temp) {
			return true
		}
		d := p.AlphaPowerDelay(p.VthNominal+dvth, p.LeffNominal, v, temp)
		if !(d > 0) {
			return false
		}
		l := p.LeakageFactor(p.VthNominal+dvth, v, temp)
		return l > 0 && !math.IsInf(l, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
