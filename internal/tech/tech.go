// Package tech holds the 32 nm technology parameters and device-level
// formulas shared by the delay, power, and thermal models: the alpha-power
// MOSFET delay law, the subthreshold/gate leakage dependence on threshold
// voltage and temperature, and the chip-wide voltage/frequency envelope
// from the paper's Table 4.
package tech

import (
	"fmt"
	"math"
)

// Physical constants.
const (
	boltzmann      = 1.380649e-23 // J/K
	electronCharge = 1.602177e-19 // C
)

// Params bundles the technology constants. The defaults in Default()
// correspond to the paper's 32 nm configuration (Table 4).
type Params struct {
	// VthNominal is the mean threshold voltage in volts at TRef (the paper
	// uses 250 mV at 60 C).
	VthNominal float64
	// VthTempCoeff is the decrease of Vth in volts per kelvin of
	// temperature increase.
	VthTempCoeff float64
	// TRefC is the reference temperature in Celsius at which VthNominal is
	// specified.
	TRefC float64
	// VddNominal and VddMin bound the supply range (1.0 V and 0.6 V).
	VddNominal float64
	VddMin     float64
	// VStep is the voltage-ladder step for DVFS levels.
	VStep float64
	// FNominalHz is the nominal chip frequency at VddNominal with nominal
	// process parameters at the rating temperature (4 GHz).
	FNominalHz float64
	// TRatingC is the temperature in Celsius at which core frequencies are
	// rated (the paper measures Fmax at the hottest observed ~95 C).
	TRatingC float64
	// Alpha is the exponent of the alpha-power delay law (~1.3 for
	// velocity-saturated short-channel devices).
	Alpha float64
	// SubVtSlopeN is the subthreshold slope ideality factor n in
	// I ~ exp(-Vth/(n kT/q)).
	SubVtSlopeN float64
	// DIBL is the drain-induced barrier lowering coefficient: effective
	// Vth drops by DIBL volts per volt of Vdd.
	DIBL float64
	// LeffNominal is the nominal effective gate length in meters.
	LeffNominal float64
	// VthRollOff couples the two variation parameters through the
	// short-channel effect: a device whose gate is shorter than nominal
	// by a fraction x sees its threshold reduced by VthRollOff*x volts.
	// This makes fast (short-Leff) regions leaky, the correlation the
	// paper's Figure 6 exhibits.
	VthRollOff float64
	// MemLatency is the main-memory access latency in seconds (400 cycles
	// at the 4 GHz nominal frequency).
	MemLatency float64
}

// Default returns the paper's 32 nm technology configuration.
func Default() Params {
	return Params{
		VthNominal:   0.250,
		VthTempCoeff: 0.0005, // 0.5 mV/K
		TRefC:        60,
		VddNominal:   1.0,
		VddMin:       0.6,
		VStep:        0.05,
		FNominalHz:   4e9,
		TRatingC:     95,
		Alpha:        1.5,
		SubVtSlopeN:  2.6,
		DIBL:         0.15,
		LeffNominal:  13e-9,
		VthRollOff:   0.25,
		MemLatency:   100e-9, // 400 cycles @ 4 GHz
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.VddMin <= 0 || p.VddNominal <= p.VddMin {
		return fmt.Errorf("tech: invalid Vdd range [%v, %v]", p.VddMin, p.VddNominal)
	}
	if p.VStep <= 0 || p.VStep > p.VddNominal-p.VddMin {
		return fmt.Errorf("tech: invalid voltage step %v", p.VStep)
	}
	if p.VthNominal <= 0 || p.VthNominal >= p.VddMin {
		return fmt.Errorf("tech: Vth %v outside (0, VddMin)", p.VthNominal)
	}
	if p.FNominalHz <= 0 || p.Alpha <= 0 || p.SubVtSlopeN <= 0 {
		return fmt.Errorf("tech: non-positive frequency/alpha/slope")
	}
	return nil
}

// VoltageLevels returns the DVFS voltage ladder from VddMin to VddNominal
// inclusive, in ascending order.
func (p Params) VoltageLevels() []float64 {
	var levels []float64
	for v := p.VddMin; v < p.VddNominal+p.VStep/2; v += p.VStep {
		levels = append(levels, math.Round(v*1000)/1000)
	}
	if last := levels[len(levels)-1]; last != p.VddNominal {
		levels[len(levels)-1] = p.VddNominal
	}
	return levels
}

// EffectiveVth returns the threshold voltage after applying the
// short-channel roll-off for a device with gate length leff: shorter
// channels have lower thresholds (faster and leakier).
func (p Params) EffectiveVth(vth, leff float64) float64 {
	return vth + p.VthRollOff*(leff-p.LeffNominal)/p.LeffNominal
}

// ThermalVoltage returns kT/q in volts at the given temperature in Celsius.
func ThermalVoltage(tempC float64) float64 {
	return boltzmann * (tempC + 273.15) / electronCharge
}

// VthAtTemp returns the threshold voltage at tempC for a device whose
// threshold at TRefC is vthRef. Vth decreases as temperature rises.
func (p Params) VthAtTemp(vthRef, tempC float64) float64 {
	return vthRef - p.VthTempCoeff*(tempC-p.TRefC)
}

// AlphaPowerDelay returns the relative gate delay of a device with
// threshold vth and effective length leff at supply v and temperature
// tempC, normalised so that the nominal device at VddNominal and TRatingC
// has delay 1. Delay follows the alpha-power law
//
//	d ~ Leff * V / (V - Vth)^alpha
//
// with carrier mobility degrading as temperature rises (T^1.5 scattering),
// which slows circuits at high temperature.
func (p Params) AlphaPowerDelay(vth, leff, v, tempC float64) float64 {
	vthT := p.VthAtTemp(vth, tempC)
	overdrive := v - vthT
	if overdrive <= 0.02 {
		// The device no longer switches usefully; return a huge delay so
		// callers treat this operating point as infeasible rather than
		// dividing by zero.
		return math.Inf(1)
	}
	mobility := math.Pow((p.TRatingC+273.15)/(tempC+273.15), 1.5)
	nomVth := p.VthAtTemp(p.VthNominal, p.TRatingC)
	nomOver := p.VddNominal - nomVth
	num := (leff / p.LeffNominal) * (v / math.Pow(overdrive, p.Alpha))
	den := p.VddNominal / math.Pow(nomOver, p.Alpha)
	return num / den / mobility
}

// LeakageFactor returns the relative subthreshold leakage current of a
// device with threshold vth at supply v and temperature tempC, normalised
// to 1 for the nominal device at VddNominal and TRefC. It captures the
// three dependences that drive the paper's core-to-core power variation:
// exponential growth as Vth drops, exponential growth with temperature
// (both through kT/q and the Vth temperature coefficient), and
// DIBL-mediated supply dependence.
func (p Params) LeakageFactor(vth, v, tempC float64) float64 {
	vt := ThermalVoltage(tempC)
	vtRef := ThermalVoltage(p.TRefC)
	vthT := p.VthAtTemp(vth, tempC)
	vthRef := p.VthNominal
	tK := tempC + 273.15
	tRefK := p.TRefC + 273.15
	expTerm := math.Exp((-vthT+p.DIBL*v)/(p.SubVtSlopeN*vt)) /
		math.Exp((-vthRef+p.DIBL*p.VddNominal)/(p.SubVtSlopeN*vtRef))
	// T^2 prefactor from the subthreshold current equation; linear V from
	// the drain term.
	return (tK * tK) / (tRefK * tRefK) * (v / p.VddNominal) * expTerm
}

// RandomLeakageUplift returns the factor by which within-die random Vth
// variation with standard deviation sigmaVth inflates the expected leakage
// of a large block relative to a variation-free block. Leakage is
// exponential in -Vth, so a normally distributed Vth yields a lognormal
// leakage whose mean exceeds the leakage at the mean threshold:
//
//	E[exp(-dVth/S)] = exp(sigma^2 / (2 S^2)),  S = n kT/q.
//
// This is the mechanism by which variation increases total chip leakage
// (paper Section 3).
func (p Params) RandomLeakageUplift(sigmaVth, tempC float64) float64 {
	s := p.SubVtSlopeN * ThermalVoltage(tempC)
	return math.Exp(sigmaVth * sigmaVth / (2 * s * s))
}
