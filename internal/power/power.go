// Package power models chip power consumption: static (leakage) power per
// block from the variation maps via the tech leakage law, and dynamic power
// per core from the running thread's activity. The constants are calibrated
// so that a nominal 20-core die lands in the paper's 50-100 W operating
// envelope, with per-core dynamic power spanning Table 5's 1.5-4.4 W range.
package power

import (
	"fmt"

	"vasched/internal/floorplan"
	"vasched/internal/tech"
	"vasched/internal/varmodel"
)

// Model holds the power-model calibration.
type Model struct {
	// Tech supplies the leakage and delay laws.
	Tech tech.Params
	// CoreStaticNomW is one core's static power at (VddNominal, TRefC)
	// with nominal (variation-free) process parameters.
	CoreStaticNomW float64
	// L2StaticNomW is the whole shared L2's static power at the same
	// reference point. The L2 stays on the nominal supply (it is shared,
	// so per-core DVFS does not scale it).
	L2StaticNomW float64
	// SRAMLeakWeight boosts the per-area leakage density of SRAM blocks
	// relative to logic (dense arrays leak more per unit area).
	SRAMLeakWeight float64
	// ClockFrac is the fraction of a core's dynamic power consumed by the
	// clock tree and other activity that persists while the pipeline
	// stalls; the rest scales with IPC.
	ClockFrac float64
	// L2DynPerAccessJ is the dynamic energy per L2 access.
	L2DynPerAccessJ float64
}

// DefaultModel returns the calibrated 32 nm model.
func DefaultModel(t tech.Params) Model {
	return Model{
		Tech:            t,
		CoreStaticNomW:  2.0,
		L2StaticNomW:    5.0,
		SRAMLeakWeight:  1.5,
		ClockFrac:       0.35,
		L2DynPerAccessJ: 2.0e-9,
	}
}

// Validate reports calibration errors.
func (m Model) Validate() error {
	if m.CoreStaticNomW <= 0 || m.L2StaticNomW < 0 {
		return fmt.Errorf("power: non-positive static calibration")
	}
	if m.ClockFrac < 0 || m.ClockFrac > 1 {
		return fmt.Errorf("power: clock fraction %v outside [0,1]", m.ClockFrac)
	}
	if m.SRAMLeakWeight <= 0 {
		return fmt.Errorf("power: non-positive SRAM leakage weight")
	}
	return m.Tech.Validate()
}

// BlockStaticW returns the static power of floorplan block b on the given
// die at supply v and block temperature tempC. Core blocks share the
// core's supply; L2 blocks are always at the nominal supply.
func (m Model) BlockStaticW(maps *varmodel.DieMaps, fp *floorplan.Floorplan, b floorplan.Block, v, tempC float64) float64 {
	vth := maps.VthMeanOverRect(b.R.X0, b.R.Y0, b.R.X1, b.R.Y1)
	leff := maps.LeffMeanOverRect(b.R.X0, b.R.Y0, b.R.X1, b.R.Y1)
	// Short-channel coupling: regions with shorter gates leak more.
	vth = m.Tech.EffectiveVth(vth, leff)
	uplift := m.Tech.RandomLeakageUplift(maps.VthSigmaRan, tempC)
	factor := m.Tech.LeakageFactor(vth, v, tempC) * uplift

	if b.Kind == floorplan.UnitL2 {
		// Distribute the L2 budget over the banks by area.
		l2Area := 0.0
		for _, lb := range fp.L2Blocks() {
			l2Area += lb.R.Area()
		}
		return m.L2StaticNomW * (b.R.Area() / l2Area) * factor
	}

	// Distribute the core budget over the core's blocks by weighted area.
	coreBlocks := fp.CoreBlocks(b.Core)
	total := 0.0
	for _, cb := range coreBlocks {
		total += m.blockWeight(cb)
	}
	return m.CoreStaticNomW * (m.blockWeight(b) / total) * factor
}

func (m Model) blockWeight(b floorplan.Block) float64 {
	w := b.R.Area()
	if b.Kind.IsSRAM() {
		w *= m.SRAMLeakWeight
	}
	return w
}

// BlockVthEff returns the block's effective (roll-off-coupled) mean
// threshold voltage and its nominal static power share at the reference
// point. Callers that evaluate leakage repeatedly (the thermal fixed point
// runs per millisecond of simulated time) cache these per-die constants
// and use BlockStaticFromCache instead of BlockStaticW.
func (m Model) BlockVthEff(maps *varmodel.DieMaps, fp *floorplan.Floorplan, b floorplan.Block) (vthEff, refW float64) {
	vth := maps.VthMeanOverRect(b.R.X0, b.R.Y0, b.R.X1, b.R.Y1)
	leff := maps.LeffMeanOverRect(b.R.X0, b.R.Y0, b.R.X1, b.R.Y1)
	vthEff = m.Tech.EffectiveVth(vth, leff)
	if b.Kind == floorplan.UnitL2 {
		l2Area := 0.0
		for _, lb := range fp.L2Blocks() {
			l2Area += lb.R.Area()
		}
		return vthEff, m.L2StaticNomW * (b.R.Area() / l2Area)
	}
	total := 0.0
	for _, cb := range fp.CoreBlocks(b.Core) {
		total += m.blockWeight(cb)
	}
	return vthEff, m.CoreStaticNomW * (m.blockWeight(b) / total)
}

// BlockStaticFromCache evaluates a block's static power from the cached
// (vthEff, refW) pair returned by BlockVthEff, with the random-variation
// uplift applied. It is algebraically identical to BlockStaticW.
func (m Model) BlockStaticFromCache(vthEff, refW, sigmaRan, v, tempC float64) float64 {
	return refW * m.Tech.LeakageFactor(vthEff, v, tempC) * m.Tech.RandomLeakageUplift(sigmaRan, tempC)
}

// CoreStaticW returns the total static power of core c at supply v with
// all its blocks at temperature tempC.
func (m Model) CoreStaticW(maps *varmodel.DieMaps, fp *floorplan.Floorplan, core int, v, tempC float64) float64 {
	sum := 0.0
	for _, b := range fp.CoreBlocks(core) {
		sum += m.BlockStaticW(maps, fp, b, v, tempC)
	}
	return sum
}

// L2StaticW returns the total static power of the shared L2 with its banks
// at temperature tempC. The L2 runs at the nominal supply.
func (m Model) L2StaticW(maps *varmodel.DieMaps, fp *floorplan.Floorplan, tempC float64) float64 {
	sum := 0.0
	for _, b := range fp.L2Blocks() {
		sum += m.BlockStaticW(maps, fp, b, m.Tech.VddNominal, tempC)
	}
	return sum
}

// DynamicCoreW returns the dynamic power of a core running a thread whose
// calibrated dynamic power is dynNomW at (FNominalHz, VddNominal) with
// nominal IPC ipcNom, when operated at supply v, frequency fHz, and
// achieved IPC ipc. Dynamic power scales as C V^2 f, with the non-clock
// share further scaled by relative activity (IPC).
func (m Model) DynamicCoreW(dynNomW, ipcNom, v, fHz, ipc float64) float64 {
	if dynNomW <= 0 || fHz <= 0 {
		return 0
	}
	scaleVF := (v / m.Tech.VddNominal) * (v / m.Tech.VddNominal) * (fHz / m.Tech.FNominalHz)
	activity := 1.0
	if ipcNom > 0 {
		activity = m.ClockFrac + (1-m.ClockFrac)*(ipc/ipcNom)
	}
	return dynNomW * scaleVF * activity
}

// L2DynamicW returns the dynamic power of the shared L2 given an aggregate
// access rate in accesses per second.
func (m Model) L2DynamicW(accessesPerSec float64) float64 {
	if accessesPerSec < 0 {
		return 0
	}
	return m.L2DynPerAccessJ * accessesPerSec
}
