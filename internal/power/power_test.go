package power

import (
	"testing"

	"vasched/internal/floorplan"
	"vasched/internal/tech"
	"vasched/internal/varmodel"
)

func testMaps(t *testing.T, sigmaOverMu float64) *varmodel.DieMaps {
	t.Helper()
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 64, 64
	cfg.VthSigmaOverMu = sigmaOverMu
	g, err := varmodel.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maps, err := g.Die(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	return maps
}

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel(tech.Default()).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	mut := []func(*Model){
		func(m *Model) { m.CoreStaticNomW = 0 },
		func(m *Model) { m.L2StaticNomW = -1 },
		func(m *Model) { m.ClockFrac = 1.5 },
		func(m *Model) { m.SRAMLeakWeight = 0 },
	}
	for i, f := range mut {
		m := DefaultModel(tech.Default())
		f(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestNominalCoreStaticMatchesCalibration(t *testing.T) {
	// With zero variation at the reference point, core static power must
	// equal the calibration constant exactly (uplift is 1, factor is 1).
	maps := testMaps(t, 0)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	got := m.CoreStaticW(maps, fp, 0, m.Tech.VddNominal, m.Tech.TRefC)
	if diff := got - m.CoreStaticNomW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("nominal core static = %v, want %v", got, m.CoreStaticNomW)
	}
	l2 := m.L2StaticW(maps, fp, m.Tech.TRefC)
	if diff := l2 - m.L2StaticNomW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("nominal L2 static = %v, want %v", l2, m.L2StaticNomW)
	}
}

func TestVariationIncreasesTotalLeakage(t *testing.T) {
	// Paper Section 3: low-Vth cores gain more than high-Vth cores save,
	// so the die-wide static power rises with variation.
	fp := floorplan.New20CoreCMP()
	total := func(maps *varmodel.DieMaps) float64 {
		m := DefaultModel(maps.Cfg.Tech)
		sum := m.L2StaticW(maps, fp, 80)
		for c := 0; c < fp.NumCores; c++ {
			sum += m.CoreStaticW(maps, fp, c, 1.0, 80)
		}
		return sum
	}
	withVar := total(testMaps(t, 0.12))
	without := total(testMaps(t, 0))
	if withVar <= without {
		t.Fatalf("variation did not increase leakage: %v <= %v", withVar, without)
	}
}

func TestCoreToCoreStaticSpread(t *testing.T) {
	maps := testMaps(t, 0.12)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	lo, hi := 1e18, 0.0
	for c := 0; c < fp.NumCores; c++ {
		p := m.CoreStaticW(maps, fp, c, 1.0, 80)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi/lo < 1.2 {
		t.Fatalf("static spread %v too small for sigma/mu=0.12", hi/lo)
	}
}

func TestStaticScalesWithVoltageAndTemp(t *testing.T) {
	maps := testMaps(t, 0.12)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	base := m.CoreStaticW(maps, fp, 0, 0.8, 70)
	if m.CoreStaticW(maps, fp, 0, 1.0, 70) <= base {
		t.Fatal("static should rise with supply")
	}
	if m.CoreStaticW(maps, fp, 0, 0.8, 95) <= base {
		t.Fatal("static should rise with temperature")
	}
}

func TestDynamicCoreW(t *testing.T) {
	m := DefaultModel(tech.Default())
	// At the calibration point with nominal IPC, dynamic power equals the
	// Table 5 number.
	got := m.DynamicCoreW(3.7, 1.1, 1.0, 4e9, 1.1)
	if d := got - 3.7; d > 1e-12 || d < -1e-12 {
		t.Fatalf("calibration-point dynamic = %v, want 3.7", got)
	}
	// Quadratic in V, linear in f.
	halfF := m.DynamicCoreW(3.7, 1.1, 1.0, 2e9, 1.1)
	if d := halfF - 3.7/2; d > 1e-12 || d < -1e-12 {
		t.Fatalf("half-frequency dynamic = %v", halfF)
	}
	lowV := m.DynamicCoreW(3.7, 1.1, 0.5, 4e9, 1.1)
	if d := lowV - 3.7/4; d > 1e-12 || d < -1e-12 {
		t.Fatalf("half-voltage dynamic = %v", lowV)
	}
	// Stalled pipeline: only the clock fraction remains.
	stalled := m.DynamicCoreW(3.7, 1.1, 1.0, 4e9, 0)
	if d := stalled - 3.7*m.ClockFrac; d > 1e-12 || d < -1e-12 {
		t.Fatalf("stalled dynamic = %v", stalled)
	}
	// Degenerate inputs.
	if m.DynamicCoreW(0, 1, 1, 4e9, 1) != 0 || m.DynamicCoreW(3, 1, 1, 0, 1) != 0 {
		t.Fatal("degenerate dynamic power should be 0")
	}
}

func TestL2DynamicW(t *testing.T) {
	m := DefaultModel(tech.Default())
	if m.L2DynamicW(-5) != 0 {
		t.Fatal("negative access rate should clamp to 0")
	}
	if got := m.L2DynamicW(1e9); got != m.L2DynPerAccessJ*1e9 {
		t.Fatalf("L2 dynamic = %v", got)
	}
}

func TestFastRegionsLeakMore(t *testing.T) {
	// The Vth-Leff roll-off coupling: a block with shorter-than-nominal
	// gates must leak more than the same block with nominal gates.
	maps := testMaps(t, 0.12)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	b := fp.CoreBlocks(0)[0]
	withCoupling := m.BlockStaticW(maps, fp, b, 1.0, 80)
	// Same model with the coupling disabled.
	m2 := m
	m2.Tech.VthRollOff = 0
	without := m2.BlockStaticW(maps, fp, b, 1.0, 80)
	leffMean := maps.LeffMeanOverRect(b.R.X0, b.R.Y0, b.R.X1, b.R.Y1)
	if leffMean < maps.Cfg.Tech.LeffNominal && withCoupling <= without {
		t.Fatal("short-channel block should leak more with coupling enabled")
	}
	if leffMean > maps.Cfg.Tech.LeffNominal && withCoupling >= without {
		t.Fatal("long-channel block should leak less with coupling enabled")
	}
}

func TestCachedLeakageMatchesDirect(t *testing.T) {
	// BlockStaticFromCache must be algebraically identical to
	// BlockStaticW for every block, voltage, and temperature.
	maps := testMaps(t, 0.12)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	for _, b := range fp.Blocks[:20] {
		vthEff, refW := m.BlockVthEff(maps, fp, b)
		if refW <= 0 {
			t.Fatalf("block %s nominal share %v", b.Name, refW)
		}
		for _, v := range []float64{0.6, 0.8, 1.0} {
			for _, tc := range []float64{55.0, 80.0, 100.0} {
				direct := m.BlockStaticW(maps, fp, b, v, tc)
				cached := m.BlockStaticFromCache(vthEff, refW, maps.VthSigmaRan, v, tc)
				if d := direct - cached; d > 1e-12 || d < -1e-12 {
					t.Fatalf("block %s at (%v V, %v C): direct %v != cached %v",
						b.Name, v, tc, direct, cached)
				}
			}
		}
	}
}

func TestBlockSharesSumToBudgets(t *testing.T) {
	// The per-block nominal shares must partition the core and L2 budgets.
	maps := testMaps(t, 0.12)
	fp := floorplan.New20CoreCMP()
	m := DefaultModel(maps.Cfg.Tech)
	var l2 float64
	perCore := make([]float64, fp.NumCores)
	for _, b := range fp.Blocks {
		_, refW := m.BlockVthEff(maps, fp, b)
		if b.Kind == floorplan.UnitL2 {
			l2 += refW
		} else {
			perCore[b.Core] += refW
		}
	}
	if d := l2 - m.L2StaticNomW; d > 1e-9 || d < -1e-9 {
		t.Fatalf("L2 shares sum to %v, want %v", l2, m.L2StaticNomW)
	}
	for core, sum := range perCore {
		if d := sum - m.CoreStaticNomW; d > 1e-9 || d < -1e-9 {
			t.Fatalf("core %d shares sum to %v, want %v", core, sum, m.CoreStaticNomW)
		}
	}
}
