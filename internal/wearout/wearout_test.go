package wearout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	p := DefaultParams()
	p.ActivationEnergyEV = 0
	if p.Validate() == nil {
		t.Fatal("zero activation energy accepted")
	}
	p = DefaultParams()
	p.EMWeight = 2
	if p.Validate() == nil {
		t.Fatal("EM weight > 1 accepted")
	}
}

func TestReferencePointIsUnity(t *testing.T) {
	p := DefaultParams()
	af := p.AccelerationFactor(p.TRefC, p.VRef)
	if math.Abs(af-1) > 1e-12 {
		t.Fatalf("reference AF = %v, want 1", af)
	}
}

func TestAccelerationMonotone(t *testing.T) {
	p := DefaultParams()
	base := p.AccelerationFactor(70, 0.9)
	if p.AccelerationFactor(90, 0.9) <= base {
		t.Fatal("hotter core should age faster")
	}
	if p.AccelerationFactor(70, 1.0) <= base {
		t.Fatal("higher supply should age faster")
	}
	if p.AccelerationFactor(70, 0) != 0 {
		t.Fatal("powered-off core should not age")
	}
}

func TestArrheniusMagnitude(t *testing.T) {
	// With Ea = 0.7 eV, +10 K around 60 C accelerates aging by roughly
	// 1.9-2.1x — the classic "10 degrees halves the lifetime" rule.
	p := DefaultParams()
	ratio := p.thermalAF(70) / p.thermalAF(60)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("10 K acceleration = %v, want ~2", ratio)
	}
}

func TestAccumulator(t *testing.T) {
	acc, err := NewAccumulator(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 at the reference point, core 1 powered off.
	if err := acc.Add([]float64{60, 60}, []float64{1.0, 0}, 10); err != nil {
		t.Fatal(err)
	}
	idx := acc.Index()
	if math.Abs(idx[0]-1) > 1e-12 {
		t.Fatalf("reference core index = %v", idx[0])
	}
	if idx[1] != 0 {
		t.Fatalf("off core index = %v", idx[1])
	}
	if acc.Max() != idx[0] {
		t.Fatalf("max = %v", acc.Max())
	}
}

func TestAccumulatorValidation(t *testing.T) {
	if _, err := NewAccumulator(DefaultParams(), 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad := DefaultParams()
	bad.VRef = 0
	if _, err := NewAccumulator(bad, 2); err == nil {
		t.Fatal("invalid params accepted")
	}
	acc, err := NewAccumulator(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]float64{60}, []float64{1, 1}, 1); err == nil {
		t.Fatal("mismatched temps accepted")
	}
	if acc.Max() != 0 {
		t.Fatal("empty accumulator should report 0")
	}
}

// Property: acceleration factors are non-negative and finite for physical
// operating points.
func TestAccelerationFactorSaneProperty(t *testing.T) {
	p := DefaultParams()
	f := func(tRaw, vRaw float64) bool {
		temp := 40 + math.Mod(math.Abs(tRaw), 80) // [40, 120)
		v := math.Mod(math.Abs(vRaw), 1.2)        // [0, 1.2)
		if math.IsNaN(temp) || math.IsNaN(v) {
			return true
		}
		af := p.AccelerationFactor(temp, v)
		return af >= 0 && !math.IsInf(af, 0) && !math.IsNaN(af)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsMismatchedVoltages(t *testing.T) {
	acc, err := NewAccumulator(DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]float64{60, 60, 60}, []float64{1}, 1); err == nil {
		t.Fatal("mismatched voltage slice accepted")
	}
}

func TestTotalAndEquivalentTime(t *testing.T) {
	acc, err := NewAccumulator(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]float64{80, 60}, []float64{1, 1}, 5); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add([]float64{80, 60}, []float64{1, 1}, 5); err != nil {
		t.Fatal(err)
	}
	if acc.Total() != 10 {
		t.Fatalf("total = %v", acc.Total())
	}
	eq := acc.EquivalentTime()
	if eq[0] <= eq[1] {
		t.Fatalf("hotter core accumulated less: %v vs %v", eq[0], eq[1])
	}
	// EquivalentTime returns a copy, not a view.
	eq[0] = -1
	if acc.EquivalentTime()[0] < 0 {
		t.Fatal("EquivalentTime exposes internal state")
	}
}

// Property: equivalent time is monotonically non-decreasing under positive
// dt at any physical operating point — the invariant horizon extrapolation
// relies on.
func TestEquivalentTimeMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	acc, err := NewAccumulator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	f := func(tRaw, vRaw, dtRaw float64) bool {
		temp := 40 + math.Mod(math.Abs(tRaw), 80)  // [40, 120)
		v := math.Mod(math.Abs(vRaw), 1.2)         // [0, 1.2)
		dt := 1e-3 + math.Mod(math.Abs(dtRaw), 10) // (0, 10]
		if math.IsNaN(temp) || math.IsNaN(v) || math.IsNaN(dt) {
			return true
		}
		if err := acc.Add([]float64{temp}, []float64{v}, dt); err != nil {
			return false
		}
		cur := acc.EquivalentTime()[0]
		ok := cur >= prev
		prev = cur
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the acceleration factor is strictly increasing in temperature
// at fixed positive voltage.
func TestAccelerationMonotoneInTemperatureProperty(t *testing.T) {
	p := DefaultParams()
	f := func(tRaw, dRaw, vRaw float64) bool {
		t1 := 40 + math.Mod(math.Abs(tRaw), 70)  // [40, 110)
		d := 0.1 + math.Mod(math.Abs(dRaw), 10)  // (0, 10.1)
		v := 0.6 + math.Mod(math.Abs(vRaw), 0.5) // [0.6, 1.1)
		if math.IsNaN(t1) || math.IsNaN(d) || math.IsNaN(v) {
			return true
		}
		return p.AccelerationFactor(t1+d, v) > p.AccelerationFactor(t1, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
