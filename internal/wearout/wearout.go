// Package wearout models lifetime degradation of the CMP's cores — the
// paper's second stated extension ("understanding how our variation-aware
// algorithms affect CMP wearout"). Two classic mechanisms are tracked,
// both strongly temperature-activated, which is what couples wearout to
// the scheduling and power-management decisions this repository studies:
//
//   - Electromigration, with Black's-equation temperature acceleration
//     AF_EM = exp(Ea/k * (1/Tref - 1/T)).
//   - Bias temperature instability (NBTI), accelerated by both temperature
//     and supply voltage: AF_BTI = (V/Vref)^gamma * exp(Ea/k * (1/Tref - 1/T)).
//
// An Accumulator integrates the combined acceleration factor over time per
// core; the result is a wearout index in "equivalent nominal hours per
// hour": 1.0 means the core ages as fast as at the reference operating
// point, 2.0 twice as fast.
package wearout

import (
	"fmt"
	"math"
)

// Params holds the aging-model constants.
type Params struct {
	// ActivationEnergyEV is the thermal activation energy in eV (~0.9 for
	// electromigration in copper interconnect, ~0.1-0.2 for NBTI; a
	// combined effective value is used).
	ActivationEnergyEV float64
	// TRefC and VRef define the reference operating point with
	// acceleration factor 1.
	TRefC float64
	VRef  float64
	// VoltageExponent is gamma in the BTI voltage-acceleration power law.
	VoltageExponent float64
	// EMWeight balances the two mechanisms in the combined factor
	// (0 = all BTI, 1 = all EM).
	EMWeight float64
}

// DefaultParams returns a calibration with the reference point at the
// paper's nominal 60 C / 1.0 V.
func DefaultParams() Params {
	return Params{
		ActivationEnergyEV: 0.7,
		TRefC:              60,
		VRef:               1.0,
		VoltageExponent:    3,
		EMWeight:           0.5,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.ActivationEnergyEV <= 0 || p.VRef <= 0 {
		return fmt.Errorf("wearout: non-positive activation energy or Vref")
	}
	if p.EMWeight < 0 || p.EMWeight > 1 {
		return fmt.Errorf("wearout: EM weight %v outside [0,1]", p.EMWeight)
	}
	return nil
}

// boltzmannEV is the Boltzmann constant in eV/K.
const boltzmannEV = 8.617333e-5

// thermalAF returns the Arrhenius acceleration factor at tempC.
func (p Params) thermalAF(tempC float64) float64 {
	tRef := p.TRefC + 273.15
	t := tempC + 273.15
	return math.Exp(p.ActivationEnergyEV / boltzmannEV * (1/tRef - 1/t))
}

// AccelerationFactor returns the combined aging rate at (tempC, v)
// relative to the reference point. A powered-off core (v = 0) does not
// age.
func (p Params) AccelerationFactor(tempC, v float64) float64 {
	if v <= 0 {
		return 0
	}
	th := p.thermalAF(tempC)
	em := th
	bti := th * math.Pow(v/p.VRef, p.VoltageExponent)
	return p.EMWeight*em + (1-p.EMWeight)*bti
}

// Accumulator integrates per-core aging over a run.
type Accumulator struct {
	p     Params
	aged  []float64 // equivalent nominal time per core
	total float64   // wall time integrated
}

// NewAccumulator tracks numCores cores.
func NewAccumulator(p Params, numCores int) (*Accumulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numCores <= 0 {
		return nil, fmt.Errorf("wearout: invalid core count %d", numCores)
	}
	return &Accumulator{p: p, aged: make([]float64, numCores)}, nil
}

// Add records dt time units at the given per-core temperatures and supply
// voltages (v[i] = 0 for powered-off cores).
func (a *Accumulator) Add(tempC, v []float64, dt float64) error {
	if len(tempC) != len(a.aged) || len(v) != len(a.aged) {
		return fmt.Errorf("wearout: got %d temps / %d voltages for %d cores",
			len(tempC), len(v), len(a.aged))
	}
	for i := range a.aged {
		a.aged[i] += a.p.AccelerationFactor(tempC[i], v[i]) * dt
	}
	a.total += dt
	return nil
}

// Total returns the wall time integrated so far (the sum of every Add's
// dt).
func (a *Accumulator) Total() float64 { return a.total }

// EquivalentTime returns the per-core accumulated equivalent nominal time:
// the integral of the acceleration factor over wall time. Unlike Index it
// is monotonically non-decreasing under positive dt, which makes it the
// quantity long-horizon aging models extrapolate (Vth drift grows with
// equivalent stress time, not with the momentary rate).
func (a *Accumulator) EquivalentTime() []float64 {
	return append([]float64(nil), a.aged...)
}

// Index returns the per-core wearout indices: equivalent nominal aging per
// unit wall time. Zero before any samples.
func (a *Accumulator) Index() []float64 {
	out := make([]float64, len(a.aged))
	if a.total == 0 {
		return out
	}
	for i, aged := range a.aged {
		out[i] = aged / a.total
	}
	return out
}

// Max returns the worst per-core index — the chip's lifetime is set by its
// fastest-aging core.
func (a *Accumulator) Max() float64 {
	idx := a.Index()
	m := 0.0
	for _, v := range idx {
		if v > m {
			m = v
		}
	}
	return m
}
