// Package cpusim models the performance of one out-of-order core running
// one application, using interval analysis: in the absence of miss events
// the core sustains a base CPI set by its issue width and the program's
// instruction-level parallelism; branch mispredictions add a
// frequency-independent (in cycles) flush term; and off-chip misses add a
// stall term that is constant in *nanoseconds*, so its cycle cost — and
// hence the IPC penalty — grows with clock frequency.
//
// That last property is the load-bearing one for this repository: the
// paper's LinOpt treats IPC as frequency-independent (Section 4.3.1) while
// acknowledging it is only an approximation; this model supplies the real,
// frequency-dependent IPC that the approximation is measured against.
//
// The per-application base CPI is calibrated so the model reproduces the
// paper's Table 5 IPC exactly at the 4 GHz / 1 V reference point.
package cpusim

import (
	"fmt"

	"vasched/internal/workload"
)

// CoreConfig describes the paper's Alpha 21264-like core (Table 4).
type CoreConfig struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBEntries  int
	// BranchPenaltyCycles is the misprediction flush cost (7 in Table 4).
	BranchPenaltyCycles float64
	// MemLatency is the main-memory access latency in seconds.
	MemLatency float64
	// FNominalHz anchors the Table 5 calibration point.
	FNominalHz float64
}

// DefaultCoreConfig returns the paper's Table 4 core.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{
		FetchWidth:          4,
		IssueWidth:          2,
		CommitWidth:         2,
		ROBEntries:          80,
		BranchPenaltyCycles: 7,
		MemLatency:          100e-9, // 400 cycles at 4 GHz
		FNominalHz:          4e9,
	}
}

// Validate reports configuration errors.
func (c CoreConfig) Validate() error {
	if c.IssueWidth <= 0 || c.FetchWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("cpusim: non-positive widths %+v", c)
	}
	if c.BranchPenaltyCycles < 0 || c.MemLatency <= 0 || c.FNominalHz <= 0 {
		return fmt.Errorf("cpusim: invalid penalty/latency/frequency %+v", c)
	}
	return nil
}

// Model evaluates IPC for one core configuration.
type Model struct {
	cc CoreConfig
	// base CPI per application name, calibrated at construction.
	baseCPI map[string]float64
	// ptrCPI caches the same values keyed by the exact profile pointers
	// calibrated at construction, so the per-interval IPC hot path skips
	// hashing the application name. Populated once in New and read-only
	// afterwards (Model is shared across farm workers); profile copies
	// (e.g. from AdjustIPCNom) fall back to the name map.
	ptrCPI map[*workload.AppProfile]float64
}

// New calibrates a model for the given applications: for each profile, the
// base (miss-free) CPI is chosen so that total CPI at FNominalHz matches
// Table 5's IPC. The base CPI is floored at 1/IssueWidth — a calibration
// that would require super-issue-width throughput indicates an
// inconsistent profile and is reported as an error.
func New(cc CoreConfig, apps []*workload.AppProfile) (*Model, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cc:      cc,
		baseCPI: make(map[string]float64, len(apps)),
		ptrCPI:  make(map[*workload.AppProfile]float64, len(apps)),
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		target := 1 / a.IPCNom
		base := target - m.branchCPI(a) - m.memCPI(a, cc.FNominalHz)
		floor := 1 / float64(cc.IssueWidth)
		if base < floor {
			return nil, fmt.Errorf("cpusim: %s: calibration needs base CPI %.3f below issue floor %.3f",
				a.Name, base, floor)
		}
		m.baseCPI[a.Name] = base
		m.ptrCPI[a] = base
	}
	return m, nil
}

// base looks up the calibrated base CPI, by pointer when possible.
func (m *Model) base(a *workload.AppProfile) (float64, bool) {
	if b, ok := m.ptrCPI[a]; ok {
		return b, true
	}
	b, ok := m.baseCPI[a.Name]
	return b, ok
}

// Core returns the model's core configuration.
func (m *Model) Core() CoreConfig { return m.cc }

func (m *Model) branchCPI(a *workload.AppProfile) float64 {
	return a.BranchFrac * a.BranchMispredRate * m.cc.BranchPenaltyCycles
}

// memCPI returns the per-instruction stall cycles due to off-chip misses
// at frequency fHz: each L2 miss costs MemLatency seconds = MemLatency*f
// cycles, overlapped across MLP outstanding misses.
func (m *Model) memCPI(a *workload.AppProfile, fHz float64) float64 {
	missPerInst := a.L2MPKI / 1000
	return missPerInst * (m.cc.MemLatency * fHz) / a.MLP
}

// CPIBreakdown returns the base, branch, and memory CPI components for the
// application at frequency fHz.
func (m *Model) CPIBreakdown(a *workload.AppProfile, fHz float64) (base, branch, mem float64, err error) {
	b, ok := m.base(a)
	if !ok {
		return 0, 0, 0, fmt.Errorf("cpusim: application %q not calibrated in this model", a.Name)
	}
	return b, m.branchCPI(a), m.memCPI(a, fHz), nil
}

// IPC returns the application's IPC at frequency fHz during the given
// phase. It is exact at the calibration point: IPC(FNominalHz) with a
// neutral phase equals the profile's IPCNom.
func (m *Model) IPC(a *workload.AppProfile, phase workload.Phase, fHz float64) (float64, error) {
	base, branch, mem, err := m.CPIBreakdown(a, fHz)
	if err != nil {
		return 0, err
	}
	if fHz <= 0 {
		return 0, fmt.Errorf("cpusim: non-positive frequency %v", fHz)
	}
	ipc := phase.IPCScale / (base + branch + mem)
	if max := float64(m.cc.IssueWidth); ipc > max {
		ipc = max
	}
	return ipc, nil
}

// SteadyIPC is IPC with a neutral phase.
func (m *Model) SteadyIPC(a *workload.AppProfile, fHz float64) (float64, error) {
	return m.IPC(a, workload.Phase{IPCScale: 1, PowerScale: 1}, fHz)
}

// L2AccessRate returns the application's L2 accesses per second (its L1
// misses) at frequency fHz and achieved IPC, for the L2 dynamic-power
// model.
func (m *Model) L2AccessRate(a *workload.AppProfile, fHz, ipc float64) float64 {
	ips := ipc * fHz
	return a.L1MPKI / 1000 * ips
}

// AdjustIPCNom returns a copy of prof whose IPCNom is re-derived from this
// model's calibrated base CPI and the profile's (possibly re-measured)
// memory behaviour. Use it after cache.CalibrateProfile replaces a
// profile's MPKI: the microarchitectural core behaviour (base CPI) is
// retained from the original calibration while the memory-stall term
// reflects the measurement, keeping the profile self-consistent.
func (m *Model) AdjustIPCNom(a *workload.AppProfile) (*workload.AppProfile, error) {
	base, ok := m.base(a)
	if !ok {
		return nil, fmt.Errorf("cpusim: application %q not calibrated in this model", a.Name)
	}
	cpi := base + m.branchCPI(a) + m.memCPI(a, m.cc.FNominalHz)
	out := *a
	out.IPCNom = 1 / cpi
	if max := float64(m.cc.IssueWidth); out.IPCNom > max {
		out.IPCNom = max
	}
	return &out, nil
}
