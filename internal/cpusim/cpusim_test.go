package cpusim

import (
	"math"
	"testing"

	"vasched/internal/cache"
	"vasched/internal/workload"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultCoreConfig(), workload.SPEC())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrationReproducesTable5(t *testing.T) {
	m := newModel(t)
	for _, a := range workload.SPEC() {
		ipc, err := m.SteadyIPC(a, 4e9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ipc-a.IPCNom) > 1e-9 {
			t.Errorf("%s: IPC(4GHz) = %v, want %v", a.Name, ipc, a.IPCNom)
		}
	}
}

func TestIPCDropsWithFrequency(t *testing.T) {
	// Memory latency is constant in ns, so raising f costs more cycles
	// per miss: IPC must be non-increasing in f, strictly for memory-bound
	// apps.
	m := newModel(t)
	mcf, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.SteadyIPC(mcf, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.SteadyIPC(mcf, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Fatalf("mcf IPC did not drop with frequency: %v at 2 GHz, %v at 4 GHz", lo, hi)
	}
	// mcf is heavily memory-bound: the drop should be substantial (>20%).
	if hi > 0.8*lo {
		t.Fatalf("mcf IPC drop too small: %v -> %v", lo, hi)
	}
}

func TestComputeBoundAppNearlyFrequencyIndependent(t *testing.T) {
	m := newModel(t)
	crafty, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.SteadyIPC(crafty, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.SteadyIPC(crafty, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 0.9*lo {
		t.Fatalf("crafty IPC dropped %v -> %v; should be nearly flat", lo, hi)
	}
}

func TestThroughputStillRisesWithFrequency(t *testing.T) {
	// Even for memory-bound apps, IPS = IPC*f must not decrease with f in
	// this model (stall cycles scale at most linearly with f).
	m := newModel(t)
	for _, name := range []string{"mcf", "swim", "crafty"} {
		a, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for _, f := range []float64{1e9, 2e9, 3e9, 4e9} {
			ipc, err := m.SteadyIPC(a, f)
			if err != nil {
				t.Fatal(err)
			}
			ips := ipc * f
			if ips < prev*(1-1e-9) {
				t.Fatalf("%s: IPS fell from %v to %v at %v Hz", name, prev, ips, f)
			}
			prev = ips
		}
	}
}

func TestPhaseScalingAndIssueCap(t *testing.T) {
	m := newModel(t)
	vortex, err := workload.ByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.SteadyIPC(vortex, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	bigPhase := workload.Phase{IPCScale: 10, PowerScale: 1}
	capped, err := m.IPC(vortex, bigPhase, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if capped != float64(m.Core().IssueWidth) {
		t.Fatalf("IPC not capped at issue width: %v", capped)
	}
	halfPhase := workload.Phase{IPCScale: 0.5, PowerScale: 1}
	half, err := m.IPC(vortex, halfPhase, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-base/2) > 1e-9 {
		t.Fatalf("phase scaling wrong: %v vs %v/2", half, base)
	}
}

func TestCPIBreakdownComposition(t *testing.T) {
	m := newModel(t)
	a, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	base, branch, mem, err := m.CPIBreakdown(a, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 || branch < 0 || mem <= 0 {
		t.Fatalf("breakdown: %v %v %v", base, branch, mem)
	}
	if math.Abs(base+branch+mem-1/a.IPCNom) > 1e-9 {
		t.Fatalf("breakdown does not sum to calibrated CPI")
	}
	// Memory CPI doubles when frequency doubles.
	_, _, mem2, err := m.CPIBreakdown(a, 8e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mem2-2*mem) > 1e-9 {
		t.Fatalf("memory CPI not linear in f: %v vs %v", mem2, mem)
	}
}

func TestUncalibratedAppRejected(t *testing.T) {
	m := newModel(t)
	ghost := &workload.AppProfile{Name: "ghost", DynPowerW: 1, IPCNom: 1, MLP: 1,
		L1MPKI: 1, L2MPKI: 0.1, MemAccessFrac: 0.3}
	if _, err := m.SteadyIPC(ghost, 4e9); err == nil {
		t.Fatal("uncalibrated app accepted")
	}
}

func TestBadConfigRejected(t *testing.T) {
	cc := DefaultCoreConfig()
	cc.IssueWidth = 0
	if _, err := New(cc, workload.SPEC()); err == nil {
		t.Fatal("invalid core config accepted")
	}
	cc = DefaultCoreConfig()
	if _, err := New(cc, []*workload.AppProfile{{Name: "bad"}}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestInfeasibleCalibrationRejected(t *testing.T) {
	// An app claiming IPC 3 on a 2-issue machine cannot be calibrated.
	cc := DefaultCoreConfig()
	app := &workload.AppProfile{Name: "superscalar", DynPowerW: 1, IPCNom: 3,
		MLP: 1, L1MPKI: 1, L2MPKI: 0.1, MemAccessFrac: 0.3}
	if _, err := New(cc, []*workload.AppProfile{app}); err == nil {
		t.Fatal("super-issue-width calibration accepted")
	}
}

func TestL2AccessRate(t *testing.T) {
	m := newModel(t)
	a, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	rate := m.L2AccessRate(a, 4e9, 0.1)
	want := 85.0 / 1000 * 0.1 * 4e9
	if math.Abs(rate-want) > 1e-6*want {
		t.Fatalf("L2 access rate = %v, want %v", rate, want)
	}
}

func TestNonPositiveFrequencyRejected(t *testing.T) {
	m := newModel(t)
	a, err := workload.ByName("gap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyIPC(a, 0); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestModelFromCacheCalibratedProfiles(t *testing.T) {
	// Profiles re-calibrated from cache-simulator measurements must still
	// produce a valid interval model whose IPC ranking tracks the
	// Table 5-calibrated one: the two calibration paths are consistent.
	orig := workload.SPEC()
	ref := newModel(t)
	measured := make([]*workload.AppProfile, 0, len(orig))
	for _, a := range orig {
		cal, err := cache.CalibrateProfile(a, 1, 150000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		// Measured MPKI implies a different IPC; re-derive it from the
		// reference model's base CPI so the profile stays consistent.
		cal, err = ref.AdjustIPCNom(cal)
		if err != nil {
			t.Fatal(err)
		}
		measured = append(measured, cal)
	}
	m, err := New(DefaultCoreConfig(), measured)
	if err != nil {
		t.Fatalf("cache-calibrated profiles failed interval calibration: %v", err)
	}
	// Frequency response direction must be preserved for the most
	// memory-bound app.
	var mcf *workload.AppProfile
	for _, a := range measured {
		if a.Name == "mcf" {
			mcf = a
		}
	}
	lo, err := m.SteadyIPC(mcf, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.SteadyIPC(mcf, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Fatalf("cache-calibrated mcf IPC did not fall with frequency: %v -> %v", lo, hi)
	}
}
