package cpusim

import (
	"testing"

	"vasched/internal/workload"
)

// BenchmarkIPC is the per-core per-sample model evaluation the timeline
// simulation calls NumCores times every monitor sample.
func BenchmarkIPC(b *testing.B) {
	apps := workload.SPEC()
	m, err := New(DefaultCoreConfig(), apps)
	if err != nil {
		b.Fatal(err)
	}
	phase := workload.Phase{IPCScale: 1, PowerScale: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.IPC(apps[i%len(apps)], phase, 3.2e9); err != nil {
			b.Fatal(err)
		}
	}
}
