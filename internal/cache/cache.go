// Package cache implements a set-associative cache hierarchy simulator:
// write-back, write-allocate caches with true-LRU replacement, composable
// into the paper's two-level hierarchy (per-core 16 KB L1s backed by a
// shared 8 MB L2). The cpusim package drives it with the synthetic
// reference streams from package workload to obtain miss rates; it can
// also be used standalone.
package cache

import (
	"fmt"

	"vasched/internal/stats"
	"vasched/internal/workload"
)

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the block size.
	LineBytes int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats accumulates access outcomes.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access, or 0 with no traffic.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse is a per-set logical clock value for true LRU.
	lastUse uint64
}

// Cache is one level. A nil next pointer means misses go to memory.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	offBits uint
	idxBits uint
	clock   uint64
	next    *Cache

	// Stats is exported state; callers may reset it between measurement
	// windows.
	Stats Stats
}

// New builds a cache level; next (may be nil) receives miss traffic.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	nsets := lines / cfg.Ways
	c := &Cache{cfg: cfg, next: next, setMask: uint64(nsets - 1)}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.offBits++
	}
	for s := nsets; s > 1; s >>= 1 {
		c.idxBits++
	}
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c, nil
}

// Config returns the level's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one reference and returns true on hit at this level.
// Misses recurse into the next level (or memory) and allocate here;
// dirty evictions count as writebacks and propagate to the next level.
func (c *Cache) Access(addr uint64, kind workload.AccessKind) bool {
	c.clock++
	c.Stats.Accesses++
	set := (addr >> c.offBits) & c.setMask
	tag := addr >> (c.offBits + c.idxBits)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.clock
			if kind == workload.Write {
				ways[i].dirty = true
			}
			return true
		}
	}
	// Miss: fetch from below, then allocate over the LRU way.
	c.Stats.Misses++
	if c.next != nil {
		c.next.Access(addr, workload.Read)
	}
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Stats.Writebacks++
		if c.next != nil {
			// Reconstruct the victim's address for the writeback.
			vaddr := (ways[victim].tag<<c.idxBits | set) << c.offBits
			c.next.Access(vaddr, workload.Write)
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: kind == workload.Write, lastUse: c.clock}
	return false
}

// ResetStats zeroes the counters (cache contents are retained, so warmup
// state survives into the measurement window).
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Hierarchy is the paper's per-core view: a private L1D backed by a shared
// L2. (The instruction stream is not simulated; SPEC L1I miss rates are
// negligible next to data misses.)
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// DefaultHierarchy builds the paper's Table 4 data-side hierarchy: 16 KB
// 2-way L1 and 8 MB 8-way shared L2, 64-byte lines.
func DefaultHierarchy() (*Hierarchy, error) {
	l2, err := New(Config{SizeBytes: 8 << 20, Ways: 8, LineBytes: 64}, nil)
	if err != nil {
		return nil, err
	}
	l1, err := New(Config{SizeBytes: 16 << 10, Ways: 2, LineBytes: 64}, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// MeasureMPKI runs the profile's synthetic stream through a fresh default
// hierarchy and returns (L1 MPKI, L2 MPKI) — misses per thousand
// *instructions*, assuming the profile's MemAccessFrac of instructions
// reference memory. warmup accesses prime the caches before the measured
// window of n accesses.
func MeasureMPKI(prof *workload.AppProfile, gen *workload.StreamGen, warmup, n int) (l1MPKI, l2MPKI float64, err error) {
	h, err := DefaultHierarchy()
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < warmup; i++ {
		a := gen.Next()
		h.L1.Access(a.Addr, a.Kind)
	}
	h.L1.ResetStats()
	h.L2.ResetStats()
	for i := 0; i < n; i++ {
		a := gen.Next()
		h.L1.Access(a.Addr, a.Kind)
	}
	if prof.MemAccessFrac <= 0 {
		return 0, 0, fmt.Errorf("cache: profile %s has no memory accesses", prof.Name)
	}
	instructions := float64(n) / prof.MemAccessFrac
	l1MPKI = float64(h.L1.Stats.Misses) / instructions * 1000
	l2MPKI = float64(h.L2.Stats.Misses) / instructions * 1000
	return l1MPKI, l2MPKI, nil
}

// CalibrateProfile returns a copy of prof whose L1MPKI and L2MPKI are
// replaced by miss rates measured on the default hierarchy with the
// profile's own synthetic reference stream. Because the stream generator
// derives its cold-reference rate from the profile's L2MPKI, measurement
// and profile should agree closely — the consistency check that ties the
// cache simulator to the interval model's inputs (see the cpusim tests).
func CalibrateProfile(prof *workload.AppProfile, seed int64, warmup, n int) (*workload.AppProfile, error) {
	gen := workload.NewStreamGen(prof, stats.NewRNG(seed))
	l1, l2, err := MeasureMPKI(prof, gen, warmup, n)
	if err != nil {
		return nil, err
	}
	out := *prof
	out.L1MPKI = l1
	out.L2MPKI = l2
	if out.L2MPKI > out.L1MPKI {
		// An L2 miss implies an L1 miss; tiny sampling inversions are
		// clamped so the profile stays valid.
		out.L2MPKI = out.L1MPKI
	}
	return &out, nil
}
