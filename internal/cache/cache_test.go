package cache

import (
	"testing"
	"testing/quick"

	"vasched/internal/stats"
	"vasched/internal/workload"
)

func mustCache(t *testing.T, cfg Config, next *Cache) *Cache {
	t.Helper()
	c, err := New(cfg, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, LineBytes: 64},
		{SizeBytes: 1024, Ways: 0, LineBytes: 64},
		{SizeBytes: 1024, Ways: 2, LineBytes: 60},       // non-pow2 line
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},       // size not multiple
		{SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64}, // 3 sets: not pow2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	good := Config{SizeBytes: 16 << 10, Ways: 2, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Ways: 2, LineBytes: 64}, nil)
	if c.Access(0x100, workload.Read) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100, workload.Read) {
		t.Fatal("second access missed")
	}
	// Same line, different offset also hits.
	if !c.Access(0x13F, workload.Read) {
		t.Fatal("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, address stride of setCount*lineSize maps
	// to the same set.
	c := mustCache(t, Config{SizeBytes: 4 * 64, Ways: 2, LineBytes: 64}, nil)
	// 2 sets; addresses 0, 128, 256 all map to set 0.
	c.Access(0, workload.Read)
	c.Access(128, workload.Read)
	c.Access(0, workload.Read)   // touch 0: now 128 is LRU
	c.Access(256, workload.Read) // evicts 128
	if !c.Access(0, workload.Read) {
		t.Fatal("recently used line was evicted")
	}
	if c.Access(128, workload.Read) {
		t.Fatal("LRU line was not evicted")
	}
}

func TestWritebackPropagation(t *testing.T) {
	l2 := mustCache(t, Config{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64}, nil)
	l1 := mustCache(t, Config{SizeBytes: 2 * 64, Ways: 1, LineBytes: 64}, l2)
	l1.Access(0, workload.Write)  // dirty line in set 0
	l1.Access(128, workload.Read) // evicts dirty line -> writeback to L2
	if l1.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", l1.Stats.Writebacks)
	}
	// The L2 saw the fill for 0, the fill for 128, and the writeback of 0.
	if l2.Stats.Accesses != 3 {
		t.Fatalf("L2 accesses = %d", l2.Stats.Accesses)
	}
	// Clean eviction must not write back.
	l1.Access(0, workload.Read) // evicts clean 128
	if l1.Stats.Writebacks != 1 {
		t.Fatalf("clean eviction wrote back: %d", l1.Stats.Writebacks)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Ways: 2, LineBytes: 64}, nil)
	c.Access(0x40, workload.Read)
	c.ResetStats()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Access(0x40, workload.Read) {
		t.Fatal("contents lost on stats reset")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	h, err := DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if h.L1.Config().SizeBytes != 16<<10 || h.L1.Config().Ways != 2 {
		t.Fatalf("L1 geometry: %+v", h.L1.Config())
	}
	if h.L2.Config().SizeBytes != 8<<20 || h.L2.Config().Ways != 8 {
		t.Fatalf("L2 geometry: %+v", h.L2.Config())
	}
}

func TestSmallWorkingSetFitsInL2(t *testing.T) {
	// A working set far below 8 MB must produce near-zero L2 misses after
	// warmup.
	prof := &workload.AppProfile{
		Name: "fits", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 10, L2MPKI: 1,
		MemAccessFrac: 0.3, WorkingSetKB: 512, StridedFrac: 0.5,
	}
	gen := workload.NewStreamGen(prof, stats.NewRNG(1))
	_, l2MPKI, err := MeasureMPKI(prof, gen, 200000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if l2MPKI > 0.5 {
		t.Fatalf("in-cache working set produced L2 MPKI %v", l2MPKI)
	}
}

func TestLargeWorkingSetMissesInL2(t *testing.T) {
	prof := &workload.AppProfile{
		Name: "thrash", DynPowerW: 1, IPCNom: 1, MLP: 1, L1MPKI: 60, L2MPKI: 30,
		MemAccessFrac: 0.4, WorkingSetKB: 96000, StridedFrac: 0.1,
	}
	gen := workload.NewStreamGen(prof, stats.NewRNG(2))
	l1MPKI, l2MPKI, err := MeasureMPKI(prof, gen, 100000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if l2MPKI < 5 {
		t.Fatalf("thrashing working set produced only L2 MPKI %v", l2MPKI)
	}
	if l1MPKI < l2MPKI {
		t.Fatalf("L1 MPKI %v below L2 MPKI %v", l1MPKI, l2MPKI)
	}
}

func TestProfileMPKIOrderingMatchesCacheSim(t *testing.T) {
	// The calibrated profiles should rank the same way the cache
	// simulator ranks them: mcf (huge, pointer-chasing) misses far more
	// than crafty (small, cache-friendly).
	measure := func(name string) float64 {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewStreamGen(prof, stats.NewRNG(3))
		_, l2, err := MeasureMPKI(prof, gen, 150000, 150000)
		if err != nil {
			t.Fatal(err)
		}
		return l2
	}
	mcf := measure("mcf")
	crafty := measure("crafty")
	if mcf <= crafty*3 {
		t.Fatalf("cache sim does not separate mcf (%v) from crafty (%v)", mcf, crafty)
	}
}

func BenchmarkL1Access(b *testing.B) {
	h, err := DefaultHierarchy()
	if err != nil {
		b.Fatal(err)
	}
	prof, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewStreamGen(prof, stats.NewRNG(4))
	accs := gen.Fill(nil, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i&(1<<16-1)]
		h.L1.Access(a.Addr, a.Kind)
	}
}

func TestCalibrateProfileConsistency(t *testing.T) {
	// The measured L2MPKI should land near the profile's own number for
	// large-footprint apps (the stream's cold rate is derived from it).
	for _, name := range []string{"mcf", "swim", "equake"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := CalibrateProfile(prof, 1, 300000, 200000)
		if err != nil {
			t.Fatal(err)
		}
		// The cold-reference rate alone reproduces the profile number;
		// cold insertions additionally evict hot lines (capacity
		// interference), so the measurement can run up to ~2x above the
		// profile for high-reuse streams. Same order of magnitude is the
		// consistency claim.
		if cal.L2MPKI < prof.L2MPKI*0.5 || cal.L2MPKI > prof.L2MPKI*2.2 {
			t.Errorf("%s: measured L2MPKI %v vs profile %v", name, cal.L2MPKI, prof.L2MPKI)
		}
		if cal.L1MPKI < cal.L2MPKI {
			t.Errorf("%s: invalid calibrated profile (L1 %v < L2 %v)", name, cal.L1MPKI, cal.L2MPKI)
		}
		if err := cal.Validate(); err != nil {
			t.Errorf("%s: calibrated profile invalid: %v", name, err)
		}
	}
}

func TestCalibrateProfileDoesNotMutate(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	l1Before, l2Before := prof.L1MPKI, prof.L2MPKI
	if _, err := CalibrateProfile(prof, 1, 50000, 50000); err != nil {
		t.Fatal(err)
	}
	if prof.L1MPKI != l1Before || prof.L2MPKI != l2Before {
		t.Fatal("CalibrateProfile mutated its input")
	}
}

// Property: any address accessed twice in a row hits the second time, for
// arbitrary access sequences interleaved in between the pair within
// associativity bounds (here: immediately consecutive, so always).
func TestConsecutiveAccessHitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		c, err := New(Config{SizeBytes: 4 << 10, Ways: 2, LineBytes: 64}, nil)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Int63()) % (1 << 20)
			kind := workload.Read
			if rng.Float64() < 0.3 {
				kind = workload.Write
			}
			c.Access(addr, kind)
			if !c.Access(addr, workload.Read) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss counts never exceed access counts, and writebacks never
// exceed misses plus initial dirty lines (zero here).
func TestStatsInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		l2, err := New(Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64}, nil)
		if err != nil {
			return false
		}
		l1, err := New(Config{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64}, l2)
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			kind := workload.Read
			if rng.Float64() < 0.5 {
				kind = workload.Write
			}
			l1.Access(uint64(rng.Int63())%(64<<10), kind)
		}
		for _, c := range []*Cache{l1, l2} {
			if c.Stats.Misses > c.Stats.Accesses {
				return false
			}
			if c.Stats.Writebacks > c.Stats.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
