package core

import (
	"vasched/internal/chip"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/sensors"
	"vasched/internal/workload"
)

// snapshot builds the pm.Platform view of the chip at a scheduling
// instant: for each active core, the sensor-measured power of its
// thread-core pair at every ladder level (at the block temperatures of the
// last evaluation — power profiling happens under current thermal
// conditions), the thread's current IPC, and the manufacturer V/f table.
//
// The returned platform also implements pm.TrueIPCPlatform so the Oracle
// ablation can see frequency-dependent IPC; the paper's managers never
// call that method.
func (s *System) snapshot(apps []*workload.AppProfile, assignment sched.Assignment, elapsedMS []float64, curLevels []int, lastEval *chip.EvalResult, noise sensors.Noise) (pm.Platform, error) {
	c := s.cfg.Chip
	n := len(apps)
	snap := &platformSnapshot{
		levels: c.Levels,
		freq:   make([][]float64, n),
		power:  make([][]float64, n),
		tipc:   make([][]float64, n),
		ipc:    make([]float64, n),
		refIPS: make([]float64, n),
	}

	coreTemp := func(core int) float64 {
		if lastEval == nil {
			return c.Tech.TRefC
		}
		return lastEval.CoreTempC[core]
	}
	// Uncore power: the shared L2 from the last evaluation, or its
	// zero-load leakage estimate before the first one.
	if lastEval != nil {
		snap.uncore = lastEval.L2PowerW
	} else {
		snap.uncore = c.Power.L2StaticW(c.Maps, c.FP, c.Tech.TRefC)
	}

	for t, app := range apps {
		coreID := assignment[t]
		ref, err := s.cfg.CPU.SteadyIPC(app, c.Tech.FNominalHz)
		if err != nil {
			return nil, err
		}
		snap.refIPS[t] = ref * c.Tech.FNominalHz
		temp := coreTemp(coreID)
		phase := app.PhaseAt(elapsedMS[t])
		nl := len(c.Levels)
		snap.freq[t] = make([]float64, nl)
		snap.power[t] = make([]float64, nl)
		snap.tipc[t] = make([]float64, nl)
		for li, v := range c.Levels {
			f := c.FmaxAt(coreID, v)
			snap.freq[t][li] = f
			if f <= 0 {
				continue
			}
			ipcAt, err := s.cfg.CPU.IPC(app, phase, f)
			if err != nil {
				return nil, err
			}
			snap.tipc[t][li] = ipcAt
			stat := c.CoreStaticCached(coreID, v, temp)
			dyn := c.Power.DynamicCoreW(app.DynPowerW*phase.PowerScale, app.IPCNom, v, f, ipcAt)
			snap.power[t][li] = noise.Read(stat + dyn)
		}
		// The IPC sensor reads the thread at its current operating point
		// (the previous decision's level; the top level before the first
		// decision).
		cur := len(c.Levels) - 1
		if curLevels != nil && snap.freq[t][curLevels[t]] > 0 {
			cur = curLevels[t]
		}
		snap.ipc[t] = noise.Read(snap.tipc[t][cur])
	}
	return snap, nil
}

// platformSnapshot implements pm.Platform and pm.TrueIPCPlatform over
// precomputed tables, making every manager query O(1).
type platformSnapshot struct {
	levels []float64
	freq   [][]float64 // [active core][level]
	power  [][]float64
	tipc   [][]float64 // true (frequency-dependent) IPC
	ipc    []float64   // sensor IPC at the profiling point
	refIPS []float64   // per-thread reference IPS for weighted objectives
	uncore float64
}

func (p *platformSnapshot) NumCores() int              { return len(p.ipc) }
func (p *platformSnapshot) NumLevels() int             { return len(p.levels) }
func (p *platformSnapshot) VoltageAt(l int) float64    { return p.levels[l] }
func (p *platformSnapshot) FreqAt(c, l int) float64    { return p.freq[c][l] }
func (p *platformSnapshot) PowerAt(c, l int) float64   { return p.power[c][l] }
func (p *platformSnapshot) IPC(c int) float64          { return p.ipc[c] }
func (p *platformSnapshot) UncorePowerW() float64      { return p.uncore }
func (p *platformSnapshot) RefIPS(c int) float64       { return p.refIPS[c] }
func (p *platformSnapshot) TrueIPCAt(c, l int) float64 { return p.tipc[c][l] }
