package core

import (
	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/sensors"
	"vasched/internal/stats"
	"vasched/internal/workload"
)

// FrozenSnapshot exposes a platform snapshot for diagnostics and tests:
// threads are placed with VarF&AppIPC and the platform reflects cold-start
// conditions (no prior evaluation).
func FrozenSnapshot(c *chip.Chip, cpu *cpusim.Model, apps []*workload.AppProfile, seed int64) (pm.Platform, error) {
	rng := stats.NewRNG(seed)
	infos := sensors.CoreInfos(c)
	threads, err := sensors.ProfileThreads(c, cpu, apps, nil, sensors.Noise{}, rng)
	if err != nil {
		return nil, err
	}
	assignment, err := (sched.VarFAppIPCPolicy{}).Assign(infos, threads, rng)
	if err != nil {
		return nil, err
	}
	sys := &System{cfg: Config{Chip: c, CPU: cpu}, rng: rng}
	return sys.snapshot(apps, assignment, make([]float64, len(apps)), nil, nil, sensors.Noise{})
}
