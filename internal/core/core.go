// Package core is the runtime that ties the repository together: a System
// owns one characterised chip, a scheduling policy, and (optionally) a
// power manager, and executes the paper's Figure 2 timeline — the OS
// re-schedules threads every OS interval, the power manager re-solves the
// per-core (V, f) assignment every DVFS interval, and the chip model
// integrates instructions, power, and temperature in between.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/metrics"
	"vasched/internal/pm"
	"vasched/internal/sched"
	"vasched/internal/sensors"
	"vasched/internal/stats"
	"vasched/internal/wearout"
	"vasched/internal/workload"
)

// Mode selects the CMP configuration of the paper's Table 2.
type Mode int

// The three evaluated configurations.
const (
	// ModeUniFreq: all cores cycle at the slowest core's frequency, no
	// DVFS (Section 4.1).
	ModeUniFreq Mode = iota
	// ModeNUniFreq: each core at its own maximum frequency, no DVFS
	// (Section 4.2).
	ModeNUniFreq
	// ModeDVFS: non-uniform frequency with per-core DVFS under a power
	// budget (Section 4.3).
	ModeDVFS
)

// String names the configuration as in Table 2.
func (m Mode) String() string {
	switch m {
	case ModeUniFreq:
		return "UniFreq"
	case ModeNUniFreq:
		return "NUniFreq"
	case ModeDVFS:
		return "NUniFreq+DVFS"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles a System.
type Config struct {
	// Chip is the characterised die and CPU the calibrated core model.
	Chip *chip.Chip
	CPU  *cpusim.Model
	// Scheduler places threads on cores.
	Scheduler sched.Policy
	// Mode selects the Table 2 configuration.
	Mode Mode
	// Manager chooses (V, f) points; required in ModeDVFS, ignored
	// otherwise.
	Manager pm.Manager
	// Budget is the power envelope for ModeDVFS.
	Budget pm.Budget
	// OSIntervalMS and DVFSIntervalMS set the Figure 2 cadence. Defaults:
	// 100 ms and 10 ms.
	OSIntervalMS   float64
	DVFSIntervalMS float64
	// SampleIntervalMS is the power-monitor sampling cadence used for the
	// Figure 14 deviation statistic. Default: 1 ms.
	SampleIntervalMS float64
	// WarmupMS excludes an initial transient from the reported statistics:
	// the timeline still executes (temperatures settle, the first DVFS
	// decisions take effect) but accumulators and the deviation tracker
	// only start recording afterwards.
	WarmupMS float64
	// CaptureTrace records one TracePoint per monitor sample in
	// RunStats.Trace (costs memory proportional to duration/sample).
	CaptureTrace bool
	// TransientThermal switches the per-sample thermal evaluation from
	// steady-state (the default, matching the recorded experiments) to
	// time-stepped RC integration with thermal inertia. Activity-
	// migration policies (TempAware) only show their benefit with inertia
	// modelled: a migrated-to core heats up over tens of milliseconds
	// instead of instantly.
	TransientThermal bool
	// VTransitionUSPerStep is the time in microseconds a core stalls per
	// voltage-ladder step it moves at a DVFS decision. The paper
	// conservatively assumes the transition speeds of Xscale-era systems
	// (tens of microseconds per step, supplied by off-chip regulators);
	// fast on-chip regulators (Kim et al., cited in the paper) make this
	// ~0. Default 0.
	VTransitionUSPerStep float64
	// SensorNoise is the relative sigma of sensor measurements.
	SensorNoise float64
	// Seed drives every stochastic choice (random scheduling, profiling
	// core selection, SAnn).
	Seed int64
	// DecideHist, when non-nil, receives one Observe(seconds) per
	// Manager.Decide call, so services running experiments (cmd/vaschedd)
	// can export decision-latency distributions without touching the
	// aggregate DecideTime/DecideCount statistics.
	DecideHist *metrics.LatencyHist
	// Ctx, when non-nil, is threaded into Manager.Decide so tracing
	// spans opened by the power manager nest under the caller's span.
	// It is observability-only: the simulation ignores cancellation.
	Ctx context.Context
}

func (c *Config) setDefaults() {
	if c.OSIntervalMS <= 0 {
		c.OSIntervalMS = 100
	}
	if c.DVFSIntervalMS <= 0 {
		c.DVFSIntervalMS = 10
	}
	if c.SampleIntervalMS <= 0 {
		c.SampleIntervalMS = 1
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Chip == nil || c.CPU == nil {
		return errors.New("core: Chip and CPU are required")
	}
	if c.Scheduler == nil {
		return errors.New("core: Scheduler is required")
	}
	if c.Mode == ModeDVFS {
		if c.Manager == nil {
			return errors.New("core: ModeDVFS requires a power manager")
		}
		if c.Budget.PTargetW <= 0 || c.Budget.PCoreMaxW <= 0 {
			return fmt.Errorf("core: ModeDVFS requires a positive budget, got %+v", c.Budget)
		}
	}
	return nil
}

// TracePoint is one monitor sample of a captured run.
type TracePoint struct {
	// TimeMS is the sample's simulated time.
	TimeMS float64
	// PowerW and MIPS are the instantaneous chip power and throughput.
	PowerW float64
	MIPS   float64
	// MaxTempC is the hottest block temperature at the sample.
	MaxTempC float64
}

// RunStats aggregates one run.
type RunStats struct {
	// DurationMS is the simulated time.
	DurationMS float64
	// AvgPowerW/AvgDynW/AvgStatW are time-averaged chip powers.
	AvgPowerW, AvgDynW, AvgStatW float64
	// MIPS is the time-averaged total throughput.
	MIPS float64
	// WeightedTP is the time-averaged weighted throughput (one unit per
	// thread running at its reference speed).
	WeightedTP float64
	// AvgActiveFreqHz is the time- and thread-averaged core frequency.
	AvgActiveFreqHz float64
	// MaxTempC is the hottest block temperature seen.
	MaxTempC float64
	// EDSquared is AvgPowerW / MIPS^3 (proportional to true ED^2 at fixed
	// work; see metrics.EDSquared).
	EDSquared float64
	// PowerDeviationPct is the Figure 14 statistic: mean |P - Ptarget| in
	// percent over the monitor samples (0 unless ModeDVFS).
	PowerDeviationPct float64
	// WearoutIndex is the per-die-core aging rate relative to nominal
	// operation (see package wearout); WearoutMax is its maximum — the
	// lifetime-limiting core.
	WearoutIndex []float64
	WearoutMax   float64
	// Instructions is per-thread executed instruction counts.
	Instructions []float64
	// DecideTime is total wall-clock time spent inside Manager.Decide,
	// and DecideCount the number of invocations (Figure 15).
	DecideTime  time.Duration
	DecideCount int
	// Trace holds per-sample points when Config.CaptureTrace is set.
	Trace []TracePoint
}

// System is a runnable CMP with scheduling and power management.
type System struct {
	cfg Config
	rng *stats.RNG
}

// New validates cfg and returns a System.
func New(cfg Config) (*System, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// Run executes the workload for the given simulated duration and returns
// aggregate statistics. The number of threads must not exceed the number
// of cores.
func (s *System) Run(apps []*workload.AppProfile, durationMS float64) (*RunStats, error) {
	c := s.cfg.Chip
	if len(apps) == 0 {
		return nil, errors.New("core: empty workload")
	}
	if len(apps) > c.NumCores() {
		return nil, fmt.Errorf("core: %d threads exceed %d cores", len(apps), c.NumCores())
	}
	if durationMS <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", durationMS)
	}

	noise := sensors.NewNoise(s.cfg.SensorNoise, s.rng.Derive(1))
	schedRNG := s.rng.Derive(2)
	pmRNG := s.rng.Derive(3)
	profRNG := s.rng.Derive(4)

	// Session-capable managers get per-run private state (simplex warm
	// starts); the shared Config value stays safe for concurrent runs.
	manager := s.cfg.Manager
	if sm, ok := manager.(pm.SessionManager); ok {
		manager = sm.NewSession()
	}
	ctx := s.cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	coreInfos := sensors.CoreInfos(c)
	aging, err := wearout.NewAccumulator(wearout.DefaultParams(), c.NumCores())
	if err != nil {
		return nil, err
	}
	nT := len(apps)
	elapsed := make([]float64, nT)
	instructions := make([]float64, nT)
	refIPS := make([]float64, nT)
	for i, a := range apps {
		ipc, err := s.cfg.CPU.SteadyIPC(a, c.Tech.FNominalHz)
		if err != nil {
			return nil, err
		}
		refIPS[i] = ipc * c.Tech.FNominalHz
	}

	// UniFreq: the chip-wide frequency is the slowest core's rated Fmax.
	uniFreq := 0.0
	if s.cfg.Mode == ModeUniFreq {
		uniFreq = c.FmaxNominal(0)
		for core := 1; core < c.NumCores(); core++ {
			if f := c.FmaxNominal(core); f < uniFreq {
				uniFreq = f
			}
		}
	}

	var (
		powerAcc, dynAcc, statAcc, mipsAcc, wtpAcc, freqAcc metrics.Accumulator
		deviation                                           = metrics.NewDeviationTracker(s.cfg.Budget.PTargetW)
		maxTemp                                             float64
		decideTime                                          time.Duration
		decideCount                                         int
	)

	var assignment sched.Assignment
	var lastEval *chip.EvalResult
	var tracePoints []TracePoint
	levels := make([]int, nT) // active-core ladder levels (ModeDVFS)
	stallMS := make([]float64, nT)
	vTop := len(c.Levels) - 1

	now := 0.0
	nextOS := 0.0
	nextDVFS := 0.0
	for now < durationMS-1e-9 {
		// OS scheduling interval: re-profile and re-map threads.
		if now >= nextOS-1e-9 {
			// Expose current sensor temperatures to temperature-aware
			// policies; a cold chip reads ambient.
			for i := range coreInfos {
				if lastEval != nil {
					coreInfos[i].TempC = lastEval.CoreTempC[i]
				} else {
					coreInfos[i].TempC = c.Therm.Config().AmbientC
				}
			}
			threadInfos, err := sensors.ProfileThreads(c, s.cfg.CPU, apps, elapsed, noise, profRNG)
			if err != nil {
				return nil, err
			}
			assignment, err = s.cfg.Scheduler.Assign(coreInfos, threadInfos, schedRNG)
			if err != nil {
				return nil, err
			}
			if err := assignment.Validate(c.NumCores()); err != nil {
				return nil, err
			}
			nextOS += s.cfg.OSIntervalMS
			// A re-map invalidates the previous DVFS decision.
			for i := range levels {
				levels[i] = vTop
			}
			nextDVFS = now
		}

		// DVFS interval: re-solve the (V, f) assignment.
		if s.cfg.Mode == ModeDVFS && now >= nextDVFS-1e-9 {
			plat, err := s.snapshot(apps, assignment, elapsed, levels, lastEval, noise)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			lv, err := manager.Decide(ctx, plat, s.cfg.Budget, pmRNG)
			d := time.Since(start)
			decideTime += d
			decideCount++
			if s.cfg.DecideHist != nil {
				s.cfg.DecideHist.Observe(d.Seconds())
			}
			if err != nil {
				return nil, err
			}
			if s.cfg.VTransitionUSPerStep > 0 {
				for t := range levels {
					steps := lv[t] - levels[t]
					if steps < 0 {
						steps = -steps
					}
					stallMS[t] += float64(steps) * s.cfg.VTransitionUSPerStep / 1000
				}
			}
			copy(levels, lv)
			nextDVFS += s.cfg.DVFSIntervalMS
		} else if s.cfg.Mode != ModeDVFS {
			nextDVFS = now + s.cfg.DVFSIntervalMS
		}

		// Advance one monitor sample.
		dt := s.cfg.SampleIntervalMS
		if rem := durationMS - now; dt > rem {
			dt = rem
		}
		states := c.OffStates()
		freqs := make([]float64, nT)
		for t, app := range apps {
			coreID := assignment[t]
			var v, f float64
			switch s.cfg.Mode {
			case ModeUniFreq:
				v, f = c.Tech.VddNominal, uniFreq
			case ModeNUniFreq:
				v, f = c.Tech.VddNominal, c.FmaxNominal(coreID)
			case ModeDVFS:
				v = c.Levels[levels[t]]
				f = c.FmaxAt(coreID, v)
			}
			states[coreID] = chip.CoreState{App: app, V: v, F: f, ElapsedMS: elapsed[t]}
			freqs[t] = f
		}
		var res *chip.EvalResult
		if s.cfg.TransientThermal {
			var prev []float64
			if lastEval != nil {
				prev = lastEval.BlockTempC
			}
			res, err = c.EvaluateTransient(states, s.cfg.CPU, prev, dt)
		} else {
			res, err = c.Evaluate(states, s.cfg.CPU)
		}
		if err != nil {
			return nil, err
		}
		lastEval = res

		ipcs := make([]float64, nT)
		for t := range apps {
			ipcs[t] = res.CoreIPC[assignment[t]]
			// Voltage transitions stall the core: it burns a share of this
			// sample without retiring instructions.
			if stallMS[t] > 0 {
				stall := stallMS[t]
				if stall > dt {
					stall = dt
				}
				stallMS[t] -= stall
				ipcs[t] *= 1 - stall/dt
			}
			instructions[t] += ipcs[t] * freqs[t] * dt / 1000
			elapsed[t] += dt
		}
		coreTemps := make([]float64, c.NumCores())
		coreVolts := make([]float64, c.NumCores())
		for core := range coreTemps {
			coreTemps[core] = res.CoreTempC[core]
			coreVolts[core] = states[core].V // 0 when powered off
		}
		if err := aging.Add(coreTemps, coreVolts, dt); err != nil {
			return nil, err
		}
		if s.cfg.CaptureTrace {
			out := TracePoint{
				TimeMS:   now,
				PowerW:   res.TotalW,
				MIPS:     metrics.MIPS(ipcs, freqs),
				MaxTempC: c.Therm.MaxTemp(res.BlockTempC),
			}
			tracePoints = append(tracePoints, out)
		}
		if now+dt > s.cfg.WarmupMS {
			mips := metrics.MIPS(ipcs, freqs)
			wtp, err := metrics.WeightedThroughput(ipcs, freqs, refIPS)
			if err != nil {
				return nil, err
			}
			powerAcc.Add(res.TotalW, dt)
			dynAcc.Add(res.DynW, dt)
			statAcc.Add(res.StaticW, dt)
			mipsAcc.Add(mips, dt)
			wtpAcc.Add(wtp, dt)
			freqAcc.Add(stats.Mean(freqs), dt)
			if s.cfg.Mode == ModeDVFS {
				deviation.Sample(res.TotalW)
			}
			if mt := c.Therm.MaxTemp(res.BlockTempC); mt > maxTemp {
				maxTemp = mt
			}
		}
		now += dt
	}

	out := &RunStats{
		DurationMS:        durationMS,
		AvgPowerW:         powerAcc.Mean(),
		AvgDynW:           dynAcc.Mean(),
		AvgStatW:          statAcc.Mean(),
		MIPS:              mipsAcc.Mean(),
		WeightedTP:        wtpAcc.Mean(),
		AvgActiveFreqHz:   freqAcc.Mean(),
		MaxTempC:          maxTemp,
		PowerDeviationPct: deviation.MeanPct(),
		Instructions:      instructions,
		DecideTime:        decideTime,
		DecideCount:       decideCount,
	}
	out.Trace = tracePoints
	out.WearoutIndex = aging.Index()
	out.WearoutMax = aging.Max()
	out.EDSquared = metrics.EDSquared(out.AvgPowerW, out.MIPS)
	return out, nil
}
