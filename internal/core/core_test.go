package core

import (
	"math"
	"sync"
	"testing"

	"vasched/internal/chip"
	"vasched/internal/cpusim"
	"vasched/internal/delay"
	"vasched/internal/floorplan"
	"vasched/internal/pm"
	"vasched/internal/power"
	"vasched/internal/sched"
	"vasched/internal/stats"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
	"vasched/internal/workload"
)

var (
	buildOnce sync.Once
	theChip   *chip.Chip
	theCPU    *cpusim.Model
	buildErr  error
)

func testSystemParts(t *testing.T) (*chip.Chip, *cpusim.Model) {
	t.Helper()
	buildOnce.Do(func() {
		cfg := varmodel.DefaultConfig()
		cfg.GridRows, cfg.GridCols = 64, 64
		g, err := varmodel.NewGenerator(cfg)
		if err != nil {
			buildErr = err
			return
		}
		maps, err := g.Die(8, 0)
		if err != nil {
			buildErr = err
			return
		}
		theChip, buildErr = chip.Build(maps, floorplan.New20CoreCMP(), delay.DefaultConfig(),
			power.DefaultModel(cfg.Tech), thermal.DefaultConfig())
		if buildErr != nil {
			return
		}
		theCPU, buildErr = cpusim.New(cpusim.DefaultCoreConfig(), workload.SPEC())
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return theChip, theCPU
}

func mustPolicy(t *testing.T, name string) sched.Policy {
	t.Helper()
	p, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	c, cpu := testSystemParts(t)
	pol := mustPolicy(t, sched.NameRandom)
	cases := []Config{
		{},
		{Chip: c, CPU: cpu},
		{Chip: c, CPU: cpu, Scheduler: pol, Mode: ModeDVFS},
		{Chip: c, CPU: cpu, Scheduler: pol, Mode: ModeDVFS, Manager: pm.NewFoxton()},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Chip: c, CPU: cpu, Scheduler: pol, Mode: ModeNUniFreq}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeUniFreq.String() != "UniFreq" || ModeNUniFreq.String() != "NUniFreq" ||
		ModeDVFS.String() != "NUniFreq+DVFS" {
		t.Fatal("mode names wrong")
	}
}

func runOnce(t *testing.T, mode Mode, schedName string, mgr pm.Manager, budget pm.Budget, nThreads int, seed int64) *RunStats {
	t.Helper()
	c, cpu := testSystemParts(t)
	sys, err := New(Config{
		Chip: c, CPU: cpu,
		Scheduler: mustPolicy(t, schedName),
		Mode:      mode, Manager: mgr, Budget: budget,
		SampleIntervalMS: 2, // coarser sampling keeps tests fast
		Seed:             seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := workload.Mix(stats.NewRNG(seed), nThreads)
	st, err := sys.Run(apps, 40)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunUniFreqBasics(t *testing.T) {
	st := runOnce(t, ModeUniFreq, sched.NameVarP, nil, pm.Budget{}, 4, 1)
	if st.MIPS <= 0 || st.AvgPowerW <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.PowerDeviationPct != 0 {
		t.Fatal("deviation tracked without a budget")
	}
	if len(st.Instructions) != 4 {
		t.Fatalf("instructions for %d threads", len(st.Instructions))
	}
	for i, ins := range st.Instructions {
		if ins <= 0 {
			t.Fatalf("thread %d made no progress", i)
		}
	}
}

func TestNUniFreqFasterThanUniFreq(t *testing.T) {
	uni := runOnce(t, ModeUniFreq, sched.NameRandom, nil, pm.Budget{}, 8, 3)
	nuni := runOnce(t, ModeNUniFreq, sched.NameRandom, nil, pm.Budget{}, 8, 3)
	// Section 7.4: NUniFreq raises average frequency (and power).
	if nuni.AvgActiveFreqHz <= uni.AvgActiveFreqHz {
		t.Fatalf("NUniFreq freq %v not above UniFreq %v", nuni.AvgActiveFreqHz, uni.AvgActiveFreqHz)
	}
	if nuni.AvgPowerW <= uni.AvgPowerW {
		t.Fatalf("NUniFreq power %v not above UniFreq %v", nuni.AvgPowerW, uni.AvgPowerW)
	}
}

func TestVarPSavesPowerOverRandom(t *testing.T) {
	// Average over several seeds: Random sometimes picks good cores too.
	var rnd, varp float64
	for seed := int64(0); seed < 4; seed++ {
		rnd += runOnce(t, ModeUniFreq, sched.NameRandom, nil, pm.Budget{}, 4, 10+seed).AvgPowerW
		varp += runOnce(t, ModeUniFreq, sched.NameVarP, nil, pm.Budget{}, 4, 10+seed).AvgPowerW
	}
	if varp >= rnd {
		t.Fatalf("VarP power %v not below Random %v", varp/4, rnd/4)
	}
}

func TestDVFSRespectsBudget(t *testing.T) {
	b := pm.Budget{PTargetW: 60, PCoreMaxW: 6}
	st := runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewLinOpt(), b, 12, 4)
	// Average power should sit near (and essentially under) the target.
	if st.AvgPowerW > b.PTargetW*1.03 {
		t.Fatalf("average power %v far above target %v", st.AvgPowerW, b.PTargetW)
	}
	if st.DecideCount == 0 || st.DecideTime <= 0 {
		t.Fatalf("manager never invoked: %+v", st)
	}
	if st.PowerDeviationPct <= 0 {
		t.Fatal("no deviation samples under a budget")
	}
}

func TestLinOptBeatsFoxtonUnderTightBudget(t *testing.T) {
	b := pm.Budget{PTargetW: 50, PCoreMaxW: 5}
	var fox, lin float64
	for seed := int64(0); seed < 3; seed++ {
		fox += runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewFoxton(), b, 16, 20+seed).MIPS
		lin += runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewLinOpt(), b, 16, 20+seed).MIPS
	}
	if lin <= fox {
		t.Fatalf("LinOpt MIPS %v not above Foxton* %v", lin/3, fox/3)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewLinOpt(), pm.Budget{PTargetW: 55, PCoreMaxW: 6}, 8, 7)
	b := runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewLinOpt(), pm.Budget{PTargetW: 55, PCoreMaxW: 6}, 8, 7)
	if a.MIPS != b.MIPS || a.AvgPowerW != b.AvgPowerW {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.MIPS, a.AvgPowerW, b.MIPS, b.AvgPowerW)
	}
}

func TestRunValidation(t *testing.T) {
	c, cpu := testSystemParts(t)
	sys, err := New(Config{Chip: c, CPU: cpu, Scheduler: mustPolicy(t, sched.NameRandom), Mode: ModeNUniFreq})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(nil, 10); err == nil {
		t.Fatal("empty workload accepted")
	}
	apps := workload.Mix(stats.NewRNG(1), 21)
	if _, err := sys.Run(apps, 10); err == nil {
		t.Fatal("oversubscribed workload accepted")
	}
	if _, err := sys.Run(apps[:2], -1); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestWeightedObjectiveImprovesWeightedTP(t *testing.T) {
	b := pm.Budget{PTargetW: 50, PCoreMaxW: 5}
	var mipsObj, wObj float64
	for seed := int64(0); seed < 3; seed++ {
		mipsObj += runOnce(t, ModeDVFS, sched.NameVarFAppIPC, pm.NewLinOpt(), b, 16, 30+seed).WeightedTP
		wObj += runOnce(t, ModeDVFS, sched.NameVarFAppIPC,
			pm.LinOpt{FitPoints: 3, Objective: pm.ObjWeighted}, b, 16, 30+seed).WeightedTP
	}
	if wObj <= mipsObj {
		t.Fatalf("weighted objective did not improve weighted TP: %v vs %v", wObj/3, mipsObj/3)
	}
}

func TestEDSquaredConsistent(t *testing.T) {
	st := runOnce(t, ModeNUniFreq, sched.NameVarFAppIPC, nil, pm.Budget{}, 6, 9)
	want := st.AvgPowerW / math.Pow(st.MIPS, 3)
	if math.Abs(st.EDSquared-want) > 1e-18 {
		t.Fatalf("ED2 %v inconsistent with %v", st.EDSquared, want)
	}
}

func TestTransientThermalMode(t *testing.T) {
	c, cpu := testSystemParts(t)
	mk := func(transient bool, durMS float64) *RunStats {
		sys, err := New(Config{
			Chip: c, CPU: cpu, Scheduler: mustPolicy(t, sched.NameVarFAppIPC),
			Mode: ModeNUniFreq, TransientThermal: transient,
			SampleIntervalMS: 2, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps := workload.Mix(stats.NewRNG(11), 10)
		st, err := sys.Run(apps, durMS)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	steady := mk(false, 40)
	short := mk(true, 40)
	// Early in a transient run the chip is still cold, so temperatures —
	// and with them leakage power — must sit below the steady-state
	// figures.
	if short.MaxTempC >= steady.MaxTempC {
		t.Fatalf("transient max temp %v not below steady-state %v", short.MaxTempC, steady.MaxTempC)
	}
	if short.AvgStatW >= steady.AvgStatW {
		t.Fatalf("transient leakage %v not below steady-state %v", short.AvgStatW, steady.AvgStatW)
	}
	// Run long enough and the transient mode approaches the steady state.
	long := mk(true, 400)
	if d := long.MaxTempC - steady.MaxTempC; d > 3 || d < -8 {
		t.Fatalf("long transient max temp %v vs steady %v", long.MaxTempC, steady.MaxTempC)
	}
}

func TestFrozenSnapshot(t *testing.T) {
	c, cpu := testSystemParts(t)
	apps := workload.Mix(stats.NewRNG(3), 6)
	plat, err := FrozenSnapshot(c, cpu, apps, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plat.NumCores() != 6 {
		t.Fatalf("snapshot covers %d cores", plat.NumCores())
	}
	if plat.NumLevels() != len(c.Levels) {
		t.Fatalf("snapshot has %d levels", plat.NumLevels())
	}
	top := plat.NumLevels() - 1
	for i := 0; i < plat.NumCores(); i++ {
		if plat.FreqAt(i, top) <= 0 {
			t.Fatalf("core %d infeasible at top level", i)
		}
		if plat.PowerAt(i, top) <= plat.PowerAt(i, top-2) {
			t.Fatalf("core %d power not increasing in level", i)
		}
		if plat.IPC(i) <= 0 || plat.RefIPS(i) <= 0 {
			t.Fatalf("core %d missing IPC/reference", i)
		}
	}
	if plat.UncorePowerW() <= 0 {
		t.Fatal("no uncore power")
	}
	// The frozen snapshot must expose true frequency-dependent IPC for
	// the Oracle ablation; for a memory-bound thread it rises as the
	// level (and with it the clock) falls.
	tip, ok := plat.(pm.TrueIPCPlatform)
	if !ok {
		t.Fatal("snapshot does not implement TrueIPCPlatform")
	}
	for i := 0; i < plat.NumCores(); i++ {
		lo := tip.TrueIPCAt(i, top)
		hi := tip.TrueIPCAt(i, top-4)
		if hi < lo-1e-12 {
			t.Fatalf("core %d true IPC fell as frequency dropped: %v -> %v", i, lo, hi)
		}
	}
}

func TestCaptureTrace(t *testing.T) {
	c, cpu := testSystemParts(t)
	sys, err := New(Config{
		Chip: c, CPU: cpu, Scheduler: mustPolicy(t, sched.NameVarFAppIPC),
		Mode: ModeNUniFreq, CaptureTrace: true,
		SampleIntervalMS: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := workload.Mix(stats.NewRNG(13), 5)
	st, err := sys.Run(apps, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) != 10 {
		t.Fatalf("trace has %d points, want 10", len(st.Trace))
	}
	for i, p := range st.Trace {
		if p.PowerW <= 0 || p.MIPS <= 0 || p.MaxTempC <= 0 {
			t.Fatalf("degenerate trace point %d: %+v", i, p)
		}
		if i > 0 && p.TimeMS <= st.Trace[i-1].TimeMS {
			t.Fatalf("trace time not increasing at %d", i)
		}
	}
	// Without the flag, no trace.
	sys2, err := New(Config{
		Chip: c, CPU: cpu, Scheduler: mustPolicy(t, sched.NameVarFAppIPC),
		Mode: ModeNUniFreq, SampleIntervalMS: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sys2.Run(apps, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Trace != nil {
		t.Fatal("trace captured without the flag")
	}
}
