package diecache

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vasched/internal/delay"
	"vasched/internal/power"
	"vasched/internal/tech"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

// FuzzConfigHash fuzzes the canonical config codec — the thing every
// cache key, disk blob name, and cluster-shipped hash is derived from.
// Properties under test:
//
//  1. No input panics or over-allocates: DecodeConfig is bounds-checked
//     and name/string lengths are capped, whatever the bytes say.
//  2. The encoding is canonical: any input the decoder accepts must
//     re-encode to the exact same bytes. This is what upgrades hash
//     equality from "same bytes" to "same configuration" — if two
//     distinct byte strings decoded to one config, equal configs could
//     hash unequal and the cache would silently refill.
//  3. Decoding is total over the model schema: accepted inputs decode
//     into the full four-config tuple the cache keys on.
//
// The committed corpus under testdata/fuzz/FuzzConfigHash seeds the real
// model tuple, single-config encodings, and classic breakages;
// `make fuzzseed` runs the target for 10s in CI and the nightly workflow
// runs it longer.
func FuzzConfigHash(f *testing.F) {
	vc := varmodel.DefaultConfig()
	dc := delay.DefaultConfig()
	pm := power.DefaultModel(tech.Default())
	tc := thermal.DefaultConfig()
	if enc, err := EncodeConfig(vc, dc, pm, tc); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		f.Add(append(append([]byte{}, enc...), 0xff))
	}
	if enc, err := EncodeConfig(vc); err == nil {
		f.Add(enc)
	}
	if enc, err := EncodeConfig(tc); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	f.Add([]byte{codecVersion, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A tiny valid disk blob, so the blob-validation path is seeded too.
	maps := &varmodel.DieMaps{
		VthSys:  fieldFrom(2, 2, []float64{0.1, 0.2, 0.3, 0.4}),
		LeffSys: fieldFrom(2, 2, []float64{1, 2, 3, 4}),
		Seed:    7,
	}
	if blob, err := encodeBlob(Key{}, maps); err == nil {
		f.Add(blob)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var a varmodel.Config
		var b delay.Config
		var c power.Model
		var d thermal.Config
		if err := DecodeConfig(data, &a, &b, &c, &d); err == nil {
			re, err := EncodeConfig(a, b, c, d)
			if err != nil {
				t.Fatalf("decoded config failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("encoding is not canonical:\n in: %x\nout: %x", data, re)
			}
			h1, err := ConfigHash(a, b, c, d)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := ConfigHash(a, b, c, d)
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("hash is unstable: %016x vs %016x", h1, h2)
			}
		}
		// Corrupt disk blobs ride the same no-panic guarantee, and any
		// blob the validator accepts must itself be canonical.
		if maps, err := decodeBlob(data, Key{}); err == nil {
			re, err := encodeBlob(Key{}, maps)
			if err != nil {
				t.Fatalf("accepted blob failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("blob encoding is not canonical:\n in: %x\nout: %x", data, re)
			}
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the committed corpus under
// testdata/fuzz/FuzzConfigHash from the current model schema. It is a
// maintenance tool, not a check: run
//
//	DIECACHE_REGEN_CORPUS=1 go test ./internal/diecache -run TestRegenerateFuzzCorpus
//
// after changing any model config struct, then commit the result.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DIECACHE_REGEN_CORPUS") == "" {
		t.Skip("set DIECACHE_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzConfigHash")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzConfigHash")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		t.Helper()
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vc := varmodel.DefaultConfig()
	dc := delay.DefaultConfig()
	pm := power.DefaultModel(tech.Default())
	tc := thermal.DefaultConfig()
	enc, err := EncodeConfig(vc, dc, pm, tc)
	if err != nil {
		t.Fatal(err)
	}
	write("seed_model_tuple", enc)
	write("seed_truncated", enc[:len(enc)/2])
	write("seed_trailing", append(append([]byte{}, enc...), 0xff))
	one, err := EncodeConfig(tc)
	if err != nil {
		t.Fatal(err)
	}
	write("seed_single_thermal", one)
	write("seed_empty", nil)
	write("seed_garbage", bytes.Repeat([]byte{0xff}, 8))
	bad := append([]byte{}, enc...)
	bad[0] = codecVersion + 1
	write("seed_bad_version", bad)
	maps := &varmodel.DieMaps{
		VthSys:  fieldFrom(2, 2, []float64{0.1, 0.2, 0.3, 0.4}),
		LeffSys: fieldFrom(2, 2, []float64{1, 2, 3, 4}),
		Seed:    7,
	}
	blob, err := encodeBlob(Key{}, maps)
	if err != nil {
		t.Fatal(err)
	}
	write("seed_die_blob", blob)
}
