package diecache

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vasched/internal/delay"
	"vasched/internal/power"
	"vasched/internal/tech"
	"vasched/internal/thermal"
	"vasched/internal/varmodel"
)

// modelConfigs returns the full configuration set a cache key covers —
// the same tuple experiments.Env hashes.
func modelConfigs() (varmodel.Config, delay.Config, power.Model, thermal.Config) {
	return varmodel.DefaultConfig(), delay.DefaultConfig(), power.DefaultModel(tech.Default()), thermal.DefaultConfig()
}

func mustHash(t *testing.T, vals ...any) uint64 {
	t.Helper()
	h, err := ConfigHash(vals...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestEncodeDecodeRoundTrip proves the codec is lossless and canonical
// over the real model configs: decode(encode(x)) == x, and re-encoding
// the decoded value reproduces the exact byte stream.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	vc, dc, pm, tc := modelConfigs()
	enc, err := EncodeConfig(vc, dc, pm, tc)
	if err != nil {
		t.Fatal(err)
	}
	var vc2 varmodel.Config
	var dc2 delay.Config
	var pm2 power.Model
	var tc2 thermal.Config
	if err := DecodeConfig(enc, &vc2, &dc2, &pm2, &tc2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vc, vc2) || !reflect.DeepEqual(dc, dc2) ||
		!reflect.DeepEqual(pm, pm2) || !reflect.DeepEqual(tc, tc2) {
		t.Fatal("decoded configs differ from originals")
	}
	enc2, err := EncodeConfig(vc2, dc2, pm2, tc2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encoding a decoded config changed the byte stream")
	}
	// Pointers encode identically to values — callers pass either.
	encP, err := EncodeConfig(&vc, &dc, &pm, &tc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, encP) {
		t.Fatal("pointer and value encodings differ")
	}
}

// TestConfigHashEqualsSemanticEquality is the key invariant the cache
// rests on: hash equality iff config equality. Equal tuples hash equal;
// mutating any single exported field — walked recursively via reflection
// so a newly added field can never be silently excluded — changes the
// hash.
func TestConfigHashEqualsSemanticEquality(t *testing.T) {
	vc, dc, pm, tc := modelConfigs()
	base := mustHash(t, vc, dc, pm, tc)

	vcB, dcB, pmB, tcB := modelConfigs()
	if got := mustHash(t, vcB, dcB, pmB, tcB); got != base {
		t.Fatalf("equal configs hash differently: %016x vs %016x", got, base)
	}

	// mutate flips one leaf field at a time and re-hashes the tuple.
	vals := []any{&vc, &dc, &pm, &tc}
	hashAll := func() uint64 {
		return mustHash(t, vc, dc, pm, tc)
	}
	var walk func(rv reflect.Value, path string)
	leaves := 0
	walk = func(rv reflect.Value, path string) {
		switch rv.Kind() {
		case reflect.Struct:
			for i := 0; i < rv.NumField(); i++ {
				f := rv.Type().Field(i)
				if !f.IsExported() {
					continue
				}
				walk(rv.Field(i), path+"."+f.Name)
			}
		case reflect.Float64:
			old := rv.Float()
			rv.SetFloat(old + 1.5)
			if hashAll() == base {
				t.Errorf("mutating %s did not change the hash", path)
			}
			rv.SetFloat(old)
			leaves++
		case reflect.Int, reflect.Int64:
			old := rv.Int()
			rv.SetInt(old + 3)
			if hashAll() == base {
				t.Errorf("mutating %s did not change the hash", path)
			}
			rv.SetInt(old)
			leaves++
		default:
			t.Fatalf("unexpected config leaf kind %s at %s", rv.Kind(), path)
		}
	}
	for _, v := range vals {
		rv := reflect.ValueOf(v).Elem()
		walk(rv, rv.Type().String())
	}
	if leaves < 20 {
		t.Fatalf("walked only %d leaf fields; config reflection walk looks broken", leaves)
	}
	if got := hashAll(); got != base {
		t.Fatalf("mutation walk did not restore configs: %016x vs %016x", got, base)
	}
}

// TestEncodeRejectsUnsupported pins the error (not panic) behaviour for
// kinds the codec does not speak.
func TestEncodeRejectsUnsupported(t *testing.T) {
	if _, err := EncodeConfig([]int{1}); err == nil {
		t.Error("slice accepted")
	}
	if _, err := EncodeConfig(map[string]int{}); err == nil {
		t.Error("map accepted")
	}
	if _, err := EncodeConfig((*varmodel.Config)(nil)); err == nil {
		t.Error("nil pointer accepted")
	}
	type hasSlice struct{ Xs []float64 }
	if _, err := EncodeConfig(hasSlice{}); err == nil {
		t.Error("struct with slice field accepted")
	}
	if _, err := ConfigHash(func() {}); err == nil {
		t.Error("func accepted by ConfigHash")
	}
}

// TestDecodeRejectsCorruptInput drives the decoder through the corruption
// classes the fuzzer also explores: truncation, version/tag/name damage,
// schema drift, and trailing garbage. Every one must error cleanly.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	vc, dc, pm, tc := modelConfigs()
	enc, err := EncodeConfig(vc, dc, pm, tc)
	if err != nil {
		t.Fatal(err)
	}
	decode := func(data []byte) error {
		var a varmodel.Config
		var b delay.Config
		var c power.Model
		var d thermal.Config
		return DecodeConfig(data, &a, &b, &c, &d)
	}
	if err := decode(enc); err != nil {
		t.Fatalf("sanity: clean decode failed: %v", err)
	}
	if err := decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	for _, cut := range []int{1, 2, 5, len(enc) / 2, len(enc) - 1} {
		if err := decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if err := decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] = codecVersion + 1
	if err := decode(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// Damage the type-name region: the decoder must refuse to bind the
	// stream to a differently named schema.
	bad = append([]byte{}, enc...)
	bad[5] ^= 0xff
	if err := decode(bad); err == nil {
		t.Error("corrupted type name accepted")
	}
	// Wrong target arity and wrong target type.
	var a varmodel.Config
	if err := DecodeConfig(enc, &a); err == nil {
		t.Error("arity mismatch accepted")
	}
	var wrong [4]thermal.Config
	if err := DecodeConfig(enc, &wrong[0], &wrong[1], &wrong[2], &wrong[3]); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := DecodeConfig(enc, nil, nil, nil, nil); err == nil {
		t.Error("nil decode targets accepted")
	}
}

// allKinds exercises every codec kind, including the ones no real model
// config uses yet (uint, bool, string) — if a future config adds one,
// the codec is already proven for it.
type allKinds struct {
	F  float64
	I  int
	I8 int8
	U  uint16
	B  bool
	S  string
	N  struct{ X float64 }
}

// TestCodecAllKinds round-trips every supported kind and drives the
// decoder's per-kind validation branches with surgically corrupted
// encodings (DecodeConfig has no checksum, so single-byte patches reach
// the kind and range checks directly).
func TestCodecAllKinds(t *testing.T) {
	v := allKinds{F: 1.5, I: -3, I8: 100, U: 9, B: true, S: "spec"}
	v.N.X = 2.25
	enc, err := EncodeConfig(v)
	if err != nil {
		t.Fatal(err)
	}
	var got allKinds
	if err := DecodeConfig(enc, &got); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("round trip: got %+v, want %+v", got, v)
	}
	if h1, h2 := mustHash(t, v), mustHash(t, got); h1 != h2 {
		t.Fatal("equal all-kinds values hash differently")
	}
	v2 := v
	v2.B = false
	if mustHash(t, v2) == mustHash(t, v) {
		t.Fatal("bool flip did not change the hash")
	}
	v2 = v
	v2.S = "spec2"
	if mustHash(t, v2) == mustHash(t, v) {
		t.Fatal("string change did not change the hash")
	}
	v2 = v
	v2.U++
	if mustHash(t, v2) == mustHash(t, v) {
		t.Fatal("uint change did not change the hash")
	}

	// Single-field encodings let byte offsets land on known positions:
	// the value's last 8 bytes (or last byte for bool) are its payload.
	patchTail := func(t *testing.T, val any, tail []byte) []byte {
		t.Helper()
		e, err := EncodeConfig(val)
		if err != nil {
			t.Fatal(err)
		}
		e = append([]byte{}, e...)
		copy(e[len(e)-len(tail):], tail)
		return e
	}
	type oneI8 struct{ V int8 }
	over := patchTail(t, oneI8{V: 1}, []byte{0, 0, 0, 0, 0, 0, 1, 44}) // 300
	var i8 oneI8
	if err := DecodeConfig(over, &i8); err == nil {
		t.Error("int8 overflow accepted")
	}
	type oneU8 struct{ V uint8 }
	overU := patchTail(t, oneU8{V: 1}, []byte{0, 0, 0, 0, 0, 0, 1, 44})
	var u8 oneU8
	if err := DecodeConfig(overU, &u8); err == nil {
		t.Error("uint8 overflow accepted")
	}
	type oneB struct{ V bool }
	badBool := patchTail(t, oneB{V: true}, []byte{2})
	var bl oneB
	if err := DecodeConfig(badBool, &bl); err == nil {
		t.Error("bool byte 2 accepted")
	}
	// Tag byte sits 9 bytes from the end for fixed-width kinds: flip an
	// int tag to a float tag and the kind check must fire.
	type oneI struct{ V int }
	e, err := EncodeConfig(oneI{V: 5})
	if err != nil {
		t.Fatal(err)
	}
	e = append([]byte{}, e...)
	e[len(e)-9] = tagFloat64
	var iv oneI
	if err := DecodeConfig(e, &iv); err == nil {
		t.Error("float tag bound to int field")
	}
}

// TestCodecNameLengthCap: a length prefix past the cap must be rejected
// before any allocation.
func TestCodecNameLengthCap(t *testing.T) {
	data := []byte{codecVersion, 0, 1, 0xff, 0xff} // one value, 65535-byte type name
	var v allKinds
	if err := DecodeConfig(data, &v); err == nil {
		t.Fatal("oversized name length accepted")
	}
	// Unknown tag byte.
	enc, err := EncodeConfig(struct{ V int }{3})
	if err != nil {
		t.Fatal(err)
	}
	enc = append([]byte{}, enc...)
	enc[len(enc)-9] = 'q'
	var one struct{ V int }
	if err := DecodeConfig(enc, &one); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

// TestSaveBlobErrors covers the write-side failure paths: a blob
// directory that collides with an existing file, and an unencodable Cfg.
func TestSaveBlobErrors(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	maps := &varmodel.DieMaps{
		VthSys:  fieldFrom(1, 1, []float64{1}),
		LeffSys: fieldFrom(1, 1, []float64{2}),
	}
	if _, err := saveBlob(filepath.Join(file, "sub"), Key{}, maps); err == nil {
		t.Error("saveBlob into a file-as-directory path succeeded")
	}
}
