package diecache

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"vasched/internal/varmodel"
)

// testMaps fabricates a small, recognisable DieMaps whose cell values
// encode (seed, index) so cross-key mixups are detectable.
func testMaps(seed int64, idx int) *varmodel.DieMaps {
	const rows, cols = 4, 4
	mk := func(off float64) []float64 {
		out := make([]float64, rows*cols)
		for i := range out {
			out[i] = off + float64(seed)*1000 + float64(idx)*10 + float64(i)
		}
		return out
	}
	return &varmodel.DieMaps{
		VthSys:       fieldFrom(rows, cols, mk(0.25)),
		LeffSys:      fieldFrom(rows, cols, mk(0.75)),
		VthSigmaRan:  0.012,
		LeffSigmaRan: 0.034,
		Seed:         seed*1_000_003 + int64(idx),
	}
}

// identity is the trivial build step used where the test only cares
// about the caching of the generated maps.
func identity(m *varmodel.DieMaps) (any, error) { return m, nil }

func mustGet(t *testing.T, c *Cache, key Key, gen func() (*varmodel.DieMaps, error)) *varmodel.DieMaps {
	t.Helper()
	v, err := c.Get(context.Background(), key, gen, identity)
	if err != nil {
		t.Fatal(err)
	}
	return v.(*varmodel.DieMaps)
}

// TestCacheSingleFlight: many concurrent Gets for one cold key must
// collapse into exactly one generation, and all callers must receive the
// one built value.
func TestCacheSingleFlight(t *testing.T) {
	c := New(8, "")
	key := Key{ConfigHash: 1, BatchSeed: 2, Die: 3}
	var gens atomic.Int64
	release := make(chan struct{})
	gen := func() (*varmodel.DieMaps, error) {
		gens.Add(1)
		<-release // hold the fill open until every waiter has queued
		return testMaps(2, 3), nil
	}
	const callers = 16
	results := make([]any, callers)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, err := c.Get(context.Background(), key, gen, identity)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("%d concurrent Gets ran the generator %d times", callers, n)
	}
	for i, v := range results {
		if v != results[0] {
			t.Fatalf("caller %d received a different value", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, callers-1)
	}
}

// TestCacheLRUEviction: the memory layer holds at most cap entries,
// evicting least-recently-used; a touched entry survives, an evicted one
// regenerates on return.
func TestCacheLRUEviction(t *testing.T) {
	c := New(2, "")
	gens := map[int]int{}
	get := func(die int) *varmodel.DieMaps {
		t.Helper()
		return mustGet(t, c, Key{BatchSeed: 1, Die: die}, func() (*varmodel.DieMaps, error) {
			gens[die]++
			return testMaps(1, die), nil
		})
	}
	get(0)
	get(1)
	get(0) // touch 0 so 1 becomes LRU
	get(2) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}
	get(0) // must still be resident
	get(1) // must refill
	if gens[0] != 1 || gens[2] != 1 || gens[1] != 2 {
		t.Fatalf("generation counts = %v, want die0:1 die2:1 die1:2", gens)
	}
}

// TestCacheErrorsNotCached: a failed fill must not poison the key — the
// next Get retries, and a subsequent success is cached normally.
func TestCacheErrorsNotCached(t *testing.T) {
	c := New(4, "")
	key := Key{Die: 9}
	boom := errors.New("boom")
	fail := true
	calls := 0
	gen := func() (*varmodel.DieMaps, error) {
		calls++
		if fail {
			return nil, boom
		}
		return testMaps(0, 9), nil
	}
	if _, err := c.Get(context.Background(), key, gen, identity); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed fill left %d entries resident", c.Len())
	}
	fail = false
	mustGet(t, c, key, gen)
	mustGet(t, c, key, gen)
	if calls != 2 {
		t.Fatalf("generator ran %d times, want 2 (fail, success, hit)", calls)
	}
	// Build errors are not cached either.
	calls = 0
	key2 := Key{Die: 10}
	badBuild := func(*varmodel.DieMaps) (any, error) { return nil, boom }
	if _, err := c.Get(context.Background(), key2, gen, badBuild); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want boom from build", err)
	}
	mustGet(t, c, key2, gen)
	if calls != 2 {
		t.Fatalf("generator ran %d times across build failure and retry, want 2", calls)
	}
}

// TestCacheWaiterCancel: a waiter whose context dies while another
// goroutine fills must return ctx.Err without disturbing the fill.
func TestCacheWaiterCancel(t *testing.T) {
	c := New(4, "")
	key := Key{Die: 1}
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = c.Get(context.Background(), key, func() (*varmodel.DieMaps, error) {
			close(entered)
			<-release
			return testMaps(0, 1), nil
		}, identity)
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, key, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(release)
	// The fill completed despite the cancelled waiter; the entry serves
	// without re-generating.
	m := mustGet(t, c, key, func() (*varmodel.DieMaps, error) {
		t.Fatal("generator re-ran after cancelled waiter")
		return nil, nil
	})
	if m.Seed != 1 {
		t.Fatalf("cached die seed = %d, want 1", m.Seed)
	}
}

// TestCacheDiskWarm: a second cache over the same directory must satisfy
// every key from blobs — zero generator invocations — with bit-identical
// maps.
func TestCacheDiskWarm(t *testing.T) {
	dir := t.TempDir()
	cold := New(8, dir)
	want := map[int]*varmodel.DieMaps{}
	for die := 0; die < 3; die++ {
		die := die
		want[die] = mustGet(t, cold, Key{ConfigHash: 5, Die: die}, func() (*varmodel.DieMaps, error) {
			return testMaps(5, die), nil
		})
	}
	st := cold.Stats()
	if st.BytesWritten == 0 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want writes and no disk hits", st)
	}

	warm := New(8, dir)
	for die := 0; die < 3; die++ {
		got := mustGet(t, warm, Key{ConfigHash: 5, Die: die}, func() (*varmodel.DieMaps, error) {
			t.Fatalf("die %d regenerated despite a warm blob store", die)
			return nil, nil
		})
		w := want[die]
		if got.Seed != w.Seed || got.VthSigmaRan != w.VthSigmaRan || got.LeffSigmaRan != w.LeffSigmaRan {
			t.Fatalf("die %d scalars differ after disk round-trip", die)
		}
		for i := range w.VthSys.Data {
			if got.VthSys.Data[i] != w.VthSys.Data[i] || got.LeffSys.Data[i] != w.LeffSys.Data[i] {
				t.Fatalf("die %d maps differ after disk round-trip", die)
			}
		}
	}
	st = warm.Stats()
	if st.DiskHits != 3 || st.BytesRead == 0 || st.CorruptBlobs != 0 {
		t.Fatalf("warm stats = %+v, want 3 disk hits", st)
	}
}

// TestCacheCorruptBlobFallback: a damaged blob must be detected by
// checksum, counted, and silently-correctly regenerated — and the
// regeneration overwrites the bad blob so the next cache heals.
func TestCacheCorruptBlobFallback(t *testing.T) {
	dir := t.TempDir()
	key := Key{ConfigHash: 7, BatchSeed: 1, Die: 0}
	first := New(4, dir)
	mustGet(t, first, key, func() (*varmodel.DieMaps, error) { return testMaps(1, 0), nil })

	// Flip one payload byte: the checksum must catch it.
	path := blobPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	second := New(4, dir)
	regens := 0
	got := mustGet(t, second, key, func() (*varmodel.DieMaps, error) {
		regens++
		return testMaps(1, 0), nil
	})
	if regens != 1 {
		t.Fatalf("corrupt blob triggered %d regenerations, want 1", regens)
	}
	if got.Seed != testMaps(1, 0).Seed {
		t.Fatal("regenerated die has wrong identity")
	}
	st := second.Stats()
	if st.CorruptBlobs != 1 || st.DiskHits != 0 || st.BytesWritten == 0 {
		t.Fatalf("stats after corruption = %+v, want 1 corrupt, 0 disk hits, a rewrite", st)
	}

	// The rewrite healed the store: a third cache disk-hits cleanly.
	third := New(4, dir)
	mustGet(t, third, key, func() (*varmodel.DieMaps, error) {
		t.Fatal("regenerated despite healed blob")
		return nil, nil
	})
	if st := third.Stats(); st.DiskHits != 1 || st.CorruptBlobs != 0 {
		t.Fatalf("healed-store stats = %+v, want 1 clean disk hit", st)
	}
}

// TestCacheConcurrentChurn hammers a small cache (eviction pressure, disk
// layer on, overlapping keys) from many goroutines. Under -race this is
// the cache's data-race certificate; in any mode every returned die must
// carry its own key's identity.
func TestCacheConcurrentChurn(t *testing.T) {
	c := New(3, t.TempDir())
	const workers, rounds, keys = 8, 40, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				die := (w + r) % keys
				v, err := c.Get(context.Background(), Key{BatchSeed: 3, Die: die},
					func() (*varmodel.DieMaps, error) { return testMaps(3, die), nil },
					identity)
				if err != nil {
					t.Error(err)
					return
				}
				if got, want := v.(*varmodel.DieMaps).Seed, int64(3*1_000_003+die); got != want {
					t.Errorf("die %d came back with seed %d, want %d", die, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 3 {
		t.Fatalf("cache grew to %d entries past its cap of 3", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != workers*rounds {
		t.Fatalf("stats %+v do not account for %d lookups", st, workers*rounds)
	}
}

// TestBlobKeyMismatch: a blob renamed onto another key's path must be
// rejected by the key echo even though its checksum is intact.
func TestBlobKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	keyA := Key{ConfigHash: 1, BatchSeed: 2, Die: 3}
	keyB := Key{ConfigHash: 1, BatchSeed: 2, Die: 4}
	if _, err := saveBlob(dir, keyA, testMaps(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(blobPath(dir, keyA), blobPath(dir, keyB)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBlob(dir, keyB); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("renamed blob load = %v, want ErrCorrupt", err)
	}
	// Missing files are a clean miss, not an error.
	if m, n, err := loadBlob(dir, Key{Die: 99}); m != nil || n != 0 || err != nil {
		t.Fatalf("missing blob = (%v, %d, %v), want (nil, 0, nil)", m, n, err)
	}
}

// TestBlobShapeCap: a header claiming an absurd map size must be rejected
// before any allocation is attempted.
func TestBlobShapeCap(t *testing.T) {
	key := Key{}
	maps := testMaps(0, 0)
	data, err := encodeBlob(key, maps)
	if err != nil {
		t.Fatal(err)
	}
	// The rows field lives right after magic + three u64 key words.
	off := 4 + 8*3
	data[off] = 0x7f // rows ≈ 2^30 — shape check must fire (checksum fires first here too)
	if _, err := decodeBlob(data, key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized shape accepted: %v", err)
	}
}

// TestCacheUnboundedAndSetDir covers cap<=0 (no eviction) and runtime
// blob-store enablement.
func TestCacheUnboundedAndSetDir(t *testing.T) {
	c := New(0, "")
	for die := 0; die < 32; die++ {
		die := die
		mustGet(t, c, Key{Die: die}, func() (*varmodel.DieMaps, error) { return testMaps(0, die), nil })
	}
	if c.Len() != 32 {
		t.Fatalf("unbounded cache holds %d entries, want 32", c.Len())
	}
	dir := t.TempDir()
	c.SetDir(dir)
	if c.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", c.Dir(), dir)
	}
	mustGet(t, c, Key{Die: 100}, func() (*varmodel.DieMaps, error) { return testMaps(0, 100), nil })
	if st := c.Stats(); st.BytesWritten == 0 {
		t.Fatalf("stats %+v show no blob write after SetDir", st)
	}
}

// BenchmarkDieCacheHit measures the steady-state cost of the hot path: a
// resident key served from the memory layer. This is what every repeated
// experiment pays per die once the cache is warm, so it must stay in the
// tens-of-nanoseconds range — ~6 orders below generation.
func BenchmarkDieCacheHit(b *testing.B) {
	c := New(16, "")
	key := Key{ConfigHash: 42, BatchSeed: 7, Die: 0}
	maps := testMaps(7, 0)
	ctx := context.Background()
	if _, err := c.Get(ctx, key, func() (*varmodel.DieMaps, error) { return maps, nil }, identity); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := c.Get(ctx, key, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if v != any(maps) {
			b.Fatal("hit returned a different value")
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		b.Fatalf("benchmark loop missed: %+v", st)
	}
}

// BenchmarkDieCacheDiskHit measures a process-restart warm start: maps
// decoded from a checksummed blob instead of regenerated.
func BenchmarkDieCacheDiskHit(b *testing.B) {
	dir := b.TempDir()
	key := Key{ConfigHash: 42, BatchSeed: 7, Die: 0}
	cfg := varmodel.DefaultConfig()
	cfg.GridRows, cfg.GridCols = 128, 128
	g, err := varmodel.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	maps, err := g.Die(7, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := saveBlob(dir, key, maps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := loadBlob(dir, key)
		if err != nil {
			b.Fatal(err)
		}
		if m == nil {
			b.Fatal("blob vanished")
		}
	}
}
